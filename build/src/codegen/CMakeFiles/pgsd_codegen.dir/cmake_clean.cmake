file(REMOVE_RECURSE
  "CMakeFiles/pgsd_codegen.dir/Emitter.cpp.o"
  "CMakeFiles/pgsd_codegen.dir/Emitter.cpp.o.d"
  "CMakeFiles/pgsd_codegen.dir/Linker.cpp.o"
  "CMakeFiles/pgsd_codegen.dir/Linker.cpp.o.d"
  "libpgsd_codegen.a"
  "libpgsd_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
