# Empty dependencies file for pgsd_codegen.
# This may be replaced when dependencies are built.
