file(REMOVE_RECURSE
  "libpgsd_codegen.a"
)
