file(REMOVE_RECURSE
  "libpgsd_mexec.a"
)
