file(REMOVE_RECURSE
  "CMakeFiles/pgsd_mexec.dir/Interp.cpp.o"
  "CMakeFiles/pgsd_mexec.dir/Interp.cpp.o.d"
  "libpgsd_mexec.a"
  "libpgsd_mexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_mexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
