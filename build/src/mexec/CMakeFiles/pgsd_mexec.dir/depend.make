# Empty dependencies file for pgsd_mexec.
# This may be replaced when dependencies are built.
