# Empty compiler generated dependencies file for pgsd_mexec.
# This may be replaced when dependencies are built.
