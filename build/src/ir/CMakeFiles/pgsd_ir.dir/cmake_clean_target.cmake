file(REMOVE_RECURSE
  "libpgsd_ir.a"
)
