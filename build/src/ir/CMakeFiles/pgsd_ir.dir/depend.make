# Empty dependencies file for pgsd_ir.
# This may be replaced when dependencies are built.
