file(REMOVE_RECURSE
  "CMakeFiles/pgsd_ir.dir/IR.cpp.o"
  "CMakeFiles/pgsd_ir.dir/IR.cpp.o.d"
  "libpgsd_ir.a"
  "libpgsd_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
