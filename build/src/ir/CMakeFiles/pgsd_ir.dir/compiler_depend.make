# Empty compiler generated dependencies file for pgsd_ir.
# This may be replaced when dependencies are built.
