# Empty compiler generated dependencies file for pgsd_gadget.
# This may be replaced when dependencies are built.
