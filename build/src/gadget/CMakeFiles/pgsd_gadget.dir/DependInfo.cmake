
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gadget/Attack.cpp" "src/gadget/CMakeFiles/pgsd_gadget.dir/Attack.cpp.o" "gcc" "src/gadget/CMakeFiles/pgsd_gadget.dir/Attack.cpp.o.d"
  "/root/repo/src/gadget/Scanner.cpp" "src/gadget/CMakeFiles/pgsd_gadget.dir/Scanner.cpp.o" "gcc" "src/gadget/CMakeFiles/pgsd_gadget.dir/Scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86/CMakeFiles/pgsd_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pgsd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
