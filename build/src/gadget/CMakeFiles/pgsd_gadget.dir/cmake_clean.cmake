file(REMOVE_RECURSE
  "CMakeFiles/pgsd_gadget.dir/Attack.cpp.o"
  "CMakeFiles/pgsd_gadget.dir/Attack.cpp.o.d"
  "CMakeFiles/pgsd_gadget.dir/Scanner.cpp.o"
  "CMakeFiles/pgsd_gadget.dir/Scanner.cpp.o.d"
  "libpgsd_gadget.a"
  "libpgsd_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
