file(REMOVE_RECURSE
  "libpgsd_gadget.a"
)
