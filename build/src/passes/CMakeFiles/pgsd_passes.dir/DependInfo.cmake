
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/Passes.cpp" "src/passes/CMakeFiles/pgsd_passes.dir/Passes.cpp.o" "gcc" "src/passes/CMakeFiles/pgsd_passes.dir/Passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pgsd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pgsd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
