# Empty dependencies file for pgsd_passes.
# This may be replaced when dependencies are built.
