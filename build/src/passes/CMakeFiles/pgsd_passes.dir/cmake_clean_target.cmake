file(REMOVE_RECURSE
  "libpgsd_passes.a"
)
