file(REMOVE_RECURSE
  "CMakeFiles/pgsd_passes.dir/Passes.cpp.o"
  "CMakeFiles/pgsd_passes.dir/Passes.cpp.o.d"
  "libpgsd_passes.a"
  "libpgsd_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
