file(REMOVE_RECURSE
  "CMakeFiles/pgsd_support.dir/Rng.cpp.o"
  "CMakeFiles/pgsd_support.dir/Rng.cpp.o.d"
  "CMakeFiles/pgsd_support.dir/Statistics.cpp.o"
  "CMakeFiles/pgsd_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/pgsd_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/pgsd_support.dir/TablePrinter.cpp.o.d"
  "libpgsd_support.a"
  "libpgsd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
