# Empty compiler generated dependencies file for pgsd_support.
# This may be replaced when dependencies are built.
