file(REMOVE_RECURSE
  "libpgsd_support.a"
)
