# Empty dependencies file for pgsd_diversity.
# This may be replaced when dependencies are built.
