file(REMOVE_RECURSE
  "CMakeFiles/pgsd_diversity.dir/NopInsertion.cpp.o"
  "CMakeFiles/pgsd_diversity.dir/NopInsertion.cpp.o.d"
  "libpgsd_diversity.a"
  "libpgsd_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
