file(REMOVE_RECURSE
  "libpgsd_diversity.a"
)
