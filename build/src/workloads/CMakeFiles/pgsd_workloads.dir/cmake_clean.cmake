file(REMOVE_RECURSE
  "CMakeFiles/pgsd_workloads.dir/Php.cpp.o"
  "CMakeFiles/pgsd_workloads.dir/Php.cpp.o.d"
  "CMakeFiles/pgsd_workloads.dir/SpecLarge.cpp.o"
  "CMakeFiles/pgsd_workloads.dir/SpecLarge.cpp.o.d"
  "CMakeFiles/pgsd_workloads.dir/SpecMid.cpp.o"
  "CMakeFiles/pgsd_workloads.dir/SpecMid.cpp.o.d"
  "CMakeFiles/pgsd_workloads.dir/SpecSmall.cpp.o"
  "CMakeFiles/pgsd_workloads.dir/SpecSmall.cpp.o.d"
  "CMakeFiles/pgsd_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/pgsd_workloads.dir/Workloads.cpp.o.d"
  "libpgsd_workloads.a"
  "libpgsd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
