# Empty compiler generated dependencies file for pgsd_workloads.
# This may be replaced when dependencies are built.
