
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Php.cpp" "src/workloads/CMakeFiles/pgsd_workloads.dir/Php.cpp.o" "gcc" "src/workloads/CMakeFiles/pgsd_workloads.dir/Php.cpp.o.d"
  "/root/repo/src/workloads/SpecLarge.cpp" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecLarge.cpp.o" "gcc" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecLarge.cpp.o.d"
  "/root/repo/src/workloads/SpecMid.cpp" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecMid.cpp.o" "gcc" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecMid.cpp.o.d"
  "/root/repo/src/workloads/SpecSmall.cpp" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecSmall.cpp.o" "gcc" "src/workloads/CMakeFiles/pgsd_workloads.dir/SpecSmall.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/pgsd_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/pgsd_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/pgsd_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pgsd_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/pgsd_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pgsd_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/mexec/CMakeFiles/pgsd_mexec.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pgsd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/diversity/CMakeFiles/pgsd_diversity.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/pgsd_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pgsd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/gadget/CMakeFiles/pgsd_gadget.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/pgsd_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pgsd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
