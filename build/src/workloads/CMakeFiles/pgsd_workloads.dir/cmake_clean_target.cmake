file(REMOVE_RECURSE
  "libpgsd_workloads.a"
)
