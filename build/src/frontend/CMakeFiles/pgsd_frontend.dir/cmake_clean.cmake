file(REMOVE_RECURSE
  "CMakeFiles/pgsd_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/pgsd_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/pgsd_frontend.dir/Lower.cpp.o"
  "CMakeFiles/pgsd_frontend.dir/Lower.cpp.o.d"
  "CMakeFiles/pgsd_frontend.dir/Parser.cpp.o"
  "CMakeFiles/pgsd_frontend.dir/Parser.cpp.o.d"
  "libpgsd_frontend.a"
  "libpgsd_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
