file(REMOVE_RECURSE
  "libpgsd_frontend.a"
)
