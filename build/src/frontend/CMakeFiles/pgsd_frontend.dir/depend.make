# Empty dependencies file for pgsd_frontend.
# This may be replaced when dependencies are built.
