file(REMOVE_RECURSE
  "libpgsd_profile.a"
)
