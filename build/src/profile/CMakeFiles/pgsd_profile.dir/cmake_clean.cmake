file(REMOVE_RECURSE
  "CMakeFiles/pgsd_profile.dir/Profile.cpp.o"
  "CMakeFiles/pgsd_profile.dir/Profile.cpp.o.d"
  "libpgsd_profile.a"
  "libpgsd_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
