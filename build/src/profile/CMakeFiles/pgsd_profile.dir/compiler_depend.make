# Empty compiler generated dependencies file for pgsd_profile.
# This may be replaced when dependencies are built.
