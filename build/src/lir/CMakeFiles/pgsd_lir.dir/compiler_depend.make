# Empty compiler generated dependencies file for pgsd_lir.
# This may be replaced when dependencies are built.
