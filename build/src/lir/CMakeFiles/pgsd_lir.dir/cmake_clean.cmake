file(REMOVE_RECURSE
  "CMakeFiles/pgsd_lir.dir/ISel.cpp.o"
  "CMakeFiles/pgsd_lir.dir/ISel.cpp.o.d"
  "CMakeFiles/pgsd_lir.dir/MIR.cpp.o"
  "CMakeFiles/pgsd_lir.dir/MIR.cpp.o.d"
  "CMakeFiles/pgsd_lir.dir/RegPlan.cpp.o"
  "CMakeFiles/pgsd_lir.dir/RegPlan.cpp.o.d"
  "libpgsd_lir.a"
  "libpgsd_lir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
