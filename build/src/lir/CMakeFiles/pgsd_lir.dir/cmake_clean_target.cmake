file(REMOVE_RECURSE
  "libpgsd_lir.a"
)
