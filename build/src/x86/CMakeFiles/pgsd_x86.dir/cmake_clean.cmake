file(REMOVE_RECURSE
  "CMakeFiles/pgsd_x86.dir/Decoder.cpp.o"
  "CMakeFiles/pgsd_x86.dir/Decoder.cpp.o.d"
  "CMakeFiles/pgsd_x86.dir/Disasm.cpp.o"
  "CMakeFiles/pgsd_x86.dir/Disasm.cpp.o.d"
  "CMakeFiles/pgsd_x86.dir/Encoder.cpp.o"
  "CMakeFiles/pgsd_x86.dir/Encoder.cpp.o.d"
  "CMakeFiles/pgsd_x86.dir/Nops.cpp.o"
  "CMakeFiles/pgsd_x86.dir/Nops.cpp.o.d"
  "CMakeFiles/pgsd_x86.dir/X86.cpp.o"
  "CMakeFiles/pgsd_x86.dir/X86.cpp.o.d"
  "libpgsd_x86.a"
  "libpgsd_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
