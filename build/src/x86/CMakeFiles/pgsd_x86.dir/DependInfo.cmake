
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/Decoder.cpp" "src/x86/CMakeFiles/pgsd_x86.dir/Decoder.cpp.o" "gcc" "src/x86/CMakeFiles/pgsd_x86.dir/Decoder.cpp.o.d"
  "/root/repo/src/x86/Disasm.cpp" "src/x86/CMakeFiles/pgsd_x86.dir/Disasm.cpp.o" "gcc" "src/x86/CMakeFiles/pgsd_x86.dir/Disasm.cpp.o.d"
  "/root/repo/src/x86/Encoder.cpp" "src/x86/CMakeFiles/pgsd_x86.dir/Encoder.cpp.o" "gcc" "src/x86/CMakeFiles/pgsd_x86.dir/Encoder.cpp.o.d"
  "/root/repo/src/x86/Nops.cpp" "src/x86/CMakeFiles/pgsd_x86.dir/Nops.cpp.o" "gcc" "src/x86/CMakeFiles/pgsd_x86.dir/Nops.cpp.o.d"
  "/root/repo/src/x86/X86.cpp" "src/x86/CMakeFiles/pgsd_x86.dir/X86.cpp.o" "gcc" "src/x86/CMakeFiles/pgsd_x86.dir/X86.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pgsd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
