# Empty compiler generated dependencies file for pgsd_x86.
# This may be replaced when dependencies are built.
