file(REMOVE_RECURSE
  "libpgsd_x86.a"
)
