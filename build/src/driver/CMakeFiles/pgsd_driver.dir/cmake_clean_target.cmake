file(REMOVE_RECURSE
  "libpgsd_driver.a"
)
