file(REMOVE_RECURSE
  "CMakeFiles/pgsd_driver.dir/Driver.cpp.o"
  "CMakeFiles/pgsd_driver.dir/Driver.cpp.o.d"
  "libpgsd_driver.a"
  "libpgsd_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsd_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
