# Empty compiler generated dependencies file for pgsd_driver.
# This may be replaced when dependencies are built.
