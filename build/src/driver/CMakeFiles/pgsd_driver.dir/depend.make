# Empty dependencies file for pgsd_driver.
# This may be replaced when dependencies are built.
