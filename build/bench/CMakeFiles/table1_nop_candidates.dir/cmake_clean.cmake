file(REMOVE_RECURSE
  "CMakeFiles/table1_nop_candidates.dir/table1_nop_candidates.cpp.o"
  "CMakeFiles/table1_nop_candidates.dir/table1_nop_candidates.cpp.o.d"
  "table1_nop_candidates"
  "table1_nop_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nop_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
