# Empty compiler generated dependencies file for table1_nop_candidates.
# This may be replaced when dependencies are built.
