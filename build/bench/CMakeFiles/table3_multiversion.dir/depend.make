# Empty dependencies file for table3_multiversion.
# This may be replaced when dependencies are built.
