file(REMOVE_RECURSE
  "CMakeFiles/table3_multiversion.dir/table3_multiversion.cpp.o"
  "CMakeFiles/table3_multiversion.dir/table3_multiversion.cpp.o.d"
  "table3_multiversion"
  "table3_multiversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_multiversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
