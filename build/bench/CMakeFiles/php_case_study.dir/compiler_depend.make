# Empty compiler generated dependencies file for php_case_study.
# This may be replaced when dependencies are built.
