file(REMOVE_RECURSE
  "CMakeFiles/php_case_study.dir/php_case_study.cpp.o"
  "CMakeFiles/php_case_study.dir/php_case_study.cpp.o.d"
  "php_case_study"
  "php_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/php_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
