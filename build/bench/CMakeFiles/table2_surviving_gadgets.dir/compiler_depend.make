# Empty compiler generated dependencies file for table2_surviving_gadgets.
# This may be replaced when dependencies are built.
