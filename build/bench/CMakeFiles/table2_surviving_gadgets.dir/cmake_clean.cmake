file(REMOVE_RECURSE
  "CMakeFiles/table2_surviving_gadgets.dir/table2_surviving_gadgets.cpp.o"
  "CMakeFiles/table2_surviving_gadgets.dir/table2_surviving_gadgets.cpp.o.d"
  "table2_surviving_gadgets"
  "table2_surviving_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_surviving_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
