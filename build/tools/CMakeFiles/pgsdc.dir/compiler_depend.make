# Empty compiler generated dependencies file for pgsdc.
# This may be replaced when dependencies are built.
