file(REMOVE_RECURSE
  "CMakeFiles/pgsdc.dir/pgsdc.cpp.o"
  "CMakeFiles/pgsdc.dir/pgsdc.cpp.o.d"
  "pgsdc"
  "pgsdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
