# Empty compiler generated dependencies file for gadget_displacement.
# This may be replaced when dependencies are built.
