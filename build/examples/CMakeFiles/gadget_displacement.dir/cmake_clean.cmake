file(REMOVE_RECURSE
  "CMakeFiles/gadget_displacement.dir/gadget_displacement.cpp.o"
  "CMakeFiles/gadget_displacement.dir/gadget_displacement.cpp.o.d"
  "gadget_displacement"
  "gadget_displacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_displacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
