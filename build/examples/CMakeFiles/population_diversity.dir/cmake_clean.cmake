file(REMOVE_RECURSE
  "CMakeFiles/population_diversity.dir/population_diversity.cpp.o"
  "CMakeFiles/population_diversity.dir/population_diversity.cpp.o.d"
  "population_diversity"
  "population_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
