# Empty dependencies file for population_diversity.
# This may be replaced when dependencies are built.
