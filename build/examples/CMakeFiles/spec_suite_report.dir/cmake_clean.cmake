file(REMOVE_RECURSE
  "CMakeFiles/spec_suite_report.dir/spec_suite_report.cpp.o"
  "CMakeFiles/spec_suite_report.dir/spec_suite_report.cpp.o.d"
  "spec_suite_report"
  "spec_suite_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_suite_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
