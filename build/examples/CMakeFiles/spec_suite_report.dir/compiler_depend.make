# Empty compiler generated dependencies file for spec_suite_report.
# This may be replaced when dependencies are built.
