# Empty compiler generated dependencies file for BlockShiftTest.
# This may be replaced when dependencies are built.
