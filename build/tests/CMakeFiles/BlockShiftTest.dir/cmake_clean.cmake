file(REMOVE_RECURSE
  "BlockShiftTest"
  "BlockShiftTest.pdb"
  "CMakeFiles/BlockShiftTest.dir/BlockShiftTest.cpp.o"
  "CMakeFiles/BlockShiftTest.dir/BlockShiftTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BlockShiftTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
