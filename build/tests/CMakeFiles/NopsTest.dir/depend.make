# Empty dependencies file for NopsTest.
# This may be replaced when dependencies are built.
