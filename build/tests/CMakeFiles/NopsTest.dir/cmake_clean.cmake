file(REMOVE_RECURSE
  "CMakeFiles/NopsTest.dir/NopsTest.cpp.o"
  "CMakeFiles/NopsTest.dir/NopsTest.cpp.o.d"
  "NopsTest"
  "NopsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/NopsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
