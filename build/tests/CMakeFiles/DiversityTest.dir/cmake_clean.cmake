file(REMOVE_RECURSE
  "CMakeFiles/DiversityTest.dir/DiversityTest.cpp.o"
  "CMakeFiles/DiversityTest.dir/DiversityTest.cpp.o.d"
  "DiversityTest"
  "DiversityTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DiversityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
