# Empty compiler generated dependencies file for DiversityTest.
# This may be replaced when dependencies are built.
