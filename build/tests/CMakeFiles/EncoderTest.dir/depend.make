# Empty dependencies file for EncoderTest.
# This may be replaced when dependencies are built.
