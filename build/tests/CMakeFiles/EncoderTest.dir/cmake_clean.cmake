file(REMOVE_RECURSE
  "CMakeFiles/EncoderTest.dir/EncoderTest.cpp.o"
  "CMakeFiles/EncoderTest.dir/EncoderTest.cpp.o.d"
  "EncoderTest"
  "EncoderTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EncoderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
