file(REMOVE_RECURSE
  "CMakeFiles/GadgetTest.dir/GadgetTest.cpp.o"
  "CMakeFiles/GadgetTest.dir/GadgetTest.cpp.o.d"
  "GadgetTest"
  "GadgetTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GadgetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
