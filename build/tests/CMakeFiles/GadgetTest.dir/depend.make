# Empty dependencies file for GadgetTest.
# This may be replaced when dependencies are built.
