# Empty compiler generated dependencies file for GoldenEncodingsTest.
# This may be replaced when dependencies are built.
