file(REMOVE_RECURSE
  "CMakeFiles/GoldenEncodingsTest.dir/GoldenEncodingsTest.cpp.o"
  "CMakeFiles/GoldenEncodingsTest.dir/GoldenEncodingsTest.cpp.o.d"
  "GoldenEncodingsTest"
  "GoldenEncodingsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GoldenEncodingsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
