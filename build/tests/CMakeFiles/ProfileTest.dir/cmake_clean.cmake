file(REMOVE_RECURSE
  "CMakeFiles/ProfileTest.dir/ProfileTest.cpp.o"
  "CMakeFiles/ProfileTest.dir/ProfileTest.cpp.o.d"
  "ProfileTest"
  "ProfileTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProfileTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
