# Empty dependencies file for ProfileTest.
# This may be replaced when dependencies are built.
