file(REMOVE_RECURSE
  "CMakeFiles/DisasmTest.dir/DisasmTest.cpp.o"
  "CMakeFiles/DisasmTest.dir/DisasmTest.cpp.o.d"
  "DisasmTest"
  "DisasmTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DisasmTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
