# Empty compiler generated dependencies file for DisasmTest.
# This may be replaced when dependencies are built.
