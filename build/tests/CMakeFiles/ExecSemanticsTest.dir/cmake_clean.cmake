file(REMOVE_RECURSE
  "CMakeFiles/ExecSemanticsTest.dir/ExecSemanticsTest.cpp.o"
  "CMakeFiles/ExecSemanticsTest.dir/ExecSemanticsTest.cpp.o.d"
  "ExecSemanticsTest"
  "ExecSemanticsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExecSemanticsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
