# Empty compiler generated dependencies file for ExecSemanticsTest.
# This may be replaced when dependencies are built.
