# Empty dependencies file for DecoderTest.
# This may be replaced when dependencies are built.
