file(REMOVE_RECURSE
  "CMakeFiles/DecoderTest.dir/DecoderTest.cpp.o"
  "CMakeFiles/DecoderTest.dir/DecoderTest.cpp.o.d"
  "DecoderTest"
  "DecoderTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DecoderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
