# Empty dependencies file for EndToEndTest.
# This may be replaced when dependencies are built.
