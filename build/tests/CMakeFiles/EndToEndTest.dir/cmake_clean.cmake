file(REMOVE_RECURSE
  "CMakeFiles/EndToEndTest.dir/EndToEndTest.cpp.o"
  "CMakeFiles/EndToEndTest.dir/EndToEndTest.cpp.o.d"
  "EndToEndTest"
  "EndToEndTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EndToEndTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
