//===-- x86/Decoder.h - IA-32 instruction-stream decoder --------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A general IA-32 length decoder and instruction classifier.
///
/// The gadget scanner (paper Section 5.2) decodes the .text section at
/// *arbitrary byte offsets* -- x86 is densely encoded, so most offsets
/// yield some valid instruction sequence. This decoder therefore covers
/// the full one-byte opcode map and the common two-byte (0F) map,
/// including prefixes, ModRM/SIB forms, and 16-bit address-size
/// fallbacks. It reports:
///
///   * the instruction length (to advance the scan),
///   * a classification (normal / control flow kinds / privileged /
///     invalid) used to validate gadget candidates: a candidate must
///     "decompile to valid x86 code having no control-flow instructions
///     except a free branch at the end" (paper Section 5.2), and
///   * raw fields (opcode, ModRM, immediate) used by the semantic gadget
///     classifier in the attack-feasibility checker.
///
/// Undefined opcodes and opcodes that fault outside ring 0 (IN/OUT, HLT,
/// CLI, ...) are flagged so the scanner can reject sequences an attacker
/// could not execute -- the same property the paper exploits when picking
/// NOP candidates whose second byte decodes to IN.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_X86_DECODER_H
#define PGSD_X86_DECODER_H

#include <cstddef>
#include <cstdint>

namespace pgsd {
namespace x86 {

/// Coarse classification of a decoded instruction.
enum class InstrClass : uint8_t {
  Normal,     ///< No control-flow or privilege effect.
  Ret,        ///< RET (C3) -- free branch.
  RetImm,     ///< RET imm16 (C2) -- free branch.
  RetFar,     ///< RETF / RETF imm16 -- free branch (rarely useful).
  CallRel,    ///< CALL rel32 -- direct control flow.
  CallInd,    ///< CALL r/m32 (FF /2, /3) -- free branch.
  JmpRel,     ///< JMP rel8/rel32, direct far jump.
  JmpInd,     ///< JMP r/m32 (FF /4, /5) -- free branch.
  Jcc,        ///< Conditional branch (70+cc rel8, 0F 80+cc rel32).
  Loop,       ///< LOOP/LOOPE/LOOPNE/JCXZ rel8.
  IntN,       ///< INT imm8 / INT3 / INTO / SYSENTER -- software interrupt.
  Privileged, ///< Faults outside ring 0 (IN/OUT/HLT/CLI/...).
  Invalid,    ///< Undefined encoding or truncated instruction.
};

/// Result of decoding one instruction.
struct Decoded {
  uint8_t Length = 0;        ///< Total length in bytes (prefixes included).
  InstrClass Class = InstrClass::Invalid;
  uint8_t Opcode = 0;        ///< Primary opcode byte (after prefixes).
  bool TwoByte = false;      ///< True when the opcode came from the 0F map.
  bool HasModRM = false;
  uint8_t ModRM = 0;
  bool HasImm = false;
  int64_t Imm = 0;           ///< Sign-extended immediate, when present.
  uint8_t NumPrefixes = 0;

  /// ModRM field accessors (only meaningful when HasModRM).
  uint8_t modField() const { return ModRM >> 6; }
  uint8_t regField() const { return (ModRM >> 3) & 7; }
  uint8_t rmField() const { return ModRM & 7; }

  /// True for the "free branch" kinds the paper's scanner accepts as
  /// gadget terminators: "returns, indirect calls, or jumps".
  bool isFreeBranch() const {
    return Class == InstrClass::Ret || Class == InstrClass::RetImm ||
           Class == InstrClass::RetFar || Class == InstrClass::CallInd ||
           Class == InstrClass::JmpInd;
  }

  /// True for any control-transfer instruction (free or direct).
  bool isControlFlow() const {
    switch (Class) {
    case InstrClass::Ret:
    case InstrClass::RetImm:
    case InstrClass::RetFar:
    case InstrClass::CallRel:
    case InstrClass::CallInd:
    case InstrClass::JmpRel:
    case InstrClass::JmpInd:
    case InstrClass::Jcc:
    case InstrClass::Loop:
    case InstrClass::IntN:
      return true;
    case InstrClass::Normal:
    case InstrClass::Privileged:
    case InstrClass::Invalid:
      return false;
    }
    return false;
  }

  /// True when the instruction can appear inside a usable gadget body.
  bool isUsableBody() const { return Class == InstrClass::Normal; }
};

/// Decodes the instruction starting at \p Bytes (at most \p Size bytes).
///
/// \returns false when the bytes are not a valid instruction (undefined
/// opcode, truncated, or over the 15-byte architectural limit); \p Out is
/// still filled with Class == Invalid in that case.
bool decodeInstr(const uint8_t *Bytes, size_t Size, Decoded &Out);

/// Length/class-only decode for bulk scanning: same (valid, length,
/// class) verdict as decodeInstr for every byte string -- both compile
/// from one shared template -- but skips materializing operand fields
/// and immediate values. The gadget scanner's fact pass calls this once
/// per image offset, where the skipped work is a measurable fraction of
/// the whole scan.
bool decodeLenClass(const uint8_t *Bytes, size_t Size, uint8_t &LengthOut,
                    InstrClass &ClassOut);

} // namespace x86
} // namespace pgsd

#endif // PGSD_X86_DECODER_H
