//===-- x86/Disasm.cpp - IA-32 textual disassembler ------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Disasm.h"

#include "x86/X86.h"

#include <cassert>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::x86;

namespace {

const char *const Reg32[8] = {"eax", "ecx", "edx", "ebx",
                              "esp", "ebp", "esi", "edi"};
const char *const Reg8[8] = {"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"};
const char *const Reg16[8] = {"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"};

/// Operand width for register operands.
enum class Width { B, W, D };

const char *regName(unsigned N, Width W) {
  switch (W) {
  case Width::B:
    return Reg8[N & 7];
  case Width::W:
    return Reg16[N & 7];
  case Width::D:
    return Reg32[N & 7];
  }
  return "?";
}

std::string hex(int64_t V) {
  char Buf[32];
  if (V < 0)
    std::snprintf(Buf, sizeof(Buf), "-0x%llx",
                  static_cast<unsigned long long>(-V));
  else
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(V));
  return Buf;
}

/// Re-parses the ModRM/SIB/displacement region and renders the r/m
/// operand. \p P points at the ModRM byte.
std::string renderRM(const uint8_t *P, Width W) {
  uint8_t ModRM = P[0];
  uint8_t Mod = ModRM >> 6;
  uint8_t RM = ModRM & 7;
  if (Mod == 3)
    return regName(RM, W);

  std::string Base, Index;
  unsigned Scale = 1;
  const uint8_t *DispPtr = P + 1;
  if (RM == 4) {
    uint8_t SIB = P[1];
    DispPtr = P + 2;
    unsigned IndexReg = (SIB >> 3) & 7;
    if (IndexReg != 4) {
      Index = Reg32[IndexReg];
      Scale = 1u << (SIB >> 6);
    }
    unsigned BaseReg = SIB & 7;
    if (!(Mod == 0 && BaseReg == 5))
      Base = Reg32[BaseReg];
  } else if (!(Mod == 0 && RM == 5)) {
    Base = Reg32[RM];
  }

  int32_t Disp = 0;
  if (Mod == 1) {
    Disp = static_cast<int8_t>(DispPtr[0]);
  } else if (Mod == 2 || (Mod == 0 && RM == 5) ||
             (Mod == 0 && RM == 4 && (P[1] & 7) == 5)) {
    Disp = static_cast<int32_t>(
        static_cast<uint32_t>(DispPtr[0]) |
        (static_cast<uint32_t>(DispPtr[1]) << 8) |
        (static_cast<uint32_t>(DispPtr[2]) << 16) |
        (static_cast<uint32_t>(DispPtr[3]) << 24));
  }

  std::string Out = "[";
  bool Need = false;
  if (!Base.empty()) {
    Out += Base;
    Need = true;
  }
  if (!Index.empty()) {
    if (Need)
      Out += "+";
    Out += Index;
    if (Scale != 1) {
      Out += "*";
      Out += std::to_string(Scale);
    }
    Need = true;
  }
  if (Disp != 0 || !Need) {
    if (Need)
      Out += Disp < 0 ? "-" : "+";
    Out += hex(Disp < 0 && Need ? -static_cast<int64_t>(Disp) : Disp);
  }
  Out += "]";
  return Out;
}

const char *const AluNames[8] = {"add", "or",  "adc", "sbb",
                                 "and", "sub", "xor", "cmp"};
const char *const ShiftNames[8] = {"rol", "ror", "rcl", "rcr",
                                   "shl", "shr", "sal", "sar"};
const char *const Group3Names[8] = {"test", "test", "not", "neg",
                                    "mul",  "imul", "div", "idiv"};

} // namespace

std::string x86::disassemble(const uint8_t *Bytes, const Decoded &D) {
  if (D.Length == 0)
    return "(bad)";
  const uint8_t *P = Bytes + D.NumPrefixes; // opcode position
  const uint8_t *MP = P + (D.TwoByte ? 2 : 1); // ModRM position
  uint8_t Op = D.Opcode;
  Width W = Width::D;
  // Render through a uniform helper set.
  auto RM = [&](Width Wd) { return renderRM(MP, Wd); };
  auto RegOf = [&](Width Wd) { return regName(D.regField(), Wd); };
  auto Two = [&](const char *Name, std::string A, std::string B) {
    return std::string(Name) + " " + A + ", " + B;
  };
  auto One = [&](const char *Name, std::string A) {
    return std::string(Name) + " " + A;
  };
  auto Rel = [&](const char *Name) {
    // Branch targets print as displacements relative to the instruction
    // start ("$"), the way ROP tooling shows them.
    int64_t Target = D.Imm + D.Length;
    if (Target >= 0)
      return std::string(Name) + " $+" + hex(Target);
    return std::string(Name) + " $-" + hex(-Target);
  };

  std::string Text;
  if (!D.TwoByte) {
    // ALU rows.
    if (Op <= 0x3D && (Op & 7) <= 5 && (Op & 0xC7) != 0x06 &&
        (Op & 0xC7) != 0x07) {
      const char *Name = AluNames[Op >> 3];
      switch (Op & 7) {
      case 0:
        return Two(Name, RM(Width::B), RegOf(Width::B));
      case 1:
        return Two(Name, RM(Width::D), RegOf(Width::D));
      case 2:
        return Two(Name, RegOf(Width::B), RM(Width::B));
      case 3:
        return Two(Name, RegOf(Width::D), RM(Width::D));
      case 4:
        return Two(Name, "al", hex(D.Imm));
      default:
        return Two(Name, "eax", hex(D.Imm));
      }
    }
    switch (Op) {
    case 0x06:
      return "push es";
    case 0x07:
      return "pop es";
    case 0x0E:
      return "push cs";
    case 0x16:
      return "push ss";
    case 0x17:
      return "pop ss";
    case 0x1E:
      return "push ds";
    case 0x1F:
      return "pop ds";
    case 0x27:
      return "daa";
    case 0x2F:
      return "das";
    case 0x37:
      return "aaa";
    case 0x3F:
      return "aas";
    case 0x60:
      return "pusha";
    case 0x61:
      return "popa";
    case 0x62:
      return Two("bound", RegOf(W), RM(W));
    case 0x63:
      return Two("arpl", RM(Width::W), RegOf(Width::W));
    case 0x68:
    case 0x6A:
      return One("push", hex(D.Imm));
    case 0x69:
    case 0x6B:
      return Two("imul", RegOf(W), RM(W) + ", " + hex(D.Imm));
    case 0x84:
      return Two("test", RM(Width::B), RegOf(Width::B));
    case 0x85:
      return Two("test", RM(W), RegOf(W));
    case 0x86:
      return Two("xchg", RM(Width::B), RegOf(Width::B));
    case 0x87:
      return Two("xchg", RM(W), RegOf(W));
    case 0x88:
      return Two("mov", RM(Width::B), RegOf(Width::B));
    case 0x89:
      return Two("mov", RM(W), RegOf(W));
    case 0x8A:
      return Two("mov", RegOf(Width::B), RM(Width::B));
    case 0x8B:
      return Two("mov", RegOf(W), RM(W));
    case 0x8D:
      return Two("lea", RegOf(W), RM(W));
    case 0x8F:
      return One("pop", RM(W));
    case 0x90:
      return "nop";
    case 0x98:
      return "cwde";
    case 0x99:
      return "cdq";
    case 0x9B:
      return "fwait";
    case 0x9C:
      return "pushf";
    case 0x9D:
      return "popf";
    case 0x9E:
      return "sahf";
    case 0x9F:
      return "lahf";
    case 0xA8:
      return Two("test", "al", hex(D.Imm));
    case 0xA9:
      return Two("test", "eax", hex(D.Imm));
    case 0xC2:
      return One("ret", hex(D.Imm));
    case 0xC3:
      return "ret";
    case 0xC6:
      return Two("mov", RM(Width::B), hex(D.Imm));
    case 0xC7:
      return Two("mov", RM(W), hex(D.Imm));
    case 0xC9:
      return "leave";
    case 0xCA:
      return One("retf", hex(D.Imm));
    case 0xCB:
      return "retf";
    case 0xCC:
      return "int3";
    case 0xCD:
      return One("int", hex(D.Imm & 0xFF));
    case 0xCE:
      return "into";
    case 0xCF:
      return "iret";
    case 0xD7:
      return "xlat";
    case 0xE4:
      return Two("in", "al", hex(D.Imm));
    case 0xE5:
      return Two("in", "eax", hex(D.Imm));
    case 0xE6:
      return Two("out", hex(D.Imm), "al");
    case 0xE7:
      return Two("out", hex(D.Imm), "eax");
    case 0xEC:
      return "in al, dx";
    case 0xED:
      return "in eax, dx";
    case 0xEE:
      return "out dx, al";
    case 0xEF:
      return "out dx, eax";
    case 0xE8:
      return Rel("call");
    case 0xE9:
    case 0xEB:
      return Rel("jmp");
    case 0xE0:
      return Rel("loopne");
    case 0xE1:
      return Rel("loope");
    case 0xE2:
      return Rel("loop");
    case 0xE3:
      return Rel("jecxz");
    case 0xF4:
      return "hlt";
    case 0xF5:
      return "cmc";
    case 0xF8:
      return "clc";
    case 0xF9:
      return "stc";
    case 0xFA:
      return "cli";
    case 0xFB:
      return "sti";
    case 0xFC:
      return "cld";
    case 0xFD:
      return "std";
    default:
      break;
    }
    if (Op >= 0x40 && Op <= 0x47)
      return One("inc", Reg32[Op - 0x40]);
    if (Op >= 0x48 && Op <= 0x4F)
      return One("dec", Reg32[Op - 0x48]);
    if (Op >= 0x50 && Op <= 0x57)
      return One("push", Reg32[Op - 0x50]);
    if (Op >= 0x58 && Op <= 0x5F)
      return One("pop", Reg32[Op - 0x58]);
    if (Op >= 0x70 && Op <= 0x7F)
      return Rel((std::string("j") +
                  condName(static_cast<CondCode>(Op - 0x70)))
                     .c_str());
    if (Op >= 0x91 && Op <= 0x97)
      return Two("xchg", "eax", Reg32[Op - 0x90]);
    if (Op >= 0xB0 && Op <= 0xB7)
      return Two("mov", Reg8[Op - 0xB0], hex(D.Imm));
    if (Op >= 0xB8 && Op <= 0xBF)
      return Two("mov", Reg32[Op - 0xB8], hex(D.Imm));
    if (Op == 0x80 || Op == 0x82)
      return Two(AluNames[D.regField()], RM(Width::B), hex(D.Imm));
    if (Op == 0x81 || Op == 0x83)
      return Two(AluNames[D.regField()], RM(W), hex(D.Imm));
    if (Op == 0xC0)
      return Two(ShiftNames[D.regField()], RM(Width::B), hex(D.Imm));
    if (Op == 0xC1)
      return Two(ShiftNames[D.regField()], RM(W), hex(D.Imm));
    if (Op == 0xD0)
      return Two(ShiftNames[D.regField()], RM(Width::B), "1");
    if (Op == 0xD1)
      return Two(ShiftNames[D.regField()], RM(W), "1");
    if (Op == 0xD2)
      return Two(ShiftNames[D.regField()], RM(Width::B), "cl");
    if (Op == 0xD3)
      return Two(ShiftNames[D.regField()], RM(W), "cl");
    if (Op == 0xF6) {
      if (D.regField() <= 1)
        return Two("test", RM(Width::B), hex(D.Imm));
      return One(Group3Names[D.regField()], RM(Width::B));
    }
    if (Op == 0xF7) {
      if (D.regField() <= 1)
        return Two("test", RM(W), hex(D.Imm));
      return One(Group3Names[D.regField()], RM(W));
    }
    if (Op == 0xFE)
      return One(D.regField() == 0 ? "inc" : "dec", RM(Width::B));
    if (Op == 0xFF) {
      static const char *const G5[8] = {"inc",  "dec",  "call", "callf",
                                        "jmp",  "jmpf", "push", "(bad)"};
      return One(G5[D.regField()], RM(W));
    }
    if (Op >= 0xA4 && Op <= 0xA7) {
      static const char *const Names[4] = {"movsb", "movsd", "cmpsb",
                                           "cmpsd"};
      return Names[Op - 0xA4];
    }
    if (Op >= 0xAA && Op <= 0xAF) {
      static const char *const Names[6] = {"stosb", "stosd", "lodsb",
                                           "lodsd", "scasb", "scasd"};
      return Names[Op - 0xAA];
    }
    if (Op >= 0xA0 && Op <= 0xA3) {
      std::string Moffs = "[" + hex(D.Imm) + "]";
      if (Op == 0xA0)
        return Two("mov", "al", Moffs);
      if (Op == 0xA1)
        return Two("mov", "eax", Moffs);
      if (Op == 0xA2)
        return Two("mov", Moffs, "al");
      return Two("mov", Moffs, "eax");
    }
  } else {
    // Two-byte opcodes.
    if (Op >= 0x80 && Op <= 0x8F)
      return Rel((std::string("j") +
                  condName(static_cast<CondCode>(Op - 0x80)))
                     .c_str());
    if (Op >= 0x90 && Op <= 0x9F)
      return One((std::string("set") +
                  condName(static_cast<CondCode>(Op - 0x90)))
                     .c_str(),
                 RM(Width::B));
    if (Op >= 0x40 && Op <= 0x4F)
      return Two((std::string("cmov") +
                  condName(static_cast<CondCode>(Op - 0x40)))
                     .c_str(),
                 RegOf(W), RM(W));
    if (Op >= 0xC8 && Op <= 0xCF)
      return One("bswap", Reg32[Op - 0xC8]);
    switch (Op) {
    case 0x31:
      return "rdtsc";
    case 0x34:
      return "sysenter";
    case 0xA2:
      return "cpuid";
    case 0xA0:
      return "push fs";
    case 0xA1:
      return "pop fs";
    case 0xA8:
      return "push gs";
    case 0xA9:
      return "pop gs";
    case 0xA3:
      return Two("bt", RM(W), RegOf(W));
    case 0xAB:
      return Two("bts", RM(W), RegOf(W));
    case 0xB3:
      return Two("btr", RM(W), RegOf(W));
    case 0xBB:
      return Two("btc", RM(W), RegOf(W));
    case 0xAF:
      return Two("imul", RegOf(W), RM(W));
    case 0xB6:
      return Two("movzx", RegOf(W), RM(Width::B));
    case 0xB7:
      return Two("movzx", RegOf(W), RM(Width::W));
    case 0xBE:
      return Two("movsx", RegOf(W), RM(Width::B));
    case 0xBF:
      return Two("movsx", RegOf(W), RM(Width::W));
    case 0xBC:
      return Two("bsf", RegOf(W), RM(W));
    case 0xBD:
      return Two("bsr", RegOf(W), RM(W));
    case 0xA4:
      return Two("shld", RM(W), std::string(RegOf(W)) + ", " + hex(D.Imm));
    case 0xAC:
      return Two("shrd", RM(W), std::string(RegOf(W)) + ", " + hex(D.Imm));
    case 0xA5:
      return Two("shld", RM(W), std::string(RegOf(W)) + ", cl");
    case 0xAD:
      return Two("shrd", RM(W), std::string(RegOf(W)) + ", cl");
    default:
      break;
    }
  }

  // Generic fallback: opcode tag plus whatever operands were decoded.
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "op_%s%02x", D.TwoByte ? "0f" : "", Op);
  std::string Out = Buf;
  if (D.HasModRM)
    Out += " " + RM(W);
  if (D.HasImm)
    Out += std::string(D.HasModRM ? ", " : " ") + hex(D.Imm);
  return Out;
}

std::string x86::disassembleAt(const uint8_t *Bytes, size_t Size) {
  Decoded D;
  if (!decodeInstr(Bytes, Size, D))
    return "(bad)";
  return disassemble(Bytes, D);
}

std::vector<DisasmLine> x86::disassembleRange(const uint8_t *Text,
                                              size_t Size, uint32_t Begin,
                                              uint32_t End) {
  std::vector<DisasmLine> Lines;
  uint32_t Pos = Begin;
  while (Pos < End && Pos < Size) {
    DisasmLine Line;
    Line.Offset = Pos;
    Decoded D;
    if (decodeInstr(Text + Pos, Size - Pos, D)) {
      Line.Length = D.Length;
      Line.Text = disassemble(Text + Pos, D);
      Line.Valid = true;
      Pos += D.Length;
    } else {
      Line.Length = 1;
      Line.Text = "(bad)";
      Line.Valid = false;
      ++Pos;
    }
    Lines.push_back(std::move(Line));
  }
  return Lines;
}
