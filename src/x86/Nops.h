//===-- x86/Nops.h - NOP candidate table (paper Table 1) --------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NOP insertion candidates from Table 1 of the paper.
///
/// Candidates were chosen by the authors so that (a) they preserve all
/// processor state (registers, memory, *and* flags), and (b) their second
/// byte decodes to something an attacker cannot reuse (IN requires
/// privileged mode, SS: is a mere segment prefix, AAS is harmless ASCII
/// adjust). The two XCHG forms are state-preserving too but lock the
/// memory bus on real hardware, so they are excluded by default and can
/// be enabled explicitly (mirroring the paper's compile-time option).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_X86_NOPS_H
#define PGSD_X86_NOPS_H

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pgsd {
namespace x86 {

/// Identifies one NOP candidate from paper Table 1.
enum class NopKind : uint8_t {
  Nop90,     ///< NOP                 (90)
  MovEspEsp, ///< MOV ESP, ESP        (89 E4)
  MovEbpEbp, ///< MOV EBP, EBP        (89 ED)
  LeaEsiEsi, ///< LEA ESI, [ESI]      (8D 36)
  LeaEdiEdi, ///< LEA EDI, [EDI]      (8D 3F)
  XchgEspEsp,///< XCHG ESP, ESP       (87 E4) - optional, locks the bus
  XchgEbpEbp,///< XCHG EBP, EBP       (87 ED) - optional, locks the bus
};

/// Number of distinct NOP kinds (including the XCHG pair).
inline constexpr unsigned NumNopKinds = 7;

/// Number of NOP kinds enabled by default (excluding the XCHG pair).
inline constexpr unsigned NumDefaultNopKinds = 5;

/// Static description of one Table 1 row.
struct NopInfo {
  NopKind Kind;
  const char *Mnemonic;       ///< e.g. "MOV ESP, ESP".
  uint8_t Bytes[2];           ///< Encoding (1 or 2 bytes).
  uint8_t Length;             ///< Encoded length in bytes.
  const char *SecondByteDecoding; ///< What byte 2 decodes to on its own.
  bool LocksBus;              ///< True for the XCHG forms.
};

/// Returns the Table 1 row for \p Kind.
const NopInfo &nopInfo(NopKind Kind);

/// Returns all Table 1 rows in paper order.
const NopInfo *nopTable(size_t &Count);

/// Appends the encoding of \p Kind to \p Out.
void appendNopBytes(NopKind Kind, std::vector<uint8_t> &Out);

/// Returns the NOP kind starting at \p Bytes (of \p Size), or false.
///
/// Used by the Survivor comparison (paper Section 5.2), which removes
/// "all potentially inserted NOP instructions from both instruction
/// sequences" before comparing. \p IncludeXchg controls whether the
/// optional XCHG forms are recognized.
bool matchNopAt(const uint8_t *Bytes, size_t Size, bool IncludeXchg,
                NopKind &KindOut);

} // namespace x86
} // namespace pgsd

#endif // PGSD_X86_NOPS_H
