//===-- x86/X86.h - IA-32 common definitions ---------------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared IA-32 definitions: general-purpose registers, condition codes,
/// and memory-operand shape used by both the encoder and the backend.
///
/// The paper targets 32-bit x86 (Section 6: "We implemented and evaluated
/// NOP insertion for 32-bit x86 microprocessors"), so the whole substrate
/// is IA-32: 8 GPRs, 32-bit operands, flat memory.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_X86_X86_H
#define PGSD_X86_X86_H

#include <cstdint>

namespace pgsd {
namespace x86 {

/// IA-32 general-purpose registers, numbered by their hardware encoding
/// (the value placed in ModRM reg/rm fields and added to single-byte
/// opcodes like PUSH r32).
enum class Reg : uint8_t {
  EAX = 0,
  ECX = 1,
  EDX = 2,
  EBX = 3,
  ESP = 4,
  EBP = 5,
  ESI = 6,
  EDI = 7,
};

/// Number of general-purpose registers.
inline constexpr unsigned NumRegs = 8;

/// Returns the hardware encoding of \p R.
inline uint8_t regNum(Reg R) { return static_cast<uint8_t>(R); }

/// Returns a lowercase mnemonic ("eax") for \p R.
const char *regName(Reg R);

/// IA-32 condition codes, numbered by their encoding in Jcc/SETcc/CMOVcc
/// opcodes (e.g. Jcc rel32 is 0F 80+cc).
enum class CondCode : uint8_t {
  O = 0x0,  ///< Overflow.
  NO = 0x1, ///< Not overflow.
  B = 0x2,  ///< Below (unsigned <).
  AE = 0x3, ///< Above or equal (unsigned >=).
  E = 0x4,  ///< Equal.
  NE = 0x5, ///< Not equal.
  BE = 0x6, ///< Below or equal (unsigned <=).
  A = 0x7,  ///< Above (unsigned >).
  S = 0x8,  ///< Sign.
  NS = 0x9, ///< Not sign.
  P = 0xa,  ///< Parity even.
  NP = 0xb, ///< Parity odd.
  L = 0xc,  ///< Less (signed <).
  GE = 0xd, ///< Greater or equal (signed >=).
  LE = 0xe, ///< Less or equal (signed <=).
  G = 0xf,  ///< Greater (signed >).
};

/// Returns the condition testing the opposite of \p CC (E <-> NE, ...).
inline CondCode invert(CondCode CC) {
  return static_cast<CondCode>(static_cast<uint8_t>(CC) ^ 1);
}

/// Returns the mnemonic suffix ("e", "ne", ...) for \p CC.
const char *condName(CondCode CC);

/// A memory operand of the form [Base + Disp] or [Disp32] (absolute,
/// used for globals placed by the mini linker).
///
/// The code generator materializes computed addresses (array indexing,
/// pointer arithmetic) into registers, so scaled-index forms are not
/// needed by the encoder; the *decoder* still understands full SIB forms
/// because the gadget scanner decodes arbitrary bytes.
struct Mem {
  bool HasBase = false;
  Reg Base = Reg::EAX;
  int32_t Disp = 0;

  /// Creates an absolute-address operand [Disp32].
  static Mem abs(int32_t Disp) {
    Mem M;
    M.HasBase = false;
    M.Disp = Disp;
    return M;
  }

  /// Creates a register-relative operand [Base + Disp].
  static Mem base(Reg Base, int32_t Disp = 0) {
    Mem M;
    M.HasBase = true;
    M.Base = Base;
    M.Disp = Disp;
    return M;
  }
};

} // namespace x86
} // namespace pgsd

#endif // PGSD_X86_X86_H
