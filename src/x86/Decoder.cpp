//===-- x86/Decoder.cpp - IA-32 instruction-stream decoder ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Decoder.h"

#include <array>

using namespace pgsd;
using namespace pgsd::x86;

namespace {

/// Operand-shape flags for one opcode-table entry.
enum : uint8_t {
  FNone = 0,
  FModRM = 1 << 0, ///< ModRM byte (plus SIB/displacement) follows.
  FImm8 = 1 << 1,  ///< 8-bit immediate.
  FImmZ = 1 << 2,  ///< 16/32-bit immediate (by operand size).
  FImm16 = 1 << 3, ///< Fixed 16-bit immediate (RET imm16, ENTER).
  FRel8 = 1 << 4,  ///< 8-bit branch displacement.
  FRelZ = 1 << 5,  ///< 16/32-bit branch displacement (by operand size).
  FMoffs = 1 << 6, ///< Address-sized memory offset (MOV AL, moffs).
  FFarPtr = 1 << 7,///< ptr16:16/ptr16:32 far pointer (by operand size).
};

/// One opcode-map entry.
struct OpInfo {
  uint8_t Flags = FNone;
  InstrClass Class = InstrClass::Invalid;
};

using OpTable = std::array<OpInfo, 256>;

constexpr OpInfo entry(uint8_t Flags, InstrClass Class = InstrClass::Normal) {
  return OpInfo{Flags, Class};
}

/// Builds the one-byte opcode map. Opcodes with per-ModRM behaviour
/// (groups F6/F7/FE/FF, LEA, C6/C7, ...) are refined in decodeInstr.
constexpr OpTable buildOneByteTable() {
  OpTable T{};

  // ALU row pattern: op rm8,r8 / rm32,r32 / r8,rm8 / r32,rm32 /
  // AL,imm8 / eAX,immZ. Rows: ADD 00, OR 08, ADC 10, SBB 18, AND 20,
  // SUB 28, XOR 30, CMP 38.
  for (unsigned Row = 0x00; Row <= 0x38; Row += 0x08) {
    for (unsigned I = 0; I < 4; ++I)
      T[Row + I] = entry(FModRM);
    T[Row + 4] = entry(FImm8);
    T[Row + 5] = entry(FImmZ);
  }
  // PUSH/POP of segment registers share the ALU rows' last columns.
  T[0x06] = entry(FNone); // PUSH ES
  T[0x07] = entry(FNone); // POP ES
  T[0x0E] = entry(FNone); // PUSH CS
  // 0x0F is the two-byte escape, handled in decodeInstr.
  T[0x16] = entry(FNone); // PUSH SS
  T[0x17] = entry(FNone); // POP SS
  T[0x1E] = entry(FNone); // PUSH DS
  T[0x1F] = entry(FNone); // POP DS
  T[0x27] = entry(FNone); // DAA
  T[0x2F] = entry(FNone); // DAS
  T[0x37] = entry(FNone); // AAA
  T[0x3F] = entry(FNone); // AAS

  for (unsigned I = 0x40; I <= 0x4F; ++I)
    T[I] = entry(FNone); // INC/DEC r32
  for (unsigned I = 0x50; I <= 0x5F; ++I)
    T[I] = entry(FNone); // PUSH/POP r32

  T[0x60] = entry(FNone);  // PUSHA
  T[0x61] = entry(FNone);  // POPA
  T[0x62] = entry(FModRM); // BOUND (mod=11 invalid, refined later)
  T[0x63] = entry(FModRM); // ARPL
  T[0x68] = entry(FImmZ);  // PUSH immZ
  T[0x69] = entry(FModRM | FImmZ); // IMUL r, rm, immZ
  T[0x6A] = entry(FImm8);  // PUSH imm8
  T[0x6B] = entry(FModRM | FImm8); // IMUL r, rm, imm8
  // INS/OUTS touch I/O ports: fault outside ring 0 (with IOPL 0).
  for (unsigned I = 0x6C; I <= 0x6F; ++I)
    T[I] = entry(FNone, InstrClass::Privileged);

  for (unsigned I = 0x70; I <= 0x7F; ++I)
    T[I] = entry(FRel8, InstrClass::Jcc);

  T[0x80] = entry(FModRM | FImm8);  // ALU group rm8, imm8
  T[0x81] = entry(FModRM | FImmZ);  // ALU group rm32, immZ
  T[0x82] = entry(FModRM | FImm8);  // alias of 0x80 (valid in IA-32)
  T[0x83] = entry(FModRM | FImm8);  // ALU group rm32, imm8
  T[0x84] = entry(FModRM);          // TEST rm8, r8
  T[0x85] = entry(FModRM);          // TEST rm32, r32
  T[0x86] = entry(FModRM);          // XCHG rm8, r8
  T[0x87] = entry(FModRM);          // XCHG rm32, r32
  for (unsigned I = 0x88; I <= 0x8B; ++I)
    T[I] = entry(FModRM);           // MOV forms
  T[0x8C] = entry(FModRM);          // MOV rm, sreg
  T[0x8D] = entry(FModRM);          // LEA (mod=11 invalid, refined later)
  T[0x8E] = entry(FModRM);          // MOV sreg, rm (reg=CS refined later)
  T[0x8F] = entry(FModRM);          // POP rm (group 1A, /0 only)

  for (unsigned I = 0x90; I <= 0x97; ++I)
    T[I] = entry(FNone); // NOP / XCHG eAX, r32
  T[0x98] = entry(FNone); // CWDE
  T[0x99] = entry(FNone); // CDQ
  T[0x9A] = entry(FFarPtr, InstrClass::CallRel); // CALL far direct
  T[0x9B] = entry(FNone); // WAIT/FWAIT
  T[0x9C] = entry(FNone); // PUSHF
  T[0x9D] = entry(FNone); // POPF
  T[0x9E] = entry(FNone); // SAHF
  T[0x9F] = entry(FNone); // LAHF

  T[0xA0] = entry(FMoffs); // MOV AL, moffs8
  T[0xA1] = entry(FMoffs); // MOV eAX, moffsZ
  T[0xA2] = entry(FMoffs); // MOV moffs8, AL
  T[0xA3] = entry(FMoffs); // MOV moffsZ, eAX
  for (unsigned I = 0xA4; I <= 0xA7; ++I)
    T[I] = entry(FNone); // MOVS/CMPS
  T[0xA8] = entry(FImm8); // TEST AL, imm8
  T[0xA9] = entry(FImmZ); // TEST eAX, immZ
  for (unsigned I = 0xAA; I <= 0xAF; ++I)
    T[I] = entry(FNone); // STOS/LODS/SCAS

  for (unsigned I = 0xB0; I <= 0xB7; ++I)
    T[I] = entry(FImm8); // MOV r8, imm8
  for (unsigned I = 0xB8; I <= 0xBF; ++I)
    T[I] = entry(FImmZ); // MOV r32, immZ

  T[0xC0] = entry(FModRM | FImm8); // shift group rm8, imm8
  T[0xC1] = entry(FModRM | FImm8); // shift group rm32, imm8
  T[0xC2] = entry(FImm16, InstrClass::RetImm);
  T[0xC3] = entry(FNone, InstrClass::Ret);
  T[0xC4] = entry(FModRM); // LES (mod=11 invalid, refined later)
  T[0xC5] = entry(FModRM); // LDS (mod=11 invalid, refined later)
  T[0xC6] = entry(FModRM | FImm8); // MOV rm8, imm8 (/0 only)
  T[0xC7] = entry(FModRM | FImmZ); // MOV rm32, immZ (/0 only)
  T[0xC8] = entry(FImm16 | FImm8); // ENTER imm16, imm8
  T[0xC9] = entry(FNone);          // LEAVE
  T[0xCA] = entry(FImm16, InstrClass::RetFar);
  T[0xCB] = entry(FNone, InstrClass::RetFar);
  T[0xCC] = entry(FNone, InstrClass::IntN);  // INT3
  T[0xCD] = entry(FImm8, InstrClass::IntN);  // INT imm8
  T[0xCE] = entry(FNone, InstrClass::IntN);  // INTO
  T[0xCF] = entry(FNone, InstrClass::IntN);  // IRET

  for (unsigned I = 0xD0; I <= 0xD3; ++I)
    T[I] = entry(FModRM); // shift groups by 1 / by CL
  T[0xD4] = entry(FImm8); // AAM
  T[0xD5] = entry(FImm8); // AAD
  T[0xD6] = entry(FNone, InstrClass::Invalid); // SALC (undocumented)
  T[0xD7] = entry(FNone); // XLAT
  for (unsigned I = 0xD8; I <= 0xDF; ++I)
    T[I] = entry(FModRM); // x87 escape

  for (unsigned I = 0xE0; I <= 0xE3; ++I)
    T[I] = entry(FRel8, InstrClass::Loop); // LOOPcc / JECXZ
  T[0xE4] = entry(FImm8, InstrClass::Privileged); // IN AL, imm8
  T[0xE5] = entry(FImm8, InstrClass::Privileged); // IN eAX, imm8
  T[0xE6] = entry(FImm8, InstrClass::Privileged); // OUT imm8, AL
  T[0xE7] = entry(FImm8, InstrClass::Privileged); // OUT imm8, eAX
  T[0xE8] = entry(FRelZ, InstrClass::CallRel);
  T[0xE9] = entry(FRelZ, InstrClass::JmpRel);
  T[0xEA] = entry(FFarPtr, InstrClass::JmpRel); // JMP far direct
  T[0xEB] = entry(FRel8, InstrClass::JmpRel);
  for (unsigned I = 0xEC; I <= 0xEF; ++I)
    T[I] = entry(FNone, InstrClass::Privileged); // IN/OUT via DX

  // F0/F2/F3 are prefixes (handled before table lookup).
  T[0xF1] = entry(FNone, InstrClass::Privileged); // INT1/ICEBP
  T[0xF4] = entry(FNone, InstrClass::Privileged); // HLT
  T[0xF5] = entry(FNone); // CMC
  T[0xF6] = entry(FModRM); // group 3 rm8 (TEST imm refined later)
  T[0xF7] = entry(FModRM); // group 3 rm32 (TEST imm refined later)
  T[0xF8] = entry(FNone); // CLC
  T[0xF9] = entry(FNone); // STC
  T[0xFA] = entry(FNone, InstrClass::Privileged); // CLI
  T[0xFB] = entry(FNone, InstrClass::Privileged); // STI
  T[0xFC] = entry(FNone); // CLD
  T[0xFD] = entry(FNone); // STD
  T[0xFE] = entry(FModRM); // group 4 (INC/DEC rm8, refined later)
  T[0xFF] = entry(FModRM); // group 5 (class refined later)

  return T;
}

/// Builds the two-byte (0F xx) opcode map.
constexpr OpTable buildTwoByteTable() {
  OpTable T{};

  T[0x00] = entry(FModRM, InstrClass::Privileged); // SLDT/LTR group
  T[0x01] = entry(FModRM, InstrClass::Privileged); // SGDT/LGDT group
  T[0x02] = entry(FModRM); // LAR
  T[0x03] = entry(FModRM); // LSL
  T[0x06] = entry(FNone, InstrClass::Privileged); // CLTS
  T[0x08] = entry(FNone, InstrClass::Privileged); // INVD
  T[0x09] = entry(FNone, InstrClass::Privileged); // WBINVD
  T[0x0B] = entry(FNone, InstrClass::Invalid);    // UD2
  T[0x0D] = entry(FModRM); // prefetch hints
  for (unsigned I = 0x10; I <= 0x17; ++I)
    T[I] = entry(FModRM); // SSE moves
  for (unsigned I = 0x18; I <= 0x1F; ++I)
    T[I] = entry(FModRM); // hint NOPs (incl. canonical 0F 1F NOP)
  for (unsigned I = 0x20; I <= 0x23; ++I)
    T[I] = entry(FModRM, InstrClass::Privileged); // MOV to/from CR/DR
  for (unsigned I = 0x28; I <= 0x2F; ++I)
    T[I] = entry(FModRM); // SSE converts/compares
  T[0x30] = entry(FNone, InstrClass::Privileged); // WRMSR
  T[0x31] = entry(FNone); // RDTSC
  T[0x32] = entry(FNone, InstrClass::Privileged); // RDMSR
  T[0x33] = entry(FNone, InstrClass::Privileged); // RDPMC
  // SYSENTER transfers control into the kernel: the standard 32-bit
  // Linux syscall path; classify with INT so the attack checker can
  // treat it as a potential syscall gadget terminator.
  T[0x34] = entry(FNone, InstrClass::IntN); // SYSENTER
  T[0x35] = entry(FNone, InstrClass::Privileged); // SYSEXIT
  for (unsigned I = 0x40; I <= 0x4F; ++I)
    T[I] = entry(FModRM); // CMOVcc
  for (unsigned I = 0x50; I <= 0x6F; ++I)
    T[I] = entry(FModRM); // SSE/MMX arithmetic
  T[0x70] = entry(FModRM | FImm8); // PSHUFW/PSHUFD
  T[0x71] = entry(FModRM | FImm8); // PS shift group
  T[0x72] = entry(FModRM | FImm8); // PS shift group
  T[0x73] = entry(FModRM | FImm8); // PS shift group
  for (unsigned I = 0x74; I <= 0x7F; ++I)
    T[I] = entry(FModRM); // PCMPEQ/MOVD/MOVQ/EMMS
  T[0x77] = entry(FNone); // EMMS takes no ModRM
  for (unsigned I = 0x80; I <= 0x8F; ++I)
    T[I] = entry(FRelZ, InstrClass::Jcc);
  for (unsigned I = 0x90; I <= 0x9F; ++I)
    T[I] = entry(FModRM); // SETcc
  T[0xA0] = entry(FNone); // PUSH FS
  T[0xA1] = entry(FNone); // POP FS
  T[0xA2] = entry(FNone); // CPUID
  T[0xA3] = entry(FModRM); // BT
  T[0xA4] = entry(FModRM | FImm8); // SHLD imm8
  T[0xA5] = entry(FModRM); // SHLD CL
  T[0xA8] = entry(FNone); // PUSH GS
  T[0xA9] = entry(FNone); // POP GS
  T[0xAA] = entry(FNone, InstrClass::Privileged); // RSM
  T[0xAB] = entry(FModRM); // BTS
  T[0xAC] = entry(FModRM | FImm8); // SHRD imm8
  T[0xAD] = entry(FModRM); // SHRD CL
  T[0xAE] = entry(FModRM); // fences / FXSAVE group
  T[0xAF] = entry(FModRM); // IMUL r32, rm32
  T[0xB0] = entry(FModRM); // CMPXCHG rm8
  T[0xB1] = entry(FModRM); // CMPXCHG rm32
  T[0xB2] = entry(FModRM); // LSS (mod=11 invalid, refined later)
  T[0xB3] = entry(FModRM); // BTR
  T[0xB4] = entry(FModRM); // LFS (mod=11 invalid, refined later)
  T[0xB5] = entry(FModRM); // LGS (mod=11 invalid, refined later)
  T[0xB6] = entry(FModRM); // MOVZX r32, rm8
  T[0xB7] = entry(FModRM); // MOVZX r32, rm16
  T[0xB9] = entry(FModRM, InstrClass::Invalid); // UD1
  T[0xBA] = entry(FModRM | FImm8); // BT group imm8
  T[0xBB] = entry(FModRM); // BTC
  T[0xBC] = entry(FModRM); // BSF
  T[0xBD] = entry(FModRM); // BSR
  T[0xBE] = entry(FModRM); // MOVSX r32, rm8
  T[0xBF] = entry(FModRM); // MOVSX r32, rm16
  T[0xC0] = entry(FModRM); // XADD rm8
  T[0xC1] = entry(FModRM); // XADD rm32
  T[0xC2] = entry(FModRM | FImm8); // CMPPS imm8
  T[0xC3] = entry(FModRM); // MOVNTI
  T[0xC4] = entry(FModRM | FImm8); // PINSRW
  T[0xC5] = entry(FModRM | FImm8); // PEXTRW
  T[0xC6] = entry(FModRM | FImm8); // SHUFPS
  T[0xC7] = entry(FModRM); // CMPXCHG8B group
  for (unsigned I = 0xC8; I <= 0xCF; ++I)
    T[I] = entry(FNone); // BSWAP r32
  for (unsigned I = 0xD0; I <= 0xFE; ++I)
    T[I] = entry(FModRM); // MMX/SSE arithmetic block
  T[0xFF] = entry(FModRM, InstrClass::Invalid); // UD0

  return T;
}

constexpr OpTable OneByteTable = buildOneByteTable();
constexpr OpTable TwoByteTable = buildTwoByteTable();

/// Architectural maximum instruction length.
constexpr size_t MaxInstrLen = 15;

/// Returns true if \p Byte is a legacy prefix.
bool isPrefixByte(uint8_t Byte) {
  switch (Byte) {
  case 0xF0: // LOCK
  case 0xF2: // REPNE
  case 0xF3: // REP
  case 0x2E: // CS
  case 0x36: // SS
  case 0x3E: // DS
  case 0x26: // ES
  case 0x64: // FS
  case 0x65: // GS
  case 0x66: // operand size
  case 0x67: // address size
    return true;
  default:
    return false;
  }
}

} // namespace

/// Consumes the ModRM byte plus SIB and displacement; returns the number
/// of bytes consumed, or 0 when truncated.
static size_t modRMSize(const uint8_t *Bytes, size_t Size, bool Addr16) {
  if (Size < 1)
    return 0;
  uint8_t ModRM = Bytes[0];
  uint8_t Mod = ModRM >> 6;
  uint8_t RM = ModRM & 7;
  if (Mod == 3)
    return 1;

  if (Addr16) {
    // 16-bit addressing: no SIB; mod=00 rm=110 is disp16.
    size_t Disp = Mod == 1 ? 1 : Mod == 2 ? 2 : (RM == 6 ? 2 : 0);
    return 1 + Disp <= Size ? 1 + Disp : 0;
  }

  size_t Consumed = 1;
  size_t Disp = Mod == 1 ? 1 : Mod == 2 ? 4 : 0;
  if (RM == 4) {
    // SIB byte follows.
    if (Size < 2)
      return 0;
    uint8_t SIB = Bytes[1];
    ++Consumed;
    if (Mod == 0 && (SIB & 7) == 5)
      Disp = 4; // no-base form with disp32
  } else if (Mod == 0 && RM == 5) {
    Disp = 4; // absolute disp32
  }
  Consumed += Disp;
  return Consumed <= Size ? Consumed : 0;
}

static int64_t readImm(const uint8_t *Bytes, size_t Width) {
  uint32_t Value = 0;
  for (size_t I = 0; I < Width; ++I)
    Value |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  switch (Width) {
  case 1:
    return static_cast<int8_t>(Value);
  case 2:
    return static_cast<int16_t>(Value);
  default:
    return static_cast<int32_t>(Value);
  }
}

/// Shared decode body. \p WantFields selects between the full decode
/// (operand fields materialized into \p Out) and the length/class-only
/// variant used by the bulk gadget scan, which skips every write and
/// immediate read that does not affect (valid, Length, Class). The two
/// instantiations share all length and classification logic by
/// construction; DecoderTest and ScannerParityTest additionally pin
/// them equal over random byte streams.
template <bool WantFields>
static bool decodeImpl(const uint8_t *Bytes, size_t Size, Decoded &Out) {
  if constexpr (WantFields)
    Out = Decoded();
  else {
    Out.Length = 0;
    Out.Class = InstrClass::Invalid;
  }
  if (Size == 0)
    return false;
  if (Size > MaxInstrLen)
    Size = MaxInstrLen;

  // Consume legacy prefixes.
  size_t Pos = 0;
  bool Op16 = false;
  bool Addr16 = false;
  while (Pos < Size && isPrefixByte(Bytes[Pos])) {
    if (Bytes[Pos] == 0x66)
      Op16 = true;
    if (Bytes[Pos] == 0x67)
      Addr16 = true;
    ++Pos;
  }
  if constexpr (WantFields)
    Out.NumPrefixes = static_cast<uint8_t>(Pos);
  if (Pos >= Size)
    return false; // all prefixes, no opcode

  // Fetch the opcode and its table entry.
  uint8_t Op = Bytes[Pos++];
  bool TwoByte = false;
  const OpInfo *Info;
  if (Op == 0x0F) {
    if (Pos >= Size)
      return false;
    Op = Bytes[Pos++];
    TwoByte = true;
    if constexpr (WantFields)
      Out.TwoByte = true;
    // Three-byte escapes (0F 38 / 0F 3A): SSSE3+ ModRM instructions.
    if (Op == 0x38 || Op == 0x3A) {
      bool HasImm = Op == 0x3A;
      if (Pos >= Size)
        return false;
      if constexpr (WantFields)
        Out.Opcode = Bytes[Pos]; // tertiary opcode
      ++Pos;
      size_t MSize = modRMSize(Bytes + Pos, Size - Pos, Addr16);
      if (MSize == 0)
        return false;
      if constexpr (WantFields) {
        Out.HasModRM = true;
        Out.ModRM = Bytes[Pos];
      }
      Pos += MSize;
      if (HasImm) {
        if (Pos >= Size)
          return false;
        if constexpr (WantFields) {
          Out.HasImm = true;
          Out.Imm = readImm(Bytes + Pos, 1);
        }
        ++Pos;
      }
      Out.Length = static_cast<uint8_t>(Pos);
      Out.Class = InstrClass::Normal;
      return true;
    }
    Info = &TwoByteTable[Op];
  } else {
    Info = &OneByteTable[Op];
  }
  if constexpr (WantFields)
    Out.Opcode = Op;
  Out.Class = Info->Class;

  // ModRM (+SIB +displacement).
  uint8_t ModRM = 0;
  if (Info->Flags & FModRM) {
    size_t MSize = modRMSize(Bytes + Pos, Size - Pos, Addr16);
    if (MSize == 0) {
      Out.Class = InstrClass::Invalid;
      return false;
    }
    ModRM = Bytes[Pos];
    if constexpr (WantFields) {
      Out.HasModRM = true;
      Out.ModRM = ModRM;
    }
    Pos += MSize;
  }
  const uint8_t ModField = ModRM >> 6;
  const uint8_t RegField = (ModRM >> 3) & 7;

  // Immediates / displacements.
  size_t ImmBytes = 0;
  if (Info->Flags & FImm8)
    ImmBytes += 1;
  if (Info->Flags & FImm16)
    ImmBytes += 2;
  if (Info->Flags & FImmZ)
    ImmBytes += Op16 ? 2 : 4;
  if (Info->Flags & FRel8)
    ImmBytes += 1;
  if (Info->Flags & FRelZ)
    ImmBytes += Op16 ? 2 : 4;
  if (Info->Flags & FMoffs)
    ImmBytes += Addr16 ? 2 : 4;
  if (Info->Flags & FFarPtr)
    ImmBytes += (Op16 ? 2 : 4) + 2;
  if (Pos + ImmBytes > Size) {
    Out.Class = InstrClass::Invalid;
    return false;
  }
  if (ImmBytes != 0) {
    if constexpr (WantFields) {
      Out.HasImm = true;
      // For multi-part immediates (ENTER, far pointers) keep the first
      // component; the classifier only needs INT/RET-style immediates.
      size_t FirstWidth = ImmBytes;
      if (Info->Flags & FFarPtr)
        FirstWidth = Op16 ? 2 : 4;
      else if ((Info->Flags & FImm16) && (Info->Flags & FImm8))
        FirstWidth = 2; // ENTER imm16, imm8
      else if (FirstWidth > 4)
        FirstWidth = 4;
      Out.Imm = readImm(Bytes + Pos, FirstWidth);
    }
    Pos += ImmBytes;
  }
  if (Pos > MaxInstrLen) {
    Out.Class = InstrClass::Invalid;
    return false;
  }
  Out.Length = static_cast<uint8_t>(Pos);

  // Per-ModRM refinements of groups and special cases.
  if (!TwoByte) {
    switch (Op) {
    case 0x62: // BOUND: register form undefined
    case 0xC4: // LES: register form undefined
    case 0xC5: // LDS: register form undefined
    case 0x8D: // LEA: register form undefined
      if (ModField == 3)
        Out.Class = InstrClass::Invalid;
      break;
    case 0x8E: // MOV sreg, rm: loading CS is undefined
      if (RegField == 1)
        Out.Class = InstrClass::Invalid;
      break;
    case 0x8F: // POP rm: only /0 defined
      if (RegField != 0)
        Out.Class = InstrClass::Invalid;
      break;
    case 0xC6:
    case 0xC7: // MOV rm, imm: only /0 defined
      if (RegField != 0)
        Out.Class = InstrClass::Invalid;
      break;
    case 0xF6: // group 3 rm8: /0,/1 TEST take imm8
    case 0xF7: // group 3 rm32: /0,/1 TEST take immZ
      if (RegField <= 1) {
        size_t W = Op == 0xF6 ? 1 : (Op16 ? 2 : 4);
        if (Out.Length + W > Size || Out.Length + W > MaxInstrLen) {
          Out.Class = InstrClass::Invalid;
          return false;
        }
        if constexpr (WantFields) {
          Out.HasImm = true;
          Out.Imm = readImm(Bytes + Out.Length, W);
        }
        Out.Length = static_cast<uint8_t>(Out.Length + W);
      }
      break;
    case 0xFE: // group 4: only INC/DEC rm8
      if (RegField > 1)
        Out.Class = InstrClass::Invalid;
      break;
    case 0xFF: // group 5
      switch (RegField) {
      case 0:
      case 1: // INC/DEC rm32
        break;
      case 2: // CALL rm32
        Out.Class = InstrClass::CallInd;
        break;
      case 3: // CALL far m16:32 (memory only)
        Out.Class =
            ModField == 3 ? InstrClass::Invalid : InstrClass::CallInd;
        break;
      case 4: // JMP rm32
        Out.Class = InstrClass::JmpInd;
        break;
      case 5: // JMP far m16:32 (memory only)
        Out.Class =
            ModField == 3 ? InstrClass::Invalid : InstrClass::JmpInd;
        break;
      case 6: // PUSH rm32
        break;
      default: // /7 undefined
        Out.Class = InstrClass::Invalid;
        break;
      }
      break;
    default:
      break;
    }
  } else {
    switch (Op) {
    case 0xB2: // LSS
    case 0xB4: // LFS
    case 0xB5: // LGS: register forms undefined
      if (ModField == 3)
        Out.Class = InstrClass::Invalid;
      break;
    case 0xC7: // group 9: only CMPXCHG8B m64 (/1, memory)
      if (RegField != 1 || ModField == 3)
        Out.Class = InstrClass::Invalid;
      break;
    default:
      break;
    }
  }

  return Out.Class != InstrClass::Invalid;
}

bool x86::decodeInstr(const uint8_t *Bytes, size_t Size, Decoded &Out) {
  return decodeImpl<true>(Bytes, Size, Out);
}

bool x86::decodeLenClass(const uint8_t *Bytes, size_t Size,
                         uint8_t &LengthOut, InstrClass &ClassOut) {
  Decoded Scratch;
  bool Ok = decodeImpl<false>(Bytes, Size, Scratch);
  LengthOut = Scratch.Length;
  ClassOut = Scratch.Class;
  return Ok;
}
