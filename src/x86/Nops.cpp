//===-- x86/Nops.cpp - NOP candidate table (paper Table 1) ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Nops.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::x86;

// Paper Table 1, in order. The one-byte NOP stores 0 as its second byte.
static constexpr NopInfo NopRows[NumNopKinds] = {
    {NopKind::Nop90, "NOP", {0x90, 0x00}, 1, "-", false},
    {NopKind::MovEspEsp, "MOV ESP, ESP", {0x89, 0xE4}, 2, "IN", false},
    {NopKind::MovEbpEbp, "MOV EBP, EBP", {0x89, 0xED}, 2, "IN", false},
    {NopKind::LeaEsiEsi, "LEA ESI, [ESI]", {0x8D, 0x36}, 2, "SS:", false},
    {NopKind::LeaEdiEdi, "LEA EDI, [EDI]", {0x8D, 0x3F}, 2, "AAS", false},
    {NopKind::XchgEspEsp, "XCHG ESP, ESP", {0x87, 0xE4}, 2, "IN", true},
    {NopKind::XchgEbpEbp, "XCHG EBP, EBP", {0x87, 0xED}, 2, "IN", true},
};

const NopInfo &x86::nopInfo(NopKind Kind) {
  unsigned Index = static_cast<unsigned>(Kind);
  assert(Index < NumNopKinds && "invalid NOP kind");
  assert(NopRows[Index].Kind == Kind && "table order mismatch");
  return NopRows[Index];
}

const NopInfo *x86::nopTable(size_t &Count) {
  Count = NumNopKinds;
  return NopRows;
}

void x86::appendNopBytes(NopKind Kind, std::vector<uint8_t> &Out) {
  const NopInfo &Info = nopInfo(Kind);
  Out.push_back(Info.Bytes[0]);
  if (Info.Length == 2)
    Out.push_back(Info.Bytes[1]);
}

bool x86::matchNopAt(const uint8_t *Bytes, size_t Size, bool IncludeXchg,
                     NopKind &KindOut) {
  if (Size == 0)
    return false;
  for (const NopInfo &Info : NopRows) {
    if (Info.LocksBus && !IncludeXchg)
      continue;
    if (Info.Length > Size)
      continue;
    if (Bytes[0] != Info.Bytes[0])
      continue;
    if (Info.Length == 2 && Bytes[1] != Info.Bytes[1])
      continue;
    KindOut = Info.Kind;
    return true;
  }
  return false;
}
