//===-- x86/Encoder.h - IA-32 machine-code emitter ---------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits real IA-32 machine code for the instruction subset produced by
/// the code generator. The NOP insertion pass runs on the machine IR just
/// before these bytes are produced (paper Section 4: "our strategy is to
/// insert NOPs into the lower-level representation, after the compiler
/// performs all optimizations and just before it emits native code"), so
/// the byte-level output is what the gadget scanner and Survivor analyze.
///
/// Branch and call targets are emitted as rel32 placeholders; the caller
/// records the returned fixup offsets and patches them once block/function
/// layout is final (see codegen/Emitter).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_X86_ENCODER_H
#define PGSD_X86_ENCODER_H

#include "x86/Nops.h"
#include "x86/X86.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace x86 {

/// Two-operand ALU operations sharing the classic opcode-row layout.
enum class AluOp : uint8_t {
  Add = 0,
  Or = 1,
  Adc = 2,
  Sbb = 3,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

/// Shift operations (group 2 /reg selectors).
enum class ShiftOp : uint8_t {
  Shl = 4,
  Shr = 5,
  Sar = 7,
};

/// Appends encoded IA-32 instructions to a byte buffer.
class Encoder {
public:
  explicit Encoder(std::vector<uint8_t> &Buffer) : Out(Buffer) {}

  /// Current offset, i.e. the position the next instruction starts at.
  size_t offset() const { return Out.size(); }

  // Moves.
  void movRR(Reg Dst, Reg Src);           ///< MOV Dst, Src       (89 /r)
  void movRI(Reg Dst, int32_t Imm);       ///< MOV Dst, imm32     (B8+rd)
  void movLoad(Reg Dst, const Mem &Src);  ///< MOV Dst, [Src]     (8B /r)
  void movStore(const Mem &Dst, Reg Src); ///< MOV [Dst], Src     (89 /r)
  void movStoreImm(const Mem &Dst, int32_t Imm); ///< MOV [Dst], imm (C7 /0)
  void leaRM(Reg Dst, const Mem &Src);    ///< LEA Dst, [Src]     (8D /r)

  // ALU.
  void aluRR(AluOp Op, Reg Dst, Reg Src); ///< op Dst, Src
  void aluRI(AluOp Op, Reg Dst, int32_t Imm); ///< op Dst, imm (81/83 /n)
  void aluRM(AluOp Op, Reg Dst, const Mem &Src); ///< op Dst, [Src]
  void imulRR(Reg Dst, Reg Src);          ///< IMUL Dst, Src      (0F AF /r)
  void cdq();                             ///< CDQ                (99)
  void idivR(Reg Src);                    ///< IDIV Src           (F7 /7)
  void negR(Reg R);                       ///< NEG R              (F7 /3)
  void notR(Reg R);                       ///< NOT R              (F7 /2)
  void shiftRI(ShiftOp Op, Reg R, uint8_t Amount); ///< shift R, imm8
  void shiftRCL(ShiftOp Op, Reg R);       ///< shift R, CL        (D3 /n)
  void testRR(Reg A, Reg B);              ///< TEST A, B          (85 /r)

  // Flag materialization: SETcc writes the low byte of a register, so the
  // destination must be EAX..EBX (which have 8-bit subregisters).
  void setccR8(CondCode CC, Reg Dst);     ///< SETcc Dst8      (0F 90+cc)
  void movzxR8(Reg Dst, Reg Src);         ///< MOVZX Dst, Src8 (0F B6 /r)

  // Stack.
  void pushR(Reg R);                      ///< PUSH R             (50+rd)
  void pushI(int32_t Imm);                ///< PUSH imm32         (68)
  void popR(Reg R);                       ///< POP R              (58+rd)
  void leave();                           ///< LEAVE              (C9)

  // Control flow. The *Rel forms emit a rel32 placeholder and return the
  /// byte offset of that placeholder for later patching.
  size_t callRel();                       ///< CALL rel32         (E8)
  size_t jmpRel();                        ///< JMP rel32          (E9)
  size_t jccRel(CondCode CC);             ///< Jcc rel32       (0F 80+cc)
  void callInd(Reg R);                    ///< CALL R             (FF /2)
  void jmpInd(Reg R);                     ///< JMP R              (FF /4)
  void ret();                             ///< RET                (C3)
  void retImm(uint16_t PopBytes);         ///< RET imm16          (C2)
  void intN(uint8_t Vector);              ///< INT imm8           (CD)

  /// INC dword [M] (FF /0) -- the classic profiling-counter increment.
  /// Returns the byte offset of the disp32 field so the linker can
  /// relocate absolute counter addresses.
  size_t incMem(const Mem &M);

  // Diversity NOPs (paper Table 1).
  void nop(NopKind Kind);

  /// Patches a previously emitted rel32 placeholder at \p FixupOffset so
  /// the branch lands on \p TargetOffset (both relative to buffer start).
  void patchRel32(size_t FixupOffset, size_t TargetOffset);

  /// Writes a raw byte (used by the libc-stub builder for data padding).
  void rawByte(uint8_t Byte) { Out.push_back(Byte); }

private:
  void byte(uint8_t B) { Out.push_back(B); }
  void imm16(uint16_t V);
  void imm32(uint32_t V);
  /// Emits a ModRM byte with register-direct rm (mod = 11).
  void modRMReg(uint8_t RegField, Reg RM);
  /// Emits ModRM (+SIB +disp) for a memory operand.
  void modRMMem(uint8_t RegField, const Mem &M);

  std::vector<uint8_t> &Out;
};

} // namespace x86
} // namespace pgsd

#endif // PGSD_X86_ENCODER_H
