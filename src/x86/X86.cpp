//===-- x86/X86.cpp - IA-32 common definitions ----------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/X86.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::x86;

const char *x86::regName(Reg R) {
  static const char *const Names[NumRegs] = {"eax", "ecx", "edx", "ebx",
                                             "esp", "ebp", "esi", "edi"};
  assert(regNum(R) < NumRegs && "invalid register");
  return Names[regNum(R)];
}

const char *x86::condName(CondCode CC) {
  static const char *const Names[16] = {"o", "no", "b",  "ae", "e",  "ne",
                                        "be", "a", "s",  "ns", "p",  "np",
                                        "l",  "ge", "le", "g"};
  assert(static_cast<uint8_t>(CC) < 16 && "invalid condition code");
  return Names[static_cast<uint8_t>(CC)];
}
