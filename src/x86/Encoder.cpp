//===-- x86/Encoder.cpp - IA-32 machine-code emitter ----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Encoder.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::x86;

static bool fitsInt8(int32_t V) { return V >= -128 && V <= 127; }

void Encoder::imm16(uint16_t V) {
  byte(static_cast<uint8_t>(V));
  byte(static_cast<uint8_t>(V >> 8));
}

void Encoder::imm32(uint32_t V) {
  byte(static_cast<uint8_t>(V));
  byte(static_cast<uint8_t>(V >> 8));
  byte(static_cast<uint8_t>(V >> 16));
  byte(static_cast<uint8_t>(V >> 24));
}

void Encoder::modRMReg(uint8_t RegField, Reg RM) {
  assert(RegField < 8 && "reg field out of range");
  byte(static_cast<uint8_t>(0xC0 | (RegField << 3) | regNum(RM)));
}

void Encoder::modRMMem(uint8_t RegField, const Mem &M) {
  assert(RegField < 8 && "reg field out of range");
  if (!M.HasBase) {
    // Absolute [disp32]: mod = 00, rm = 101.
    byte(static_cast<uint8_t>((RegField << 3) | 0x05));
    imm32(static_cast<uint32_t>(M.Disp));
    return;
  }

  uint8_t Base = regNum(M.Base);
  bool NeedSIB = M.Base == Reg::ESP; // rm = 100 selects a SIB byte
  // [EBP] with mod = 00 would mean [disp32]; force a disp8 of zero.
  uint8_t Mod;
  if (M.Disp == 0 && M.Base != Reg::EBP)
    Mod = 0;
  else if (fitsInt8(M.Disp))
    Mod = 1;
  else
    Mod = 2;

  uint8_t RM = NeedSIB ? 4 : Base;
  byte(static_cast<uint8_t>((Mod << 6) | (RegField << 3) | RM));
  if (NeedSIB)
    byte(0x24); // scale = 0, index = none, base = ESP
  if (Mod == 1)
    byte(static_cast<uint8_t>(static_cast<int8_t>(M.Disp)));
  else if (Mod == 2)
    imm32(static_cast<uint32_t>(M.Disp));
}

void Encoder::movRR(Reg Dst, Reg Src) {
  byte(0x89); // MOV r/m32, r32
  modRMReg(regNum(Src), Dst);
}

void Encoder::movRI(Reg Dst, int32_t Imm) {
  byte(static_cast<uint8_t>(0xB8 + regNum(Dst)));
  imm32(static_cast<uint32_t>(Imm));
}

void Encoder::movLoad(Reg Dst, const Mem &Src) {
  byte(0x8B); // MOV r32, r/m32
  modRMMem(regNum(Dst), Src);
}

void Encoder::movStore(const Mem &Dst, Reg Src) {
  byte(0x89); // MOV r/m32, r32
  modRMMem(regNum(Src), Dst);
}

void Encoder::movStoreImm(const Mem &Dst, int32_t Imm) {
  byte(0xC7); // MOV r/m32, imm32 (/0)
  modRMMem(0, Dst);
  imm32(static_cast<uint32_t>(Imm));
}

void Encoder::leaRM(Reg Dst, const Mem &Src) {
  assert(Src.HasBase && "LEA of an absolute address is just MOV imm");
  byte(0x8D);
  modRMMem(regNum(Dst), Src);
}

void Encoder::aluRR(AluOp Op, Reg Dst, Reg Src) {
  // Row base + 1: op r/m32, r32.
  byte(static_cast<uint8_t>((static_cast<uint8_t>(Op) << 3) | 0x01));
  modRMReg(regNum(Src), Dst);
}

void Encoder::aluRI(AluOp Op, Reg Dst, int32_t Imm) {
  if (fitsInt8(Imm)) {
    byte(0x83); // op r/m32, imm8 (sign-extended)
    modRMReg(static_cast<uint8_t>(Op), Dst);
    byte(static_cast<uint8_t>(static_cast<int8_t>(Imm)));
    return;
  }
  byte(0x81); // op r/m32, imm32
  modRMReg(static_cast<uint8_t>(Op), Dst);
  imm32(static_cast<uint32_t>(Imm));
}

void Encoder::aluRM(AluOp Op, Reg Dst, const Mem &Src) {
  // Row base + 3: op r32, r/m32.
  byte(static_cast<uint8_t>((static_cast<uint8_t>(Op) << 3) | 0x03));
  modRMMem(regNum(Dst), Src);
}

void Encoder::imulRR(Reg Dst, Reg Src) {
  byte(0x0F);
  byte(0xAF);
  modRMReg(regNum(Dst), Src);
}

void Encoder::cdq() { byte(0x99); }

void Encoder::idivR(Reg Src) {
  byte(0xF7);
  modRMReg(7, Src);
}

void Encoder::negR(Reg R) {
  byte(0xF7);
  modRMReg(3, R);
}

void Encoder::notR(Reg R) {
  byte(0xF7);
  modRMReg(2, R);
}

void Encoder::shiftRI(ShiftOp Op, Reg R, uint8_t Amount) {
  byte(0xC1);
  modRMReg(static_cast<uint8_t>(Op), R);
  byte(Amount);
}

void Encoder::shiftRCL(ShiftOp Op, Reg R) {
  byte(0xD3);
  modRMReg(static_cast<uint8_t>(Op), R);
}

void Encoder::testRR(Reg A, Reg B) {
  byte(0x85);
  modRMReg(regNum(B), A);
}

void Encoder::setccR8(CondCode CC, Reg Dst) {
  assert(regNum(Dst) < 4 && "SETcc needs a register with an 8-bit subreg");
  byte(0x0F);
  byte(static_cast<uint8_t>(0x90 + static_cast<uint8_t>(CC)));
  modRMReg(0, Dst);
}

void Encoder::movzxR8(Reg Dst, Reg Src) {
  assert(regNum(Src) < 4 && "MOVZX source must have an 8-bit subreg");
  byte(0x0F);
  byte(0xB6);
  modRMReg(regNum(Dst), Src);
}

void Encoder::pushR(Reg R) { byte(static_cast<uint8_t>(0x50 + regNum(R))); }

void Encoder::pushI(int32_t Imm) {
  byte(0x68);
  imm32(static_cast<uint32_t>(Imm));
}

void Encoder::popR(Reg R) { byte(static_cast<uint8_t>(0x58 + regNum(R))); }

void Encoder::leave() { byte(0xC9); }

size_t Encoder::callRel() {
  byte(0xE8);
  size_t Fixup = Out.size();
  imm32(0);
  return Fixup;
}

size_t Encoder::jmpRel() {
  byte(0xE9);
  size_t Fixup = Out.size();
  imm32(0);
  return Fixup;
}

size_t Encoder::jccRel(CondCode CC) {
  byte(0x0F);
  byte(static_cast<uint8_t>(0x80 + static_cast<uint8_t>(CC)));
  size_t Fixup = Out.size();
  imm32(0);
  return Fixup;
}

void Encoder::callInd(Reg R) {
  byte(0xFF);
  modRMReg(2, R);
}

void Encoder::jmpInd(Reg R) {
  byte(0xFF);
  modRMReg(4, R);
}

void Encoder::ret() { byte(0xC3); }

void Encoder::retImm(uint16_t PopBytes) {
  byte(0xC2);
  imm16(PopBytes);
}

void Encoder::intN(uint8_t Vector) {
  byte(0xCD);
  byte(Vector);
}

size_t Encoder::incMem(const Mem &M) {
  assert(!M.HasBase && "counter increments use absolute addresses");
  byte(0xFF); // group 5, /0 = INC r/m32
  size_t DispOffset = Out.size() + 1; // after the ModRM byte
  modRMMem(0, M);
  return DispOffset;
}

void Encoder::nop(NopKind Kind) { appendNopBytes(Kind, Out); }

void Encoder::patchRel32(size_t FixupOffset, size_t TargetOffset) {
  assert(FixupOffset + 4 <= Out.size() && "fixup out of range");
  // rel32 is relative to the end of the instruction, i.e. the byte after
  // the displacement field.
  int32_t Rel = static_cast<int32_t>(TargetOffset) -
                static_cast<int32_t>(FixupOffset + 4);
  Out[FixupOffset] = static_cast<uint8_t>(Rel);
  Out[FixupOffset + 1] = static_cast<uint8_t>(Rel >> 8);
  Out[FixupOffset + 2] = static_cast<uint8_t>(Rel >> 16);
  Out[FixupOffset + 3] = static_cast<uint8_t>(Rel >> 24);
}
