//===-- x86/Disasm.h - IA-32 textual disassembler ----------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decoded IA-32 instructions as Intel-syntax text. Used by the
/// examples and tools to show gadgets the way ROP tooling prints them,
/// and by tests to pin decoder semantics to human-checkable strings.
///
/// Coverage focuses on the instructions that appear in generated code
/// and in gadget scans: the full ALU rows, moves, stack operations,
/// control flow, string ops, shifts/groups, and the common two-byte
/// opcodes. Anything else renders as a generic "op_XX" form with its
/// operands, never as wrong text.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_X86_DISASM_H
#define PGSD_X86_DISASM_H

#include "x86/Decoder.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace x86 {

/// Disassembles the single instruction at \p Bytes (decoded as \p D,
/// which must have come from decodeInstr on the same bytes).
std::string disassemble(const uint8_t *Bytes, const Decoded &D);

/// Decodes and disassembles one instruction; returns "(bad)" when the
/// bytes do not decode.
std::string disassembleAt(const uint8_t *Bytes, size_t Size);

/// One line of a linear disassembly listing.
struct DisasmLine {
  uint32_t Offset = 0;
  uint8_t Length = 0;
  std::string Text;
  bool Valid = false;
};

/// Linearly disassembles [Begin, End) of \p Text, resynchronizing one
/// byte after invalid encodings (which appear as "(bad)" lines).
std::vector<DisasmLine> disassembleRange(const uint8_t *Text, size_t Size,
                                         uint32_t Begin, uint32_t End);

} // namespace x86
} // namespace pgsd

#endif // PGSD_X86_DISASM_H
