//===-- workloads/SpecSmall.cpp - Small SPEC-like workloads ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// The small benchmarks: lbm, mcf, libquantum, bzip2, astar, milc. Each
// comment states which dynamic property of the SPEC original the model
// preserves (those are the properties Figures 4 and Tables 2-3 react to).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

using namespace pgsd;
using namespace pgsd::workloads;

// 470.lbm: lattice-Boltzmann fluid solver. Dynamic signature: streaming
// sweeps over large arrays -- memory-bound with a division per site, so
// inserted NOPs hide behind expensive instructions (the paper measured
// ~0% overhead and even small noise-level speedups).
Workload detail::buildLbm() {
  Workload W;
  W.Name = "470.lbm";
  W.Source = R"(
global src[40000];
global dst[40000];

fn init_grid(n) {
  var i = 0;
  var x = 88172645;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 1073741823;
    src[i] = x & 65535;
    i = i + 1;
  }
  return 0;
}

fn relax_sweep(n) {
  var i = 1;
  while (i < n - 1) {
    // Four-point stencil with the collision step's two normalization
    // divides (equilibrium distribution + relaxation).
    var t = src[i - 1] + src[i] * 2 + src[i + 1];
    dst[i] = t / 4 + (t % 7) - (src[i] / 3);
    i = i + 1;
  }
  dst[0] = src[0];
  dst[n - 1] = src[n - 1];
  return 0;
}

fn copy_back(n) {
  var i = 0;
  while (i < n) {
    src[i] = dst[i];
    i = i + 1;
  }
  return 0;
}

fn main() {
  var n = read_int();
  var steps = read_int();
  init_grid(n);
  var t = 0;
  while (t < steps) {
    relax_sweep(n);
    copy_back(n);
    t = t + 1;
  }
  var sum = 0;
  var i = 0;
  while (i < n) {
    sum = sum + src[i];
    i = i + 1;
  }
  print_int(sum);
  return 0;
}
)";
  W.TrainInput = {8000, 2};
  W.RefInput = {40000, 4};
  return W;
}

// 429.mcf: vehicle-scheduling min-cost flow. Dynamic signature:
// pointer-chasing relaxation rounds over edge arrays -- load-dominated
// inner loop with unpredictable branches.
Workload detail::buildMcf() {
  Workload W;
  W.Name = "429.mcf";
  W.Source = R"(
global dist[4096];
global eu[20000];
global ev[20000];
global ew[20000];

fn build_graph(nodes, edges) {
  var x = 123456789;
  var e = 0;
  while (e < edges) {
    x = (x * 1103515245 + 12345) & 1073741823;
    eu[e] = x & (nodes - 1);
    x = (x * 1103515245 + 12345) & 1073741823;
    ev[e] = x & (nodes - 1);
    x = (x * 1103515245 + 12345) & 1073741823;
    ew[e] = (x & 255) + 1;
    e = e + 1;
  }
  return 0;
}

fn relax_round(edges) {
  var improved = 0;
  var e = 0;
  while (e < edges) {
    var u = eu[e];
    var v = ev[e];
    var cand = dist[u] + ew[e];
    if (cand < dist[v]) {
      dist[v] = cand;
      improved = improved + 1;
    }
    e = e + 1;
  }
  return improved;
}

fn main() {
  var nodes = read_int();
  var edges = read_int();
  var rounds = read_int();
  build_graph(nodes, edges);
  var i = 1;
  while (i < nodes) {
    dist[i] = 999999999;
    i = i + 1;
  }
  dist[0] = 0;
  var total = 0;
  var r = 0;
  while (r < rounds) {
    total = total + relax_round(edges);
    r = r + 1;
  }
  var sum = 0;
  i = 0;
  while (i < nodes) {
    sum = sum ^ dist[i];
    i = i + 1;
  }
  print_int(total);
  print_int(sum);
  return 0;
}
)";
  W.TrainInput = {1024, 6000, 8};
  W.RefInput = {4096, 20000, 10};
  return W;
}

// 462.libquantum: quantum computer simulation. Dynamic signature: gate
// applications as whole-state-vector sweeps of cheap bit operations --
// the paper's largest execution counts came from code like this
// (hmmer/libquantum, x_max in the billions).
Workload detail::buildLibquantum() {
  Workload W;
  W.Name = "462.libquantum";
  W.Source = R"(
global state[65536];

fn init_state(n) {
  var i = 0;
  while (i < n) {
    state[i] = i * 2654435761;
    i = i + 1;
  }
  return 0;
}

fn gate_not(n, bit) {
  var mask = 1 << bit;
  var i = 0;
  while (i < n) {
    state[i] = state[i] ^ mask;
    i = i + 1;
  }
  return 0;
}

fn gate_cnot(n, control, target) {
  var cmask = 1 << control;
  var tmask = 1 << target;
  var i = 0;
  while (i < n) {
    if ((state[i] & cmask) != 0) {
      state[i] = state[i] ^ tmask;
    }
    i = i + 1;
  }
  return 0;
}

fn gate_phase(n, bit) {
  var mask = (1 << bit) - 1;
  var i = 0;
  while (i < n) {
    state[i] = (state[i] + (state[i] & mask)) & 1073741823;
    i = i + 1;
  }
  return 0;
}

fn main() {
  var n = read_int();
  var gates = read_int();
  init_state(n);
  var g = 0;
  while (g < gates) {
    var sel = g - (g / 3) * 3;
    var bit = g - (g / 13) * 13;
    if (sel == 0) {
      gate_not(n, bit);
    } else if (sel == 1) {
      gate_cnot(n, bit, (bit + 3) & 15);
    } else {
      gate_phase(n, bit);
    }
    g = g + 1;
  }
  var sum = 0;
  var i = 0;
  while (i < n) {
    sum = sum ^ state[i];
    i = i + 1;
  }
  print_int(sum);
  return 0;
}
)";
  W.TrainInput = {8192, 12};
  W.RefInput = {16384, 28};
  return W;
}

// 401.bzip2: compression. Dynamic signature: run-length coding plus the
// move-to-front inner scan -- a mix of short data-dependent loops with a
// hot linear search.
Workload detail::buildBzip2() {
  Workload W;
  W.Name = "401.bzip2";
  W.Source = R"(
global data[120000];
global mtf[256];
global freq[256];

fn generate_input(n, runs) {
  var x = 42;
  var i = 0;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 1073741823;
    var sym = (x >> 8) & 63;
    var len = (x & runs) + 1;
    var j = 0;
    while (j < len && i < n) {
      data[i] = sym;
      i = i + 1;
      j = j + 1;
    }
  }
  return 0;
}

fn mtf_encode(n) {
  var i = 0;
  while (i < 256) {
    mtf[i] = i;
    i = i + 1;
  }
  var total = 0;
  i = 0;
  while (i < n) {
    var sym = data[i];
    // Hot linear scan for the symbol's current rank.
    var r = 0;
    while (mtf[r] != sym) {
      r = r + 1;
    }
    total = total + r;
    freq[r] = freq[r] + 1;
    // Move to front.
    var k = r;
    while (k > 0) {
      mtf[k] = mtf[k - 1];
      k = k - 1;
    }
    mtf[0] = sym;
    i = i + 1;
  }
  return total;
}

fn entropy_cost() {
  var cost = 0;
  var i = 0;
  while (i < 256) {
    var f = freq[i];
    var bits = 1;
    while (f > 1) {
      f = f >> 1;
      bits = bits + 1;
    }
    cost = cost + freq[i] * bits;
    i = i + 1;
  }
  return cost;
}

fn main() {
  var n = read_int();
  var runs = read_int();
  generate_input(n, runs);
  var ranks = mtf_encode(n);
  var cost = entropy_cost();
  print_int(ranks);
  print_int(cost);
  return 0;
}
)";
  W.TrainInput = {12000, 7};
  W.RefInput = {40000, 15};
  return W;
}

// 473.astar: pathfinding. Dynamic signature: the paper singles this one
// out in Section 3.1 -- execution counts spread widely between median
// and maximum (median 117,635 vs max 2e9). The open-list minimum scan is
// the hot maximum; per-expansion bookkeeping supplies the broad middle.
Workload detail::buildAstar() {
  Workload W;
  W.Name = "473.astar";
  W.Source = R"(
global cost[4096];
global dist[4096];
global closed[4096];

fn build_map(size) {
  var x = 987654321;
  var i = 0;
  while (i < size * size) {
    x = (x * 1103515245 + 12345) & 1073741823;
    cost[i] = (x & 7) + 1;
    i = i + 1;
  }
  return 0;
}

fn search(size) {
  var n = size * size;
  var i = 0;
  while (i < n) {
    dist[i] = 999999999;
    closed[i] = 0;
    i = i + 1;
  }
  dist[0] = 0;
  var expanded = 0;
  while (1) {
    // Hot: scan all cells for the cheapest open one (naive open list,
    // like astar's array-based regions).
    var best = 0 - 1;
    var bestd = 999999999;
    var c = 0;
    while (c < n) {
      if (closed[c] == 0 && dist[c] < bestd) {
        bestd = dist[c];
        best = c;
      }
      c = c + 1;
    }
    if (best < 0) { break; }
    closed[best] = 1;
    expanded = expanded + 1;
    if (best == n - 1) { break; }
    // Moderate: relax the four neighbours.
    var bx = best - (best / size) * size;
    var by = best / size;
    if (bx > 0) {
      var w = best - 1;
      if (dist[best] + cost[w] < dist[w]) { dist[w] = dist[best] + cost[w]; }
    }
    if (bx < size - 1) {
      var e = best + 1;
      if (dist[best] + cost[e] < dist[e]) { dist[e] = dist[best] + cost[e]; }
    }
    if (by > 0) {
      var u = best - size;
      if (dist[best] + cost[u] < dist[u]) { dist[u] = dist[best] + cost[u]; }
    }
    if (by < size - 1) {
      var d = best + size;
      if (dist[best] + cost[d] < dist[d]) { dist[d] = dist[best] + cost[d]; }
    }
  }
  return expanded;
}

fn main() {
  var size = read_int();
  var repeats = read_int();
  build_map(size);
  var total = 0;
  var r = 0;
  while (r < repeats) {
    total = total + search(size);
    r = r + 1;
  }
  print_int(total);
  print_int(dist[size * size - 1]);
  return 0;
}
)";
  W.TrainInput = {20, 2};
  W.RefInput = {32, 3};
  return W;
}

// 433.milc: lattice QCD. Dynamic signature: several distinct sweep
// kernels over a lattice invoked in alternation, so heat spreads over
// multiple loops instead of one.
Workload detail::buildMilc() {
  Workload W;
  W.Name = "433.milc";
  W.Source = std::string(R"(
global lat[32768];
global stap[32768];

fn init_lattice(n) {
  var i = 0;
  while (i < n) {
    lat[i] = (i * 2654435761) & 16777215;
    i = i + 1;
  }
  return 0;
}

fn plaquette_sum(n) {
  var sum = 0;
  var i = 0;
  while (i < n - 4) {
    sum = sum + ((lat[i] * lat[i + 1] - lat[i + 2] * lat[i + 3]) >> 8);
    i = i + 1;
  }
  return sum;
}

fn compute_staples(n) {
  var i = 2;
  while (i < n - 2) {
    stap[i] = (lat[i - 2] + lat[i - 1] + lat[i + 1] + lat[i + 2]) >> 2;
    i = i + 1;
  }
  return 0;
}

fn update_links(n, beta) {
  var i = 0;
  while (i < n) {
    lat[i] = (lat[i] + beta * stap[i]) & 16777215;
    i = i + 1;
  }
  return 0;
}

fn main() {
  var n = read_int();
  var sweeps = read_int();
  init_lattice(n);
  var action = 0;
  var s = 0;
  while (s < sweeps) {
    compute_staples(n);
    update_links(n, (s & 3) + 1);
    action = action ^ plaquette_sum(n);
    s = s + 1;
  }
  print_int(action);
  sink(lib_dispatch(action & 7, action));
  return 0;
}
)");
  appendColdLibrary(W.Source, 8, 0x4330001);
  W.TrainInput = {8192, 3};
  W.RefInput = {16384, 6};
  return W;
}
