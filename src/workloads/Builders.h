//===-- workloads/Builders.h - Per-benchmark builders (internal) -*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal: one builder per SPEC-like workload, grouped by size class.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_WORKLOADS_BUILDERS_H
#define PGSD_WORKLOADS_BUILDERS_H

#include "workloads/Workloads.h"

namespace pgsd {
namespace workloads {
namespace detail {

// SpecSmall.cpp
Workload buildLbm();
Workload buildMcf();
Workload buildLibquantum();
Workload buildBzip2();
Workload buildAstar();
Workload buildMilc();

// SpecMid.cpp
Workload buildSjeng();
Workload buildHmmer();
Workload buildNamd();
Workload buildSphinx3();
Workload buildH264ref();
Workload buildSoplex();

// SpecLarge.cpp
Workload buildDealII();
Workload buildPovray();
Workload buildPerlbench();
Workload buildGobmk();
Workload buildOmnetpp();
Workload buildGcc();
Workload buildXalancbmk();

} // namespace detail
} // namespace workloads
} // namespace pgsd

#endif // PGSD_WORKLOADS_BUILDERS_H
