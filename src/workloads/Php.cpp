//===-- workloads/Php.cpp - PHP-like interpreter case study ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// The Section 5.2 case study target: PHP 5.3.16, "a popular
// network-facing application". Model: a bytecode interpreter written in
// MiniC (stack VM with variables, an array heap, and a call stack) whose
// input stream carries the script to execute -- so, like PHP, its hot
// paths depend on which script profile it was trained on. The seven
// profiling scripts mirror the Computer Language Benchmarks Game set the
// paper used.
//
// Like real binaries, the interpreter contains *unintended* gadget
// material: large immediate constants whose little-endian bytes decode
// to `pop r32; ret` and `mov [ebx], eax; ret` sequences (exactly the
// kind of misaligned-decoding gadget the ROP literature exploits on
// x86). The undiversified build is therefore attackable; diversification
// displaces these immediates.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workloads.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::workloads;

Workload workloads::phpInterpreter() {
  Workload W;
  W.Name = "php-5.3-like";
  W.Source = std::string(R"(
global code[4096];
global slots[128];
global heap[65536];
global vstack[1024];
global cstack[256];

// Opcode map (two words per instruction: op, arg):
//  0 HALT        1 PUSH imm    2 LOAD slot   3 STORE slot  4 ADD
//  5 SUB         6 MUL         7 DIV         8 MOD         9 LT
// 10 EQ         11 JZ addr    12 JMP addr   13 PRINT      14 ALOAD
// 15 ASTORE     16 DUP        17 XOR        18 SHL        19 SHR
// 20 CALL addr  21 RET        22 SWAP       23 GT
fn vm_run(fuel) {
  var pc = 0;
  var sp = 0;
  var cp = 0;
  // Unintended-gadget immediates (see file comment): these constants
  // exist to model data-in-code byte patterns; they also whiten the
  // VM's hash so scripts observe them.
  var h = 0 - 1027385157; // 0xC2C358BB: contains "pop eax; ret"
  while (fuel > 0) {
    fuel = fuel - 1;
    var op = code[pc];
    var arg = code[pc + 1];
    pc = pc + 2;
    if (op == 0) { break; }
    else if (op == 1) { vstack[sp] = arg; sp = sp + 1; }
    else if (op == 2) { vstack[sp] = slots[arg]; sp = sp + 1; }
    else if (op == 3) { sp = sp - 1; slots[arg] = vstack[sp]; }
    else if (op == 4) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] + vstack[sp]; }
    else if (op == 5) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] - vstack[sp]; }
    else if (op == 6) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] * vstack[sp]; }
    else if (op == 7) {
      sp = sp - 1;
      if (vstack[sp] == 0) { vstack[sp - 1] = 0; }
      else { vstack[sp - 1] = vstack[sp - 1] / vstack[sp]; }
    }
    else if (op == 8) {
      sp = sp - 1;
      if (vstack[sp] == 0) { vstack[sp - 1] = 0; }
      else { vstack[sp - 1] = vstack[sp - 1] % vstack[sp]; }
    }
    else if (op == 9) {
      sp = sp - 1;
      if (vstack[sp - 1] < vstack[sp]) { vstack[sp - 1] = 1; }
      else { vstack[sp - 1] = 0; }
    }
    else if (op == 10) {
      sp = sp - 1;
      if (vstack[sp - 1] == vstack[sp]) { vstack[sp - 1] = 1; }
      else { vstack[sp - 1] = 0; }
    }
    else if (op == 11) { sp = sp - 1; if (vstack[sp] == 0) { pc = arg; } }
    else if (op == 12) { pc = arg; }
    else if (op == 13) { sp = sp - 1; print_int(vstack[sp]); }
    else if (op == 14) { vstack[sp - 1] = heap[vstack[sp - 1] & 65535]; }
    else if (op == 15) {
      sp = sp - 2;
      heap[vstack[sp] & 65535] = vstack[sp + 1];
    }
    else if (op == 16) { vstack[sp] = vstack[sp - 1]; sp = sp + 1; }
    else if (op == 17) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] ^ vstack[sp]; }
    else if (op == 18) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] << (vstack[sp] & 31); }
    else if (op == 19) { sp = sp - 1; vstack[sp - 1] = vstack[sp - 1] >> (vstack[sp] & 31); }
    else if (op == 20) { cstack[cp] = pc; cp = cp + 1; pc = arg; }
    else if (op == 21) {
      if (cp == 0) { break; }
      cp = cp - 1;
      pc = cstack[cp];
    }
    else if (op == 22) {
      var t = vstack[sp - 1];
      vstack[sp - 1] = vstack[sp - 2];
      vstack[sp - 2] = t;
    }
    else if (op == 23) {
      sp = sp - 1;
      if (vstack[sp - 1] > vstack[sp]) { vstack[sp - 1] = 1; }
      else { vstack[sp - 1] = 0; }
    }
    else {
      h = h ^ (0 - 1027384901); // 0xC2C359BB: contains "pop ecx; ret"
      break;
    }
  }
  return h ^ sp;
}

fn zend_startup(marker) {
  // Engine-initialization stand-in; more unintended-gadget immediates.
  var sig = 0 - 1027384645;      // 0xC2C35ABB: "pop edx; ret"
  sig = sig ^ (0 - 1027384389);  // 0xC2C35BBB: "pop ebx; ret"
  sig = sig + (0 - 1023178377);  // 0xC3038977: "mov [ebx], eax; ret"
  var i = 0;
  while (i < 128) {
    slots[i] = 0;
    i = i + 1;
  }
  return sig ^ marker;
}

fn main() {
  var codelen = read_int();
  if (codelen <= 0 || codelen > 4095) { return 1; }
  var i = 0;
  while (i < codelen) {
    code[i] = read_int();
    i = i + 1;
  }
  // Remaining input words become the script's arguments in slots 100+.
  var nargs = input_len();
  if (nargs > 20) { nargs = 20; }
  i = 0;
  while (i < nargs) {
    slots[100 + i] = read_int();
    i = i + 1;
  }
  var sig = zend_startup(codelen);
  var h = vm_run(200000000);
  sink(sig);
  sink(h);
  return 0;
}
)");
  appendColdLibrary(W.Source, 140, 0x5030001);
  // Placeholder inputs; real runs append a script from clbgScripts().
  W.TrainInput = {};
  W.RefInput = {};
  return W;
}

namespace {

/// Tiny assembler for the VM above.
class Asm {
public:
  enum Op {
    HALT = 0,
    PUSH = 1,
    LOAD = 2,
    STORE = 3,
    ADD = 4,
    SUB = 5,
    MUL = 6,
    DIV = 7,
    MOD = 8,
    LT = 9,
    EQ = 10,
    JZ = 11,
    JMP = 12,
    PRINT = 13,
    ALOAD = 14,
    ASTORE = 15,
    DUP = 16,
    XOR = 17,
    SHL = 18,
    SHR = 19,
    CALL = 20,
    RET = 21,
    SWAP = 22,
    GT = 23,
  };

  /// Emits one instruction; returns the address of its arg word's
  /// instruction (for branch patching).
  size_t emit(Op O, int32_t Arg = 0) {
    size_t At = Code.size();
    Code.push_back(O);
    Code.push_back(Arg);
    return At;
  }

  /// Current instruction address (branch target).
  int32_t here() const { return static_cast<int32_t>(Code.size()); }

  /// Patches the argument of the instruction emitted at \p At.
  void patch(size_t At, int32_t Target) { Code[At + 1] = Target; }

  /// Builds the full VM input: [codelen, code..., args...].
  std::vector<int32_t> finish(std::vector<int32_t> Args) {
    std::vector<int32_t> Input;
    Input.push_back(static_cast<int32_t>(Code.size()));
    Input.insert(Input.end(), Code.begin(), Code.end());
    Input.insert(Input.end(), Args.begin(), Args.end());
    return Input;
  }

private:
  std::vector<int32_t> Code;
};

/// Shared loop skeleton: for (slot I = Init; I < Limit-slot; I += 1).
struct CountedLoop {
  size_t JzAt = 0;
  int32_t HeadAt = 0;
  int SlotI;
  int SlotLimit;
};

CountedLoop loopBegin(Asm &A, int SlotI, int32_t Init, int SlotLimit) {
  A.emit(Asm::PUSH, Init);
  A.emit(Asm::STORE, SlotI);
  CountedLoop L;
  L.SlotI = SlotI;
  L.SlotLimit = SlotLimit;
  L.HeadAt = A.here();
  A.emit(Asm::LOAD, SlotI);
  A.emit(Asm::LOAD, SlotLimit);
  A.emit(Asm::LT);
  L.JzAt = A.emit(Asm::JZ, 0);
  return L;
}

void loopEnd(Asm &A, const CountedLoop &L) {
  A.emit(Asm::LOAD, L.SlotI);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, L.SlotI);
  A.emit(Asm::JMP, L.HeadAt);
  A.patch(L.JzAt, A.here());
}

// --- the seven CLBG-style scripts ------------------------------------

// binarytrees: allocate implicit trees in the heap pool and checksum
// them with a recursive walk (stresses CALL/RET and the heap).
std::vector<int32_t> scriptBinarytrees() {
  Asm A;
  // Node i children at 2i+1 / 2i+2; value at heap[i].
  // slot 0 = n (pool size), slot 1 = i, slot 2 = acc, slot 100 = arg n.
  size_t SkipFn = A.emit(Asm::JMP, 0);
  // walk(node on stack) -> replaces with subtree sum, iterative depth 3:
  int32_t FnWalk = A.here();
  A.emit(Asm::DUP);
  A.emit(Asm::ALOAD); // value
  A.emit(Asm::SWAP);
  A.emit(Asm::PUSH, 2);
  A.emit(Asm::MUL);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::ALOAD); // left child value
  A.emit(Asm::ADD);
  A.emit(Asm::RET);
  A.patch(SkipFn, A.here());

  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  // fill pool: heap[i] = i * 31 (build)
  CountedLoop Fill = loopBegin(A, 1, 0, 0);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::PUSH, 31);
  A.emit(Asm::MUL);
  A.emit(Asm::ASTORE);
  loopEnd(A, Fill);
  // checksum with calls
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 2);
  CountedLoop Walk = loopBegin(A, 1, 0, 0);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::CALL, FnWalk);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, 2);
  loopEnd(A, Walk);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({9000});
}

// fannkuchredux: repeated prefix reversals of a permutation in the heap.
std::vector<int32_t> scriptFannkuch() {
  Asm A;
  // slot 0 = n, slot 1 = i, slot 2 = flips, slot 3 = k, slot 4 = lo,
  // slot 5 = hi, slot 6 = rounds.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  A.emit(Asm::LOAD, 101);
  A.emit(Asm::STORE, 6);
  CountedLoop Init = loopBegin(A, 1, 0, 0);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::ASTORE); // heap[i] = i
  loopEnd(A, Init);
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 2);
  CountedLoop Rounds = loopBegin(A, 3, 0, 6);
  {
    // reverse prefix [0, n): lo = 0; hi = n-1; while lo < hi swap.
    A.emit(Asm::PUSH, 0);
    A.emit(Asm::STORE, 4);
    A.emit(Asm::LOAD, 0);
    A.emit(Asm::PUSH, 1);
    A.emit(Asm::SUB);
    A.emit(Asm::STORE, 5);
    int32_t SwapHead = A.here();
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::LOAD, 5);
    A.emit(Asm::LT);
    size_t SwapDone = A.emit(Asm::JZ, 0);
    // tmp = heap[lo]; heap[lo] = heap[hi] + k; heap[hi] = tmp;
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::ALOAD);
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::LOAD, 5);
    A.emit(Asm::ALOAD);
    A.emit(Asm::LOAD, 3);
    A.emit(Asm::ADD);
    A.emit(Asm::ASTORE);
    A.emit(Asm::LOAD, 5);
    A.emit(Asm::SWAP);
    A.emit(Asm::ASTORE);
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::PUSH, 1);
    A.emit(Asm::ADD);
    A.emit(Asm::STORE, 4);
    A.emit(Asm::LOAD, 5);
    A.emit(Asm::PUSH, 1);
    A.emit(Asm::SUB);
    A.emit(Asm::STORE, 5);
    A.emit(Asm::JMP, SwapHead);
    A.patch(SwapDone, A.here());
    // flips += heap[0]
    A.emit(Asm::PUSH, 0);
    A.emit(Asm::ALOAD);
    A.emit(Asm::LOAD, 2);
    A.emit(Asm::ADD);
    A.emit(Asm::STORE, 2);
  }
  loopEnd(A, Rounds);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({400, 1200});
}

// mandelbrot: fixed-point escape iteration over a grid (mul-heavy).
std::vector<int32_t> scriptMandelbrot() {
  Asm A;
  // slot 0 = size, 1 = y, 2 = x, 3 = zr, 4 = zi, 5 = iter, 6 = count,
  // 7 = zr2 temp.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 6);
  CountedLoop Y = loopBegin(A, 1, 0, 0);
  CountedLoop X = loopBegin(A, 2, 0, 0);
  {
    A.emit(Asm::PUSH, 0);
    A.emit(Asm::STORE, 3);
    A.emit(Asm::PUSH, 0);
    A.emit(Asm::STORE, 4);
    // 24 iterations of z = z^2 + c in 8.8 fixed point
    CountedLoop It = loopBegin(A, 5, 0, 101); // slot 101 = max iters
    // zr2 = (zr*zr - zi*zi) >> 8 + (x - 384)
    A.emit(Asm::LOAD, 3);
    A.emit(Asm::LOAD, 3);
    A.emit(Asm::MUL);
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::MUL);
    A.emit(Asm::SUB);
    A.emit(Asm::PUSH, 8);
    A.emit(Asm::SHR);
    A.emit(Asm::LOAD, 2);
    A.emit(Asm::PUSH, 384);
    A.emit(Asm::SUB);
    A.emit(Asm::ADD);
    A.emit(Asm::STORE, 7);
    // zi = (2*zr*zi) >> 8 + (y - 256)
    A.emit(Asm::LOAD, 3);
    A.emit(Asm::LOAD, 4);
    A.emit(Asm::MUL);
    A.emit(Asm::PUSH, 7);
    A.emit(Asm::SHR);
    A.emit(Asm::LOAD, 1);
    A.emit(Asm::PUSH, 256);
    A.emit(Asm::SUB);
    A.emit(Asm::ADD);
    A.emit(Asm::STORE, 4);
    A.emit(Asm::LOAD, 7);
    A.emit(Asm::STORE, 3);
    loopEnd(A, It);
    // count += (zr & 1)
    A.emit(Asm::LOAD, 3);
    A.emit(Asm::PUSH, 1);
    A.emit(Asm::XOR);
    A.emit(Asm::LOAD, 6);
    A.emit(Asm::ADD);
    A.emit(Asm::STORE, 6);
  }
  loopEnd(A, X);
  loopEnd(A, Y);
  A.emit(Asm::LOAD, 6);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({80, 24});
}

// nbody: three bodies in slots, velocity/position updates (slot-heavy).
std::vector<int32_t> scriptNbody() {
  Asm A;
  // slots 10..15: px/py per body (3 bodies), 20..25 velocities,
  // slot 0 = steps, slot 1 = t.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  for (int B = 0; B != 3; ++B) {
    A.emit(Asm::PUSH, 1000 + 700 * B);
    A.emit(Asm::STORE, 10 + 2 * B);
    A.emit(Asm::PUSH, 2000 - 900 * B);
    A.emit(Asm::STORE, 11 + 2 * B);
    A.emit(Asm::PUSH, 3 - B);
    A.emit(Asm::STORE, 20 + 2 * B);
    A.emit(Asm::PUSH, B - 1);
    A.emit(Asm::STORE, 21 + 2 * B);
  }
  CountedLoop T = loopBegin(A, 1, 0, 0);
  for (int B = 0; B != 3; ++B) {
    int O = (B + 1) % 3;
    // v += (other_pos - pos) >> 6 ; pos += v >> 4 (per axis)
    for (int Axis = 0; Axis != 2; ++Axis) {
      int P = 10 + 2 * B + Axis;
      int V = 20 + 2 * B + Axis;
      int Q = 10 + 2 * O + Axis;
      A.emit(Asm::LOAD, Q);
      A.emit(Asm::LOAD, P);
      A.emit(Asm::SUB);
      A.emit(Asm::PUSH, 6);
      A.emit(Asm::SHR);
      A.emit(Asm::LOAD, V);
      A.emit(Asm::ADD);
      A.emit(Asm::STORE, V);
      A.emit(Asm::LOAD, V);
      A.emit(Asm::PUSH, 4);
      A.emit(Asm::SHR);
      A.emit(Asm::LOAD, P);
      A.emit(Asm::ADD);
      A.emit(Asm::STORE, P);
    }
  }
  loopEnd(A, T);
  A.emit(Asm::LOAD, 10);
  A.emit(Asm::LOAD, 21);
  A.emit(Asm::XOR);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({40000});
}

// pidigits: spigot-style digit extraction (div/mod heavy).
std::vector<int32_t> scriptPidigits() {
  Asm A;
  // slot 0 = digits, 1 = i, 2 = acc, 3 = den, 4 = out.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::STORE, 2);
  A.emit(Asm::PUSH, 3);
  A.emit(Asm::STORE, 3);
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 4);
  CountedLoop I = loopBegin(A, 1, 0, 0);
  // acc = (acc * 10 + i) % den ; den = den*2+1 capped; out += acc / 3
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::PUSH, 10);
  A.emit(Asm::MUL);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::MOD);
  A.emit(Asm::STORE, 2);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::PUSH, 2);
  A.emit(Asm::MUL);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::PUSH, 100003);
  A.emit(Asm::MOD);
  A.emit(Asm::PUSH, 3);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, 3);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::PUSH, 3);
  A.emit(Asm::DIV);
  A.emit(Asm::LOAD, 4);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, 4);
  loopEnd(A, I);
  A.emit(Asm::LOAD, 4);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({120000});
}

// spectralnorm: sum over A(i,j) = K / ((i+j)(i+j+1)/2 + i + 1).
std::vector<int32_t> scriptSpectralnorm() {
  Asm A;
  // slot 0 = n, 1 = i, 2 = j, 3 = sum.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 3);
  CountedLoop I = loopBegin(A, 1, 0, 0);
  CountedLoop J = loopBegin(A, 2, 0, 0);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::ADD);
  A.emit(Asm::DUP);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::MUL);
  A.emit(Asm::PUSH, 2);
  A.emit(Asm::DIV);
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::PUSH, 1);
  A.emit(Asm::ADD);
  A.emit(Asm::PUSH, 1000000);
  A.emit(Asm::SWAP);
  A.emit(Asm::DIV);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, 3);
  loopEnd(A, J);
  loopEnd(A, I);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({450});
}

// fasta: pseudo-random sequence generation into the heap (cheap ALU).
std::vector<int32_t> scriptFasta() {
  Asm A;
  // slot 0 = n, 1 = i, 2 = seed, 3 = acc.
  A.emit(Asm::LOAD, 100);
  A.emit(Asm::STORE, 0);
  A.emit(Asm::PUSH, 42);
  A.emit(Asm::STORE, 2);
  A.emit(Asm::PUSH, 0);
  A.emit(Asm::STORE, 3);
  CountedLoop I = loopBegin(A, 1, 0, 0);
  // seed = (seed * 3877 + 29573) % 139968
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::PUSH, 3877);
  A.emit(Asm::MUL);
  A.emit(Asm::PUSH, 29573);
  A.emit(Asm::ADD);
  A.emit(Asm::PUSH, 139968);
  A.emit(Asm::MOD);
  A.emit(Asm::STORE, 2);
  // heap[i & 8191] = seed; acc ^= seed
  A.emit(Asm::LOAD, 1);
  A.emit(Asm::PUSH, 8191);
  A.emit(Asm::XOR); // cheap index mix (keeps ALU profile)
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::ASTORE);
  A.emit(Asm::LOAD, 2);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::ADD);
  A.emit(Asm::STORE, 3);
  loopEnd(A, I);
  A.emit(Asm::LOAD, 3);
  A.emit(Asm::PRINT);
  A.emit(Asm::HALT);
  return A.finish({200000});
}

} // namespace

const std::vector<PhpScript> &workloads::clbgScripts() {
  static const std::vector<PhpScript> Scripts = [] {
    std::vector<PhpScript> S;
    S.push_back({"binarytrees", scriptBinarytrees()});
    S.push_back({"fannkuchredux", scriptFannkuch()});
    S.push_back({"mandelbrot", scriptMandelbrot()});
    S.push_back({"nbody", scriptNbody()});
    S.push_back({"pidigits", scriptPidigits()});
    S.push_back({"spectralnorm", scriptSpectralnorm()});
    S.push_back({"fasta", scriptFasta()});
    for ([[maybe_unused]] const PhpScript &Script : S)
      assert(!Script.Input.empty() && "script must carry code");
    return S;
  }();
  return Scripts;
}
