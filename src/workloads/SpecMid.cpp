//===-- workloads/SpecMid.cpp - Mid-size SPEC-like workloads ---------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Mid-size benchmarks: sjeng, hmmer, namd, sphinx3, h264ref, soplex.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

using namespace pgsd;
using namespace pgsd::workloads;

// 458.sjeng: chess. Dynamic signature: recursive game-tree search with a
// branchy evaluator -- deep call stacks and data-dependent branching.
Workload detail::buildSjeng() {
  Workload W;
  W.Name = "458.sjeng";
  W.Source = std::string(R"(
global board[64];
global history[4096];

fn eval_board(turn) {
  var score = 0;
  var i = 0;
  while (i < 64) {
    var piece = board[i];
    if (piece != 0) {
      var v = piece * 16 + (i & 7) - ((i >> 3) & 7);
      if ((piece & 1) == turn) { score = score + v; }
      else { score = score - v; }
    }
    i = i + 1;
  }
  return score;
}

fn negamax(depth, turn, alpha, beta, node) {
  if (depth == 0) {
    return eval_board(turn);
  }
  var best = 0 - 999999;
  var move = 0;
  while (move < 8) {
    var sq = ((node * 13 + move * 7) & 63);
    var saved = board[sq];
    board[sq] = (turn * 2 + 1 + move) & 7;
    history[(node + move) & 4095] = sq;
    var score = 0 - negamax(depth - 1, 1 - turn, 0 - beta, 0 - alpha,
                            node * 8 + move + 1);
    board[sq] = saved;
    if (score > best) { best = score; }
    if (best > alpha) { alpha = best; }
    if (alpha >= beta) { break; }
    move = move + 1;
  }
  return best;
}

fn main() {
  var depth = read_int();
  var positions = read_int();
  var total = 0;
  var p = 0;
  while (p < positions) {
    var i = 0;
    while (i < 64) {
      board[i] = ((i * 2654435761 + p) >> 5) & 7;
      i = i + 1;
    }
    total = total ^ negamax(depth, p & 1, 0 - 999999, 999999, p);
    p = p + 1;
  }
  print_int(total);
  sink(lib_dispatch(total & 7, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 14, 0x5380001);
  W.TrainInput = {4, 4};
  W.RefInput = {5, 6};
  return W;
}

// 456.hmmer: profile HMM search. Dynamic signature: the Viterbi dynamic-
// programming recurrence -- one extremely hot, cheap-ALU inner loop (the
// paper's largest x_max, ~4e9, came from hmmer).
Workload detail::buildHmmer() {
  Workload W;
  W.Name = "456.hmmer";
  W.Source = std::string(R"(
global vm[2048];
global vi[2048];
global vd[2048];
global emit[8192];
global seq[65536];

fn max2(a, b) {
  if (a > b) { return a; }
  return b;
}

fn viterbi_row(states, sym) {
  var prev_m = vm[0];
  var prev_i = vi[0];
  var prev_d = vd[0];
  var k = 1;
  while (k < states) {
    var cur_m = vm[k];
    var cur_i = vi[k];
    var cur_d = vd[k];
    var e = emit[((sym << 5) + k) & 8191];
    var m = prev_m + 3;
    if (prev_i + 1 > m) { m = prev_i + 1; }
    if (prev_d + 2 > m) { m = prev_d + 2; }
    vm[k] = m + e;
    var ii = cur_m - 4;
    if (cur_i - 1 > ii) { ii = cur_i - 1; }
    vi[k] = ii + (e >> 1);
    var d = vm[k - 1] - 5;
    if (vd[k - 1] - 1 > d) { d = vd[k - 1] - 1; }
    vd[k] = d;
    prev_m = cur_m;
    prev_i = cur_i;
    prev_d = cur_d;
    k = k + 1;
  }
  return vm[states - 1];
}

fn main() {
  var states = read_int();
  var seqlen = read_int();
  var x = 1;
  var i = 0;
  while (i < seqlen) {
    x = (x * 1103515245 + 12345) & 1073741823;
    seq[i] = x & 31;
    i = i + 1;
  }
  i = 0;
  while (i < 8192) {
    emit[i] = ((i * 2654435761) >> 16) & 63;
    i = i + 1;
  }
  var score = 0;
  i = 0;
  while (i < seqlen) {
    score = score ^ viterbi_row(states, seq[i]);
    i = i + 1;
  }
  print_int(score);
  sink(lib_dispatch(score & 7, score));
  return 0;
}
)");
  appendColdLibrary(W.Source, 18, 0x4560001);
  W.TrainInput = {128, 400};
  W.RefInput = {256, 420};
  return W;
}

// 444.namd: molecular dynamics. Dynamic signature: pairwise force
// computation in fixed point -- multiply-heavy nested loops with a
// distance cutoff branch.
Workload detail::buildNamd() {
  Workload W;
  W.Name = "444.namd";
  W.Source = std::string(R"(
global px[2048];
global py[2048];
global fx[2048];
global fy[2048];

fn init_particles(n) {
  var x = 7;
  var i = 0;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 1073741823;
    px[i] = x & 1023;
    x = (x * 1103515245 + 12345) & 1073741823;
    py[i] = x & 1023;
    i = i + 1;
  }
  return 0;
}

fn compute_forces(n, cutoff) {
  var pairs = 0;
  var i = 0;
  while (i < n) {
    var xi = px[i];
    var yi = py[i];
    var fxi = 0;
    var fyi = 0;
    var j = 0;
    while (j < n) {
      if (j != i) {
        var dx = xi - px[j];
        var dy = yi - py[j];
        var d2 = dx * dx + dy * dy;
        if (d2 < cutoff) {
          var inv = 65536 / (d2 + 16);
          fxi = fxi + dx * inv;
          fyi = fyi + dy * inv;
          pairs = pairs + 1;
        }
      }
      j = j + 1;
    }
    fx[i] = fxi;
    fy[i] = fyi;
    i = i + 1;
  }
  return pairs;
}

fn integrate(n) {
  var i = 0;
  while (i < n) {
    px[i] = (px[i] + (fx[i] >> 12)) & 1023;
    py[i] = (py[i] + (fy[i] >> 12)) & 1023;
    i = i + 1;
  }
  return 0;
}

fn main() {
  var n = read_int();
  var steps = read_int();
  init_particles(n);
  var pairs = 0;
  var s = 0;
  while (s < steps) {
    pairs = pairs + compute_forces(n, 40000);
    integrate(n);
    s = s + 1;
  }
  var sum = 0;
  var i = 0;
  while (i < n) {
    sum = sum ^ (px[i] * 31 + py[i]);
    i = i + 1;
  }
  print_int(pairs);
  print_int(sum);
  sink(lib_dispatch(sum & 7, sum));
  return 0;
}
)");
  appendColdLibrary(W.Source, 22, 0x4440001);
  W.TrainInput = {180, 2};
  W.RefInput = {320, 4};
  return W;
}

// 482.sphinx3: speech recognition. Dynamic signature: Gaussian mixture
// scoring -- a dot-product-style loop of the cheapest possible ALU ops.
// This is where naive NOP insertion hurt most in the paper (~25%), and
// where profiling recovered the most.
Workload detail::buildSphinx3() {
  Workload W;
  W.Name = "482.sphinx3";
  W.Source = std::string(R"(
global mean[16384];
global var_[16384];
global feat[64];
global score[512];

fn gauss_score(comp, frame) {
  // Register-resident mixture scoring: the SPEC original is a dense
  // floating-point kernel that saturates the front end, which is what
  // makes inserted NOPs so expensive there. Model: a pure-ALU
  // recurrence seeded from the component/frame ids.
  var acc = 0;
  var x = comp * 2654435761 + frame;
  var k = 0;
  while (k < 32) {
    var d = (x >> 3) - (x >> 7) + k;
    acc = acc + d * d;
    x = x * 5 + 12345;
    acc = acc ^ (x >> 16);
    k = k + 1;
  }
  return acc >> 6;
}

fn main() {
  var comps = read_int();
  var frames = read_int();
  var i = 0;
  while (i < 16384) {
    mean[i] = (i * 2654435761) & 255;
    var_[i] = ((i * 40503) & 15) + 1;
    i = i + 1;
  }
  var best = 0;
  var f = 0;
  while (f < frames) {
    var k = 0;
    while (k < 32) {
      feat[k] = ((f * 31 + k * 17) & 255);
      k = k + 1;
    }
    var c = 0;
    var fbest = 999999999;
    while (c < comps) {
      var s = gauss_score(c, f);
      score[c & 511] = s;
      if (s < fbest) { fbest = s; }
      c = c + 1;
    }
    best = best ^ fbest;
    f = f + 1;
  }
  print_int(best);
  sink(lib_dispatch(best & 7, best));
  return 0;
}
)");
  appendColdLibrary(W.Source, 26, 0x4820001);
  W.TrainInput = {128, 16};
  W.RefInput = {320, 44};
  return W;
}

// 464.h264ref: video encoding. Dynamic signature: sum-of-absolute-
// differences block matching -- nested motion-search loops around a hot
// 8x8 SAD kernel.
Workload detail::buildH264ref() {
  Workload W;
  W.Name = "464.h264ref";
  W.Source = std::string(R"(
global frame0[66000];
global frame1[66000];

fn abs32(x) {
  if (x < 0) { return 0 - x; }
  return x;
}

fn sad_block(width, x0, y0, x1, y1) {
  var sad = 0;
  var r = 0;
  while (r < 8) {
    var a = (y0 + r) * width + x0;
    var b = (y1 + r) * width + x1;
    var c = 0;
    while (c < 8) {
      sad = sad + abs32(frame0[a + c] - frame1[b + c]);
      c = c + 1;
    }
    r = r + 1;
  }
  return sad;
}

fn motion_search(width, height, range) {
  var total = 0;
  var by = 8;
  while (by + 16 < height) {
    var bx = 8;
    while (bx + 16 < width) {
      var best = 999999999;
      var dy = 0 - range;
      while (dy <= range) {
        var dx = 0 - range;
        while (dx <= range) {
          var s = sad_block(width, bx, by, bx + dx, by + dy);
          if (s < best) { best = s; }
          dx = dx + 1;
        }
        dy = dy + 1;
      }
      total = total + best;
      bx = bx + 8;
    }
    by = by + 8;
  }
  return total;
}

fn main() {
  var width = read_int();
  var height = read_int();
  var range = read_int();
  var x = 5;
  var i = 0;
  while (i < width * height) {
    x = (x * 1103515245 + 12345) & 1073741823;
    frame0[i] = x & 255;
    frame1[i] = (x >> 8) & 255;
    i = i + 1;
  }
  var total = motion_search(width, height, range);
  print_int(total);
  sink(lib_dispatch(total & 7, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 34, 0x4640001);
  W.TrainInput = {96, 64, 1};
  W.RefInput = {192, 96, 2};
  return W;
}

// 450.soplex: linear programming. Dynamic signature: simplex pivoting --
// a ratio test with integer divisions inside column scans, mixing cheap
// scans with expensive divides.
Workload detail::buildSoplex() {
  Workload W;
  W.Name = "450.soplex";
  W.Source = std::string(R"(
global tab[40000];
global basis[200];

fn pivot_column(rows, cols) {
  // Find the most negative cost in row 0.
  var best = 0;
  var bestv = 0;
  var c = 1;
  while (c < cols) {
    var v = tab[c];
    if (v < bestv) {
      bestv = v;
      best = c;
    }
    c = c + 1;
  }
  return best;
}

fn ratio_test(rows, cols, col) {
  var bestr = 0;
  var bestv = 999999999;
  var r = 1;
  while (r < rows) {
    var a = tab[r * cols + col];
    if (a > 0) {
      var ratio = tab[r * cols] / a;
      if (ratio < bestv) {
        bestv = ratio;
        bestr = r;
      }
    }
    r = r + 1;
  }
  return bestr;
}

fn eliminate(rows, cols, prow, pcol) {
  var p = tab[prow * cols + pcol];
  if (p == 0) { p = 1; }
  var r = 0;
  while (r < rows) {
    if (r != prow) {
      var f = tab[r * cols + pcol] / p;
      if (f != 0) {
        var c = 0;
        while (c < cols) {
          tab[r * cols + c] = tab[r * cols + c] - f * tab[prow * cols + c];
          c = c + 1;
        }
      }
    }
    r = r + 1;
  }
  return 0;
}

fn main() {
  var rows = read_int();
  var cols = read_int();
  var iters = read_int();
  var x = 31;
  var i = 0;
  while (i < rows * cols) {
    x = (x * 1103515245 + 12345) & 1073741823;
    tab[i] = (x & 2047) - 1024;
    i = i + 1;
  }
  var it = 0;
  while (it < iters) {
    var col = pivot_column(rows, cols);
    if (col == 0) { break; }
    var row = ratio_test(rows, cols, col);
    if (row == 0) { break; }
    basis[row & 199] = col;
    eliminate(rows, cols, row, col);
    it = it + 1;
  }
  var sum = 0;
  i = 0;
  while (i < rows * cols) {
    sum = sum ^ tab[i];
    i = i + 1;
  }
  print_int(sum);
  sink(lib_dispatch(sum & 7, sum));
  return 0;
}
)");
  appendColdLibrary(W.Source, 42, 0x4500001);
  W.TrainInput = {40, 100, 30};
  W.RefInput = {150, 260, 100};
  return W;
}
