//===-- workloads/Workloads.h - SPEC-like evaluation workloads ---*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads. The paper measures SPEC CPU 2006 (19 C/C++
/// benchmarks with train/ref input sets) and, for the case study, the
/// PHP interpreter profiled with Computer Language Benchmarks Game
/// programs. SPEC and PHP cannot be compiled by a from-scratch MiniC
/// toolchain, so each benchmark is modeled as a MiniC program named
/// after its SPEC counterpart and built to preserve the two properties
/// the experiments depend on:
///
///  * dynamic shape -- loop-nesting depth, call-graph shape, hot/cold
///    split, and execution-count spread (e.g. the astar-like workload
///    reproduces "median well below maximum" from Section 3.1), and
///  * static size ordering -- .text sizes spanning two orders of
///    magnitude so Table 2's "surviving fraction falls as binaries
///    grow" trend is measurable.
///
/// Big benchmarks reach their size with deterministic, structurally
/// varied cold library functions appended by a generator (modeling the
/// large mostly-cold code bodies of gcc/xalancbmk), all reachable
/// through a dispatcher so the code is semantically live.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_WORKLOADS_WORKLOADS_H
#define PGSD_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace workloads {

/// One benchmark: MiniC source plus train/ref inputs.
struct Workload {
  std::string Name;        ///< SPEC-style name, e.g. "400.perlbench".
  std::string Source;      ///< MiniC program text.
  std::vector<int32_t> TrainInput; ///< Profiling input (paper: train set).
  std::vector<int32_t> RefInput;   ///< Measurement input (paper: ref set).
};

/// Returns the 19 SPEC-CPU-2006-like workloads (stable order and
/// content; generation is deterministic).
const std::vector<Workload> &specSuite();

/// Returns one workload from the suite by name; asserts if absent.
const Workload &specWorkload(const std::string &Name);

/// The PHP-like interpreter for the Section 5.2 case study: a stack VM
/// in MiniC whose input stream carries a bytecode program. Train/Ref
/// inputs are placeholders; combine with a script from clbgScripts().
Workload phpInterpreter();

/// One interpreter script (a bytecode program encoded as the VM input).
struct PhpScript {
  std::string Name;
  std::vector<int32_t> Input; ///< Full VM input: bytecode + arguments.
};

/// The seven Computer-Language-Benchmarks-Game-style profiling scripts
/// (paper Section 5.2: binarytrees, fannkuchredux, mandelbrot, nbody,
/// pidigits, spectralnorm, fasta), each stressing different interpreter
/// subsystems.
const std::vector<PhpScript> &clbgScripts();

/// Deterministically generates \p Count cold library functions plus a
/// dispatcher `fn lib_dispatch(sel, x)`; used by the large workloads and
/// exposed for tests. Appends MiniC text to \p Out.
void appendColdLibrary(std::string &Out, unsigned Count, uint64_t Seed);

} // namespace workloads
} // namespace pgsd

#endif // PGSD_WORKLOADS_WORKLOADS_H
