//===-- workloads/Workloads.cpp - SPEC-like evaluation workloads -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Builders.h"

#include "support/Rng.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::workloads;

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

} // namespace

void workloads::appendColdLibrary(std::string &Out, unsigned Count,
                                  uint64_t Seed) {
  Rng Gen(Seed);
  // Structurally varied cold functions: the bulk of a big real binary
  // is code like this -- straight-line blocks, small loops, a few array
  // touches -- that a given input never executes.
  for (unsigned K = 0; K != Count; ++K) {
    appendf(Out, "fn lib_%u(a, b) {\n", K);
    appendf(Out, "  var acc = %llu;\n",
            static_cast<unsigned long long>(Gen.nextBelow(100000)));
    unsigned Shape = static_cast<unsigned>(Gen.nextBelow(4));
    unsigned Stmts = 4 + static_cast<unsigned>(Gen.nextBelow(10));
    if (Shape == 0) {
      // Straight-line arithmetic.
      for (unsigned S = 0; S != Stmts; ++S) {
        static const char *const Ops[] = {"+", "-", "*", "^", "&", "|"};
        appendf(Out, "  acc = (acc %s a) %s %llu;\n",
                Ops[Gen.nextBelow(6)], Ops[Gen.nextBelow(6)],
                static_cast<unsigned long long>(Gen.nextBelow(997) + 1));
      }
    } else if (Shape == 1) {
      // Small loop over a local array.
      appendf(Out, "  array buf[%llu];\n",
              static_cast<unsigned long long>(Gen.nextBelow(24) + 8));
      appendf(Out, "  var i = 0;\n");
      appendf(Out, "  while (i < 8) {\n");
      appendf(Out, "    buf[i] = a * i + b;\n");
      appendf(Out, "    acc = acc + buf[i] - (i << %llu);\n",
              static_cast<unsigned long long>(Gen.nextBelow(5)));
      appendf(Out, "    i = i + 1;\n");
      appendf(Out, "  }\n");
      for (unsigned S = 0; S + 6 < Stmts; ++S)
        appendf(Out, "  acc = acc ^ (b + %llu);\n",
                static_cast<unsigned long long>(Gen.nextBelow(65536)));
    } else if (Shape == 2) {
      // Branchy validation code.
      appendf(Out, "  if (a < b) { acc = acc + a; } else { acc = acc - b; }\n");
      for (unsigned S = 0; S != Stmts / 2; ++S) {
        appendf(Out, "  if ((a & %llu) != 0) { acc = acc * 3 + %u; }\n",
                static_cast<unsigned long long>(1ull << Gen.nextBelow(8)),
                static_cast<unsigned>(Gen.nextBelow(100)));
      }
      appendf(Out, "  if (acc == 0) { acc = 1; }\n");
    } else {
      // Call a previously generated sibling (deepens the call graph).
      if (K > 0)
        appendf(Out, "  acc = acc + lib_%llu(b, a);\n",
                static_cast<unsigned long long>(Gen.nextBelow(K)));
      for (unsigned S = 0; S != Stmts; ++S)
        appendf(Out, "  acc = (acc >> 1) + (a & %llu) + b;\n",
                static_cast<unsigned long long>(Gen.nextBelow(4096)));
    }
    appendf(Out, "  return acc;\n}\n");
  }

  // Dispatcher keeping every library function reachable at run time.
  Out += "fn lib_dispatch(sel, x) {\n";
  for (unsigned K = 0; K != Count; ++K)
    appendf(Out, "  if (sel == %u) { return lib_%u(x, sel); }\n", K, K);
  Out += "  return 0;\n}\n";
}

const std::vector<Workload> &workloads::specSuite() {
  static const std::vector<Workload> Suite = [] {
    std::vector<Workload> S;
    S.push_back(detail::buildLbm());
    S.push_back(detail::buildMcf());
    S.push_back(detail::buildLibquantum());
    S.push_back(detail::buildBzip2());
    S.push_back(detail::buildAstar());
    S.push_back(detail::buildMilc());
    S.push_back(detail::buildSjeng());
    S.push_back(detail::buildHmmer());
    S.push_back(detail::buildNamd());
    S.push_back(detail::buildSphinx3());
    S.push_back(detail::buildH264ref());
    S.push_back(detail::buildSoplex());
    S.push_back(detail::buildDealII());
    S.push_back(detail::buildPovray());
    S.push_back(detail::buildPerlbench());
    S.push_back(detail::buildGobmk());
    S.push_back(detail::buildOmnetpp());
    S.push_back(detail::buildGcc());
    S.push_back(detail::buildXalancbmk());
    return S;
  }();
  return Suite;
}

const Workload &workloads::specWorkload(const std::string &Name) {
  for (const Workload &W : specSuite())
    if (W.Name == Name)
      return W;
  assert(false && "unknown workload name");
  return specSuite().front();
}
