//===-- workloads/SpecLarge.cpp - Large SPEC-like workloads ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Large benchmarks: dealII, povray, perlbench, gobmk, omnetpp, gcc,
// xalancbmk. These carry substantial cold libraries: in the SPEC
// originals most of the code is cold (gcc, xalancbmk), which is exactly
// the code profile-guided insertion is free to diversify heavily.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

using namespace pgsd;
using namespace pgsd::workloads;

// 447.dealII: finite elements. Dynamic signature: per-element assembly
// of small dense blocks into a global system, then smoother sweeps.
Workload detail::buildDealII() {
  Workload W;
  W.Name = "447.dealII";
  W.Source = std::string(R"(
global mat[65536];
global rhs[4096];
global sol[4096];

fn assemble(elems) {
  var e = 0;
  while (e < elems) {
    var base = (e * 67) & 4031;
    var i = 0;
    while (i < 4) {
      var j = 0;
      while (j < 4) {
        var contrib = (i + 1) * (j + 2) + ((e * 2654435761) >> 20);
        var idx = ((base + i) << 4) + j;
        mat[idx & 65535] = mat[idx & 65535] + contrib;
        j = j + 1;
      }
      rhs[(base + i) & 4095] = rhs[(base + i) & 4095] + e + i;
      i = i + 1;
    }
    e = e + 1;
  }
  return 0;
}

fn smooth_sweep(n) {
  var i = 1;
  while (i < n - 1) {
    var diag = mat[(i << 4) & 65535];
    if (diag == 0) { diag = 1; }
    sol[i] = (rhs[i] + sol[i - 1] + sol[i + 1]) / diag;
    i = i + 1;
  }
  return 0;
}

fn residual(n) {
  var r = 0;
  var i = 0;
  while (i < n) {
    r = r ^ (sol[i] * 3 + rhs[i]);
    i = i + 1;
  }
  return r;
}

fn main() {
  var elems = read_int();
  var sweeps = read_int();
  assemble(elems);
  var s = 0;
  while (s < sweeps) {
    smooth_sweep(4096);
    s = s + 1;
  }
  var r = residual(4096);
  print_int(r);
  sink(lib_dispatch(r & 15, r));
  return 0;
}
)");
  appendColdLibrary(W.Source, 60, 0x4470001);
  W.TrainInput = {4000, 6};
  W.RefInput = {20000, 25};
  return W;
}

// 453.povray: ray tracing. Dynamic signature: per-pixel ray-sphere
// intersection in fixed point with an integer-sqrt Newton loop --
// multiply/divide heavy with a moderately hot shading path.
Workload detail::buildPovray() {
  Workload W;
  W.Name = "453.povray";
  W.Source = std::string(R"(
global spherex[64];
global spherey[64];
global spherer[64];
global imagebuf[65536];

fn isqrt(v) {
  if (v <= 0) { return 0; }
  var g = v;
  if (g > 46340) { g = 46340; }
  var k = 0;
  while (k < 12) {
    var ng = (g + v / g) / 2;
    if (ng == g) { break; }
    g = ng;
    k = k + 1;
  }
  return g;
}

fn trace_ray(px, py, nspheres) {
  var best = 999999999;
  var hit = 0 - 1;
  var s = 0;
  while (s < nspheres) {
    var dx = px - spherex[s];
    var dy = py - spherey[s];
    var d2 = dx * dx + dy * dy;
    var r = spherer[s];
    if (d2 < r * r) {
      var depth = isqrt(d2);
      if (depth < best) {
        best = depth;
        hit = s;
      }
    }
    s = s + 1;
  }
  if (hit < 0) { return 0; }
  // Shade: distance falloff plus a stripe pattern.
  var shade = 255 - (best * 255) / (spherer[hit] + 1);
  if (((px ^ py) & 8) != 0) { shade = (shade * 3) / 4; }
  return shade + hit * 7;
}

fn main() {
  var width = read_int();
  var height = read_int();
  var nspheres = read_int();
  var x = 17;
  var s = 0;
  while (s < nspheres) {
    x = (x * 1103515245 + 12345) & 1073741823;
    spherex[s] = x & 255;
    x = (x * 1103515245 + 12345) & 1073741823;
    spherey[s] = x & 255;
    spherer[s] = (x >> 20) & 63;
    if (spherer[s] < 8) { spherer[s] = 8; }
    s = s + 1;
  }
  var sum = 0;
  var py = 0;
  while (py < height) {
    var px = 0;
    while (px < width) {
      var c = trace_ray(px & 255, py & 255, nspheres);
      imagebuf[(py * width + px) & 65535] = c;
      sum = sum + c;
      px = px + 1;
    }
    py = py + 1;
  }
  print_int(sum);
  sink(lib_dispatch(sum & 15, sum));
  return 0;
}
)");
  appendColdLibrary(W.Source, 85, 0x4530001);
  W.TrainInput = {64, 64, 12};
  W.RefInput = {112, 112, 24};
  return W;
}

// 400.perlbench: the Perl interpreter. Dynamic signature: a bytecode
// dispatch loop of cheap compares and jumps -- the classic interpreter
// profile where naive NOP insertion hurts most (paper: the highest
// per-benchmark overhead alongside sphinx3).
Workload detail::buildPerlbench() {
  Workload W;
  W.Name = "400.perlbench";
  W.Source = std::string(R"(
global code[512];
global slots[64];
global stack[256];

// Opcodes: 0 halt, 1 push imm, 2 load slot, 3 store slot, 4 add, 5 sub,
// 6 mul, 7 less-than, 8 jz target, 9 jmp target, 10 dup, 11 xor.
fn run_program(entry, fuel) {
  var pc = entry;
  var sp = 0;
  while (fuel > 0) {
    fuel = fuel - 1;
    var op = code[pc];
    var arg = code[pc + 1];
    pc = pc + 2;
    if (op == 0) { break; }
    else if (op == 1) { stack[sp] = arg; sp = sp + 1; }
    else if (op == 2) { stack[sp] = slots[arg]; sp = sp + 1; }
    else if (op == 3) { sp = sp - 1; slots[arg] = stack[sp]; }
    else if (op == 4) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; }
    else if (op == 5) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp]; }
    else if (op == 6) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; }
    else if (op == 7) {
      sp = sp - 1;
      if (stack[sp - 1] < stack[sp]) { stack[sp - 1] = 1; }
      else { stack[sp - 1] = 0; }
    }
    else if (op == 8) { sp = sp - 1; if (stack[sp] == 0) { pc = arg; } }
    else if (op == 9) { pc = arg; }
    else if (op == 10) { stack[sp] = stack[sp - 1]; sp = sp + 1; }
    else { sp = sp - 1; stack[sp - 1] = stack[sp - 1] ^ stack[sp]; }
  }
  return slots[0];
}

// Encodes: slot1 = n; slot0 = 0; while (slot1 != 0) { slot0 += slot1*slot1;
// slot1 -= 1 } -- a numeric Perl-style loop.
fn emit_sumsq(at) {
  code[at + 0] = 2;  code[at + 1] = 1;   // load n
  code[at + 2] = 8;  code[at + 3] = at + 26; // jz end
  code[at + 4] = 2;  code[at + 5] = 0;   // load acc
  code[at + 6] = 2;  code[at + 7] = 1;
  code[at + 8] = 10; code[at + 9] = 0;   // dup
  code[at + 10] = 6; code[at + 11] = 0;  // mul
  code[at + 12] = 4; code[at + 13] = 0;  // add
  code[at + 14] = 3; code[at + 15] = 0;  // store acc
  code[at + 16] = 2; code[at + 17] = 1;
  code[at + 18] = 1; code[at + 19] = 1;
  code[at + 20] = 5; code[at + 21] = 0;  // sub
  code[at + 22] = 3; code[at + 23] = 1;  // store n
  code[at + 24] = 9; code[at + 25] = at; // loop
  code[at + 26] = 0; code[at + 27] = 0;  // halt
  return 0;
}

fn main() {
  var n = read_int();
  var reps = read_int();
  emit_sumsq(0);
  var total = 0;
  var r = 0;
  while (r < reps) {
    slots[0] = 0;
    slots[1] = n;
    total = total ^ run_program(0, 99999999);
    r = r + 1;
  }
  print_int(total);
  sink(lib_dispatch(total & 15, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 75, 0x4000001);
  W.TrainInput = {1200, 4};
  W.RefInput = {2500, 6};
  return W;
}

// 445.gobmk: the game of Go. Dynamic signature: whole-board pattern
// scans plus recursive flood fill for liberties -- branchy code with
// medium-depth recursion over a 19x19 board.
Workload detail::buildGobmk() {
  Workload W;
  W.Name = "445.gobmk";
  W.Source = std::string(R"(
global board[441];
global marks[441];
global influence[441];

fn flood_liberties(pos, color, size) {
  if (pos < 0) { return 0; }
  if (pos >= size * size) { return 0; }
  if (marks[pos] != 0) { return 0; }
  marks[pos] = 1;
  var v = board[pos];
  if (v == 0) { return 1; }
  if (v != color) { return 0; }
  var libs = 0;
  libs = libs + flood_liberties(pos - 1, color, size);
  libs = libs + flood_liberties(pos + 1, color, size);
  libs = libs + flood_liberties(pos - size, color, size);
  libs = libs + flood_liberties(pos + size, color, size);
  return libs;
}

fn spread_influence(size) {
  var i = 0;
  while (i < size * size) {
    var v = board[i];
    if (v != 0) {
      var dir = 0 - 2;
      while (dir <= 2) {
        var j = i + dir;
        if (j >= 0 && j < size * size) {
          if (v == 1) { influence[j] = influence[j] + 4 - dir * dir; }
          else { influence[j] = influence[j] - 4 + dir * dir; }
        }
        dir = dir + 1;
      }
    }
    i = i + 1;
  }
  return 0;
}

fn eval_position(size) {
  var score = 0;
  var i = 0;
  while (i < size * size) {
    var k = 0;
    while (k < size * size) { marks[k] = 0; k = k + 1; }
    if (board[i] != 0) {
      score = score + flood_liberties(i, board[i], size);
    }
    i = i + 1;
  }
  return score;
}

fn main() {
  var size = read_int();
  var moves = read_int();
  var x = 99;
  var total = 0;
  var m = 0;
  while (m < moves) {
    x = (x * 1103515245 + 12345) & 1073741823;
    var pos = x - (x / (size * size)) * (size * size);
    board[pos] = (m & 1) + 1;
    spread_influence(size);
    total = total ^ eval_position(size);
    m = m + 1;
  }
  var i = 0;
  while (i < size * size) {
    total = total + influence[i];
    i = i + 1;
  }
  print_int(total);
  sink(lib_dispatch(total & 15, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 100, 0x4450001);
  W.TrainInput = {9, 24};
  W.RefInput = {13, 40};
  return W;
}

// 471.omnetpp: discrete event simulation. Dynamic signature: a binary
// heap event queue -- push/pop churn where each event schedules followers.
Workload detail::buildOmnetpp() {
  Workload W;
  W.Name = "471.omnetpp";
  W.Source = std::string(R"(
global heapt[65536];
global heapd[65536];
global nodestate[256];

fn heap_push(n, t, d) {
  var i = n;
  heapt[i] = t;
  heapd[i] = d;
  while (i > 0) {
    var parent = (i - 1) / 2;
    if (heapt[parent] <= heapt[i]) { break; }
    var tt = heapt[parent]; heapt[parent] = heapt[i]; heapt[i] = tt;
    var dd = heapd[parent]; heapd[parent] = heapd[i]; heapd[i] = dd;
    i = parent;
  }
  return n + 1;
}

fn heap_pop(n) {
  n = n - 1;
  heapt[0] = heapt[n];
  heapd[0] = heapd[n];
  var i = 0;
  while (1) {
    var l = i * 2 + 1;
    var r = l + 1;
    var m = i;
    if (l < n && heapt[l] < heapt[m]) { m = l; }
    if (r < n && heapt[r] < heapt[m]) { m = r; }
    if (m == i) { break; }
    var tt = heapt[m]; heapt[m] = heapt[i]; heapt[i] = tt;
    var dd = heapd[m]; heapd[m] = heapd[i]; heapd[i] = dd;
    i = m;
  }
  return n;
}

fn main() {
  var horizon = read_int();
  var fanout = read_int();
  var n = 0;
  n = heap_push(n, 0, 1);
  var x = 7;
  var processed = 0;
  var state = 0;
  while (n > 0 && processed < horizon) {
    var t = heapt[0];
    var d = heapd[0];
    n = heap_pop(n);
    processed = processed + 1;
    var node = d & 255;
    nodestate[node] = nodestate[node] + 1;
    state = state ^ (t * 31 + d);
    var k = 0;
    while (k < fanout && n < 65000) {
      x = (x * 1103515245 + 12345) & 1073741823;
      n = heap_push(n, t + 1 + (x & 63), (d * 5 + k) & 1023);
      k = k + 1;
    }
  }
  print_int(processed);
  print_int(state);
  sink(lib_dispatch(state & 15, state));
  return 0;
}
)");
  appendColdLibrary(W.Source, 130, 0x4710001);
  W.TrainInput = {4000, 2};
  W.RefInput = {10000, 2};
  return W;
}

// 403.gcc: the C compiler. Dynamic signature: several branchy "passes"
// over an array-encoded instruction stream; the SPEC original has the
// *smallest* max execution count (14M) but one of the largest code
// bodies -- heat is spread thin over a big binary.
Workload detail::buildGcc() {
  Workload W;
  W.Name = "403.gcc";
  W.Source = std::string(R"(
global insn_op[60000];
global insn_a[60000];
global insn_b[60000];
global value[60000];
global live[60000];

fn gen_function(n, seed) {
  var x = seed;
  var i = 0;
  while (i < n) {
    x = (x * 1103515245 + 12345) & 1073741823;
    insn_op[i] = x & 7;
    insn_a[i] = (x >> 4) & 1023;
    insn_b[i] = (x >> 16) & 1023;
    i = i + 1;
  }
  return 0;
}

fn const_fold_pass(n) {
  var folded = 0;
  var i = 0;
  while (i < n) {
    var op = insn_op[i];
    if (op == 0) { value[i] = insn_a[i]; folded = folded + 1; }
    else if (op == 1) { value[i] = value[insn_a[i] & 1023] + value[insn_b[i] & 1023]; }
    else if (op == 2) { value[i] = value[insn_a[i] & 1023] - value[insn_b[i] & 1023]; }
    else if (op == 3) { value[i] = value[insn_a[i] & 1023] * 3; }
    else if (op == 4) { value[i] = value[insn_a[i] & 1023] ^ insn_b[i]; }
    else { value[i] = value[i] + 1; }
    i = i + 1;
  }
  return folded;
}

fn dce_pass(n) {
  var removed = 0;
  var i = n - 1;
  while (i >= 0) {
    if (live[i] == 0 && insn_op[i] > 4) {
      removed = removed + 1;
    } else {
      live[insn_a[i] & 1023] = 1;
      live[insn_b[i] & 1023] = 1;
    }
    i = i - 1;
  }
  return removed;
}

fn peephole_pass(n) {
  var hits = 0;
  var i = 0;
  while (i < n - 1) {
    if (insn_op[i] == 1 && insn_op[i + 1] == 2 &&
        insn_a[i] == insn_b[i + 1]) {
      insn_op[i + 1] = 5;
      hits = hits + 1;
    }
    i = i + 1;
  }
  return hits;
}

fn main() {
  var n = read_int();
  var functions = read_int();
  var total = 0;
  var f = 0;
  while (f < functions) {
    gen_function(n, f * 2654435761 + 17);
    total = total + const_fold_pass(n);
    total = total + dce_pass(n);
    total = total ^ peephole_pass(n);
    f = f + 1;
  }
  print_int(total);
  sink(lib_dispatch(total & 31, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 180, 0x4030001);
  W.TrainInput = {6000, 2};
  W.RefInput = {20000, 5};
  return W;
}

// 483.xalancbmk: XSLT processing. Dynamic signature: repeated traversals
// of a large implicit DOM tree with hash-style string ops; by far the
// biggest binary in the suite (most of it cold).
Workload detail::buildXalancbmk() {
  Workload W;
  W.Name = "483.xalancbmk";
  W.Source = std::string(R"(
global child0[50000];
global child1[50000];
global tag[50000];
global stackbuf[50000];
global result[50000];

fn build_tree(n) {
  var i = 0;
  while (i < n) {
    var l = i * 2 + 1;
    var r = i * 2 + 2;
    if (l < n) { child0[i] = l; } else { child0[i] = 0 - 1; }
    if (r < n) { child1[i] = r; } else { child1[i] = 0 - 1; }
    tag[i] = (i * 2654435761) & 63;
    i = i + 1;
  }
  return 0;
}

fn transform_pass(n, rule) {
  // Iterative DFS with an explicit stack, applying a "template" per tag.
  var sp = 0;
  stackbuf[sp] = 0;
  sp = sp + 1;
  var visited = 0;
  var hash = 5381;
  while (sp > 0) {
    sp = sp - 1;
    var node = stackbuf[sp];
    visited = visited + 1;
    var t = tag[node];
    if (t == rule) {
      hash = hash * 33 + node;
      result[node] = hash & 65535;
    } else if ((t & 3) == 0) {
      hash = hash ^ (t * 131 + node);
    } else {
      hash = hash + t;
    }
    var c1 = child1[node];
    if (c1 >= 0) { stackbuf[sp] = c1; sp = sp + 1; }
    var c0 = child0[node];
    if (c0 >= 0) { stackbuf[sp] = c0; sp = sp + 1; }
  }
  return hash ^ visited;
}

fn main() {
  var n = read_int();
  var passes = read_int();
  build_tree(n);
  var total = 0;
  var p = 0;
  while (p < passes) {
    total = total ^ transform_pass(n, p & 63);
    p = p + 1;
  }
  print_int(total);
  sink(lib_dispatch(total & 31, total));
  return 0;
}
)");
  appendColdLibrary(W.Source, 420, 0x4830001);
  W.TrainInput = {8000, 4};
  W.RefInput = {30000, 8};
  return W;
}
