//===-- serve/VariantStore.cpp - Persistent variant artifact store ---------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "serve/VariantStore.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace pgsd;
using namespace pgsd::serve;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Content addressing
//===----------------------------------------------------------------------===//

uint64_t serve::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

/// The store format version. Part of every key, so a future layout or
/// pipeline-semantics change re-keys the whole store instead of serving
/// stale artifacts.
constexpr const char *StoreVersion = "pgsd-store-v1";

constexpr const char *VariantMagic = "pgsd-variant-v1";
constexpr const char *BaselineMagic = "pgsd-baseline-v1";

/// Shared key material of (baseline, link options): everything that
/// determines the baseline artifact, and -- together with the pipeline,
/// diversity options, and seed -- any variant's bytes. The printed MIR
/// carries stamped profile counts, so a profile change re-keys.
void appendBaseMaterial(std::string &M, const mir::MModule &Baseline,
                        const codegen::LinkOptions &Link) {
  M += StoreVersion;
  M += '\0';
  M += mir::print(Baseline);
  M += '\0';
  M += std::to_string(Link.FunctionAlignment);
  M += Link.DiversifyStub ? "+stub" : "-stub";
  M += std::to_string(Link.StubNopProbability);
  M += std::to_string(Link.StubSeed);
  M += '\0';
}

StoreKey keyOf(const std::string &Material) {
  StoreKey K;
  // Two decorrelated FNV streams (distinct bases; the second also folds
  // the length) give a 128-bit address -- collision-free for any
  // realistic fleet size.
  K.Lo = serve::fnv1a64(Material.data(), Material.size());
  uint64_t Len = Material.size();
  K.Hi = serve::fnv1a64(Material.data(), Material.size(),
                        0x9e3779b97f4a7c15ull);
  K.Hi = serve::fnv1a64(&Len, sizeof Len, K.Hi);
  return K;
}

void appendHex64(std::string &Out, uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    Out += Digits[(V >> Shift) & 0xf];
}

/// Serialization helpers for payload bodies: decimal numbers and
/// length-prefixed byte strings, newline-separated. Human-inspectable
/// and endian-independent; integrity comes from the header digest.
void putU64(std::string &Out, uint64_t V) {
  Out += std::to_string(V);
  Out += '\n';
}

void putI64(std::string &Out, int64_t V) {
  Out += std::to_string(V);
  Out += '\n';
}

void putBytes(std::string &Out, const std::string &S) {
  putU64(Out, S.size());
  Out += S;
  Out += '\n';
}

/// Cursor over a payload body; every get reports failure instead of
/// asserting so a corrupted-but-digest-colliding body still degrades to
/// LoadStatus::Corrupt rather than undefined behaviour.
struct Cursor {
  const std::string &S;
  size_t Pos = 0;
  bool OK = true;

  bool getU64(uint64_t &V) {
    return getLine([&](const std::string &L) {
      errno = 0;
      char *End = nullptr;
      V = std::strtoull(L.c_str(), &End, 10);
      return End != L.c_str() && *End == '\0' && errno != ERANGE;
    });
  }

  bool getI64(int64_t &V) {
    return getLine([&](const std::string &L) {
      errno = 0;
      char *End = nullptr;
      V = std::strtoll(L.c_str(), &End, 10);
      return End != L.c_str() && *End == '\0' && errno != ERANGE;
    });
  }

  bool getBytes(std::string &V) {
    uint64_t N = 0;
    if (!getU64(N) || Pos + N + 1 > S.size())
      return OK = false;
    V.assign(S, Pos, N);
    Pos += N;
    if (S[Pos] != '\n')
      return OK = false;
    ++Pos;
    return true;
  }

private:
  template <typename Parse> bool getLine(Parse P) {
    if (!OK)
      return false;
    size_t End = S.find('\n', Pos);
    if (End == std::string::npos)
      return OK = false;
    std::string Line = S.substr(Pos, End - Pos);
    Pos = End + 1;
    if (!P(Line))
      return OK = false;
    return true;
  }
};

std::string serializeRuns(const BaselineArtifact &A) {
  std::string Out;
  for (const auto &[Index, R] : A.Runs) {
    putU64(Out, Index);
    putU64(Out, R.Trapped ? 1 : 0);
    putU64(Out, static_cast<uint64_t>(R.Trap));
    putI64(Out, R.ExitCode);
    putU64(Out, R.Cycles10);
    putU64(Out, R.Instructions);
    putU64(Out, R.Checksum);
    putBytes(Out, R.TrapReason);
    putBytes(Out, R.Output);
  }
  return Out;
}

bool deserializeRuns(const std::string &Payload, size_t Count,
                     BaselineArtifact &Out) {
  Cursor C{Payload};
  Out.Runs.clear();
  Out.Runs.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    uint64_t Index = 0, Trapped = 0, Trap = 0, Cycles = 0, Instr = 0,
             Checksum = 0;
    int64_t Exit = 0;
    std::string Reason, Output;
    if (!C.getU64(Index) || !C.getU64(Trapped) || !C.getU64(Trap) ||
        !C.getI64(Exit) || !C.getU64(Cycles) || !C.getU64(Instr) ||
        !C.getU64(Checksum) || !C.getBytes(Reason) || !C.getBytes(Output))
      return false;
    mexec::RunResult R;
    R.Trapped = Trapped != 0;
    R.Trap = static_cast<mexec::TrapKind>(Trap);
    R.ExitCode = static_cast<int32_t>(Exit);
    R.Cycles10 = Cycles;
    R.Instructions = Instr;
    R.Checksum = static_cast<uint32_t>(Checksum);
    R.TrapReason = std::move(Reason);
    R.Output = std::move(Output);
    Out.Runs.emplace_back(static_cast<uint32_t>(Index), std::move(R));
  }
  return C.Pos == Payload.size();
}

/// Header line: "<magic> <keyhex> <field>... <size> <digesthex>\n".
std::string makeHeader(const char *Magic, const StoreKey &K,
                       const std::vector<uint64_t> &Fields,
                       const std::string &Payload) {
  std::string H = Magic;
  H += ' ';
  H += K.hex();
  for (uint64_t F : Fields) {
    H += ' ';
    H += std::to_string(F);
  }
  H += ' ';
  H += std::to_string(Payload.size());
  H += ' ';
  appendHex64(H, serve::fnv1a64(Payload.data(), Payload.size()));
  H += '\n';
  return H;
}

} // namespace

std::string StoreKey::hex() const {
  std::string Out;
  Out.reserve(32);
  appendHex64(Out, Hi);
  appendHex64(Out, Lo);
  return Out;
}

std::string serve::baseKeyMaterial(const mir::MModule &Baseline,
                                   const codegen::LinkOptions &Link) {
  std::string M;
  appendBaseMaterial(M, Baseline, Link);
  return M;
}

StoreKey serve::makeVariantKey(const mir::MModule &Baseline,
                               const diversity::Pipeline &Pipe,
                               const diversity::DiversityOptions &D,
                               uint64_t Seed,
                               const codegen::LinkOptions &Link) {
  return makeVariantKey(baseKeyMaterial(Baseline, Link), Pipe, D, Seed);
}

StoreKey serve::makeVariantKey(const std::string &BaseMaterial,
                               const diversity::Pipeline &Pipe,
                               const diversity::DiversityOptions &D,
                               uint64_t Seed) {
  std::string M = BaseMaterial;
  M += Pipe.label();
  M += '\0';
  // Serialize every DiversityOptions field explicitly -- label() is a
  // human-facing summary and must not be trusted to discriminate.
  M += std::to_string(static_cast<unsigned>(D.Model));
  M += ':';
  M += std::to_string(D.PMin);
  M += ':';
  M += std::to_string(D.PMax);
  M += D.IncludeXchgNops ? ":x" : ":-";
  M += '\0';
  M += std::to_string(Seed);
  return keyOf(M);
}

StoreKey serve::makeBaselineKey(const mir::MModule &Baseline,
                                const codegen::LinkOptions &Link) {
  std::string M;
  appendBaseMaterial(M, Baseline, Link);
  M += "baseline";
  return keyOf(M);
}

//===----------------------------------------------------------------------===//
// VariantStore
//===----------------------------------------------------------------------===//

VariantStore::VariantStore(std::string RootDir) : Root(std::move(RootDir)) {}

bool VariantStore::open(std::string *Error) {
  std::error_code EC;
  fs::create_directories(Root, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create store '" + Root + "': " + EC.message();
    return false;
  }
  // Probe writability now, so an unwritable store surfaces at startup as
  // a file-I/O error instead of as per-request publish failures later.
  std::string Probe = Root + "/.probe";
  {
    std::ofstream Out(Probe, std::ios::binary | std::ios::trunc);
    Out << StoreVersion;
    Out.flush();
    if (!Out.good()) {
      if (Error)
        *Error = "store '" + Root + "' is not writable";
      return false;
    }
  }
  fs::remove(Probe, EC);
  return true;
}

std::string VariantStore::entryPath(const StoreKey &K,
                                    const char *Suffix) const {
  return Root + "/" + K.hex() + Suffix;
}

/// Reads and validates one entry file. On success \p Payload holds the
/// body and \p Header the numeric fields between key and size.
LoadStatus VariantStore::loadFile(const std::string &Path, const StoreKey &K,
                                  const char *Magic, std::string &Payload,
                                  std::vector<uint64_t> &Header) const {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::Miss;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Contents = SS.str();

  auto Corrupt = [&] {
    // A torn entry must never be served twice: unlink it so the next
    // request takes the clean miss -> recompile -> republish path.
    std::error_code EC;
    fs::remove(Path, EC);
    return LoadStatus::Corrupt;
  };

  size_t Eol = Contents.find('\n');
  if (Eol == std::string::npos || Eol > 512)
    return Corrupt();
  std::istringstream Line(Contents.substr(0, Eol));
  std::string Tag, KeyHex;
  if (!(Line >> Tag >> KeyHex) || Tag != Magic || KeyHex != K.hex())
    return Corrupt();
  std::vector<std::string> Rest;
  for (std::string Tok; Line >> Tok;)
    Rest.push_back(Tok);
  if (Rest.size() < 2)
    return Corrupt();

  std::string DigestHex = Rest.back();
  Rest.pop_back();
  Header.clear();
  uint64_t Size = 0;
  for (size_t I = 0; I != Rest.size(); ++I) {
    errno = 0;
    char *End = nullptr;
    uint64_t V = std::strtoull(Rest[I].c_str(), &End, 10);
    if (End == Rest[I].c_str() || *End != '\0' || errno == ERANGE)
      return Corrupt();
    if (I + 1 == Rest.size())
      Size = V;
    else
      Header.push_back(V);
  }

  Payload = Contents.substr(Eol + 1);
  if (Payload.size() != Size)
    return Corrupt(); // truncated or padded body
  std::string Expect;
  appendHex64(Expect, fnv1a64(Payload.data(), Payload.size()));
  if (DigestHex != Expect)
    return Corrupt(); // bit rot / torn write
  return LoadStatus::Hit;
}

bool VariantStore::publishFile(const std::string &Path,
                               const std::string &Contents,
                               std::string *Error) const {
  // Unique temp name per (process, publish): a crashed publish leaves
  // only an orphaned temp file, never a live-key entry.
  static std::atomic<uint64_t> TempCounter{0};
  std::string Temp = Path + ".tmp." +
#ifdef _WIN32
                     std::to_string(_getpid()) +
#else
                     std::to_string(getpid()) +
#endif
                     "." + std::to_string(TempCounter.fetch_add(1));
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (Out)
      Out << Contents;
    Out.flush();
    if (!Out.good()) {
      if (Error)
        *Error = "cannot write '" + Temp + "'";
      std::error_code EC;
      fs::remove(Temp, EC);
      return false;
    }
  }
  std::error_code EC;
  fs::rename(Temp, Path, EC);
  if (EC) {
    if (Error)
      *Error = "cannot publish '" + Path + "': " + EC.message();
    fs::remove(Temp, EC);
    return false;
  }
  return true;
}

LoadStatus VariantStore::load(const StoreKey &K, StoredVariant &Out) const {
  std::string Payload;
  std::vector<uint64_t> Header;
  std::string Path = entryPath(K, ".variant");
  LoadStatus S = loadFile(Path, K, VariantMagic, Payload, Header);
  if (S == LoadStatus::Hit && Header.size() != 3) {
    std::error_code EC;
    fs::remove(Path, EC); // wrong field count: treat like a torn entry
    S = LoadStatus::Corrupt;
  }
  switch (S) {
  case LoadStatus::Miss:
    Misses.fetch_add(1, std::memory_order_relaxed);
    return S;
  case LoadStatus::Corrupt:
    Corruptions.fetch_add(1, std::memory_order_relaxed);
    return S;
  case LoadStatus::Hit:
    break;
  }
  Out.Seed = Header[0];
  Out.SeedUsed = Header[1];
  Out.Attempts = static_cast<uint32_t>(Header[2]);
  Out.Text.assign(Payload.begin(), Payload.end());
  Hits.fetch_add(1, std::memory_order_relaxed);
  return LoadStatus::Hit;
}

bool VariantStore::publish(const StoreKey &K, const StoredVariant &V,
                           std::string *Error) const {
  std::string Payload(V.Text.begin(), V.Text.end());
  std::string Contents =
      makeHeader(VariantMagic, K, {V.Seed, V.SeedUsed, V.Attempts}, Payload);
  Contents += Payload;
  if (!publishFile(entryPath(K, ".variant"), Contents, Error))
    return false;
  Publishes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

LoadStatus VariantStore::loadBaseline(const StoreKey &K,
                                      BaselineArtifact &Out) const {
  std::string Payload;
  std::vector<uint64_t> Header;
  std::string Path = entryPath(K, ".baseline");
  LoadStatus S = loadFile(Path, K, BaselineMagic, Payload, Header);
  if (S == LoadStatus::Hit &&
      (Header.size() != 1 || !deserializeRuns(Payload, Header[0], Out))) {
    std::error_code EC;
    fs::remove(Path, EC); // body failed to parse: torn entry
    S = LoadStatus::Corrupt;
  }
  switch (S) {
  case LoadStatus::Miss:
    Misses.fetch_add(1, std::memory_order_relaxed);
    break;
  case LoadStatus::Corrupt:
    Corruptions.fetch_add(1, std::memory_order_relaxed);
    break;
  case LoadStatus::Hit:
    Hits.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  return S;
}

bool VariantStore::publishBaseline(const StoreKey &K,
                                   const BaselineArtifact &A,
                                   std::string *Error) const {
  std::string Payload = serializeRuns(A);
  std::string Contents = makeHeader(BaselineMagic, K, {A.Runs.size()}, Payload);
  Contents += Payload;
  if (!publishFile(entryPath(K, ".baseline"), Contents, Error))
    return false;
  Publishes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool VariantStore::contains(const StoreKey &K) const {
  std::error_code EC;
  return fs::exists(entryPath(K, ".variant"), EC);
}
