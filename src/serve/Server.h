//===-- serve/Server.h - Persistent variant-serving daemon ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pgsdc serve` daemon core. The paper's deployment model (Section
/// 1) has an "App Store"-style distribution point hand every user a
/// unique diversified binary; this module is that distribution point's
/// engine: compile and profile the workload once, then answer a stream
/// of requests, each with a distinct *verified* variant.
///
/// Request path, per seed:
///   1. Derive the content address (serve/VariantStore keying) and probe
///      the persistent store. A hit serves the cached artifact -- this is
///      what makes a restarted daemon resume instead of recompiling its
///      whole fleet.
///   2. On miss (or corruption, which self-heals to a miss), the fill --
///      diversify, verify, link, publish -- is admitted to a bounded
///      queue (serve/Admission). Under overload the request waits up to
///      the admit budget, then is shed; the daemon degrades by rejecting
///      requests, never by unbounded queueing.
///   3. A fill whose verification exhausts retries (baseline fallback) is
///      *failed*, not served: the daemon's contract is that every served
///      artifact is a diversified variant that passed verification.
///
/// Baseline persistence: the verify::BaselineCache entries computed
/// while filling are published as a baseline artifact on shutdown and
/// prewarmed back on startup, so a restart also skips baseline
/// re-execution, not just variant recompiles.
///
/// Telemetry: serve.* counters, queue gauges, and a request-latency
/// histogram (p50/p99 in ServeResult), exported via src/obs and checked
/// by `metrics_check --serve`.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SERVE_SERVER_H
#define PGSD_SERVE_SERVER_H

#include "codegen/Linker.h"
#include "diversity/NopInsertion.h"
#include "diversity/Transform.h"
#include "driver/Driver.h"
#include "verify/Verifier.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pgsd {
namespace serve {

/// How one request ended.
enum class RequestOutcome {
  Hit,    ///< Served from the persistent store.
  Fill,   ///< Compiled, verified, published, served.
  Shed,   ///< Rejected by admission control under overload.
  Failed, ///< Admitted but not servable (verify fallback or I/O error).
};

/// One request's record, as streamed to ServeOptions::Observer and
/// collected in ServeResult::Requests.
struct RequestResult {
  uint64_t Seed = 0;     ///< Request seed (BaseSeed + index).
  RequestOutcome Outcome = RequestOutcome::Shed;
  double Seconds = 0.0;  ///< Latency: submit to served/shed/failed.
  uint64_t SeedUsed = 0; ///< Seed of the accepted verify attempt.
  uint32_t Attempts = 0; ///< Verify attempts behind the artifact.
  uint64_t TextDigest = 0; ///< FNV-1a of the served image bytes.
  uint64_t TextSize = 0;   ///< Served image size in bytes.

  bool served() const {
    return Outcome == RequestOutcome::Hit || Outcome == RequestOutcome::Fill;
  }
};

/// Configuration for one serve run.
struct ServeOptions {
  std::string StoreDir;      ///< Persistent store root (required).
  uint64_t Requests = 64;    ///< Seeds BaseSeed .. BaseSeed+Requests-1.
  uint64_t BaseSeed = 1;
  unsigned Jobs = 0;         ///< Fill workers; 0 = defaultConcurrency.
  unsigned QueueDepth = 16;  ///< Admission slots beyond the workers.
  double AdmitWaitSeconds = 30.0; ///< Backpressure budget before shedding.
  diversity::Pipeline Pipe;
  diversity::DiversityOptions Diversity;
  verify::VerifyOptions Verify;
  codegen::LinkOptions Link;
  /// Streaming observer, invoked once per finished request. Hit and Shed
  /// records arrive on the serving thread, Fill and Failed records on a
  /// worker -- the callback must be thread-safe. Null is fine.
  std::function<void(const RequestResult &)> Observer;
  /// Test seam: runs at the start of every admitted fill (on the
  /// worker). Lets tests hold a fill in flight to pin shedding
  /// deterministically. Null is fine.
  std::function<void(uint64_t Seed)> FillGate;
};

/// Aggregate outcome of a serve run.
struct ServeResult {
  std::vector<RequestResult> Requests; ///< One per request, in order.
  uint64_t Served = 0;   ///< Hits + Fills.
  uint64_t Hits = 0;     ///< Requests served from the store.
  uint64_t Fills = 0;    ///< Requests compiled and published.
  uint64_t Shed = 0;     ///< Requests rejected by admission control.
  uint64_t Failed = 0;   ///< Admitted requests that were not servable.
  uint64_t StoreCorrupt = 0;    ///< Corrupt entries detected (self-healed).
  uint64_t DistinctVariants = 0; ///< Pairwise-distinct served images.
  uint64_t BaselinePrewarmed = 0; ///< Cache entries restored from disk.
  uint64_t BaselineCacheHits = 0;
  uint64_t BaselineCacheFills = 0;
  unsigned Jobs = 0;
  unsigned QueueCapacity = 0;
  unsigned QueuePeakDepth = 0;
  double WallSeconds = 0.0;
  double P50LatencySeconds = 0.0; ///< Over served requests.
  double P99LatencySeconds = 0.0;
  std::string Error; ///< First store I/O error; empty when none.

  /// False when the store failed to open or a publish failed -- the
  /// caller maps this to the file-I/O exit code, never ignores it.
  bool ok() const { return Error.empty(); }
};

/// Runs the daemon loop over \p O.Requests seeds against compiled,
/// profile-stamped program \p P. Synchronous: returns when every request
/// was served, shed, or failed and the baseline artifact is persisted.
ServeResult serveVariants(const driver::Program &P, const ServeOptions &O);

} // namespace serve
} // namespace pgsd

#endif // PGSD_SERVE_SERVER_H
