//===-- serve/Server.cpp - Persistent variant-serving daemon ---------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Metrics.h"
#include "serve/Admission.h"
#include "serve/VariantStore.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "support/Time.h"
#include "verify/BaselineCache.h"

#include <mutex>
#include <set>
#include <utility>

using namespace pgsd;
using namespace pgsd::serve;

namespace {

/// Request-latency buckets: sub-millisecond warm hits through multi-
/// second cold fills under retry pressure.
constexpr double LatencyBounds[] = {0.0005, 0.001, 0.0025, 0.005, 0.01,
                                    0.025,  0.05,  0.1,    0.25,  0.5,
                                    1.0,    2.5,   5.0,    10.0};

} // namespace

ServeResult serve::serveVariants(const driver::Program &P,
                                 const ServeOptions &O) {
  ServeResult R;
  R.Jobs = O.Jobs == 0 ? support::ThreadPool::defaultConcurrency() : O.Jobs;

  const bool Obs = obs::enabled();
  auto WallStart = support::monotonicSeconds();

  VariantStore Store(O.StoreDir);
  verify::BaselineCache Cache = [&] {
    obs::Span S(Obs ? "serve.setup" : nullptr);
    return verify::BaselineCache(P.MIR, O.Verify);
  }();
  verify::VerifyOptions Verify = O.Verify;
  Verify.Cache = &Cache;

  {
    obs::Span S(Obs ? "serve.setup" : nullptr);
    if (!Store.open(&R.Error))
      return R; // Unwritable store: fail loudly at startup, not later.

    // Restore baseline differential runs persisted by a previous
    // process: verification fills after a restart then skip baseline
    // execution entirely. A corrupt artifact self-heals to a miss.
    BaselineArtifact Art;
    if (Store.loadBaseline(makeBaselineKey(P.MIR, O.Link), Art) ==
        LoadStatus::Hit)
      for (const auto &[Index, Run] : Art.Runs)
        if (Index < Cache.battery().size())
          Cache.prewarm(Index, Run);
  }

  // Per-request telemetry sinks, merged after the drain (same contract
  // as the batch factory: no registry lock on the fill path).
  std::vector<obs::LocalMetrics> Sinks(Obs ? O.Requests : 0);

  R.Requests.resize(O.Requests);
  std::mutex ErrMutex; // Guards R.Error first-write from fill workers.

  auto Record = [&](size_t I, RequestResult Req) {
    R.Requests[I] = std::move(Req);
    if (O.Observer)
      O.Observer(R.Requests[I]);
  };

  const std::string BaseMaterial = baseKeyMaterial(P.MIR, O.Link);

  {
    obs::Span Fan(Obs ? "serve.fanout" : nullptr);
    support::ThreadPool Pool(R.Jobs);
    AdmissionQueue Queue(Pool, R.Jobs + O.QueueDepth);

    for (uint64_t I = 0; I != O.Requests; ++I) {
      const uint64_t Seed = O.BaseSeed + I;
      const double Start = support::monotonicSeconds();
      const StoreKey Key =
          makeVariantKey(BaseMaterial, O.Pipe, O.Diversity, Seed);

      RequestResult Req;
      Req.Seed = Seed;

      // Hit path runs on the serving thread: a warm request is a disk
      // read plus a digest check, not a compile, so it neither queues
      // nor occupies a fill slot.
      StoredVariant SV;
      LoadStatus S = Store.load(Key, SV);
      if (S == LoadStatus::Hit) {
        Req.Outcome = RequestOutcome::Hit;
        Req.SeedUsed = SV.SeedUsed;
        Req.Attempts = SV.Attempts;
        Req.TextDigest = fnv1a64(SV.Text.data(), SV.Text.size());
        Req.TextSize = SV.Text.size();
        Req.Seconds = support::elapsedSeconds(Start,
                                              support::monotonicSeconds());
        Record(I, std::move(Req));
        continue;
      }
      // Corrupt entries were unlinked by the store; from here the fill
      // path is identical to a plain miss.

      bool Admitted = Queue.submit(
          [&, I, Seed, Key, Start] {
            obs::ScopedSink Route(Obs ? &Sinks[I] : nullptr);
            obs::Span Fill(Obs ? "serve.fill" : nullptr);
            if (O.FillGate)
              O.FillGate(Seed);

            RequestResult FillReq;
            FillReq.Seed = Seed;
            driver::VerifiedVariant V = driver::makeVariantVerified(
                P, O.Pipe, O.Diversity, Seed, Verify, O.Link);
            if (!V.ok()) {
              // Never serve the baseline fallback: the daemon's promise
              // is a *diversified, verified* artifact per request.
              FillReq.Outcome = RequestOutcome::Failed;
              FillReq.Attempts = V.Attempts;
              FillReq.Seconds = support::elapsedSeconds(
                  Start, support::monotonicSeconds());
              Record(I, std::move(FillReq));
              return;
            }

            StoredVariant Out;
            Out.Text = V.V.Image.Text;
            Out.Seed = Seed;
            Out.SeedUsed = V.SeedUsed;
            Out.Attempts = V.Attempts;
            std::string PubErr;
            if (!Store.publish(Key, Out, &PubErr)) {
              // A publish failure is a real I/O error (disk full,
              // permissions): surface it, don't leave a silent gap.
              {
                std::lock_guard<std::mutex> Lock(ErrMutex);
                if (R.Error.empty())
                  R.Error = PubErr;
              }
              FillReq.Outcome = RequestOutcome::Failed;
              FillReq.Attempts = V.Attempts;
              FillReq.Seconds = support::elapsedSeconds(
                  Start, support::monotonicSeconds());
              Record(I, std::move(FillReq));
              return;
            }

            FillReq.Outcome = RequestOutcome::Fill;
            FillReq.SeedUsed = V.SeedUsed;
            FillReq.Attempts = V.Attempts;
            FillReq.TextDigest =
                fnv1a64(Out.Text.data(), Out.Text.size());
            FillReq.TextSize = Out.Text.size();
            FillReq.Seconds = support::elapsedSeconds(
                Start, support::monotonicSeconds());
            Record(I, std::move(FillReq));
          },
          O.AdmitWaitSeconds);

      if (!Admitted) {
        Req.Outcome = RequestOutcome::Shed;
        Req.Seconds =
            support::elapsedSeconds(Start, support::monotonicSeconds());
        Record(I, std::move(Req));
      }
    }

    Queue.drain();
    Pool.wait(); // Propagate the first worker exception, if any.
    R.QueueCapacity = Queue.capacity();
    R.QueuePeakDepth = Queue.peakDepth();
  }

  {
    obs::Span S(Obs ? "serve.persist" : nullptr);

    // Persist every baseline entry this run computed (or restored), so
    // the next process starts with a warm differential cache. Only
    // publish when the artifact would grow -- a pure-hit run rewrites
    // nothing.
    BaselineArtifact Art;
    for (size_t I = 0; I != Cache.battery().size(); ++I)
      if (const mexec::RunResult *Run = Cache.peek(I))
        Art.Runs.emplace_back(static_cast<uint32_t>(I), *Run);
    R.BaselinePrewarmed = Cache.prewarmed();
    if (Art.Runs.size() > R.BaselinePrewarmed) {
      std::string PubErr;
      if (!Store.publishBaseline(makeBaselineKey(P.MIR, O.Link), Art,
                                 &PubErr) &&
          R.Error.empty())
        R.Error = PubErr;
    }
  }

  R.WallSeconds =
      support::elapsedSeconds(WallStart, support::monotonicSeconds());
  R.BaselineCacheHits = Cache.hits();
  R.BaselineCacheFills = Cache.fills();
  R.StoreCorrupt = Store.corruptions();

  std::vector<double> ServedLatencies;
  std::set<std::pair<uint64_t, uint64_t>> Distinct;
  for (const RequestResult &Req : R.Requests) {
    switch (Req.Outcome) {
    case RequestOutcome::Hit:
      ++R.Hits;
      break;
    case RequestOutcome::Fill:
      ++R.Fills;
      break;
    case RequestOutcome::Shed:
      ++R.Shed;
      break;
    case RequestOutcome::Failed:
      ++R.Failed;
      break;
    }
    if (Req.served()) {
      ServedLatencies.push_back(Req.Seconds);
      Distinct.emplace(Req.TextDigest, Req.TextSize);
    }
  }
  R.Served = R.Hits + R.Fills;
  R.DistinctVariants = Distinct.size();
  R.P50LatencySeconds = percentile(ServedLatencies, 50.0);
  R.P99LatencySeconds = percentile(ServedLatencies, 99.0);

  if (Obs) {
    obs::Span Fin("serve.finalize");
    obs::Registry &Reg = obs::Registry::global();
    for (const obs::LocalMetrics &Sink : Sinks)
      Reg.merge(Sink);
    // Every serve.* family is exported unconditionally -- zero-valued
    // counters must exist so metrics_check --serve can check invariants
    // over them rather than special-casing absent keys.
    obs::counterAdd("serve.requests", O.Requests);
    obs::counterAdd("serve.served", R.Served);
    obs::counterAdd("serve.cache_hits", R.Hits);
    obs::counterAdd("serve.cache_fills", R.Fills);
    obs::counterAdd("serve.shed", R.Shed);
    obs::counterAdd("serve.failed", R.Failed);
    obs::counterAdd("serve.store_corrupt", R.StoreCorrupt);
    obs::counterAdd("serve.baseline_prewarmed", R.BaselinePrewarmed);
    obs::counterAdd("verify.baseline_cache.hits", R.BaselineCacheHits);
    obs::counterAdd("verify.baseline_cache.fills", R.BaselineCacheFills);
    obs::gaugeSet("serve.jobs", R.Jobs);
    obs::gaugeSet("serve.queue_capacity", R.QueueCapacity);
    obs::gaugeSet("serve.queue_peak_depth", R.QueuePeakDepth);
    obs::gaugeSet("serve.distinct_variants",
                  static_cast<double>(R.DistinctVariants));
    obs::gaugeSet("serve.wall_seconds", R.WallSeconds);
    obs::gaugeSet("serve.p50_latency_seconds", R.P50LatencySeconds);
    obs::gaugeSet("serve.p99_latency_seconds", R.P99LatencySeconds);
    // Histogram total equals serve.served by construction (one
    // observation per served request) -- metrics_check pins this.
    for (double L : ServedLatencies)
      obs::histogramObserve("serve.request_latency_seconds", L,
                            LatencyBounds);
  }
  return R;
}
