//===-- serve/VariantStore.h - Persistent variant artifact store -*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed, persistent on-disk artifact store behind
/// `pgsdc serve`. The paper's deployment story -- every user downloads a
/// unique binary -- needs per-variant artifacts that survive a daemon
/// restart, so a re-started fleet resumes from cache hits instead of
/// recompiling its whole population.
///
/// Keying: an entry is addressed by a 128-bit hash of everything that
/// determines its bytes -- the profile-stamped baseline MIR (printed
/// form, so profile counts are part of the key), the transform pipeline,
/// the diversity options, the request seed, the link options, and a
/// store format version. Same inputs, same key, process-independent; any
/// change to source, profile, pipeline, or engine version re-keys and
/// naturally invalidates.
///
/// Durability contract:
///  * Publication is write-to-temp + std::filesystem::rename, so a crash
///    mid-publish can never leave a half-written entry under a live key
///    (POSIX rename is atomic; readers see the old entry or the new one,
///    never a torn one).
///  * Every load re-hashes the payload against the digest recorded in
///    the header. A truncated, bit-flipped, or wrong-format entry loads
///    as LoadStatus::Corrupt -- the caller recompiles and re-publishes;
///    a torn entry is never served.
///
/// Thread-safety: load() and publish() may be called concurrently from
/// admission-queue workers; counters are atomic and distinct keys touch
/// distinct files. Two concurrent publishes of the *same* key both write
/// private temp files and the renames serialize -- last writer wins with
/// either writer's complete entry visible, which is fine because entries
/// are pure functions of their key.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SERVE_VARIANTSTORE_H
#define PGSD_SERVE_VARIANTSTORE_H

#include "codegen/Linker.h"
#include "diversity/NopInsertion.h"
#include "diversity/Transform.h"
#include "lir/MIR.h"
#include "mexec/Interp.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace serve {

/// A 128-bit content address (two independent FNV-1a streams).
struct StoreKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  /// 32 lowercase hex characters, the entry's file stem.
  std::string hex() const;

  bool operator==(const StoreKey &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
};

/// FNV-1a over \p Data, continuing from \p Seed (the standard offset
/// basis by default). Exposed for payload digests and tests.
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 0xcbf29ce484222325ull);

/// The shared key material of (\p Baseline, \p Link) -- the expensive
/// part of key derivation (it prints the whole MIR). The serve loop
/// computes it once and derives per-request keys from it; a warm cache
/// hit must not pay a module print per request.
std::string baseKeyMaterial(const mir::MModule &Baseline,
                            const codegen::LinkOptions &Link);

/// Content address of the variant determined by (profile-stamped
/// baseline \p Baseline, \p Pipe, \p D, request seed \p Seed, \p Link).
StoreKey makeVariantKey(const mir::MModule &Baseline,
                        const diversity::Pipeline &Pipe,
                        const diversity::DiversityOptions &D, uint64_t Seed,
                        const codegen::LinkOptions &Link);

/// makeVariantKey from precomputed baseKeyMaterial().
StoreKey makeVariantKey(const std::string &BaseMaterial,
                        const diversity::Pipeline &Pipe,
                        const diversity::DiversityOptions &D, uint64_t Seed);

/// Content address of the baseline artifact (per-input baseline runs)
/// for (\p Baseline, \p Link): the variant key material minus the
/// per-request fields.
StoreKey makeBaselineKey(const mir::MModule &Baseline,
                         const codegen::LinkOptions &Link);

/// One persisted variant artifact: the served image bytes plus the
/// provenance the daemon reports (which attempt's seed produced it).
struct StoredVariant {
  std::vector<uint8_t> Text; ///< Linked .text image bytes.
  uint64_t Seed = 0;         ///< Request seed (the key's seed).
  uint64_t SeedUsed = 0;     ///< Seed of the accepted verify attempt.
  uint32_t Attempts = 0;     ///< Verify attempts behind this artifact.
};

/// Persisted baseline differential runs, one per battery input, so a
/// restarted daemon prewarms verify::BaselineCache instead of re-running
/// the baseline (verify::BaselineCache::prewarm).
struct BaselineArtifact {
  /// (battery index, baseline RunResult) pairs; only computed entries
  /// are persisted, so a partially-warmed cache round-trips losslessly.
  std::vector<std::pair<uint32_t, mexec::RunResult>> Runs;
};

/// Outcome of a load: served from disk, absent, or failed integrity.
enum class LoadStatus { Hit, Miss, Corrupt };

/// The on-disk store. One directory, one file per key; see the file
/// comment for the durability contract.
class VariantStore {
public:
  explicit VariantStore(std::string RootDir);

  const std::string &root() const { return Root; }

  /// Creates the root directory (and parents). False with \p Error set
  /// when the directory cannot be created or is not writable.
  bool open(std::string *Error = nullptr);

  /// Loads the entry under \p K. Hit fills \p Out; Corrupt means the
  /// entry existed but failed header or digest validation (the caller
  /// must recompile -- the torn file is unlinked so the next load is a
  /// clean miss).
  LoadStatus load(const StoreKey &K, StoredVariant &Out) const;

  /// Atomically publishes \p V under \p K (temp + rename). False with
  /// \p Error set on any write failure -- callers must not ignore it
  /// (disk-full maps to the file-I/O exit code, not a silent cache gap).
  bool publish(const StoreKey &K, const StoredVariant &V,
               std::string *Error = nullptr) const;

  /// Baseline artifact round trip, same contract as load()/publish().
  LoadStatus loadBaseline(const StoreKey &K, BaselineArtifact &Out) const;
  bool publishBaseline(const StoreKey &K, const BaselineArtifact &A,
                       std::string *Error = nullptr) const;

  /// True when an intact entry exists under \p K (no payload copy).
  bool contains(const StoreKey &K) const;

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t corruptions() const {
    return Corruptions.load(std::memory_order_relaxed);
  }
  uint64_t publishes() const {
    return Publishes.load(std::memory_order_relaxed);
  }

private:
  std::string entryPath(const StoreKey &K, const char *Suffix) const;
  LoadStatus loadFile(const std::string &Path, const StoreKey &K,
                      const char *Magic, std::string &Payload,
                      std::vector<uint64_t> &Header) const;
  bool publishFile(const std::string &Path, const std::string &Contents,
                   std::string *Error) const;

  std::string Root;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> Corruptions{0};
  mutable std::atomic<uint64_t> Publishes{0};
};

} // namespace serve
} // namespace pgsd

#endif // PGSD_SERVE_VARIANTSTORE_H
