//===-- serve/Admission.h - Bounded admission queue --------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded admission on top of support::ThreadPool. The pool's own queue
/// is unbounded -- correct for the batch factory, which owns its whole
/// work list up front, but wrong for a daemon facing an open request
/// stream: a burst would queue without limit until the process OOMs.
/// AdmissionQueue caps the number of admitted-but-unfinished tasks at a
/// fixed capacity; a submitter hitting the cap first *waits* (bounded
/// backpressure -- the client sees latency), and when the wait budget
/// runs out the request is *shed* (the client sees a rejection). The
/// degradation order under load is therefore queueing, then rejection,
/// never unbounded memory growth.
///
/// Thread-safety: submit() may be called from any number of threads;
/// completions on pool workers signal waiting submitters. drain() is the
/// submitters' barrier -- it returns once every admitted task finished
/// (it does not rethrow task exceptions; call ThreadPool::wait for
/// those, as the pool still owns exception propagation).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SERVE_ADMISSION_H
#define PGSD_SERVE_ADMISSION_H

#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace pgsd {
namespace serve {

/// Caps in-flight (queued + executing) tasks at \p Capacity.
class AdmissionQueue {
public:
  /// \p Capacity is clamped to at least 1 (a queue that can never admit
  /// anything would turn every request into a rejection).
  AdmissionQueue(support::ThreadPool &Pool, unsigned Capacity);

  AdmissionQueue(const AdmissionQueue &) = delete;
  AdmissionQueue &operator=(const AdmissionQueue &) = delete;

  /// Admits \p Task when a slot is free, waiting up to \p WaitSeconds
  /// for one (0 never waits). Returns false when the request was shed;
  /// the task then never runs. An admitted task's slot frees when the
  /// task finishes, even if it throws (the exception stays with the
  /// pool's first-error propagation).
  bool submit(std::function<void()> Task, double WaitSeconds);

  /// Blocks until every admitted task has finished.
  void drain();

  unsigned capacity() const { return Cap; }

  /// Currently admitted-but-unfinished tasks.
  unsigned inFlight() const;

  /// High-water mark of inFlight() over the queue's lifetime.
  unsigned peakDepth() const;

  uint64_t admitted() const;
  uint64_t shed() const;

private:
  support::ThreadPool &Pool;
  const unsigned Cap;
  mutable std::mutex Mutex;
  std::condition_variable SlotFree; ///< Signaled on task completion.
  std::condition_variable Idle;     ///< Signaled when InFlight hits 0.
  unsigned InFlight = 0;
  unsigned Peak = 0;
  uint64_t Admitted = 0;
  uint64_t Shed = 0;
};

} // namespace serve
} // namespace pgsd

#endif // PGSD_SERVE_ADMISSION_H
