//===-- serve/Admission.cpp - Bounded admission queue ----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "serve/Admission.h"

#include <chrono>
#include <utility>

using namespace pgsd;
using namespace pgsd::serve;

AdmissionQueue::AdmissionQueue(support::ThreadPool &P, unsigned Capacity)
    : Pool(P), Cap(Capacity == 0 ? 1 : Capacity) {}

bool AdmissionQueue::submit(std::function<void()> Task, double WaitSeconds) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (InFlight >= Cap) {
      auto Deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              WaitSeconds > 0 ? WaitSeconds : 0.0));
      // Bounded backpressure: wait for a slot until the deadline, then
      // shed. wait_until handles spurious wakeups via the predicate.
      if (!SlotFree.wait_until(Lock, Deadline,
                               [&] { return InFlight < Cap; })) {
        ++Shed;
        return false;
      }
    }
    ++InFlight;
    ++Admitted;
    if (InFlight > Peak)
      Peak = InFlight;
  }
  Pool.enqueue([this, Task = std::move(Task)] {
    // The slot must free even when Task throws -- otherwise one failing
    // request would permanently shrink the queue's capacity.
    struct SlotGuard {
      AdmissionQueue *Q;
      ~SlotGuard() {
        std::lock_guard<std::mutex> Lock(Q->Mutex);
        --Q->InFlight;
        Q->SlotFree.notify_one();
        if (Q->InFlight == 0)
          Q->Idle.notify_all();
      }
    } Guard{this};
    Task();
  });
  return true;
}

void AdmissionQueue::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [&] { return InFlight == 0; });
}

unsigned AdmissionQueue::inFlight() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return InFlight;
}

unsigned AdmissionQueue::peakDepth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Peak;
}

uint64_t AdmissionQueue::admitted() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Admitted;
}

uint64_t AdmissionQueue::shed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Shed;
}
