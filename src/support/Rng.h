//===-- support/Rng.h - Deterministic random numbers ------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used by the NOP
/// insertion pass (paper Algorithm 1) and the variant generator.
///
/// The paper's transformation has two sources of randomness: whether to
/// insert a NOP before an instruction, and which NOP candidate to insert.
/// Both must be reproducible from a seed so that a "variant" is a pure
/// function of (program, configuration, seed).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SUPPORT_RNG_H
#define PGSD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace pgsd {

/// xoshiro256** pseudo-random generator seeded through SplitMix64.
///
/// Chosen over std::mt19937 for speed, tiny state, and bit-exact behaviour
/// across standard libraries (variant generation must be stable between
/// toolchains so that recorded experiments are replayable).
class Rng {
public:
  /// Creates a generator whose whole stream is determined by \p Seed.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64 so that nearby
  /// seeds (0, 1, 2, ...) still yield decorrelated streams.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    // 53 high-quality bits -> mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, Bound).
  ///
  /// Uses Lemire's unbiased multiply-shift rejection method. \p Bound must
  /// be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns an integer uniformly distributed in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBernoulli(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Derives an independent child generator; used to give each function or
  /// variant its own stream so insertion decisions in one function do not
  /// perturb another.
  ///
  /// Unlike split(), fork() *consumes* one output of this generator, so
  /// successive forks differ but the parent stream advances.
  Rng fork();

  /// Derives the decorrelated child stream number \p Stream of this
  /// generator *without* advancing its state (const): split(K) called
  /// twice returns bit-identical generators. Batch workers use
  /// `Rng(BatchSeed).split(VariantSeed)` to give every variant its own
  /// stream that is a pure function of (BatchSeed, VariantSeed) -- no
  /// shared mutable RNG, no re-seeding collisions between workers.
  Rng split(uint64_t Stream) const;

private:
  uint64_t State[4];
};

} // namespace pgsd

#endif // PGSD_SUPPORT_RNG_H
