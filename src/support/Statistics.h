//===-- support/Statistics.h - Small numeric helpers ------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics used by the evaluation harnesses: the paper reports averages
/// over variants, geometric-mean slowdowns (Figure 4's last column), and
/// median execution counts (the 473.astar discussion in Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SUPPORT_STATISTICS_H
#define PGSD_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace pgsd {

/// Arithmetic mean of \p Values; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of the positive, finite entries of \p Values; 0 when
/// no entry qualifies (including the empty input). Non-positive and
/// non-finite entries are skipped rather than asserted on: a zero
/// slowdown ratio from a sub-resolution timing must degrade one sample,
/// not turn a release-mode summary into -inf/NaN.
/// Figure 4's summary column is the geometric mean of per-benchmark
/// slowdown *ratios* (1 + overhead), converted back to a percentage by the
/// caller.
double geometricMean(const std::vector<double> &Values);

/// Median (lower median for even sizes) of \p Values; 0 for empty input.
double median(std::vector<double> Values);

/// Median of unsigned 64-bit counts, used for execution-count summaries.
uint64_t medianCount(std::vector<uint64_t> Values);

/// Sample standard deviation; 0 when fewer than two values are present.
double sampleStdDev(const std::vector<double> &Values);

/// The \p P-th percentile (0 <= P <= 100) of \p Values by linear
/// interpolation between closest ranks; 0 for an empty input. percentile
/// (V, 50) equals the interpolated median; percentile(V, 99) is the tail
/// latency figure the serve daemon reports.
double percentile(std::vector<double> Values, double P);

} // namespace pgsd

#endif // PGSD_SUPPORT_STATISTICS_H
