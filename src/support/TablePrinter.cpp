//===-- support/TablePrinter.cpp - Aligned text tables --------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cstdio>

using namespace pgsd;

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::toString() const {
  // Compute per-column widths.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  std::string Out;
  for (size_t RowIdx = 0, NumRows = Rows.size(); RowIdx != NumRows; ++RowIdx) {
    const auto &Row = Rows[RowIdx];
    for (size_t I = 0, E = Widths.size(); I != E; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      Out += Cell;
      if (I + 1 != E) {
        Out.append(Widths[I] - Cell.size(), ' ');
        Out += "  ";
      }
    }
    Out += '\n';
    // Rule under the header row.
    if (RowIdx == 0 && NumRows > 1) {
      size_t Total = 0;
      for (size_t I = 0, E = Widths.size(); I != E; ++I)
        Total += Widths[I] + (I + 1 != E ? 2 : 0);
      Out.append(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void TablePrinter::print(std::FILE *Out) const {
  std::string Text = toString();
  std::fwrite(Text.data(), 1, Text.size(), Out);
}

std::string pgsd::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string pgsd::formatPercent(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Value);
  return Buf;
}

std::string pgsd::formatCount(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  return Buf;
}
