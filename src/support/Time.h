//===-- support/Time.h - Monotonic wall and CPU clocks ----------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing sources shared by the telemetry spans (obs/Metrics.h) and the
/// batch throughput accounting (driver/Batch.cpp).
///
/// CPU time deliberately does *not* come from std::clock(): clock_t is
/// 32 bits wide on several ABIs and, at CLOCKS_PER_SEC = 1e6, wraps
/// after ~36 minutes of process CPU time -- long stress sweeps would
/// report negative or garbage CpuSeconds. These helpers use the POSIX
/// per-process / per-thread CPU clocks, which are 64-bit nanosecond
/// counters and monotonic for the life of the process.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SUPPORT_TIME_H
#define PGSD_SUPPORT_TIME_H

namespace pgsd {
namespace support {

/// Monotonic wall-clock seconds since an arbitrary epoch
/// (std::chrono::steady_clock behind a double-returning facade).
double monotonicSeconds();

/// CPU seconds consumed by the whole process, monotonic and wrap-free
/// (CLOCK_PROCESS_CPUTIME_ID; getrusage user+system as fallback).
double processCpuSeconds();

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID;
/// falls back to processCpuSeconds() where unavailable).
double threadCpuSeconds();

/// Seconds elapsed from \p Start to \p End on the same clock, clamped to
/// zero: timing deltas must never go negative into a report, even if a
/// clock source misbehaves.
inline double elapsedSeconds(double Start, double End) {
  return End > Start ? End - Start : 0.0;
}

} // namespace support
} // namespace pgsd

#endif // PGSD_SUPPORT_TIME_H
