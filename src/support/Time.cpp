//===-- support/Time.cpp - Monotonic wall and CPU clocks ------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Time.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <time.h>
#define PGSD_HAVE_POSIX_CLOCKS 1
#else
#include <ctime>
#define PGSD_HAVE_POSIX_CLOCKS 0
#endif

using namespace pgsd;

double support::monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if PGSD_HAVE_POSIX_CLOCKS

namespace {
double clockSeconds(clockid_t Id) {
  struct timespec TS;
  if (clock_gettime(Id, &TS) != 0)
    return -1.0;
  return static_cast<double>(TS.tv_sec) +
         static_cast<double>(TS.tv_nsec) * 1e-9;
}
} // namespace

double support::processCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  double S = clockSeconds(CLOCK_PROCESS_CPUTIME_ID);
  if (S >= 0.0)
    return S;
#endif
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) == 0)
    return static_cast<double>(RU.ru_utime.tv_sec + RU.ru_stime.tv_sec) +
           static_cast<double>(RU.ru_utime.tv_usec +
                               RU.ru_stime.tv_usec) *
               1e-6;
  return 0.0;
}

double support::threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  double S = clockSeconds(CLOCK_THREAD_CPUTIME_ID);
  if (S >= 0.0)
    return S;
#endif
  return processCpuSeconds();
}

#else // !PGSD_HAVE_POSIX_CLOCKS

double support::processCpuSeconds() {
  // Last-resort fallback: std::clock() can wrap on 32-bit clock_t, but
  // non-POSIX hosts get at least a best-effort value. The unsigned cast
  // keeps a single wrap from going negative.
  return static_cast<double>(
             static_cast<unsigned long long>(std::clock())) /
         static_cast<double>(CLOCKS_PER_SEC);
}

double support::threadCpuSeconds() { return processCpuSeconds(); }

#endif
