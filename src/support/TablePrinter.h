//===-- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned table writer used by the bench harnesses to
/// print rows in the same shape as the paper's Figure 4 and Tables 1-3.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SUPPORT_TABLEPRINTER_H
#define PGSD_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pgsd {

/// Collects rows of string cells and renders them with per-column widths.
///
/// The first added row is treated as the header and separated by a rule.
/// Cells in numeric columns should be pre-formatted by the caller (see the
/// format helpers below); the printer only aligns.
class TablePrinter {
public:
  /// Appends one row. Rows may have differing lengths; missing cells
  /// render as empty.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to \p Out (defaults to stdout in callers).
  void print(std::FILE *Out) const;

  /// Renders the table into a string (used by tests).
  std::string toString() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Decimals fraction digits ("12.34").
std::string formatDouble(double Value, int Decimals = 2);

/// Formats \p Value as a percentage with \p Decimals digits ("12.3%").
std::string formatPercent(double Value, int Decimals = 1);

/// Formats an unsigned count ("123456").
std::string formatCount(uint64_t Value);

} // namespace pgsd

#endif // PGSD_SUPPORT_TABLEPRINTER_H
