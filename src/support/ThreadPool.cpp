//===-- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <utility>

using namespace pgsd;
using namespace pgsd::support;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Workers_) {
  unsigned N = Workers_ == 0 ? defaultConcurrency() : Workers_;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && Busy == 0; });
  if (FirstError) {
    std::exception_ptr E = std::exchange(FirstError, nullptr);
    std::rethrow_exception(E);
  }
}

uint64_t ThreadPool::suppressedExceptions() const {
  std::unique_lock<std::mutex> Lock(Mutex);
  return SuppressedErrors;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Busy;
    }
    // Run outside the lock; a throwing task must not take the worker
    // down with it -- record the first error for wait() to rethrow.
    try {
      Task();
    } catch (...) {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      else
        ++SuppressedErrors;
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Busy;
      if (Queue.empty() && Busy == 0)
        AllIdle.notify_all();
    }
  }
}
