//===-- support/Statistics.cpp - Small numeric helpers -------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pgsd;

double pgsd::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double pgsd::geometricMean(const std::vector<double> &Values) {
  // Non-positive or non-finite entries have no logarithm and previously
  // hit only a debug assert -- compiled out under NDEBUG, a zero ratio
  // from a sub-resolution timing silently turned a whole release-mode
  // summary into -inf/NaN. Guard explicitly: such entries are skipped
  // (with no valid entries at all, the result is 0), so one degenerate
  // measurement cannot poison a report row.
  double LogSum = 0.0;
  size_t Valid = 0;
  for (double V : Values) {
    if (!(V > 0.0) || !std::isfinite(V))
      continue;
    LogSum += std::log(V);
    ++Valid;
  }
  if (Valid == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(Valid));
}

double pgsd::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  size_t Mid = (Values.size() - 1) / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  return Values[Mid];
}

uint64_t pgsd::medianCount(std::vector<uint64_t> Values) {
  if (Values.empty())
    return 0;
  size_t Mid = (Values.size() - 1) / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  return Values[Mid];
}

double pgsd::percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  if (P <= 0.0)
    return Values.front();
  if (P >= 100.0)
    return Values.back();
  // Linear interpolation between closest ranks (the R-7 / NumPy default
  // definition): rank = P/100 * (N-1), blended between floor and ceil.
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  double Frac = Rank - static_cast<double>(Lo);
  if (Lo + 1 >= Values.size())
    return Values.back();
  return Values[Lo] + Frac * (Values[Lo + 1] - Values[Lo]);
}

double pgsd::sampleStdDev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size() - 1));
}
