//===-- support/Rng.cpp - Deterministic random numbers -------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

using namespace pgsd;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  // All-zero state would be a fixed point of xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row, but assert the invariant anyway.
  assert((State[0] | State[1] | State[2] | State[3]) != 0 &&
         "xoshiro state must not be all zero");
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be positive");
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  uint64_t Low = static_cast<uint64_t>(M);
  if (Low < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Low < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Low = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}

Rng Rng::fork() {
  return Rng(next());
}

Rng Rng::split(uint64_t Stream) const {
  // Mix the stream index with the (unmodified) state through two rounds
  // of SplitMix64 so that split(K) and split(K+1) are decorrelated even
  // for adjacent K, and so parents with nearby seeds do not alias.
  uint64_t X = Stream ^ 0xa0761d6478bd642full;
  uint64_t Mixed = State[0] ^ rotl(State[2], 23) ^ splitMix64(X);
  return Rng(splitMix64(Mixed));
}
