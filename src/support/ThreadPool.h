//===-- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a FIFO task queue, used by the parallel
/// variant factory (driver::makeVariantsBatch) to fan diversify-and-verify
/// work across cores.
///
/// Design constraints, in order:
///  * Determinism lives in the tasks, not the pool. The pool makes no
///    ordering promises beyond FIFO dispatch; batch results must be pure
///    functions of their per-task seeds so that scheduling is invisible.
///  * Exceptions propagate. A task that throws does not kill the worker;
///    the first exception is captured and rethrown from wait(), so a
///    std::bad_alloc in a worker surfaces in the caller like it would in
///    a serial loop.
///  * The pool is reusable: enqueue / wait / enqueue again. Destruction
///    drains the queue (it does not cancel queued tasks).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_SUPPORT_THREADPOOL_H
#define PGSD_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pgsd {
namespace support {

/// Fixed worker count, FIFO queue, first-exception propagation.
class ThreadPool {
public:
  /// Spawns \p Workers threads; 0 means defaultConcurrency().
  explicit ThreadPool(unsigned Workers = 0);

  /// Waits for queued tasks to finish, then joins the workers. Any
  /// pending exception is swallowed here (call wait() first when you
  /// care -- destructors must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Appends \p Task to the queue; some idle worker will pick it up.
  void enqueue(std::function<void()> Task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task raised since the last wait()
  /// (if one did). The pool stays usable afterwards.
  void wait();

  /// Exceptions that were dropped because another task's exception was
  /// already pending: only the first failure per wait() window is
  /// rethrown, so concurrent failures would otherwise vanish silently.
  /// Cumulative over the pool's lifetime; callers diff across wait()
  /// calls when they want a per-batch count.
  uint64_t suppressedExceptions() const;

  /// Number of worker threads.
  unsigned workerCount() const { return static_cast<unsigned>(Workers.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when the count is unknowable).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex; ///< mutable: suppressedExceptions() is const.
  std::condition_variable WorkAvailable; ///< Signaled on enqueue/stop.
  std::condition_variable AllIdle;       ///< Signaled when work drains.
  std::exception_ptr FirstError;         ///< First task exception, if any.
  uint64_t SuppressedErrors = 0;         ///< Exceptions dropped after the first.
  size_t Busy = 0;                       ///< Tasks currently executing.
  bool Stopping = false;                 ///< Set once, by the destructor.
};

} // namespace support
} // namespace pgsd

#endif // PGSD_SUPPORT_THREADPOOL_H
