//===-- verify/BaselineCache.cpp - Shared baseline run cache ---------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "verify/BaselineCache.h"

#include <cassert>
#include <mutex>

using namespace pgsd;
using namespace pgsd::verify;

struct BaselineCache::Entry {
  std::once_flag Once;
  mexec::RunResult Result;
  /// Release-published after the once body ran, so peek() can observe a
  /// completed Result without touching the once_flag.
  std::atomic<bool> Filled{false};
};

BaselineCache::BaselineCache(const mir::MModule &BaselineMod,
                             const VerifyOptions &Opts)
    : Baseline(&BaselineMod), MaxSteps(Opts.MaxSteps), Engine(Opts.Engine) {
  Battery = Opts.InputBattery.empty() ? defaultInputBattery()
                                      : Opts.InputBattery;
  if (Engine == mexec::Engine::Fast)
    Compiled.emplace(BaselineMod);
  Entries = std::make_unique<Entry[]>(Battery.size());
}

BaselineCache::~BaselineCache() = default;

const mexec::RunResult &BaselineCache::baselineRun(size_t Index) const {
  assert(Index < Battery.size() && "input index outside the battery");
  Entry &E = Entries[Index];
  bool IRan = false;
  std::call_once(E.Once, [&] {
    mexec::RunOptions Run;
    Run.Input = Battery[Index];
    Run.CollectOutput = true;
    Run.MaxSteps = MaxSteps;
    E.Result = Compiled ? Compiled->run(Run) : mexec::run(*Baseline, Run);
    IRan = true;
  });
  if (IRan) {
    E.Filled.store(true, std::memory_order_release);
    Fills.fetch_add(1, std::memory_order_relaxed);
  } else {
    Hits.fetch_add(1, std::memory_order_relaxed);
  }
  return E.Result;
}

bool BaselineCache::prewarm(size_t Index, const mexec::RunResult &R) {
  assert(Index < Battery.size() && "input index outside the battery");
  Entry &E = Entries[Index];
  bool IRan = false;
  std::call_once(E.Once, [&] {
    E.Result = R;
    IRan = true;
  });
  if (IRan) {
    E.Filled.store(true, std::memory_order_release);
    Prewarmed.fetch_add(1, std::memory_order_relaxed);
  }
  return IRan;
}

const mexec::RunResult *BaselineCache::peek(size_t Index) const {
  assert(Index < Battery.size() && "input index outside the battery");
  const Entry &E = Entries[Index];
  if (!E.Filled.load(std::memory_order_acquire))
    return nullptr;
  return &E.Result;
}
