//===-- verify/Verifier.h - Variant verification pipeline -------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generate-and-check: the paper's claim that NOP insertion "does not
/// affect program semantics" (Section 3) is trusted by construction in
/// the transformation pass, and *checked* here before a variant is
/// accepted. Every diversified build flows through verifyVariant, which
/// runs three independent check families:
///
///  1. Differential execution: baseline and variant MIR run on a
///     deterministic input battery; exit code, output checksum, output
///     text, and trap behaviour must agree input-for-input.
///  2. Image integrity: the linked .text must byte-match a deterministic
///     re-emission of the variant MIR, decode end-to-end as valid IA-32,
///     and keep every relative branch target inside the image.
///  3. Structural invariant: deleting NOP instructions (and the optional
///     block-shift prelude) from the variant MIR must reproduce the
///     baseline MIR exactly -- instruction-for-instruction, profile
///     counts included -- and stamped profile counts must respect CFG
///     flow conservation.
///
/// The checks are deliberately redundant: a corrupted image is caught
/// whether or not it changes behaviour on the battery, and a semantic
/// divergence is caught whether or not the image decodes cleanly. The
/// fault-injection harness (verify/FaultInjector.h) asserts that every
/// supported corruption class trips at least one check.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_VERIFY_VERIFIER_H
#define PGSD_VERIFY_VERIFIER_H

#include "codegen/Linker.h"
#include "lir/MIR.h"
#include "mexec/Interp.h"
#include "verify/Diagnostic.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace pgsd {
namespace verify {

class BaselineCache;

/// Configuration of one verification run.
struct VerifyOptions {
  /// Inputs for differential execution; when empty, defaultInputBattery()
  /// is used. Each entry is one read_int() stream.
  std::vector<std::vector<int32_t>> InputBattery;

  /// Dynamic instruction budget for the baseline run of each input. The
  /// variant run gets a proportionally larger budget (NOP insertion at
  /// most doubles the dynamic instruction count), so a variant is never
  /// failed for executing the NOPs it legitimately contains.
  uint64_t MaxSteps = 50'000'000;

  /// Enable the image-integrity family (re-link compare, decode walk,
  /// branch-target bounds).
  bool CheckImage = true;

  /// Enable the NOP-only structural diff against the baseline MIR.
  bool CheckStructure = true;

  /// Enable CFG flow-conservation checks on stamped profile counts.
  bool CheckProfile = true;

  /// Enable the translation-validation stage in
  /// driver::makeVariantVerified: the symbolic equivalence prover
  /// (analysis/Equiv.h) must prove the variant observationally
  /// equivalent to the baseline before any dynamic verification runs.
  /// A refutation rejects the attempt with ErrorCode::EquivRejected and
  /// moves the retry schedule to the next seed.
  bool CheckEquiv = true;

  /// Link options the image under test was produced with; the re-link
  /// comparison must use the same ones.
  codegen::LinkOptions Link;

  /// Retry budget for driver::makeVariantVerified (total attempts,
  /// including the first).
  unsigned MaxAttempts = 3;

  /// Seed-space backoff stride for the retry schedule (RetrySchedule
  /// below). 0 -- the default -- reproduces the historical schedule
  /// deriveRetrySeed(Seed, Attempt) exactly; a nonzero stride walks the
  /// base seed forward by a linearly growing step per attempt so
  /// repeated retry loops (nvx respawn after seed exhaustion) fan out
  /// into fresh seed neighbourhoods instead of re-mining one.
  uint64_t SeedStride = 0;

  /// Execution engine for differential runs. Fast and Reference are
  /// bit-identical by contract (mexec/Precompiled.h), so this only
  /// affects verification throughput.
  mexec::Engine Engine = mexec::Engine::Fast;

  /// Optional shared baseline run cache (verify/BaselineCache.h). When
  /// set, diffExecute takes its battery and baseline RunResults from the
  /// cache instead of re-running the baseline; the cache must have been
  /// built from the same baseline module and equivalent options. When
  /// null, callers that verify repeatedly (retry loops, batches) still
  /// get a per-call battery built exactly once.
  const BaselineCache *Cache = nullptr;

  /// Test seam: invoked on each candidate variant before verification
  /// (fault-injection tests corrupt the candidate here). Receives the
  /// variant MIR, its linked image, and the seed of the attempt.
  std::function<void(mir::MModule &, codegen::Image &, uint64_t)>
      InjectFault;
};

/// The deterministic input battery used when VerifyOptions::InputBattery
/// is empty: edge-case streams (empty, zeros, negatives, boundary
/// values) plus short pseudo-random streams.
std::vector<std::vector<int32_t>> defaultInputBattery();

/// Seed of retry attempt \p Attempt for base seed \p Seed. Attempt 0 is
/// the seed itself; later attempts apply a SplitMix64-style mix so the
/// schedule is deterministic yet decorrelated.
uint64_t deriveRetrySeed(uint64_t Seed, unsigned Attempt);

/// Deterministic bounded-retry seed schedule, shared by the verified
/// variant factory (driver::makeVariantVerified) and the nvx respawn
/// path so both walk seeds the same way. Attempt k draws
/// deriveRetrySeed(Base + Stride * T(k), k) where T(k) = k*(k+1)/2 is
/// the k-th triangular number: with Stride == 0 that is byte-for-byte
/// the historical schedule, and a nonzero Stride is a backoff in seed
/// space -- each attempt jumps a linearly growing distance from the
/// base, so independent schedules with distinct strides decorrelate
/// even from a shared base seed. Purely computational: callers decide
/// what an "attempt" does; the schedule only hands out seeds until the
/// budget runs dry.
class RetrySchedule {
public:
  /// \p MaxAttempts counts total attempts including the first; 0 is
  /// clamped to 1 (a schedule that can never hand out a seed is useless
  /// and historically MaxAttempts==0 meant one attempt).
  RetrySchedule(uint64_t BaseSeed, unsigned MaxAttempts,
                uint64_t SeedStride = 0)
      : Base(BaseSeed), Stride(SeedStride),
        Budget(MaxAttempts == 0 ? 1 : MaxAttempts) {}

  /// Seed of attempt \p Attempt (0-based), independent of cursor state.
  uint64_t seedFor(unsigned Attempt) const {
    uint64_t Tri = (static_cast<uint64_t>(Attempt) * (Attempt + 1)) / 2;
    return deriveRetrySeed(Base + Stride * Tri, Attempt);
  }

  /// True once every budgeted attempt has been drawn.
  bool exhausted() const { return Next >= Budget; }

  /// Hands out the next attempt's seed and advances. Precondition:
  /// !exhausted().
  uint64_t next() { return seedFor(Next++); }

  /// Attempts drawn so far.
  unsigned attemptsMade() const { return Next; }

  /// Total attempt budget (>= 1).
  unsigned budget() const { return Budget; }

private:
  uint64_t Base;
  uint64_t Stride;
  unsigned Budget;
  unsigned Next = 0;
};

/// Verifies \p Variant (with linked image \p Image) against \p Baseline.
/// Returns an empty report when the variant is behaviourally identical
/// and structurally sound.
Report verifyVariant(const mir::MModule &Baseline,
                     const mir::MModule &Variant,
                     const codegen::Image &Image,
                     const VerifyOptions &Opts);

/// The image-integrity family alone (re-link compare, decode walk,
/// branch-target bounds). Exposed for tools that have an image but no
/// baseline to diff against.
Report verifyImage(const mir::MModule &Variant, const codegen::Image &Image,
                   const codegen::LinkOptions &Link);

/// The profile-sanity family alone: stamped per-block counts of \p M
/// must satisfy CFG flow conservation (a block cannot execute more often
/// than its predecessors combined, and an executed non-returning block
/// must hand control to some successor).
Report verifyProfileFlow(const mir::MModule &M);

} // namespace verify
} // namespace pgsd

#endif // PGSD_VERIFY_VERIFIER_H
