//===-- verify/FaultInjector.h - Verification self-test harness -*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberate corruption of diversified variants, used to prove the
/// verifier's checks actually fire. A verification pipeline that is
/// never exercised against broken inputs silently decays into a rubber
/// stamp; the fault matrix below is the regression harness that keeps
/// each check family honest (tests assert 100% detection per class).
///
/// Fault classes model realistic toolchain defects:
///  * TextBitFlip       -- memory/storage corruption of the image.
///  * DroppedRelocation -- a linker fixup left unapplied.
///  * MangledBranchTarget -- a diversification pass retargeting a branch
///    (the bug class NOP insertion could introduce if it touched
///    terminators).
///  * WrongLengthNop    -- emitted NOP bytes replaced by a different
///    sequence, desynchronizing image from MIR.
///  * CorruptProfileCount -- stamped counts inconsistent with CFG flow
///    (a profile mapped onto the wrong program, or counter overflow).
///  * TruncatedText     -- an image cut short mid-instruction.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_VERIFY_FAULTINJECTOR_H
#define PGSD_VERIFY_FAULTINJECTOR_H

#include "codegen/Linker.h"
#include "lir/MIR.h"
#include "support/Rng.h"

#include <cstdint>

namespace pgsd {
namespace verify {

/// One corruption class the injector can apply.
enum class FaultClass : uint8_t {
  TextBitFlip,
  DroppedRelocation,
  MangledBranchTarget,
  WrongLengthNop,
  CorruptProfileCount,
  TruncatedText,
};

/// Number of fault classes (for sweep loops).
inline constexpr unsigned NumFaultClasses = 6;

/// Returns a stable kebab-case name ("text-bit-flip", ...).
const char *faultClassName(FaultClass Class);

/// Applies one fault of a chosen class to a (MIR, image) pair. Site
/// selection is seeded and deterministic. MIR-level faults re-link the
/// image from the corrupted MIR so the pair stays internally coherent
/// (detection must come from the semantic/structural checks, not from a
/// trivial MIR/image disagreement); image-level faults leave the MIR
/// untouched.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed,
                         const codegen::LinkOptions &LinkOpts =
                             codegen::LinkOptions())
      : Gen(Seed), Link(LinkOpts) {}

  /// Corrupts \p Variant / \p Image. Returns false when the class has no
  /// eligible site in this variant (e.g. no two-byte NOP to mangle); the
  /// artifacts are unchanged in that case.
  bool inject(FaultClass Class, mir::MModule &Variant,
              codegen::Image &Image);

private:
  bool flipTextBit(codegen::Image &Image);
  bool dropRelocation(const mir::MModule &Variant, codegen::Image &Image);
  bool mangleBranchTarget(mir::MModule &Variant, codegen::Image &Image);
  bool mangleNopLength(codegen::Image &Image);
  bool corruptProfileCount(mir::MModule &Variant);
  bool truncateText(codegen::Image &Image);

  Rng Gen;
  codegen::LinkOptions Link;
};

} // namespace verify
} // namespace pgsd

#endif // PGSD_VERIFY_FAULTINJECTOR_H
