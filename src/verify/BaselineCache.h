//===-- verify/BaselineCache.h - Shared baseline run cache ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes the baseline half of differential execution. A batch of N
/// variant seeds (driver::makeVariantsBatch) verifies every variant
/// against the *same* baseline on the *same* input battery, so without a
/// cache the baseline runs N x (1 + retries) times per input. One
/// BaselineCache resolves the battery once, compiles the baseline once
/// (for the fast engine), and computes each input's baseline RunResult
/// on first use only.
///
/// Thread-safety: entries fill under a per-entry std::once_flag, so
/// ThreadPool workers can share one const BaselineCache without
/// coordination; whoever asks first computes, everyone else blocks until
/// the result is published and then reads it read-only. Hit/fill
/// counters are atomic and surface in driver::BatchResult.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_VERIFY_BASELINECACHE_H
#define PGSD_VERIFY_BASELINECACHE_H

#include "mexec/Interp.h"
#include "mexec/Precompiled.h"
#include "verify/Verifier.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace pgsd {
namespace verify {

/// Baseline RunResults for one (baseline module, VerifyOptions) pair,
/// computed lazily and shared read-only across verification calls.
/// Non-copyable; the referenced baseline module must outlive the cache.
class BaselineCache {
public:
  /// Resolves the battery from \p Opts (falling back to
  /// defaultInputBattery()) and, when Opts.Engine is Fast, compiles the
  /// baseline eagerly so every entry fill reuses one stream.
  BaselineCache(const mir::MModule &Baseline, const VerifyOptions &Opts);
  ~BaselineCache();

  BaselineCache(const BaselineCache &) = delete;
  BaselineCache &operator=(const BaselineCache &) = delete;

  /// The resolved input battery (satellite contract: built once per
  /// VerifyOptions resolution, handed around by reference).
  const std::vector<std::vector<int32_t>> &battery() const {
    return Battery;
  }

  /// The baseline RunResult for battery()[Index], computed on first
  /// request (CollectOutput set, MaxSteps from the VerifyOptions the
  /// cache was built with). Safe to call concurrently.
  const mexec::RunResult &baselineRun(size_t Index) const;

  /// Persistence hooks (serve::VariantStore round trip).
  ///
  /// prewarm() installs \p R as entry \p Index without executing the
  /// baseline -- the restart path of a persistent daemon: baseline runs
  /// recorded by a previous process are re-published into the fresh
  /// cache, so verification fills after the restart skip baseline
  /// execution entirely. Races benignly with concurrent baselineRun()
  /// fills (whoever gets the once_flag wins; both compute the same pure
  /// function). Returns true when this call installed the entry.
  bool prewarm(size_t Index, const mexec::RunResult &R);

  /// The already-computed entry for \p Index, or nullptr when it has
  /// not filled yet -- the export half of persistence: a daemon
  /// snapshots exactly the entries it actually computed, without
  /// forcing the rest of the battery to execute. Safe to call
  /// concurrently with fills.
  const mexec::RunResult *peek(size_t Index) const;

  /// Requests served from an already-filled entry.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }

  /// Requests that computed the entry (at most battery().size()).
  uint64_t fills() const { return Fills.load(std::memory_order_relaxed); }

  /// Entries installed by prewarm() rather than computed.
  uint64_t prewarmed() const {
    return Prewarmed.load(std::memory_order_relaxed);
  }

private:
  const mir::MModule *Baseline;
  uint64_t MaxSteps;
  mexec::Engine Engine;
  std::vector<std::vector<int32_t>> Battery;
  /// Compiled baseline stream (fast engine only).
  std::optional<mexec::Precompiled> Compiled;
  struct Entry; // Holds a std::once_flag: non-movable, hence the array.
  std::unique_ptr<Entry[]> Entries;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Fills{0};
  std::atomic<uint64_t> Prewarmed{0};
};

} // namespace verify
} // namespace pgsd

#endif // PGSD_VERIFY_BASELINECACHE_H
