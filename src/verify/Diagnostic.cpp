//===-- verify/Diagnostic.cpp - Structured pipeline diagnostics ------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "verify/Diagnostic.h"

using namespace pgsd;
using namespace pgsd::verify;

const char *verify::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::None:
    return "none";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::IRInvalid:
    return "ir-invalid";
  case ErrorCode::MIRInvalid:
    return "mir-invalid";
  case ErrorCode::TrainingRunTrapped:
    return "training-run-trapped";
  case ErrorCode::ProfileMalformed:
    return "profile-malformed";
  case ErrorCode::ProfileShapeMismatch:
    return "profile-shape-mismatch";
  case ErrorCode::ProfileFlowInvalid:
    return "profile-flow-invalid";
  case ErrorCode::TrapMismatch:
    return "trap-mismatch";
  case ErrorCode::ExitCodeMismatch:
    return "exit-code-mismatch";
  case ErrorCode::ChecksumMismatch:
    return "checksum-mismatch";
  case ErrorCode::OutputMismatch:
    return "output-mismatch";
  case ErrorCode::ImageTextMismatch:
    return "image-text-mismatch";
  case ErrorCode::ImageDecodeInvalid:
    return "image-decode-invalid";
  case ErrorCode::BranchTargetOutOfRange:
    return "branch-target-out-of-range";
  case ErrorCode::StructuralMismatch:
    return "structural-mismatch";
  case ErrorCode::AnalysisCfgMalformed:
    return "analysis-cfg-malformed";
  case ErrorCode::AnalysisUseBeforeDef:
    return "analysis-use-before-def";
  case ErrorCode::AnalysisFlagsUnproven:
    return "analysis-flags-unproven";
  case ErrorCode::AnalysisStackImbalance:
    return "analysis-stack-imbalance";
  case ErrorCode::AnalysisFrameOutOfBounds:
    return "analysis-frame-out-of-bounds";
  case ErrorCode::AnalysisCallConvViolation:
    return "analysis-callconv-violation";
  case ErrorCode::StaticAnalysisRejected:
    return "static-analysis-rejected";
  case ErrorCode::EquivRefuted:
    return "equiv-refuted";
  case ErrorCode::EquivAborted:
    return "equiv-aborted";
  case ErrorCode::EquivRejected:
    return "equiv-rejected";
  case ErrorCode::RetriesExhausted:
    return "retries-exhausted";
  case ErrorCode::FileIOError:
    return "file-io-error";
  case ErrorCode::UsageError:
    return "usage-error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = "[";
  Out += errorCodeName(Code);
  Out += "]";
  if (!Context.empty()) {
    Out += " ";
    Out += Context;
  }
  return Out;
}

std::string Report::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += "\n";
  }
  return Out;
}
