//===-- verify/Diagnostic.h - Structured pipeline diagnostics ----*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic type threaded through the driver, the
/// variant verifier, and the pgsdc CLI. Replaces the old `bool OK` +
/// free-form `std::string Errors` convention: every failure carries a
/// machine-checkable error code plus human-readable context, so callers
/// can branch on *what* went wrong (retry a verification failure, map a
/// parse error to a distinct process exit code) instead of string
/// matching.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_VERIFY_DIAGNOSTIC_H
#define PGSD_VERIFY_DIAGNOSTIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace verify {

/// Error taxonomy for the whole build-and-verify pipeline.
enum class ErrorCode : uint8_t {
  None = 0,

  // Compilation stage.
  ParseError,  ///< MiniC frontend rejected the source.
  IRInvalid,   ///< Internal: mid-level IR failed its verifier.
  MIRInvalid,  ///< Internal: machine IR failed its verifier.

  // Profiling stage.
  TrainingRunTrapped,   ///< Instrumented training run did not finish.
  ProfileMalformed,     ///< Saved profile file failed to parse.
  ProfileShapeMismatch, ///< Profile does not match the program's CFG.
  ProfileFlowInvalid,   ///< Stamped counts violate CFG flow conservation.

  // Differential execution (variant vs. baseline).
  TrapMismatch,     ///< One side trapped, or trap kinds differ.
  ExitCodeMismatch, ///< Exit codes differ on some battery input.
  ChecksumMismatch, ///< Output checksums differ on some battery input.
  OutputMismatch,   ///< Collected output text differs.

  // Image integrity.
  ImageTextMismatch,      ///< .text differs from re-emission of the MIR.
  ImageDecodeInvalid,     ///< .text does not decode as valid IA-32.
  BranchTargetOutOfRange, ///< A rel branch escapes the image.
  StructuralMismatch,     ///< Variant minus NOPs != baseline MIR.

  // Static analysis (analysis/): one code per checker, so tests and
  // tools can assert *which* invariant a mutation broke.
  AnalysisCfgMalformed,      ///< Terminators/targets/counter ids invalid.
  AnalysisUseBeforeDef,      ///< Register read without a dominating def.
  AnalysisFlagsUnproven,     ///< Jcc/Setcc not proven reached by cmp/test.
  AnalysisStackImbalance,    ///< Push/pop depth broken on some path.
  AnalysisFrameOutOfBounds,  ///< Frame access escapes its planned region.
  AnalysisCallConvViolation, ///< cdecl contract broken at a call/idiv.
  StaticAnalysisRejected,    ///< Summary code: the analyzer vetoed a
                             ///< variant before differential execution.

  // Translation validation (analysis/Equiv): symbolic proof that a
  // variant is observationally equivalent to its baseline.
  EquivRefuted, ///< The prover found a counterexample (first mismatching
                ///< symbolic effect, branch condition, or exit state).
  EquivAborted, ///< The prover could not finish (malformed baseline or
                ///< resource cap); no verdict either way.
  EquivRejected,///< Summary code: translation validation vetoed a
                ///< variant before differential execution.

  // Driver / CLI policy.
  RetriesExhausted, ///< All reseeded attempts failed; baseline used.
  FileIOError,      ///< A file could not be read or written.
  UsageError,       ///< Bad command line.
};

/// Returns a stable kebab-case name for \p Code ("checksum-mismatch").
const char *errorCodeName(ErrorCode Code);

/// One diagnostic: a code plus free-form context.
struct Diagnostic {
  ErrorCode Code = ErrorCode::None;
  std::string Context;

  /// Renders as "[checksum-mismatch] input #2: 1b8f... != 77a0...".
  std::string str() const;
};

/// An ordered collection of diagnostics; empty means success.
struct Report {
  std::vector<Diagnostic> Diags;

  bool ok() const { return Diags.empty(); }
  void add(ErrorCode Code, std::string Context) {
    Diags.push_back({Code, std::move(Context)});
  }
  /// Appends every diagnostic of \p Other.
  void merge(const Report &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  }
  bool has(ErrorCode Code) const {
    for (const Diagnostic &D : Diags)
      if (D.Code == Code)
        return true;
    return false;
  }
  /// Code of the first diagnostic, or None when the report is clean.
  ErrorCode firstCode() const {
    return Diags.empty() ? ErrorCode::None : Diags.front().Code;
  }
  /// All diagnostics rendered one per line.
  std::string str() const;
};

} // namespace verify
} // namespace pgsd

#endif // PGSD_VERIFY_DIAGNOSTIC_H
