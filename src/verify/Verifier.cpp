//===-- verify/Verifier.cpp - Variant verification pipeline ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "verify/Verifier.h"

#include "analysis/Analysis.h"
#include "mexec/Interp.h"
#include "mexec/Precompiled.h"
#include "obs/Metrics.h"
#include "support/Rng.h"
#include "verify/BaselineCache.h"
#include "x86/Decoder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <optional>

using namespace pgsd;
using namespace pgsd::verify;
using namespace pgsd::mir;

std::vector<std::vector<int32_t>> verify::defaultInputBattery() {
  std::vector<std::vector<int32_t>> Battery;
  Battery.push_back({});
  Battery.push_back({0});
  Battery.push_back({1});
  Battery.push_back({-1, 0, 1});
  Battery.push_back({7, 3, 255, -128, 64});
  Battery.push_back({INT32_MAX, INT32_MIN, 0, 1, -1});
  std::vector<int32_t> Ramp;
  for (int32_t I = 0; I != 16; ++I)
    Ramp.push_back(I * 3 - 8);
  Battery.push_back(std::move(Ramp));
  // A fixed pseudo-random stream (deterministic: the battery is part of
  // the verification contract, not a fuzzer).
  Rng Gen(0xba77e47ull);
  std::vector<int32_t> Noise;
  for (unsigned I = 0; I != 32; ++I)
    Noise.push_back(static_cast<int32_t>(Gen.nextInRange(-1000, 1000)));
  Battery.push_back(std::move(Noise));
  return Battery;
}

uint64_t verify::deriveRetrySeed(uint64_t Seed, unsigned Attempt) {
  if (Attempt == 0)
    return Seed;
  // One SplitMix64 finalization keyed by the attempt index: the schedule
  // is a pure function of (Seed, Attempt) and decorrelated across
  // attempts.
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ull * Attempt;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

namespace {

std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string format(const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Differential execution
//===----------------------------------------------------------------------===//

void diffExecute(const MModule &Baseline, const MModule &Variant,
                 const VerifyOptions &Opts, Report &R) {
  // The baseline side comes from the caller's shared cache when one is
  // provided; otherwise a local cache still resolves the battery once
  // per diffExecute call and memoizes nothing beyond it (each input's
  // baseline runs exactly once here anyway).
  std::optional<BaselineCache> Local;
  const BaselineCache &Cache =
      Opts.Cache ? *Opts.Cache : Local.emplace(Baseline, Opts);
  const std::vector<std::vector<int32_t>> &Battery = Cache.battery();

  // The variant reruns on every input: compile it once up front.
  std::optional<mexec::Precompiled> FastVariant;
  if (Opts.Engine == mexec::Engine::Fast)
    FastVariant.emplace(Variant);

  mexec::RunOptions Run;
  Run.CollectOutput = true;
  for (size_t In = 0; In != Battery.size(); ++In) {
    const mexec::RunResult &RB = Cache.baselineRun(In);
    if (RB.Trapped && RB.Trap == mexec::TrapKind::StepBudget)
      continue; // Non-terminating on this input: nothing to compare.

    // NOP insertion at most doubles the dynamic instruction count (one
    // NOP per original instruction); block shifting adds one jump per
    // call. Budget accordingly so legitimate NOPs never trip the limit.
    Run.Input = Battery[In];
    Run.MaxSteps = RB.Instructions * 2 + 4096;
    mexec::RunResult RV =
        FastVariant ? FastVariant->run(Run) : mexec::run(Variant, Run);

    if (RB.Trapped != RV.Trapped || RB.Trap != RV.Trap) {
      R.add(ErrorCode::TrapMismatch,
            format("input #%zu: baseline %s, variant %s", In,
                   RB.Trapped ? mexec::trapKindName(RB.Trap) : "finished",
                   RV.Trapped ? mexec::trapKindName(RV.Trap) : "finished"));
      continue;
    }
    if (RB.Checksum != RV.Checksum)
      R.add(ErrorCode::ChecksumMismatch,
            format("input #%zu: %08x != %08x", In, RB.Checksum,
                   RV.Checksum));
    if (RB.Output != RV.Output)
      R.add(ErrorCode::OutputMismatch,
            format("input #%zu: %zu vs %zu output bytes", In,
                   RB.Output.size(), RV.Output.size()));
    if (!RB.Trapped && RB.ExitCode != RV.ExitCode)
      R.add(ErrorCode::ExitCodeMismatch,
            format("input #%zu: %d != %d", In, RB.ExitCode, RV.ExitCode));
  }
}

//===----------------------------------------------------------------------===//
// Structural invariant: variant minus NOPs == baseline
//===----------------------------------------------------------------------===//

/// Field-by-field instruction equality, with the variant's branch
/// targets shifted down by \p BranchShift (nonzero when the variant
/// carries a block-shift prelude).
bool sameInstr(const MInstr &B, const MInstr &V, uint32_t BranchShift) {
  if (B.Op != V.Op)
    return false;
  int32_t VImm = V.Imm;
  if (V.Op == MOp::Jmp || V.Op == MOp::Jcc)
    VImm -= static_cast<int32_t>(BranchShift);
  if (B.Dst != V.Dst || B.Src != V.Src || B.Imm != VImm ||
      B.Alu != V.Alu || B.Shift != V.Shift || B.CC != V.CC)
    return false;
  if (B.Op == MOp::Call) {
    if (B.Target.IsIntrinsic != V.Target.IsIntrinsic)
      return false;
    if (B.Target.IsIntrinsic)
      return B.Target.Intr == V.Target.Intr;
    return B.Target.Func == V.Target.Func;
  }
  return true;
}

/// NOP normalization for the structural diff. The classification of
/// what counts as an inserted NOP is owned by analysis/ so this diff
/// and the equivalence prover (analysis/Equiv.h) can never disagree.
std::vector<const MInstr *> stripNops(const MBasicBlock &BB) {
  return analysis::nonNopInstrs(BB);
}

/// True when \p F starts with the two-block prelude insertBlockShift
/// produces: `jmp 2` then an all-NOP pad ending in `jmp 2`.
bool hasShiftPrelude(const MFunction &F, size_t BaselineBlocks) {
  if (F.Blocks.size() != BaselineBlocks + 2)
    return false;
  auto B0 = stripNops(F.Blocks[0]);
  auto B1 = stripNops(F.Blocks[1]);
  auto IsJmp2 = [](const std::vector<const MInstr *> &Is) {
    return Is.size() == 1 && Is[0]->Op == MOp::Jmp && Is[0]->Imm == 2;
  };
  return IsJmp2(B0) && IsJmp2(B1);
}

void diffStructure(const MModule &Baseline, const MModule &Variant,
                   Report &R) {
  if (Baseline.Functions.size() != Variant.Functions.size()) {
    R.add(ErrorCode::StructuralMismatch,
          format("function count %zu != %zu", Variant.Functions.size(),
                 Baseline.Functions.size()));
    return;
  }
  if (Baseline.EntryFunction != Variant.EntryFunction)
    R.add(ErrorCode::StructuralMismatch, "entry function differs");

  for (size_t FI = 0; FI != Baseline.Functions.size(); ++FI) {
    const MFunction &BF = Baseline.Functions[FI];
    const MFunction &VF = Variant.Functions[FI];
    uint32_t Shift = 0;
    if (hasShiftPrelude(VF, BF.Blocks.size())) {
      Shift = 2;
    } else if (VF.Blocks.size() != BF.Blocks.size()) {
      R.add(ErrorCode::StructuralMismatch,
            format("%s: block count %zu != %zu", BF.Name.c_str(),
                   VF.Blocks.size(), BF.Blocks.size()));
      continue;
    }
    for (size_t BI = 0; BI != BF.Blocks.size(); ++BI) {
      const MBasicBlock &BB = BF.Blocks[BI];
      const MBasicBlock &VB = VF.Blocks[BI + Shift];
      if (BB.ProfileCount != VB.ProfileCount)
        R.add(ErrorCode::StructuralMismatch,
              format("%s block %zu: profile count %" PRIu64
                     " != baseline %" PRIu64,
                     BF.Name.c_str(), BI, VB.ProfileCount,
                     BB.ProfileCount));
      auto BIs = stripNops(BB);
      auto VIs = stripNops(VB);
      if (BIs.size() != VIs.size()) {
        R.add(ErrorCode::StructuralMismatch,
              format("%s block %zu: %zu non-NOP instrs vs baseline %zu",
                     BF.Name.c_str(), BI, VIs.size(), BIs.size()));
        continue;
      }
      for (size_t I = 0; I != BIs.size(); ++I)
        if (!sameInstr(*BIs[I], *VIs[I], Shift)) {
          R.add(ErrorCode::StructuralMismatch,
                format("%s block %zu instr %zu: %s differs from baseline",
                       BF.Name.c_str(), BI, I, mopName(VIs[I]->Op)));
          break;
        }
    }
  }
}

//===----------------------------------------------------------------------===//
// Profile flow conservation
//===----------------------------------------------------------------------===//

void checkProfileFlow(const MModule &M, Report &R) {
  // u128 so summed u64 counts cannot wrap (GCC/Clang extension; the
  // __extension__ marker keeps -Wpedantic quiet about it).
  __extension__ typedef unsigned __int128 u128;
  for (const MFunction &F : M.Functions) {
    size_t N = F.Blocks.size();
    // Sum of predecessor counts per block (128-bit: counts are u64).
    std::vector<u128> PredSum(N, 0);
    for (uint32_t B = 0; B != N; ++B)
      for (uint32_t S : F.successors(B))
        PredSum[S] += F.Blocks[B].ProfileCount;

    for (uint32_t B = 0; B != N; ++B) {
      uint64_t C = F.Blocks[B].ProfileCount;
      if (C == 0)
        continue;
      // Every execution of a non-entry block arrives over some CFG edge,
      // and each predecessor contributes at most one arrival per
      // execution of its own.
      if (B != 0 && PredSum[B] < C) {
        R.add(ErrorCode::ProfileFlowInvalid,
              format("%s block %u: count %" PRIu64
                     " exceeds combined predecessor count",
                     F.Name.c_str(), B, C));
        continue;
      }
      // Every execution of a non-returning block hands control to some
      // successor.
      std::vector<uint32_t> Succs = F.successors(B);
      if (Succs.empty())
        continue; // Ret-terminated.
      u128 SuccSum = 0;
      for (uint32_t S : Succs)
        SuccSum += F.Blocks[S].ProfileCount;
      if (SuccSum < C)
        R.add(ErrorCode::ProfileFlowInvalid,
              format("%s block %u: count %" PRIu64
                     " exceeds combined successor count",
                     F.Name.c_str(), B, C));
    }
  }
}

//===----------------------------------------------------------------------===//
// Image integrity
//===----------------------------------------------------------------------===//

void checkImage(const MModule &Variant, const codegen::Image &Image,
                const codegen::LinkOptions &Link, Report &R) {
  // 1. Byte-exact round trip: linking is deterministic, so the image
  // must equal a fresh emission of the MIR it claims to encode. This is
  // the integrity check with full coverage -- any .text corruption,
  // dropped relocation, or resequenced NOP shows up as a byte diff.
  codegen::Image Fresh = codegen::link(Variant, Link);
  if (Fresh.Text != Image.Text) {
    size_t At = 0;
    size_t Limit = std::min(Fresh.Text.size(), Image.Text.size());
    while (At != Limit && Fresh.Text[At] == Image.Text[At])
      ++At;
    R.add(ErrorCode::ImageTextMismatch,
          format(".text diverges from re-emission at offset %#zx "
                 "(%zu vs %zu bytes)",
                 At, Image.Text.size(), Fresh.Text.size()));
  } else if (Fresh.FuncOffsets != Image.FuncOffsets ||
             Fresh.EntryOffset != Image.EntryOffset) {
    R.add(ErrorCode::ImageTextMismatch,
          "function offset table diverges from re-emission");
  }

  // 2. Decode round trip: the whole image (stub, functions, alignment
  // NOPs) must decode as valid IA-32 with every relative branch target
  // inside the image.
  const uint8_t *Bytes = Image.Text.data();
  size_t Size = Image.Text.size();
  size_t Off = 0;
  while (Off < Size) {
    x86::Decoded D;
    if (!x86::decodeInstr(Bytes + Off, Size - Off, D)) {
      R.add(ErrorCode::ImageDecodeInvalid,
            format("invalid or truncated instruction at offset %#zx",
                   Off));
      return; // Stream is out of sync; later offsets are meaningless.
    }
    switch (D.Class) {
    case x86::InstrClass::CallRel:
    case x86::InstrClass::JmpRel:
    case x86::InstrClass::Jcc:
    case x86::InstrClass::Loop: {
      int64_t Target =
          static_cast<int64_t>(Off) + D.Length + D.Imm;
      if (Target < 0 || Target >= static_cast<int64_t>(Size))
        R.add(ErrorCode::BranchTargetOutOfRange,
              format("branch at offset %#zx targets %+" PRId64
                     " (image is %zu bytes)",
                     Off, Target, Size));
      break;
    }
    default:
      break;
    }
    Off += D.Length;
  }
}

} // namespace

Report verify::verifyImage(const MModule &Variant,
                           const codegen::Image &Image,
                           const codegen::LinkOptions &Link) {
  Report R;
  checkImage(Variant, Image, Link, R);
  return R;
}

Report verify::verifyProfileFlow(const MModule &M) {
  Report R;
  checkProfileFlow(M, R);
  return R;
}

Report verify::verifyVariant(const MModule &Baseline,
                             const MModule &Variant,
                             const codegen::Image &Image,
                             const VerifyOptions &Opts) {
  Report R;
  std::string Problem = mir::verify(Variant);
  if (!Problem.empty()) {
    R.add(ErrorCode::MIRInvalid, Problem);
    return R; // Executing an invalid module would assert.
  }
  if (Opts.CheckStructure) {
    obs::Span S("verify.structure");
    diffStructure(Baseline, Variant, R);
  }
  if (Opts.CheckProfile) {
    obs::Span S("verify.profile");
    checkProfileFlow(Variant, R);
  }
  if (Opts.CheckImage) {
    obs::Span S("verify.image");
    checkImage(Variant, Image, Opts.Link, R);
  }
  {
    obs::Span S("verify.diff_execute");
    diffExecute(Baseline, Variant, Opts, R);
  }
  return R;
}
