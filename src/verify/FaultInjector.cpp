//===-- verify/FaultInjector.cpp - Verification self-test harness ----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "verify/FaultInjector.h"

#include "codegen/Emitter.h"
#include "x86/Nops.h"

#include <algorithm>

using namespace pgsd;
using namespace pgsd::verify;
using namespace pgsd::mir;

const char *verify::faultClassName(FaultClass Class) {
  switch (Class) {
  case FaultClass::TextBitFlip:
    return "text-bit-flip";
  case FaultClass::DroppedRelocation:
    return "dropped-relocation";
  case FaultClass::MangledBranchTarget:
    return "mangled-branch-target";
  case FaultClass::WrongLengthNop:
    return "wrong-length-nop";
  case FaultClass::CorruptProfileCount:
    return "corrupt-profile-count";
  case FaultClass::TruncatedText:
    return "truncated-text";
  }
  return "unknown";
}

bool FaultInjector::inject(FaultClass Class, MModule &Variant,
                           codegen::Image &Image) {
  switch (Class) {
  case FaultClass::TextBitFlip:
    return flipTextBit(Image);
  case FaultClass::DroppedRelocation:
    return dropRelocation(Variant, Image);
  case FaultClass::MangledBranchTarget:
    return mangleBranchTarget(Variant, Image);
  case FaultClass::WrongLengthNop:
    return mangleNopLength(Image);
  case FaultClass::CorruptProfileCount:
    return corruptProfileCount(Variant);
  case FaultClass::TruncatedText:
    return truncateText(Image);
  }
  return false;
}

bool FaultInjector::flipTextBit(codegen::Image &Image) {
  if (Image.Text.empty())
    return false;
  size_t Off = static_cast<size_t>(Gen.nextBelow(Image.Text.size()));
  Image.Text[Off] ^= static_cast<uint8_t>(1u << Gen.nextBelow(8));
  return true;
}

bool FaultInjector::dropRelocation(const MModule &Variant,
                                   codegen::Image &Image) {
  // Recover the relocation sites by re-emitting each function: the
  // emitter is deterministic, so its reloc records name exactly the
  // 32-bit fields the linker patched.
  std::vector<uint32_t> Fields;
  for (size_t F = 0; F != Variant.Functions.size(); ++F) {
    codegen::FunctionCode Code =
        codegen::emitFunction(Variant.Functions[F], Variant);
    for (const codegen::Reloc &R : Code.Relocs)
      Fields.push_back(Image.FuncOffsets[F] + R.Offset);
  }
  if (Fields.empty())
    return false;
  // Revert one patched field to the unlinked placeholder (zero), as if
  // the linker skipped it. Skip fields that already hold zero (a rel32
  // to the lexically next instruction) -- reverting those is a no-op.
  size_t Start = static_cast<size_t>(Gen.nextBelow(Fields.size()));
  for (size_t I = 0; I != Fields.size(); ++I) {
    uint32_t At = Fields[(Start + I) % Fields.size()];
    if (At + 4 > Image.Text.size())
      continue;
    bool AllZero = Image.Text[At] == 0 && Image.Text[At + 1] == 0 &&
                   Image.Text[At + 2] == 0 && Image.Text[At + 3] == 0;
    if (AllZero)
      continue;
    std::fill(Image.Text.begin() + At, Image.Text.begin() + At + 4, 0);
    return true;
  }
  return false;
}

bool FaultInjector::mangleBranchTarget(MModule &Variant,
                                       codegen::Image &Image) {
  struct Site {
    uint32_t Func, Block, Instr;
  };
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != Variant.Functions.size(); ++F) {
    const MFunction &Fn = Variant.Functions[F];
    if (Fn.Blocks.size() < 2)
      continue; // Retargeting needs a different block to aim at.
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B)
      for (uint32_t I = 0; I != Fn.Blocks[B].Instrs.size(); ++I) {
        MOp Op = Fn.Blocks[B].Instrs[I].Op;
        if (Op == MOp::Jmp || Op == MOp::Jcc)
          Sites.push_back({F, B, I});
      }
  }
  if (Sites.empty())
    return false;
  const Site &S = Sites[static_cast<size_t>(Gen.nextBelow(Sites.size()))];
  MFunction &Fn = Variant.Functions[S.Func];
  MInstr &Br = Fn.Blocks[S.Block].Instrs[S.Instr];
  Br.Imm = static_cast<int32_t>((static_cast<uint32_t>(Br.Imm) + 1) %
                                Fn.Blocks.size());
  // Keep the pair coherent: the image honestly encodes the corrupted
  // MIR, so detection must come from the structural or differential
  // checks rather than a trivial MIR/image byte disagreement.
  Image = codegen::link(Variant, Link);
  return true;
}

bool FaultInjector::mangleNopLength(codegen::Image &Image) {
  // Find the two-byte Table 1 NOP encodings present in the image and
  // replace one with two one-byte NOPs: same length budget, wrong
  // sequence -- the image no longer matches its MIR's NOP stream.
  std::vector<size_t> Sites;
  for (size_t Off = 0; Off + 1 < Image.Text.size(); ++Off) {
    x86::NopKind Kind;
    if (x86::matchNopAt(Image.Text.data() + Off, 2, /*IncludeXchg=*/true,
                        Kind) &&
        x86::nopInfo(Kind).Length == 2)
      Sites.push_back(Off);
  }
  if (Sites.empty())
    return false;
  size_t Off = Sites[static_cast<size_t>(Gen.nextBelow(Sites.size()))];
  Image.Text[Off] = 0x90;
  Image.Text[Off + 1] = 0x90;
  return true;
}

bool FaultInjector::corruptProfileCount(MModule &Variant) {
  struct Site {
    uint32_t Func, Block;
  };
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != Variant.Functions.size(); ++F)
    for (uint32_t B = 1; B < Variant.Functions[F].Blocks.size(); ++B)
      Sites.push_back({F, B});
  if (Sites.empty())
    return false;
  const Site &S = Sites[static_cast<size_t>(Gen.nextBelow(Sites.size()))];
  MFunction &Fn = Variant.Functions[S.Func];
  // Flow conservation bounds a non-entry block by the sum of its
  // predecessors; exceed that bound so the count is provably impossible.
  // u128 so summed u64 counts cannot wrap (GCC/Clang extension; the
  // __extension__ marker keeps -Wpedantic quiet about it).
  __extension__ typedef unsigned __int128 u128;
  u128 PredSum = 0;
  for (uint32_t B = 0; B != Fn.Blocks.size(); ++B)
    for (uint32_t Succ : Fn.successors(B))
      if (Succ == S.Block)
        PredSum += Fn.Blocks[B].ProfileCount;
  u128 Bogus = PredSum + 1000;
  Fn.Blocks[S.Block].ProfileCount =
      Bogus > UINT64_MAX ? UINT64_MAX
                         : static_cast<uint64_t>(Bogus);
  return true;
}

bool FaultInjector::truncateText(codegen::Image &Image) {
  if (Image.Text.size() < 2)
    return false;
  uint64_t MaxCut = std::min<uint64_t>(15, Image.Text.size() - 1);
  size_t Cut = 1 + static_cast<size_t>(Gen.nextBelow(MaxCut));
  Image.Text.resize(Image.Text.size() - Cut);
  return true;
}
