//===-- mexec/Precompiled.h - Direct-threaded execution engine ---*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast execution engine: an mir::MModule is lowered *once* into a
/// flat, cache-friendly instruction stream and then executed with
/// direct-threaded (computed-goto) dispatch. The lowering pass resolves
/// everything the tree-walking reference engine re-derives on every
/// dynamic instruction:
///
///  - register operands become dense array indices,
///  - global symbol references become absolute addresses,
///  - per-instruction CostModel charges are pre-looked-up and stored
///    next to the opcode,
///  - branch targets are rewritten to flat stream offsets,
///  - blocks are threaded in layout order, so fallthrough costs no
///    dispatch at all, and a jump to the lexically next block (which the
///    cost model treats as free) becomes its own no-cost opcode,
///  - polymorphic opcodes (ALU ops, shifts, intrinsics) are split into
///    one specialized handler per operation.
///
/// The compiled image is immutable and reusable: one Precompiled serves
/// a whole input battery, and concurrent run() calls from ThreadPool
/// workers are safe because all mutable run state is local (scratch
/// memory is thread_local, recycled between runs via a dirty-page map).
///
/// Bit-identity contract: run() must return exactly the RunResult the
/// reference engine (mexec::run) returns -- every field, including
/// Cycles10, Instructions, Checksum, Output, Counters, BlockCounts, and
/// trap kind/reason. tests/EngineParityTest.cpp enforces this over the
/// workload suite, a fuzz corpus, and trapping programs. Runs whose
/// RunOptions::Costs differ from the baked cost model fall back to the
/// reference engine (the stream's pre-baked charges would be stale), so
/// the contract holds for every RunOptions.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_MEXEC_PRECOMPILED_H
#define PGSD_MEXEC_PRECOMPILED_H

#include "lir/MIR.h"
#include "mexec/Interp.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace mexec {

namespace detail {

/// Specialized opcodes of the flat stream. One handler per enumerator;
/// the order must match the dispatch table in Precompiled.cpp.
enum class POp : uint8_t {
  BlockHead, ///< Pseudo: counts a block entry when CollectBlockCounts.
  MovRR,
  MovRI,     ///< Also MovGlobal, with the address pre-resolved into Imm.
  Load,
  Store,
  LoadFrame,
  StoreFrame,
  LeaFrame,
  AddRR,
  SubRR,
  AndRR,
  OrRR,
  XorRR,
  CmpRR,
  AddRI,
  SubRI,
  AndRI,
  OrRI,
  XorRI,
  CmpRI,
  AdcSbbTrap, ///< ADC/SBB: codegen never emits them; traps.
  ImulRR,
  Cdq,
  Idiv,
  Neg,
  Not,
  ShlRI,     ///< Count pre-masked (&31) into Ext.
  ShrRI,
  SarRI,
  ShlRC,
  ShrRC,
  SarRC,
  TestRR,
  Setcc,
  Movzx8,
  Push,
  PushI,
  Pop,
  AdjustSP,
  CallFunc,  ///< Direct call; Ext = callee function index.
  PrintI32,  ///< One opcode per intrinsic (cost = Call + Intrinsic).
  PrintChar,
  ReadI32,
  InputLen,
  Sink,
  Jmp,       ///< Taken jump; Ext = flat offset of the target BlockHead.
  JmpNext,   ///< Jump to the lexically next block: free by the cost
             ///< model, so only the step counter advances.
  Jcc,       ///< A = cc, Ext = taken offset, Cost/Imm = taken/not-taken.
  Ret,       ///< Cost pre-folded: Saved*Pop + Pop(leave) + Ret.
  Nop,
  ProfInc,
  FellOff,   ///< Guard after each function's last block; unreachable on
             ///< verified modules.
};

/// Number of POp enumerators (dispatch table size).
inline constexpr size_t NumPOps = static_cast<size_t>(POp::FellOff) + 1;

/// One predecoded instruction: 16 bytes, so four per cache line.
struct PInstr {
  POp Op;
  uint8_t A = 0;     ///< Dst register index, or condition code (Jcc).
  uint8_t B = 0;     ///< Src register index.
  int32_t Imm = 0;   ///< Immediate / displacement; not-taken cost (Jcc).
  uint32_t Cost = 0; ///< Pre-looked-up Cycles10 charge.
  uint32_t Ext = 0;  ///< Branch offset / callee index / counter id /
                     ///< shift count / flat block-count index.
};

static_assert(sizeof(PInstr) == 16, "PInstr must stay cache-friendly");

/// Per-function constants resolved at compile time.
struct PFunc {
  uint32_t Entry = 0;        ///< Flat offset just past block 0's head.
  uint32_t FrameDrop = 0;    ///< FrameBytes + 4 * callee-saved pushes.
  uint32_t PrologueCost = 0; ///< Push + MovRR + Alu + Saved * Push.
  uint32_t Block0Flat = 0;   ///< Flat block-count index of block 0.
};

} // namespace detail

/// A module lowered to the flat stream. Immutable after construction;
/// run() is const and thread-safe (per-thread scratch memory).
class Precompiled {
public:
  /// Lowers \p M against \p Costs (charges are baked into the stream).
  /// \p M must outlive the Precompiled: the custom-cost fallback path
  /// and block-count shapes refer back to it.
  explicit Precompiled(const mir::MModule &M,
                       const CostModel &Costs = CostModel());

  /// Executes the precompiled stream. Bit-identical to
  /// mexec::run(M, Opts); when Opts.Costs differs from the baked model
  /// this delegates to the reference engine directly.
  RunResult run(const RunOptions &Opts) const;

  /// The cost model the stream was compiled against.
  const CostModel &bakedCosts() const { return Costs; }

  /// Flat stream length in PInstrs (tests and benches).
  size_t streamLength() const { return Code.size(); }

private:
  RunResult execute(const RunOptions &Opts) const;

  const mir::MModule *Src;
  CostModel Costs;
  std::vector<detail::PInstr> Code;
  std::vector<detail::PFunc> Funcs;
  std::vector<uint32_t> FlatBase;      ///< Function -> flat block base.
  std::vector<uint32_t> BlocksPerFunc; ///< For unflattening BlockCounts.
  uint32_t NumFlatBlocks = 0;
  uint32_t EntryFunc = 0;
  uint32_t NumCounters = 0;
  /// Global initialization replayed at the start of every run, already
  /// bounds-checked at compile time (exactly the writes the reference
  /// engine's init loop performs).
  struct InitWrite {
    uint32_t Addr;
    int32_t Value;
  };
  std::vector<InitWrite> InitWrites;
  bool InitTraps = false; ///< A global init write was out of bounds.
};

} // namespace mexec
} // namespace pgsd

#endif // PGSD_MEXEC_PRECOMPILED_H
