//===-- mexec/Interp.h - Machine-IR execution engine -------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes machine IR with a per-instruction cycle cost model. This is
/// the testbed substitute for the paper's Xeon 5150 wall-clock runs: MIR
/// instructions map one-to-one to emitted IA-32 instructions, so charging
/// per-instruction costs reproduces the mechanism behind the paper's
/// Figure 4 -- LLVM 3.1 performed no profile-guided optimizations, so
/// "the performance gains come solely from inserting fewer NOPs in
/// frequently executed code" (Section 5.1). NOPs charge a small
/// fetch/decode cost; the optional XCHG NOPs charge the bus-lock penalty
/// that made the paper exclude them (Section 3).
///
/// The same engine drives profiling runs: ProfInc pseudo-instructions
/// increment edge counters, and ground-truth per-block execution counts
/// can be collected to validate the minimal-counter profiling
/// infrastructure.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_MEXEC_INTERP_H
#define PGSD_MEXEC_INTERP_H

#include "lir/MIR.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace mexec {

/// Per-instruction costs in tenths of a cycle.
///
/// Magnitudes follow Agner-Fog-style throughput/latency blends for the
/// Core-era microarchitecture the paper measured on: cheap ALU/moves,
/// pricier memory ops, expensive divide, and a NOP that only consumes a
/// fetch/decode slot (a fraction of a cycle on a superscalar core).
struct CostModel {
  // Effective (throughput-blended) costs on a ~3-wide core: simple ALU
  // ops retire several per cycle, memory ops carry L1 latency, divide
  // serializes.
  uint32_t MovRR = 3;
  uint32_t MovRI = 3;
  uint32_t Lea = 4;
  uint32_t Alu = 4;
  uint32_t Imul = 15;
  uint32_t Idiv = 250;
  uint32_t Load = 15;
  uint32_t Store = 15;
  uint32_t FrameLoad = 10;  ///< [ebp+d]: usually an L1 hit.
  uint32_t FrameStore = 10;
  uint32_t Push = 8;
  uint32_t Pop = 8;
  uint32_t Call = 40;
  uint32_t Ret = 40;
  uint32_t JmpTaken = 8;
  uint32_t JccTaken = 16;
  uint32_t JccNotTaken = 6;
  uint32_t Nop = 2;       ///< Table 1 NOPs: a fetch/decode slot.
  uint32_t XchgNop = 30;  ///< XCHG forms lock the bus (paper Section 3).
  uint32_t ProfInc = 25;  ///< Memory read-modify-write.
  uint32_t Intrinsic = 600; ///< Syscall-wrapper round trip.

  /// Field-wise equality; the precompiled engine bakes one cost model
  /// into its instruction stream and compares against RunOptions::Costs
  /// to decide whether the baked stream is usable for a given run.
  bool operator==(const CostModel &) const = default;
};

/// Cap on RunResult::Output: both print intrinsics stop appending once
/// the collected text reaches this size (the checksum keeps folding, so
/// behaviour stays observable past the cap).
inline constexpr size_t OutputCapBytes = 1u << 20;

/// Up-front RunResult::Output reservation when CollectOutput is set:
/// covers virtually every battery/test program without ever committing
/// the full cap per run.
inline constexpr size_t OutputReserveBytes = 1u << 12;

/// Instruction stride at which both engines poll RunOptions::Cancel.
/// A power of two so the poll folds into the step-budget check; 1024
/// instructions keep the worst-case reaction latency far below any
/// realistic lockstep timeout while costing one predictable branch per
/// instruction when no cancel flag is installed.
inline constexpr uint64_t CancelPollStride = 1024;

/// Inputs and limits for one run.
struct RunOptions {
  std::vector<int32_t> Input;      ///< Stream consumed by read_int().
  uint64_t MaxSteps = 4ull << 30;  ///< Dynamic instruction budget.
  uint32_t MaxCallDepth = 8192;
  bool CollectBlockCounts = false; ///< Ground-truth per-block counts.
  bool CollectOutput = false;      ///< Keep printed text (tests only).
  CostModel Costs;

  /// Cooperative cancellation for external watchdogs (the N-variant
  /// lockstep monitor arms this to enforce wall-clock timeouts). Both
  /// engines poll the flag every CancelPollStride-th counted
  /// instruction -- at identical points in the instruction stream, so a
  /// flag that is already set when the run starts traps bit-identically
  /// on either engine (EngineParityTest pins this). A flag raised
  /// mid-run traps at the next poll point, with TrapKind::Cancelled;
  /// *when* that poll happens is inherently wall-clock dependent, so
  /// mid-run cancellation is the one part of a RunResult outside the
  /// bit-identity contract. Null (the default) disables polling.
  const std::atomic<bool> *Cancel = nullptr;
};

/// Machine-level classification of why a run trapped. The string
/// TrapReason carries the human-readable detail; the kind is what
/// programs (the variant verifier, the CLI exit-code mapping) switch on.
enum class TrapKind : uint8_t {
  None,           ///< The run did not trap.
  StepBudget,     ///< RunOptions::MaxSteps exhausted.
  CallDepth,      ///< RunOptions::MaxCallDepth exceeded.
  DivideByZero,   ///< IDIV #DE: zero divisor or quotient overflow.
  BadMemory,      ///< Load/store outside the flat memory image.
  StackOverflow,  ///< ESP pushed below codegen::StackLimit.
  BadInstruction, ///< Opcode/operand combination codegen never emits.
  Cancelled,      ///< RunOptions::Cancel observed set at a poll point.
};

/// Returns a stable lowercase name ("step-budget", "bad-memory", ...).
const char *trapKindName(TrapKind Kind);

/// Result of one run.
struct RunResult {
  bool Trapped = false;
  TrapKind Trap = TrapKind::None;
  std::string TrapReason;
  int32_t ExitCode = 0;
  uint64_t Cycles10 = 0;      ///< Total cost in tenths of a cycle.
  uint64_t Instructions = 0;  ///< Dynamic MIR instructions executed.
  uint32_t Checksum = 1;      ///< FNV-style fold of all printed/sunk data.
  std::string Output;         ///< When CollectOutput.
  std::vector<uint64_t> Counters; ///< ProfInc counters (instrumented).
  /// BlockCounts[f][b]: executions of block b of function f (when
  /// CollectBlockCounts).
  std::vector<std::vector<uint64_t>> BlockCounts;

  /// Cost in cycles.
  double cycles() const { return static_cast<double>(Cycles10) / 10.0; }
};

/// Runs \p M from its entry function with the tree-walking reference
/// engine. This is the semantic oracle: mexec::Precompiled must produce
/// bit-identical RunResults, and the engine-parity test suite holds it
/// to that.
RunResult run(const mir::MModule &M, const RunOptions &Opts);

/// Which execution engine to run MIR on. Fast is the precompiled
/// direct-threaded engine (mexec/Precompiled.h); Reference is the
/// tree-walking oracle above. The two are bit-identical by contract, so
/// the choice only affects throughput.
enum class Engine : uint8_t {
  Fast,      ///< Precompiled direct-threaded stream (default).
  Reference, ///< Tree-walking oracle.
};

/// Returns a stable lowercase name ("fast", "reference").
const char *engineName(Engine E);

/// Parses an engine name as accepted by the pgsdc --engine flag.
/// Returns false (leaving \p Out untouched) on anything unknown.
bool parseEngine(const std::string &Name, Engine &Out);

/// Runs \p M on the engine \p E selects. For Engine::Fast this compiles
/// the module once and throws the stream away afterwards -- callers that
/// execute the same module repeatedly should hold a mexec::Precompiled
/// instead.
RunResult runWith(Engine E, const mir::MModule &M, const RunOptions &Opts);

} // namespace mexec
} // namespace pgsd

#endif // PGSD_MEXEC_INTERP_H
