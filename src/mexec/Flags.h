//===-- mexec/Flags.h - Lazy EFLAGS model shared by both engines -*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags-relevant result of the last CMP or TEST. The generated code
/// only consumes flags immediately after CMP/TEST (Table 1 NOPs preserve
/// flags, so interleaved NOPs are harmless), which lets both execution
/// engines model EFLAGS lazily. Shared between the tree-walking reference
/// engine (Interp.cpp) and the precompiled direct-threaded engine
/// (Precompiled.cpp) so condition-code evaluation can never diverge
/// between them.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_MEXEC_FLAGS_H
#define PGSD_MEXEC_FLAGS_H

#include "x86/X86.h"

#include <cstdint>

namespace pgsd {
namespace mexec {

/// Deferred CMP/TEST operands; eval() recomputes any condition from them.
struct FlagState {
  bool IsTest = false;
  int32_t A = 0;
  int32_t B = 0;

  bool eval(x86::CondCode CC) const {
    int32_t R;
    bool CF, OF;
    if (IsTest) {
      R = A & B;
      CF = false;
      OF = false;
    } else {
      uint32_t UA = static_cast<uint32_t>(A);
      uint32_t UB = static_cast<uint32_t>(B);
      R = static_cast<int32_t>(UA - UB);
      CF = UA < UB;
      OF = ((A ^ B) & (A ^ R)) < 0;
    }
    bool ZF = R == 0;
    bool SF = R < 0;
    switch (CC) {
    case x86::CondCode::O:
      return OF;
    case x86::CondCode::NO:
      return !OF;
    case x86::CondCode::B:
      return CF;
    case x86::CondCode::AE:
      return !CF;
    case x86::CondCode::E:
      return ZF;
    case x86::CondCode::NE:
      return !ZF;
    case x86::CondCode::BE:
      return CF || ZF;
    case x86::CondCode::A:
      return !CF && !ZF;
    case x86::CondCode::S:
      return SF;
    case x86::CondCode::NS:
      return !SF;
    case x86::CondCode::P:
    case x86::CondCode::NP: {
      // Parity of the low result byte; practically unused by codegen.
      unsigned Bits = __builtin_popcount(static_cast<unsigned>(R) & 0xFF);
      bool PF = (Bits & 1) == 0;
      return CC == x86::CondCode::P ? PF : !PF;
    }
    case x86::CondCode::L:
      return SF != OF;
    case x86::CondCode::GE:
      return SF == OF;
    case x86::CondCode::LE:
      return ZF || SF != OF;
    case x86::CondCode::G:
      return !ZF && SF == OF;
    }
    return false;
  }
};

} // namespace mexec
} // namespace pgsd

#endif // PGSD_MEXEC_FLAGS_H
