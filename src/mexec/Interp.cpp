//===-- mexec/Interp.cpp - Machine-IR execution engine ---------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "mexec/Interp.h"

#include "codegen/Layout.h"
#include "mexec/Flags.h"

#include <cassert>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::mexec;
using namespace pgsd::mir;
using x86::Reg;

namespace {

/// One shadow call-stack frame (models the prologue/epilogue contract).
struct Frame {
  uint32_t Func;
  uint32_t Block;
  uint32_t InstrIndex; ///< Resume position (index after the Call).
  int32_t SavedRegs[4]; ///< EBX, ESI, EDI, EBP.
  uint32_t SavedESP;    ///< ESP right after the call pushed its slot.
};

class Machine {
public:
  Machine(const MModule &Mod, const RunOptions &RunOpts)
      : M(Mod), Opts(RunOpts), Memory(codegen::MemorySize, 0) {
    GlobalAddrs.reserve(M.Globals.size());
    uint32_t Addr = codegen::GlobalsBase;
    for (const ir::Global &G : M.Globals) {
      GlobalAddrs.push_back(Addr);
      Addr += (G.SizeBytes + 3u) & ~3u;
    }
  }

  RunResult run();

private:
  bool trap(TrapKind Kind, const char *Reason) {
    Result.Trapped = true;
    Result.Trap = Kind;
    Result.TrapReason = Reason;
    return false;
  }

  int32_t &reg(Reg R) { return Regs[x86::regNum(R)]; }

  bool read32(uint32_t Addr, int32_t &Out) {
    // 64-bit arithmetic: Addr + 4 would wrap for Addr >= 0xFFFFFFFC and
    // slip past the bounds check.
    if (static_cast<uint64_t>(Addr) + 4 > Memory.size() || Addr < 0x1000)
      return trap(TrapKind::BadMemory, "memory read out of bounds");
    Out = static_cast<int32_t>(
        static_cast<uint32_t>(Memory[Addr]) |
        (static_cast<uint32_t>(Memory[Addr + 1]) << 8) |
        (static_cast<uint32_t>(Memory[Addr + 2]) << 16) |
        (static_cast<uint32_t>(Memory[Addr + 3]) << 24));
    return true;
  }

  bool write32(uint32_t Addr, int32_t Value) {
    if (static_cast<uint64_t>(Addr) + 4 > Memory.size() || Addr < 0x1000)
      return trap(TrapKind::BadMemory, "memory write out of bounds");
    uint32_t V = static_cast<uint32_t>(Value);
    Memory[Addr] = static_cast<uint8_t>(V);
    Memory[Addr + 1] = static_cast<uint8_t>(V >> 8);
    Memory[Addr + 2] = static_cast<uint8_t>(V >> 16);
    Memory[Addr + 3] = static_cast<uint8_t>(V >> 24);
    return true;
  }

  bool push(int32_t Value) {
    uint32_t ESP = static_cast<uint32_t>(reg(Reg::ESP)) - 4;
    if (ESP < codegen::StackLimit)
      return trap(TrapKind::StackOverflow, "stack overflow");
    reg(Reg::ESP) = static_cast<int32_t>(ESP);
    return write32(ESP, Value);
  }

  void foldChecksum(uint32_t V) {
    Result.Checksum = (Result.Checksum ^ V) * 16777619u;
  }

  bool enterFunction(uint32_t Func);
  bool callIntrinsic(ir::Intrinsic Intr);
  bool step(const MInstr &I, const MFunction &F);

  const MModule &M;
  const RunOptions &Opts;
  RunResult Result;

  std::vector<uint8_t> Memory;
  std::vector<uint32_t> GlobalAddrs;
  int32_t Regs[x86::NumRegs] = {0};
  FlagState Flags;
  std::vector<Frame> CallStack;

  // Program position.
  uint32_t CurFunc = 0;
  uint32_t CurBlock = 0;
  uint32_t CurInstr = 0;
  bool Finished = false;

  size_t InputPos = 0;
};

bool Machine::enterFunction(uint32_t Func) {
  const MFunction &F = M.Functions[Func];
  // Prologue: push ebp; mov ebp, esp; sub esp, frame; push callee-saved.
  if (!push(reg(Reg::EBP)))
    return false;
  reg(Reg::EBP) = reg(Reg::ESP);
  uint32_t Saved = (F.UsesEbx ? 1 : 0) + (F.UsesEsi ? 1 : 0) +
                   (F.UsesEdi ? 1 : 0);
  uint32_t NewESP = static_cast<uint32_t>(reg(Reg::ESP)) - F.FrameBytes -
                    4 * Saved;
  if (NewESP < codegen::StackLimit)
    return trap(TrapKind::StackOverflow, "stack overflow");
  reg(Reg::ESP) = static_cast<int32_t>(NewESP);
  Result.Cycles10 += Opts.Costs.Push + Opts.Costs.MovRR + Opts.Costs.Alu +
                     Saved * Opts.Costs.Push;

  CurFunc = Func;
  CurBlock = 0;
  CurInstr = 0;
  if (Opts.CollectBlockCounts)
    ++Result.BlockCounts[CurFunc][0];
  return true;
}

bool Machine::callIntrinsic(ir::Intrinsic Intr) {
  Result.Cycles10 += Opts.Costs.Intrinsic;
  // Arguments sit at [esp], [esp+4], ... exactly as pushed.
  auto Arg = [&](unsigned Index, int32_t &Out) {
    return read32(static_cast<uint32_t>(reg(Reg::ESP)) + 4 * Index, Out);
  };
  switch (Intr) {
  case ir::Intrinsic::PrintI32: {
    int32_t V;
    if (!Arg(0, V))
      return false;
    foldChecksum(static_cast<uint32_t>(V));
    if (Opts.CollectOutput && Result.Output.size() < OutputCapBytes) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%d\n", V);
      Result.Output += Buf;
    }
    reg(Reg::EAX) = 0;
    return true;
  }
  case ir::Intrinsic::PrintChar: {
    int32_t V;
    if (!Arg(0, V))
      return false;
    foldChecksum(0x10000u + static_cast<uint8_t>(V));
    if (Opts.CollectOutput && Result.Output.size() < OutputCapBytes)
      Result.Output += static_cast<char>(V);
    reg(Reg::EAX) = 0;
    return true;
  }
  case ir::Intrinsic::ReadI32:
    reg(Reg::EAX) =
        InputPos < Opts.Input.size() ? Opts.Input[InputPos++] : 0;
    return true;
  case ir::Intrinsic::InputLen:
    reg(Reg::EAX) = static_cast<int32_t>(Opts.Input.size() - InputPos);
    return true;
  case ir::Intrinsic::Sink: {
    int32_t V;
    if (!Arg(0, V))
      return false;
    foldChecksum(static_cast<uint32_t>(V));
    reg(Reg::EAX) = 0;
    return true;
  }
  }
  return trap(TrapKind::BadInstruction, "unknown intrinsic");
}

bool Machine::step(const MInstr &I, const MFunction &F) {
  const CostModel &C = Opts.Costs;
  switch (I.Op) {
  case MOp::MovRR:
    reg(I.Dst) = reg(I.Src);
    Result.Cycles10 += C.MovRR;
    return true;
  case MOp::MovRI:
    reg(I.Dst) = I.Imm;
    Result.Cycles10 += C.MovRI;
    return true;
  case MOp::MovGlobal:
    reg(I.Dst) = static_cast<int32_t>(GlobalAddrs[static_cast<size_t>(I.Imm)]);
    Result.Cycles10 += C.MovRI;
    return true;
  case MOp::Load: {
    int32_t V;
    if (!read32(static_cast<uint32_t>(reg(I.Src) + I.Imm), V))
      return false;
    reg(I.Dst) = V;
    Result.Cycles10 += C.Load;
    return true;
  }
  case MOp::Store:
    Result.Cycles10 += C.Store;
    return write32(static_cast<uint32_t>(reg(I.Dst) + I.Imm), reg(I.Src));
  case MOp::LoadFrame: {
    int32_t V;
    if (!read32(static_cast<uint32_t>(reg(Reg::EBP) + I.Imm), V))
      return false;
    reg(I.Dst) = V;
    Result.Cycles10 += C.FrameLoad;
    return true;
  }
  case MOp::StoreFrame:
    Result.Cycles10 += C.FrameStore;
    return write32(static_cast<uint32_t>(reg(Reg::EBP) + I.Imm),
                   reg(I.Src));
  case MOp::LeaFrame:
    reg(I.Dst) = reg(Reg::EBP) + I.Imm;
    Result.Cycles10 += C.Lea;
    return true;
  case MOp::AluRR:
  case MOp::AluRI: {
    int32_t A = reg(I.Dst);
    int32_t B = I.Op == MOp::AluRR ? reg(I.Src) : I.Imm;
    uint32_t UA = static_cast<uint32_t>(A);
    uint32_t UB = static_cast<uint32_t>(B);
    Result.Cycles10 += C.Alu;
    switch (I.Alu) {
    case x86::AluOp::Add:
      reg(I.Dst) = static_cast<int32_t>(UA + UB);
      return true;
    case x86::AluOp::Sub:
      reg(I.Dst) = static_cast<int32_t>(UA - UB);
      return true;
    case x86::AluOp::And:
      reg(I.Dst) = A & B;
      return true;
    case x86::AluOp::Or:
      reg(I.Dst) = A | B;
      return true;
    case x86::AluOp::Xor:
      reg(I.Dst) = A ^ B;
      return true;
    case x86::AluOp::Cmp:
      Flags.IsTest = false;
      Flags.A = A;
      Flags.B = B;
      return true;
    case x86::AluOp::Adc:
    case x86::AluOp::Sbb:
      return trap(TrapKind::BadInstruction, "ADC/SBB not produced by codegen");
    }
    return trap(TrapKind::BadInstruction, "bad ALU op");
  }
  case MOp::ImulRR:
    reg(I.Dst) = static_cast<int32_t>(
        static_cast<uint32_t>(reg(I.Dst)) *
        static_cast<uint32_t>(reg(I.Src)));
    Result.Cycles10 += C.Imul;
    return true;
  case MOp::Cdq:
    reg(Reg::EDX) = reg(Reg::EAX) < 0 ? -1 : 0;
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Idiv: {
    int64_t Dividend = (static_cast<int64_t>(reg(Reg::EDX)) << 32) |
                       static_cast<uint32_t>(reg(Reg::EAX));
    int32_t Divisor = reg(I.Src);
    Result.Cycles10 += C.Idiv;
    if (Divisor == 0)
      return trap(TrapKind::DivideByZero, "integer division by zero (#DE)");
    int64_t Quot = Dividend / Divisor;
    if (Quot > INT32_MAX || Quot < INT32_MIN)
      return trap(TrapKind::DivideByZero, "integer division overflow (#DE)");
    reg(Reg::EAX) = static_cast<int32_t>(Quot);
    reg(Reg::EDX) = static_cast<int32_t>(Dividend % Divisor);
    return true;
  }
  case MOp::Neg:
    reg(I.Dst) = static_cast<int32_t>(0u - static_cast<uint32_t>(reg(I.Dst)));
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Not:
    reg(I.Dst) = ~reg(I.Dst);
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::ShiftRI:
  case MOp::ShiftRC: {
    uint32_t Count = I.Op == MOp::ShiftRI
                         ? static_cast<uint32_t>(I.Imm) & 31
                         : static_cast<uint32_t>(reg(Reg::ECX)) & 31;
    int32_t V = reg(I.Dst);
    Result.Cycles10 += C.Alu;
    switch (I.Shift) {
    case x86::ShiftOp::Shl:
      reg(I.Dst) = static_cast<int32_t>(static_cast<uint32_t>(V) << Count);
      return true;
    case x86::ShiftOp::Shr:
      reg(I.Dst) = static_cast<int32_t>(static_cast<uint32_t>(V) >> Count);
      return true;
    case x86::ShiftOp::Sar:
      reg(I.Dst) = V >> Count;
      return true;
    }
    return trap(TrapKind::BadInstruction, "bad shift op");
  }
  case MOp::TestRR:
    Flags.IsTest = true;
    Flags.A = reg(I.Dst);
    Flags.B = reg(I.Src);
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Setcc:
    reg(I.Dst) = (reg(I.Dst) & ~0xFF) | (Flags.eval(I.CC) ? 1 : 0);
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Movzx8:
    reg(I.Dst) = reg(I.Src) & 0xFF;
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Push:
    Result.Cycles10 += C.Push;
    return push(reg(I.Src));
  case MOp::PushI:
    Result.Cycles10 += C.Push;
    return push(I.Imm);
  case MOp::Pop: {
    int32_t V;
    if (!read32(static_cast<uint32_t>(reg(Reg::ESP)), V))
      return false;
    reg(I.Dst) = V;
    reg(Reg::ESP) += 4;
    Result.Cycles10 += C.Pop;
    return true;
  }
  case MOp::AdjustSP:
    reg(Reg::ESP) += I.Imm;
    Result.Cycles10 += C.Alu;
    return true;
  case MOp::Call: {
    Result.Cycles10 += C.Call;
    if (I.Target.IsIntrinsic)
      return callIntrinsic(I.Target.Intr);
    if (CallStack.size() >= Opts.MaxCallDepth)
      return trap(TrapKind::CallDepth, "call depth exceeded");
    Frame Fr;
    Fr.Func = CurFunc;
    Fr.Block = CurBlock;
    Fr.InstrIndex = CurInstr; // already advanced past the Call
    Fr.SavedRegs[0] = reg(Reg::EBX);
    Fr.SavedRegs[1] = reg(Reg::ESI);
    Fr.SavedRegs[2] = reg(Reg::EDI);
    Fr.SavedRegs[3] = reg(Reg::EBP);
    if (!push(0 /* return address */))
      return false;
    Fr.SavedESP = static_cast<uint32_t>(reg(Reg::ESP)) + 4;
    CallStack.push_back(Fr);
    return enterFunction(I.Target.Func);
  }
  case MOp::Jmp:
    if (static_cast<uint32_t>(I.Imm) != CurBlock + 1)
      Result.Cycles10 += C.JmpTaken;
    CurBlock = static_cast<uint32_t>(I.Imm);
    CurInstr = 0;
    if (Opts.CollectBlockCounts)
      ++Result.BlockCounts[CurFunc][CurBlock];
    return true;
  case MOp::Jcc:
    if (Flags.eval(I.CC)) {
      Result.Cycles10 += C.JccTaken;
      CurBlock = static_cast<uint32_t>(I.Imm);
      CurInstr = 0;
      if (Opts.CollectBlockCounts)
        ++Result.BlockCounts[CurFunc][CurBlock];
    } else {
      Result.Cycles10 += C.JccNotTaken;
    }
    return true;
  case MOp::Ret: {
    // Epilogue: pops + leave + ret.
    uint32_t Saved = (F.UsesEbx ? 1 : 0) + (F.UsesEsi ? 1 : 0) +
                     (F.UsesEdi ? 1 : 0);
    Result.Cycles10 += Saved * C.Pop + C.Pop /*leave*/ + C.Ret;
    if (CallStack.empty()) {
      Finished = true;
      Result.ExitCode = reg(Reg::EAX);
      return true;
    }
    const Frame &Fr = CallStack.back();
    reg(Reg::EBX) = Fr.SavedRegs[0];
    reg(Reg::ESI) = Fr.SavedRegs[1];
    reg(Reg::EDI) = Fr.SavedRegs[2];
    reg(Reg::EBP) = Fr.SavedRegs[3];
    reg(Reg::ESP) = static_cast<int32_t>(Fr.SavedESP);
    CurFunc = Fr.Func;
    CurBlock = Fr.Block;
    CurInstr = Fr.InstrIndex;
    CallStack.pop_back();
    return true;
  }
  case MOp::Nop:
    Result.Cycles10 +=
        x86::nopInfo(I.NopK).LocksBus ? C.XchgNop : C.Nop;
    return true;
  case MOp::ProfInc:
    ++Result.Counters[static_cast<size_t>(I.Imm)];
    Result.Cycles10 += C.ProfInc;
    return true;
  }
  return trap(TrapKind::BadInstruction, "unknown machine opcode");
}

RunResult Machine::run() {
  assert(M.EntryFunction >= 0 && "module has no entry function");
  assert(mir::verify(M).empty() && "machine module must verify");

  Result.Counters.assign(M.NumProfCounters, 0);
  if (Opts.CollectOutput)
    Result.Output.reserve(OutputReserveBytes);
  if (Opts.CollectBlockCounts) {
    Result.BlockCounts.resize(M.Functions.size());
    for (size_t F = 0; F != M.Functions.size(); ++F)
      Result.BlockCounts[F].assign(M.Functions[F].Blocks.size(), 0);
  }

  // Initialize the data segment.
  uint32_t Addr = codegen::GlobalsBase;
  for (const ir::Global &G : M.Globals) {
    for (size_t W = 0; W != G.Init.size(); ++W)
      if (!write32(Addr + static_cast<uint32_t>(4 * W), G.Init[W]))
        return std::move(Result);
    Addr += (G.SizeBytes + 3u) & ~3u;
  }

  reg(Reg::ESP) = static_cast<int32_t>(codegen::StackTop);
  reg(Reg::EBP) = 0;
  // _start pushes a fake return address before entering main.
  if (!push(0))
    return std::move(Result);
  if (!enterFunction(static_cast<uint32_t>(M.EntryFunction)))
    return std::move(Result);

  while (!Finished) {
    const MFunction &F = M.Functions[CurFunc];
    const MBasicBlock &BB = F.Blocks[CurBlock];
    if (CurInstr >= BB.Instrs.size()) {
      // Fallthrough into the lexically next block (free).
      ++CurBlock;
      CurInstr = 0;
      assert(CurBlock < F.Blocks.size() && "fell off function end");
      if (Opts.CollectBlockCounts)
        ++Result.BlockCounts[CurFunc][CurBlock];
      continue;
    }
    const MInstr &I = BB.Instrs[CurInstr++];
    ++Result.Instructions;
    if (Result.Instructions > Opts.MaxSteps) {
      trap(TrapKind::StepBudget, "instruction budget exceeded");
      break;
    }
    // Cooperative cancellation: polled at the same counted-instruction
    // positions as the fast engine (every CancelPollStride-th fetch),
    // so a pre-set flag traps bit-identically on both. Like the budget
    // trap, the fetch is counted but neither executed nor charged.
    if ((Result.Instructions & (CancelPollStride - 1)) == 0 &&
        Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed)) {
      trap(TrapKind::Cancelled, "cancelled by monitor");
      break;
    }
    if (!step(I, F))
      break;
  }
  return std::move(Result);
}

} // namespace

const char *mexec::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::StepBudget:
    return "step-budget";
  case TrapKind::CallDepth:
    return "call-depth";
  case TrapKind::DivideByZero:
    return "divide-by-zero";
  case TrapKind::BadMemory:
    return "bad-memory";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::BadInstruction:
    return "bad-instruction";
  case TrapKind::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

RunResult mexec::run(const MModule &M, const RunOptions &Opts) {
  Machine Mach(M, Opts);
  return Mach.run();
}

const char *mexec::engineName(Engine E) {
  switch (E) {
  case Engine::Fast:
    return "fast";
  case Engine::Reference:
    return "reference";
  }
  return "unknown";
}

bool mexec::parseEngine(const std::string &Name, Engine &Out) {
  if (Name == "fast") {
    Out = Engine::Fast;
    return true;
  }
  if (Name == "reference") {
    Out = Engine::Reference;
    return true;
  }
  return false;
}
