//===-- mexec/Precompiled.cpp - Direct-threaded execution engine -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Two halves: a one-shot lowering pass (the constructor) that flattens
// an MModule into the PInstr stream, and the executor, which dispatches
// that stream with computed gotos (or a plain switch when the extension
// is unavailable). The executor mirrors the reference engine's charge
// and trap ordering *exactly* -- cost-before-trap on stores/pushes/idiv,
// cost-after-read on loads/pops, prologue cost only after the stack
// limit check -- because the bit-identity contract includes Cycles10 and
// Instructions on trapping runs, not just clean ones.
//
//===----------------------------------------------------------------------===//

#include "mexec/Precompiled.h"

#include "codegen/Layout.h"
#include "mexec/Flags.h"
#include "x86/Nops.h"

#include <cassert>
#include <cstdio>
#include <cstring>

using namespace pgsd;
using namespace pgsd::mexec;
using namespace pgsd::mexec::detail;
using namespace pgsd::mir;

// Computed goto is a GNU extension; fall back to a switch elsewhere (or
// when forced, so the fallback stays buildable and testable on GCC too).
#if !defined(PGSD_MEXEC_FORCE_SWITCH) && defined(__GNUC__)
#define PGSD_MEXEC_COMPUTED_GOTO 1
#else
#define PGSD_MEXEC_COMPUTED_GOTO 0
#endif

namespace {

/// Dense register indices (x86 hardware encoding, same as x86::regNum).
constexpr unsigned RegEAX = 0;
constexpr unsigned RegECX = 1;
constexpr unsigned RegEDX = 2;
constexpr unsigned RegEBX = 3;
constexpr unsigned RegESP = 4;
constexpr unsigned RegEBP = 5;
constexpr unsigned RegESI = 6;
constexpr unsigned RegEDI = 7;

/// Reusable per-thread run memory. A fresh 16 MiB zero fill per run
/// would dominate short runs, so writes mark 64 KiB pages dirty and the
/// next run on this thread clears only those.
constexpr uint32_t PageShift = 16;
constexpr uint32_t NumPages = codegen::MemorySize >> PageShift;

struct Scratch {
  std::vector<uint8_t> Mem;
  uint8_t Dirty[NumPages] = {};
};

Scratch &acquireScratch() {
  thread_local Scratch S;
  if (S.Mem.empty()) {
    S.Mem.assign(codegen::MemorySize, 0);
  } else {
    for (uint32_t P = 0; P != NumPages; ++P) {
      if (S.Dirty[P]) {
        std::memset(S.Mem.data() + (static_cast<size_t>(P) << PageShift),
                    0, static_cast<size_t>(1) << PageShift);
        S.Dirty[P] = 0;
      }
    }
  }
  return S;
}

} // namespace

Precompiled::Precompiled(const MModule &M, const CostModel &C)
    : Src(&M), Costs(C) {
  assert(M.EntryFunction >= 0 && "module has no entry function");
  assert(mir::verify(M).empty() && "machine module must verify");
  EntryFunc = static_cast<uint32_t>(M.EntryFunction);
  NumCounters = M.NumProfCounters;

  // Global address layout, identical to the reference engine's.
  std::vector<uint32_t> GlobalAddrs;
  GlobalAddrs.reserve(M.Globals.size());
  {
    uint32_t Addr = codegen::GlobalsBase;
    for (const ir::Global &G : M.Globals) {
      GlobalAddrs.push_back(Addr);
      Addr += (G.SizeBytes + 3u) & ~3u;
    }
  }
  // Pre-check the init writes the reference engine performs one by one;
  // a write that would trap there makes every run of this module trap
  // before executing anything (replayed by the executor's early-out).
  for (size_t GI = 0; GI != M.Globals.size() && !InitTraps; ++GI) {
    const ir::Global &G = M.Globals[GI];
    for (size_t W = 0; W != G.Init.size(); ++W) {
      uint32_t WAddr = GlobalAddrs[GI] + static_cast<uint32_t>(4 * W);
      if (static_cast<uint64_t>(WAddr) + 4 > codegen::MemorySize ||
          WAddr < 0x1000) {
        InitTraps = true;
        break;
      }
      InitWrites.push_back({WAddr, G.Init[W]});
    }
  }
  if (InitTraps)
    InitWrites.clear();

  // Layout pass: every block contributes one BlockHead plus its
  // instructions; every function is closed by a FellOff guard.
  size_t NumFuncs = M.Functions.size();
  FlatBase.resize(NumFuncs);
  BlocksPerFunc.resize(NumFuncs);
  std::vector<std::vector<uint32_t>> BlockOffset(NumFuncs);
  uint32_t Offset = 0;
  for (size_t FI = 0; FI != NumFuncs; ++FI) {
    const MFunction &F = M.Functions[FI];
    FlatBase[FI] = NumFlatBlocks;
    BlocksPerFunc[FI] = static_cast<uint32_t>(F.Blocks.size());
    NumFlatBlocks += BlocksPerFunc[FI];
    BlockOffset[FI].resize(F.Blocks.size());
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      BlockOffset[FI][B] = Offset;
      Offset += 1 + static_cast<uint32_t>(F.Blocks[B].Instrs.size());
    }
    Offset += 1; // FellOff
  }

  Funcs.resize(NumFuncs);
  for (size_t FI = 0; FI != NumFuncs; ++FI) {
    const MFunction &F = M.Functions[FI];
    uint32_t Saved = (F.UsesEbx ? 1 : 0) + (F.UsesEsi ? 1 : 0) +
                     (F.UsesEdi ? 1 : 0);
    Funcs[FI].Entry = BlockOffset[FI][0] + 1; // past block 0's head
    Funcs[FI].FrameDrop = F.FrameBytes + 4 * Saved;
    Funcs[FI].PrologueCost =
        C.Push + C.MovRR + C.Alu + Saved * C.Push;
    Funcs[FI].Block0Flat = FlatBase[FI];
  }

  // Emission pass.
  Code.reserve(Offset);
  for (size_t FI = 0; FI != NumFuncs; ++FI) {
    const MFunction &F = M.Functions[FI];
    uint32_t Saved = (F.UsesEbx ? 1 : 0) + (F.UsesEsi ? 1 : 0) +
                     (F.UsesEdi ? 1 : 0);
    uint32_t RetCost = Saved * C.Pop + C.Pop /*leave*/ + C.Ret;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      assert(Code.size() == BlockOffset[FI][B] && "layout drifted");
      PInstr Head;
      Head.Op = POp::BlockHead;
      Head.Ext = FlatBase[FI] + static_cast<uint32_t>(B);
      Code.push_back(Head);
      for (const MInstr &MI : F.Blocks[B].Instrs) {
        PInstr P;
        P.Op = POp::FellOff; // overwritten below; trap if a case is missed
        switch (MI.Op) {
        case MOp::MovRR:
          P.Op = POp::MovRR;
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Cost = C.MovRR;
          break;
        case MOp::MovRI:
          P.Op = POp::MovRI;
          P.A = x86::regNum(MI.Dst);
          P.Imm = MI.Imm;
          P.Cost = C.MovRI;
          break;
        case MOp::MovGlobal:
          // Address resolved now; at run time this is a plain MovRI.
          P.Op = POp::MovRI;
          P.A = x86::regNum(MI.Dst);
          P.Imm = static_cast<int32_t>(
              GlobalAddrs[static_cast<size_t>(MI.Imm)]);
          P.Cost = C.MovRI;
          break;
        case MOp::Load:
          P.Op = POp::Load;
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Imm = MI.Imm;
          P.Cost = C.Load;
          break;
        case MOp::Store:
          P.Op = POp::Store;
          P.A = x86::regNum(MI.Dst); // base address register
          P.B = x86::regNum(MI.Src); // value
          P.Imm = MI.Imm;
          P.Cost = C.Store;
          break;
        case MOp::LoadFrame:
          P.Op = POp::LoadFrame;
          P.A = x86::regNum(MI.Dst);
          P.Imm = MI.Imm;
          P.Cost = C.FrameLoad;
          break;
        case MOp::StoreFrame:
          P.Op = POp::StoreFrame;
          P.B = x86::regNum(MI.Src);
          P.Imm = MI.Imm;
          P.Cost = C.FrameStore;
          break;
        case MOp::LeaFrame:
          P.Op = POp::LeaFrame;
          P.A = x86::regNum(MI.Dst);
          P.Imm = MI.Imm;
          P.Cost = C.Lea;
          break;
        case MOp::AluRR:
        case MOp::AluRI: {
          bool RR = MI.Op == MOp::AluRR;
          switch (MI.Alu) {
          case x86::AluOp::Add:
            P.Op = RR ? POp::AddRR : POp::AddRI;
            break;
          case x86::AluOp::Sub:
            P.Op = RR ? POp::SubRR : POp::SubRI;
            break;
          case x86::AluOp::And:
            P.Op = RR ? POp::AndRR : POp::AndRI;
            break;
          case x86::AluOp::Or:
            P.Op = RR ? POp::OrRR : POp::OrRI;
            break;
          case x86::AluOp::Xor:
            P.Op = RR ? POp::XorRR : POp::XorRI;
            break;
          case x86::AluOp::Cmp:
            P.Op = RR ? POp::CmpRR : POp::CmpRI;
            break;
          case x86::AluOp::Adc:
          case x86::AluOp::Sbb:
            P.Op = POp::AdcSbbTrap;
            break;
          }
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Imm = MI.Imm;
          P.Cost = C.Alu;
          break;
        }
        case MOp::ImulRR:
          P.Op = POp::ImulRR;
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Cost = C.Imul;
          break;
        case MOp::Cdq:
          P.Op = POp::Cdq;
          P.Cost = C.Alu;
          break;
        case MOp::Idiv:
          P.Op = POp::Idiv;
          P.B = x86::regNum(MI.Src);
          P.Cost = C.Idiv;
          break;
        case MOp::Neg:
          P.Op = POp::Neg;
          P.A = x86::regNum(MI.Dst);
          P.Cost = C.Alu;
          break;
        case MOp::Not:
          P.Op = POp::Not;
          P.A = x86::regNum(MI.Dst);
          P.Cost = C.Alu;
          break;
        case MOp::ShiftRI:
        case MOp::ShiftRC: {
          bool RI = MI.Op == MOp::ShiftRI;
          switch (MI.Shift) {
          case x86::ShiftOp::Shl:
            P.Op = RI ? POp::ShlRI : POp::ShlRC;
            break;
          case x86::ShiftOp::Shr:
            P.Op = RI ? POp::ShrRI : POp::ShrRC;
            break;
          case x86::ShiftOp::Sar:
            P.Op = RI ? POp::SarRI : POp::SarRC;
            break;
          }
          P.A = x86::regNum(MI.Dst);
          if (RI)
            P.Ext = static_cast<uint32_t>(MI.Imm) & 31; // pre-masked
          P.Cost = C.Alu;
          break;
        }
        case MOp::TestRR:
          P.Op = POp::TestRR;
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Cost = C.Alu;
          break;
        case MOp::Setcc:
          P.Op = POp::Setcc;
          P.A = x86::regNum(MI.Dst);
          P.B = static_cast<uint8_t>(MI.CC);
          P.Cost = C.Alu;
          break;
        case MOp::Movzx8:
          P.Op = POp::Movzx8;
          P.A = x86::regNum(MI.Dst);
          P.B = x86::regNum(MI.Src);
          P.Cost = C.Alu;
          break;
        case MOp::Push:
          P.Op = POp::Push;
          P.A = x86::regNum(MI.Src);
          P.Cost = C.Push;
          break;
        case MOp::PushI:
          P.Op = POp::PushI;
          P.Imm = MI.Imm;
          P.Cost = C.Push;
          break;
        case MOp::Pop:
          P.Op = POp::Pop;
          P.A = x86::regNum(MI.Dst);
          P.Cost = C.Pop;
          break;
        case MOp::AdjustSP:
          P.Op = POp::AdjustSP;
          P.Imm = MI.Imm;
          P.Cost = C.Alu;
          break;
        case MOp::Call:
          if (MI.Target.IsIntrinsic) {
            switch (MI.Target.Intr) {
            case ir::Intrinsic::PrintI32:
              P.Op = POp::PrintI32;
              break;
            case ir::Intrinsic::PrintChar:
              P.Op = POp::PrintChar;
              break;
            case ir::Intrinsic::ReadI32:
              P.Op = POp::ReadI32;
              break;
            case ir::Intrinsic::InputLen:
              P.Op = POp::InputLen;
              break;
            case ir::Intrinsic::Sink:
              P.Op = POp::Sink;
              break;
            }
            P.Cost = C.Call + C.Intrinsic;
          } else {
            P.Op = POp::CallFunc;
            P.Ext = static_cast<uint32_t>(MI.Target.Func);
            P.Cost = C.Call;
          }
          break;
        case MOp::Jmp:
          if (static_cast<uint32_t>(MI.Imm) ==
              static_cast<uint32_t>(B) + 1) {
            // Lexically-next target: the cost model charges nothing, and
            // the target's BlockHead sits at the next stream slot.
            P.Op = POp::JmpNext;
          } else {
            P.Op = POp::Jmp;
            P.Ext = BlockOffset[FI][static_cast<uint32_t>(MI.Imm)];
            P.Cost = C.JmpTaken;
          }
          break;
        case MOp::Jcc:
          P.Op = POp::Jcc;
          P.A = static_cast<uint8_t>(MI.CC);
          P.Ext = BlockOffset[FI][static_cast<uint32_t>(MI.Imm)];
          P.Cost = C.JccTaken;
          P.Imm = static_cast<int32_t>(C.JccNotTaken);
          break;
        case MOp::Ret:
          P.Op = POp::Ret;
          P.Cost = RetCost;
          break;
        case MOp::Nop:
          P.Op = POp::Nop;
          P.Cost = x86::nopInfo(MI.NopK).LocksBus ? C.XchgNop : C.Nop;
          break;
        case MOp::ProfInc:
          P.Op = POp::ProfInc;
          P.Ext = static_cast<uint32_t>(MI.Imm);
          P.Cost = C.ProfInc;
          break;
        }
        Code.push_back(P);
      }
    }
    PInstr Guard;
    Guard.Op = POp::FellOff;
    Code.push_back(Guard);
  }
  assert(Code.size() == Offset && "layout/emission size mismatch");
}

RunResult Precompiled::run(const RunOptions &Opts) const {
  // A different cost model would make every baked charge stale; the
  // reference engine looks costs up per instruction and is bit-identical
  // by definition, so rare custom-cost runs take that path.
  if (!(Opts.Costs == Costs))
    return mexec::run(*Src, Opts);
  return execute(Opts);
}

// The dispatch loop uses GNU computed gotos; silence -Wpedantic for the
// extension while keeping it on everywhere else.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
#endif

RunResult Precompiled::execute(const RunOptions &Opts) const {
  RunResult Result;
  Result.Counters.assign(NumCounters, 0);
  if (Opts.CollectOutput)
    Result.Output.reserve(OutputReserveBytes);

  std::vector<uint64_t> FlatCounts;
  const bool Collect = Opts.CollectBlockCounts;
  if (Collect)
    FlatCounts.assign(NumFlatBlocks, 0);
  auto Unflatten = [&] {
    if (!Collect)
      return;
    Result.BlockCounts.resize(BlocksPerFunc.size());
    for (size_t F = 0; F != BlocksPerFunc.size(); ++F) {
      const uint64_t *Base = FlatCounts.data() + FlatBase[F];
      Result.BlockCounts[F].assign(Base, Base + BlocksPerFunc[F]);
    }
  };

  if (InitTraps) {
    // The reference engine traps while writing global initializers,
    // before the first instruction executes.
    Result.Trapped = true;
    Result.Trap = TrapKind::BadMemory;
    Result.TrapReason = "memory write out of bounds";
    Unflatten();
    return Result;
  }

  Scratch &S = acquireScratch();
  uint8_t *const Mem = S.Mem.data();
  uint8_t *const Dirty = S.Dirty;

  // Replay the (pre-bounds-checked) data segment initialization.
  for (const InitWrite &W : InitWrites) {
    uint32_t V = static_cast<uint32_t>(W.Value);
    Mem[W.Addr] = static_cast<uint8_t>(V);
    Mem[W.Addr + 1] = static_cast<uint8_t>(V >> 8);
    Mem[W.Addr + 2] = static_cast<uint8_t>(V >> 16);
    Mem[W.Addr + 3] = static_cast<uint8_t>(V >> 24);
    Dirty[W.Addr >> PageShift] = 1;
    Dirty[(W.Addr + 3) >> PageShift] = 1;
  }

  int32_t Regs[x86::NumRegs] = {0};
  FlagState Flags;
  uint64_t Cycles = 0;
  uint64_t Instrs = 0;
  uint32_t Checksum = 1;
  size_t InputPos = 0;
  const int32_t *const InputData = Opts.Input.data();
  const size_t InputSize = Opts.Input.size();
  const uint64_t MaxSteps = Opts.MaxSteps;
  const std::atomic<bool> *const Cancel = Opts.Cancel;
  const size_t MaxDepth = Opts.MaxCallDepth;
  uint64_t *const CountsFlat = Collect ? FlatCounts.data() : nullptr;
  uint64_t *const Counters = Result.Counters.data();
  const bool CollectOutput = Opts.CollectOutput;

  struct PFrame {
    uint32_t ReturnPC;
    int32_t SavedRegs[4]; ///< EBX, ESI, EDI, EBP.
    uint32_t SavedESP;
  };
  std::vector<PFrame> Frames;
  Frames.reserve(64);

  const PInstr *const Code0 = Code.data();
  const PInstr *In = Code0;
  uint32_t PC = 0;

  auto trapSet = [&](TrapKind K, const char *Why) {
    Result.Trapped = true;
    Result.Trap = K;
    Result.TrapReason = Why;
    return false;
  };
  auto read32 = [&](uint32_t Addr, int32_t &Out) {
    if (static_cast<uint64_t>(Addr) + 4 > codegen::MemorySize ||
        Addr < 0x1000)
      return trapSet(TrapKind::BadMemory, "memory read out of bounds");
    Out = static_cast<int32_t>(
        static_cast<uint32_t>(Mem[Addr]) |
        (static_cast<uint32_t>(Mem[Addr + 1]) << 8) |
        (static_cast<uint32_t>(Mem[Addr + 2]) << 16) |
        (static_cast<uint32_t>(Mem[Addr + 3]) << 24));
    return true;
  };
  auto write32 = [&](uint32_t Addr, int32_t Value) {
    if (static_cast<uint64_t>(Addr) + 4 > codegen::MemorySize ||
        Addr < 0x1000)
      return trapSet(TrapKind::BadMemory, "memory write out of bounds");
    uint32_t V = static_cast<uint32_t>(Value);
    Mem[Addr] = static_cast<uint8_t>(V);
    Mem[Addr + 1] = static_cast<uint8_t>(V >> 8);
    Mem[Addr + 2] = static_cast<uint8_t>(V >> 16);
    Mem[Addr + 3] = static_cast<uint8_t>(V >> 24);
    Dirty[Addr >> PageShift] = 1;
    Dirty[(Addr + 3) >> PageShift] = 1;
    return true;
  };
  auto push = [&](int32_t Value) {
    uint32_t ESP = static_cast<uint32_t>(Regs[RegESP]) - 4;
    if (ESP < codegen::StackLimit)
      return trapSet(TrapKind::StackOverflow, "stack overflow");
    Regs[RegESP] = static_cast<int32_t>(ESP);
    return write32(ESP, Value);
  };
  auto fold = [&](uint32_t V) { Checksum = (Checksum ^ V) * 16777619u; };
  auto enter = [&](const PFunc &F) {
    // Prologue: push ebp; mov ebp, esp; sub esp, frame; push saved.
    if (!push(Regs[RegEBP]))
      return false;
    Regs[RegEBP] = Regs[RegESP];
    uint32_t NewESP = static_cast<uint32_t>(Regs[RegESP]) - F.FrameDrop;
    if (NewESP < codegen::StackLimit)
      return trapSet(TrapKind::StackOverflow, "stack overflow");
    Regs[RegESP] = static_cast<int32_t>(NewESP);
    Cycles += F.PrologueCost;
    if (CountsFlat)
      ++CountsFlat[F.Block0Flat];
    return true;
  };

  Regs[RegESP] = static_cast<int32_t>(codegen::StackTop);
  // _start pushes a fake return address before entering main.
  if (!push(0))
    goto done;
  if (!enter(Funcs[EntryFunc]))
    goto done;
  PC = Funcs[EntryFunc].Entry;

  // Count an instruction and check the budget *before* executing it,
  // exactly like the reference loop (the trapping fetch is counted but
  // neither executed nor charged). The cancel poll shares the check, at
  // the same counted-instruction positions as the reference engine, so a
  // pre-set flag traps bit-identically on either engine.
#define PGSD_STEP()                                                          \
  do {                                                                       \
    if (++Instrs > MaxSteps) {                                               \
      trapSet(TrapKind::StepBudget, "instruction budget exceeded");          \
      goto done;                                                             \
    }                                                                        \
    if ((Instrs & (CancelPollStride - 1)) == 0 && Cancel &&                  \
        Cancel->load(std::memory_order_relaxed)) {                           \
      trapSet(TrapKind::Cancelled, "cancelled by monitor");                  \
      goto done;                                                             \
    }                                                                        \
  } while (0)

#if PGSD_MEXEC_COMPUTED_GOTO
  // Order must match POp exactly; the static_assert pins the count.
  static const void *const Targets[] = {
      &&L_BlockHead,  &&L_MovRR,    &&L_MovRI,     &&L_Load,
      &&L_Store,      &&L_LoadFrame, &&L_StoreFrame, &&L_LeaFrame,
      &&L_AddRR,      &&L_SubRR,    &&L_AndRR,     &&L_OrRR,
      &&L_XorRR,      &&L_CmpRR,    &&L_AddRI,     &&L_SubRI,
      &&L_AndRI,      &&L_OrRI,     &&L_XorRI,     &&L_CmpRI,
      &&L_AdcSbbTrap, &&L_ImulRR,   &&L_Cdq,       &&L_Idiv,
      &&L_Neg,        &&L_Not,      &&L_ShlRI,     &&L_ShrRI,
      &&L_SarRI,      &&L_ShlRC,    &&L_ShrRC,     &&L_SarRC,
      &&L_TestRR,     &&L_Setcc,    &&L_Movzx8,    &&L_Push,
      &&L_PushI,      &&L_Pop,      &&L_AdjustSP,  &&L_CallFunc,
      &&L_PrintI32,   &&L_PrintChar, &&L_ReadI32,  &&L_InputLen,
      &&L_Sink,       &&L_Jmp,      &&L_JmpNext,   &&L_Jcc,
      &&L_Ret,        &&L_Nop,      &&L_ProfInc,   &&L_FellOff,
  };
  static_assert(sizeof(Targets) / sizeof(Targets[0]) == NumPOps,
                "dispatch table out of sync with POp");
#define PGSD_CASE(name) L_##name:
#define PGSD_NEXT()                                                          \
  do {                                                                       \
    In = Code0 + PC;                                                         \
    goto *Targets[static_cast<size_t>(In->Op)];                              \
  } while (0)
  PGSD_NEXT();
#else
#define PGSD_CASE(name) case POp::name:
#define PGSD_NEXT() goto dispatch
dispatch:
  In = Code0 + PC;
  switch (In->Op) {
#endif

  PGSD_CASE(BlockHead) {
    // Pseudo-op: not an instruction, so no step/cost; jump targets and
    // fallthrough edges land here so every block entry is counted.
    if (CountsFlat)
      ++CountsFlat[In->Ext];
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(MovRR) {
    PGSD_STEP();
    Regs[In->A] = Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(MovRI) {
    PGSD_STEP();
    Regs[In->A] = In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Load) {
    PGSD_STEP();
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[In->B] + In->Imm), V))
      goto done;
    Regs[In->A] = V;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Store) {
    PGSD_STEP();
    Cycles += In->Cost; // charged before the possibly-trapping write
    if (!write32(static_cast<uint32_t>(Regs[In->A] + In->Imm),
                 Regs[In->B]))
      goto done;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(LoadFrame) {
    PGSD_STEP();
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[RegEBP] + In->Imm), V))
      goto done;
    Regs[In->A] = V;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(StoreFrame) {
    PGSD_STEP();
    Cycles += In->Cost;
    if (!write32(static_cast<uint32_t>(Regs[RegEBP] + In->Imm),
                 Regs[In->B]))
      goto done;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(LeaFrame) {
    PGSD_STEP();
    Regs[In->A] = Regs[RegEBP] + In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AddRR) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) +
        static_cast<uint32_t>(Regs[In->B]));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(SubRR) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) -
        static_cast<uint32_t>(Regs[In->B]));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AndRR) {
    PGSD_STEP();
    Regs[In->A] &= Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(OrRR) {
    PGSD_STEP();
    Regs[In->A] |= Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(XorRR) {
    PGSD_STEP();
    Regs[In->A] ^= Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(CmpRR) {
    PGSD_STEP();
    Flags.IsTest = false;
    Flags.A = Regs[In->A];
    Flags.B = Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AddRI) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) +
        static_cast<uint32_t>(In->Imm));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(SubRI) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) -
        static_cast<uint32_t>(In->Imm));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AndRI) {
    PGSD_STEP();
    Regs[In->A] &= In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(OrRI) {
    PGSD_STEP();
    Regs[In->A] |= In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(XorRI) {
    PGSD_STEP();
    Regs[In->A] ^= In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(CmpRI) {
    PGSD_STEP();
    Flags.IsTest = false;
    Flags.A = Regs[In->A];
    Flags.B = In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AdcSbbTrap) {
    PGSD_STEP();
    Cycles += In->Cost;
    trapSet(TrapKind::BadInstruction, "ADC/SBB not produced by codegen");
    goto done;
  }
  PGSD_CASE(ImulRR) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) *
        static_cast<uint32_t>(Regs[In->B]));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Cdq) {
    PGSD_STEP();
    Regs[RegEDX] = Regs[RegEAX] < 0 ? -1 : 0;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Idiv) {
    PGSD_STEP();
    int64_t Dividend = (static_cast<int64_t>(Regs[RegEDX]) << 32) |
                       static_cast<uint32_t>(Regs[RegEAX]);
    int32_t Divisor = Regs[In->B];
    Cycles += In->Cost; // charged before the #DE checks
    if (Divisor == 0) {
      trapSet(TrapKind::DivideByZero, "integer division by zero (#DE)");
      goto done;
    }
    int64_t Quot = Dividend / Divisor;
    if (Quot > INT32_MAX || Quot < INT32_MIN) {
      trapSet(TrapKind::DivideByZero, "integer division overflow (#DE)");
      goto done;
    }
    Regs[RegEAX] = static_cast<int32_t>(Quot);
    Regs[RegEDX] = static_cast<int32_t>(Dividend % Divisor);
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Neg) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        0u - static_cast<uint32_t>(Regs[In->A]));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Not) {
    PGSD_STEP();
    Regs[In->A] = ~Regs[In->A];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ShlRI) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) << In->Ext);
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ShrRI) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) >> In->Ext);
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(SarRI) {
    PGSD_STEP();
    Regs[In->A] = Regs[In->A] >> In->Ext;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ShlRC) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A])
        << (static_cast<uint32_t>(Regs[RegECX]) & 31));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ShrRC) {
    PGSD_STEP();
    Regs[In->A] = static_cast<int32_t>(
        static_cast<uint32_t>(Regs[In->A]) >>
        (static_cast<uint32_t>(Regs[RegECX]) & 31));
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(SarRC) {
    PGSD_STEP();
    Regs[In->A] =
        Regs[In->A] >> (static_cast<uint32_t>(Regs[RegECX]) & 31);
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(TestRR) {
    PGSD_STEP();
    Flags.IsTest = true;
    Flags.A = Regs[In->A];
    Flags.B = Regs[In->B];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Setcc) {
    PGSD_STEP();
    Regs[In->A] = (Regs[In->A] & ~0xFF) |
                  (Flags.eval(static_cast<x86::CondCode>(In->B)) ? 1 : 0);
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Movzx8) {
    PGSD_STEP();
    Regs[In->A] = Regs[In->B] & 0xFF;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Push) {
    PGSD_STEP();
    Cycles += In->Cost;
    if (!push(Regs[In->A]))
      goto done;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(PushI) {
    PGSD_STEP();
    Cycles += In->Cost;
    if (!push(In->Imm))
      goto done;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Pop) {
    PGSD_STEP();
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[RegESP]), V))
      goto done;
    Regs[In->A] = V;
    Regs[RegESP] += 4;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(AdjustSP) {
    PGSD_STEP();
    Regs[RegESP] += In->Imm;
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(CallFunc) {
    PGSD_STEP();
    Cycles += In->Cost;
    if (Frames.size() >= MaxDepth) {
      trapSet(TrapKind::CallDepth, "call depth exceeded");
      goto done;
    }
    PFrame Fr;
    Fr.SavedRegs[0] = Regs[RegEBX];
    Fr.SavedRegs[1] = Regs[RegESI];
    Fr.SavedRegs[2] = Regs[RegEDI];
    Fr.SavedRegs[3] = Regs[RegEBP];
    if (!push(0 /* return address */))
      goto done;
    Fr.SavedESP = static_cast<uint32_t>(Regs[RegESP]) + 4;
    Fr.ReturnPC = PC + 1;
    Frames.push_back(Fr);
    const PFunc &F = Funcs[In->Ext];
    if (!enter(F))
      goto done;
    PC = F.Entry;
    PGSD_NEXT();
  }
  PGSD_CASE(PrintI32) {
    PGSD_STEP();
    Cycles += In->Cost; // Call + Intrinsic, before the argument read
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[RegESP]), V))
      goto done;
    fold(static_cast<uint32_t>(V));
    if (CollectOutput && Result.Output.size() < OutputCapBytes) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%d\n", V);
      Result.Output += Buf;
    }
    Regs[RegEAX] = 0;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(PrintChar) {
    PGSD_STEP();
    Cycles += In->Cost;
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[RegESP]), V))
      goto done;
    fold(0x10000u + static_cast<uint8_t>(V));
    if (CollectOutput && Result.Output.size() < OutputCapBytes)
      Result.Output += static_cast<char>(V);
    Regs[RegEAX] = 0;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ReadI32) {
    PGSD_STEP();
    Cycles += In->Cost;
    Regs[RegEAX] = InputPos < InputSize ? InputData[InputPos++] : 0;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(InputLen) {
    PGSD_STEP();
    Cycles += In->Cost;
    Regs[RegEAX] = static_cast<int32_t>(InputSize - InputPos);
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Sink) {
    PGSD_STEP();
    Cycles += In->Cost;
    int32_t V;
    if (!read32(static_cast<uint32_t>(Regs[RegESP]), V))
      goto done;
    fold(static_cast<uint32_t>(V));
    Regs[RegEAX] = 0;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(Jmp) {
    PGSD_STEP();
    Cycles += In->Cost;
    PC = In->Ext; // lands on the target's BlockHead
    PGSD_NEXT();
  }
  PGSD_CASE(JmpNext) {
    PGSD_STEP();
    ++PC; // free jump to the lexically next block's BlockHead
    PGSD_NEXT();
  }
  PGSD_CASE(Jcc) {
    PGSD_STEP();
    if (Flags.eval(static_cast<x86::CondCode>(In->A))) {
      Cycles += In->Cost;
      PC = In->Ext;
    } else {
      Cycles += static_cast<uint32_t>(In->Imm);
      ++PC;
    }
    PGSD_NEXT();
  }
  PGSD_CASE(Ret) {
    PGSD_STEP();
    Cycles += In->Cost; // epilogue: pops + leave + ret, pre-folded
    if (Frames.empty()) {
      Result.ExitCode = Regs[RegEAX];
      goto done;
    }
    const PFrame &Fr = Frames.back();
    Regs[RegEBX] = Fr.SavedRegs[0];
    Regs[RegESI] = Fr.SavedRegs[1];
    Regs[RegEDI] = Fr.SavedRegs[2];
    Regs[RegEBP] = Fr.SavedRegs[3];
    Regs[RegESP] = static_cast<int32_t>(Fr.SavedESP);
    PC = Fr.ReturnPC;
    Frames.pop_back();
    PGSD_NEXT();
  }
  PGSD_CASE(Nop) {
    PGSD_STEP();
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(ProfInc) {
    PGSD_STEP();
    ++Counters[In->Ext];
    Cycles += In->Cost;
    ++PC;
    PGSD_NEXT();
  }
  PGSD_CASE(FellOff) {
    // Unreachable on verified modules (every function's last block ends
    // in Jmp/Ret); trap instead of running off the stream.
    PGSD_STEP();
    trapSet(TrapKind::BadInstruction, "fell off function end");
    goto done;
  }

#if !PGSD_MEXEC_COMPUTED_GOTO
  }
#endif

#undef PGSD_CASE
#undef PGSD_NEXT
#undef PGSD_STEP

done:
  Result.Cycles10 = Cycles;
  Result.Instructions = Instrs;
  Result.Checksum = Checksum;
  Unflatten();
  return Result;
}

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

RunResult mexec::runWith(Engine E, const MModule &M,
                         const RunOptions &Opts) {
  if (E == Engine::Reference)
    return run(M, Opts);
  // Compiling against Opts.Costs means the fast path is always taken.
  Precompiled P(M, Opts.Costs);
  return P.run(Opts);
}
