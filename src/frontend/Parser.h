//===-- frontend/Parser.h - MiniC parser -------------------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser turning MiniC source into the AST of Ast.h
/// (the Parser arrow of the paper's Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_FRONTEND_PARSER_H
#define PGSD_FRONTEND_PARSER_H

#include "frontend/Ast.h"

#include <memory>
#include <string_view>
#include <vector>

namespace pgsd {
namespace frontend {

/// Parses \p Source.
///
/// Syntax errors are appended to \p Diags; the parser recovers at
/// statement boundaries, so a non-empty Program may be returned alongside
/// diagnostics. Callers must treat any diagnostics as failure.
Program parse(std::string_view Source, std::vector<Diag> &Diags);

} // namespace frontend
} // namespace pgsd

#endif // PGSD_FRONTEND_PARSER_H
