//===-- frontend/Parser.cpp - MiniC parser ---------------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cstdio>

using namespace pgsd;
using namespace pgsd::frontend;

std::string frontend::formatDiags(const std::vector<Diag> &Diags) {
  std::string Out;
  for (const Diag &D : Diags) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%u:%u: ", D.Line, D.Col);
    Out += Buf;
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}

namespace {

/// Binary operator precedence; higher binds tighter. Returns -1 for
/// tokens that are not binary operators.
int binaryPrec(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diag> &DiagSink)
      : Toks(std::move(Tokens)), Diags(DiagSink) {}

  Program parseProgram();

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t P = Pos + Ahead;
    return P < Toks.size() ? Toks[P] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token take() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  void error(const Token &T, std::string Msg) {
    // Cap the flood from cascades; recovery keeps the count low anyway.
    if (Diags.size() < 50)
      Diags.push_back({T.Line, T.Col, std::move(Msg)});
  }

  bool expect(TokKind K, const char *What) {
    if (at(K)) {
      take();
      return true;
    }
    error(cur(), std::string("expected ") + What);
    return false;
  }

  /// Skips ahead to a likely statement boundary after an error.
  void sync() {
    while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
      take();
    if (at(TokKind::Semi))
      take();
  }

  std::unique_ptr<Expr> parseExpr() { return parseBinary(0); }
  std::unique_ptr<Expr> parseBinary(int MinPrec);
  std::unique_ptr<Expr> parseUnary();
  std::unique_ptr<Expr> parsePrimary();

  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Stmt> parseSimpleStmt(); ///< For-loop init/step clause.
  std::vector<std::unique_ptr<Stmt>> parseBlock();

  void parseGlobal(Program &P);
  void parseFunc(Program &P);

  std::vector<Token> Toks;
  std::vector<Diag> &Diags;
  size_t Pos = 0;
};

std::unique_ptr<Expr> Parser::parsePrimary() {
  Token T = cur();
  auto E = std::make_unique<Expr>();
  E->Line = T.Line;
  E->Col = T.Col;

  if (at(TokKind::IntLit)) {
    take();
    E->K = Expr::Kind::IntLit;
    E->IntValue = T.IntValue;
    return E;
  }
  if (at(TokKind::LParen)) {
    take();
    auto Inner = parseExpr();
    expect(TokKind::RParen, "')'");
    return Inner;
  }
  if (at(TokKind::Ident)) {
    take();
    E->Name = std::string(T.Text);
    if (at(TokKind::LParen)) {
      take();
      E->K = Expr::Kind::Call;
      if (!at(TokKind::RParen)) {
        E->Kids.push_back(parseExpr());
        while (at(TokKind::Comma)) {
          take();
          E->Kids.push_back(parseExpr());
        }
      }
      expect(TokKind::RParen, "')'");
      return E;
    }
    if (at(TokKind::LBracket)) {
      take();
      E->K = Expr::Kind::Index;
      E->Kids.push_back(parseExpr());
      expect(TokKind::RBracket, "']'");
      return E;
    }
    E->K = Expr::Kind::VarRef;
    return E;
  }

  error(T, "expected expression");
  take();
  E->K = Expr::Kind::IntLit;
  E->IntValue = 0;
  return E;
}

std::unique_ptr<Expr> Parser::parseUnary() {
  if (at(TokKind::Minus) || at(TokKind::Bang) || at(TokKind::Tilde)) {
    Token T = take();
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Unary;
    E->Line = T.Line;
    E->Col = T.Col;
    E->Op = T.Kind;
    E->Kids.push_back(parseUnary());
    return E;
  }
  return parsePrimary();
}

std::unique_ptr<Expr> Parser::parseBinary(int MinPrec) {
  auto LHS = parseUnary();
  while (true) {
    int Prec = binaryPrec(cur().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return LHS;
    Token T = take();
    auto RHS = parseBinary(Prec + 1); // all binary operators left-associate
    auto E = std::make_unique<Expr>();
    E->Line = T.Line;
    E->Col = T.Col;
    E->Op = T.Kind;
    if (T.Kind == TokKind::AmpAmp)
      E->K = Expr::Kind::And;
    else if (T.Kind == TokKind::PipePipe)
      E->K = Expr::Kind::Or;
    else
      E->K = Expr::Kind::Binary;
    E->Kids.push_back(std::move(LHS));
    E->Kids.push_back(std::move(RHS));
    LHS = std::move(E);
  }
}

std::unique_ptr<Stmt> Parser::parseSimpleStmt() {
  Token T = cur();
  auto S = std::make_unique<Stmt>();
  S->Line = T.Line;
  S->Col = T.Col;

  if (at(TokKind::KwVar)) {
    take();
    S->K = Stmt::Kind::VarDecl;
    Token Name = cur();
    if (!expect(TokKind::Ident, "variable name"))
      return S;
    S->Name = std::string(Name.Text);
    if (at(TokKind::Assign)) {
      take();
      S->E0 = parseExpr();
    }
    return S;
  }

  if (at(TokKind::Ident)) {
    Token Name = take();
    S->Name = std::string(Name.Text);
    if (at(TokKind::LBracket)) {
      take();
      S->K = Stmt::Kind::IndexAssign;
      S->E0 = parseExpr();
      expect(TokKind::RBracket, "']'");
      expect(TokKind::Assign, "'='");
      S->E1 = parseExpr();
      return S;
    }
    if (at(TokKind::Assign)) {
      take();
      S->K = Stmt::Kind::Assign;
      S->E0 = parseExpr();
      return S;
    }
    if (at(TokKind::LParen)) {
      // Call statement: rewind is awkward, so build the call directly.
      take();
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Call;
      E->Line = Name.Line;
      E->Col = Name.Col;
      E->Name = S->Name;
      if (!at(TokKind::RParen)) {
        E->Kids.push_back(parseExpr());
        while (at(TokKind::Comma)) {
          take();
          E->Kids.push_back(parseExpr());
        }
      }
      expect(TokKind::RParen, "')'");
      S->K = Stmt::Kind::ExprStmt;
      S->Name.clear();
      S->E0 = std::move(E);
      return S;
    }
    error(cur(), "expected '=', '[' or '(' after identifier");
    return S;
  }

  error(T, "expected statement");
  take();
  return S;
}

std::unique_ptr<Stmt> Parser::parseStmt() {
  Token T = cur();
  auto S = std::make_unique<Stmt>();
  S->Line = T.Line;
  S->Col = T.Col;

  switch (T.Kind) {
  case TokKind::KwArray: {
    take();
    S->K = Stmt::Kind::ArrayDecl;
    Token Name = cur();
    if (expect(TokKind::Ident, "array name"))
      S->Name = std::string(Name.Text);
    expect(TokKind::LBracket, "'['");
    Token Size = cur();
    if (expect(TokKind::IntLit, "array size")) {
      if (Size.IntValue <= 0)
        error(Size, "array size must be positive");
      S->ArraySize = Size.IntValue;
    }
    expect(TokKind::RBracket, "']'");
    expect(TokKind::Semi, "';'");
    return S;
  }
  case TokKind::KwIf: {
    take();
    S->K = Stmt::Kind::If;
    expect(TokKind::LParen, "'('");
    S->E0 = parseExpr();
    expect(TokKind::RParen, "')'");
    S->Body = parseBlock();
    if (at(TokKind::KwElse)) {
      take();
      if (at(TokKind::KwIf)) {
        S->ElseBody.push_back(parseStmt());
      } else {
        S->ElseBody = parseBlock();
      }
    }
    return S;
  }
  case TokKind::KwWhile: {
    take();
    S->K = Stmt::Kind::While;
    expect(TokKind::LParen, "'('");
    S->E0 = parseExpr();
    expect(TokKind::RParen, "')'");
    S->Body = parseBlock();
    return S;
  }
  case TokKind::KwFor: {
    take();
    S->K = Stmt::Kind::For;
    expect(TokKind::LParen, "'('");
    if (!at(TokKind::Semi))
      S->Init = parseSimpleStmt();
    expect(TokKind::Semi, "';'");
    if (!at(TokKind::Semi))
      S->E0 = parseExpr();
    expect(TokKind::Semi, "';'");
    if (!at(TokKind::RParen))
      S->Step = parseSimpleStmt();
    expect(TokKind::RParen, "')'");
    S->Body = parseBlock();
    return S;
  }
  case TokKind::KwReturn: {
    take();
    S->K = Stmt::Kind::Return;
    if (!at(TokKind::Semi))
      S->E0 = parseExpr();
    expect(TokKind::Semi, "';'");
    return S;
  }
  case TokKind::KwBreak:
    take();
    S->K = Stmt::Kind::Break;
    expect(TokKind::Semi, "';'");
    return S;
  case TokKind::KwContinue:
    take();
    S->K = Stmt::Kind::Continue;
    expect(TokKind::Semi, "';'");
    return S;
  default: {
    auto Simple = parseSimpleStmt();
    if (!expect(TokKind::Semi, "';'"))
      sync();
    return Simple;
  }
  }
}

std::vector<std::unique_ptr<Stmt>> Parser::parseBlock() {
  std::vector<std::unique_ptr<Stmt>> Body;
  if (!expect(TokKind::LBrace, "'{'")) {
    sync();
    return Body;
  }
  while (!at(TokKind::RBrace) && !at(TokKind::Eof))
    Body.push_back(parseStmt());
  expect(TokKind::RBrace, "'}'");
  return Body;
}

void Parser::parseGlobal(Program &P) {
  take(); // 'global'
  GlobalDecl G;
  Token Name = cur();
  G.Line = Name.Line;
  if (expect(TokKind::Ident, "global name"))
    G.Name = std::string(Name.Text);
  if (at(TokKind::LBracket)) {
    take();
    Token Size = cur();
    if (expect(TokKind::IntLit, "array size")) {
      if (Size.IntValue <= 0 || Size.IntValue > (1 << 24)) {
        error(Size, "global array size out of range");
        G.NumWords = 1;
      } else {
        G.NumWords = static_cast<uint32_t>(Size.IntValue);
      }
    }
    expect(TokKind::RBracket, "']'");
  }
  if (at(TokKind::Assign)) {
    take();
    expect(TokKind::LBrace, "'{'");
    if (!at(TokKind::RBrace)) {
      while (true) {
        bool Negate = false;
        if (at(TokKind::Minus)) {
          take();
          Negate = true;
        }
        Token V = cur();
        if (!expect(TokKind::IntLit, "initializer value"))
          break;
        int32_t Word = static_cast<int32_t>(V.IntValue);
        G.Init.push_back(Negate ? -Word : Word);
        if (!at(TokKind::Comma))
          break;
        take();
      }
    }
    expect(TokKind::RBrace, "'}'");
    if (G.Init.size() > G.NumWords)
      error(Name, "more initializers than elements in global '" + G.Name +
                      "'");
  }
  expect(TokKind::Semi, "';'");
  P.Globals.push_back(std::move(G));
}

void Parser::parseFunc(Program &P) {
  take(); // 'fn'
  FuncDecl F;
  Token Name = cur();
  F.Line = Name.Line;
  if (expect(TokKind::Ident, "function name"))
    F.Name = std::string(Name.Text);
  expect(TokKind::LParen, "'('");
  if (!at(TokKind::RParen)) {
    while (true) {
      Token PTok = cur();
      if (!expect(TokKind::Ident, "parameter name"))
        break;
      F.Params.push_back(std::string(PTok.Text));
      if (!at(TokKind::Comma))
        break;
      take();
    }
  }
  expect(TokKind::RParen, "')'");
  F.Body = parseBlock();
  P.Funcs.push_back(std::move(F));
}

Program Parser::parseProgram() {
  Program P;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::KwGlobal)) {
      parseGlobal(P);
    } else if (at(TokKind::KwFn)) {
      parseFunc(P);
    } else {
      error(cur(), "expected 'global' or 'fn' at top level");
      sync();
      if (at(TokKind::RBrace))
        take();
    }
  }
  return P;
}

} // namespace

Program frontend::parse(std::string_view Source, std::vector<Diag> &Diags) {
  Parser P(lex(Source), Diags);
  return P.parseProgram();
}
