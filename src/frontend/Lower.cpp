//===-- frontend/Lower.cpp - MiniC AST to IR lowering ----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"

#include "frontend/Parser.h"

#include <cassert>
#include <map>

using namespace pgsd;
using namespace pgsd::frontend;
using ir::BlockId;
using ir::Opcode;
using ir::ValueId;

namespace {

/// What a name in scope refers to.
struct Symbol {
  enum class Kind : uint8_t {
    Scalar,     ///< Local scalar or parameter: a virtual value.
    LocalArray, ///< Frame object index.
    Global,     ///< Module global index (scalar when NumWords == 1).
  };
  Kind K = Kind::Scalar;
  uint32_t Index = 0; ///< ValueId / frame object index / global index.
  bool IsScalarGlobal = false;
};

/// Signature of a callable: module functions and runtime builtins.
struct CalleeInfo {
  ir::Callee Target;
  uint32_t Arity = 0;
  bool ReturnsValue = false;
};

class Lowerer {
public:
  Lowerer(const Program &Prog, const std::string &ModuleName,
          std::vector<Diag> &DiagSink)
      : P(Prog), Diags(DiagSink) {
    M.Name = ModuleName;
  }

  ir::Module run();

private:
  void error(uint32_t Line, uint32_t Col, std::string Msg) {
    if (Diags.size() < 50)
      Diags.push_back({Line, Col, std::move(Msg)});
  }

  // --- IR emission helpers -------------------------------------------
  ir::BasicBlock &bb() { return F->Blocks[CurBB]; }

  BlockId newBlock(const char *Name) {
    F->Blocks.emplace_back();
    F->Blocks.back().Name = Name;
    return static_cast<BlockId>(F->Blocks.size() - 1);
  }

  /// Starts emitting into \p B.
  void setBlock(BlockId B) {
    CurBB = B;
    Terminated = false;
  }

  ir::Instr &emit(Opcode Op) {
    // Code after return/break/continue is unreachable; keep the IR well
    // formed by diverting it into a fresh dead block (removed later by
    // the CFG-simplification pass).
    if (Terminated)
      setBlock(newBlock("dead"));
    bb().Instrs.emplace_back();
    ir::Instr &I = bb().Instrs.back();
    I.Op = Op;
    if (ir::isTerminator(Op))
      Terminated = true;
    return I;
  }

  ValueId emitConst(int32_t V) {
    ir::Instr &I = emit(Opcode::Const);
    I.Dst = F->newValue();
    I.Imm = V;
    return I.Dst;
  }

  ValueId emitBinary(Opcode Op, ValueId A, ValueId B) {
    ir::Instr &I = emit(Op);
    I.Dst = F->newValue();
    I.A = A;
    I.B = B;
    return I.Dst;
  }

  void emitCopy(ValueId Dst, ValueId Src) {
    ir::Instr &I = emit(Opcode::Copy);
    I.Dst = Dst;
    I.A = Src;
  }

  void emitBr(BlockId Target) {
    ir::Instr &I = emit(Opcode::Br);
    I.Succ0 = Target;
  }

  void emitCondBr(ValueId Cond, BlockId True, BlockId False) {
    ir::Instr &I = emit(Opcode::CondBr);
    I.A = Cond;
    I.Succ0 = True;
    I.Succ1 = False;
  }

  // --- scopes ----------------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  const Symbol *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    auto G = GlobalSyms.find(Name);
    return G != GlobalSyms.end() ? &G->second : nullptr;
  }

  bool declare(const std::string &Name, Symbol Sym, uint32_t Line,
               uint32_t Col) {
    auto [It, Inserted] = Scopes.back().emplace(Name, Sym);
    (void)It;
    if (!Inserted)
      error(Line, Col, "redefinition of '" + Name + "'");
    return Inserted;
  }

  // --- lowering ---------------------------------------------------------
  /// Returns the address value of the indexable named \p Name, or NoValue
  /// after reporting an error.
  ValueId lowerBaseAddress(const Symbol &Sym);
  ValueId lowerExpr(const Expr &E);
  ValueId lowerCall(const Expr &E, bool ResultUsed);
  void lowerStmt(const Stmt &S);
  void lowerBody(const std::vector<std::unique_ptr<Stmt>> &Body);
  void lowerFunction(const FuncDecl &FD, ir::Function &Fn);

  const Program &P;
  std::vector<Diag> &Diags;
  ir::Module M;

  std::map<std::string, Symbol> GlobalSyms;
  std::map<std::string, CalleeInfo> Callables;

  ir::Function *F = nullptr;
  BlockId CurBB = 0;
  bool Terminated = false;
  std::vector<std::map<std::string, Symbol>> Scopes;
  std::vector<BlockId> BreakTargets;
  std::vector<BlockId> ContinueTargets;
};

ValueId Lowerer::lowerBaseAddress(const Symbol &Sym) {
  if (Sym.K == Symbol::Kind::LocalArray) {
    ir::Instr &I = emit(Opcode::FrameAddr);
    I.Dst = F->newValue();
    I.Imm = Sym.Index;
    return I.Dst;
  }
  assert(Sym.K == Symbol::Kind::Global && "scalar has no base address");
  ir::Instr &I = emit(Opcode::GlobalAddr);
  I.Dst = F->newValue();
  I.Imm = Sym.Index;
  return I.Dst;
}

ValueId Lowerer::lowerCall(const Expr &E, bool ResultUsed) {
  auto It = Callables.find(E.Name);
  if (It == Callables.end()) {
    error(E.Line, E.Col, "call to unknown function '" + E.Name + "'");
    return emitConst(0);
  }
  const CalleeInfo &Info = It->second;
  if (Info.Arity != E.Kids.size()) {
    error(E.Line, E.Col, "wrong number of arguments to '" + E.Name + "'");
    return emitConst(0);
  }
  if (ResultUsed && !Info.ReturnsValue) {
    error(E.Line, E.Col, "'" + E.Name + "' does not return a value");
    return emitConst(0);
  }

  std::vector<ValueId> Args;
  Args.reserve(E.Kids.size());
  for (const auto &Kid : E.Kids)
    Args.push_back(lowerExpr(*Kid));

  ir::Instr &I = emit(Opcode::Call);
  I.Target = Info.Target;
  I.Args = std::move(Args);
  I.Dst = Info.ReturnsValue ? F->newValue() : ir::NoValue;
  return I.Dst != ir::NoValue ? I.Dst : emitConst(0);
}

ValueId Lowerer::lowerExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return emitConst(static_cast<int32_t>(E.IntValue));

  case Expr::Kind::VarRef: {
    const Symbol *Sym = lookup(E.Name);
    if (!Sym) {
      error(E.Line, E.Col, "use of undeclared identifier '" + E.Name + "'");
      return emitConst(0);
    }
    if (Sym->K == Symbol::Kind::Scalar)
      return Sym->Index;
    if (Sym->K == Symbol::Kind::Global && Sym->IsScalarGlobal) {
      ValueId Addr = lowerBaseAddress(*Sym);
      ir::Instr &I = emit(Opcode::Load);
      I.Dst = F->newValue();
      I.A = Addr;
      return I.Dst;
    }
    // Arrays decay to their address, enabling pointer-style parameters.
    return lowerBaseAddress(*Sym);
  }

  case Expr::Kind::Index: {
    const Symbol *Sym = lookup(E.Name);
    if (!Sym) {
      error(E.Line, E.Col, "use of undeclared identifier '" + E.Name + "'");
      return emitConst(0);
    }
    ValueId Base = Sym->K == Symbol::Kind::Scalar ? Sym->Index
                                                  : lowerBaseAddress(*Sym);
    ValueId Index = lowerExpr(*E.Kids[0]);
    ValueId Two = emitConst(2);
    ValueId Scaled = emitBinary(Opcode::Shl, Index, Two);
    ValueId Addr = emitBinary(Opcode::Add, Base, Scaled);
    ir::Instr &I = emit(Opcode::Load);
    I.Dst = F->newValue();
    I.A = Addr;
    return I.Dst;
  }

  case Expr::Kind::Call:
    return lowerCall(E, /*ResultUsed=*/true);

  case Expr::Kind::Unary: {
    ValueId A = lowerExpr(*E.Kids[0]);
    switch (E.Op) {
    case TokKind::Minus: {
      ir::Instr &I = emit(Opcode::Neg);
      I.Dst = F->newValue();
      I.A = A;
      return I.Dst;
    }
    case TokKind::Tilde: {
      ir::Instr &I = emit(Opcode::Not);
      I.Dst = F->newValue();
      I.A = A;
      return I.Dst;
    }
    case TokKind::Bang: {
      ValueId Zero = emitConst(0);
      return emitBinary(Opcode::CmpEq, A, Zero);
    }
    default:
      assert(false && "unexpected unary operator");
      return A;
    }
  }

  case Expr::Kind::Binary: {
    ValueId A = lowerExpr(*E.Kids[0]);
    ValueId B = lowerExpr(*E.Kids[1]);
    Opcode Op;
    switch (E.Op) {
    case TokKind::Plus:
      Op = Opcode::Add;
      break;
    case TokKind::Minus:
      Op = Opcode::Sub;
      break;
    case TokKind::Star:
      Op = Opcode::Mul;
      break;
    case TokKind::Slash:
      Op = Opcode::Div;
      break;
    case TokKind::Percent:
      Op = Opcode::Rem;
      break;
    case TokKind::Amp:
      Op = Opcode::And;
      break;
    case TokKind::Pipe:
      Op = Opcode::Or;
      break;
    case TokKind::Caret:
      Op = Opcode::Xor;
      break;
    case TokKind::Shl:
      Op = Opcode::Shl;
      break;
    case TokKind::Shr:
      Op = Opcode::AShr;
      break;
    case TokKind::EqEq:
      Op = Opcode::CmpEq;
      break;
    case TokKind::NotEq:
      Op = Opcode::CmpNe;
      break;
    case TokKind::Lt:
      Op = Opcode::CmpLt;
      break;
    case TokKind::Le:
      Op = Opcode::CmpLe;
      break;
    case TokKind::Gt:
      Op = Opcode::CmpGt;
      break;
    case TokKind::Ge:
      Op = Opcode::CmpGe;
      break;
    default:
      assert(false && "unexpected binary operator");
      Op = Opcode::Add;
      break;
    }
    return emitBinary(Op, A, B);
  }

  case Expr::Kind::And:
  case Expr::Kind::Or: {
    // Short-circuit evaluation producing 0/1.
    bool IsAnd = E.K == Expr::Kind::And;
    ValueId Result = F->newValue();
    BlockId RhsBB = newBlock(IsAnd ? "and.rhs" : "or.rhs");
    BlockId ShortBB = newBlock(IsAnd ? "and.false" : "or.true");
    BlockId EndBB = newBlock(IsAnd ? "and.end" : "or.end");

    ValueId Lhs = lowerExpr(*E.Kids[0]);
    if (IsAnd)
      emitCondBr(Lhs, RhsBB, ShortBB);
    else
      emitCondBr(Lhs, ShortBB, RhsBB);

    setBlock(RhsBB);
    ValueId Rhs = lowerExpr(*E.Kids[1]);
    ValueId Zero = emitConst(0);
    ValueId RhsBool = emitBinary(Opcode::CmpNe, Rhs, Zero);
    emitCopy(Result, RhsBool);
    emitBr(EndBB);

    setBlock(ShortBB);
    ValueId ShortVal = emitConst(IsAnd ? 0 : 1);
    emitCopy(Result, ShortVal);
    emitBr(EndBB);

    setBlock(EndBB);
    return Result;
  }
  }
  assert(false && "unhandled expression kind");
  return emitConst(0);
}

void Lowerer::lowerStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::VarDecl: {
    ValueId Init = S.E0 ? lowerExpr(*S.E0) : emitConst(0);
    ValueId Var = F->newValue();
    emitCopy(Var, Init);
    Symbol Sym;
    Sym.K = Symbol::Kind::Scalar;
    Sym.Index = Var;
    declare(S.Name, Sym, S.Line, S.Col);
    return;
  }

  case Stmt::Kind::ArrayDecl: {
    Symbol Sym;
    Sym.K = Symbol::Kind::LocalArray;
    Sym.Index = static_cast<uint32_t>(F->FrameObjects.size());
    F->FrameObjects.push_back(
        {static_cast<uint32_t>(S.ArraySize) * 4});
    declare(S.Name, Sym, S.Line, S.Col);
    return;
  }

  case Stmt::Kind::Assign: {
    const Symbol *Sym = lookup(S.Name);
    if (!Sym) {
      error(S.Line, S.Col, "use of undeclared identifier '" + S.Name + "'");
      return;
    }
    if (Sym->K == Symbol::Kind::Scalar) {
      ValueId V = lowerExpr(*S.E0);
      emitCopy(Sym->Index, V);
      return;
    }
    if (Sym->K == Symbol::Kind::Global && Sym->IsScalarGlobal) {
      ValueId V = lowerExpr(*S.E0);
      ValueId Addr = lowerBaseAddress(*Sym);
      ir::Instr &I = emit(Opcode::Store);
      I.A = Addr;
      I.B = V;
      return;
    }
    error(S.Line, S.Col, "cannot assign to array '" + S.Name + "'");
    return;
  }

  case Stmt::Kind::IndexAssign: {
    const Symbol *Sym = lookup(S.Name);
    if (!Sym) {
      error(S.Line, S.Col, "use of undeclared identifier '" + S.Name + "'");
      return;
    }
    ValueId Base = Sym->K == Symbol::Kind::Scalar ? Sym->Index
                                                  : lowerBaseAddress(*Sym);
    ValueId Index = lowerExpr(*S.E0);
    ValueId Value = lowerExpr(*S.E1);
    ValueId Two = emitConst(2);
    ValueId Scaled = emitBinary(Opcode::Shl, Index, Two);
    ValueId Addr = emitBinary(Opcode::Add, Base, Scaled);
    ir::Instr &I = emit(Opcode::Store);
    I.A = Addr;
    I.B = Value;
    return;
  }

  case Stmt::Kind::If: {
    BlockId ThenBB = newBlock("if.then");
    BlockId EndBB = newBlock("if.end");
    BlockId ElseBB = S.ElseBody.empty() ? EndBB : newBlock("if.else");
    ValueId Cond = lowerExpr(*S.E0);
    emitCondBr(Cond, ThenBB, ElseBB);

    setBlock(ThenBB);
    lowerBody(S.Body);
    if (!Terminated)
      emitBr(EndBB);

    if (!S.ElseBody.empty()) {
      setBlock(ElseBB);
      lowerBody(S.ElseBody);
      if (!Terminated)
        emitBr(EndBB);
    }
    setBlock(EndBB);
    return;
  }

  case Stmt::Kind::While: {
    BlockId CondBB = newBlock("while.cond");
    BlockId BodyBB = newBlock("while.body");
    BlockId EndBB = newBlock("while.end");
    emitBr(CondBB);

    setBlock(CondBB);
    ValueId Cond = lowerExpr(*S.E0);
    emitCondBr(Cond, BodyBB, EndBB);

    setBlock(BodyBB);
    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(CondBB);
    lowerBody(S.Body);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (!Terminated)
      emitBr(CondBB);

    setBlock(EndBB);
    return;
  }

  case Stmt::Kind::For: {
    pushScope(); // the init clause may declare a variable
    if (S.Init)
      lowerStmt(*S.Init);
    BlockId CondBB = newBlock("for.cond");
    BlockId BodyBB = newBlock("for.body");
    BlockId StepBB = newBlock("for.step");
    BlockId EndBB = newBlock("for.end");
    emitBr(CondBB);

    setBlock(CondBB);
    if (S.E0) {
      ValueId Cond = lowerExpr(*S.E0);
      emitCondBr(Cond, BodyBB, EndBB);
    } else {
      emitBr(BodyBB);
    }

    setBlock(BodyBB);
    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(StepBB);
    lowerBody(S.Body);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (!Terminated)
      emitBr(StepBB);

    setBlock(StepBB);
    if (S.Step)
      lowerStmt(*S.Step);
    emitBr(CondBB);

    setBlock(EndBB);
    popScope();
    return;
  }

  case Stmt::Kind::Return: {
    ValueId V = S.E0 ? lowerExpr(*S.E0) : emitConst(0);
    ir::Instr &I = emit(Opcode::Ret);
    I.A = V;
    return;
  }

  case Stmt::Kind::Break:
    if (BreakTargets.empty()) {
      error(S.Line, S.Col, "'break' outside of a loop");
      return;
    }
    emitBr(BreakTargets.back());
    return;

  case Stmt::Kind::Continue:
    if (ContinueTargets.empty()) {
      error(S.Line, S.Col, "'continue' outside of a loop");
      return;
    }
    emitBr(ContinueTargets.back());
    return;

  case Stmt::Kind::ExprStmt:
    if (S.E0->K == Expr::Kind::Call)
      lowerCall(*S.E0, /*ResultUsed=*/false);
    else
      lowerExpr(*S.E0); // evaluated for effect; harmless
    return;
  }
}

void Lowerer::lowerBody(const std::vector<std::unique_ptr<Stmt>> &Body) {
  pushScope();
  for (const auto &S : Body)
    lowerStmt(*S);
  popScope();
}

void Lowerer::lowerFunction(const FuncDecl &FD, ir::Function &Fn) {
  F = &Fn;
  Scopes.clear();
  BreakTargets.clear();
  ContinueTargets.clear();

  Fn.Blocks.emplace_back();
  Fn.Blocks.back().Name = "entry";
  setBlock(0);

  pushScope();
  for (uint32_t I = 0, E = static_cast<uint32_t>(FD.Params.size()); I != E;
       ++I) {
    Symbol Sym;
    Sym.K = Symbol::Kind::Scalar;
    Sym.Index = I;
    declare(FD.Params[I], Sym, FD.Line, 1);
  }
  lowerBody(FD.Body);
  popScope();

  // Fall-off-the-end returns 0, and any dead blocks created after
  // terminators also need a terminator for the verifier.
  for (BlockId B = 0, E = static_cast<BlockId>(Fn.Blocks.size()); B != E;
       ++B) {
    ir::BasicBlock &BB = Fn.Blocks[B];
    if (!BB.Instrs.empty() && ir::isTerminator(BB.Instrs.back().Op))
      continue;
    setBlock(B);
    Terminated = false;
    ValueId Zero = emitConst(0);
    ir::Instr &I = emit(Opcode::Ret);
    I.A = Zero;
  }
}

ir::Module Lowerer::run() {
  // Register globals.
  for (const GlobalDecl &G : P.Globals) {
    if (GlobalSyms.count(G.Name)) {
      error(G.Line, 1, "redefinition of global '" + G.Name + "'");
      continue;
    }
    Symbol Sym;
    Sym.K = Symbol::Kind::Global;
    Sym.Index = static_cast<uint32_t>(M.Globals.size());
    Sym.IsScalarGlobal = G.NumWords == 1;
    GlobalSyms.emplace(G.Name, Sym);
    ir::Global IRG;
    IRG.Name = G.Name;
    IRG.SizeBytes = G.NumWords * 4;
    IRG.Init = G.Init;
    M.Globals.push_back(std::move(IRG));
  }

  // Register builtins, then function signatures (two-pass so forward
  // calls work).
  auto Builtin = [&](const char *Name, ir::Intrinsic I, uint32_t Arity,
                     bool Returns) {
    CalleeInfo Info;
    Info.Target = ir::Callee::intrinsic(I);
    Info.Arity = Arity;
    Info.ReturnsValue = Returns;
    Callables.emplace(Name, Info);
  };
  Builtin("print_int", ir::Intrinsic::PrintI32, 1, false);
  Builtin("print_char", ir::Intrinsic::PrintChar, 1, false);
  Builtin("read_int", ir::Intrinsic::ReadI32, 0, true);
  Builtin("input_len", ir::Intrinsic::InputLen, 0, true);
  Builtin("sink", ir::Intrinsic::Sink, 1, false);

  for (const FuncDecl &FD : P.Funcs) {
    if (Callables.count(FD.Name)) {
      error(FD.Line, 1, "redefinition of function '" + FD.Name + "'");
      continue;
    }
    CalleeInfo Info;
    Info.Target =
        ir::Callee::function(static_cast<ir::FuncId>(M.Functions.size()));
    Info.Arity = static_cast<uint32_t>(FD.Params.size());
    Info.ReturnsValue = true; // every MiniC function returns i32
    Callables.emplace(FD.Name, Info);

    ir::Function Fn;
    Fn.Name = FD.Name;
    Fn.NumParams = Info.Arity;
    Fn.NumValues = Info.Arity;
    M.Functions.push_back(std::move(Fn));
  }

  // Lower bodies.
  size_t FnIndex = 0;
  for (const FuncDecl &FD : P.Funcs) {
    auto It = Callables.find(FD.Name);
    if (It == Callables.end() || It->second.Target.IsIntrinsic)
      continue; // was a redefinition
    if (M.Functions[It->second.Target.Func].Blocks.empty())
      lowerFunction(FD, M.Functions[It->second.Target.Func]);
    ++FnIndex;
  }

  if (M.findFunction("main") < 0)
    error(1, 1, "program has no 'main' function");
  else if (M.Functions[M.findFunction("main")].NumParams != 0)
    error(1, 1, "'main' must take no parameters");

  return std::move(M);
}

} // namespace

ir::Module frontend::lower(const Program &P, const std::string &ModuleName,
                           std::vector<Diag> &Diags) {
  Lowerer L(P, ModuleName, Diags);
  return L.run();
}

ir::Module frontend::compileToIR(std::string_view Source,
                                 const std::string &ModuleName,
                                 std::vector<Diag> &Diags) {
  Program P = parse(Source, Diags);
  if (!Diags.empty())
    return ir::Module();
  return lower(P, ModuleName, Diags);
}
