//===-- frontend/Ast.h - MiniC abstract syntax tree --------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC (the "AST" box of the paper's Figure 3). Nodes carry a
/// kind tag instead of using RTTI, following the LLVM conventions.
///
/// MiniC in one paragraph: a program is a list of `global` array/scalar
/// declarations and `fn` functions over signed 32-bit integers. Functions
/// have scalar parameters, `var` scalars, and `array` locals; statements
/// are assignment, array-element assignment, `if`/`else`, `while`, `for`,
/// `break`/`continue`, `return`, and call statements. Expressions provide
/// the usual C operators including short-circuit `&&`/`||`. Builtins:
/// `print_int`, `print_char`, `read_int`, `input_len`, `sink`.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_FRONTEND_AST_H
#define PGSD_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pgsd {
namespace frontend {

/// An expression node.
struct Expr {
  enum class Kind : uint8_t {
    IntLit, ///< IntValue.
    VarRef, ///< Name.
    Index,  ///< Name[Kids[0]].
    Call,   ///< Name(Kids...).
    Unary,  ///< Op Kids[0]; Op is Minus/Bang/Tilde.
    Binary, ///< Kids[0] Op Kids[1]; Op is an arithmetic/comparison token.
    And,    ///< Kids[0] && Kids[1] (short-circuit).
    Or,     ///< Kids[0] || Kids[1] (short-circuit).
  };

  Kind K = Kind::IntLit;
  uint32_t Line = 0;
  uint32_t Col = 0;
  int64_t IntValue = 0;
  std::string Name;
  TokKind Op = TokKind::Eof;
  std::vector<std::unique_ptr<Expr>> Kids;
};

/// A statement node.
struct Stmt {
  enum class Kind : uint8_t {
    VarDecl,     ///< var Name (= E0)?;
    ArrayDecl,   ///< array Name[ArraySize];
    Assign,      ///< Name = E0;
    IndexAssign, ///< Name[E0] = E1;
    If,          ///< if (E0) Body else ElseBody.
    While,       ///< while (E0) Body.
    For,         ///< for (Init; E0; Step) Body.
    Return,      ///< return E0?; (E0 may be null)
    Break,
    Continue,
    ExprStmt,    ///< E0; (typically a call)
  };

  Kind K = Kind::ExprStmt;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Name;
  int64_t ArraySize = 0;
  std::unique_ptr<Expr> E0;
  std::unique_ptr<Expr> E1;
  std::vector<std::unique_ptr<Stmt>> Body;
  std::vector<std::unique_ptr<Stmt>> ElseBody;
  std::unique_ptr<Stmt> Init; ///< For-loop initializer (Assign/VarDecl).
  std::unique_ptr<Stmt> Step; ///< For-loop step (Assign/IndexAssign).
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  uint32_t Line = 0;
  std::vector<std::string> Params;
  std::vector<std::unique_ptr<Stmt>> Body;
};

/// A global scalar (NumWords == 1) or array declaration.
struct GlobalDecl {
  std::string Name;
  uint32_t Line = 0;
  uint32_t NumWords = 1;
  std::vector<int32_t> Init; ///< Leading initial words; rest zero-filled.
};

/// A parsed compilation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

/// A diagnostic with 1-based location.
struct Diag {
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
};

/// Renders diagnostics as "line:col: message" lines (tests, tools).
std::string formatDiags(const std::vector<Diag> &Diags);

} // namespace frontend
} // namespace pgsd

#endif // PGSD_FRONTEND_AST_H
