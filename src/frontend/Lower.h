//===-- frontend/Lower.h - MiniC AST to IR lowering --------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis plus AST-to-IR lowering (the "IR Gen" arrow of the
/// paper's Figure 3). Produces the register-based mid-level IR that the
/// optimization pipeline and backend consume.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_FRONTEND_LOWER_H
#define PGSD_FRONTEND_LOWER_H

#include "frontend/Ast.h"
#include "ir/IR.h"

#include <string>
#include <string_view>
#include <vector>

namespace pgsd {
namespace frontend {

/// Lowers \p P to an IR module named \p ModuleName.
///
/// Semantic errors (unknown identifiers, arity mismatches, assignment to
/// arrays, break outside loops, ...) are appended to \p Diags; the module
/// is only meaningful when no diagnostics were produced.
ir::Module lower(const Program &P, const std::string &ModuleName,
                 std::vector<Diag> &Diags);

/// Convenience: parse + lower in one call.
ir::Module compileToIR(std::string_view Source, const std::string &ModuleName,
                       std::vector<Diag> &Diags);

} // namespace frontend
} // namespace pgsd

#endif // PGSD_FRONTEND_LOWER_H
