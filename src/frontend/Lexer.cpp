//===-- frontend/Lexer.cpp - MiniC tokenizer -------------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

using namespace pgsd;
using namespace pgsd::frontend;

namespace {

/// Cursor over the source text tracking line/column.
class Cursor {
public:
  explicit Cursor(std::string_view Text) : Source(Text) {}

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  std::string_view slice(size_t Begin) const {
    return Source.substr(Begin, Pos - Begin);
  }

  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;

private:
  std::string_view Source;
};

bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}
bool isIdentChar(char C) { return isIdentStart(C) || (C >= '0' && C <= '9'); }
bool isDigit(char C) { return C >= '0' && C <= '9'; }
bool isHexDigit(char C) {
  return isDigit(C) || (C >= 'a' && C <= 'f') || (C >= 'A' && C <= 'F');
}

TokKind keywordKind(std::string_view Text) {
  if (Text == "fn")
    return TokKind::KwFn;
  if (Text == "var")
    return TokKind::KwVar;
  if (Text == "array")
    return TokKind::KwArray;
  if (Text == "global")
    return TokKind::KwGlobal;
  if (Text == "if")
    return TokKind::KwIf;
  if (Text == "else")
    return TokKind::KwElse;
  if (Text == "while")
    return TokKind::KwWhile;
  if (Text == "for")
    return TokKind::KwFor;
  if (Text == "return")
    return TokKind::KwReturn;
  if (Text == "break")
    return TokKind::KwBreak;
  if (Text == "continue")
    return TokKind::KwContinue;
  return TokKind::Ident;
}

} // namespace

std::vector<Token> frontend::lex(std::string_view Source) {
  std::vector<Token> Tokens;
  Cursor C(Source);

  auto Emit = [&](TokKind Kind, size_t Begin, uint32_t Line, uint32_t Col,
                  int64_t Value = 0) {
    Token T;
    T.Kind = Kind;
    T.Text = C.slice(Begin);
    T.IntValue = Value;
    T.Line = Line;
    T.Col = Col;
    Tokens.push_back(T);
  };

  while (!C.atEnd()) {
    // Skip whitespace.
    char Ch = C.peek();
    if (Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\n') {
      C.advance();
      continue;
    }
    // Skip comments.
    if (Ch == '/' && C.peek(1) == '/') {
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      continue;
    }
    if (Ch == '/' && C.peek(1) == '*') {
      C.advance();
      C.advance();
      while (!C.atEnd() && !(C.peek() == '*' && C.peek(1) == '/'))
        C.advance();
      if (!C.atEnd()) {
        C.advance();
        C.advance();
      }
      continue;
    }

    size_t Begin = C.Pos;
    uint32_t Line = C.Line;
    uint32_t Col = C.Col;

    // Identifiers / keywords.
    if (isIdentStart(Ch)) {
      while (isIdentChar(C.peek()))
        C.advance();
      Emit(keywordKind(C.slice(Begin)), Begin, Line, Col);
      continue;
    }

    // Integer literals (decimal or 0x hex). Negative numbers are formed
    // with the unary minus operator.
    if (isDigit(Ch)) {
      int64_t Value = 0;
      if (Ch == '0' && (C.peek(1) == 'x' || C.peek(1) == 'X')) {
        C.advance();
        C.advance();
        if (!isHexDigit(C.peek())) {
          Emit(TokKind::Error, Begin, Line, Col);
          continue;
        }
        while (isHexDigit(C.peek())) {
          char D = C.advance();
          int Digit = isDigit(D) ? D - '0' : (D | 0x20) - 'a' + 10;
          Value = Value * 16 + Digit;
          Value &= 0xFFFFFFFF; // wrap like a 32-bit constant
        }
      } else {
        while (isDigit(C.peek())) {
          Value = Value * 10 + (C.advance() - '0');
          Value &= 0xFFFFFFFF;
        }
      }
      // Trailing identifier chars make the literal malformed ("12ab").
      if (isIdentChar(C.peek())) {
        while (isIdentChar(C.peek()))
          C.advance();
        Emit(TokKind::Error, Begin, Line, Col);
        continue;
      }
      Emit(TokKind::IntLit, Begin, Line, Col,
           static_cast<int64_t>(static_cast<int32_t>(Value)));
      continue;
    }

    // Character literals: 'c' is sugar for its ASCII code.
    if (Ch == '\'') {
      C.advance();
      char Inner = C.peek();
      if (Inner == '\\') {
        C.advance();
        char Esc = C.peek();
        C.advance();
        switch (Esc) {
        case 'n':
          Inner = '\n';
          break;
        case 't':
          Inner = '\t';
          break;
        case '0':
          Inner = '\0';
          break;
        case '\\':
          Inner = '\\';
          break;
        case '\'':
          Inner = '\'';
          break;
        default:
          Emit(TokKind::Error, Begin, Line, Col);
          continue;
        }
      } else if (Inner != '\0') {
        C.advance();
      }
      if (C.peek() != '\'') {
        Emit(TokKind::Error, Begin, Line, Col);
        continue;
      }
      C.advance();
      Emit(TokKind::IntLit, Begin, Line, Col, static_cast<int64_t>(Inner));
      continue;
    }

    // Operators and punctuation.
    C.advance();
    auto Two = [&](char Next, TokKind TwoKind, TokKind OneKind) {
      if (C.peek() == Next) {
        C.advance();
        Emit(TwoKind, Begin, Line, Col);
      } else {
        Emit(OneKind, Begin, Line, Col);
      }
    };
    switch (Ch) {
    case '(':
      Emit(TokKind::LParen, Begin, Line, Col);
      break;
    case ')':
      Emit(TokKind::RParen, Begin, Line, Col);
      break;
    case '{':
      Emit(TokKind::LBrace, Begin, Line, Col);
      break;
    case '}':
      Emit(TokKind::RBrace, Begin, Line, Col);
      break;
    case '[':
      Emit(TokKind::LBracket, Begin, Line, Col);
      break;
    case ']':
      Emit(TokKind::RBracket, Begin, Line, Col);
      break;
    case ',':
      Emit(TokKind::Comma, Begin, Line, Col);
      break;
    case ';':
      Emit(TokKind::Semi, Begin, Line, Col);
      break;
    case '+':
      Emit(TokKind::Plus, Begin, Line, Col);
      break;
    case '-':
      Emit(TokKind::Minus, Begin, Line, Col);
      break;
    case '*':
      Emit(TokKind::Star, Begin, Line, Col);
      break;
    case '/':
      Emit(TokKind::Slash, Begin, Line, Col);
      break;
    case '%':
      Emit(TokKind::Percent, Begin, Line, Col);
      break;
    case '^':
      Emit(TokKind::Caret, Begin, Line, Col);
      break;
    case '~':
      Emit(TokKind::Tilde, Begin, Line, Col);
      break;
    case '&':
      Two('&', TokKind::AmpAmp, TokKind::Amp);
      break;
    case '|':
      Two('|', TokKind::PipePipe, TokKind::Pipe);
      break;
    case '=':
      Two('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '!':
      Two('=', TokKind::NotEq, TokKind::Bang);
      break;
    case '<':
      if (C.peek() == '<') {
        C.advance();
        Emit(TokKind::Shl, Begin, Line, Col);
      } else {
        Two('=', TokKind::Le, TokKind::Lt);
      }
      break;
    case '>':
      if (C.peek() == '>') {
        C.advance();
        Emit(TokKind::Shr, Begin, Line, Col);
      } else {
        Two('=', TokKind::Ge, TokKind::Gt);
      }
      break;
    default:
      Emit(TokKind::Error, Begin, Line, Col);
      break;
    }
  }

  Token End;
  End.Kind = TokKind::Eof;
  End.Line = C.Line;
  End.Col = C.Col;
  Tokens.push_back(End);
  return Tokens;
}
