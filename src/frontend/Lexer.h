//===-- frontend/Lexer.h - MiniC tokenizer -----------------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the C-like source language of the compiler
/// pipeline (the "Program Source Code" box in the paper's Figure 3).
/// The SPEC-like evaluation workloads are written in MiniC.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_FRONTEND_LEXER_H
#define PGSD_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgsd {
namespace frontend {

/// Token kinds. Punctuation tokens are named after their spelling.
enum class TokKind : uint8_t {
  Eof,
  Error,
  IntLit,
  Ident,
  // Keywords.
  KwFn,
  KwVar,
  KwArray,
  KwGlobal,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign,     // =
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Percent,    // %
  Amp,        // &
  Pipe,       // |
  Caret,      // ^
  Tilde,      // ~
  Bang,       // !
  Shl,        // <<
  Shr,        // >>
  EqEq,       // ==
  NotEq,      // !=
  Lt,         // <
  Le,         // <=
  Gt,         // >
  Ge,         // >=
  AmpAmp,     // &&
  PipePipe,   // ||
};

/// One token with its source location (1-based line/column).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  int64_t IntValue = 0; ///< Valid for IntLit.
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Tokenizes \p Source in one pass.
///
/// Never fails hard: malformed input yields Error tokens carrying the
/// offending text, which the parser reports as diagnostics. The returned
/// tokens view into \p Source, which must outlive them.
std::vector<Token> lex(std::string_view Source);

} // namespace frontend
} // namespace pgsd

#endif // PGSD_FRONTEND_LEXER_H
