//===-- codegen/Emitter.cpp - Machine-IR to object code --------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "codegen/Emitter.h"

#include "x86/Encoder.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::codegen;
using namespace pgsd::mir;
using x86::Encoder;
using x86::Mem;
using x86::Reg;

FunctionCode codegen::emitFunction(const MFunction &F, const MModule &M) {
  FunctionCode Code;
  emitFunction(F, M, Code);
  return Code;
}

void codegen::emitFunction(const MFunction &F, const MModule &M,
                           FunctionCode &Out) {
  (void)M;
  FunctionCode &Code = Out;
  Code.Bytes.clear();
  Code.Relocs.clear();
  Encoder E(Code.Bytes);

  // Prologue: standard frame plus callee-saved spills. The pushes come
  // after the frame allocation so [ebp-..] addressing is unaffected.
  E.pushR(Reg::EBP);
  E.movRR(Reg::EBP, Reg::ESP);
  if (F.FrameBytes != 0)
    E.aluRI(x86::AluOp::Sub, Reg::ESP, static_cast<int32_t>(F.FrameBytes));
  if (F.UsesEbx)
    E.pushR(Reg::EBX);
  if (F.UsesEsi)
    E.pushR(Reg::ESI);
  if (F.UsesEdi)
    E.pushR(Reg::EDI);

  // Two-pass branch resolution: record block start offsets and branch
  // fixups, patch at the end.
  std::vector<size_t> BlockOffset(F.Blocks.size(), 0);
  struct BranchFixup {
    size_t FieldOffset;
    uint32_t TargetBlock;
  };
  std::vector<BranchFixup> Fixups;

  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    BlockOffset[B] = E.offset();
    for (const MInstr &I : F.Blocks[B].Instrs) {
      switch (I.Op) {
      case MOp::MovRR:
        E.movRR(I.Dst, I.Src);
        break;
      case MOp::MovRI:
        E.movRI(I.Dst, I.Imm);
        break;
      case MOp::MovGlobal: {
        E.movRI(I.Dst, 0);
        Code.Relocs.push_back({RelocKind::GlobalAbs,
                               static_cast<uint32_t>(E.offset() - 4),
                               static_cast<uint32_t>(I.Imm)});
        break;
      }
      case MOp::Load:
        E.movLoad(I.Dst, Mem::base(I.Src, I.Imm));
        break;
      case MOp::Store:
        E.movStore(Mem::base(I.Dst, I.Imm), I.Src);
        break;
      case MOp::LoadFrame:
        E.movLoad(I.Dst, Mem::base(Reg::EBP, I.Imm));
        break;
      case MOp::StoreFrame:
        E.movStore(Mem::base(Reg::EBP, I.Imm), I.Src);
        break;
      case MOp::LeaFrame:
        E.leaRM(I.Dst, Mem::base(Reg::EBP, I.Imm));
        break;
      case MOp::AluRR:
        E.aluRR(I.Alu, I.Dst, I.Src);
        break;
      case MOp::AluRI:
        E.aluRI(I.Alu, I.Dst, I.Imm);
        break;
      case MOp::ImulRR:
        E.imulRR(I.Dst, I.Src);
        break;
      case MOp::Cdq:
        E.cdq();
        break;
      case MOp::Idiv:
        E.idivR(I.Src);
        break;
      case MOp::Neg:
        E.negR(I.Dst);
        break;
      case MOp::Not:
        E.notR(I.Dst);
        break;
      case MOp::ShiftRI:
        E.shiftRI(I.Shift, I.Dst, static_cast<uint8_t>(I.Imm & 31));
        break;
      case MOp::ShiftRC:
        E.shiftRCL(I.Shift, I.Dst);
        break;
      case MOp::TestRR:
        E.testRR(I.Dst, I.Src);
        break;
      case MOp::Setcc:
        E.setccR8(I.CC, I.Dst);
        break;
      case MOp::Movzx8:
        E.movzxR8(I.Dst, I.Src);
        break;
      case MOp::Push:
        E.pushR(I.Src);
        break;
      case MOp::PushI:
        E.pushI(I.Imm);
        break;
      case MOp::Pop:
        E.popR(I.Dst);
        break;
      case MOp::AdjustSP:
        E.aluRI(x86::AluOp::Add, Reg::ESP, I.Imm);
        break;
      case MOp::Call: {
        size_t Field = E.callRel();
        if (I.Target.IsIntrinsic)
          Code.Relocs.push_back({RelocKind::CallIntr,
                                 static_cast<uint32_t>(Field),
                                 static_cast<uint32_t>(I.Target.Intr)});
        else
          Code.Relocs.push_back({RelocKind::CallFunc,
                                 static_cast<uint32_t>(Field),
                                 I.Target.Func});
        break;
      }
      case MOp::Jmp:
        // Fallthrough jumps to the lexically next block are elided,
        // exactly like a real block-layout pass would.
        if (static_cast<size_t>(I.Imm) != B + 1)
          Fixups.push_back({E.jmpRel(), static_cast<uint32_t>(I.Imm)});
        break;
      case MOp::Jcc:
        Fixups.push_back({E.jccRel(I.CC), static_cast<uint32_t>(I.Imm)});
        break;
      case MOp::Ret:
        // Epilogue mirrors the prologue.
        if (F.UsesEdi)
          E.popR(Reg::EDI);
        if (F.UsesEsi)
          E.popR(Reg::ESI);
        if (F.UsesEbx)
          E.popR(Reg::EBX);
        E.leave();
        E.ret();
        break;
      case MOp::Nop:
        E.nop(I.NopK);
        break;
      case MOp::ProfInc: {
        size_t Field = E.incMem(Mem::abs(0));
        Code.Relocs.push_back({RelocKind::CounterAbs,
                               static_cast<uint32_t>(Field),
                               static_cast<uint32_t>(I.Imm)});
        break;
      }
      }
    }
  }

  for (const BranchFixup &Fix : Fixups) {
    assert(Fix.TargetBlock < F.Blocks.size() && "bad branch target");
    E.patchRel32(Fix.FieldOffset, BlockOffset[Fix.TargetBlock]);
  }
}
