//===-- codegen/Layout.h - Process-image layout constants --------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Address-space layout shared by the linker and the execution engine.
///
/// The text base matches the fixed 32-bit Linux executable base the paper
/// cites ("the code section of a program is always loaded at the same
/// address (0x8048000 on Linux)", Section 2.2). Data, counters, and the
/// stack live in the low 16 MiB, which is the flat memory the machine
/// interpreter models.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_CODEGEN_LAYOUT_H
#define PGSD_CODEGEN_LAYOUT_H

#include <cstdint>

namespace pgsd {
namespace codegen {

/// Load address of .text in the (virtual) process image.
inline constexpr uint32_t TextBase = 0x08048000;

/// Size of the flat data memory modeled by the interpreter.
inline constexpr uint32_t MemorySize = 16u << 20;

/// Base address where the linker places module globals.
inline constexpr uint32_t GlobalsBase = 0x00100000;

/// Base address of the edge-profiling counter array (instrumented
/// builds only).
inline constexpr uint32_t CountersBase = 0x00040000;

/// Initial stack pointer; the stack grows down from here.
inline constexpr uint32_t StackTop = 0x00F00000;

/// Lowest address the stack may reach before the interpreter reports
/// stack overflow.
inline constexpr uint32_t StackLimit = 0x00400000;

} // namespace codegen
} // namespace pgsd

#endif // PGSD_CODEGEN_LAYOUT_H
