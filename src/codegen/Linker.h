//===-- codegen/Linker.h - Mini linker / image builder -----------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Linker" stage of the paper's Figure 3: lays out the final .text
/// image from per-function object code, resolves relocations, and assigns
/// data addresses.
///
/// Layout mirrors a real 32-bit Linux link: a fixed, *undiversified*
/// C-runtime stub (_start, syscall wrappers, small helpers) first -- the
/// counterpart of crt*.o and the static libc objects -- followed by the
/// (possibly diversified) program functions, each aligned like a normal
/// compiler would. The undiversified stub is what produces the constant
/// residue of surviving gadgets the paper observes in Tables 2 and 3
/// ("the remaining gadgets ... come from the small C library object files
/// that the linker adds to the binary"). A flag diversifies the stub too,
/// reproducing the paper's suggested fix.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_CODEGEN_LINKER_H
#define PGSD_CODEGEN_LINKER_H

#include "codegen/Emitter.h"
#include "codegen/Layout.h"
#include "ir/IR.h"
#include "lir/MIR.h"
#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <vector>

namespace pgsd {
namespace codegen {

/// Linker configuration.
struct LinkOptions {
  /// Function start alignment in bytes (power of two). Real toolchains
  /// use 16; 1 disables alignment.
  uint32_t FunctionAlignment = 16;

  /// Also diversify the C-runtime stub (the paper's "could be easily
  /// fixed in practice by also diversifying the C library code").
  bool DiversifyStub = false;

  /// NOP probability used for the stub when DiversifyStub is set.
  double StubNopProbability = 0.3;

  /// Seed for stub diversification.
  uint64_t StubSeed = 1;
};

/// A linked process image.
struct Image {
  std::vector<uint8_t> Text;    ///< Final .text bytes.
  uint32_t TextBase = codegen::TextBase;

  uint32_t EntryOffset = 0;     ///< _start (inside the stub).
  uint32_t StubSize = 0;        ///< Bytes of C-runtime stub at offset 0.
  std::vector<uint32_t> FuncOffsets; ///< Per module function.
  std::array<uint32_t, ir::NumIntrinsics> IntrinsicOffsets{};

  std::vector<uint32_t> GlobalAddrs; ///< Absolute address per global.
  uint32_t GlobalsEnd = codegen::GlobalsBase; ///< One past the last byte.
};

/// Reusable scratch state for link(). Batch loops pass the same
/// instance (one per worker thread) so per-function emit buffers are
/// recycled across variants and the .text vector is pre-sized from the
/// previous variant's layout instead of growing through reallocation.
struct LinkScratch {
  std::vector<FunctionCode> Codes;
  size_t LastTextSize = 0;
};

/// Emits every function of \p M and links the image. The two-argument
/// form uses a thread-local LinkScratch, so repeated links on one
/// thread (the batch fan-out) amortize buffer growth automatically.
Image link(const mir::MModule &M, const LinkOptions &Opts = LinkOptions());
Image link(const mir::MModule &M, const LinkOptions &Opts,
           LinkScratch &Scratch);

/// Builds just the C-runtime stub (exposed for tests and the gadget
/// analysis of the undiversified residue). \p IntrinsicOffsets receives
/// the entry offset of each intrinsic wrapper; \p CallMainField receives
/// the offset of _start's rel32 call-to-main field.
std::vector<uint8_t>
buildRuntimeStub(std::array<uint32_t, ir::NumIntrinsics> &IntrinsicOffsets,
                 uint32_t &CallMainField, const LinkOptions &Opts);

} // namespace codegen
} // namespace pgsd

#endif // PGSD_CODEGEN_LINKER_H
