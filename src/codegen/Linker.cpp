//===-- codegen/Linker.cpp - Mini linker / image builder -------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"

#include "x86/Encoder.h"

#include <cassert>

using namespace pgsd;
using namespace pgsd::codegen;
using x86::AluOp;
using x86::Encoder;
using x86::Mem;
using x86::Reg;
using x86::ShiftOp;

namespace {

/// Emits the C-runtime stub through \p E. When \p StubRng is non-null,
/// Table 1 NOPs are inserted before instructions with the configured
/// probability (the "also diversify the C library" extension).
class StubBuilder {
public:
  StubBuilder(Encoder &Enc, Rng *R, double P)
      : E(Enc), StubRng(R), NopProb(P) {}

  /// Rolls the diversification dice before one emitted instruction.
  void pre() {
    if (!StubRng || !StubRng->nextBernoulli(NopProb))
      return;
    // Default candidate set (the bus-locking XCHG pair stays excluded).
    auto Kind = static_cast<x86::NopKind>(
        StubRng->nextBelow(x86::NumDefaultNopKinds));
    E.nop(Kind);
  }

  /// Standard wrapper prologue.
  void prologue() {
    pre();
    E.pushR(Reg::EBP);
    pre();
    E.movRR(Reg::EBP, Reg::ESP);
  }

  /// Standard wrapper epilogue.
  void epilogue() {
    pre();
    E.leave();
    pre();
    E.ret();
  }

  Encoder &E;
  Rng *StubRng;
  double NopProb;
};

} // namespace

std::vector<uint8_t> codegen::buildRuntimeStub(
    std::array<uint32_t, ir::NumIntrinsics> &IntrinsicOffsets,
    uint32_t &CallMainField, const LinkOptions &Opts) {
  std::vector<uint8_t> Bytes;
  Encoder E(Bytes);
  Rng StubRng(Opts.StubSeed);
  StubBuilder S(E, Opts.DiversifyStub ? &StubRng : nullptr,
                Opts.StubNopProbability);
  auto P = [&] { S.pre(); };

  // --- _start: call main, pass the result to SYS_exit. --------------
  CallMainField = static_cast<uint32_t>(E.callRel() /* main */);
  P();
  E.movRR(Reg::EBX, Reg::EAX); // exit status
  P();
  E.movRI(Reg::EAX, 1); // SYS_exit
  P();
  E.intN(0x80);

  auto BeginFn = [&](ir::Intrinsic I) {
    IntrinsicOffsets[static_cast<size_t>(I)] =
        static_cast<uint32_t>(E.offset());
    S.prologue();
  };

  // --- print_int: format into the static conversion buffer, then
  // SYS_write. The digit loop is real code; its buffer address is a
  // fixed scratch location in the data segment.
  constexpr int32_t ConvBuf = static_cast<int32_t>(GlobalsBase) - 0x40;
  BeginFn(ir::Intrinsic::PrintI32);
  P();
  E.movLoad(Reg::EAX, Mem::base(Reg::EBP, 8));
  P();
  E.movRI(Reg::ECX, 10);
  P();
  E.leaRM(Reg::EDX, Mem::base(Reg::EBP, -4));
  // digit loop: divide by 10, store remainder
  size_t DigitLoop = E.offset();
  P();
  E.cdq();
  // A real libc uses unsigned div here; idiv keeps the stub honest
  // enough for byte-level analysis.
  P();
  E.movRI(Reg::ECX, 10);
  P();
  E.idivR(Reg::ECX);
  P();
  E.aluRI(AluOp::Add, Reg::EDX, '0');
  P();
  E.movStore(Mem::abs(ConvBuf), Reg::EDX);
  P();
  E.testRR(Reg::EAX, Reg::EAX);
  size_t LoopBranch = E.jccRel(x86::CondCode::NE);
  E.patchRel32(LoopBranch, DigitLoop);
  P();
  E.movRI(Reg::EBX, 1); // fd = stdout
  P();
  E.movRI(Reg::ECX, ConvBuf);
  P();
  E.movRI(Reg::EDX, 12); // max length
  P();
  E.movRI(Reg::EAX, 4); // SYS_write
  P();
  E.intN(0x80);
  S.epilogue();

  // --- print_char: one-byte SYS_write. -------------------------------
  BeginFn(ir::Intrinsic::PrintChar);
  P();
  E.movLoad(Reg::ECX, Mem::base(Reg::EBP, 8));
  P();
  E.movStore(Mem::abs(ConvBuf), Reg::ECX);
  P();
  E.movRI(Reg::ECX, ConvBuf);
  P();
  E.movRI(Reg::EBX, 1);
  P();
  E.movRI(Reg::EDX, 1);
  P();
  E.movRI(Reg::EAX, 4);
  P();
  E.intN(0x80);
  S.epilogue();

  // --- read_int: SYS_read into the buffer plus a parse loop. ---------
  BeginFn(ir::Intrinsic::ReadI32);
  P();
  E.movRI(Reg::EBX, 0); // fd = stdin
  P();
  E.movRI(Reg::ECX, ConvBuf);
  P();
  E.movRI(Reg::EDX, 12);
  P();
  E.movRI(Reg::EAX, 3); // SYS_read
  P();
  E.intN(0x80);
  P();
  E.movLoad(Reg::ECX, Mem::abs(ConvBuf));
  P();
  E.movRR(Reg::EAX, Reg::ECX);
  P();
  E.aluRI(AluOp::Sub, Reg::EAX, '0');
  S.epilogue();

  // --- input_len: modeled as an fcntl-style query. --------------------
  BeginFn(ir::Intrinsic::InputLen);
  P();
  E.movRI(Reg::EBX, 0);
  P();
  E.movRI(Reg::ECX, 0);
  P();
  E.movRI(Reg::EAX, 0x36); // SYS_ioctl
  P();
  E.intN(0x80);
  S.epilogue();

  // --- sink: fold the argument into a checksum word. ------------------
  constexpr int32_t SinkWord = static_cast<int32_t>(GlobalsBase) - 0x44;
  BeginFn(ir::Intrinsic::Sink);
  P();
  E.movLoad(Reg::ECX, Mem::base(Reg::EBP, 8));
  P();
  E.movLoad(Reg::EDX, Mem::abs(SinkWord));
  P();
  E.aluRR(AluOp::Xor, Reg::EDX, Reg::ECX);
  P();
  E.movStore(Mem::abs(SinkWord), Reg::EDX);
  S.epilogue();

  // --- memcpy-like helper: the kind of object the linker drags in from
  // libc.a. Word-copy loop with the classic register choreography.
  S.prologue();
  P();
  E.movLoad(Reg::ECX, Mem::base(Reg::EBP, 16)); // count
  P();
  E.movLoad(Reg::EDX, Mem::base(Reg::EBP, 12)); // src
  P();
  E.movLoad(Reg::EBX, Mem::base(Reg::EBP, 8)); // dst (callee-saved abuse)
  size_t CopyLoop = E.offset();
  P();
  E.testRR(Reg::ECX, Reg::ECX);
  size_t CopyDone = E.jccRel(x86::CondCode::E);
  P();
  E.movLoad(Reg::EAX, Mem::base(Reg::EDX, 0));
  P();
  E.movStore(Mem::base(Reg::EBX, 0), Reg::EAX);
  P();
  E.aluRI(AluOp::Add, Reg::EDX, 4);
  P();
  E.aluRI(AluOp::Add, Reg::EBX, 4);
  P();
  E.aluRI(AluOp::Sub, Reg::ECX, 1);
  size_t CopyBack = E.jmpRel();
  E.patchRel32(CopyBack, CopyLoop);
  E.patchRel32(CopyDone, E.offset());
  S.epilogue();

  // --- hash-like helper (strlen/strcmp stand-in): shift/xor loop. -----
  S.prologue();
  P();
  E.movLoad(Reg::EDX, Mem::base(Reg::EBP, 8));
  P();
  E.movRI(Reg::EAX, 0x1505);
  P();
  E.movRI(Reg::ECX, 5);
  size_t HashLoop = E.offset();
  P();
  E.movRR(Reg::EBX, Reg::EAX);
  P();
  E.shiftRCL(ShiftOp::Shl, Reg::EBX);
  P();
  E.aluRR(AluOp::Add, Reg::EBX, Reg::EAX);
  P();
  E.movRR(Reg::EAX, Reg::EBX);
  P();
  E.aluRI(AluOp::Sub, Reg::EDX, 1);
  P();
  E.testRR(Reg::EDX, Reg::EDX);
  size_t HashBack = E.jccRel(x86::CondCode::NE);
  E.patchRel32(HashBack, HashLoop);
  S.epilogue();

  return Bytes;
}

namespace {

/// The C-runtime stub is a pure constant when DiversifyStub is off (the
/// Rng is never consulted), so every undiversified link in a variant
/// sweep can share one prebuilt copy. Built on first use; the magic
/// static makes concurrent first calls safe.
struct CachedStub {
  std::vector<uint8_t> Bytes;
  std::array<uint32_t, ir::NumIntrinsics> IntrinsicOffsets{};
  uint32_t CallMainField = 0;
};

const CachedStub &plainRuntimeStub() {
  static const CachedStub Stub = [] {
    CachedStub S;
    LinkOptions Plain; // DiversifyStub defaults to false
    S.Bytes = buildRuntimeStub(S.IntrinsicOffsets, S.CallMainField, Plain);
    return S;
  }();
  return Stub;
}

} // namespace

Image codegen::link(const mir::MModule &M, const LinkOptions &Opts) {
  // One scratch per thread: the batch fan-out links thousands of
  // variants per worker, and every variant of one module has near-
  // identical layout, so recycled buffers hit their high-water capacity
  // after the first link.
  thread_local LinkScratch Scratch;
  return link(M, Opts, Scratch);
}

Image codegen::link(const mir::MModule &M, const LinkOptions &Opts,
                    LinkScratch &Scratch) {
  assert(M.EntryFunction >= 0 && "module has no entry function");
  Image Img;

  uint32_t Align = Opts.FunctionAlignment ? Opts.FunctionAlignment : 1;
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  auto PadTo = [&](uint32_t Boundary) {
    while (Img.Text.size() % Boundary != 0)
      Img.Text.push_back(0x90); // NOP padding, like a real assembler
  };

  // 1. C-runtime stub at offset 0 (crt*.o + libc objects equivalent).
  uint32_t CallMainField = 0;
  Img.Text.reserve(Scratch.LastTextSize);
  if (!Opts.DiversifyStub) {
    const CachedStub &Stub = plainRuntimeStub();
    Img.Text.insert(Img.Text.end(), Stub.Bytes.begin(), Stub.Bytes.end());
    Img.IntrinsicOffsets = Stub.IntrinsicOffsets;
    CallMainField = Stub.CallMainField;
  } else {
    std::vector<uint8_t> Stub =
        buildRuntimeStub(Img.IntrinsicOffsets, CallMainField, Opts);
    Img.Text.insert(Img.Text.end(), Stub.begin(), Stub.end());
  }
  Img.StubSize = static_cast<uint32_t>(Img.Text.size());
  Img.EntryOffset = 0;

  // 2. Program functions, in module order, emitted into recycled
  // per-slot buffers.
  if (Scratch.Codes.size() < M.Functions.size())
    Scratch.Codes.resize(M.Functions.size());
  std::vector<codegen::FunctionCode> &Codes = Scratch.Codes;
  Img.FuncOffsets.resize(M.Functions.size());
  for (size_t F = 0; F != M.Functions.size(); ++F) {
    PadTo(Align);
    emitFunction(M.Functions[F], M, Codes[F]);
    Img.FuncOffsets[F] = static_cast<uint32_t>(Img.Text.size());
    Img.Text.insert(Img.Text.end(), Codes[F].Bytes.begin(),
                    Codes[F].Bytes.end());
  }
  Scratch.LastTextSize = Img.Text.size();

  // 3. Data layout.
  Img.GlobalAddrs.resize(M.Globals.size());
  uint32_t DataCursor = GlobalsBase;
  for (size_t G = 0; G != M.Globals.size(); ++G) {
    Img.GlobalAddrs[G] = DataCursor;
    DataCursor += (M.Globals[G].SizeBytes + 3u) & ~3u;
  }
  Img.GlobalsEnd = DataCursor;

  // 4. Resolve relocations.
  auto Patch32 = [&](uint32_t Offset, uint32_t Value) {
    assert(Offset + 4 <= Img.Text.size() && "relocation out of range");
    Img.Text[Offset] = static_cast<uint8_t>(Value);
    Img.Text[Offset + 1] = static_cast<uint8_t>(Value >> 8);
    Img.Text[Offset + 2] = static_cast<uint8_t>(Value >> 16);
    Img.Text[Offset + 3] = static_cast<uint8_t>(Value >> 24);
  };
  auto PatchRel32 = [&](uint32_t FieldOffset, uint32_t TargetOffset) {
    Patch32(FieldOffset, TargetOffset - (FieldOffset + 4));
  };

  PatchRel32(CallMainField,
             Img.FuncOffsets[static_cast<size_t>(M.EntryFunction)]);
  for (size_t F = 0; F != M.Functions.size(); ++F) {
    uint32_t Base = Img.FuncOffsets[F];
    for (const Reloc &R : Codes[F].Relocs) {
      uint32_t At = Base + R.Offset;
      switch (R.Kind) {
      case RelocKind::CallFunc:
        PatchRel32(At, Img.FuncOffsets[R.Index]);
        break;
      case RelocKind::CallIntr:
        PatchRel32(At, Img.IntrinsicOffsets[R.Index]);
        break;
      case RelocKind::GlobalAbs:
        Patch32(At, Img.GlobalAddrs[R.Index]);
        break;
      case RelocKind::CounterAbs:
        Patch32(At, CountersBase + 4 * R.Index);
        break;
      }
    }
  }
  return Img;
}
