//===-- codegen/Emitter.h - Machine-IR to object code -----------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Code Gen" stage of the paper's Figure 3: turns machine IR into
/// IA-32 object code. Every MIR instruction emits exactly one native
/// instruction; prologues/epilogues are expanded around the body here,
/// after the NOP-insertion pass has run on the MIR.
///
/// Intra-function branches are resolved immediately (two-pass rel32
/// patching); calls, global addresses, and profiling-counter addresses
/// are left as relocations for the linker.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_CODEGEN_EMITTER_H
#define PGSD_CODEGEN_EMITTER_H

#include "lir/MIR.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace codegen {

/// Relocation kinds the linker resolves.
enum class RelocKind : uint8_t {
  CallFunc,   ///< rel32 to module function #Index.
  CallIntr,   ///< rel32 to intrinsic stub #Index.
  GlobalAbs,  ///< abs32 address of global #Index.
  CounterAbs, ///< abs32 address of profiling counter #Index.
};

/// One unresolved reference in emitted code.
struct Reloc {
  RelocKind Kind;
  uint32_t Offset; ///< Byte offset of the 32-bit field within the code.
  uint32_t Index;
};

/// Object code for one function.
struct FunctionCode {
  std::vector<uint8_t> Bytes;
  std::vector<Reloc> Relocs;
};

/// Emits machine code for \p F (a member of \p M).
FunctionCode emitFunction(const mir::MFunction &F, const mir::MModule &M);

/// As above, emitting into \p Out (cleared first, capacity kept). Batch
/// loops pass the same FunctionCode per slot so code and reloc buffers
/// are reused across variants instead of reallocated per emit.
void emitFunction(const mir::MFunction &F, const mir::MModule &M,
                  FunctionCode &Out);

} // namespace codegen
} // namespace pgsd

#endif // PGSD_CODEGEN_EMITTER_H
