//===-- profile/Profile.cpp - Edge profiling infrastructure ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

using namespace pgsd;
using namespace pgsd::profile;
using namespace pgsd::mir;

namespace {

/// Union-find over CFG nodes for spanning-tree construction.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  size_t find(size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  bool unite(size_t A, size_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    Parent[A] = B;
    return true;
  }

private:
  std::vector<size_t> Parent;
};

/// A raw CFG edge plus where it lives in the instruction stream, so the
/// instrumenter can retarget the branch when the edge needs a counter.
struct RawEdge {
  uint32_t From;
  uint32_t To;
  uint64_t Weight;
  // Location of the branch creating the edge (for split insertion):
  uint32_t Block;      ///< == From for real edges.
  uint32_t InstrIndex; ///< Index of the Jmp/Jcc; ~0u for entry/exit.
  bool IsEntry = false;
  bool IsExit = false;
};

/// Estimated loop depth per block from retreating edges (headers precede
/// bodies in our block layout).
std::vector<uint32_t> estimateLoopDepth(const MFunction &F) {
  std::vector<uint32_t> Depth(F.Blocks.size(), 0);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B)
    for (uint32_t S : F.successors(B))
      if (S <= B)
        for (uint32_t Inner = S; Inner <= B; ++Inner)
          ++Depth[Inner];
  return Depth;
}

} // namespace

InstrumentationPlan profile::instrumentModule(MModule &M) {
  InstrumentationPlan Plan;
  Plan.Funcs.resize(M.Functions.size());

  for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
    MFunction &F = M.Functions[FI];
    FuncInstrumentation &FP = Plan.Funcs[FI];
    uint32_t NumBlocks = static_cast<uint32_t>(F.Blocks.size());
    FP.NumBlocks = NumBlocks;
    uint32_t Virtual = NumBlocks;

    std::vector<uint32_t> Depth = estimateLoopDepth(F);
    auto EdgeWeight = [&](uint32_t A, uint32_t B) {
      uint32_t D = std::min(
          {A < NumBlocks ? Depth[A] : 0u, B < NumBlocks ? Depth[B] : 0u, 8u});
      uint64_t W = 1;
      for (uint32_t I = 0; I != D; ++I)
        W *= 10;
      return W;
    };

    // Enumerate edges: virtual entry, every branch, fallthroughs (none:
    // ISel always ends blocks with Jmp/Ret), and Ret exits.
    std::vector<RawEdge> Edges;
    Edges.push_back({Virtual, 0, EdgeWeight(0, 0), 0, ~0u, true, false});
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      const MBasicBlock &BB = F.Blocks[B];
      for (uint32_t I = 0; I != BB.Instrs.size(); ++I) {
        const MInstr &MI = BB.Instrs[I];
        if (MI.Op == MOp::Jmp || MI.Op == MOp::Jcc) {
          uint32_t To = static_cast<uint32_t>(MI.Imm);
          Edges.push_back(
              {B, To, EdgeWeight(B, To), B, I, false, false});
        } else if (MI.Op == MOp::Ret) {
          Edges.push_back(
              {B, Virtual, EdgeWeight(B, B), B, I, false, true});
        }
      }
    }

    // Maximal spanning tree: heavy edges first so hot edges stay free.
    std::vector<size_t> Order(Edges.size());
    std::iota(Order.begin(), Order.end(), 0);
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return Edges[A].Weight > Edges[B].Weight;
    });
    UnionFind UF(NumBlocks + 1);
    std::vector<bool> NeedsCounter(Edges.size(), false);
    for (size_t EI : Order)
      if (!UF.unite(Edges[EI].From, Edges[EI].To))
        NeedsCounter[EI] = true; // cycle edge (incl. self-loops): count it

    // Record the plan, then instrument in *reverse* edge order: the
    // entry counter (edge 0) prepends to block 0 and would otherwise
    // invalidate the recorded instruction indices of block 0's branches.
    for (size_t EI = 0; EI != Edges.size(); ++EI) {
      EdgeInfo Info;
      Info.From = Edges[EI].From;
      Info.To = Edges[EI].To;
      Info.CounterId =
          NeedsCounter[EI] ? static_cast<int32_t>(Plan.NumCounters++) : -1;
      FP.Edges.push_back(Info);
    }
    for (size_t EI = Edges.size(); EI-- > 0;) {
      if (!NeedsCounter[EI])
        continue;
      const RawEdge &E = Edges[EI];
      MInstr Inc;
      Inc.Op = MOp::ProfInc;
      Inc.Imm = FP.Edges[EI].CounterId;
      if (E.IsEntry) {
        // Count function entries at the top of block 0.
        auto &Instrs = F.Blocks[0].Instrs;
        Instrs.insert(Instrs.begin(), Inc);
      } else if (E.IsExit) {
        // Count returns right before the Ret (always the block's last
        // instruction, so no recorded index is disturbed).
        auto &Instrs = F.Blocks[E.Block].Instrs;
        Instrs.insert(Instrs.begin() + E.InstrIndex, Inc);
      } else {
        // Split the edge: new block [ProfInc; Jmp To], retarget. New
        // blocks are appended so original ids stay stable.
        MBasicBlock Split;
        Split.Name = "profsplit";
        Split.Instrs.push_back(Inc);
        MInstr J;
        J.Op = MOp::Jmp;
        J.Imm = static_cast<int32_t>(E.To);
        Split.Instrs.push_back(J);
        uint32_t SplitId = static_cast<uint32_t>(F.Blocks.size());
        F.Blocks.push_back(std::move(Split));
        F.Blocks[E.Block].Instrs[E.InstrIndex].Imm =
            static_cast<int32_t>(SplitId);
      }
    }
  }
  return Plan;
}

ProfileData profile::recoverCounts(const InstrumentationPlan &Plan,
                                   const std::vector<uint64_t> &Counters) {
  ProfileData Data;
  Data.BlockCounts.resize(Plan.Funcs.size());

  for (size_t FI = 0; FI != Plan.Funcs.size(); ++FI) {
    const FuncInstrumentation &FP = Plan.Funcs[FI];
    uint32_t NumNodes = FP.NumBlocks + 1; // + virtual node
    size_t NumEdges = FP.Edges.size();

    std::vector<uint64_t> EdgeCount(NumEdges, 0);
    std::vector<bool> Known(NumEdges, false);
    for (size_t E = 0; E != NumEdges; ++E) {
      if (FP.Edges[E].CounterId >= 0) {
        EdgeCount[E] =
            Counters[static_cast<size_t>(FP.Edges[E].CounterId)];
        Known[E] = true;
      }
    }

    // Incidence lists (self-loops are always counted, so they never
    // appear as unknowns).
    std::vector<std::vector<size_t>> In(NumNodes), Out(NumNodes);
    for (size_t E = 0; E != NumEdges; ++E) {
      Out[FP.Edges[E].From].push_back(E);
      In[FP.Edges[E].To].push_back(E);
    }

    // Iterative flow-conservation elimination over the spanning tree.
    auto UnknownDegree = [&](uint32_t N) {
      unsigned D = 0;
      for (size_t E : Out[N])
        if (!Known[E])
          ++D;
      for (size_t E : In[N])
        if (!Known[E])
          ++D;
      return D;
    };
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (uint32_t N = 0; N != NumNodes; ++N) {
        if (UnknownDegree(N) != 1)
          continue;
        int64_t Flow = 0;
        size_t Missing = ~size_t(0);
        bool MissingIsOut = false;
        for (size_t E : In[N]) {
          if (Known[E])
            Flow += static_cast<int64_t>(EdgeCount[E]);
          else
            Missing = E;
        }
        for (size_t E : Out[N]) {
          if (Known[E])
            Flow -= static_cast<int64_t>(EdgeCount[E]);
          else {
            Missing = E;
            MissingIsOut = true;
          }
        }
        assert(Missing != ~size_t(0) && "degree said one unknown");
        int64_t Value = MissingIsOut ? Flow : -Flow;
        assert(Value >= 0 && "flow conservation violated");
        EdgeCount[Missing] = static_cast<uint64_t>(Value);
        Known[Missing] = true;
        Progress = true;
      }
    }
#ifndef NDEBUG
    for (bool K : Known)
      assert(K && "spanning-tree elimination did not converge");
#endif

    // Block count = inflow.
    auto &Counts = Data.BlockCounts[FI];
    Counts.assign(FP.NumBlocks, 0);
    for (size_t E = 0; E != NumEdges; ++E)
      if (FP.Edges[E].To < FP.NumBlocks)
        Counts[FP.Edges[E].To] += EdgeCount[E];
    for (uint64_t C : Counts)
      Data.MaxCount = std::max(Data.MaxCount, C);
  }
  return Data;
}

void profile::applyCounts(MModule &M, const ProfileData &Data) {
  assert(Data.BlockCounts.size() == M.Functions.size() &&
         "profile shape mismatch");
  for (size_t F = 0; F != M.Functions.size(); ++F) {
    const auto &Counts = Data.BlockCounts[F];
    assert(Counts.size() == M.Functions[F].Blocks.size() &&
           "profile shape mismatch");
    for (size_t B = 0; B != Counts.size(); ++B)
      M.Functions[F].Blocks[B].ProfileCount = Counts[B];
  }
}

std::string profile::serializeProfile(const ProfileData &Data) {
  std::string Out = "pgsd-profile v1\n";
  char Buf[96];
  for (size_t F = 0; F != Data.BlockCounts.size(); ++F) {
    std::snprintf(Buf, sizeof(Buf), "func %zu blocks %zu\n", F,
                  Data.BlockCounts[F].size());
    Out += Buf;
    for (size_t B = 0; B != Data.BlockCounts[F].size(); ++B) {
      if (Data.BlockCounts[F][B] == 0)
        continue; // sparse: zero counts are the default
      std::snprintf(Buf, sizeof(Buf), "%zu %zu %llu\n", F, B,
                    static_cast<unsigned long long>(Data.BlockCounts[F][B]));
      Out += Buf;
    }
  }
  return Out;
}

bool profile::deserializeProfile(const std::string &Text,
                                 ProfileData &Out) {
  Out = ProfileData();
  size_t Pos = 0;
  auto NextLine = [&](std::string &Line) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    return true;
  };
  std::string Line;
  if (!NextLine(Line) || Line != "pgsd-profile v1")
    return false;
  while (NextLine(Line)) {
    if (Line.empty())
      continue;
    size_t F, Extent;
    unsigned long long Count;
    if (std::sscanf(Line.c_str(), "func %zu blocks %zu", &F, &Extent) ==
        2) {
      if (F != Out.BlockCounts.size()) {
        Out = ProfileData();
        return false; // functions must appear in order
      }
      Out.BlockCounts.emplace_back(Extent, 0);
      continue;
    }
    if (std::sscanf(Line.c_str(), "%zu %zu %llu", &F, &Extent, &Count) ==
        3) {
      if (F >= Out.BlockCounts.size() ||
          Extent >= Out.BlockCounts[F].size()) {
        Out = ProfileData();
        return false;
      }
      Out.BlockCounts[F][Extent] = Count;
      Out.MaxCount = std::max(Out.MaxCount, static_cast<uint64_t>(Count));
      continue;
    }
    Out = ProfileData();
    return false;
  }
  return true;
}

ProfileData profile::profileModule(const MModule &M,
                                   const mexec::RunOptions &TrainOptions) {
  MModule Instrumented = M; // deep copy
  InstrumentationPlan Plan = instrumentModule(Instrumented);
  Instrumented.NumProfCounters = Plan.NumCounters;
  // A training run is a one-shot execution of a freshly instrumented
  // module: runWith bakes TrainOptions' cost model into a fresh stream,
  // so even custom-cost training stays on the fast engine.
  mexec::RunResult Result =
      mexec::runWith(mexec::Engine::Fast, Instrumented, TrainOptions);
  if (Result.Trapped)
    return ProfileData(); // empty: caller decides how to proceed
  return recoverCounts(Plan, Result.Counters);
}
