//===-- profile/Profile.h - Edge profiling infrastructure --------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling infrastructure the paper builds on (Section 3.1/4): the
/// compiler "only inserts counters for the minimal required subset of
/// edges on the control flow graph" and "derives all basic block
/// execution counts from that minimal set of per-edge counters"
/// (Neustifter-style edge profiling).
///
/// Implementation: per machine function, build the CFG with a virtual
/// node closing entry/exit flow, compute a *maximal* spanning tree under
/// static frequency weights (hot edges join the tree and stay free), and
/// instrument only the non-tree edges -- splitting edges where needed.
/// After a training run, flow conservation recovers every edge count and
/// hence every block count. Per-block counts are exactly what the
/// profile-guided NOP heuristic consumes ("all instructions in a basic
/// block are executed the same number of times", Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_PROFILE_PROFILE_H
#define PGSD_PROFILE_PROFILE_H

#include "lir/MIR.h"
#include "mexec/Interp.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace profile {

/// One logical CFG edge of the pre-instrumentation function.
struct EdgeInfo {
  uint32_t From;      ///< Source block (== NumBlocks for the virtual entry).
  uint32_t To;        ///< Target block (== NumBlocks for the virtual exit).
  int32_t CounterId;  ///< Counter index, or -1 for spanning-tree edges.
};

/// Instrumentation record for one function.
struct FuncInstrumentation {
  uint32_t NumBlocks = 0; ///< Block count before instrumentation.
  std::vector<EdgeInfo> Edges;
};

/// Instrumentation record for a module.
struct InstrumentationPlan {
  std::vector<FuncInstrumentation> Funcs;
  uint32_t NumCounters = 0;
};

/// Recovered execution counts.
struct ProfileData {
  /// BlockCounts[f][b] for the *original* (uninstrumented) block ids.
  std::vector<std::vector<uint64_t>> BlockCounts;
  uint64_t MaxCount = 0; ///< Paper's x_max: hottest block in the program.

  bool empty() const { return BlockCounts.empty(); }
};

/// Inserts edge counters into \p M in place (new split blocks are
/// appended, so original block ids remain stable) and returns the plan.
InstrumentationPlan instrumentModule(mir::MModule &M);

/// Recovers all block counts from the counter values of a training run.
/// Requires the run to have terminated normally (flow conservation).
ProfileData recoverCounts(const InstrumentationPlan &Plan,
                          const std::vector<uint64_t> &Counters);

/// Stamps \p M (an *uninstrumented* module with the same block structure
/// the plan was built from) with per-block ProfileCount values.
void applyCounts(mir::MModule &M, const ProfileData &Data);

/// Convenience pipeline: clone \p M, instrument the clone, execute it on
/// \p TrainOptions, and recover counts. \p M itself is not modified.
ProfileData profileModule(const mir::MModule &M,
                          const mexec::RunOptions &TrainOptions);

/// Serializes \p Data as a stable text format ("pgsd-profile v1": one
/// `func block count` triple per line), the moral equivalent of the
/// .profdata file a real PGO workflow stores between the training and
/// release builds.
std::string serializeProfile(const ProfileData &Data);

/// Parses serializeProfile output. Returns false (and leaves \p Out
/// empty) on malformed input.
bool deserializeProfile(const std::string &Text, ProfileData &Out);

} // namespace profile
} // namespace pgsd

#endif // PGSD_PROFILE_PROFILE_H
