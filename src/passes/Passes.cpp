//===-- passes/Passes.cpp - Mid-level IR optimizations --------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include <cassert>
#include <optional>
#include <vector>

using namespace pgsd;
using namespace pgsd::ir;

namespace {

/// Wrapping 32-bit arithmetic helpers (the IR has two's-complement
/// semantics; folding must not trip C++ UB).
int32_t wrapAdd(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}
int32_t wrapSub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}
int32_t wrapMul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}

/// Values defined exactly once, by a Const: the propagatable constants of
/// this register-based (non-SSA) IR.
std::vector<std::optional<int32_t>> knownConstants(const Function &F) {
  std::vector<unsigned> DefCount(F.NumValues, 0);
  std::vector<int32_t> ConstVal(F.NumValues, 0);
  std::vector<bool> IsConstDef(F.NumValues, false);

  // Parameters are definitions too.
  for (ValueId V = 0; V != F.NumParams; ++V)
    ++DefCount[V];

  for (const BasicBlock &BB : F.Blocks) {
    for (const Instr &I : BB.Instrs) {
      if (I.Dst == NoValue)
        continue;
      ++DefCount[I.Dst];
      if (I.Op == Opcode::Const) {
        ConstVal[I.Dst] = static_cast<int32_t>(I.Imm);
        IsConstDef[I.Dst] = true;
      } else {
        IsConstDef[I.Dst] = false;
      }
    }
  }

  std::vector<std::optional<int32_t>> Known(F.NumValues);
  for (ValueId V = 0; V != F.NumValues; ++V)
    if (DefCount[V] == 1 && IsConstDef[V])
      Known[V] = ConstVal[V];
  return Known;
}

/// Evaluates a binary opcode over known constants; returns nothing for
/// operations that would trap (division by zero, INT_MIN / -1).
std::optional<int32_t> evalBinary(Opcode Op, int32_t A, int32_t B) {
  switch (Op) {
  case Opcode::Add:
    return wrapAdd(A, B);
  case Opcode::Sub:
    return wrapSub(A, B);
  case Opcode::Mul:
    return wrapMul(A, B);
  case Opcode::Div:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A / B;
  case Opcode::Rem:
    if (B == 0 || (A == INT32_MIN && B == -1))
      return std::nullopt;
    return A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int32_t>(static_cast<uint32_t>(A) << (B & 31));
  case Opcode::AShr:
    return A >> (B & 31); // arithmetic on all sane targets; IA-32 SAR
  case Opcode::CmpEq:
    return A == B;
  case Opcode::CmpNe:
    return A != B;
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  case Opcode::CmpGt:
    return A > B;
  case Opcode::CmpGe:
    return A >= B;
  default:
    return std::nullopt;
  }
}

bool isBinaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return true;
  default:
    return false;
  }
}

/// Rewrites \p I into `Dst = const Value`.
void toConst(Instr &I, int32_t Value) {
  ValueId Dst = I.Dst;
  I = Instr();
  I.Op = Opcode::Const;
  I.Dst = Dst;
  I.Imm = Value;
}

/// Rewrites \p I into `Dst = copy Src`.
void toCopy(Instr &I, ValueId Src) {
  ValueId Dst = I.Dst;
  I = Instr();
  I.Op = Opcode::Copy;
  I.Dst = Dst;
  I.A = Src;
}

/// Applies identities when exactly one operand is a known constant.
/// \returns true when \p I was rewritten.
bool simplifyWithOneConst(Instr &I, std::optional<int32_t> CA,
                          std::optional<int32_t> CB) {
  // Commutative operations: normalize so the constant is on the right.
  ValueId A = I.A;
  ValueId B = I.B;
  if (CA && !CB) {
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      std::swap(A, B);
      std::swap(CA, CB);
      break;
    default:
      return false;
    }
  }
  if (!CB || CA)
    return false;

  int32_t K = *CB;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
    if (K == 0) {
      toCopy(I, A);
      return true;
    }
    return false;
  case Opcode::Mul:
    if (K == 0) {
      toConst(I, 0);
      return true;
    }
    if (K == 1) {
      toCopy(I, A);
      return true;
    }
    return false;
  case Opcode::Div:
    if (K == 1) {
      toCopy(I, A);
      return true;
    }
    return false;
  case Opcode::And:
    if (K == 0) {
      toConst(I, 0);
      return true;
    }
    if (K == -1) {
      toCopy(I, A);
      return true;
    }
    return false;
  case Opcode::Or:
    if (K == 0) {
      toCopy(I, A);
      return true;
    }
    if (K == -1) {
      toConst(I, -1);
      return true;
    }
    return false;
  case Opcode::Xor:
    if (K == 0) {
      toCopy(I, A);
      return true;
    }
    return false;
  case Opcode::Shl:
  case Opcode::AShr:
    if ((K & 31) == 0) {
      toCopy(I, A);
      return true;
    }
    return false;
  default:
    return false;
  }
}

} // namespace

bool passes::foldConstants(Function &F) {
  bool Changed = false;
  bool IterChanged = true;
  // Each iteration may expose new single-def constants; bound the loop
  // defensively (it converges long before this in practice).
  for (unsigned Iter = 0; IterChanged && Iter < 16; ++Iter) {
    IterChanged = false;
    auto Known = knownConstants(F);
    auto Const = [&](ValueId V) -> std::optional<int32_t> {
      return V == NoValue ? std::nullopt : Known[V];
    };

    for (BasicBlock &BB : F.Blocks) {
      for (Instr &I : BB.Instrs) {
        if (isBinaryOp(I.Op)) {
          auto CA = Const(I.A);
          auto CB = Const(I.B);
          if (CA && CB) {
            if (auto R = evalBinary(I.Op, *CA, *CB)) {
              toConst(I, *R);
              IterChanged = true;
            }
            continue;
          }
          if (simplifyWithOneConst(I, CA, CB))
            IterChanged = true;
          continue;
        }
        switch (I.Op) {
        case Opcode::Copy:
          if (auto CA = Const(I.A)) {
            toConst(I, *CA);
            IterChanged = true;
          }
          break;
        case Opcode::Neg:
          if (auto CA = Const(I.A)) {
            toConst(I, wrapSub(0, *CA));
            IterChanged = true;
          }
          break;
        case Opcode::Not:
          if (auto CA = Const(I.A)) {
            toConst(I, ~*CA);
            IterChanged = true;
          }
          break;
        case Opcode::CondBr:
          if (auto CA = Const(I.A)) {
            BlockId Target = *CA != 0 ? I.Succ0 : I.Succ1;
            I = Instr();
            I.Op = Opcode::Br;
            I.Succ0 = Target;
            IterChanged = true;
          } else if (I.Succ0 == I.Succ1) {
            BlockId Target = I.Succ0;
            I = Instr();
            I.Op = Opcode::Br;
            I.Succ0 = Target;
            IterChanged = true;
          }
          break;
        default:
          break;
        }
      }
    }
    Changed |= IterChanged;
  }
  return Changed;
}

bool passes::removeDeadCode(Function &F) {
  bool Changed = false;
  bool IterChanged = true;
  while (IterChanged) {
    IterChanged = false;
    // Collect every value that is read anywhere.
    std::vector<bool> Read(F.NumValues, false);
    auto MarkRead = [&](ValueId V) {
      if (V != NoValue)
        Read[V] = true;
    };
    for (const BasicBlock &BB : F.Blocks) {
      for (const Instr &I : BB.Instrs) {
        MarkRead(I.A);
        MarkRead(I.B);
        for (ValueId Arg : I.Args)
          MarkRead(Arg);
      }
    }

    for (BasicBlock &BB : F.Blocks) {
      size_t Out = 0;
      for (size_t In = 0, E = BB.Instrs.size(); In != E; ++In) {
        Instr &I = BB.Instrs[In];
        bool HasSideEffects = I.Op == Opcode::Store ||
                              I.Op == Opcode::Call || isTerminator(I.Op);
        bool Dead =
            !HasSideEffects && (I.Dst == NoValue || !Read[I.Dst]);
        if (Dead) {
          IterChanged = true;
          continue;
        }
        if (Out != In)
          BB.Instrs[Out] = std::move(I);
        ++Out;
      }
      BB.Instrs.resize(Out);
    }
    Changed |= IterChanged;
  }
  return Changed;
}

bool passes::simplifyCFG(Function &F) {
  bool Changed = false;
  bool IterChanged = true;
  while (IterChanged) {
    IterChanged = false;

    // 1. Thread edges through blocks that contain nothing but `br T`.
    auto RetargetAll = [&](BlockId From, BlockId To) {
      for (BasicBlock &BB : F.Blocks) {
        Instr &T = BB.Instrs.back();
        if (T.Op == Opcode::Br && T.Succ0 == From)
          T.Succ0 = To;
        if (T.Op == Opcode::CondBr) {
          if (T.Succ0 == From)
            T.Succ0 = To;
          if (T.Succ1 == From)
            T.Succ1 = To;
        }
      }
    };
    for (BlockId B = 1, E = static_cast<BlockId>(F.Blocks.size()); B != E;
         ++B) {
      BasicBlock &BB = F.Blocks[B];
      if (BB.Instrs.size() != 1 || BB.Instrs[0].Op != Opcode::Br)
        continue;
      BlockId Target = BB.Instrs[0].Succ0;
      if (Target == B)
        continue; // infinite self-loop; leave it alone
      RetargetAll(B, Target);
      IterChanged = true;
      // The block becomes unreachable and is removed below.
    }

    // 2. Merge straight-line chains: B -> S where S has exactly one
    //    predecessor. (Predecessor counts are recomputed each round.)
    std::vector<unsigned> PredCount(F.Blocks.size(), 0);
    for (const BasicBlock &BB : F.Blocks)
      for (BlockId S : successors(BB))
        ++PredCount[S];
    for (BlockId B = 0, E = static_cast<BlockId>(F.Blocks.size()); B != E;
         ++B) {
      BasicBlock &BB = F.Blocks[B];
      Instr &T = BB.Instrs.back();
      if (T.Op != Opcode::Br)
        continue;
      BlockId S = T.Succ0;
      if (S == B || S == 0 || PredCount[S] != 1)
        continue;
      // Splice S into B.
      BB.Instrs.pop_back();
      BasicBlock &SB = F.Blocks[S];
      for (Instr &I : SB.Instrs)
        BB.Instrs.push_back(std::move(I));
      // Leave S as an unreachable `br S` husk, swept below.
      SB.Instrs.clear();
      Instr Husk;
      Husk.Op = Opcode::Br;
      Husk.Succ0 = S;
      SB.Instrs.push_back(Husk);
      IterChanged = true;
    }

    // 3. Drop unreachable blocks and compact indices.
    std::vector<bool> Reachable(F.Blocks.size(), false);
    std::vector<BlockId> Work = {0};
    Reachable[0] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId S : successors(F.Blocks[B]))
        if (!Reachable[S]) {
          Reachable[S] = true;
          Work.push_back(S);
        }
    }
    bool AnyUnreachable = false;
    for (bool R : Reachable)
      if (!R)
        AnyUnreachable = true;
    if (AnyUnreachable) {
      std::vector<BlockId> NewId(F.Blocks.size(), NoBlock);
      std::vector<BasicBlock> NewBlocks;
      NewBlocks.reserve(F.Blocks.size());
      for (BlockId B = 0, E = static_cast<BlockId>(F.Blocks.size()); B != E;
           ++B) {
        if (!Reachable[B])
          continue;
        NewId[B] = static_cast<BlockId>(NewBlocks.size());
        NewBlocks.push_back(std::move(F.Blocks[B]));
      }
      for (BasicBlock &BB : NewBlocks) {
        Instr &T = BB.Instrs.back();
        if (T.Op == Opcode::Br)
          T.Succ0 = NewId[T.Succ0];
        if (T.Op == Opcode::CondBr) {
          T.Succ0 = NewId[T.Succ0];
          T.Succ1 = NewId[T.Succ1];
        }
      }
      F.Blocks = std::move(NewBlocks);
      IterChanged = true;
    }

    Changed |= IterChanged;
  }
  return Changed;
}

void passes::optimize(ir::Module &M) {
  assert(ir::verify(M).empty() && "module must verify before optimize");
  for (Function &F : M.Functions) {
    bool Changed = true;
    for (unsigned Iter = 0; Changed && Iter < 8; ++Iter) {
      Changed = false;
      Changed |= foldConstants(F);
      Changed |= removeDeadCode(F);
      Changed |= simplifyCFG(F);
    }
  }
  assert(ir::verify(M).empty() && "optimize broke the module");
}
