//===-- passes/Passes.h - Mid-level IR optimizations -------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "IR Optimizations" stage of the paper's Figure 3. The evaluation
/// compiled SPEC at -O2; this pipeline provides the equivalent standard
/// cleanups for our IR so the backend sees optimized code: constant
/// folding with algebraic simplification, dead-code elimination, and CFG
/// simplification (unreachable-block removal, jump threading, block
/// merging).
///
/// Correctness matters more than strength here: the paper's contribution
/// is measured *after* -O2, and what the NOP pass needs from the mid-end
/// is a realistic instruction mix and block structure.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_PASSES_PASSES_H
#define PGSD_PASSES_PASSES_H

#include "ir/IR.h"

namespace pgsd {
namespace passes {

/// Folds single-definition constants through arithmetic, applies
/// algebraic identities (x+0, x*1, x*0, x^0, shifts by 0, ...), and
/// turns conditional branches on known conditions into direct branches.
/// \returns true when anything changed.
bool foldConstants(ir::Function &F);

/// Deletes side-effect-free instructions whose results are never read.
/// \returns true when anything changed.
bool removeDeadCode(ir::Function &F);

/// Removes unreachable blocks, threads trivial `br`-only blocks, merges
/// single-predecessor/single-successor chains, and collapses conditional
/// branches whose targets coincide. \returns true when anything changed.
bool simplifyCFG(ir::Function &F);

/// Runs the -O2-style pipeline over every function to a fixpoint
/// (bounded). The module must verify before and will verify after.
void optimize(ir::Module &M);

} // namespace passes
} // namespace pgsd

#endif // PGSD_PASSES_PASSES_H
