//===-- lir/RegPlan.h - Register planning / frame layout ---------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation for the backend ("even more optimizations (such as
/// register allocation)" in the paper's Section 4 pipeline description).
///
/// The planner computes IR-value liveness by iterative dataflow, builds
/// conservative live-interval hulls over a linearized block order, and
/// greedily assigns the hottest non-overlapping values to the IA-32
/// callee-saved registers (EBX/ESI/EDI). Everything else receives a frame
/// slot; EAX/ECX/EDX remain free as instruction-selection scratch (EAX
/// additionally carries return values, ECX shift counts, EDX division
/// high halves). Loop depth is estimated from retreating edges so loop
/// counters win registers -- that is what makes hot loops genuinely hot,
/// which the profile-guided NOP heuristic then exploits.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_LIR_REGPLAN_H
#define PGSD_LIR_REGPLAN_H

#include "ir/IR.h"
#include "x86/X86.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace lir {

/// Where one IR value lives for the whole function.
struct ValueLoc {
  bool InReg = false;
  x86::Reg R = x86::Reg::EBX; ///< Valid when InReg.
  int32_t FrameDisp = 0;      ///< EBP-relative home slot (also for params).
};

/// Complete frame/register plan for one function.
struct FramePlan {
  std::vector<ValueLoc> Values;    ///< Indexed by ir::ValueId.
  std::vector<int32_t> ObjectDisp; ///< EBP-relative, per frame object.
  uint32_t FrameBytes = 0;         ///< Locals + spills below EBP.
  /// Lowest EBP-relative displacement of any scalar value slot; frame
  /// objects sit strictly below it.
  int32_t ValueSlotsLowDisp = 0;
  bool UsesEbx = false;
  bool UsesEsi = false;
  bool UsesEdi = false;

  /// Estimated loop depth per block (0 = not in a loop).
  std::vector<uint32_t> LoopDepth;
};

/// Computes per-block liveness (LiveIn sets) for \p F; exposed for tests.
/// Result[b] is a bitset over ValueIds.
std::vector<std::vector<bool>> computeLiveIn(const ir::Function &F);

/// Builds the register/frame plan for \p F.
FramePlan planFunction(const ir::Function &F);

} // namespace lir
} // namespace pgsd

#endif // PGSD_LIR_REGPLAN_H
