//===-- lir/MIR.cpp - Low-level machine IR (IA-32) -------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "lir/MIR.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::mir;
using x86::Reg;

const char *mir::mopName(MOp Op) {
  switch (Op) {
  case MOp::MovRR:
    return "mov";
  case MOp::MovRI:
    return "movi";
  case MOp::MovGlobal:
    return "movglobal";
  case MOp::Load:
    return "load";
  case MOp::Store:
    return "store";
  case MOp::LoadFrame:
    return "loadframe";
  case MOp::StoreFrame:
    return "storeframe";
  case MOp::LeaFrame:
    return "leaframe";
  case MOp::AluRR:
    return "alurr";
  case MOp::AluRI:
    return "aluri";
  case MOp::ImulRR:
    return "imul";
  case MOp::Cdq:
    return "cdq";
  case MOp::Idiv:
    return "idiv";
  case MOp::Neg:
    return "neg";
  case MOp::Not:
    return "not";
  case MOp::ShiftRI:
    return "shiftri";
  case MOp::ShiftRC:
    return "shiftrc";
  case MOp::TestRR:
    return "test";
  case MOp::Setcc:
    return "setcc";
  case MOp::Movzx8:
    return "movzx8";
  case MOp::Push:
    return "push";
  case MOp::PushI:
    return "pushi";
  case MOp::Pop:
    return "pop";
  case MOp::AdjustSP:
    return "adjustsp";
  case MOp::Call:
    return "call";
  case MOp::Jmp:
    return "jmp";
  case MOp::Jcc:
    return "jcc";
  case MOp::Ret:
    return "ret";
  case MOp::Nop:
    return "nop";
  case MOp::ProfInc:
    return "profinc";
  }
  return "<bad>";
}

bool mir::isMTerminator(MOp Op) {
  return Op == MOp::Jmp || Op == MOp::Jcc || Op == MOp::Ret;
}

std::vector<uint32_t> MFunction::successors(uint32_t B) const {
  assert(B < Blocks.size() && "block out of range");
  std::vector<uint32_t> Succs;
  const MBasicBlock &BB = Blocks[B];
  bool SeenJmpOrRet = false;
  for (const MInstr &I : BB.Instrs) {
    if (I.Op == MOp::Jcc)
      Succs.push_back(static_cast<uint32_t>(I.Imm));
    else if (I.Op == MOp::Jmp) {
      Succs.push_back(static_cast<uint32_t>(I.Imm));
      SeenJmpOrRet = true;
    } else if (I.Op == MOp::Ret) {
      SeenJmpOrRet = true;
    }
  }
  if (!SeenJmpOrRet && B + 1 < Blocks.size())
    Succs.push_back(B + 1); // fallthrough
  return Succs;
}

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

const char *aluName(x86::AluOp Op) {
  switch (Op) {
  case x86::AluOp::Add:
    return "add";
  case x86::AluOp::Or:
    return "or";
  case x86::AluOp::Adc:
    return "adc";
  case x86::AluOp::Sbb:
    return "sbb";
  case x86::AluOp::And:
    return "and";
  case x86::AluOp::Sub:
    return "sub";
  case x86::AluOp::Xor:
    return "xor";
  case x86::AluOp::Cmp:
    return "cmp";
  }
  return "<bad>";
}

const char *shiftName(x86::ShiftOp Op) {
  switch (Op) {
  case x86::ShiftOp::Shl:
    return "shl";
  case x86::ShiftOp::Shr:
    return "shr";
  case x86::ShiftOp::Sar:
    return "sar";
  }
  return "<bad>";
}

} // namespace

std::string mir::printInstr(const MInstr &I) {
  std::string Out;
  switch (I.Op) {
  case MOp::MovRR:
    appendf(Out, "mov %s, %s", regName(I.Dst), regName(I.Src));
    break;
  case MOp::MovRI:
    appendf(Out, "mov %s, %d", regName(I.Dst), I.Imm);
    break;
  case MOp::MovGlobal:
    appendf(Out, "mov %s, offset global#%d", regName(I.Dst), I.Imm);
    break;
  case MOp::Load:
    appendf(Out, "mov %s, [%s%+d]", regName(I.Dst), regName(I.Src),
            I.Imm);
    break;
  case MOp::Store:
    appendf(Out, "mov [%s%+d], %s", regName(I.Dst), I.Imm,
            regName(I.Src));
    break;
  case MOp::LoadFrame:
    appendf(Out, "mov %s, [ebp%+d]", regName(I.Dst), I.Imm);
    break;
  case MOp::StoreFrame:
    appendf(Out, "mov [ebp%+d], %s", I.Imm, regName(I.Src));
    break;
  case MOp::LeaFrame:
    appendf(Out, "lea %s, [ebp%+d]", regName(I.Dst), I.Imm);
    break;
  case MOp::AluRR:
    appendf(Out, "%s %s, %s", aluName(I.Alu), regName(I.Dst),
            regName(I.Src));
    break;
  case MOp::AluRI:
    appendf(Out, "%s %s, %d", aluName(I.Alu), regName(I.Dst), I.Imm);
    break;
  case MOp::ImulRR:
    appendf(Out, "imul %s, %s", regName(I.Dst), regName(I.Src));
    break;
  case MOp::Cdq:
    Out += "cdq";
    break;
  case MOp::Idiv:
    appendf(Out, "idiv %s", regName(I.Src));
    break;
  case MOp::Neg:
    appendf(Out, "neg %s", regName(I.Dst));
    break;
  case MOp::Not:
    appendf(Out, "not %s", regName(I.Dst));
    break;
  case MOp::ShiftRI:
    appendf(Out, "%s %s, %d", shiftName(I.Shift), regName(I.Dst),
            I.Imm);
    break;
  case MOp::ShiftRC:
    appendf(Out, "%s %s, cl", shiftName(I.Shift), regName(I.Dst));
    break;
  case MOp::TestRR:
    appendf(Out, "test %s, %s", regName(I.Dst), regName(I.Src));
    break;
  case MOp::Setcc:
    appendf(Out, "set%s %s(8)", condName(I.CC), regName(I.Dst));
    break;
  case MOp::Movzx8:
    appendf(Out, "movzx %s, %s(8)", regName(I.Dst), regName(I.Src));
    break;
  case MOp::Push:
    appendf(Out, "push %s", regName(I.Src));
    break;
  case MOp::PushI:
    appendf(Out, "push %d", I.Imm);
    break;
  case MOp::Pop:
    appendf(Out, "pop %s", regName(I.Dst));
    break;
  case MOp::AdjustSP:
    appendf(Out, "add esp, %d", I.Imm);
    break;
  case MOp::Call:
    if (I.Target.IsIntrinsic)
      appendf(Out, "call %s", ir::intrinsicName(I.Target.Intr));
    else
      appendf(Out, "call func#%u", I.Target.Func);
    break;
  case MOp::Jmp:
    appendf(Out, "jmp mbb%d", I.Imm);
    break;
  case MOp::Jcc:
    appendf(Out, "j%s mbb%d", condName(I.CC), I.Imm);
    break;
  case MOp::Ret:
    Out += "ret";
    break;
  case MOp::Nop:
    appendf(Out, "nop ; %s", x86::nopInfo(I.NopK).Mnemonic);
    break;
  case MOp::ProfInc:
    appendf(Out, "add dword [counter#%d], 1", I.Imm);
    break;
  }
  return Out;
}

std::string mir::print(const MModule &M) {
  std::string Out;
  for (const MFunction &F : M.Functions) {
    appendf(Out, "mfunc %s: frame=%u%s%s%s\n", F.Name.c_str(), F.FrameBytes,
            F.UsesEbx ? " ebx" : "", F.UsesEsi ? " esi" : "",
            F.UsesEdi ? " edi" : "");
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      const MBasicBlock &BB = F.Blocks[B];
      appendf(Out, "mbb%u:  ; %s count=%llu\n", B, BB.Name.c_str(),
              static_cast<unsigned long long>(BB.ProfileCount));
      for (const MInstr &I : BB.Instrs) {
        Out += "  ";
        Out += printInstr(I);
        Out += '\n';
      }
    }
  }
  return Out;
}

std::string mir::verify(const MModule &M) {
  std::string Problem;
  for (const MFunction &F : M.Functions) {
    if (F.Blocks.empty())
      return F.Name + ": machine function has no blocks";
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      const MBasicBlock &BB = F.Blocks[B];
      bool InBranchGroup = false;
      bool Ended = false;
      for (const MInstr &I : BB.Instrs) {
        if (Ended) {
          appendf(Problem, "%s: mbb%u: instruction after jmp/ret",
                  F.Name.c_str(), B);
          return Problem;
        }
        if (I.Op == MOp::Jcc) {
          InBranchGroup = true;
        } else if (I.Op == MOp::Jmp || I.Op == MOp::Ret) {
          Ended = true;
        } else if (InBranchGroup && I.Op != MOp::Nop) {
          // NOPs may be interleaved with branches by the diversity pass.
          appendf(Problem, "%s: mbb%u: non-branch after jcc",
                  F.Name.c_str(), B);
          return Problem;
        }
        if ((I.Op == MOp::Jmp || I.Op == MOp::Jcc) &&
            (I.Imm < 0 || static_cast<size_t>(I.Imm) >= F.Blocks.size())) {
          appendf(Problem, "%s: mbb%u: branch target out of range",
                  F.Name.c_str(), B);
          return Problem;
        }
        if ((I.Op == MOp::Setcc && x86::regNum(I.Dst) >= 4) ||
            (I.Op == MOp::Movzx8 && x86::regNum(I.Src) >= 4)) {
          appendf(Problem, "%s: mbb%u: 8-bit subregister constraint",
                  F.Name.c_str(), B);
          return Problem;
        }
        if (I.Op == MOp::Call && !I.Target.IsIntrinsic &&
            I.Target.Func >= M.Functions.size()) {
          appendf(Problem, "%s: mbb%u: call target out of range",
                  F.Name.c_str(), B);
          return Problem;
        }
        if (I.Op == MOp::ProfInc &&
            (I.Imm < 0 ||
             static_cast<uint32_t>(I.Imm) >= M.NumProfCounters)) {
          appendf(Problem, "%s: mbb%u: counter index out of range",
                  F.Name.c_str(), B);
          return Problem;
        }
      }
      // The final block may not fall off the end of the function.
      if (!Ended && B + 1 == F.Blocks.size()) {
        appendf(Problem, "%s: last block falls through function end",
                F.Name.c_str());
        return Problem;
      }
    }
  }
  return Problem;
}
