//===-- lir/RegPlan.cpp - Register planning / frame layout ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "lir/RegPlan.h"

#include <algorithm>
#include <cassert>

using namespace pgsd;
using namespace pgsd::lir;
using namespace pgsd::ir;

namespace {

/// Calls \p Fn for every value read by \p I.
template <typename Callback>
void forEachUse(const Instr &I, Callback Fn) {
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::GlobalAddr:
  case Opcode::FrameAddr:
    break;
  case Opcode::Copy:
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::Load:
    Fn(I.A);
    break;
  case Opcode::Store:
    Fn(I.A);
    Fn(I.B);
    break;
  case Opcode::Call:
    for (ValueId Arg : I.Args)
      Fn(Arg);
    break;
  case Opcode::Br:
    break;
  case Opcode::CondBr:
    Fn(I.A);
    break;
  case Opcode::Ret:
    if (I.A != NoValue)
      Fn(I.A);
    break;
  default: // binary arithmetic / comparisons
    Fn(I.A);
    Fn(I.B);
    break;
  }
}

/// Returns the value written by \p I, or NoValue.
ValueId defOf(const Instr &I) {
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return NoValue;
  default:
    return I.Dst; // Call may also return NoValue
  }
}

} // namespace

std::vector<std::vector<bool>> lir::computeLiveIn(const Function &F) {
  size_t NumBlocks = F.Blocks.size();
  size_t NumValues = F.NumValues;

  // Per-block USE (read before any write) and DEF sets.
  std::vector<std::vector<bool>> Use(NumBlocks,
                                     std::vector<bool>(NumValues, false));
  std::vector<std::vector<bool>> Def(NumBlocks,
                                     std::vector<bool>(NumValues, false));
  for (size_t B = 0; B != NumBlocks; ++B) {
    for (const Instr &I : F.Blocks[B].Instrs) {
      forEachUse(I, [&](ValueId V) {
        if (!Def[B][V])
          Use[B][V] = true;
      });
      if (ValueId D = defOf(I); D != NoValue)
        Def[B][D] = true;
    }
  }

  std::vector<std::vector<bool>> LiveIn(NumBlocks,
                                        std::vector<bool>(NumValues, false));
  std::vector<std::vector<bool>> LiveOut(NumBlocks,
                                         std::vector<bool>(NumValues, false));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B-- > 0;) {
      // LiveOut = union of successor LiveIn.
      for (BlockId S : successors(F.Blocks[B]))
        for (size_t V = 0; V != NumValues; ++V)
          if (LiveIn[S][V] && !LiveOut[B][V]) {
            LiveOut[B][V] = true;
            Changed = true;
          }
      // LiveIn = Use | (LiveOut & ~Def).
      for (size_t V = 0; V != NumValues; ++V) {
        bool In = Use[B][V] || (LiveOut[B][V] && !Def[B][V]);
        if (In && !LiveIn[B][V]) {
          LiveIn[B][V] = true;
          Changed = true;
        }
      }
    }
  }
  return LiveIn;
}

FramePlan lir::planFunction(const Function &F) {
  FramePlan Plan;
  size_t NumValues = F.NumValues;
  size_t NumBlocks = F.Blocks.size();
  Plan.Values.resize(NumValues);

  // --- Loop depth from retreating edges. Lowering and simplifyCFG keep
  // loop headers before their bodies in block order, so an edge B -> H
  // with H <= B closes a loop spanning [H, B].
  Plan.LoopDepth.assign(NumBlocks, 0);
  for (size_t B = 0; B != NumBlocks; ++B)
    for (BlockId S : successors(F.Blocks[B]))
      if (S <= B)
        for (size_t Inner = S; Inner <= B; ++Inner)
          ++Plan.LoopDepth[Inner];

  // --- Liveness and interval hulls over a linear numbering.
  auto LiveIn = computeLiveIn(F);
  // Recompute LiveOut from LiveIn for hull building.
  std::vector<std::vector<bool>> LiveOut(NumBlocks,
                                         std::vector<bool>(NumValues, false));
  for (size_t B = 0; B != NumBlocks; ++B)
    for (BlockId S : successors(F.Blocks[B]))
      for (size_t V = 0; V != NumValues; ++V)
        if (LiveIn[S][V])
          LiveOut[B][V] = true;

  constexpr uint32_t NoPos = ~uint32_t(0);
  std::vector<uint32_t> Start(NumValues, NoPos);
  std::vector<uint32_t> End(NumValues, 0);
  std::vector<uint64_t> Weight(NumValues, 0);
  std::vector<uint32_t> RawCount(NumValues, 0);
  auto Extend = [&](ValueId V, uint32_t Pos) {
    if (Start[V] == NoPos || Pos < Start[V])
      Start[V] = Pos;
    if (Pos > End[V])
      End[V] = Pos;
  };

  uint32_t Pos = 0;
  // Parameters are defined at function entry.
  for (ValueId V = 0; V != F.NumParams; ++V)
    Extend(V, 0);
  for (size_t B = 0; B != NumBlocks; ++B) {
    uint32_t BlockStart = Pos;
    // Weight uses by estimated loop depth (capped to avoid overflow).
    uint32_t Depth = std::min(Plan.LoopDepth[B], 6u);
    uint64_t UseWeight = 1;
    for (uint32_t D = 0; D != Depth; ++D)
      UseWeight *= 10;

    for (const Instr &I : F.Blocks[B].Instrs) {
      forEachUse(I, [&](ValueId V) {
        Extend(V, Pos);
        Weight[V] += UseWeight;
        ++RawCount[V];
      });
      if (ValueId D = defOf(I); D != NoValue) {
        Extend(D, Pos);
        Weight[D] += UseWeight;
        ++RawCount[D];
      }
      ++Pos;
    }
    uint32_t BlockEnd = Pos == BlockStart ? BlockStart : Pos - 1;
    for (size_t V = 0; V != NumValues; ++V) {
      if (LiveIn[B][V])
        Extend(static_cast<ValueId>(V), BlockStart);
      if (LiveOut[B][V])
        Extend(static_cast<ValueId>(V), BlockEnd);
    }
  }

  // --- Greedy promotion to callee-saved registers by descending weight.
  struct Candidate {
    ValueId V;
    uint64_t W;
  };
  // Single-use temporaries (one def + one use) flow through the scratch
  // registers anyway; promoting them only adds register moves and steals
  // callee-saved registers from genuinely reused values.
  std::vector<Candidate> Candidates;
  for (size_t V = 0; V != NumValues; ++V)
    if (Start[V] != NoPos && Weight[V] > 1 && RawCount[V] >= 3)
      Candidates.push_back({static_cast<ValueId>(V), Weight[V]});
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.W != B.W)
                return A.W > B.W;
              return A.V < B.V; // deterministic tie-break
            });

  const x86::Reg Pool[3] = {x86::Reg::EBX, x86::Reg::ESI, x86::Reg::EDI};
  std::vector<std::pair<uint32_t, uint32_t>> Assigned[3];
  for (const Candidate &C : Candidates) {
    for (unsigned R = 0; R != 3; ++R) {
      bool Overlaps = false;
      for (auto [S, E] : Assigned[R])
        if (Start[C.V] <= E && S <= End[C.V]) {
          Overlaps = true;
          break;
        }
      if (Overlaps)
        continue;
      Assigned[R].push_back({Start[C.V], End[C.V]});
      Plan.Values[C.V].InReg = true;
      Plan.Values[C.V].R = Pool[R];
      break;
    }
  }
  Plan.UsesEbx = !Assigned[0].empty();
  Plan.UsesEsi = !Assigned[1].empty();
  Plan.UsesEdi = !Assigned[2].empty();

  // --- Frame layout. Incoming arguments live at positive offsets; every
  // value keeps a home slot (promoted parameters are loaded from theirs
  // in the prologue), locals and spills grow downward.
  int32_t NextSlot = 0;
  for (size_t V = 0; V != NumValues; ++V) {
    if (V < F.NumParams) {
      Plan.Values[V].FrameDisp = 8 + 4 * static_cast<int32_t>(V);
      continue;
    }
    NextSlot -= 4;
    Plan.Values[V].FrameDisp = NextSlot;
  }
  Plan.ValueSlotsLowDisp = NextSlot;
  Plan.ObjectDisp.resize(F.FrameObjects.size());
  for (size_t O = 0; O != F.FrameObjects.size(); ++O) {
    uint32_t Size = (F.FrameObjects[O].SizeBytes + 3u) & ~3u;
    NextSlot -= static_cast<int32_t>(Size);
    Plan.ObjectDisp[O] = NextSlot;
  }
  Plan.FrameBytes = static_cast<uint32_t>(-NextSlot);
  return Plan;
}
