//===-- lir/MIR.h - Low-level machine IR (IA-32) -----------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level representation ("LR" in the paper's Figure 3). Machine
/// instructions here correspond one-to-one to IA-32 instructions emitted
/// by codegen/Emitter -- the property the paper relies on when inserting
/// NOPs at this stage: "most LR operations in a compiler have a
/// one-to-one correspondence to the native code instructions in the
/// object files" (Section 4).
///
/// All register operands are physical IA-32 registers: instruction
/// selection runs after the register planner has decided which IR values
/// live in callee-saved registers and which in frame slots, so no virtual
/// registers survive to this level. Three passes operate on MIR before
/// emission: peephole cleanup, profile instrumentation (profile/), and
/// the paper's NOP insertion (diversity/).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_LIR_MIR_H
#define PGSD_LIR_MIR_H

#include "ir/IR.h"
#include "x86/Encoder.h"
#include "x86/Nops.h"
#include "x86/X86.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace mir {

/// Machine opcodes. Every non-pseudo opcode encodes to exactly one IA-32
/// instruction.
enum class MOp : uint8_t {
  MovRR,     ///< mov Dst, Src
  MovRI,     ///< mov Dst, Imm
  MovGlobal, ///< mov Dst, offset global#Imm (imm32 with relocation)
  Load,      ///< mov Dst, [Src + Imm]
  Store,     ///< mov [Dst + Imm], Src
  LoadFrame, ///< mov Dst, [ebp + Imm]
  StoreFrame,///< mov [ebp + Imm], Src
  LeaFrame,  ///< lea Dst, [ebp + Imm]
  AluRR,     ///< alu Dst, Src (Alu field: add/sub/and/or/xor/cmp)
  AluRI,     ///< alu Dst, Imm
  ImulRR,    ///< imul Dst, Src
  Cdq,       ///< cdq (EAX -> EDX:EAX)
  Idiv,      ///< idiv Src (EDX:EAX / Src -> EAX rem EDX)
  Neg,       ///< neg Dst
  Not,       ///< not Dst
  ShiftRI,   ///< shift Dst, Imm (Shift field)
  ShiftRC,   ///< shift Dst, CL
  TestRR,    ///< test Dst, Src
  Setcc,     ///< setCC Dst8 (Dst must have an 8-bit subregister)
  Movzx8,    ///< movzx Dst, Src8
  Push,      ///< push Src
  PushI,     ///< push Imm
  Pop,       ///< pop Dst
  AdjustSP,  ///< add esp, Imm (argument cleanup)
  Call,      ///< call Target (direct, rel32)
  Jmp,       ///< jmp block #Imm
  Jcc,       ///< jCC block #Imm
  Ret,       ///< ret (the emitter expands the epilogue before it)
  Nop,       ///< one NOP from paper Table 1 (NopKind field)
  ProfInc,   ///< pseudo: add dword [counter #Imm], 1 (edge profiling)
};

/// Returns a stable mnemonic for \p Op.
const char *mopName(MOp Op);

/// One machine instruction. Field use depends on MOp (see MOp docs);
/// unused fields hold defaults.
struct MInstr {
  MOp Op = MOp::Nop;
  x86::Reg Dst = x86::Reg::EAX;
  x86::Reg Src = x86::Reg::EAX;
  int32_t Imm = 0; ///< Immediate / frame disp / block id / counter id.
  x86::AluOp Alu = x86::AluOp::Add;
  x86::ShiftOp Shift = x86::ShiftOp::Shl;
  x86::CondCode CC = x86::CondCode::E;
  x86::NopKind NopK = x86::NopKind::Nop90;
  ir::Callee Target; ///< For Call.
};

/// Returns true for Jmp/Jcc/Ret.
bool isMTerminator(MOp Op);

/// A machine basic block. Control transfers appear only in the trailing
/// branch group: zero or more Jcc followed by at most one Jmp, or a Ret.
/// Execution falls through to the next block when no Jmp/Ret is present.
struct MBasicBlock {
  std::string Name;
  std::vector<MInstr> Instrs;
  uint64_t ProfileCount = 0; ///< Execution count, once profiling ran.
};

/// A machine function.
struct MFunction {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t FrameBytes = 0;       ///< Locals + spill area below EBP.
  /// Lowest (most negative) EBP-relative displacement used by scalar
  /// value slots; frame *objects* (arrays, reachable through LeaFrame
  /// pointers) live strictly below this. Lets the peephole prove a
  /// StoreFrame dead without aliasing concerns.
  int32_t ValueSlotsLowDisp = 0;
  bool UsesEbx = false;          ///< Callee-saved registers to preserve.
  bool UsesEsi = false;
  bool UsesEdi = false;
  std::vector<MBasicBlock> Blocks;

  /// Successor block ids of block \p B, in branch order; the fallthrough
  /// successor (when the block does not end in Jmp/Ret) comes last.
  std::vector<uint32_t> successors(uint32_t B) const;
};

/// A machine module: functions plus the global memory image layout.
struct MModule {
  std::string Name;
  std::vector<MFunction> Functions;
  std::vector<ir::Global> Globals; ///< Copied from the IR module.
  int EntryFunction = -1;          ///< Index of main.
  uint32_t NumProfCounters = 0;    ///< Edge counters when instrumented.
};

/// Renders one instruction in the same assembler-like syntax print()
/// uses for whole modules ("mov eax, ecx", "jl mbb3", ...). Diagnostics
/// from the static analyzer embed this next to the instruction's
/// function/block/index coordinates.
std::string printInstr(const MInstr &I);

/// Renders \p M as text for tests and debugging.
std::string print(const MModule &M);

/// Structural validity check; empty string when OK. Verifies branch
/// grouping (control flow only in the trailing branch group), block id
/// ranges, SETcc/MOVZX subregister constraints, and frame-slot alignment.
std::string verify(const MModule &M);

} // namespace mir
} // namespace pgsd

#endif // PGSD_LIR_MIR_H
