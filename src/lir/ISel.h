//===-- lir/ISel.h - IR to machine-IR instruction selection ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the mid-level IR to IA-32 machine IR (the "LR Gen" arrow of the
/// paper's Figure 3) using the register/frame plan from RegPlan.h.
///
/// Calling convention (cdecl-like): arguments pushed right-to-left,
/// caller cleans the stack, result in EAX, EBX/ESI/EDI callee-saved,
/// EAX/ECX/EDX scratch.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_LIR_ISEL_H
#define PGSD_LIR_ISEL_H

#include "ir/IR.h"
#include "lir/MIR.h"

namespace pgsd {
namespace lir {

/// Lowers \p M to machine IR. \p M must verify.
mir::MModule selectInstructions(const ir::Module &M);

/// Local cleanup over the selected code: forwards freshly stored values
/// instead of reloading them (`mov [ebp+d], eax; mov ecx, [ebp+d]`
/// becomes `mov [ebp+d], eax; mov ecx, eax`), removes self-moves, and
/// drops reloads of a register that already holds the slot's value.
/// \returns number of instructions changed or removed.
unsigned peephole(mir::MModule &M);

} // namespace lir
} // namespace pgsd

#endif // PGSD_LIR_ISEL_H
