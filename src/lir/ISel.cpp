//===-- lir/ISel.cpp - IR to machine-IR instruction selection -------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "lir/ISel.h"

#include "lir/RegPlan.h"
#include "obs/Metrics.h"

#include <cassert>
#include <map>
#include <set>

using namespace pgsd;
using namespace pgsd::lir;
using namespace pgsd::ir;
using mir::MInstr;
using mir::MOp;
using x86::Reg;

namespace {

/// Register allocation is the one costly sub-stage of selection; time it
/// separately so metrics.json can break "isel" down further. The span is
/// inert (no clock reads) while telemetry is disabled.
auto timedPlanFunction(const Function &Fn) {
  obs::Span S("pipeline.regalloc");
  return planFunction(Fn);
}

class Selector {
public:
  Selector(const ir::Module &Mod, const Function &Fn, mir::MFunction &Out)
      : M(Mod), F(Fn), MF(Out), Plan(timedPlanFunction(Fn)) {
    computeKnownConstants();
  }

  void run();

private:
  MInstr &emit(MOp Op) {
    CurBB->Instrs.emplace_back();
    MInstr &I = CurBB->Instrs.back();
    I.Op = Op;
    return I;
  }

  void emitMovRR(Reg Dst, Reg Src) {
    if (Dst == Src)
      return;
    MInstr &I = emit(MOp::MovRR);
    I.Dst = Dst;
    I.Src = Src;
  }

  /// Single-definition constant values can fold into immediate operand
  /// forms (the -O2 code quality the paper's baseline has).
  void computeKnownConstants() {
    std::vector<unsigned> DefCount(F.NumValues, 0);
    std::vector<bool> IsConst(F.NumValues, false);
    KnownConst.assign(F.NumValues, 0);
    for (ValueId V = 0; V != F.NumParams; ++V)
      ++DefCount[V];
    for (const ir::BasicBlock &BB : F.Blocks)
      for (const Instr &I : BB.Instrs) {
        ValueId D;
        switch (I.Op) {
        case Opcode::Store:
        case Opcode::Br:
        case Opcode::CondBr:
        case Opcode::Ret:
          continue;
        default:
          D = I.Dst;
          break;
        }
        if (D == NoValue)
          continue;
        ++DefCount[D];
        IsConst[D] = I.Op == Opcode::Const;
        if (IsConst[D])
          KnownConst[D] = static_cast<int32_t>(I.Imm);
      }
    HasConst.assign(F.NumValues, false);
    for (ValueId V = 0; V != F.NumValues; ++V)
      HasConst[V] = DefCount[V] == 1 && IsConst[V];

    // Use counts, to prove a comparison feeds only its branch.
    UseCount.assign(F.NumValues, 0);
    auto Count = [&](ValueId V) {
      if (V != NoValue)
        ++UseCount[V];
    };
    for (const ir::BasicBlock &BB : F.Blocks)
      for (const Instr &I : BB.Instrs) {
        switch (I.Op) {
        case Opcode::Const:
        case Opcode::GlobalAddr:
        case Opcode::FrameAddr:
        case Opcode::Br:
          break;
        case Opcode::Copy:
        case Opcode::Neg:
        case Opcode::Not:
        case Opcode::Load:
        case Opcode::CondBr:
          Count(I.A);
          break;
        case Opcode::Store:
          Count(I.A);
          Count(I.B);
          break;
        case Opcode::Call:
          for (ValueId Arg : I.Args)
            Count(Arg);
          break;
        case Opcode::Ret:
          Count(I.A);
          break;
        default:
          Count(I.A);
          Count(I.B);
          break;
        }
      }
  }

  /// Returns true (and the value) when \p V is a foldable constant.
  bool constOf(ValueId V, int32_t &Out) const {
    if (!HasConst[V])
      return false;
    Out = KnownConst[V];
    return true;
  }

  /// Returns a register holding value \p V for *read-only* use: the
  /// planned register when promoted, otherwise a load (or immediate
  /// materialization) into \p Scratch.
  Reg operandReg(ValueId V, Reg Scratch) {
    int32_t K;
    if (constOf(V, K)) {
      MInstr &I = emit(MOp::MovRI);
      I.Dst = Scratch;
      I.Imm = K;
      return Scratch;
    }
    const ValueLoc &Loc = Plan.Values[V];
    if (Loc.InReg)
      return Loc.R;
    MInstr &I = emit(MOp::LoadFrame);
    I.Dst = Scratch;
    I.Imm = Loc.FrameDisp;
    return Scratch;
  }

  /// Loads value \p V into exactly \p Dst (copying when promoted).
  void loadTo(Reg Dst, ValueId V) {
    int32_t K;
    if (constOf(V, K)) {
      MInstr &I = emit(MOp::MovRI);
      I.Dst = Dst;
      I.Imm = K;
      return;
    }
    const ValueLoc &Loc = Plan.Values[V];
    if (Loc.InReg) {
      emitMovRR(Dst, Loc.R);
      return;
    }
    MInstr &I = emit(MOp::LoadFrame);
    I.Dst = Dst;
    I.Imm = Loc.FrameDisp;
  }

  /// Stores register \p Src into value \p V's home.
  void writeValue(ValueId V, Reg Src) {
    const ValueLoc &Loc = Plan.Values[V];
    if (Loc.InReg) {
      emitMovRR(Loc.R, Src);
      return;
    }
    MInstr &I = emit(MOp::StoreFrame);
    I.Src = Src;
    I.Imm = Loc.FrameDisp;
  }

  /// Emits `cmp` setting flags for comparison instruction \p I.
  void emitCompare(const Instr &I) {
    loadTo(Reg::EAX, I.A);
    int32_t K;
    if (constOf(I.B, K)) {
      MInstr &Cmp = emit(MOp::AluRI);
      Cmp.Alu = x86::AluOp::Cmp;
      Cmp.Dst = Reg::EAX;
      Cmp.Imm = K;
    } else {
      Reg B = operandReg(I.B, Reg::ECX);
      MInstr &Cmp = emit(MOp::AluRR);
      Cmp.Alu = x86::AluOp::Cmp;
      Cmp.Dst = Reg::EAX;
      Cmp.Src = B;
    }
  }

  void selectInstr(const Instr &I);

  const ir::Module &M;
  const Function &F;
  mir::MFunction &MF;
  FramePlan Plan;
  std::vector<int32_t> KnownConst;
  std::vector<bool> HasConst;
  std::vector<unsigned> UseCount;
  mir::MBasicBlock *CurBB = nullptr;
};

bool isComparison(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return true;
  default:
    return false;
  }
}

/// Maps IR comparison opcodes to IA-32 condition codes (signed forms).
x86::CondCode ccFor(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
    return x86::CondCode::E;
  case Opcode::CmpNe:
    return x86::CondCode::NE;
  case Opcode::CmpLt:
    return x86::CondCode::L;
  case Opcode::CmpLe:
    return x86::CondCode::LE;
  case Opcode::CmpGt:
    return x86::CondCode::G;
  case Opcode::CmpGe:
    return x86::CondCode::GE;
  default:
    assert(false && "not a comparison");
    return x86::CondCode::E;
  }
}

void Selector::selectInstr(const Instr &I) {
  switch (I.Op) {
  case Opcode::Const: {
    const ValueLoc &Loc = Plan.Values[I.Dst];
    if (Loc.InReg) {
      MInstr &MI = emit(MOp::MovRI);
      MI.Dst = Loc.R;
      MI.Imm = static_cast<int32_t>(I.Imm);
      return;
    }
    MInstr &MI = emit(MOp::MovRI);
    MI.Dst = Reg::EAX;
    MI.Imm = static_cast<int32_t>(I.Imm);
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Copy: {
    Reg Src = operandReg(I.A, Reg::EAX);
    writeValue(I.Dst, Src);
    return;
  }

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    loadTo(Reg::EAX, I.A);
    if (I.Op == Opcode::Mul) {
      Reg B = operandReg(I.B, Reg::ECX);
      MInstr &MI = emit(MOp::ImulRR);
      MI.Dst = Reg::EAX;
      MI.Src = B;
    } else {
      x86::AluOp Alu;
      switch (I.Op) {
      case Opcode::Add:
        Alu = x86::AluOp::Add;
        break;
      case Opcode::Sub:
        Alu = x86::AluOp::Sub;
        break;
      case Opcode::And:
        Alu = x86::AluOp::And;
        break;
      case Opcode::Or:
        Alu = x86::AluOp::Or;
        break;
      default:
        Alu = x86::AluOp::Xor;
        break;
      }
      int32_t K;
      if (constOf(I.B, K)) {
        MInstr &MI = emit(MOp::AluRI);
        MI.Dst = Reg::EAX;
        MI.Imm = K;
        MI.Alu = Alu;
      } else {
        Reg B = operandReg(I.B, Reg::ECX);
        MInstr &MI = emit(MOp::AluRR);
        MI.Dst = Reg::EAX;
        MI.Src = B;
        MI.Alu = Alu;
      }
    }
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Div:
  case Opcode::Rem: {
    loadTo(Reg::EAX, I.A);
    // The divisor must not sit in EDX (CDQ overwrites it); promoted
    // registers are safe, frame slots load into ECX.
    Reg B = operandReg(I.B, Reg::ECX);
    emit(MOp::Cdq);
    MInstr &MI = emit(MOp::Idiv);
    MI.Src = B;
    writeValue(I.Dst, I.Op == Opcode::Div ? Reg::EAX : Reg::EDX);
    return;
  }

  case Opcode::Shl:
  case Opcode::AShr: {
    loadTo(Reg::EAX, I.A);
    int32_t K;
    if (constOf(I.B, K)) {
      MInstr &MI = emit(MOp::ShiftRI);
      MI.Dst = Reg::EAX;
      MI.Imm = K & 31;
      MI.Shift =
          I.Op == Opcode::Shl ? x86::ShiftOp::Shl : x86::ShiftOp::Sar;
    } else {
      loadTo(Reg::ECX, I.B);
      MInstr &MI = emit(MOp::ShiftRC);
      MI.Dst = Reg::EAX;
      MI.Shift =
          I.Op == Opcode::Shl ? x86::ShiftOp::Shl : x86::ShiftOp::Sar;
    }
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Neg:
  case Opcode::Not: {
    loadTo(Reg::EAX, I.A);
    MInstr &MI = emit(I.Op == Opcode::Neg ? MOp::Neg : MOp::Not);
    MI.Dst = Reg::EAX;
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe: {
    emitCompare(I);
    MInstr &Set = emit(MOp::Setcc);
    Set.CC = ccFor(I.Op);
    Set.Dst = Reg::EAX;
    MInstr &Zext = emit(MOp::Movzx8);
    Zext.Dst = Reg::EAX;
    Zext.Src = Reg::EAX;
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Load: {
    Reg A = operandReg(I.A, Reg::EAX);
    MInstr &MI = emit(MOp::Load);
    MI.Dst = Reg::EAX;
    MI.Src = A;
    MI.Imm = static_cast<int32_t>(I.Imm);
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Store: {
    Reg A = operandReg(I.A, Reg::EAX);
    Reg B = operandReg(I.B, Reg::ECX);
    MInstr &MI = emit(MOp::Store);
    MI.Dst = A;
    MI.Src = B;
    MI.Imm = static_cast<int32_t>(I.Imm);
    return;
  }

  case Opcode::GlobalAddr: {
    MInstr &MI = emit(MOp::MovGlobal);
    MI.Dst = Reg::EAX;
    MI.Imm = static_cast<int32_t>(I.Imm);
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::FrameAddr: {
    MInstr &MI = emit(MOp::LeaFrame);
    MI.Dst = Reg::EAX;
    MI.Imm = Plan.ObjectDisp[static_cast<size_t>(I.Imm)];
    writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Call: {
    // cdecl: push arguments right-to-left, caller cleans up.
    for (size_t A = I.Args.size(); A-- > 0;) {
      int32_t K;
      if (constOf(I.Args[A], K)) {
        MInstr &P = emit(MOp::PushI);
        P.Imm = K;
        continue;
      }
      Reg R = operandReg(I.Args[A], Reg::EAX);
      MInstr &P = emit(MOp::Push);
      P.Src = R;
    }
    MInstr &C = emit(MOp::Call);
    C.Target = I.Target;
    if (!I.Args.empty()) {
      MInstr &Sp = emit(MOp::AdjustSP);
      Sp.Imm = static_cast<int32_t>(I.Args.size() * 4);
    }
    if (I.Dst != NoValue)
      writeValue(I.Dst, Reg::EAX);
    return;
  }

  case Opcode::Br: {
    MInstr &MI = emit(MOp::Jmp);
    MI.Imm = static_cast<int32_t>(I.Succ0);
    return;
  }

  case Opcode::CondBr: {
    Reg A = operandReg(I.A, Reg::EAX);
    MInstr &T = emit(MOp::TestRR);
    T.Dst = A;
    T.Src = A;
    MInstr &J = emit(MOp::Jcc);
    J.CC = x86::CondCode::NE;
    J.Imm = static_cast<int32_t>(I.Succ0);
    MInstr &E = emit(MOp::Jmp);
    E.Imm = static_cast<int32_t>(I.Succ1);
    return;
  }

  case Opcode::Ret: {
    if (I.A == NoValue) {
      MInstr &Z = emit(MOp::MovRI);
      Z.Dst = Reg::EAX;
      Z.Imm = 0;
    } else {
      loadTo(Reg::EAX, I.A);
    }
    emit(MOp::Ret);
    return;
  }
  }
}

void Selector::run() {
  MF.Name = F.Name;
  MF.NumParams = F.NumParams;
  MF.FrameBytes = Plan.FrameBytes;
  MF.ValueSlotsLowDisp = Plan.ValueSlotsLowDisp;
  MF.UsesEbx = Plan.UsesEbx;
  MF.UsesEsi = Plan.UsesEsi;
  MF.UsesEdi = Plan.UsesEdi;
  MF.Blocks.resize(F.Blocks.size());

  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    CurBB = &MF.Blocks[B];
    CurBB->Name = F.Blocks[B].Name;
    // Entry block: move promoted parameters from their incoming stack
    // slots into their registers.
    if (B == 0) {
      for (ValueId V = 0; V != F.NumParams; ++V) {
        const ValueLoc &Loc = Plan.Values[V];
        if (!Loc.InReg)
          continue;
        MInstr &L = emit(MOp::LoadFrame);
        L.Dst = Loc.R;
        L.Imm = Loc.FrameDisp;
      }
    }
    const auto &Instrs = F.Blocks[B].Instrs;
    for (size_t K = 0; K != Instrs.size(); ++K) {
      // Fuse `x = a cmp b; condbr x` into `cmp a, b; jcc` when the
      // comparison result feeds only this branch (standard -O2 branch
      // lowering; also what keeps hot loop headers tight).
      if (K + 1 != Instrs.size() && isComparison(Instrs[K].Op) &&
          Instrs[K + 1].Op == Opcode::CondBr &&
          Instrs[K + 1].A == Instrs[K].Dst &&
          UseCount[Instrs[K].Dst] == 1 &&
          !Plan.Values[Instrs[K].Dst].InReg) {
        emitCompare(Instrs[K]);
        MInstr &J = emit(MOp::Jcc);
        J.CC = ccFor(Instrs[K].Op);
        J.Imm = static_cast<int32_t>(Instrs[K + 1].Succ0);
        MInstr &E = emit(MOp::Jmp);
        E.Imm = static_cast<int32_t>(Instrs[K + 1].Succ1);
        ++K;
        continue;
      }
      selectInstr(Instrs[K]);
    }
  }
}

} // namespace

mir::MModule lir::selectInstructions(const ir::Module &M) {
  assert(ir::verify(M).empty() && "IR module must verify before ISel");
  mir::MModule MM;
  MM.Name = M.Name;
  MM.Globals = M.Globals;
  MM.EntryFunction = M.entryFunction();
  MM.Functions.resize(M.Functions.size());
  for (size_t F = 0; F != M.Functions.size(); ++F) {
    Selector S(M, M.Functions[F], MM.Functions[F]);
    S.run();
  }
  assert(mir::verify(MM).empty() && "ISel produced invalid machine IR");
  return MM;
}

namespace {

/// Registers written by one machine instruction (conservative).
void forEachWrittenReg(const MInstr &I, bool (&W)[x86::NumRegs]) {
  auto Mark = [&](Reg R) { W[x86::regNum(R)] = true; };
  switch (I.Op) {
  case MOp::MovRR:
  case MOp::MovRI:
  case MOp::MovGlobal:
  case MOp::Load:
  case MOp::LoadFrame:
  case MOp::LeaFrame:
  case MOp::Neg:
  case MOp::Not:
  case MOp::ShiftRI:
  case MOp::ShiftRC:
  case MOp::Setcc:
  case MOp::Movzx8:
  case MOp::ImulRR:
  case MOp::Pop:
    Mark(I.Dst);
    break;
  case MOp::AluRR:
  case MOp::AluRI:
    if (I.Alu != x86::AluOp::Cmp)
      Mark(I.Dst);
    break;
  case MOp::Cdq:
    Mark(Reg::EDX);
    break;
  case MOp::Idiv:
    Mark(Reg::EAX);
    Mark(Reg::EDX);
    break;
  case MOp::Call:
    // Caller-saved scratch registers.
    Mark(Reg::EAX);
    Mark(Reg::ECX);
    Mark(Reg::EDX);
    break;
  default:
    break;
  }
}

} // namespace

unsigned lir::peephole(mir::MModule &M) {
  unsigned NumChanged = 0;
  for (mir::MFunction &F : M.Functions) {
    // 1. Block-local slot forwarding: track which register currently
    //    holds each frame slot's value; reloads become register moves.
    //    Scalar slots cannot alias anything else (MiniC has no
    //    address-of on scalars; LeaFrame pointers only reach the object
    //    area strictly below ValueSlotsLowDisp).
    for (mir::MBasicBlock &BB : F.Blocks) {
      std::map<int32_t, Reg> SlotInReg;
      std::vector<MInstr> Out;
      Out.reserve(BB.Instrs.size());
      for (MInstr I : BB.Instrs) {
        if (I.Op == MOp::LoadFrame) {
          auto It = SlotInReg.find(I.Imm);
          if (It != SlotInReg.end()) {
            ++NumChanged;
            if (It->second == I.Dst)
              continue; // value already there
            I.Op = MOp::MovRR;
            I.Src = It->second;
          }
        }
        // Self-moves are dead.
        if (I.Op == MOp::MovRR && I.Dst == I.Src) {
          ++NumChanged;
          continue;
        }
        // Invalidate mappings whose register gets overwritten.
        bool Written[x86::NumRegs] = {false};
        forEachWrittenReg(I, Written);
        for (auto It = SlotInReg.begin(); It != SlotInReg.end();)
          It = Written[x86::regNum(It->second)] ? SlotInReg.erase(It)
                                                : std::next(It);
        // Record new slot/register facts.
        if (I.Op == MOp::StoreFrame)
          SlotInReg[I.Imm] = I.Src;
        else if (I.Op == MOp::LoadFrame)
          SlotInReg[I.Imm] = I.Dst;
        Out.push_back(I);
      }
      BB.Instrs = std::move(Out);
    }

    // 2. Block-local dead scratch-register moves: a MovRI/MovRR/
    //    LoadFrame/LeaFrame/MovGlobal into EAX/ECX/EDX whose result is
    //    overwritten before any read is dead. None of these touch
    //    EFLAGS, so removal cannot disturb the cmp/test+jcc contract.
    //    EBX/ESI/EDI carry values across blocks and are left alone.
    for (mir::MBasicBlock &BB : F.Blocks) {
      std::vector<bool> Dead(BB.Instrs.size(), false);
      bool LiveReg[x86::NumRegs];
      for (unsigned R = 0; R != x86::NumRegs; ++R)
        LiveReg[R] = true;
      LiveReg[x86::regNum(Reg::EAX)] = false;
      LiveReg[x86::regNum(Reg::ECX)] = false;
      LiveReg[x86::regNum(Reg::EDX)] = false;
      for (size_t K = BB.Instrs.size(); K-- > 0;) {
        const MInstr &I = BB.Instrs[K];
        bool RemovableKind =
            I.Op == MOp::MovRI || I.Op == MOp::MovRR ||
            I.Op == MOp::LoadFrame || I.Op == MOp::LeaFrame ||
            I.Op == MOp::MovGlobal;
        unsigned DstN = x86::regNum(I.Dst);
        if (RemovableKind && !LiveReg[DstN] &&
            (I.Dst == Reg::EAX || I.Dst == Reg::ECX ||
             I.Dst == Reg::EDX)) {
          Dead[K] = true;
          ++NumChanged;
          continue;
        }
        // Update liveness: writes kill, reads gen.
        bool Written[x86::NumRegs] = {false};
        forEachWrittenReg(I, Written);
        // Read-modify-write instructions also read their destination.
        bool ReadsDst = false;
        switch (I.Op) {
        case MOp::AluRR:
        case MOp::AluRI:
        case MOp::ImulRR:
        case MOp::Neg:
        case MOp::Not:
        case MOp::ShiftRI:
        case MOp::ShiftRC:
        case MOp::Setcc:
        case MOp::TestRR:
        case MOp::Store:
          ReadsDst = true;
          break;
        default:
          break;
        }
        for (unsigned R = 0; R != x86::NumRegs; ++R)
          if (Written[R])
            LiveReg[R] = false;
        if (ReadsDst)
          LiveReg[x86::regNum(I.Dst)] = true;
        switch (I.Op) { // source reads
        case MOp::MovRR:
        case MOp::Load:
        case MOp::Store:
        case MOp::StoreFrame:
        case MOp::AluRR:
        case MOp::ImulRR:
        case MOp::TestRR:
        case MOp::Movzx8:
        case MOp::Idiv:
        case MOp::Push:
          LiveReg[x86::regNum(I.Src)] = true;
          break;
        default:
          break;
        }
        switch (I.Op) { // implicit reads
        case MOp::Cdq:
        case MOp::Ret: // return value
          LiveReg[x86::regNum(Reg::EAX)] = true;
          break;
        case MOp::Idiv:
          LiveReg[x86::regNum(Reg::EAX)] = true;
          LiveReg[x86::regNum(Reg::EDX)] = true;
          break;
        case MOp::ShiftRC:
          LiveReg[x86::regNum(Reg::ECX)] = true;
          break;
        default:
          break;
        }
      }
      std::vector<MInstr> Kept2;
      Kept2.reserve(BB.Instrs.size());
      for (size_t K = 0; K != BB.Instrs.size(); ++K)
        if (!Dead[K])
          Kept2.push_back(BB.Instrs[K]);
      BB.Instrs = std::move(Kept2);
    }

    // 3. Frame dead-store elimination: after forwarding, a StoreFrame
    //    to a scalar value slot whose displacement is never loaded
    //    anywhere in the function is dead (no-alias argument above).
    std::set<int32_t> ReadDisps;
    for (const mir::MBasicBlock &BB : F.Blocks)
      for (const MInstr &I : BB.Instrs)
        if (I.Op == MOp::LoadFrame)
          ReadDisps.insert(I.Imm);
    for (mir::MBasicBlock &BB : F.Blocks) {
      std::vector<MInstr> Kept;
      Kept.reserve(BB.Instrs.size());
      for (const MInstr &I : BB.Instrs) {
        if (I.Op == MOp::StoreFrame && I.Imm >= F.ValueSlotsLowDisp &&
            !ReadDisps.count(I.Imm)) {
          ++NumChanged;
          continue;
        }
        Kept.push_back(I);
      }
      BB.Instrs = std::move(Kept);
    }
  }
  return NumChanged;
}


