//===-- diversity/Sched.h - Schedule randomization ---------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedule randomization: permute the instructions of each basic block
/// among the orders the dependence relation proves legal, in the spirit
/// of the multicompiler's -sched-randomize. The transform touches only
/// the block body (everything before the trailing branch group) and
/// derives its legality edges from the same analyses the static checkers
/// trust:
///
///  * register def-use/use-def/def-def chains via
///    analysis::forEachReadReg / forEachWrittenReg (implicit operands
///    included, so cdq/idiv/shift-by-cl ordering is preserved);
///  * EFLAGS: every flag definer/clobberer (analysis::flagEffect) is
///    totally ordered against the others, and Setcc consumers are pinned
///    between their producer and the next clobber;
///  * memory and effect order: every event-producing non-read operation
///    (Store, StoreFrame, Call, Idiv, ProfInc) is a barrier, totally
///    ordered against the other barriers and against every memory read
///    (Load, LoadFrame). Reads may therefore only commute with adjacent
///    reads in the same store epoch -- exactly the reordering the
///    equivalence prover (analysis/Equiv.h) admits;
///  * stack traffic (Push, PushI, Pop, AdjustSP, Call) forms a chain, so
///    argument setup never drifts across its call;
///  * a cdq..idiv pair (with any interleaved NOPs) is fused into one
///    atomic group, preserving the CallConv checker's adjacency rule.
///
/// The per-block decision to randomize is profile-gated through the
/// paper's hot/cold budget (diversity::nopProbability): hot blocks keep
/// their scheduler-chosen order with probability 1 - pNOP(count), cold
/// blocks are reordered aggressively. A legal schedule never changes the
/// instruction count, so the budget here bounds *placement* entropy
/// churn in hot code paths rather than execution overhead.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_DIVERSITY_SCHED_H
#define PGSD_DIVERSITY_SCHED_H

#include "diversity/NopInsertion.h"
#include "lir/MIR.h"
#include "support/Rng.h"

#include <cstdint>

namespace pgsd {
namespace diversity {

/// Counters reported by one run of the scheduler.
struct SchedStats {
  /// Blocks with at least two schedulable nodes in the body.
  uint64_t BlocksConsidered = 0;
  /// Blocks whose emitted order differs from the original.
  uint64_t BlocksRandomized = 0;
  /// Instructions whose position within their block changed.
  uint64_t InstrsPermuted = 0;
};

/// Randomizes the intra-block schedule of every function of \p M in
/// place, drawing randomness from \p Generator. Legal orders are
/// enumerated by a random topological sort of the dependence DAG; the
/// result verifies (mir::verify), keeps every flag def-use chain intact
/// (analysis::checkEflags), and is provable by the equivalence prover.
SchedStats randomizeSchedule(mir::MModule &M, const DiversityOptions &Opts,
                             Rng &Generator);

} // namespace diversity
} // namespace pgsd

#endif // PGSD_DIVERSITY_SCHED_H
