//===-- diversity/Sched.cpp - Schedule randomization -----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "diversity/Sched.h"

#include "analysis/Analysis.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace pgsd;
using namespace pgsd::diversity;
using namespace pgsd::mir;

namespace {

bool isBranch(const MInstr &I) {
  return I.Op == MOp::Jmp || I.Op == MOp::Jcc || I.Op == MOp::Ret;
}

/// Event-producing non-read operations. Keeping these totally ordered --
/// against each other and against every memory read -- means a legal
/// schedule only ever permutes read-vs-read within one store epoch,
/// which is exactly the commutation the equivalence prover admits.
bool isBarrier(const MInstr &I) {
  switch (I.Op) {
  case MOp::Store:
  case MOp::StoreFrame:
  case MOp::Call:
  case MOp::Idiv:
  case MOp::ProfInc:
    return true;
  default:
    return false;
  }
}

bool isMemRead(const MInstr &I) {
  return I.Op == MOp::Load || I.Op == MOp::LoadFrame;
}

bool isStackOp(const MInstr &I) {
  switch (I.Op) {
  case MOp::Push:
  case MOp::PushI:
  case MOp::Pop:
  case MOp::AdjustSP:
  case MOp::Call:
    return true;
  default:
    return false;
  }
}

/// One schedulable unit: a [Begin, End) range of block instructions --
/// single instructions except for cdq..idiv fusions, which stay atomic
/// so the CallConv checker's adjacency rule survives any order.
struct Node {
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint8_t Reads = 0;  ///< Register bitmask, implicit operands included.
  uint8_t Writes = 0;
  bool TouchesFlags = false; ///< flagEffect Defines or Clobbers.
  bool ReadsFlags = false;   ///< Setcc.
  bool Barrier = false;
  bool MemRead = false;
  bool StackOp = false;
  std::vector<uint32_t> Succs;
  uint32_t Preds = 0;
};

} // namespace

SchedStats diversity::randomizeSchedule(MModule &M,
                                        const DiversityOptions &Opts,
                                        Rng &Generator) {
  SchedStats Stats;

  // The paper's x_max, shared with NOP insertion: the hottest block in
  // the module anchors the hot end of the budget curve.
  uint64_t MaxCount = 0;
  for (const MFunction &F : M.Functions)
    for (const MBasicBlock &BB : F.Blocks)
      MaxCount = std::max(MaxCount, BB.ProfileCount);

  for (MFunction &F : M.Functions) {
    for (MBasicBlock &BB : F.Blocks) {
      // Body = everything before the trailing branch group; control
      // transfers keep their positions.
      uint32_t BodyEnd = 0;
      while (BodyEnd != BB.Instrs.size() && !isBranch(BB.Instrs[BodyEnd]))
        ++BodyEnd;

      std::vector<Node> Nodes;
      for (uint32_t I = 0; I != BodyEnd;) {
        Node N;
        N.Begin = I;
        uint32_t End = I + 1;
        if (BB.Instrs[I].Op == MOp::Cdq) {
          uint32_t J = I + 1;
          while (J != BodyEnd && BB.Instrs[J].Op == MOp::Nop)
            ++J;
          if (J != BodyEnd && BB.Instrs[J].Op == MOp::Idiv)
            End = J + 1;
        }
        N.End = End;
        for (uint32_t K = N.Begin; K != N.End; ++K) {
          const MInstr &Ins = BB.Instrs[K];
          analysis::forEachReadReg(Ins, [&N](x86::Reg R) {
            N.Reads |= static_cast<uint8_t>(1u << x86::regNum(R));
          });
          analysis::forEachWrittenReg(Ins, [&N](x86::Reg R) {
            N.Writes |= static_cast<uint8_t>(1u << x86::regNum(R));
          });
          if (analysis::flagEffect(Ins) != analysis::FlagEffect::Neutral)
            N.TouchesFlags = true;
          if (Ins.Op == MOp::Setcc)
            N.ReadsFlags = true;
          N.Barrier |= isBarrier(Ins);
          N.MemRead |= isMemRead(Ins);
          N.StackOp |= isStackOp(Ins);
        }
        Nodes.push_back(std::move(N));
        I = End;
      }
      if (Nodes.size() < 2)
        continue;
      ++Stats.BlocksConsidered;

      // Hot blocks keep their order with probability 1 - pNOP(count);
      // cold blocks reorder aggressively.
      double PNop = nopProbability(BB.ProfileCount, MaxCount, Opts);
      if (!Generator.nextBernoulli(PNop))
        continue;

      auto AddEdge = [&Nodes](uint32_t From, uint32_t To) {
        Nodes[From].Succs.push_back(To);
        ++Nodes[To].Preds;
      };

      // Register RAW/WAR/WAW chains, one pass per register.
      for (unsigned R = 0; R != x86::NumRegs; ++R) {
        uint8_t Bit = static_cast<uint8_t>(1u << R);
        int LastWrite = -1;
        std::vector<uint32_t> ReadsSince;
        for (uint32_t N = 0; N != Nodes.size(); ++N) {
          bool Rd = (Nodes[N].Reads & Bit) != 0;
          bool Wr = (Nodes[N].Writes & Bit) != 0;
          if (Rd && LastWrite >= 0)
            AddEdge(static_cast<uint32_t>(LastWrite), N);
          if (Wr) {
            for (uint32_t Rdr : ReadsSince)
              if (Rdr != N)
                AddEdge(Rdr, N);
            if (LastWrite >= 0)
              AddEdge(static_cast<uint32_t>(LastWrite), N);
            LastWrite = static_cast<int>(N);
            ReadsSince.clear();
          }
          if (Rd)
            ReadsSince.push_back(N);
        }
      }

      // EFLAGS: definers/clobberers form a chain (their clobber ordinals
      // and the final flag state are order-sensitive); Setcc consumers
      // are pinned between their producer and the next toucher.
      {
        int LastTouch = -1;
        std::vector<uint32_t> FlagReaders;
        for (uint32_t N = 0; N != Nodes.size(); ++N) {
          if (Nodes[N].ReadsFlags) {
            if (LastTouch >= 0)
              AddEdge(static_cast<uint32_t>(LastTouch), N);
            FlagReaders.push_back(N);
          }
          if (Nodes[N].TouchesFlags) {
            for (uint32_t Rdr : FlagReaders)
              if (Rdr != N)
                AddEdge(Rdr, N);
            if (LastTouch >= 0)
              AddEdge(static_cast<uint32_t>(LastTouch), N);
            LastTouch = static_cast<int>(N);
            FlagReaders.clear();
          }
        }
      }

      // Memory: barriers chain with each other and fence every read.
      {
        int LastBarrier = -1;
        std::vector<uint32_t> ReadsSinceBarrier;
        for (uint32_t N = 0; N != Nodes.size(); ++N) {
          if (Nodes[N].Barrier) {
            if (LastBarrier >= 0)
              AddEdge(static_cast<uint32_t>(LastBarrier), N);
            for (uint32_t Rdr : ReadsSinceBarrier)
              AddEdge(Rdr, N);
            LastBarrier = static_cast<int>(N);
            ReadsSinceBarrier.clear();
          } else if (Nodes[N].MemRead) {
            if (LastBarrier >= 0)
              AddEdge(static_cast<uint32_t>(LastBarrier), N);
            ReadsSinceBarrier.push_back(N);
          }
        }
      }

      // Stack traffic is a chain: depth and hole ordinals are
      // order-sensitive, and argument pushes must stay with their call.
      {
        int LastStack = -1;
        for (uint32_t N = 0; N != Nodes.size(); ++N) {
          if (!Nodes[N].StackOp)
            continue;
          if (LastStack >= 0)
            AddEdge(static_cast<uint32_t>(LastStack), N);
          LastStack = static_cast<int>(N);
        }
      }

      // Random topological order: Kahn's algorithm with a uniformly
      // random draw from the ready list. The list is kept in ascending
      // original order so the walk is a pure function of the stream.
      std::vector<uint32_t> Ready, Order;
      Order.reserve(Nodes.size());
      for (uint32_t N = 0; N != Nodes.size(); ++N)
        if (Nodes[N].Preds == 0)
          Ready.push_back(N);
      while (!Ready.empty()) {
        size_t Pick = Ready.size() == 1
                          ? 0
                          : static_cast<size_t>(
                                Generator.nextBelow(Ready.size()));
        uint32_t N = Ready[Pick];
        Ready.erase(Ready.begin() + static_cast<ptrdiff_t>(Pick));
        Order.push_back(N);
        for (uint32_t S : Nodes[N].Succs)
          if (--Nodes[S].Preds == 0)
            Ready.insert(std::lower_bound(Ready.begin(), Ready.end(), S),
                         S);
      }
      assert(Order.size() == Nodes.size() &&
             "dependence graph has a cycle");

      uint64_t MovedInstrs = 0;
      {
        uint32_t Slot = 0;
        for (uint32_t N : Order)
          for (uint32_t K = Nodes[N].Begin; K != Nodes[N].End;
               ++K, ++Slot)
            if (K != Slot)
              ++MovedInstrs;
      }
      if (MovedInstrs == 0)
        continue;

      std::vector<MInstr> Out;
      Out.reserve(BB.Instrs.size());
      for (uint32_t N : Order)
        for (uint32_t K = Nodes[N].Begin; K != Nodes[N].End; ++K)
          Out.push_back(BB.Instrs[K]);
      for (uint32_t K = BodyEnd;
           K != static_cast<uint32_t>(BB.Instrs.size()); ++K)
        Out.push_back(BB.Instrs[K]);
      BB.Instrs = std::move(Out);
      ++Stats.BlocksRandomized;
      Stats.InstrsPermuted += MovedInstrs;
    }
  }
  assert(mir::verify(M).empty() &&
         "schedule randomization broke the module");
  assert(analysis::checkEflags(M).ok() &&
         "schedule randomization broke a flag def-use chain");
  return Stats;
}
