//===-- diversity/RegShuffle.h - Register-allocation shuffling ---*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-allocation shuffling: per function, permute the physical
/// assignment of the cdecl callee-saved class {EBX, ESI, EDI}. The class
/// is liveness-compatible by construction -- every member is preserved
/// across calls by the prologue/epilogue save set, so a permutation
/// applied uniformly to every operand of a function (and to its
/// UsesEbx/UsesEsi/UsesEdi save flags) renames whole live ranges without
/// crossing any.
///
/// The caller-saved registers are pinned: EAX/ECX/EDX carry cdecl return
/// value/clobber semantics the equivalence prover models by physical
/// identity (call#n.eax, idiv quotients, shift-by-CL), and ESP/EBP are
/// structural. EBX is additionally pinned whenever the function uses it
/// as an 8-bit subregister (Setcc destination or Movzx8 source): ESI/EDI
/// have no low byte on IA-32, so such a live range cannot move.
///
/// Renaming adds no instructions and no executed cycles, so the hot/cold
/// overhead budget never throttles it: every function draws a
/// permutation (identity included, keeping per-function outcomes
/// decorrelated across seeds) regardless of profile counts.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_DIVERSITY_REGSHUFFLE_H
#define PGSD_DIVERSITY_REGSHUFFLE_H

#include "diversity/NopInsertion.h"
#include "lir/MIR.h"
#include "support/Rng.h"

#include <cstdint>

namespace pgsd {
namespace diversity {

/// Counters reported by one run of the shuffler.
struct RegShuffleStats {
  uint64_t FunctionsConsidered = 0;
  /// Functions that drew a non-identity permutation.
  uint64_t FunctionsShuffled = 0;
  /// Callee-saved registers moved off their original assignment,
  /// summed over shuffled functions (2 or 3 per function).
  uint64_t RegsRemapped = 0;
};

/// Shuffles the callee-saved register assignment of every function of
/// \p M in place, drawing randomness from \p Generator. The result
/// verifies (mir::verify) and is provable by the equivalence prover's
/// renaming-aware matcher.
RegShuffleStats shuffleRegisters(mir::MModule &M, Rng &Generator);

} // namespace diversity
} // namespace pgsd

#endif // PGSD_DIVERSITY_REGSHUFFLE_H
