//===-- diversity/NopInsertion.h - Profile-guided NOP insertion --*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: probabilistic NOP insertion on the
/// low-level representation, optionally modulated by per-basic-block
/// execution counts from profiling.
///
/// Algorithm 1 of the paper, per instruction:
///
/// \code
///   roll <- random(0.0, 1.0)
///   if roll < pNOP:
///     nopIndex <- random(0, numNOPs)
///     insert(i, NOPTable[nopIndex])
/// \endcode
///
/// Three probability models are provided:
///  * Uniform -- the paper's baseline: the same pNOP everywhere.
///  * Linear  -- pNOP(x) = pmax - (pmax - pmin) * x / xmax.
///  * Log     -- pNOP(x) = pmax - (pmax - pmin) * log(1+x) / log(1+xmax),
///    the heuristic the paper recommends because execution counts grow
///    exponentially with loop nesting (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_DIVERSITY_NOPINSERTION_H
#define PGSD_DIVERSITY_NOPINSERTION_H

#include "lir/MIR.h"
#include "support/Rng.h"
#include "x86/Nops.h"

#include <array>
#include <cstdint>
#include <string>

namespace pgsd {
namespace diversity {

/// How the per-block insertion probability is derived.
enum class ProbabilityModel : uint8_t {
  Uniform, ///< pNOP = PMax for every block (no profile needed).
  Linear,  ///< Linear interpolation over execution counts.
  Log,     ///< Logarithmic interpolation (the paper's heuristic).
};

/// Configuration of the insertion pass.
struct DiversityOptions {
  ProbabilityModel Model = ProbabilityModel::Uniform;
  double PMin = 0.0; ///< Probability for the hottest block.
  double PMax = 0.5; ///< Probability for the coldest block.
  bool IncludeXchgNops = false; ///< Enable the bus-locking XCHG pair.
  uint64_t Seed = 0;            ///< Variant seed.

  /// Named presets matching the paper's Figure 4 configurations.
  static DiversityOptions uniform(double P, uint64_t Seed = 0);
  static DiversityOptions profiled(ProbabilityModel Model, double PMin,
                                   double PMax, uint64_t Seed = 0);

  /// Short label like "pNOP=50%" or "pNOP=10-50%" for reports.
  std::string label() const;
};

/// Counters reported by one run of the pass.
struct InsertionStats {
  uint64_t CandidateSites = 0; ///< Instructions considered.
  uint64_t NopsInserted = 0;
  /// Sites whose roll succeeded but whose drawn candidate was refused by
  /// the flag-effect screen (analysis::flagEffect != Neutral). Zero with
  /// the current all-neutral Table 1 candidate set; nonzero would mean a
  /// flag-unsafe candidate entered the table.
  uint64_t NopsRejected = 0;
  std::array<uint64_t, x86::NumNopKinds> PerKind{};

  /// Fraction of sites that received a NOP.
  double insertionRate() const {
    return CandidateSites == 0
               ? 0.0
               : static_cast<double>(NopsInserted) /
                     static_cast<double>(CandidateSites);
  }
};

/// Computes pNOP for a block with execution count \p Count given the
/// module-wide maximum \p MaxCount (the paper's x and x_max).
double nopProbability(uint64_t Count, uint64_t MaxCount,
                      const DiversityOptions &Opts);

/// Runs Algorithm 1 over every instruction of \p M in place.
///
/// Profile-guided models read MBasicBlock::ProfileCount (stamped by
/// profile::applyCounts); with an all-zero profile every block receives
/// PMax, which matches the paper's observation that unprofiled code is
/// free to diversify maximally.
InsertionStats insertNops(mir::MModule &M, const DiversityOptions &Opts);

/// Same pass, but drawing randomness from a caller-owned \p Generator
/// instead of constructing one from Opts.Seed. Batch workers hand each
/// variant a stream derived via Rng::split so per-variant streams are
/// pure functions of their seeds and can never collide through
/// re-seeding (Opts.Seed is ignored by this overload).
InsertionStats insertNops(mir::MModule &M, const DiversityOptions &Opts,
                          Rng &Generator);

/// Convenience: returns a diversified copy of \p M without mutating it.
mir::MModule makeVariant(const mir::MModule &M, DiversityOptions Opts,
                         uint64_t Seed, InsertionStats *Stats = nullptr);

/// Counters reported by the block-shifting pass.
struct BlockShiftStats {
  uint64_t FunctionsShifted = 0;
  uint64_t PaddingInstrs = 0;
};

/// The complementary transformation sketched in the paper's Section 6:
/// "basic block shifting, which inserts a dummy basic block of random
/// size at the beginning of each function. If the function jumps over
/// the initial basic block of NOPs, its performance impact should be
/// minimal. However, its presence should prevent the attacker from
/// exploiting the low diversity at the beginning of the binary."
///
/// Each function entry becomes `jmp L; <1..MaxPadding random NOPs>; L:`,
/// displacing every later instruction of the function by a random
/// amount at a cost of one executed jump per call. Run it before
/// insertNops so the (cold) pad block also receives NOP diversity.
BlockShiftStats insertBlockShift(mir::MModule &M, uint64_t Seed,
                                 unsigned MaxPadding = 12,
                                 bool IncludeXchgNops = false);

/// Overload drawing randomness from a caller-owned \p Generator (see the
/// insertNops overload for why batch workers need this).
BlockShiftStats insertBlockShift(mir::MModule &M, Rng &Generator,
                                 unsigned MaxPadding = 12,
                                 bool IncludeXchgNops = false);

} // namespace diversity
} // namespace pgsd

#endif // PGSD_DIVERSITY_NOPINSERTION_H
