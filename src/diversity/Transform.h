//===-- diversity/Transform.h - Composable transform pipeline ----*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One interface over every diversifying transform -- NOP insertion,
/// block shifting, schedule randomization, register shuffling -- and a
/// Pipeline that composes an ordered list of them under a single seed.
///
/// Seed-stream contract (pinned by the entropy regression tests):
///
///  * A single-transform pipeline consumes the historical stream of that
///    transform byte-for-byte: {nop} draws from Rng(Seed) exactly like
///    diversity::makeVariant always has, and {shift} draws from
///    Rng(Seed ^ 0xb10c) exactly like the historical call sites. Legacy
///    seed walks therefore reproduce under the pipeline.
///  * Every other case -- multi-transform lists and the history-free
///    {sched}/{regs} singletons -- gives the transform of kind K the
///    decorrelated sub-stream Rng(Seed).split(1 + K). Streams depend on
///    the kind, not the list position, so reordering the list changes
///    composition order without resampling every transform.
///
/// Profile budget: each transform receives the DiversityOptions budget
/// (model, pmin/pmax) and the profile counts stamped on the module, and
/// gates itself: NOP insertion per instruction, the scheduler per block,
/// block shifting and register shuffling not at all (the former is
/// jumped over, the latter is free at runtime).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_DIVERSITY_TRANSFORM_H
#define PGSD_DIVERSITY_TRANSFORM_H

#include "diversity/NopInsertion.h"
#include "diversity/RegShuffle.h"
#include "diversity/Sched.h"
#include "lir/MIR.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace diversity {

/// The transforms, in their --transforms spelling order. The enum value
/// is the stable sub-stream id of the seed contract; appending new
/// transforms never perturbs existing streams.
enum class TransformKind : uint8_t {
  Nop = 0, ///< Probabilistic NOP insertion (Algorithm 1).
  Shift,   ///< Basic-block shifting (Section 6).
  Sched,   ///< Intra-block schedule randomization.
  Regs,    ///< Callee-saved register-allocation shuffling.
};

/// Number of transform kinds (for sweep loops).
inline constexpr unsigned NumTransformKinds = 4;

/// Returns the stable lowercase name ("nop", "shift", "sched", "regs").
const char *transformKindName(TransformKind K);

/// Parses a comma-separated --transforms list ("nop,sched"). Rejects
/// unknown names, duplicates, and the empty list; on failure returns
/// false, leaves \p Out untouched, and describes the problem in
/// \p Error (when non-null).
bool parseTransformList(const std::string &Text,
                        std::vector<TransformKind> &Out,
                        std::string *Error = nullptr);

/// Per-transform counters of one pipeline run. Transforms absent from
/// the pipeline leave their slice zeroed.
struct PipelineStats {
  InsertionStats Nop;
  BlockShiftStats Shift;
  SchedStats Sched;
  RegShuffleStats Regs;
};

/// One diversifying transform. Implementations are stateless singletons
/// (transformFor); every per-run input arrives through apply().
class Transform {
public:
  virtual ~Transform() = default;

  virtual TransformKind kind() const = 0;

  /// The stable lowercase name, also the obs metric family infix
  /// (diversity.<name>.*).
  const char *name() const { return transformKindName(kind()); }

  /// Applies the transform to \p M in place, drawing randomness from
  /// \p Generator and gating by the \p Opts budget against the profile
  /// counts stamped on \p M. Accumulates into this transform's slice of
  /// \p Stats and exports diversity.<name>.* counters when telemetry is
  /// enabled.
  virtual void apply(mir::MModule &M, Rng &Generator,
                     const DiversityOptions &Opts,
                     PipelineStats &Stats) const = 0;
};

/// Returns the singleton transform of kind \p K.
const Transform &transformFor(TransformKind K);

/// An ordered transform list applied under one seed stream.
class Pipeline {
public:
  /// The default pipeline is the paper's: NOP insertion only.
  Pipeline() : Kinds{TransformKind::Nop} {}
  explicit Pipeline(std::vector<TransformKind> List)
      : Kinds(std::move(List)) {}

  const std::vector<TransformKind> &kinds() const { return Kinds; }
  bool contains(TransformKind K) const;

  /// True when every transform in the list preserves the baseline's
  /// instruction sequence up to inserted NOPs and shift preludes -- the
  /// precondition of the verifier's NOP-only structural diff. Schedule
  /// randomization and register shuffling break it (legitimately), so
  /// the driver disables that check for pipelines containing them.
  bool structurePreserving() const;

  /// Short label like "nop+sched" for reports.
  std::string label() const;

  /// Applies every transform in list order to \p M in place under the
  /// seed-stream contract (see file comment).
  PipelineStats run(mir::MModule &M, const DiversityOptions &Opts,
                    uint64_t Seed) const;

private:
  std::vector<TransformKind> Kinds;
};

} // namespace diversity
} // namespace pgsd

#endif // PGSD_DIVERSITY_TRANSFORM_H
