//===-- diversity/RegShuffle.cpp - Register-allocation shuffling -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "diversity/RegShuffle.h"

#include "analysis/Analysis.h"

#include <array>
#include <cassert>

using namespace pgsd;
using namespace pgsd::diversity;
using namespace pgsd::mir;

namespace {

// Permutations of {EBX, ESI, EDI} as (pi(ebx), pi(esi), pi(edi))
// register-number triples, identity first so index 0 is always the
// no-op draw.
constexpr uint8_t AllPerms[6][3] = {
    {3, 6, 7}, {3, 7, 6}, {6, 3, 7}, {6, 7, 3}, {7, 3, 6}, {7, 6, 3},
};
// With EBX pinned (8-bit subregister live range), only ESI/EDI move.
constexpr uint8_t PinnedPerms[2][3] = {{3, 6, 7}, {3, 7, 6}};

} // namespace

RegShuffleStats diversity::shuffleRegisters(MModule &M, Rng &Generator) {
  RegShuffleStats Stats;
  for (MFunction &F : M.Functions) {
    ++Stats.FunctionsConsidered;

    // A Setcc destination or Movzx8 source needs a low byte; on IA-32
    // ESI/EDI have none, so an EBX live range carrying one cannot move.
    bool PinEbx = false;
    for (const MBasicBlock &BB : F.Blocks)
      for (const MInstr &I : BB.Instrs)
        if ((I.Op == MOp::Setcc && I.Dst == x86::Reg::EBX) ||
            (I.Op == MOp::Movzx8 && I.Src == x86::Reg::EBX))
          PinEbx = true;

    const uint8_t(*Perms)[3] = PinEbx ? PinnedPerms : AllPerms;
    size_t NumPerms = PinEbx ? 2 : 6;
    size_t Pick = static_cast<size_t>(Generator.nextBelow(NumPerms));
    if (Pick == 0)
      continue; // identity draw

    std::array<x86::Reg, x86::NumRegs> Map;
    for (unsigned R = 0; R != x86::NumRegs; ++R)
      Map[R] = static_cast<x86::Reg>(R);
    Map[3] = static_cast<x86::Reg>(Perms[Pick][0]);
    Map[6] = static_cast<x86::Reg>(Perms[Pick][1]);
    Map[7] = static_cast<x86::Reg>(Perms[Pick][2]);

    for (MBasicBlock &BB : F.Blocks)
      for (MInstr &I : BB.Instrs) {
        I.Dst = Map[x86::regNum(I.Dst)];
        I.Src = Map[x86::regNum(I.Src)];
      }

    // The prologue/epilogue save set follows the renaming, so the
    // callee-saved contract holds for exactly the registers now in use.
    bool Uses[x86::NumRegs] = {};
    Uses[x86::regNum(Map[3])] = F.UsesEbx;
    Uses[x86::regNum(Map[6])] = F.UsesEsi;
    Uses[x86::regNum(Map[7])] = F.UsesEdi;
    F.UsesEbx = Uses[3];
    F.UsesEsi = Uses[6];
    F.UsesEdi = Uses[7];

    ++Stats.FunctionsShuffled;
    for (unsigned R : {3u, 6u, 7u})
      if (x86::regNum(Map[R]) != R)
        ++Stats.RegsRemapped;
  }
  assert(mir::verify(M).empty() &&
         "register shuffling broke the module");
  assert(analysis::checkEflags(M).ok() &&
         "register shuffling broke a flag def-use chain");
  return Stats;
}
