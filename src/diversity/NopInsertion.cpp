//===-- diversity/NopInsertion.cpp - Profile-guided NOP insertion ----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "diversity/NopInsertion.h"

#include "analysis/Analysis.h"
#include "obs/Metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::diversity;
using namespace pgsd::mir;

DiversityOptions DiversityOptions::uniform(double P, uint64_t Seed) {
  DiversityOptions Opts;
  Opts.Model = ProbabilityModel::Uniform;
  Opts.PMin = P;
  Opts.PMax = P;
  Opts.Seed = Seed;
  return Opts;
}

DiversityOptions DiversityOptions::profiled(ProbabilityModel Model,
                                            double PMin, double PMax,
                                            uint64_t Seed) {
  assert(Model != ProbabilityModel::Uniform && "use uniform()");
  DiversityOptions Opts;
  Opts.Model = Model;
  Opts.PMin = PMin;
  Opts.PMax = PMax;
  Opts.Seed = Seed;
  return Opts;
}

std::string DiversityOptions::label() const {
  char Buf[64];
  if (Model == ProbabilityModel::Uniform) {
    std::snprintf(Buf, sizeof(Buf), "pNOP=%.0f%%", PMax * 100.0);
  } else {
    std::snprintf(Buf, sizeof(Buf), "pNOP=%.0f-%.0f%%%s", PMin * 100.0,
                  PMax * 100.0,
                  Model == ProbabilityModel::Linear ? " (linear)" : "");
  }
  return Buf;
}

double diversity::nopProbability(uint64_t Count, uint64_t MaxCount,
                                 const DiversityOptions &Opts) {
  switch (Opts.Model) {
  case ProbabilityModel::Uniform:
    return Opts.PMax;
  case ProbabilityModel::Linear: {
    if (MaxCount == 0)
      return Opts.PMax;
    double Frac =
        static_cast<double>(Count) / static_cast<double>(MaxCount);
    return Opts.PMax - (Opts.PMax - Opts.PMin) * Frac;
  }
  case ProbabilityModel::Log: {
    if (MaxCount == 0)
      return Opts.PMax;
    double Frac = std::log1p(static_cast<double>(Count)) /
                  std::log1p(static_cast<double>(MaxCount));
    return Opts.PMax - (Opts.PMax - Opts.PMin) * Frac;
  }
  }
  return Opts.PMax;
}

InsertionStats diversity::insertNops(MModule &M,
                                     const DiversityOptions &Opts) {
  Rng Generator(Opts.Seed);
  return insertNops(M, Opts, Generator);
}

InsertionStats diversity::insertNops(MModule &M,
                                     const DiversityOptions &Opts,
                                     Rng &Generator) {
  InsertionStats Stats;
  unsigned NumNops =
      Opts.IncludeXchgNops ? x86::NumNopKinds : x86::NumDefaultNopKinds;

  // Telemetry is sampled per block at most (never per instruction) and
  // only when collection is on.
  const bool Obs = obs::enabled();
  // Deciles of pNOP in percent; the last implicit bucket catches >100.
  static constexpr double PnopBuckets[] = {10, 20, 30, 40, 50,
                                           60, 70, 80, 90, 100};

  // The paper's x_max: the hottest basic block in the whole program.
  uint64_t MaxCount = 0;
  for (const MFunction &F : M.Functions)
    for (const MBasicBlock &BB : F.Blocks)
      MaxCount = std::max(MaxCount, BB.ProfileCount);

  for (MFunction &F : M.Functions) {
    for (MBasicBlock &BB : F.Blocks) {
      double PNop = nopProbability(BB.ProfileCount, MaxCount, Opts);
      if (Obs)
        obs::histogramObserve("diversity.pnop_percent", PNop * 100.0,
                              PnopBuckets);
      std::vector<MInstr> Out;
      Out.reserve(BB.Instrs.size());
      for (const MInstr &I : BB.Instrs) {
        ++Stats.CandidateSites;
        // Algorithm 1: roll, then pick a candidate NOP uniformly.
        if (Generator.nextBernoulli(PNop)) {
          MInstr Nop;
          Nop.Op = MOp::Nop;
          Nop.NopK =
              static_cast<x86::NopKind>(Generator.nextBelow(NumNops));
          // Candidates may land anywhere -- including between a cmp and
          // its jcc -- only because every Table 1 NOP leaves EFLAGS
          // alone. Ask the analyzer instead of trusting the table, so a
          // future flag-touching candidate is rejected here rather than
          // discovered as a broken variant downstream.
          if (analysis::flagEffect(Nop) ==
              analysis::FlagEffect::Neutral) {
            ++Stats.NopsInserted;
            ++Stats.PerKind[static_cast<size_t>(Nop.NopK)];
            Out.push_back(Nop);
          } else {
            ++Stats.NopsRejected;
          }
        }
        Out.push_back(I);
      }
      BB.Instrs = std::move(Out);
    }
  }
  if (Obs) {
    obs::counterAdd("diversity.candidate_sites", Stats.CandidateSites);
    obs::counterAdd("diversity.nops_accepted", Stats.NopsInserted);
    obs::counterAdd("diversity.nops_rejected", Stats.NopsRejected);
  }
  assert(analysis::checkEflags(M).ok() &&
         "NOP insertion broke a flag def-use chain");
  return Stats;
}

BlockShiftStats diversity::insertBlockShift(MModule &M, uint64_t Seed,
                                            unsigned MaxPadding,
                                            bool IncludeXchgNops) {
  Rng Generator(Seed);
  return insertBlockShift(M, Generator, MaxPadding, IncludeXchgNops);
}

BlockShiftStats diversity::insertBlockShift(MModule &M, Rng &Generator,
                                            unsigned MaxPadding,
                                            bool IncludeXchgNops) {
  assert(MaxPadding >= 1 && "padding must be at least one instruction");
  BlockShiftStats Stats;
  unsigned NumNops =
      IncludeXchgNops ? x86::NumNopKinds : x86::NumDefaultNopKinds;

  for (MFunction &F : M.Functions) {
    // Prepend [jmp over-pad] and [pad...] blocks; original blocks and
    // every branch target shift by two.
    for (MBasicBlock &BB : F.Blocks)
      for (MInstr &I : BB.Instrs)
        if (I.Op == MOp::Jmp || I.Op == MOp::Jcc)
          I.Imm += 2;

    MBasicBlock Entry;
    Entry.Name = "shift.entry";
    Entry.ProfileCount = F.Blocks.front().ProfileCount;
    MInstr J;
    J.Op = MOp::Jmp;
    J.Imm = 2;
    Entry.Instrs.push_back(J);

    MBasicBlock Pad;
    Pad.Name = "shift.pad";
    Pad.ProfileCount = 0; // never executed: maximally cold
    unsigned PadLen =
        1 + static_cast<unsigned>(Generator.nextBelow(MaxPadding));
    for (unsigned I = 0; I != PadLen; ++I) {
      MInstr Nop;
      Nop.Op = MOp::Nop;
      Nop.NopK = static_cast<x86::NopKind>(Generator.nextBelow(NumNops));
      Pad.Instrs.push_back(Nop);
      ++Stats.PaddingInstrs;
    }
    // The pad block is jumped over but still needs a terminator for the
    // verifier (and for an attacker landing in it, it falls through).
    MInstr PadJ;
    PadJ.Op = MOp::Jmp;
    PadJ.Imm = 2;
    Pad.Instrs.push_back(PadJ);

    F.Blocks.insert(F.Blocks.begin(), {std::move(Entry), std::move(Pad)});
    ++Stats.FunctionsShifted;
  }
  assert(mir::verify(M).empty() && "block shifting broke the module");
  assert(analysis::checkEflags(M).ok() &&
         "block shifting broke a flag def-use chain");
  return Stats;
}

MModule diversity::makeVariant(const MModule &M, DiversityOptions Opts,
                               uint64_t Seed, InsertionStats *Stats) {
  MModule Variant = M; // deep copy, profile counts included
  Opts.Seed = Seed;
  InsertionStats S = insertNops(Variant, Opts);
  if (Stats)
    *Stats = S;
  return Variant;
}
