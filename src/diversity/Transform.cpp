//===-- diversity/Transform.cpp - Composable transform pipeline ------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "diversity/Transform.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace pgsd;
using namespace pgsd::diversity;

const char *diversity::transformKindName(TransformKind K) {
  switch (K) {
  case TransformKind::Nop:
    return "nop";
  case TransformKind::Shift:
    return "shift";
  case TransformKind::Sched:
    return "sched";
  case TransformKind::Regs:
    return "regs";
  }
  return "?";
}

bool diversity::parseTransformList(const std::string &Text,
                                   std::vector<TransformKind> &Out,
                                   std::string *Error) {
  std::vector<TransformKind> List;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Name = Text.substr(Pos, Comma - Pos);
    bool Known = false;
    for (unsigned K = 0; K != NumTransformKinds; ++K) {
      TransformKind Kind = static_cast<TransformKind>(K);
      if (Name != transformKindName(Kind))
        continue;
      Known = true;
      if (std::find(List.begin(), List.end(), Kind) != List.end()) {
        if (Error)
          *Error = "duplicate transform '" + Name + "'";
        return false;
      }
      List.push_back(Kind);
      break;
    }
    if (!Known) {
      if (Error)
        *Error = Name.empty() ? std::string("empty transform name")
                              : "unknown transform '" + Name + "'";
      return false;
    }
    Pos = Comma + 1;
  }
  if (List.empty()) {
    if (Error)
      *Error = "empty transform list";
    return false;
  }
  Out = std::move(List);
  return true;
}

namespace {

class NopTransform final : public Transform {
public:
  TransformKind kind() const override { return TransformKind::Nop; }
  void apply(mir::MModule &M, Rng &Generator, const DiversityOptions &Opts,
             PipelineStats &Stats) const override {
    Stats.Nop = insertNops(M, Opts, Generator);
    if (obs::enabled()) {
      obs::counterAdd("diversity.nop.candidate_sites",
                      Stats.Nop.CandidateSites);
      obs::counterAdd("diversity.nop.inserted", Stats.Nop.NopsInserted);
      obs::counterAdd("diversity.nop.rejected", Stats.Nop.NopsRejected);
    }
  }
};

class ShiftTransform final : public Transform {
public:
  TransformKind kind() const override { return TransformKind::Shift; }
  void apply(mir::MModule &M, Rng &Generator, const DiversityOptions &Opts,
             PipelineStats &Stats) const override {
    Stats.Shift =
        insertBlockShift(M, Generator, 12, Opts.IncludeXchgNops);
    if (obs::enabled()) {
      obs::counterAdd("diversity.shift.functions_shifted",
                      Stats.Shift.FunctionsShifted);
      obs::counterAdd("diversity.shift.padding_instrs",
                      Stats.Shift.PaddingInstrs);
    }
  }
};

class SchedTransform final : public Transform {
public:
  TransformKind kind() const override { return TransformKind::Sched; }
  void apply(mir::MModule &M, Rng &Generator, const DiversityOptions &Opts,
             PipelineStats &Stats) const override {
    Stats.Sched = randomizeSchedule(M, Opts, Generator);
    if (obs::enabled()) {
      obs::counterAdd("diversity.sched.blocks_considered",
                      Stats.Sched.BlocksConsidered);
      obs::counterAdd("diversity.sched.blocks_randomized",
                      Stats.Sched.BlocksRandomized);
      obs::counterAdd("diversity.sched.instrs_permuted",
                      Stats.Sched.InstrsPermuted);
    }
  }
};

class RegsTransform final : public Transform {
public:
  TransformKind kind() const override { return TransformKind::Regs; }
  void apply(mir::MModule &M, Rng &Generator, const DiversityOptions &,
             PipelineStats &Stats) const override {
    Stats.Regs = shuffleRegisters(M, Generator);
    if (obs::enabled()) {
      obs::counterAdd("diversity.regs.functions_considered",
                      Stats.Regs.FunctionsConsidered);
      obs::counterAdd("diversity.regs.functions_shuffled",
                      Stats.Regs.FunctionsShuffled);
      obs::counterAdd("diversity.regs.regs_remapped",
                      Stats.Regs.RegsRemapped);
    }
  }
};

} // namespace

const Transform &diversity::transformFor(TransformKind K) {
  static const NopTransform NopT;
  static const ShiftTransform ShiftT;
  static const SchedTransform SchedT;
  static const RegsTransform RegsT;
  switch (K) {
  case TransformKind::Nop:
    return NopT;
  case TransformKind::Shift:
    return ShiftT;
  case TransformKind::Sched:
    return SchedT;
  case TransformKind::Regs:
    return RegsT;
  }
  return NopT;
}

bool Pipeline::contains(TransformKind K) const {
  return std::find(Kinds.begin(), Kinds.end(), K) != Kinds.end();
}

bool Pipeline::structurePreserving() const {
  return !contains(TransformKind::Sched) &&
         !contains(TransformKind::Regs);
}

std::string Pipeline::label() const {
  std::string L;
  for (TransformKind K : Kinds) {
    if (!L.empty())
      L += '+';
    L += transformKindName(K);
  }
  return L;
}

PipelineStats Pipeline::run(mir::MModule &M, const DiversityOptions &Opts,
                            uint64_t Seed) const {
  assert(!Kinds.empty() && "empty pipeline");
  PipelineStats Stats;
  // Historical single-transform streams reproduce byte-for-byte: {nop}
  // is diversity::makeVariant's Rng(Seed), {shift} is the historical
  // call sites' Rng(Seed ^ 0xb10c). Everything else -- multi-transform
  // lists and the history-free sched/regs singletons -- draws the
  // kind-keyed sub-stream Rng(Seed).split(1 + K), so a transform's
  // stream does not depend on what else is in the list.
  if (Kinds.size() == 1 && Kinds[0] == TransformKind::Nop) {
    Rng Generator(Seed);
    transformFor(Kinds[0]).apply(M, Generator, Opts, Stats);
    return Stats;
  }
  if (Kinds.size() == 1 && Kinds[0] == TransformKind::Shift) {
    Rng Generator(Seed ^ 0xb10cull);
    transformFor(Kinds[0]).apply(M, Generator, Opts, Stats);
    return Stats;
  }
  Rng Base(Seed);
  for (TransformKind K : Kinds) {
    Rng Generator = Base.split(1 + static_cast<uint64_t>(K));
    transformFor(K).apply(M, Generator, Opts, Stats);
  }
  return Stats;
}
