//===-- analysis/MirFault.h - Seeded MIR-level fault injection ---*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded illegal mutations of machine IR, one class per analysis
/// checker. This is the MIR-level sibling of verify/FaultInjector.h
/// (which corrupts emitted images to exercise the *dynamic* verifier):
/// each fault class here breaks exactly the invariant its paired checker
/// proves, and the injector only picks sites where detection is
/// guaranteed by construction -- e.g. DroppedDef removes a definition
/// only when a later read in the same block is left with no reaching
/// definition at all. Tests sweep seeds and assert a 100% catch rate per
/// class; a miss is a checker bug, not an unlucky roll.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_ANALYSIS_MIRFAULT_H
#define PGSD_ANALYSIS_MIRFAULT_H

#include "analysis/Analysis.h"
#include "lir/MIR.h"

#include <cstdint>
#include <string>

namespace pgsd {
namespace analysis {

/// The fault classes, index-aligned with CheckerKind: class C is built
/// to be caught by checker static_cast<CheckerKind>(C).
enum class MirFaultClass : uint8_t {
  CfgBreak = 0,      ///< Retarget a branch/counter id out of range, or
                     ///< plant an instruction after a terminator.
  DroppedDef,        ///< Delete a definition a later read depends on.
  FlagClobber,       ///< Insert a value-preserving, flag-clobbering ALU
                     ///< op between a cmp/test and its Jcc/Setcc. The
                     ///< interpreter's lazy flag model cannot see this;
                     ///< only the static checker can.
  UnbalancedPush,    ///< Insert an extra push on a path to a ret.
  FrameEscape,       ///< Redirect a frame access outside its region.
  CallContractBreak, ///< Delete the cdq before an idiv, or read a
                     ///< caller-saved register right after a call.

  // Classes past this point model buggy *diversifying transforms*
  // rather than buggy codegen: they have no paired checker and are
  // caught by the equivalence prover (or differential execution).
  IllegalReorder,    ///< Hoist a frame load above the frame store that
                     ///< feeds it -- a scheduler reorder across a
                     ///< memory dependence.
  LiveRangeSwap,     ///< Rewrite one stored value to come from a
                     ///< different register -- a register swap that
                     ///< crosses a live range.
};

/// Number of checker-aligned fault classes (for sweep loops pairing
/// class C with checker C; the transform-bug classes are excluded).
inline constexpr unsigned NumMirFaultClasses = 6;

/// Number of fault classes including the transform-bug classes, which
/// only the equivalence prover / dynamic verifier can catch.
inline constexpr unsigned NumAllMirFaultClasses = 8;

/// Returns a stable kebab-case name ("flag-clobber", ...).
const char *mirFaultClassName(MirFaultClass C);

/// Returns the checker whose diagnostic code class \p C must trigger.
/// Meaningful only for the first NumMirFaultClasses classes; the
/// transform-bug classes have no paired checker.
CheckerKind mirFaultTargetChecker(MirFaultClass C);

/// Mutates \p M with one seeded fault of class \p C. Returns true when
/// an eligible site existed (virtually always on real programs); false
/// leaves \p M untouched. On success, \p Desc (when non-null) receives a
/// one-line description of the mutation for test logs.
bool injectMirFault(mir::MModule &M, MirFaultClass C, uint64_t Seed,
                    std::string *Desc = nullptr);

} // namespace analysis
} // namespace pgsd

#endif // PGSD_ANALYSIS_MIRFAULT_H
