//===-- analysis/Analysis.h - MIR static analysis framework ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rule-based static analysis over machine IR: proves the invariants NOP
/// insertion must preserve *before* any variant executes. The paper's
/// central claim -- NOP insertion at the low-level representation is
/// semantics-preserving (Section 4, Table 1) -- is checked dynamically
/// by verify/ (differential execution over an input battery); the
/// analyzer here proves the same class of properties in microseconds by
/// dataflow over the block CFG, and catches violations the battery can
/// never exercise, such as a flag clobber on an untaken path.
///
/// Six checkers run on the shared forward-dataflow engine
/// (analysis/Dataflow.h) or as structural scans:
///
///  1. CfgWellFormed -- terminator placement, branch-target validity,
///     call-target and ProfInc counter-id ranges, 8-bit subregister
///     constraints. Runs first; a function it rejects is skipped by the
///     flow-sensitive checkers, whose solver indexes blocks by branch
///     target.
///  2. RegLiveness -- every register read is preceded by a definition on
///     every path from the function entry (ESP/EBP are defined by the
///     prologue; a Call defines EAX/ECX/EDX).
///  3. EflagsFlow -- every Jcc/Setcc is reached by a CMP/TEST with no
///     EFLAGS-clobbering instruction in between, on every path. This is
///     the checker that statically validates Table 1: every candidate
///     NOP must be flag-transparent (flagEffect == Neutral) to be
///     inserted between a flag definition and its consumer.
///  4. StackBalance -- push/pop/AdjustSP depth is consistent at every
///     join, never underflows, covers each Call's pushed arguments, and
///     returns to zero at every Ret.
///  5. FrameBounds -- LoadFrame/StoreFrame/LeaFrame displacements stay
///     inside the function's frame: scalar slots within
///     [-FrameBytes, -4] and at or above ValueSlotsLowDisp, LeaFrame
///     only in the object area strictly below it, positive
///     displacements only at incoming parameter slots.
///  6. CallConv -- cdecl conformance: no read of caller-saved ECX/EDX
///     after a Call before redefinition, IDIV preceded by CDQ with
///     nothing but NOPs in between, divisor not in EAX/EDX, and no
///     writes to ESP/EBP outside AdjustSP.
///
/// Diagnostics reuse verify::ErrorCode (one code per checker) and carry
/// function name, block index, instruction index, and the printed
/// instruction, e.g.
///
///   [analysis-flags-unproven] main: mbb2 #4 'jl mbb1': ...
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_ANALYSIS_ANALYSIS_H
#define PGSD_ANALYSIS_ANALYSIS_H

#include "lir/MIR.h"
#include "verify/Diagnostic.h"
#include "x86/X86.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pgsd {
namespace analysis {

/// The checkers, in the order analyzeModule runs them per function.
enum class CheckerKind : uint8_t {
  CfgWellFormed = 0,
  RegLiveness,
  EflagsFlow,
  StackBalance,
  FrameBounds,
  CallConv,
};

/// Number of checkers (for sweep loops).
inline constexpr unsigned NumCheckers = 6;

/// Returns a stable kebab-case name ("cfg-well-formed", ...).
const char *checkerName(CheckerKind K);

/// Returns the verify::ErrorCode this checker's diagnostics carry.
verify::ErrorCode checkerErrorCode(CheckerKind K);

/// How one machine instruction interacts with EFLAGS on real IA-32.
///
/// `Defines` is deliberately limited to CMP and TEST: those are the only
/// producers whose consumption the generated code (and the interpreter's
/// lazy flag model) relies on. Arithmetic that *sets* flags as a side
/// effect (ADD, NEG, shifts, ...) is classified as `Clobbers`, because a
/// Jcc reading those flags would diverge between the interpreter and the
/// emitted binary.
enum class FlagEffect : uint8_t {
  Neutral,  ///< Leaves EFLAGS untouched (all Table 1 NOPs, MOVs, ...).
  Defines,  ///< CMP/TEST: establishes the state Jcc/Setcc consume.
  Clobbers, ///< Overwrites EFLAGS with values no consumer may rely on.
};

/// Classifies \p I. The NOP-insertion pass consults this for every
/// candidate before placing it: only Neutral instructions may be
/// inserted between a flag definition and its consumer, which is the
/// static form of Table 1's "preserves all processor state" claim.
FlagEffect flagEffect(const mir::MInstr &I);

/// True when \p I is an inserted diversity NOP: an instruction the
/// NOP-insertion pass may have added and every comparison against the
/// baseline must ignore. This is the single definition shared by the
/// verifier's NOP-only structural diff and the equivalence prover's
/// normalization, so the two can never disagree about what counts as an
/// inserted NOP. Every MOp::Nop carries a Table 1 candidate (x86/Nops.h)
/// and is flag-transparent by construction (flagEffect == Neutral).
bool isInsertedNop(const mir::MInstr &I);

/// Returns pointers to the instructions of \p BB that survive NOP
/// normalization (everything isInsertedNop skips), in order.
std::vector<const mir::MInstr *> nonNopInstrs(const mir::MBasicBlock &BB);

/// Invokes \p Fn for every register \p I reads, explicit operands and
/// implicit uses (CDQ/IDIV/Ret read EAX, ShiftRC reads CL, ...) alike.
/// ESP/EBP uses by push/pop/frame instructions are not reported; those
/// registers are maintained by the prologue and tracked structurally.
void forEachReadReg(const mir::MInstr &I,
                    const std::function<void(x86::Reg)> &Fn);

/// Invokes \p Fn for every register \p I writes. A Call reports
/// EAX/ECX/EDX (the cdecl caller-saved set): they are *defined* after
/// the call in the liveness sense, while the CallConv checker separately
/// rejects reads of the clobbered ECX/EDX.
void forEachWrittenReg(const mir::MInstr &I,
                       const std::function<void(x86::Reg)> &Fn);

/// Number of argument words \p Target consumes from the stack.
unsigned calleeArgWords(const mir::MModule &M, const ir::Callee &Target);

/// Configuration of one analysis run.
struct AnalysisOptions {
  /// Per-checker enable switches, indexed by CheckerKind.
  bool Enabled[NumCheckers] = {true, true, true, true, true, true};

  /// Diagnostic cap per run; a corrupt module yields a bounded report
  /// instead of one diagnostic per instruction.
  unsigned MaxDiagnostics = 64;

  /// Convenience: everything on (the default).
  static AnalysisOptions all();
  /// Convenience: only \p K (plus CfgWellFormed, which gates the
  /// flow-sensitive checkers and is always kept on).
  static AnalysisOptions only(CheckerKind K);
};

/// Renders "func: mbb<B> #<K> '<instr>'" for diagnostics.
std::string instrLocation(const mir::MFunction &F, uint32_t Block,
                          uint32_t Instr);

/// Runs the enabled checkers over every function of \p M. An empty
/// report is a proof (within the rule set) that the module upholds the
/// invariants diversification must preserve.
verify::Report analyzeModule(const mir::MModule &M,
                             const AnalysisOptions &Opts =
                                 AnalysisOptions());

/// The EFLAGS checker alone (with its CFG gate). The NOP-insertion pass
/// asserts this stays clean after every transformation.
verify::Report checkEflags(const mir::MModule &M);

} // namespace analysis
} // namespace pgsd

#endif // PGSD_ANALYSIS_ANALYSIS_H
