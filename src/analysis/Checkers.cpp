//===-- analysis/Checkers.cpp - The six MIR safety checkers ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Each checker proves one invariant class that diversification (and the
// backend before it) must preserve. The flow-sensitive ones share the
// forward worklist engine in Dataflow.h: solve to fixpoint, then re-walk
// every reached block applying the same transfer function and checking
// each instruction's precondition against the in-flight state.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkers.h"

#include "analysis/Dataflow.h"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

using namespace pgsd;
using namespace pgsd::analysis;
using mir::MBasicBlock;
using mir::MFunction;
using mir::MInstr;
using mir::MModule;
using mir::MOp;
using x86::Reg;

namespace {

/// Appends one location-tagged diagnostic, honouring the report cap.
void addDiag(verify::Report &R, const AnalysisOptions &Opts,
             CheckerKind K, const MFunction &F, uint32_t Block,
             uint32_t Instr, const std::string &Msg) {
  if (R.Diags.size() >= Opts.MaxDiagnostics)
    return;
  R.add(checkerErrorCode(K), instrLocation(F, Block, Instr) + ": " + Msg);
}

std::string fmt(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

std::string fmt(const char *Format, ...) {
  char Buf[192];
  va_list Ap;
  va_start(Ap, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Ap);
  va_end(Ap);
  return Buf;
}

uint8_t regBit(Reg R) { return static_cast<uint8_t>(1u << x86::regNum(R)); }

} // namespace

//===----------------------------------------------------------------------===//
// 1. CFG well-formedness (structural gate)
//===----------------------------------------------------------------------===//

void detail::checkCfgWellFormed(const MModule &M, uint32_t FuncIdx,
                                const AnalysisOptions &Opts,
                                verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  const CheckerKind CK = CheckerKind::CfgWellFormed;
  if (F.Blocks.empty()) {
    if (R.Diags.size() < Opts.MaxDiagnostics)
      R.add(checkerErrorCode(CK),
            F.Name + ": machine function has no blocks");
    return;
  }
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    const MBasicBlock &BB = F.Blocks[B];
    bool InBranchGroup = false;
    bool Ended = false;
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      if (Ended) {
        addDiag(R, Opts, CK, F, B, K,
                "instruction after the block's jmp/ret terminator");
        break; // everything past the terminator is equally dead
      }
      if (I.Op == MOp::Jcc) {
        InBranchGroup = true;
      } else if (I.Op == MOp::Jmp || I.Op == MOp::Ret) {
        Ended = true;
      } else if (InBranchGroup && I.Op != MOp::Nop) {
        // Only NOPs (from the diversity pass) may interleave with the
        // trailing branch group.
        addDiag(R, Opts, CK, F, B, K,
                "non-branch instruction inside the trailing branch group");
      }
      if ((I.Op == MOp::Jmp || I.Op == MOp::Jcc) &&
          (I.Imm < 0 || static_cast<size_t>(I.Imm) >= F.Blocks.size()))
        addDiag(R, Opts, CK, F, B, K,
                fmt("branch target mbb%d out of range (function has %zu "
                    "blocks)",
                    I.Imm, F.Blocks.size()));
      if (I.Op == MOp::Call && !I.Target.IsIntrinsic &&
          I.Target.Func >= M.Functions.size())
        addDiag(R, Opts, CK, F, B, K,
                fmt("call target func#%u out of range (module has %zu "
                    "functions)",
                    I.Target.Func, M.Functions.size()));
      if (I.Op == MOp::ProfInc &&
          (I.Imm < 0 ||
           static_cast<uint32_t>(I.Imm) >= M.NumProfCounters))
        addDiag(R, Opts, CK, F, B, K,
                fmt("profile counter #%d out of range (module has %u "
                    "counters)",
                    I.Imm, M.NumProfCounters));
      if ((I.Op == MOp::Setcc && x86::regNum(I.Dst) >= 4) ||
          (I.Op == MOp::Movzx8 && x86::regNum(I.Src) >= 4))
        addDiag(R, Opts, CK, F, B, K,
                "operand has no 8-bit subregister (need eax/ecx/edx/ebx)");
    }
    if (!Ended && B + 1 == F.Blocks.size())
      addDiag(R, Opts, CK, F, B,
              BB.Instrs.empty()
                  ? 0
                  : static_cast<uint32_t>(BB.Instrs.size()) - 1,
              "last block falls through the end of the function");
  }
}

//===----------------------------------------------------------------------===//
// 2. Register def-before-use liveness
//===----------------------------------------------------------------------===//

namespace {

/// Bitmask of registers holding a definition on *every* path from entry.
struct LivenessDomain {
  using State = uint8_t;

  State boundary() const {
    // The prologue establishes ESP and EBP; everything else is garbage
    // until the function writes it.
    return regBit(Reg::ESP) | regBit(Reg::EBP);
  }

  void transfer(State &S, const MInstr &I, uint32_t, uint32_t) const {
    forEachWrittenReg(I, [&](Reg W) { S |= regBit(W); });
  }

  bool meetInto(State &Into, const State &From) const {
    State Met = Into & From; // defined only when defined on both paths
    if (Met == Into)
      return false;
    Into = Met;
    return true;
  }
};

} // namespace

void detail::checkRegLiveness(const MModule &M, uint32_t FuncIdx,
                              const AnalysisOptions &Opts,
                              verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  LivenessDomain Dom;
  auto Fix = solveForward(F, Dom);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Fix.Reached[B])
      continue;
    uint8_t S = Fix.In[B];
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      forEachReadReg(I, [&](Reg Read) {
        if (!(S & regBit(Read)))
          addDiag(R, Opts, CheckerKind::RegLiveness, F, B, K,
                  fmt("reads %s, which no definition reaches on every "
                      "path from entry",
                      x86::regName(Read)));
      });
      Dom.transfer(S, I, B, K);
    }
  }
}

//===----------------------------------------------------------------------===//
// 3. EFLAGS dataflow
//===----------------------------------------------------------------------===//

namespace {

/// Lattice: Defined > Undefined > Clobbered (meet takes the minimum).
/// Clobbered states remember the first clobbering site for diagnostics.
struct FlagsDomain {
  struct State {
    enum Rank : uint8_t { Clobbered = 0, Undefined = 1, Defined = 2 };
    uint8_t R = Undefined;
    uint32_t ClobBlock = 0;
    uint32_t ClobInstr = 0;
  };

  State boundary() const { return State(); } // Undefined at entry

  void transfer(State &S, const MInstr &I, uint32_t B, uint32_t K) const {
    switch (flagEffect(I)) {
    case FlagEffect::Defines:
      S.R = State::Defined;
      break;
    case FlagEffect::Clobbers:
      S.R = State::Clobbered;
      S.ClobBlock = B;
      S.ClobInstr = K;
      break;
    case FlagEffect::Neutral:
      break;
    }
  }

  bool meetInto(State &Into, const State &From) const {
    if (From.R >= Into.R)
      return false;
    Into = From;
    return true;
  }
};

} // namespace

void detail::checkEflagsFlow(const MModule &M, uint32_t FuncIdx,
                             const AnalysisOptions &Opts,
                             verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  FlagsDomain Dom;
  auto Fix = solveForward(F, Dom);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Fix.Reached[B])
      continue;
    FlagsDomain::State S = Fix.In[B];
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      if (I.Op == MOp::Jcc || I.Op == MOp::Setcc) {
        if (S.R == FlagsDomain::State::Undefined)
          addDiag(R, Opts, CheckerKind::EflagsFlow, F, B, K,
                  "consumes EFLAGS that no cmp/test defines on some path "
                  "from entry");
        else if (S.R == FlagsDomain::State::Clobbered)
          addDiag(R, Opts, CheckerKind::EflagsFlow, F, B, K,
                  fmt("consumes EFLAGS clobbered by '%s' at mbb%u #%u",
                      mir::printInstr(
                          F.Blocks[S.ClobBlock].Instrs[S.ClobInstr])
                          .c_str(),
                      S.ClobBlock, S.ClobInstr));
      }
      Dom.transfer(S, I, B, K);
    }
  }
}

//===----------------------------------------------------------------------===//
// 4. Push/pop stack-depth balance
//===----------------------------------------------------------------------===//

namespace {

/// Bytes pushed relative to the post-prologue stack pointer. Conflict
/// marks a join whose predecessors disagree -- per-path balance broken.
struct StackDomain {
  struct State {
    bool Conflict = false;
    int32_t Depth = 0;
  };

  State boundary() const { return State(); }

  void transfer(State &S, const MInstr &I, uint32_t, uint32_t) const {
    if (S.Conflict)
      return;
    switch (I.Op) {
    case MOp::Push:
    case MOp::PushI:
      S.Depth += 4;
      break;
    case MOp::Pop:
      S.Depth -= 4;
      break;
    case MOp::AdjustSP:
      S.Depth -= I.Imm; // add esp, imm releases imm pushed bytes
      break;
    default:
      // Call is depth-neutral: the callee pops only the return address
      // (cdecl: the caller releases arguments via AdjustSP).
      break;
    }
  }

  bool meetInto(State &Into, const State &From) const {
    if (Into.Conflict)
      return false;
    if (From.Conflict || From.Depth != Into.Depth) {
      Into.Conflict = true;
      return true;
    }
    return false;
  }
};

} // namespace

void detail::checkStackBalance(const MModule &M, uint32_t FuncIdx,
                               const AnalysisOptions &Opts,
                               verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  StackDomain Dom;
  auto Fix = solveForward(F, Dom);
  const CheckerKind CK = CheckerKind::StackBalance;

  // Per-block out-states, to report a conflict only at the *frontier*
  // join (the first block where balanced paths disagree), not at every
  // block downstream of it.
  std::vector<StackDomain::State> Out(F.Blocks.size());
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    Out[B] = Fix.In[B];
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K)
      Dom.transfer(Out[B], BB.Instrs[K], B, K);
  }
  std::vector<bool> HasCleanPred(F.Blocks.size(), false);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Fix.Reached[B])
      continue;
    for (uint32_t Succ : F.successors(B))
      if (!Out[B].Conflict)
        HasCleanPred[Succ] = true;
  }

  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Fix.Reached[B])
      continue;
    StackDomain::State S = Fix.In[B];
    if (S.Conflict) {
      if (HasCleanPred[B])
        addDiag(R, Opts, CK, F, B, 0,
                "stack depth at block entry differs between predecessor "
                "paths");
      continue; // depth unknown; instruction checks would be noise
    }
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      switch (I.Op) {
      case MOp::Pop:
        if (S.Depth < 4)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("pop underflows the pushed area (depth %d bytes)",
                      S.Depth));
        break;
      case MOp::AdjustSP:
        if (S.Depth - I.Imm < 0)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("stack adjustment by %d drops depth below zero "
                      "(depth %d bytes)",
                      I.Imm, S.Depth));
        break;
      case MOp::Call: {
        int32_t Need =
            4 * static_cast<int32_t>(calleeArgWords(M, I.Target));
        if (S.Depth < Need)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("call needs %d argument bytes but only %d are "
                      "pushed",
                      Need, S.Depth));
        break;
      }
      case MOp::Ret:
        if (S.Depth != 0)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("returns with %d bytes still pushed", S.Depth));
        break;
      default:
        break;
      }
      Dom.transfer(S, I, B, K);
    }
  }
}

//===----------------------------------------------------------------------===//
// 5. Frame-slot bounds
//===----------------------------------------------------------------------===//

void detail::checkFrameBounds(const MModule &M, uint32_t FuncIdx,
                              const AnalysisOptions &Opts,
                              verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  const CheckerKind CK = CheckerKind::FrameBounds;
  const int32_t Low = -static_cast<int32_t>(F.FrameBytes);
  const int32_t ParamHigh = 8 + 4 * (static_cast<int32_t>(F.NumParams) - 1);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      if (I.Op != MOp::LoadFrame && I.Op != MOp::StoreFrame &&
          I.Op != MOp::LeaFrame)
        continue;
      if (I.Imm % 4 != 0) {
        addDiag(R, Opts, CK, F, B, K,
                fmt("frame access at [ebp%+d] is not 4-byte aligned",
                    I.Imm));
        continue;
      }
      if (I.Imm >= 0) {
        // Positive displacements may only read/write incoming parameter
        // slots; [ebp+0]/[ebp+4] are the saved EBP and return address.
        if (I.Op == MOp::LeaFrame)
          addDiag(R, Opts, CK, F, B, K,
                  "takes the address of a parameter slot (frame objects "
                  "live below ebp)");
        else if (F.NumParams == 0 || I.Imm < 8 || I.Imm > ParamHigh)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("frame access at [ebp%+d] does not address one of "
                      "the %u incoming parameter slots",
                      I.Imm, F.NumParams));
        continue;
      }
      if (I.Imm < Low) {
        addDiag(R, Opts, CK, F, B, K,
                fmt("frame access at [ebp%+d] escapes the %u-byte frame",
                    I.Imm, F.FrameBytes));
        continue;
      }
      // Region separation below EBP: scalar value slots live in
      // [ValueSlotsLowDisp, -4]; frame objects strictly below. A scalar
      // load from the object area (or a lea into the scalar area) means
      // the backend's no-alias reasoning is broken.
      if (I.Op == MOp::LeaFrame) {
        if (I.Imm >= F.ValueSlotsLowDisp)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("lea target [ebp%+d] lies in the scalar value-slot "
                      "area (objects live strictly below [ebp%+d])",
                      I.Imm, F.ValueSlotsLowDisp));
      } else if (I.Imm < F.ValueSlotsLowDisp) {
        addDiag(R, Opts, CK, F, B, K,
                fmt("scalar frame access at [ebp%+d] lies in the "
                    "frame-object area (value slots start at [ebp%+d])",
                    I.Imm, F.ValueSlotsLowDisp));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// 6. Calling-convention conformance
//===----------------------------------------------------------------------===//

namespace {

/// Bitmask of caller-saved registers whose value a preceding Call has
/// destroyed and nothing has redefined since, on *some* path.
struct PoisonDomain {
  using State = uint8_t;

  State boundary() const { return 0; }

  void transfer(State &S, const MInstr &I, uint32_t, uint32_t) const {
    forEachWrittenReg(I, [&](Reg W) {
      S &= static_cast<uint8_t>(~regBit(W));
    });
    if (I.Op == MOp::Call)
      S |= regBit(Reg::ECX) | regBit(Reg::EDX);
  }

  bool meetInto(State &Into, const State &From) const {
    State Met = Into | From; // poisoned on any path is poisoned
    if (Met == Into)
      return false;
    Into = Met;
    return true;
  }
};

} // namespace

void detail::checkCallConv(const MModule &M, uint32_t FuncIdx,
                           const AnalysisOptions &Opts,
                           verify::Report &R) {
  const MFunction &F = M.Functions[FuncIdx];
  const CheckerKind CK = CheckerKind::CallConv;
  PoisonDomain Dom;
  auto Fix = solveForward(F, Dom);
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Fix.Reached[B])
      continue;
    uint8_t S = Fix.In[B];
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      forEachReadReg(I, [&](Reg Read) {
        if (S & regBit(Read))
          addDiag(R, Opts, CK, F, B, K,
                  fmt("reads %s, which a preceding call clobbered "
                      "(cdecl caller-saved), before any redefinition",
                      x86::regName(Read)));
      });
      Dom.transfer(S, I, B, K);
    }
  }

  // Local shape checks (no dataflow needed).
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    const MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
      const MInstr &I = BB.Instrs[K];
      // Writes to ESP/EBP happen only in the expanded prologue/epilogue
      // and via AdjustSP; anything else corrupts the frame linkage.
      forEachWrittenReg(I, [&](Reg W) {
        if (W == Reg::ESP || W == Reg::EBP)
          addDiag(R, Opts, CK, F, B, K,
                  fmt("writes %s outside the prologue/epilogue contract",
                      x86::regName(W)));
      });
      if (I.Op != MOp::Idiv)
        continue;
      // IDIV needs its EDX:EAX dividend established by a CDQ that is
      // still in effect: only flag-transparent NOPs may sit in between
      // (exactly what the diversity pass inserts).
      bool SetupOk = false;
      for (uint32_t J = K; J-- > 0;) {
        if (BB.Instrs[J].Op == MOp::Nop)
          continue;
        SetupOk = BB.Instrs[J].Op == MOp::Cdq;
        break;
      }
      if (!SetupOk)
        addDiag(R, Opts, CK, F, B, K,
                "idiv without a cdq immediately before it: EDX:EAX "
                "dividend not set up");
      if (I.Src == Reg::EAX || I.Src == Reg::EDX || I.Src == Reg::ESP ||
          I.Src == Reg::EBP)
        addDiag(R, Opts, CK, F, B, K,
                fmt("idiv divisor in %s conflicts with the EDX:EAX "
                    "dividend or frame registers",
                    x86::regName(I.Src)));
    }
  }
}
