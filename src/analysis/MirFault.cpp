//===-- analysis/MirFault.cpp - Seeded MIR-level fault injection -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Site selection is the whole game here: every class first enumerates
// all positions where the mutation provably violates its paired
// checker's invariant (using the same dataflow facts the checker will
// compute), then lets the seed pick uniformly among them. That makes
// the tests' 100%-detection assertion meaningful -- a surviving fault
// indicts the checker, never the injector's luck.
//
//===----------------------------------------------------------------------===//

#include "analysis/MirFault.h"

#include "analysis/Dataflow.h"
#include "support/Rng.h"

#include <array>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::analysis;
using mir::MBasicBlock;
using mir::MFunction;
using mir::MInstr;
using mir::MModule;
using mir::MOp;
using x86::Reg;

namespace {

/// One mutation site: function / block / instruction index, plus a
/// class-specific discriminator for classes with several shapes.
struct Site {
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t Instr = 0;
  uint32_t Shape = 0;
};

/// Reaching-definitions mask, same lattice the RegLiveness checker uses
/// (kept local: the checker's domain is an implementation detail of
/// Checkers.cpp, and this file must agree with forEachWrittenReg anyway).
struct LiveDomain {
  using State = uint8_t;
  State boundary() const {
    return static_cast<uint8_t>((1u << x86::regNum(Reg::ESP)) |
                                (1u << x86::regNum(Reg::EBP)));
  }
  void transfer(State &S, const MInstr &I, uint32_t, uint32_t) const {
    forEachWrittenReg(I, [&](Reg W) {
      S |= static_cast<uint8_t>(1u << x86::regNum(W));
    });
  }
  bool meetInto(State &Into, const State &From) const {
    State Met = Into & From;
    if (Met == Into)
      return false;
    Into = Met;
    return true;
  }
};

uint8_t bit(Reg R) { return static_cast<uint8_t>(1u << x86::regNum(R)); }

/// True when \p I writes its Dst without reading it (or anything whose
/// removal would touch flags or the stack) -- safe to delete for a pure
/// use-before-def violation.
bool isPureDef(const MInstr &I) {
  switch (I.Op) {
  case MOp::MovRR:
  case MOp::MovRI:
  case MOp::MovGlobal:
  case MOp::Load:
  case MOp::LoadFrame:
  case MOp::LeaFrame:
    return true;
  default:
    return false;
  }
}

void describe(std::string *Desc, const MModule &M, const Site &S,
              const char *What) {
  if (!Desc)
    return;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%s at %s: mbb%u #%u", What,
                M.Functions[S.Func].Name.c_str(), S.Block, S.Instr);
  *Desc = Buf;
}

std::vector<Site> sitesCfgBreak(const MModule &M) {
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != M.Functions.size(); ++F)
    for (uint32_t B = 0; B != M.Functions[F].Blocks.size(); ++B) {
      const MBasicBlock &BB = M.Functions[F].Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        const MInstr &I = BB.Instrs[K];
        if (I.Op == MOp::Jmp || I.Op == MOp::Jcc)
          Sites.push_back({F, B, K, 0}); // retarget out of range
        else if (I.Op == MOp::ProfInc)
          Sites.push_back({F, B, K, 1}); // counter id out of range
        else if (I.Op == MOp::Ret)
          Sites.push_back({F, B, K, 2}); // plant code after terminator
      }
    }
  return Sites;
}

std::vector<Site> sitesDroppedDef(const MModule &M) {
  std::vector<Site> Sites;
  LiveDomain Dom;
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    const MFunction &Fn = M.Functions[F];
    auto Fix = solveForward(Fn, Dom);
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (!Fix.Reached[B])
        continue;
      uint8_t S = Fix.In[B];
      const MBasicBlock &BB = Fn.Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        const MInstr &I = BB.Instrs[K];
        if (isPureDef(I) && !(S & bit(I.Dst))) {
          // Deleting this leaves Dst undefined at block entry and
          // beyond; eligible when a read of Dst follows in-block before
          // any other definition of it.
          for (uint32_t J = K + 1; J != BB.Instrs.size(); ++J) {
            bool Reads = false, Writes = false;
            forEachReadReg(BB.Instrs[J],
                           [&](Reg R) { Reads |= R == I.Dst; });
            if (Reads) {
              Sites.push_back({F, B, K, 0});
              break;
            }
            forEachWrittenReg(BB.Instrs[J],
                              [&](Reg R) { Writes |= R == I.Dst; });
            if (Writes)
              break;
          }
        }
        Dom.transfer(S, I, B, K);
      }
    }
  }
  return Sites;
}

std::vector<Site> sitesFlagClobber(const MModule &M) {
  std::vector<Site> Sites;
  LiveDomain Dom; // only for the reached-block mask
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    const MFunction &Fn = M.Functions[F];
    auto Fix = solveForward(Fn, Dom);
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (!Fix.Reached[B])
        continue;
      const MBasicBlock &BB = Fn.Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        if (flagEffect(BB.Instrs[K]) != FlagEffect::Defines)
          continue;
        // Eligible when a consumer follows with nothing but
        // flag-neutral instructions in between: the inserted clobber
        // lands at K+1, upstream of the consumer on every path to it.
        for (uint32_t J = K + 1; J != BB.Instrs.size(); ++J) {
          const MInstr &N = BB.Instrs[J];
          if (N.Op == MOp::Jcc || N.Op == MOp::Setcc) {
            Sites.push_back({F, B, K, 0});
            break;
          }
          if (flagEffect(N) != FlagEffect::Neutral)
            break;
        }
      }
    }
  }
  return Sites;
}

std::vector<Site> sitesUnbalancedPush(const MModule &M) {
  std::vector<Site> Sites;
  LiveDomain Dom;
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    const MFunction &Fn = M.Functions[F];
    auto Fix = solveForward(Fn, Dom);
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (!Fix.Reached[B])
        continue;
      const MBasicBlock &BB = Fn.Blocks[B];
      bool SawJcc = false;
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        SawJcc |= BB.Instrs[K].Op == MOp::Jcc;
        // Push directly before a reached Ret (outside any branch
        // group): the Ret's depth check fires unconditionally.
        if (BB.Instrs[K].Op == MOp::Ret && !SawJcc)
          Sites.push_back({F, B, K, 0});
      }
    }
  }
  return Sites;
}

std::vector<Site> sitesFrameEscape(const MModule &M) {
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != M.Functions.size(); ++F)
    for (uint32_t B = 0; B != M.Functions[F].Blocks.size(); ++B) {
      const MBasicBlock &BB = M.Functions[F].Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        MOp Op = BB.Instrs[K].Op;
        if (Op == MOp::LoadFrame || Op == MOp::StoreFrame ||
            Op == MOp::LeaFrame)
          Sites.push_back({F, B, K, 0});
      }
    }
  return Sites;
}

std::vector<Site> sitesIllegalReorder(const MModule &M) {
  // A StoreFrame at K whose value is read back by a LoadFrame at J
  // (same displacement, no intervening store to it): hoisting the load
  // above the store reorders across a true memory dependence, so the
  // variant's effect trace shows the load before the store while the
  // baseline's shows the opposite -- a guaranteed positional mismatch
  // the prover's read-run commutation cannot (and must not) absorb.
  // Shape carries J.
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != M.Functions.size(); ++F)
    for (uint32_t B = 0; B != M.Functions[F].Blocks.size(); ++B) {
      const MBasicBlock &BB = M.Functions[F].Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        if (BB.Instrs[K].Op != MOp::StoreFrame)
          continue;
        for (uint32_t J = K + 1; J != BB.Instrs.size(); ++J) {
          const MInstr &N = BB.Instrs[J];
          if (N.Op == MOp::StoreFrame && N.Imm == BB.Instrs[K].Imm)
            break;
          if (N.Op == MOp::Jmp || N.Op == MOp::Jcc || N.Op == MOp::Ret)
            break;
          if (N.Op == MOp::LoadFrame && N.Imm == BB.Instrs[K].Imm) {
            Sites.push_back({F, B, K, J});
            break;
          }
        }
      }
    }
  return Sites;
}

std::vector<Site> sitesLiveRangeSwap(const MModule &M) {
  // A StoreFrame at K whose source register r was last defined in-block
  // by a value-producing instruction (not a plain copy or pop): rewrite
  // the store to read a register s that is untouched so far in the
  // block. The variant's store event then carries the entry symbol of
  // s where the baseline carries r's computed term -- different term
  // kinds, so the mismatch survives every callee-saved renaming the
  // prover may try. Shape carries s's register number.
  std::vector<Site> Sites;
  for (uint32_t F = 0; F != M.Functions.size(); ++F)
    for (uint32_t B = 0; B != M.Functions[F].Blocks.size(); ++B) {
      const MBasicBlock &BB = M.Functions[F].Blocks[B];
      uint8_t Written = 0;
      std::array<MOp, x86::NumRegs> LastDef;
      LastDef.fill(MOp::Nop);
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        const MInstr &I = BB.Instrs[K];
        if (I.Op == MOp::StoreFrame) {
          unsigned Rn = x86::regNum(I.Src);
          if ((Written & (1u << Rn)) && LastDef[Rn] != MOp::MovRR &&
              LastDef[Rn] != MOp::Pop)
            for (unsigned Sn = 0; Sn != x86::NumRegs; ++Sn) {
              if (Sn == Rn || Sn == x86::regNum(Reg::ESP) ||
                  Sn == x86::regNum(Reg::EBP) ||
                  (Written & (1u << Sn)))
                continue;
              Sites.push_back({F, B, K, Sn});
              break;
            }
        }
        forEachWrittenReg(I, [&](Reg W) {
          Written |= static_cast<uint8_t>(1u << x86::regNum(W));
          LastDef[x86::regNum(W)] = I.Op;
        });
      }
    }
  return Sites;
}

std::vector<Site> sitesCallContractBreak(const MModule &M) {
  std::vector<Site> Sites;
  LiveDomain Dom;
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    const MFunction &Fn = M.Functions[F];
    auto Fix = solveForward(Fn, Dom);
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const MBasicBlock &BB = Fn.Blocks[B];
      for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
        const MInstr &I = BB.Instrs[K];
        if (I.Op == MOp::Cdq) {
          // Deleting the CDQ orphans the IDIV it feeds (the dividend
          // setup check is structural, so reachability is irrelevant).
          for (uint32_t J = K + 1; J != BB.Instrs.size(); ++J) {
            if (BB.Instrs[J].Op == MOp::Nop)
              continue;
            if (BB.Instrs[J].Op == MOp::Idiv)
              Sites.push_back({F, B, K, 0});
            break;
          }
        } else if (I.Op == MOp::Call && Fix.Reached[B]) {
          // Reading ECX right after the call consumes a caller-saved
          // register the callee destroyed.
          Sites.push_back({F, B, K, 1});
        }
      }
    }
  }
  return Sites;
}

} // namespace

const char *analysis::mirFaultClassName(MirFaultClass C) {
  switch (C) {
  case MirFaultClass::CfgBreak:
    return "cfg-break";
  case MirFaultClass::DroppedDef:
    return "dropped-def";
  case MirFaultClass::FlagClobber:
    return "flag-clobber";
  case MirFaultClass::UnbalancedPush:
    return "unbalanced-push";
  case MirFaultClass::FrameEscape:
    return "frame-escape";
  case MirFaultClass::CallContractBreak:
    return "call-contract-break";
  case MirFaultClass::IllegalReorder:
    return "illegal-reorder";
  case MirFaultClass::LiveRangeSwap:
    return "live-range-swap";
  }
  return "<bad>";
}

CheckerKind analysis::mirFaultTargetChecker(MirFaultClass C) {
  return static_cast<CheckerKind>(static_cast<uint8_t>(C));
}

bool analysis::injectMirFault(MModule &M, MirFaultClass C, uint64_t Seed,
                              std::string *Desc) {
  std::vector<Site> Sites;
  switch (C) {
  case MirFaultClass::CfgBreak:
    Sites = sitesCfgBreak(M);
    break;
  case MirFaultClass::DroppedDef:
    Sites = sitesDroppedDef(M);
    break;
  case MirFaultClass::FlagClobber:
    Sites = sitesFlagClobber(M);
    break;
  case MirFaultClass::UnbalancedPush:
    Sites = sitesUnbalancedPush(M);
    break;
  case MirFaultClass::FrameEscape:
    Sites = sitesFrameEscape(M);
    break;
  case MirFaultClass::CallContractBreak:
    Sites = sitesCallContractBreak(M);
    break;
  case MirFaultClass::IllegalReorder:
    Sites = sitesIllegalReorder(M);
    break;
  case MirFaultClass::LiveRangeSwap:
    Sites = sitesLiveRangeSwap(M);
    break;
  }
  if (Sites.empty())
    return false;

  Rng R(Seed);
  const Site S = Sites[R.nextBelow(Sites.size())];
  MFunction &Fn = M.Functions[S.Func];
  std::vector<MInstr> &Instrs = Fn.Blocks[S.Block].Instrs;
  const MInstr Victim = Instrs[S.Instr];

  switch (C) {
  case MirFaultClass::CfgBreak:
    if (S.Shape == 0) {
      Instrs[S.Instr].Imm = static_cast<int32_t>(Fn.Blocks.size()) + 3;
      describe(Desc, M, S, "retargeted branch out of range");
    } else if (S.Shape == 1) {
      Instrs[S.Instr].Imm = static_cast<int32_t>(M.NumProfCounters) + 5;
      describe(Desc, M, S, "retargeted profile counter out of range");
    } else {
      MInstr Dead;
      Dead.Op = MOp::MovRI;
      Dead.Dst = Reg::EAX;
      Dead.Imm = 0;
      Instrs.insert(Instrs.begin() + S.Instr + 1, Dead);
      describe(Desc, M, S, "planted instruction after ret");
    }
    break;
  case MirFaultClass::DroppedDef:
    describe(Desc, M, S, "dropped definition");
    Instrs.erase(Instrs.begin() + S.Instr);
    break;
  case MirFaultClass::FlagClobber: {
    // ADD r, 0 preserves the register's value (so nothing else changes)
    // while overwriting every arithmetic flag the consumer needs. The
    // operand register is whatever the cmp/test just read, hence
    // certainly defined.
    MInstr Clobber;
    Clobber.Op = MOp::AluRI;
    Clobber.Alu = x86::AluOp::Add;
    Clobber.Dst = Victim.Dst;
    Clobber.Imm = 0;
    Instrs.insert(Instrs.begin() + S.Instr + 1, Clobber);
    describe(Desc, M, S, "inserted flag clobber after");
    break;
  }
  case MirFaultClass::UnbalancedPush: {
    MInstr Push;
    Push.Op = MOp::PushI;
    Push.Imm = 0;
    Instrs.insert(Instrs.begin() + S.Instr, Push);
    describe(Desc, M, S, "inserted unmatched push before");
    break;
  }
  case MirFaultClass::FrameEscape:
    Instrs[S.Instr].Imm = -static_cast<int32_t>(Fn.FrameBytes) - 8;
    describe(Desc, M, S, "redirected frame access out of bounds");
    break;
  case MirFaultClass::CallContractBreak:
    if (S.Shape == 0) {
      describe(Desc, M, S, "deleted cdq before idiv");
      Instrs.erase(Instrs.begin() + S.Instr);
    } else {
      MInstr Read;
      Read.Op = MOp::MovRR;
      Read.Dst = Reg::EAX;
      Read.Src = Reg::ECX;
      Instrs.insert(Instrs.begin() + S.Instr + 1, Read);
      describe(Desc, M, S, "read caller-saved ecx after call");
    }
    break;
  case MirFaultClass::IllegalReorder: {
    MInstr Ld = Instrs[S.Shape];
    Instrs.erase(Instrs.begin() + S.Shape);
    Instrs.insert(Instrs.begin() + S.Instr, Ld);
    describe(Desc, M, S, "hoisted frame load above its store");
    break;
  }
  case MirFaultClass::LiveRangeSwap:
    Instrs[S.Instr].Src = static_cast<Reg>(S.Shape);
    describe(Desc, M, S, "swapped stored value to a conflicting register");
    break;
  }
  return true;
}
