//===-- analysis/Dataflow.h - Forward dataflow engine ------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared dataflow engine under every flow-sensitive checker in
/// analysis/: a forward worklist solver over the machine-block CFG
/// (mir::MFunction::successors). Each checker supplies a small *domain*
/// -- an abstract state plus boundary/transfer/meet -- and receives the
/// fixpoint state at entry to every reachable block; it then re-walks
/// each block once, applying the transfer function instruction by
/// instruction and emitting diagnostics where an instruction's
/// precondition does not hold in the current state.
///
/// The solver propagates one out-state per block to all successors
/// rather than per-edge states. That is exact, not merely conservative,
/// for structurally valid MIR: the only instructions that may appear
/// between a Jcc and the end of its block are further branches and NOPs
/// (mir::verify's branch-group rule), and those are identity transfers
/// in every domain defined here. Structurally invalid MIR is rejected by
/// the CFG well-formedness checker before any flow-sensitive checker
/// runs, so the solver never sees a branch target out of range.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_ANALYSIS_DATAFLOW_H
#define PGSD_ANALYSIS_DATAFLOW_H

#include "lir/MIR.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace analysis {

/// Fixpoint of one forward dataflow solve: the abstract state at entry
/// to each block. Blocks no path from the function entry reaches keep
/// `Reached[B] == false` and a default-constructed state; checkers skip
/// them (block shifting deliberately creates unreachable pad blocks).
template <typename State> struct DataflowResult {
  std::vector<State> In;
  std::vector<bool> Reached;
};

/// Solves a forward dataflow problem over \p F.
///
/// Domain requirements:
/// \code
///   using State = ...;          // default-constructible, copyable
///   State boundary() const;     // state at function entry
///   void transfer(State &S, const mir::MInstr &I,
///                 uint32_t Block, uint32_t Instr) const;
///   bool meetInto(State &Into, const State &From) const;
///     // Into = Into meet From; returns true when Into changed.
/// \endcode
///
/// meetInto must be monotone (repeated meets only move down a finite
/// lattice), which bounds the worklist: each block re-enters it only
/// when its in-state strictly drops.
template <typename Domain>
DataflowResult<typename Domain::State>
solveForward(const mir::MFunction &F, const Domain &Dom) {
  DataflowResult<typename Domain::State> R;
  R.In.assign(F.Blocks.size(), typename Domain::State());
  R.Reached.assign(F.Blocks.size(), false);
  if (F.Blocks.empty())
    return R;

  R.In[0] = Dom.boundary();
  R.Reached[0] = true;
  std::vector<uint32_t> Worklist{0};
  std::vector<bool> OnList(F.Blocks.size(), false);
  OnList[0] = true;

  while (!Worklist.empty()) {
    uint32_t B = Worklist.back();
    Worklist.pop_back();
    OnList[B] = false;

    typename Domain::State S = R.In[B];
    const mir::MBasicBlock &BB = F.Blocks[B];
    for (uint32_t K = 0; K != BB.Instrs.size(); ++K)
      Dom.transfer(S, BB.Instrs[K], B, K);

    for (uint32_t Succ : F.successors(B)) {
      bool Changed;
      if (!R.Reached[Succ]) {
        R.In[Succ] = S;
        R.Reached[Succ] = true;
        Changed = true;
      } else {
        Changed = Dom.meetInto(R.In[Succ], S);
      }
      if (Changed && !OnList[Succ]) {
        OnList[Succ] = true;
        Worklist.push_back(Succ);
      }
    }
  }
  return R;
}

} // namespace analysis
} // namespace pgsd

#endif // PGSD_ANALYSIS_DATAFLOW_H
