//===-- analysis/Analysis.cpp - MIR static analysis framework --------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "analysis/Checkers.h"
#include "obs/Metrics.h"

#include <cstdio>

using namespace pgsd;
using namespace pgsd::analysis;
using mir::MInstr;
using mir::MOp;
using x86::Reg;

const char *analysis::checkerName(CheckerKind K) {
  switch (K) {
  case CheckerKind::CfgWellFormed:
    return "cfg-well-formed";
  case CheckerKind::RegLiveness:
    return "reg-liveness";
  case CheckerKind::EflagsFlow:
    return "eflags-flow";
  case CheckerKind::StackBalance:
    return "stack-balance";
  case CheckerKind::FrameBounds:
    return "frame-bounds";
  case CheckerKind::CallConv:
    return "call-conv";
  }
  return "<bad>";
}

verify::ErrorCode analysis::checkerErrorCode(CheckerKind K) {
  switch (K) {
  case CheckerKind::CfgWellFormed:
    return verify::ErrorCode::AnalysisCfgMalformed;
  case CheckerKind::RegLiveness:
    return verify::ErrorCode::AnalysisUseBeforeDef;
  case CheckerKind::EflagsFlow:
    return verify::ErrorCode::AnalysisFlagsUnproven;
  case CheckerKind::StackBalance:
    return verify::ErrorCode::AnalysisStackImbalance;
  case CheckerKind::FrameBounds:
    return verify::ErrorCode::AnalysisFrameOutOfBounds;
  case CheckerKind::CallConv:
    return verify::ErrorCode::AnalysisCallConvViolation;
  }
  return verify::ErrorCode::None;
}

FlagEffect analysis::flagEffect(const MInstr &I) {
  switch (I.Op) {
  case MOp::AluRR:
  case MOp::AluRI:
    // CMP is the sanctioned producer; every other ALU form overwrites
    // EFLAGS as a side effect no consumer may rely on.
    return I.Alu == x86::AluOp::Cmp ? FlagEffect::Defines
                                    : FlagEffect::Clobbers;
  case MOp::TestRR:
    return FlagEffect::Defines;
  case MOp::ImulRR:
  case MOp::Neg:
  case MOp::ShiftRI:
  case MOp::ShiftRC:
  case MOp::Idiv:
  case MOp::AdjustSP: // add esp, imm
  case MOp::ProfInc:  // add dword [counter], 1
  case MOp::Call:     // callee executes arbitrary flag-writing code
    return FlagEffect::Clobbers;
  case MOp::MovRR:
  case MOp::MovRI:
  case MOp::MovGlobal:
  case MOp::Load:
  case MOp::Store:
  case MOp::LoadFrame:
  case MOp::StoreFrame:
  case MOp::LeaFrame:
  case MOp::Cdq:
  case MOp::Not: // unlike NEG, NOT preserves EFLAGS on IA-32
  case MOp::Setcc:
  case MOp::Movzx8:
  case MOp::Push:
  case MOp::PushI:
  case MOp::Pop:
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Ret:
  case MOp::Nop: // every Table 1 candidate preserves EFLAGS
    return FlagEffect::Neutral;
  }
  return FlagEffect::Clobbers; // unknown opcode: be conservative
}

bool analysis::isInsertedNop(const MInstr &I) {
  // The insertion pass only ever adds MOp::Nop (one Table 1 candidate
  // per site); no other opcode is a removable decoration.
  return I.Op == MOp::Nop;
}

std::vector<const MInstr *>
analysis::nonNopInstrs(const mir::MBasicBlock &BB) {
  std::vector<const MInstr *> Out;
  Out.reserve(BB.Instrs.size());
  for (const MInstr &I : BB.Instrs)
    if (!isInsertedNop(I))
      Out.push_back(&I);
  return Out;
}

void analysis::forEachReadReg(const MInstr &I,
                              const std::function<void(Reg)> &Fn) {
  switch (I.Op) {
  case MOp::MovRR:
  case MOp::Movzx8:
  case MOp::Load:
    Fn(I.Src);
    break;
  case MOp::Store:
    Fn(I.Dst); // address base
    Fn(I.Src); // stored value
    break;
  case MOp::StoreFrame:
  case MOp::Push:
    Fn(I.Src);
    break;
  case MOp::AluRR:
  case MOp::ImulRR:
  case MOp::TestRR:
    Fn(I.Dst);
    Fn(I.Src);
    break;
  case MOp::AluRI:
  case MOp::Neg:
  case MOp::Not:
  case MOp::ShiftRI:
    Fn(I.Dst);
    break;
  case MOp::ShiftRC:
    Fn(I.Dst);
    Fn(Reg::ECX); // shift count in CL
    break;
  case MOp::Cdq:
    Fn(Reg::EAX);
    break;
  case MOp::Idiv:
    Fn(I.Src);
    Fn(Reg::EAX); // dividend low half
    Fn(Reg::EDX); // dividend high half (set up by CDQ)
    break;
  case MOp::Ret:
    Fn(Reg::EAX); // return value
    break;
  // Setcc writes only the 8-bit subregister; the generated code always
  // masks through MOVZX before the value escapes, so the upper bits it
  // technically merges with are never observed and Setcc is treated as
  // a pure definition.
  case MOp::Setcc:
  case MOp::MovRI:
  case MOp::MovGlobal:
  case MOp::LoadFrame:
  case MOp::LeaFrame:
  case MOp::PushI:
  case MOp::Pop:
  case MOp::AdjustSP:
  case MOp::Call:
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Nop:
  case MOp::ProfInc:
    break;
  }
}

void analysis::forEachWrittenReg(const MInstr &I,
                                 const std::function<void(Reg)> &Fn) {
  switch (I.Op) {
  case MOp::MovRR:
  case MOp::MovRI:
  case MOp::MovGlobal:
  case MOp::Load:
  case MOp::LoadFrame:
  case MOp::LeaFrame:
  case MOp::Setcc:
  case MOp::Movzx8:
  case MOp::Pop:
  case MOp::ImulRR:
  case MOp::Neg:
  case MOp::Not:
  case MOp::ShiftRI:
  case MOp::ShiftRC:
    Fn(I.Dst);
    break;
  case MOp::AluRR:
  case MOp::AluRI:
    if (I.Alu != x86::AluOp::Cmp)
      Fn(I.Dst);
    break;
  case MOp::Cdq:
    Fn(Reg::EDX);
    break;
  case MOp::Idiv:
    Fn(Reg::EAX);
    Fn(Reg::EDX);
    break;
  case MOp::Call:
    // cdecl caller-saved set. EAX carries the return value; ECX/EDX
    // hold garbage, which the CallConv checker polices separately.
    Fn(Reg::EAX);
    Fn(Reg::ECX);
    Fn(Reg::EDX);
    break;
  case MOp::Store:
  case MOp::StoreFrame:
  case MOp::Push:
  case MOp::PushI:
  case MOp::AdjustSP:
  case MOp::TestRR:
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Ret:
  case MOp::Nop:
  case MOp::ProfInc:
    break;
  }
}

unsigned analysis::calleeArgWords(const mir::MModule &M,
                                  const ir::Callee &Target) {
  if (!Target.IsIntrinsic) {
    if (Target.Func >= M.Functions.size())
      return 0; // CFG checker reports the bad target
    return M.Functions[Target.Func].NumParams;
  }
  switch (Target.Intr) {
  case ir::Intrinsic::PrintI32:
  case ir::Intrinsic::PrintChar:
  case ir::Intrinsic::Sink:
    return 1;
  case ir::Intrinsic::ReadI32:
  case ir::Intrinsic::InputLen:
    return 0;
  }
  return 0;
}

AnalysisOptions AnalysisOptions::all() { return AnalysisOptions(); }

AnalysisOptions AnalysisOptions::only(CheckerKind K) {
  AnalysisOptions Opts;
  for (unsigned C = 0; C != NumCheckers; ++C)
    Opts.Enabled[C] = false;
  // The CFG gate stays on: flow-sensitive checkers must not run on a
  // function whose branch targets do not resolve.
  Opts.Enabled[static_cast<unsigned>(CheckerKind::CfgWellFormed)] = true;
  Opts.Enabled[static_cast<unsigned>(K)] = true;
  return Opts;
}

std::string analysis::instrLocation(const mir::MFunction &F,
                                    uint32_t Block, uint32_t Instr) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), ": mbb%u #%u", Block, Instr);
  std::string Out = F.Name + Buf;
  if (Block < F.Blocks.size() &&
      Instr < F.Blocks[Block].Instrs.size()) {
    Out += " '";
    Out += mir::printInstr(F.Blocks[Block].Instrs[Instr]);
    Out += "'";
  }
  return Out;
}

namespace {

/// Span names for per-checker timings, indexed by CheckerKind. Static
/// strings because obs::Span keeps only the pointer.
constexpr const char *CheckerSpanNames[analysis::NumCheckers] = {
    "analysis.cfg-well-formed", "analysis.reg-liveness",
    "analysis.eflags-flow",     "analysis.stack-balance",
    "analysis.frame-bounds",    "analysis.call-conv",
};

} // namespace

verify::Report analysis::analyzeModule(const mir::MModule &M,
                                       const AnalysisOptions &Opts) {
  verify::Report R;
  // Per-checker timing is sampled once per call: when telemetry is off,
  // every span below is constructed with a null name and reads no clock.
  const bool Timed = obs::enabled();
  auto Enabled = [&](CheckerKind K) {
    return Opts.Enabled[static_cast<unsigned>(K)];
  };
  auto SpanName = [&](CheckerKind K) {
    return Timed ? CheckerSpanNames[static_cast<unsigned>(K)] : nullptr;
  };
  for (uint32_t F = 0; F != M.Functions.size(); ++F) {
    if (R.Diags.size() >= Opts.MaxDiagnostics)
      break;
    size_t Before = R.Diags.size();
    if (Enabled(CheckerKind::CfgWellFormed)) {
      obs::Span S(SpanName(CheckerKind::CfgWellFormed));
      detail::checkCfgWellFormed(M, F, Opts, R);
    }
    // A structurally broken function would send the dataflow solver
    // through out-of-range branch targets; report it and move on.
    if (R.Diags.size() != Before)
      continue;
    if (Enabled(CheckerKind::RegLiveness)) {
      obs::Span S(SpanName(CheckerKind::RegLiveness));
      detail::checkRegLiveness(M, F, Opts, R);
    }
    if (Enabled(CheckerKind::EflagsFlow)) {
      obs::Span S(SpanName(CheckerKind::EflagsFlow));
      detail::checkEflagsFlow(M, F, Opts, R);
    }
    if (Enabled(CheckerKind::StackBalance)) {
      obs::Span S(SpanName(CheckerKind::StackBalance));
      detail::checkStackBalance(M, F, Opts, R);
    }
    if (Enabled(CheckerKind::FrameBounds)) {
      obs::Span S(SpanName(CheckerKind::FrameBounds));
      detail::checkFrameBounds(M, F, Opts, R);
    }
    if (Enabled(CheckerKind::CallConv)) {
      obs::Span S(SpanName(CheckerKind::CallConv));
      detail::checkCallConv(M, F, Opts, R);
    }
  }
  if (Timed) {
    obs::counterAdd("analysis.modules_analyzed");
    if (!R.ok())
      obs::counterAdd("analysis.modules_rejected");
  }
  return R;
}

verify::Report analysis::checkEflags(const mir::MModule &M) {
  return analyzeModule(M, AnalysisOptions::only(CheckerKind::EflagsFlow));
}
