//===-- analysis/Equiv.h - Translation validation for variants ---*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation: a symbolic proof that a diversified variant
/// is observationally equivalent to its baseline, computed without
/// executing either module. The paper's premise -- NOP insertion and
/// block shifting preserve semantics -- is discharged dynamically by
/// verify::diffExecute over an input battery, which can miss any
/// divergence the battery does not exercise. The prover here discharges
/// it statically: its cost is independent of battery size and its
/// guarantee independent of input coverage.
///
/// Per matched function pair, the prover
///
///  1. recovers the block correspondence under the block-shift layout
///     permutation (identity, or baseline block i <-> variant block
///     i+2 once the two-block entry prelude is proven effect-free),
///  2. symbolically executes each block pair over an effect algebra: a
///     dense register environment of hash-consed terms, a lazy EFLAGS
///     term (CMP/TEST build definitions, everything analysis::flagEffect
///     classifies as Clobbers invalidates), a symbolic push stack, and
///     an ordered trace of memory / call / profile-counter events,
///  3. normalizes away inserted NOPs (analysis::isInsertedNop, the same
///     classification the verifier's structural diff uses), and
///  4. requires the two sides to agree on the full event trace, every
///     conditional branch condition and (shift-corrected) target, the
///     terminator, the exit register environment, the exit stack, and
///     the exit flags term.
///
/// A disagreement is a counterexample, reported as a structured
/// verify::Diagnostic naming the function, the block pair, and the
/// first mismatching effect with the offending instruction pretty-
/// printed via mir::printInstr. The proof is sound for acceptance: the
/// effect algebra never identifies two computations that could differ
/// concretely, so "proved" implies observational equivalence under the
/// execution model of mexec/Interp.h. It is deliberately conservative
/// for rejection -- semantically equal but syntactically different
/// computations (e.g. re-associated arithmetic) are refuted, which is
/// exactly right for transforms whose contract is "the instruction
/// stream minus NOPs is unchanged".
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_ANALYSIS_EQUIV_H
#define PGSD_ANALYSIS_EQUIV_H

#include "lir/MIR.h"
#include "verify/Diagnostic.h"

#include <cstdint>

namespace pgsd {
namespace analysis {

/// Configuration of one equivalence proof.
struct EquivOptions {
  /// Diagnostic cap per run: the prover stops collecting
  /// counterexamples (at most one per function) once reached.
  unsigned MaxDiagnostics = 16;

  /// Term-arena cap per function pair; exceeding it aborts the proof of
  /// that function with ErrorCode::EquivAborted instead of a verdict.
  /// Generous: real functions build a few terms per instruction.
  uint32_t MaxTermsPerFunction = 1u << 22;
};

/// Tally of one proveEquivalent call, per matched function.
struct EquivStats {
  uint64_t FunctionsProved = 0;
  uint64_t FunctionsRefuted = 0;
  uint64_t FunctionsAborted = 0;
};

/// Proves \p Variant observationally equivalent to \p Baseline. An
/// empty report is the proof; otherwise every diagnostic carries
/// ErrorCode::EquivRefuted with a counterexample (or EquivAborted when
/// the prover could not finish a function). Exports equiv.* metrics
/// (modules_checked / proved / refuted / aborted counters and a
/// per-function wall-time histogram) when telemetry is enabled.
verify::Report proveEquivalent(const mir::MModule &Baseline,
                               const mir::MModule &Variant,
                               const EquivOptions &Opts = EquivOptions(),
                               EquivStats *Stats = nullptr);

} // namespace analysis
} // namespace pgsd

#endif // PGSD_ANALYSIS_EQUIV_H
