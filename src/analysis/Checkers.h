//===-- analysis/Checkers.h - Checker entry points (internal) ----*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal interface between the analysis driver (Analysis.cpp) and the
/// checker implementations (Checkers.cpp). Each checker analyzes one
/// function and appends location-tagged diagnostics to \p R, stopping
/// once \p R holds MaxDiagnostics entries. Not part of the public API;
/// tests and tools go through analysis::analyzeModule.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_ANALYSIS_CHECKERS_H
#define PGSD_ANALYSIS_CHECKERS_H

#include "analysis/Analysis.h"

namespace pgsd {
namespace analysis {
namespace detail {

/// Structural gate: the flow-sensitive checkers run on a function only
/// when this one accepts it (their solver indexes blocks by branch
/// target and walks the trailing branch group).
void checkCfgWellFormed(const mir::MModule &M, uint32_t FuncIdx,
                        const AnalysisOptions &Opts, verify::Report &R);

void checkRegLiveness(const mir::MModule &M, uint32_t FuncIdx,
                      const AnalysisOptions &Opts, verify::Report &R);

void checkEflagsFlow(const mir::MModule &M, uint32_t FuncIdx,
                     const AnalysisOptions &Opts, verify::Report &R);

void checkStackBalance(const mir::MModule &M, uint32_t FuncIdx,
                       const AnalysisOptions &Opts, verify::Report &R);

void checkFrameBounds(const mir::MModule &M, uint32_t FuncIdx,
                      const AnalysisOptions &Opts, verify::Report &R);

void checkCallConv(const mir::MModule &M, uint32_t FuncIdx,
                   const AnalysisOptions &Opts, verify::Report &R);

} // namespace detail
} // namespace analysis
} // namespace pgsd

#endif // PGSD_ANALYSIS_CHECKERS_H
