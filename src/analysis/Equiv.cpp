//===-- analysis/Equiv.cpp - Translation validation for variants -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Implementation notes:
//
//  * Terms are hash-consed in a per-function arena shared by both sides
//    of every block pair, so "same symbolic value" is pointer (index)
//    equality. Entry symbols (RegIn, FlagsIn) mean "at entry of the
//    block currently being compared" on both sides; comparisons never
//    cross block pairs, so reusing them across blocks is sound.
//
//  * Loads carry a memory epoch -- the number of preceding writes,
//    calls, and counter increments in the same block -- so two loads
//    from one address only unify when no write could have intervened.
//    Epochs align across the two sides exactly when the event traces
//    align, which the trace comparison enforces first.
//
//  * The symbolic push stack starts empty at block entry; a pop (or a
//    call argument) reaching below it yields a StackHole symbol with a
//    per-block ordinal. Both sides draw holes in lockstep when their
//    traces align, so a genuine cross-block stack imbalance still shows
//    up as an exit-depth or hole-ordinal mismatch.
//
//  * EFLAGS follow the lazy model of mexec/Interp.h: CMP/TEST build a
//    definition term, anything analysis::flagEffect classifies as
//    Clobbers replaces the term with a per-block clobber ordinal, and
//    Jcc/Setcc consume whatever term is current. An inserted
//    value-preserving clobber (the dynamically invisible MirFault
//    class) therefore refutes at the consuming branch.
//
//===----------------------------------------------------------------------===//

#include "analysis/Equiv.h"

#include "analysis/Analysis.h"
#include "obs/Metrics.h"

#include <array>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <vector>

using namespace pgsd;
using namespace pgsd::analysis;
using mir::MBasicBlock;
using mir::MFunction;
using mir::MInstr;
using mir::MModule;
using mir::MOp;
using x86::Reg;

namespace {

std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string format(const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Term arena
//===----------------------------------------------------------------------===//

/// Symbolic value and flag-state constructors.
enum class TK : uint8_t {
  RegIn,        ///< Sub = register; value at block entry.
  Const,        ///< Imm.
  GlobalAddr,   ///< Imm = global index.
  FrameAddr,    ///< Imm = EBP displacement (lea).
  Alu,          ///< Sub = x86::AluOp; X op Y.
  Imul,         ///< X * Y.
  Shift,        ///< Sub = x86::ShiftOp; X by Y.
  Neg,          ///< -X.
  Not,          ///< ~X.
  CdqHigh,      ///< Sign-bit fill of X (EDX after cdq).
  Movzx,        ///< Zero-extended low byte of X.
  SetccV,       ///< Sub = x86::CondCode; 0/1 from flags term X.
  Load,         ///< mem[X + Imm] at epoch Y.
  FrameLoad,    ///< frame[Imm] at epoch Y.
  CallVal,      ///< Sub = 0 eax / 1 ecx / 2 edx after call event Imm.
  DivQuot,      ///< Quotient of div event Imm.
  DivRem,       ///< Remainder of div event Imm.
  StackHole,    ///< Imm = ordinal; value popped from below block entry.
  FlagsIn,      ///< EFLAGS at block entry.
  FlagsCmp,     ///< Sub = 0 cmp / 1 test; operands X, Y.
  FlagsClobber, ///< Imm = per-block clobber ordinal.
};

struct Term {
  TK Kind = TK::Const;
  uint8_t Sub = 0;
  int32_t Imm = 0;
  uint32_t X = 0;
  uint32_t Y = 0;

  bool operator==(const Term &O) const {
    return Kind == O.Kind && Sub == O.Sub && Imm == O.Imm && X == O.X &&
           Y == O.Y;
  }
};

struct TermHash {
  size_t operator()(const Term &T) const {
    uint64_t H = static_cast<uint8_t>(T.Kind);
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
    };
    Mix(T.Sub);
    Mix(static_cast<uint32_t>(T.Imm));
    Mix(T.X);
    Mix(T.Y);
    return static_cast<size_t>(H);
  }
};

/// Hash-consing arena: intern() returns a stable id; identical terms
/// get identical ids, so symbolic equality is id equality.
class Arena {
public:
  /// The floor keeps the entry symbols (8 registers + flags) internable
  /// even under an absurdly small test-provided cap.
  explicit Arena(uint32_t CapIn) : Cap(CapIn < 64 ? 64 : CapIn) {}

  uint32_t intern(Term T) {
    auto It = Ids.find(T);
    if (It != Ids.end())
      return It->second;
    if (Terms.size() >= Cap) {
      Overflowed = true;
      return 0; // id 0 stays valid; the caller checks overflowed()
    }
    uint32_t Id = static_cast<uint32_t>(Terms.size());
    Terms.push_back(T);
    Ids.emplace(T, Id);
    return Id;
  }

  const Term &operator[](uint32_t Id) const { return Terms[Id]; }
  bool overflowed() const { return Overflowed; }

private:
  uint32_t Cap;
  bool Overflowed = false;
  std::vector<Term> Terms;
  std::unordered_map<Term, uint32_t, TermHash> Ids;
};

const char *aluStr(x86::AluOp Op) {
  switch (Op) {
  case x86::AluOp::Add:
    return "add";
  case x86::AluOp::Or:
    return "or";
  case x86::AluOp::Adc:
    return "adc";
  case x86::AluOp::Sbb:
    return "sbb";
  case x86::AluOp::And:
    return "and";
  case x86::AluOp::Sub:
    return "sub";
  case x86::AluOp::Xor:
    return "xor";
  case x86::AluOp::Cmp:
    return "cmp";
  }
  return "<bad>";
}

const char *shiftStr(x86::ShiftOp Op) {
  switch (Op) {
  case x86::ShiftOp::Shl:
    return "shl";
  case x86::ShiftOp::Shr:
    return "shr";
  case x86::ShiftOp::Sar:
    return "sar";
  }
  return "<bad>";
}

/// Renders term \p Id to bounded depth for counterexample messages;
/// operands beyond the depth cap render as "..".
std::string termStr(const Arena &A, uint32_t Id, unsigned Depth = 3) {
  if (Depth == 0)
    return "..";
  const Term &T = A[Id];
  auto Op = [&](uint32_t X) { return termStr(A, X, Depth - 1); };
  switch (T.Kind) {
  case TK::RegIn:
    return format("%s@entry", x86::regName(static_cast<Reg>(T.Sub)));
  case TK::Const:
    return format("%d", T.Imm);
  case TK::GlobalAddr:
    return format("&global#%d", T.Imm);
  case TK::FrameAddr:
    return format("&[ebp%+d]", T.Imm);
  case TK::Alu:
    return format("%s(%s, %s)", aluStr(static_cast<x86::AluOp>(T.Sub)),
                  Op(T.X).c_str(), Op(T.Y).c_str());
  case TK::Imul:
    return format("imul(%s, %s)", Op(T.X).c_str(), Op(T.Y).c_str());
  case TK::Shift:
    return format("%s(%s, %s)", shiftStr(static_cast<x86::ShiftOp>(T.Sub)),
                  Op(T.X).c_str(), Op(T.Y).c_str());
  case TK::Neg:
    return format("neg(%s)", Op(T.X).c_str());
  case TK::Not:
    return format("not(%s)", Op(T.X).c_str());
  case TK::CdqHigh:
    return format("sext_hi(%s)", Op(T.X).c_str());
  case TK::Movzx:
    return format("zext8(%s)", Op(T.X).c_str());
  case TK::SetccV:
    return format("set%s(%s)",
                  x86::condName(static_cast<x86::CondCode>(T.Sub)),
                  Op(T.X).c_str());
  case TK::Load:
    return format("mem[%s%+d]@%u", Op(T.X).c_str(), T.Imm, T.Y);
  case TK::FrameLoad:
    return format("frame[%+d]@%u", T.Imm, T.Y);
  case TK::CallVal:
    return format("call#%d.%s", T.Imm,
                  T.Sub == 0 ? "eax" : (T.Sub == 1 ? "ecx" : "edx"));
  case TK::DivQuot:
    return format("div#%d.q", T.Imm);
  case TK::DivRem:
    return format("div#%d.r", T.Imm);
  case TK::StackHole:
    return format("stack?#%d", T.Imm);
  case TK::FlagsIn:
    return "flags@entry";
  case TK::FlagsCmp:
    return format("flags(%s %s, %s)", T.Sub == 0 ? "cmp" : "test",
                  Op(T.X).c_str(), Op(T.Y).c_str());
  case TK::FlagsClobber:
    return format("flags(clobbered#%d)", T.Imm);
  }
  return "<bad>";
}

//===----------------------------------------------------------------------===//
// Event trace
//===----------------------------------------------------------------------===//

/// One observable (or ordering-relevant) effect of a block: memory
/// accesses, calls, counter increments, and potentially trapping
/// divisions, in program order. NOP insertion and block shifting add,
/// remove, and reorder none of these, so the prover requires the two
/// traces to match position by position.
struct Event {
  enum class K : uint8_t {
    Load,       ///< A = base term, Disp.
    Store,      ///< A = base term, Disp, B = value.
    FrameLoad,  ///< Disp.
    FrameStore, ///< Disp, B = value.
    Call,       ///< Target + Args (top of stack first).
    Div,        ///< A = divisor, B = dividend low, C = dividend high.
    ProfInc,    ///< Disp = counter id.
  };
  K Kind = K::Load;
  uint32_t A = 0, B = 0, C = 0;
  int32_t Disp = 0;
  bool IsIntrinsic = false;
  uint32_t Func = 0;
  uint8_t Intr = 0;
  std::vector<uint32_t> Args;
  uint32_t SrcInstr = 0; ///< Provenance (not compared).

  bool sameAs(const Event &O) const {
    return Kind == O.Kind && A == O.A && B == O.B && C == O.C &&
           Disp == O.Disp && IsIntrinsic == O.IsIntrinsic &&
           Func == O.Func && Intr == O.Intr && Args == O.Args;
  }
};

std::string eventStr(const Arena &A, const Event &E) {
  switch (E.Kind) {
  case Event::K::Load:
    return format("load [%s%+d]", termStr(A, E.A, 2).c_str(), E.Disp);
  case Event::K::Store:
    return format("store [%s%+d] = %s", termStr(A, E.A, 2).c_str(),
                  E.Disp, termStr(A, E.B, 2).c_str());
  case Event::K::FrameLoad:
    return format("load [ebp%+d]", E.Disp);
  case Event::K::FrameStore:
    return format("store [ebp%+d] = %s", E.Disp,
                  termStr(A, E.B, 2).c_str());
  case Event::K::Call: {
    std::string Out = "call ";
    Out += E.IsIntrinsic
               ? ir::intrinsicName(static_cast<ir::Intrinsic>(E.Intr))
               : format("func#%u", E.Func).c_str();
    Out += "(";
    for (size_t I = 0; I != E.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += termStr(A, E.Args[I], 2);
    }
    Out += ")";
    return Out;
  }
  case Event::K::Div:
    return format("idiv %s (edx:eax = %s:%s)", termStr(A, E.A, 2).c_str(),
                  termStr(A, E.C, 2).c_str(), termStr(A, E.B, 2).c_str());
  case Event::K::ProfInc:
    return format("counter#%d += 1", E.Disp);
  }
  return "<bad>";
}

//===----------------------------------------------------------------------===//
// Symbolic block execution
//===----------------------------------------------------------------------===//

/// Exit state of one symbolically executed block.
struct BlockExec {
  std::array<uint32_t, x86::NumRegs> Regs{};
  uint32_t Flags = 0;
  std::vector<uint32_t> Stack; ///< Symbolic push stack (top = back).
  std::vector<Event> Events;

  struct CondBr {
    uint8_t CC = 0;
    uint32_t Cond = 0;    ///< Flags term at the branch.
    int32_t Target = 0;   ///< Raw (unshifted) block id.
    uint32_t SrcInstr = 0;
  };
  std::vector<CondBr> Branches;

  /// Reads of ECX/EDX while they hold a call-clobbered value. Under
  /// real cdecl those registers are garbage after a call, so any
  /// dependence on them -- even a dead one -- cannot be proven
  /// equivalent; the traces must match read for read.
  struct PoisonRead {
    uint8_t RegNum = 0;
    uint32_t SrcInstr = 0;
    bool operator==(const PoisonRead &O) const {
      return RegNum == O.RegNum;
    }
  };
  std::vector<PoisonRead> PoisonReads;

  enum class Exit : uint8_t { Fallthrough, Jump, Ret };
  Exit ExitKind = Exit::Fallthrough;
  int32_t JumpTarget = 0;
  uint32_t JumpInstr = 0;

  bool Malformed = false; ///< Non-NOP instruction after the terminator.
  uint32_t MalformedInstr = 0;
  bool BadTarget = false; ///< Branch target outside the function.
  uint32_t BadTargetInstr = 0;
  int32_t BadTargetVal = 0;
};

/// Symbolically executes \p BB over \p A. \p M resolves call-target
/// argument counts; \p NumBlocks bounds branch targets. When
/// \p HoldsAtEntry is non-null, physical register R starts the block
/// holding the entry symbol of register (*HoldsAtEntry)[R] -- the
/// inverse of a callee-saved renaming, so a renamed variant's pi(r)
/// carries baseline r's entry value through the comparison.
BlockExec execBlock(const MModule &M, const MBasicBlock &BB,
                    size_t NumBlocks, Arena &A,
                    const std::array<uint8_t, x86::NumRegs>
                        *HoldsAtEntry = nullptr) {
  BlockExec S;
  for (unsigned R = 0; R != x86::NumRegs; ++R)
    S.Regs[R] = A.intern(
        {TK::RegIn,
         HoldsAtEntry ? (*HoldsAtEntry)[R] : static_cast<uint8_t>(R), 0,
         0, 0});
  S.Flags = A.intern({TK::FlagsIn, 0, 0, 0, 0});

  uint32_t Epoch = 0;      ///< Writes + calls + counter bumps so far.
  int32_t ClobberOrd = 0;  ///< Flag clobbers so far.
  int32_t HoleOrd = 0;     ///< Stack holes drawn so far.

  auto Reg_ = [&](Reg R) -> uint32_t & {
    return S.Regs[x86::regNum(R)];
  };
  auto Clobber = [&]() {
    S.Flags = A.intern({TK::FlagsClobber, 0, ClobberOrd++, 0, 0});
  };
  auto Hole = [&]() {
    return A.intern({TK::StackHole, 0, HoleOrd++, 0, 0});
  };
  auto Pop = [&]() {
    if (S.Stack.empty())
      return Hole();
    uint32_t T = S.Stack.back();
    S.Stack.pop_back();
    return T;
  };
  auto CheckTarget = [&](int32_t Target, uint32_t K) {
    if (Target >= 0 && static_cast<size_t>(Target) < NumBlocks)
      return true;
    if (!S.BadTarget) {
      S.BadTarget = true;
      S.BadTargetInstr = K;
      S.BadTargetVal = Target;
    }
    return false;
  };

  for (uint32_t K = 0; K != BB.Instrs.size(); ++K) {
    const MInstr &I = BB.Instrs[K];
    if (isInsertedNop(I))
      continue; // NOP normalization: provably effect-free (Table 1).
    if (S.ExitKind != BlockExec::Exit::Fallthrough) {
      // Control already left the block; anything after the terminator
      // can never be equivalent to a baseline that lacks it.
      if (!S.Malformed) {
        S.Malformed = true;
        S.MalformedInstr = K;
      }
      break;
    }
    // CallVal terms for ECX/EDX stand for garbage on real hardware (the
    // interpreter models them deterministically, which is exactly why
    // this class of defect is dynamically invisible); record every read
    // of one so the comparison can demand the dependence traces match.
    forEachReadReg(I, [&](Reg R) {
      const Term &T = A[S.Regs[x86::regNum(R)]];
      if (T.Kind == TK::CallVal && T.Sub != 0)
        S.PoisonReads.push_back({x86::regNum(R), K});
    });
    switch (I.Op) {
    case MOp::MovRR:
      Reg_(I.Dst) = Reg_(I.Src);
      break;
    case MOp::MovRI:
      Reg_(I.Dst) = A.intern({TK::Const, 0, I.Imm, 0, 0});
      break;
    case MOp::MovGlobal:
      Reg_(I.Dst) = A.intern({TK::GlobalAddr, 0, I.Imm, 0, 0});
      break;
    case MOp::Load: {
      uint32_t Base = Reg_(I.Src);
      S.Events.push_back(
          {Event::K::Load, Base, 0, 0, I.Imm, false, 0, 0, {}, K});
      Reg_(I.Dst) = A.intern({TK::Load, 0, I.Imm, Base, Epoch});
      break;
    }
    case MOp::Store:
      S.Events.push_back({Event::K::Store, Reg_(I.Dst), Reg_(I.Src), 0,
                          I.Imm, false, 0, 0, {}, K});
      ++Epoch;
      break;
    case MOp::LoadFrame:
      S.Events.push_back(
          {Event::K::FrameLoad, 0, 0, 0, I.Imm, false, 0, 0, {}, K});
      Reg_(I.Dst) = A.intern({TK::FrameLoad, 0, I.Imm, 0, Epoch});
      break;
    case MOp::StoreFrame:
      S.Events.push_back({Event::K::FrameStore, 0, Reg_(I.Src), 0, I.Imm,
                          false, 0, 0, {}, K});
      ++Epoch;
      break;
    case MOp::LeaFrame:
      Reg_(I.Dst) = A.intern({TK::FrameAddr, 0, I.Imm, 0, 0});
      break;
    case MOp::AluRR:
    case MOp::AluRI: {
      uint32_t Rhs = I.Op == MOp::AluRR
                         ? Reg_(I.Src)
                         : A.intern({TK::Const, 0, I.Imm, 0, 0});
      if (I.Alu == x86::AluOp::Cmp) {
        S.Flags = A.intern({TK::FlagsCmp, 0, 0, Reg_(I.Dst), Rhs});
      } else {
        Reg_(I.Dst) = A.intern({TK::Alu, static_cast<uint8_t>(I.Alu), 0,
                                Reg_(I.Dst), Rhs});
        Clobber();
      }
      break;
    }
    case MOp::ImulRR:
      Reg_(I.Dst) = A.intern({TK::Imul, 0, 0, Reg_(I.Dst), Reg_(I.Src)});
      Clobber();
      break;
    case MOp::Cdq:
      Reg_(Reg::EDX) = A.intern({TK::CdqHigh, 0, 0, Reg_(Reg::EAX), 0});
      break;
    case MOp::Idiv: {
      int32_t Ev = static_cast<int32_t>(S.Events.size());
      S.Events.push_back({Event::K::Div, Reg_(I.Src), Reg_(Reg::EAX),
                          Reg_(Reg::EDX), 0, false, 0, 0, {}, K});
      Reg_(Reg::EAX) = A.intern({TK::DivQuot, 0, Ev, 0, 0});
      Reg_(Reg::EDX) = A.intern({TK::DivRem, 0, Ev, 0, 0});
      Clobber();
      break;
    }
    case MOp::Neg:
      Reg_(I.Dst) = A.intern({TK::Neg, 0, 0, Reg_(I.Dst), 0});
      Clobber();
      break;
    case MOp::Not: // preserves EFLAGS on IA-32
      Reg_(I.Dst) = A.intern({TK::Not, 0, 0, Reg_(I.Dst), 0});
      break;
    case MOp::ShiftRI:
      Reg_(I.Dst) =
          A.intern({TK::Shift, static_cast<uint8_t>(I.Shift), 0,
                    Reg_(I.Dst), A.intern({TK::Const, 0, I.Imm, 0, 0})});
      Clobber();
      break;
    case MOp::ShiftRC:
      Reg_(I.Dst) = A.intern({TK::Shift, static_cast<uint8_t>(I.Shift), 0,
                              Reg_(I.Dst), Reg_(Reg::ECX)});
      Clobber();
      break;
    case MOp::TestRR:
      S.Flags = A.intern({TK::FlagsCmp, 1, 0, Reg_(I.Dst), Reg_(I.Src)});
      break;
    case MOp::Setcc:
      Reg_(I.Dst) = A.intern(
          {TK::SetccV, static_cast<uint8_t>(I.CC), 0, S.Flags, 0});
      break;
    case MOp::Movzx8:
      Reg_(I.Dst) = A.intern({TK::Movzx, 0, 0, Reg_(I.Src), 0});
      break;
    case MOp::Push:
      S.Stack.push_back(Reg_(I.Src));
      break;
    case MOp::PushI:
      S.Stack.push_back(A.intern({TK::Const, 0, I.Imm, 0, 0}));
      break;
    case MOp::Pop:
      Reg_(I.Dst) = Pop();
      break;
    case MOp::AdjustSP: {
      // Argument cleanup (add esp, imm): discards imm/4 pushed words.
      // A negative adjustment opens fresh unnamed slots.
      int32_t Words = I.Imm / 4;
      for (; Words > 0; --Words)
        (void)Pop();
      for (; Words < 0; ++Words)
        S.Stack.push_back(Hole());
      Clobber();
      break;
    }
    case MOp::Call: {
      Event E;
      E.Kind = Event::K::Call;
      E.IsIntrinsic = I.Target.IsIntrinsic;
      E.Func = I.Target.Func;
      E.Intr = static_cast<uint8_t>(I.Target.Intr);
      E.SrcInstr = K;
      // cdecl: arguments sit on the stack, first argument on top; the
      // caller cleans up afterwards, so the stack is read, not popped.
      unsigned Words = calleeArgWords(M, I.Target);
      for (unsigned W = 0; W != Words; ++W)
        E.Args.push_back(W < S.Stack.size()
                             ? S.Stack[S.Stack.size() - 1 - W]
                             : Hole());
      int32_t Ev = static_cast<int32_t>(S.Events.size());
      S.Events.push_back(std::move(E));
      ++Epoch; // the callee may write any memory
      Reg_(Reg::EAX) = A.intern({TK::CallVal, 0, Ev, 0, 0});
      Reg_(Reg::ECX) = A.intern({TK::CallVal, 1, Ev, 0, 0});
      Reg_(Reg::EDX) = A.intern({TK::CallVal, 2, Ev, 0, 0});
      Clobber();
      break;
    }
    case MOp::Jmp:
      CheckTarget(I.Imm, K);
      S.ExitKind = BlockExec::Exit::Jump;
      S.JumpTarget = I.Imm;
      S.JumpInstr = K;
      break;
    case MOp::Jcc:
      CheckTarget(I.Imm, K);
      S.Branches.push_back(
          {static_cast<uint8_t>(I.CC), S.Flags, I.Imm, K});
      break;
    case MOp::Ret:
      S.ExitKind = BlockExec::Exit::Ret;
      S.JumpInstr = K;
      break;
    case MOp::ProfInc:
      S.Events.push_back(
          {Event::K::ProfInc, 0, 0, 0, I.Imm, false, 0, 0, {}, K});
      ++Epoch;
      Clobber();
      break;
    case MOp::Nop:
      break; // unreachable: isInsertedNop skipped it
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Function comparison
//===----------------------------------------------------------------------===//

enum class Verdict : uint8_t { Proved, Refuted, Aborted };

/// True when blocks 0 and 1 of \p VF are the block-shift prelude
/// insertBlockShift produces, *proven* effect-free by symbolic
/// execution: no events, no conditional branches, every register and
/// the flags term untouched, stack empty, unconditional jump to block
/// 2. Structural recognition alone would trust the pad; this executes
/// it.
bool provenShiftPrelude(const MModule &VM, const MFunction &VF,
                        Arena &A) {
  for (uint32_t B = 0; B != 2; ++B) {
    BlockExec E = execBlock(VM, VF.Blocks[B], VF.Blocks.size(), A);
    if (E.Malformed || E.BadTarget || !E.Events.empty() ||
        !E.Branches.empty() || !E.Stack.empty())
      return false;
    if (E.ExitKind != BlockExec::Exit::Jump || E.JumpTarget != 2)
      return false;
    for (unsigned R = 0; R != x86::NumRegs; ++R)
      if (A[E.Regs[R]].Kind != TK::RegIn || A[E.Regs[R]].Sub != R)
        return false;
    if (A[E.Flags].Kind != TK::FlagsIn)
      return false;
  }
  return true;
}

/// Module-level preconditions computed lazily and shared by every
/// function comparison of one proveEquivalent call.
struct ModuleContext {
  const MModule &BM;
  const MModule &VM;
  int LivenessOk = -1; ///< -1 unknown, else 0/1.

  /// Non-identity callee-saved renamings are only sound when neither
  /// module reads EBX/ESI/EDI before defining them (RegLiveness): the
  /// renamed registers' entry values are then provably dead, so
  /// "variant pi(r) plays baseline r's role" holds from function entry
  /// even though the caller loaded different values into them.
  bool livenessOk() {
    if (LivenessOk < 0)
      LivenessOk =
          analyzeModule(BM, AnalysisOptions::only(CheckerKind::RegLiveness))
              .ok() &&
          analyzeModule(VM, AnalysisOptions::only(CheckerKind::RegLiveness))
              .ok();
    return LivenessOk == 1;
  }
};

/// Compares every corresponding block pair of \p BF / \p VF under the
/// callee-saved renaming \p Pi (variant register Pi[r] plays baseline
/// r's role; caller-saved registers are always fixed points). On
/// refutation or abort, appends exactly one diagnostic to \p R.
Verdict compareBlocks(const MModule &BM, const MFunction &BF,
                      const MModule &VM, const MFunction &VF,
                      const EquivOptions &Opts, uint32_t Shift,
                      const std::array<uint8_t, x86::NumRegs> &Pi,
                      verify::Report &R) {
  using verify::ErrorCode;
  auto Refute = [&](std::string Context) {
    R.add(ErrorCode::EquivRefuted, std::move(Context));
    return Verdict::Refuted;
  };

  // Inverse renaming: which baseline register's entry value each
  // variant physical register carries.
  std::array<uint8_t, x86::NumRegs> InvPi;
  for (unsigned Rn = 0; Rn != x86::NumRegs; ++Rn)
    InvPi[Pi[Rn]] = static_cast<uint8_t>(Rn);

  Arena A(Opts.MaxTermsPerFunction);

  for (uint32_t BI = 0; BI != BF.Blocks.size(); ++BI) {
    uint32_t VI = BI + Shift;
    BlockExec EB = execBlock(BM, BF.Blocks[BI], BF.Blocks.size(), A);
    BlockExec EV =
        execBlock(VM, VF.Blocks[VI], VF.Blocks.size(), A, &InvPi);
    if (A.overflowed()) {
      R.add(ErrorCode::EquivAborted,
            format("%s: mbb%u: term budget exhausted; no verdict",
                   BF.Name.c_str(), VI));
      return Verdict::Aborted;
    }
    // A malformed *baseline* is a pipeline bug, not a variant defect:
    // no verdict.
    if (EB.Malformed || EB.BadTarget) {
      R.add(ErrorCode::EquivAborted,
            format("%s: baseline mbb%u is malformed; no verdict",
                   BF.Name.c_str(), BI));
      return Verdict::Aborted;
    }
    if (EV.Malformed)
      return Refute(
          instrLocation(VF, VI, EV.MalformedInstr) +
          ": effectful instruction after the block terminator");
    if (EV.BadTarget)
      return Refute(instrLocation(VF, VI, EV.BadTargetInstr) +
                    format(": branch target mbb%d out of range "
                           "(function has %zu blocks)",
                           EV.BadTargetVal, VF.Blocks.size()));

    // Location prefix for block-level (no single instruction) findings.
    std::string BlockLoc =
        Shift ? format("%s: mbb%u (baseline mbb%u)", BF.Name.c_str(), VI,
                       BI)
              : format("%s: mbb%u", BF.Name.c_str(), VI);

    // 1. The effect traces, position by position; the first mismatch is
    // the counterexample. One relaxation for schedule randomization:
    // loads have no side effect and carry no epoch of their own, so a
    // maximal run of read events (the reads between two consecutive
    // barriers) matches as a multiset -- same length, same elements,
    // any order. Everything else stays strictly positional, keeping
    // write/call/div ordering intact.
    size_t Common = std::min(EB.Events.size(), EV.Events.size());
    auto IsRead = [](const Event &Ev) {
      return Ev.Kind == Event::K::Load || Ev.Kind == Event::K::FrameLoad;
    };
    for (size_t E = 0; E != Common;) {
      if (EB.Events[E].sameAs(EV.Events[E])) {
        ++E;
        continue;
      }
      size_t RB = E, RV = E;
      while (RB != EB.Events.size() && IsRead(EB.Events[RB]))
        ++RB;
      while (RV != EV.Events.size() && IsRead(EV.Events[RV]))
        ++RV;
      bool RunsMatch = RB != E && RB - E == RV - E;
      if (RunsMatch) {
        std::vector<bool> Used(RB - E, false);
        for (size_t V = E; V != RV && RunsMatch; ++V) {
          RunsMatch = false;
          for (size_t B = E; B != RB; ++B)
            if (!Used[B - E] && EV.Events[V].sameAs(EB.Events[B])) {
              Used[B - E] = true;
              RunsMatch = true;
              break;
            }
        }
      }
      if (RunsMatch) {
        E = RB;
        continue;
      }
      return Refute(
          instrLocation(VF, VI, EV.Events[E].SrcInstr) +
          format(": effect #%zu differs from baseline: ", E) +
          eventStr(A, EV.Events[E]) + " vs " +
          eventStr(A, EB.Events[E]));
    }
    if (EV.Events.size() > EB.Events.size()) {
      const Event &E = EV.Events[Common];
      return Refute(instrLocation(VF, VI, E.SrcInstr) +
                    format(": extra effect #%zu not in baseline: ",
                           Common) +
                    eventStr(A, E));
    }
    if (EB.Events.size() > EV.Events.size()) {
      const Event &E = EB.Events[Common];
      return Refute(BlockLoc +
                    format(": baseline effect #%zu missing: ", Common) +
                    eventStr(A, E) + " ('" +
                    mir::printInstr(BF.Blocks[BI].Instrs[E.SrcInstr]) +
                    "' at baseline mbb" + format("%u #%u", BI,
                                                 E.SrcInstr) +
                    ")");
    }

    // 2. Call-clobbered register dependences: ECX/EDX after a call are
    // arbitrary under real cdecl, so the two sides must read them (or
    // not) in lockstep; an extra read is unprovable even when the value
    // dies immediately.
    if (EB.PoisonReads != EV.PoisonReads) {
      if (EV.PoisonReads.size() > EB.PoisonReads.size()) {
        const BlockExec::PoisonRead &Pr =
            EV.PoisonReads[EB.PoisonReads.size()];
        return Refute(
            instrLocation(VF, VI, Pr.SrcInstr) +
            format(": reads caller-saved %s while it holds a "
                   "call-clobbered value; no matching read in baseline",
                   x86::regName(static_cast<Reg>(Pr.RegNum))));
      }
      return Refute(BlockLoc +
                    ": call-clobbered register dependences differ from "
                    "baseline");
    }

    // 3. Conditional branches: same count, same condition code, same
    // symbolic flags term, and targets equal modulo the layout shift.
    if (EB.Branches.size() != EV.Branches.size())
      return Refute(BlockLoc +
                    format(": %zu conditional branches vs baseline's %zu",
                           EV.Branches.size(), EB.Branches.size()));
    for (size_t J = 0; J != EB.Branches.size(); ++J) {
      const BlockExec::CondBr &BBr = EB.Branches[J];
      const BlockExec::CondBr &VBr = EV.Branches[J];
      std::string Loc = instrLocation(VF, VI, VBr.SrcInstr);
      if (BBr.CC != VBr.CC)
        return Refute(Loc + format(": condition code differs from "
                                   "baseline 'j%s'",
                                   x86::condName(static_cast<x86::CondCode>(
                                       BBr.CC))));
      if (BBr.Cond != VBr.Cond)
        return Refute(Loc + ": branch condition differs from baseline: " +
                      termStr(A, VBr.Cond) + " vs " +
                      termStr(A, BBr.Cond));
      if (VBr.Target - static_cast<int32_t>(Shift) != BBr.Target)
        return Refute(Loc +
                      format(": branch target mbb%d does not map to "
                             "baseline target mbb%d under layout shift "
                             "%u",
                             VBr.Target, BBr.Target, Shift));
    }

    // 4. The terminator.
    if (EB.ExitKind != EV.ExitKind) {
      auto Name = [](BlockExec::Exit E) {
        switch (E) {
        case BlockExec::Exit::Fallthrough:
          return "fallthrough";
        case BlockExec::Exit::Jump:
          return "jump";
        case BlockExec::Exit::Ret:
          return "return";
        }
        return "<bad>";
      };
      return Refute(BlockLoc +
                    format(": block exit differs from baseline (%s vs "
                           "%s)",
                           Name(EV.ExitKind), Name(EB.ExitKind)));
    }
    if (EB.ExitKind == BlockExec::Exit::Jump &&
        EV.JumpTarget - static_cast<int32_t>(Shift) != EB.JumpTarget)
      return Refute(instrLocation(VF, VI, EV.JumpInstr) +
                    format(": jump target mbb%d does not map to baseline "
                           "target mbb%d under layout shift %u",
                           EV.JumpTarget, EB.JumpTarget, Shift));

    // 5. Exit register environment: all eight, conservatively -- a
    // value dead at block exit still refutes, which over-rejects only
    // modules no PGSD transform produces. Variant Pi[Rn] plays
    // baseline Rn's role.
    for (unsigned Rn = 0; Rn != x86::NumRegs; ++Rn)
      if (EB.Regs[Rn] != EV.Regs[Pi[Rn]])
        return Refute(BlockLoc +
                      format(": register %s exits the block as ",
                             x86::regName(static_cast<Reg>(Rn))) +
                      termStr(A, EV.Regs[Pi[Rn]]) + "; baseline has " +
                      termStr(A, EB.Regs[Rn]));

    // 6. Exit stack: depth and contents.
    if (EB.Stack != EV.Stack)
      return Refute(BlockLoc +
                    format(": block exits with %zu words pushed; "
                           "baseline has %zu",
                           EV.Stack.size(), EB.Stack.size()));

    // 7. Exit flags term (EFLAGS may be consumed by a later block).
    if (EB.Flags != EV.Flags)
      return Refute(BlockLoc +
                    ": EFLAGS exit state differs from baseline: " +
                    termStr(A, EV.Flags) + " vs " +
                    termStr(A, EB.Flags));
  }
  return Verdict::Proved;
}

/// Compares one function pair; on refutation or abort, appends exactly
/// one diagnostic to \p R and returns. \p BM / \p VM are the enclosing
/// modules (call-target argument counts).
Verdict compareFunction(const MModule &BM, const MFunction &BF,
                        const MModule &VM, const MFunction &VF,
                        const EquivOptions &Opts, ModuleContext &Ctx,
                        verify::Report &R) {
  using verify::ErrorCode;
  auto Refute = [&](std::string Context) {
    R.add(ErrorCode::EquivRefuted, std::move(Context));
    return Verdict::Refuted;
  };

  // Prologue and epilogue are emitted from function metadata, so
  // metadata equality is the symbolic equality of those implicit
  // instruction sequences (frame allocation, callee-saved saves).
  if (BF.Name != VF.Name || BF.NumParams != VF.NumParams)
    return Refute(format("%s: function signature differs from baseline "
                         "(%s/%u params vs %s/%u params)",
                         BF.Name.c_str(), VF.Name.c_str(), VF.NumParams,
                         BF.Name.c_str(), BF.NumParams));
  if (BF.FrameBytes != VF.FrameBytes ||
      BF.ValueSlotsLowDisp != VF.ValueSlotsLowDisp)
    return Refute(format("%s: frame layout differs from baseline "
                         "(%u bytes, low disp %d vs %u bytes, low disp "
                         "%d)",
                         BF.Name.c_str(), VF.FrameBytes,
                         VF.ValueSlotsLowDisp, BF.FrameBytes,
                         BF.ValueSlotsLowDisp));

  // Block correspondence under the layout permutation: identity, or a
  // proven two-block shift prelude mapping baseline i to variant i+2.
  // The prelude touches no registers, so recognition is independent of
  // any callee-saved renaming.
  uint32_t Shift = 0;
  if (VF.Blocks.size() == BF.Blocks.size() + 2) {
    Arena PreA(Opts.MaxTermsPerFunction);
    if (provenShiftPrelude(VM, VF, PreA))
      Shift = 2;
  }
  if (Shift == 0 && VF.Blocks.size() != BF.Blocks.size())
    return Refute(format("%s: %zu blocks do not correspond to baseline's "
                         "%zu (no provable shift prelude)",
                         BF.Name.c_str(), VF.Blocks.size(),
                         BF.Blocks.size()));

  // Candidate renamings pi of the cdecl callee-saved class {EBX, ESI,
  // EDI}: register shuffling renames whole live ranges, so the variant
  // is compared with pi(r) playing baseline r's role. The save set
  // must follow the renaming -- pi(r) saved exactly when baseline
  // saves r -- which is also what keeps the emitted prologue/epilogue
  // contract intact. Identity is enumerated first so unrenamed
  // variants keep refuting with the counterexample they always have.
  static constexpr uint8_t Saved[3] = {3, 6, 7};
  static constexpr uint8_t Perms[6][3] = {
      {3, 6, 7}, {3, 7, 6}, {6, 3, 7}, {6, 7, 3}, {7, 3, 6}, {7, 6, 3},
  };
  auto UsedIn = [](const MFunction &F, uint8_t Rn) {
    return Rn == 3 ? F.UsesEbx : (Rn == 6 ? F.UsesEsi : F.UsesEdi);
  };
  // A function pair that never touches a callee-saved register
  // compares identically under every renaming; only identity is worth
  // trying (and the liveness precondition need not be computed).
  auto TouchesSaved = [](const MFunction &F) {
    for (const MBasicBlock &BB : F.Blocks)
      for (const MInstr &I : BB.Instrs) {
        unsigned D = x86::regNum(I.Dst), S = x86::regNum(I.Src);
        if (D == 3 || D == 6 || D == 7 || S == 3 || S == 6 || S == 7)
          return true;
      }
    return false;
  };
  bool OnlyIdentity = !TouchesSaved(BF) && !TouchesSaved(VF);

  bool HaveFirst = false;
  verify::Report First;
  for (const auto &P : Perms) {
    bool Identity = P[0] == 3 && P[1] == 6 && P[2] == 7;
    bool MetaOk = true;
    for (unsigned J = 0; J != 3; ++J)
      MetaOk = MetaOk && UsedIn(VF, P[J]) == UsedIn(BF, Saved[J]);
    if (!MetaOk)
      continue;
    if (!Identity && (OnlyIdentity || !Ctx.livenessOk()))
      continue;
    std::array<uint8_t, x86::NumRegs> Pi;
    for (unsigned Rn = 0; Rn != x86::NumRegs; ++Rn)
      Pi[Rn] = static_cast<uint8_t>(Rn);
    Pi[3] = P[0];
    Pi[6] = P[1];
    Pi[7] = P[2];
    verify::Report Sub;
    Verdict V = compareBlocks(BM, BF, VM, VF, Opts, Shift, Pi, Sub);
    if (V == Verdict::Proved)
      return Verdict::Proved;
    if (V == Verdict::Aborted) {
      R.merge(Sub);
      return Verdict::Aborted;
    }
    if (!HaveFirst) {
      First = std::move(Sub);
      HaveFirst = true;
    }
  }
  if (!HaveFirst)
    // No renaming is compatible with the two save sets (or the sound
    // ones were filtered); the metadata itself is the counterexample.
    return Refute(format("%s: callee-saved register set differs from "
                         "baseline",
                         BF.Name.c_str()));

  // Every compatible renaming refuted; surface the first candidate's
  // counterexample (identity when the save sets match), keeping the
  // choice deterministic.
  R.merge(First);
  return Verdict::Refuted;
}

/// Bucket bounds for the per-function proof-time histogram (seconds).
constexpr double FuncSecondsBounds[] = {1e-5, 3e-5, 1e-4, 3e-4,
                                        1e-3, 3e-3, 1e-2, 1e-1};

} // namespace

verify::Report analysis::proveEquivalent(const MModule &Baseline,
                                         const MModule &Variant,
                                         const EquivOptions &Opts,
                                         EquivStats *Stats) {
  obs::Span Prove("equiv.prove");
  verify::Report R;
  EquivStats Local;
  EquivStats &St = Stats ? *Stats : Local;
  const bool Timed = obs::enabled();

  // Module-level shape: function table, entry point, global image
  // layout, counter table. Any mismatch here changes the linked image
  // or the observable memory layout.
  if (Baseline.Functions.size() != Variant.Functions.size()) {
    R.add(verify::ErrorCode::EquivRefuted,
          format("module: %zu functions vs baseline's %zu",
                 Variant.Functions.size(), Baseline.Functions.size()));
  } else if (Baseline.EntryFunction != Variant.EntryFunction) {
    R.add(verify::ErrorCode::EquivRefuted,
          format("module: entry function #%d differs from baseline #%d",
                 Variant.EntryFunction, Baseline.EntryFunction));
  } else if (Baseline.NumProfCounters != Variant.NumProfCounters) {
    R.add(verify::ErrorCode::EquivRefuted,
          format("module: %u profile counters vs baseline's %u",
                 Variant.NumProfCounters, Baseline.NumProfCounters));
  } else if (Baseline.Globals.size() != Variant.Globals.size()) {
    R.add(verify::ErrorCode::EquivRefuted,
          format("module: %zu globals vs baseline's %zu",
                 Variant.Globals.size(), Baseline.Globals.size()));
  } else {
    for (size_t G = 0; G != Baseline.Globals.size(); ++G)
      if (Baseline.Globals[G].SizeBytes != Variant.Globals[G].SizeBytes ||
          Baseline.Globals[G].Init != Variant.Globals[G].Init) {
        R.add(verify::ErrorCode::EquivRefuted,
              format("module: global #%zu layout differs from baseline",
                     G));
        break;
      }
  }

  if (R.ok()) {
    ModuleContext Ctx{Baseline, Variant};
    for (size_t F = 0; F != Baseline.Functions.size(); ++F) {
      if (R.Diags.size() >= Opts.MaxDiagnostics)
        break;
      double T0 = 0.0;
      if (Timed)
        T0 = std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
      Verdict V =
          compareFunction(Baseline, Baseline.Functions[F], Variant,
                          Variant.Functions[F], Opts, Ctx, R);
      if (Timed) {
        double T1 = std::chrono::duration<double>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count();
        obs::histogramObserve("equiv.function_seconds", T1 - T0,
                              FuncSecondsBounds);
      }
      switch (V) {
      case Verdict::Proved:
        ++St.FunctionsProved;
        break;
      case Verdict::Refuted:
        ++St.FunctionsRefuted;
        break;
      case Verdict::Aborted:
        ++St.FunctionsAborted;
        break;
      }
    }
  }

  // Module verdict counters partition equiv.modules_checked: a module
  // with both refuted and aborted functions counts as refuted (there is
  // a counterexample regardless of the aborted remainder).
  obs::counterAdd("equiv.modules_checked");
  if (R.has(verify::ErrorCode::EquivRefuted))
    obs::counterAdd("equiv.modules_refuted");
  else if (R.has(verify::ErrorCode::EquivAborted))
    obs::counterAdd("equiv.modules_aborted");
  else
    obs::counterAdd("equiv.modules_proved");
  return R;
}
