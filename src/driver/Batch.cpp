//===-- driver/Batch.cpp - Parallel variant factory ------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "support/ThreadPool.h"
#include "verify/BaselineCache.h"

#include <chrono>
#include <ctime>

using namespace pgsd;
using namespace pgsd::driver;

BatchResult driver::makeVariantsBatch(const Program &P,
                                      const diversity::DiversityOptions &Opts,
                                      const std::vector<uint64_t> &Seeds,
                                      const BatchOptions &BOpts) {
  BatchResult R;
  R.Jobs = BOpts.Jobs == 0 ? support::ThreadPool::defaultConcurrency()
                           : BOpts.Jobs;
  R.Variants.resize(Seeds.size());

  // Every seed verifies against the same baseline on the same battery:
  // one shared read-only cache runs the baseline once per input for the
  // whole batch instead of once per variant attempt. Entries fill under
  // per-entry once_flags, so sharing it across workers is race-free and
  // -- because each baseline run is a pure function of (baseline, input)
  // -- does not disturb the Jobs-independence determinism contract.
  verify::BaselineCache Cache(P.MIR, BOpts.Verify);
  verify::VerifyOptions Verify = BOpts.Verify;
  Verify.Cache = &Cache;

  auto WallStart = std::chrono::steady_clock::now();
  std::clock_t CpuStart = std::clock();

  if (R.Jobs == 1) {
    // Inline serial path: no pool threads, so the throughput bench's
    // Jobs=1 baseline measures the pipeline alone, not thread overhead.
    for (size_t I = 0; I != Seeds.size(); ++I)
      R.Variants[I] =
          makeVariantVerified(P, Opts, Seeds[I], Verify, BOpts.Link);
  } else {
    support::ThreadPool Pool(R.Jobs);
    for (size_t I = 0; I != Seeds.size(); ++I) {
      // Each task reads the shared immutable Program and writes only its
      // own pre-sized slot; Pool.wait() is the synchronization point
      // that publishes every slot to this thread.
      Pool.enqueue([&R, &P, &Opts, &Seeds, &Verify, &BOpts, I] {
        R.Variants[I] = makeVariantVerified(P, Opts, Seeds[I],
                                            Verify, BOpts.Link);
      });
    }
    Pool.wait();
  }

  R.BaselineCacheHits = Cache.hits();
  R.BaselineCacheFills = Cache.fills();

  R.WallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();
  R.CpuSeconds = static_cast<double>(std::clock() - CpuStart) /
                 static_cast<double>(CLOCKS_PER_SEC);

  for (const VerifiedVariant &V : R.Variants) {
    R.TotalAttempts += V.Attempts;
    if (V.ok())
      ++R.Accepted;
    else
      ++R.Rejected;
    if (V.Attempts > 1)
      ++R.Retried;
  }
  return R;
}
