//===-- driver/Batch.cpp - Parallel variant factory ------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "obs/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Time.h"
#include "verify/BaselineCache.h"

using namespace pgsd;
using namespace pgsd::driver;

BatchResult driver::makeVariantsBatch(const Program &P,
                                      const diversity::DiversityOptions &Opts,
                                      const std::vector<uint64_t> &Seeds,
                                      const BatchOptions &BOpts) {
  return makeVariantsBatch(P, diversity::Pipeline(), Opts, Seeds, BOpts);
}

BatchResult driver::makeVariantsBatch(const Program &P,
                                      const diversity::Pipeline &Pipe,
                                      const diversity::DiversityOptions &Opts,
                                      const std::vector<uint64_t> &Seeds,
                                      const BatchOptions &BOpts) {
  BatchResult R;
  R.Jobs = BOpts.Jobs == 0 ? support::ThreadPool::defaultConcurrency()
                           : BOpts.Jobs;
  R.Variants.resize(Seeds.size());

  // Telemetry: workers accumulate into per-seed LocalMetrics sinks --
  // plain maps, no locks, no atomics on the hot path -- which are folded
  // into the global registry only after the pool drains. Captured once
  // here so a concurrent toggle cannot leave half the seeds with sinks.
  const bool Obs = obs::enabled();
  std::vector<obs::LocalMetrics> Sinks(Obs ? Seeds.size() : 0);

  auto WallStart = support::monotonicSeconds();
  auto CpuStart = support::processCpuSeconds();

  // Every seed verifies against the same baseline on the same battery:
  // one shared read-only cache runs the baseline once per input for the
  // whole batch instead of once per variant attempt. Entries fill under
  // per-entry once_flags, so sharing it across workers is race-free and
  // -- because each baseline run is a pure function of (baseline, input)
  // -- does not disturb the Jobs-independence determinism contract.
  verify::VerifyOptions Verify = BOpts.Verify;
  verify::BaselineCache Cache = [&] {
    obs::Span S(Obs ? "batch.setup" : nullptr);
    return verify::BaselineCache(P.MIR, BOpts.Verify);
  }();
  Verify.Cache = &Cache;

  // One seed's diversify-verify-link pipeline, routed into its own sink.
  // Telemetry never touches the variant bits, so the Jobs-independence
  // determinism contract is unaffected by whether it is enabled.
  auto RunOne = [&](size_t I) {
    obs::ScopedSink Route(Obs ? &Sinks[I] : nullptr);
    obs::Span S(Obs ? "batch.seed" : nullptr);
    R.Variants[I] =
        makeVariantVerified(P, Pipe, Opts, Seeds[I], Verify, BOpts.Link);
  };

  {
    obs::Span Fan(Obs ? "batch.fanout" : nullptr);
    if (R.Jobs == 1) {
      // Inline serial path: no pool threads, so the throughput bench's
      // Jobs=1 baseline measures the pipeline alone, not thread
      // overhead.
      for (size_t I = 0; I != Seeds.size(); ++I)
        RunOne(I);
    } else {
      support::ThreadPool Pool(R.Jobs);
      for (size_t I = 0; I != Seeds.size(); ++I) {
        // Each task reads the shared immutable Program and writes only
        // its own pre-sized slot; Pool.wait() is the synchronization
        // point that publishes every slot to this thread.
        Pool.enqueue([&RunOne, I] { RunOne(I); });
      }
      try {
        Pool.wait();
      } catch (...) {
        // The first worker exception propagates to the caller exactly
        // like a serial loop's would; any *further* concurrent failures
        // were suppressed by the pool and the BatchResult that would
        // have carried their count is about to be abandoned -- export
        // the count so they leave a trace.
        if (Obs)
          obs::counterAdd("batch.suppressed_exceptions",
                          Pool.suppressedExceptions());
        throw;
      }
      R.SuppressedExceptions = Pool.suppressedExceptions();
    }
  }

  R.BaselineCacheHits = Cache.hits();
  R.BaselineCacheFills = Cache.fills();

  R.WallSeconds =
      support::elapsedSeconds(WallStart, support::monotonicSeconds());
  // Process CPU time from support::processCpuSeconds(), not
  // std::clock(): clock_t wraps after ~36 minutes on 32-bit ABIs, which
  // corrupted long PGSD_STRESS sweeps. elapsedSeconds additionally
  // clamps at zero so a clock hiccup can never export a negative.
  R.CpuSeconds =
      support::elapsedSeconds(CpuStart, support::processCpuSeconds());

  for (const VerifiedVariant &V : R.Variants) {
    R.TotalAttempts += V.Attempts;
    if (V.ok())
      ++R.Accepted;
    else
      ++R.Rejected;
    if (V.Attempts > 1)
      ++R.Retried;
  }

  if (Obs) {
    obs::Span Fin("batch.finalize");
    obs::Registry &Reg = obs::Registry::global();
    for (const obs::LocalMetrics &Sink : Sinks)
      Reg.merge(Sink);
    // Export the batch bookkeeping itself; BatchTest pins that these
    // equal the BatchResult fields exactly.
    obs::counterAdd("batch.seeds", Seeds.size());
    obs::counterAdd("batch.accepted", R.Accepted);
    obs::counterAdd("batch.rejected", R.Rejected);
    obs::counterAdd("batch.retried", R.Retried);
    obs::counterAdd("batch.attempts_total", R.TotalAttempts);
    obs::counterAdd("batch.suppressed_exceptions", R.SuppressedExceptions);
    obs::counterAdd("verify.baseline_cache.hits", R.BaselineCacheHits);
    obs::counterAdd("verify.baseline_cache.fills", R.BaselineCacheFills);
    obs::gaugeSet("batch.jobs", R.Jobs);
    obs::gaugeSet("batch.wall_seconds", R.WallSeconds);
    obs::gaugeSet("batch.cpu_seconds", R.CpuSeconds);
    obs::gaugeSet("batch.variants_per_second", R.variantsPerSecond());
  }
  return R;
}
