//===-- driver/Driver.h - End-to-end pipeline facade -------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call public API over the whole pipeline of the paper's Figure 3:
///
///   source --parse/lower--> IR --O2--> MIR --[profile]--> counts
///          --[NOP insertion]--> diversified MIR --emit/link--> image
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   driver::Program P = driver::compileProgram(Source, "demo");
///   driver::profileAndStamp(P, TrainInput);               // train run
///   auto Opts = diversity::DiversityOptions::profiled(
///       diversity::ProbabilityModel::Log, 0.0, 0.3);
///   driver::Variant V = driver::makeVariant(P, Opts, /*Seed=*/42);
///   auto Result = driver::execute(V.MIR, RefInput);       // measure
///   auto Gadgets = gadget::scanGadgets(V.Image.Text.data(),
///                                      V.Image.Text.size());
/// \endcode
///
//======---------------------------------------------------------------===//

#ifndef PGSD_DRIVER_DRIVER_H
#define PGSD_DRIVER_DRIVER_H

#include "codegen/Linker.h"
#include "diversity/NopInsertion.h"
#include "diversity/Transform.h"
#include "ir/IR.h"
#include "lir/MIR.h"
#include "mexec/Interp.h"
#include "profile/Profile.h"
#include "verify/Diagnostic.h"
#include "verify/Verifier.h"

#include <string>
#include <string_view>
#include <vector>

namespace pgsd {
namespace driver {

/// A compiled (but not yet diversified) program.
struct Program {
  verify::Report Diags; ///< Structured diagnostics; empty when usable.
  std::string Name;
  ir::Module IR;        ///< After mid-level optimization.
  mir::MModule MIR;     ///< Machine IR; profile-stamped after
                        ///< profileAndStamp.
  bool HasProfile = false;

  /// True when compilation succeeded and the program is usable.
  bool ok() const { return Diags.ok(); }
  /// All diagnostics rendered one per line (for logs and test output).
  std::string errors() const { return Diags.str(); }
};

/// Compiles MiniC \p Source. \p Optimize runs the -O2-style pipeline.
Program compileProgram(std::string_view Source, const std::string &Name,
                       bool Optimize = true);

/// Runs the instrumented program on \p TrainInput and stamps per-block
/// execution counts into P.MIR. Returns false when the training run
/// trapped (the program is left unstamped).
bool profileAndStamp(Program &P, const std::vector<int32_t> &TrainInput);

/// A diversified build.
struct Variant {
  mir::MModule MIR;
  codegen::Image Image;
  /// NOP-insertion counters (the Nop slice of Pipeline, kept as a
  /// separate field for the paper-era single-transform call sites).
  diversity::InsertionStats Stats;
  /// Per-transform counters of the pipeline that produced this variant.
  diversity::PipelineStats Pipeline;
};

/// Produces a diversified variant of \p P under transform pipeline
/// \p Pipe and links its image.
Variant makeVariant(const Program &P, const diversity::Pipeline &Pipe,
                    const diversity::DiversityOptions &Opts, uint64_t Seed,
                    const codegen::LinkOptions &Link = codegen::LinkOptions());

/// Produces a diversified variant of \p P (NOP insertion only -- the
/// default pipeline) and links its image.
Variant makeVariant(const Program &P,
                    const diversity::DiversityOptions &Opts, uint64_t Seed,
                    const codegen::LinkOptions &Link = codegen::LinkOptions());

/// Links the undiversified baseline image of \p P.
codegen::Image linkBaseline(const Program &P,
                            const codegen::LinkOptions &Link =
                                codegen::LinkOptions());

/// Executes machine IR on \p Input with the default cost model, on the
/// fast (precompiled) engine unless \p E selects the reference oracle.
mexec::RunResult execute(const mir::MModule &MIR,
                         const std::vector<int32_t> &Input,
                         bool CollectOutput = false,
                         mexec::Engine E = mexec::Engine::Fast);

/// A diversified build that has been through the verification pipeline.
struct VerifiedVariant {
  Variant V;              ///< Accepted variant, or the baseline fallback.
  verify::Report Report;  ///< Diagnostics from every failed attempt.
  uint64_t SeedUsed = 0;  ///< Seed of the accepted attempt.
  unsigned Attempts = 0;  ///< Variant builds tried (1 when first passed).
  bool UsedFallback = false; ///< True when V is the undiversified image.

  /// True when a diversified variant passed verification.
  bool ok() const { return !UsedFallback; }
};

/// Produces a *verified* diversified variant of \p P: builds a variant,
/// runs verify::verifyVariant on it, and on failure retries with seeds
/// from verify::deriveRetrySeed (bounded by VOpts.MaxAttempts). When
/// every attempt fails, degrades gracefully to the undiversified
/// baseline image and reports ErrorCode::RetriesExhausted instead of
/// aborting -- a deployment pipeline prefers an unprotected-but-correct
/// binary plus a loud diagnostic over no binary at all.
VerifiedVariant
makeVariantVerified(const Program &P,
                    const diversity::DiversityOptions &Opts, uint64_t Seed,
                    const verify::VerifyOptions &VOpts =
                        verify::VerifyOptions(),
                    const codegen::LinkOptions &Link =
                        codegen::LinkOptions());

/// makeVariantVerified under transform pipeline \p Pipe. The verifier's
/// NOP-only structural diff (VerifyOptions::CheckStructure) presumes the
/// baseline's instruction sequence survives up to inserted NOPs and
/// shift preludes; pipelines containing schedule randomization or
/// register shuffling legitimately break that, so the check is disabled
/// for them automatically (the equivalence prover and differential
/// execution still run).
VerifiedVariant
makeVariantVerified(const Program &P, const diversity::Pipeline &Pipe,
                    const diversity::DiversityOptions &Opts, uint64_t Seed,
                    const verify::VerifyOptions &VOpts =
                        verify::VerifyOptions(),
                    const codegen::LinkOptions &Link =
                        codegen::LinkOptions());

} // namespace driver
} // namespace pgsd

#endif // PGSD_DRIVER_DRIVER_H
