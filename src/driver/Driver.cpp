//===-- driver/Driver.cpp - End-to-end pipeline facade ---------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "lir/ISel.h"
#include "passes/Passes.h"

using namespace pgsd;
using namespace pgsd::driver;

Program driver::compileProgram(std::string_view Source,
                               const std::string &Name, bool Optimize) {
  Program P;
  P.Name = Name;
  std::vector<frontend::Diag> Diags;
  P.IR = frontend::compileToIR(Source, Name, Diags);
  if (!Diags.empty()) {
    P.Errors = frontend::formatDiags(Diags);
    return P;
  }
  std::string Problem = ir::verify(P.IR);
  if (!Problem.empty()) {
    P.Errors = "internal error: IR does not verify: " + Problem;
    return P;
  }
  if (Optimize)
    passes::optimize(P.IR);
  P.MIR = lir::selectInstructions(P.IR);
  // Passes expose each other's opportunities (a dead store uncovers a
  // dead constant materialization); iterate to a bounded fixpoint.
  for (unsigned Iter = 0; Iter != 4 && lir::peephole(P.MIR) != 0; ++Iter)
    ;
  Problem = mir::verify(P.MIR);
  if (!Problem.empty()) {
    P.Errors = "internal error: MIR does not verify: " + Problem;
    return P;
  }
  P.OK = true;
  return P;
}

bool driver::profileAndStamp(Program &P,
                             const std::vector<int32_t> &TrainInput) {
  mexec::RunOptions Opts;
  Opts.Input = TrainInput;
  profile::ProfileData Data = profile::profileModule(P.MIR, Opts);
  if (Data.empty())
    return false;
  profile::applyCounts(P.MIR, Data);
  P.HasProfile = true;
  return true;
}

Variant driver::makeVariant(const Program &P,
                            const diversity::DiversityOptions &Opts,
                            uint64_t Seed,
                            const codegen::LinkOptions &Link) {
  Variant V;
  V.MIR = diversity::makeVariant(P.MIR, Opts, Seed, &V.Stats);
  V.Image = codegen::link(V.MIR, Link);
  return V;
}

codegen::Image driver::linkBaseline(const Program &P,
                                    const codegen::LinkOptions &Link) {
  return codegen::link(P.MIR, Link);
}

mexec::RunResult driver::execute(const mir::MModule &MIR,
                                 const std::vector<int32_t> &Input,
                                 bool CollectOutput) {
  mexec::RunOptions Opts;
  Opts.Input = Input;
  Opts.CollectOutput = CollectOutput;
  return mexec::run(MIR, Opts);
}
