//===-- driver/Driver.cpp - End-to-end pipeline facade ---------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "analysis/Analysis.h"
#include "analysis/Equiv.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "lir/ISel.h"
#include "obs/Metrics.h"
#include "passes/Passes.h"
#include "verify/BaselineCache.h"

#include <cstdio>
#include <optional>
#include <utility>

using namespace pgsd;
using namespace pgsd::driver;

Program driver::compileProgram(std::string_view Source,
                               const std::string &Name, bool Optimize) {
  Program P;
  P.Name = Name;
  std::vector<frontend::Diag> Diags;
  {
    obs::Span S("pipeline.frontend");
    P.IR = frontend::compileToIR(Source, Name, Diags);
  }
  if (!Diags.empty()) {
    P.Diags.add(verify::ErrorCode::ParseError,
                frontend::formatDiags(Diags));
    return P;
  }
  std::string Problem = ir::verify(P.IR);
  if (!Problem.empty()) {
    P.Diags.add(verify::ErrorCode::IRInvalid,
                "internal error: IR does not verify: " + Problem);
    return P;
  }
  if (Optimize) {
    obs::Span S("pipeline.passes");
    passes::optimize(P.IR);
  }
  {
    obs::Span S("pipeline.isel");
    P.MIR = lir::selectInstructions(P.IR);
    // Passes expose each other's opportunities (a dead store uncovers a
    // dead constant materialization); iterate to a bounded fixpoint.
    for (unsigned Iter = 0; Iter != 4 && lir::peephole(P.MIR) != 0;
         ++Iter)
      ;
  }
  Problem = mir::verify(P.MIR);
  if (!Problem.empty()) {
    P.Diags.add(verify::ErrorCode::MIRInvalid,
                "internal error: MIR does not verify: " + Problem);
    return P;
  }
  // The baseline MIR must already uphold every invariant the analyzer
  // proves; a diagnostic here is a backend bug, not a diversity bug.
  {
    obs::Span S("pipeline.analyze");
    P.Diags.merge(analysis::analyzeModule(P.MIR));
  }
  obs::counterAdd("driver.programs_compiled");
  return P;
}

bool driver::profileAndStamp(Program &P,
                             const std::vector<int32_t> &TrainInput) {
  mexec::RunOptions Opts;
  Opts.Input = TrainInput;
  profile::ProfileData Data = profile::profileModule(P.MIR, Opts);
  if (Data.empty())
    return false;
  profile::applyCounts(P.MIR, Data);
  P.HasProfile = true;
  return true;
}

Variant driver::makeVariant(const Program &P,
                            const diversity::Pipeline &Pipe,
                            const diversity::DiversityOptions &Opts,
                            uint64_t Seed,
                            const codegen::LinkOptions &Link) {
  Variant V;
  {
    obs::Span S("pipeline.diversify");
    V.MIR = P.MIR;
    V.Pipeline = Pipe.run(V.MIR, Opts, Seed);
    V.Stats = V.Pipeline.Nop;
  }
  {
    obs::Span S("pipeline.emit");
    V.Image = codegen::link(V.MIR, Link);
  }
  return V;
}

Variant driver::makeVariant(const Program &P,
                            const diversity::DiversityOptions &Opts,
                            uint64_t Seed,
                            const codegen::LinkOptions &Link) {
  // The default pipeline is {nop} drawing from Rng(Seed), which is
  // diversity::makeVariant's historical stream byte-for-byte.
  return makeVariant(P, diversity::Pipeline(), Opts, Seed, Link);
}

codegen::Image driver::linkBaseline(const Program &P,
                                    const codegen::LinkOptions &Link) {
  obs::Span S("pipeline.emit");
  return codegen::link(P.MIR, Link);
}

mexec::RunResult driver::execute(const mir::MModule &MIR,
                                 const std::vector<int32_t> &Input,
                                 bool CollectOutput, mexec::Engine E) {
  mexec::RunOptions Opts;
  Opts.Input = Input;
  Opts.CollectOutput = CollectOutput;
  return mexec::runWith(E, MIR, Opts);
}

VerifiedVariant
driver::makeVariantVerified(const Program &P,
                            const diversity::DiversityOptions &Opts,
                            uint64_t Seed,
                            const verify::VerifyOptions &VOpts,
                            const codegen::LinkOptions &Link) {
  return makeVariantVerified(P, diversity::Pipeline(), Opts, Seed, VOpts,
                             Link);
}

VerifiedVariant
driver::makeVariantVerified(const Program &P,
                            const diversity::Pipeline &Pipe,
                            const diversity::DiversityOptions &Opts,
                            uint64_t Seed,
                            const verify::VerifyOptions &VOpts,
                            const codegen::LinkOptions &Link) {
  VerifiedVariant Out;
  verify::VerifyOptions Effective = VOpts;
  Effective.Link = Link;
  // The structural diff only models NOP insertion and shift preludes;
  // reordering/renaming pipelines are screened by the equivalence
  // prover and differential execution instead.
  Effective.CheckStructure =
      VOpts.CheckStructure && Pipe.structurePreserving();
  // Every retry attempt diffs against the same baseline on the same
  // battery; share one baseline run cache across the whole retry loop
  // (unless the caller -- e.g. makeVariantsBatch -- already supplied a
  // wider-scoped one).
  std::optional<verify::BaselineCache> LocalCache;
  if (!Effective.Cache)
    Effective.Cache = &LocalCache.emplace(P.MIR, Effective);
  // One schedule object walks the attempt seeds; with the default
  // SeedStride of 0 this reproduces the historical
  // deriveRetrySeed(Seed, Attempt) sequence exactly.
  verify::RetrySchedule Schedule(Seed, VOpts.MaxAttempts,
                                 VOpts.SeedStride);
  while (!Schedule.exhausted()) {
    unsigned Attempt = Schedule.attemptsMade();
    uint64_t S = Schedule.next();
    Variant V = makeVariant(P, Pipe, Opts, S, Link);
    if (Effective.InjectFault)
      Effective.InjectFault(V.MIR, V.Image, S);
    // Static screening first: when the analyzer can refute the variant
    // from its MIR alone, skip the much more expensive differential
    // execution and go straight to the next seed.
    obs::counterAdd("verify.attempts");
    verify::Report R;
    {
      obs::Span VS("pipeline.verify");
      R = analysis::analyzeModule(V.MIR);
      if (!R.ok()) {
        obs::counterAdd("verify.static_rejections");
        R.add(verify::ErrorCode::StaticAnalysisRejected,
              "variant rejected by static analysis before execution");
      } else {
        // Translation validation second: a symbolic equivalence proof
        // against the baseline (analysis/Equiv.h). Still static -- a
        // refutation carries a counterexample and skips differential
        // execution entirely.
        if (Effective.CheckEquiv)
          R = analysis::proveEquivalent(P.MIR, V.MIR);
        if (!R.ok()) {
          obs::counterAdd("verify.equiv_rejections");
          R.add(verify::ErrorCode::EquivRejected,
                "variant rejected by translation validation before "
                "execution");
        } else {
          R = verify::verifyVariant(P.MIR, V.MIR, V.Image, Effective);
        }
      }
    }
    Out.Attempts = Attempt + 1;
    if (R.ok()) {
      Out.V = std::move(V);
      Out.SeedUsed = S;
      obs::counterAdd("verify.accepted");
      return Out;
    }
    obs::counterAdd("verify.rejected_attempts");
    // Prefix each rejected attempt's diagnostics so a multi-attempt
    // report reads as a timeline.
    char Prefix[64];
    std::snprintf(Prefix, sizeof(Prefix), "attempt %u (seed %llu): ",
                  Attempt + 1, static_cast<unsigned long long>(S));
    for (verify::Diagnostic &D : R.Diags)
      Out.Report.add(D.Code, Prefix + D.Context);
  }
  // Every attempt failed: degrade to the undiversified baseline image
  // rather than shipping an unverified variant or nothing at all.
  obs::counterAdd("verify.fallbacks");
  Out.UsedFallback = true;
  Out.SeedUsed = Seed;
  Out.V.MIR = P.MIR;
  Out.V.Image = linkBaseline(P, Link);
  Out.V.Stats = diversity::InsertionStats();
  Out.V.Pipeline = diversity::PipelineStats();
  Out.Report.add(verify::ErrorCode::RetriesExhausted,
                 "all " + std::to_string(Schedule.budget()) +
                     " attempts failed verification; emitting "
                     "undiversified baseline image");
  return Out;
}
