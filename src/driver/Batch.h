//===-- driver/Batch.h - Parallel variant factory ----------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel variant factory: compile once, diversify-and-verify many.
/// The paper's security argument rests on shipping *many* diversified
/// variants of one program ("massive-scale automated software
/// diversity", Section 1); this is the batch engine that produces a
/// population of verified variants from a seed list, saturating cores
/// via support::ThreadPool.
///
/// Determinism contract: makeVariantsBatch(P, Opts, Seeds, Jobs) returns
/// the *same* BatchResult.Variants (byte-identical images, identical
/// stats, identical accepted seeds) for every Jobs value, because each
/// variant is a pure function of (P, Opts, its seed) -- workers share
/// only the immutable Program and construct all mutable state (the
/// variant copy of the MIR, the per-variant Rng, interpreter state)
/// privately. tests/BatchTest.cpp pins this; the TSan CI job proves the
/// sharing really is read-only.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_DRIVER_BATCH_H
#define PGSD_DRIVER_BATCH_H

#include "driver/Driver.h"

#include <cstdint>
#include <vector>

namespace pgsd {
namespace driver {

/// Configuration of one batch run.
struct BatchOptions {
  /// Worker threads; 0 means support::ThreadPool::defaultConcurrency().
  /// Jobs == 1 runs inline on the calling thread (the true serial
  /// baseline the throughput bench compares against).
  unsigned Jobs = 0;

  /// Per-variant verification configuration (battery, retry budget,
  /// fault-injection seam). VerifyOptions::InjectFault, when set, is
  /// invoked concurrently from workers and must be thread-safe.
  verify::VerifyOptions Verify;

  /// Link options for every variant (and any baseline fallback).
  codegen::LinkOptions Link;
};

/// Aggregated result of one batch run.
struct BatchResult {
  /// One entry per input seed, in seed-list order regardless of Jobs or
  /// scheduling (workers write disjoint slots of a pre-sized vector).
  std::vector<VerifiedVariant> Variants;

  unsigned Jobs = 0;           ///< Worker count actually used.
  uint64_t Accepted = 0;       ///< Variants that passed verification.
  uint64_t Rejected = 0;       ///< Fell back to the baseline image.
  uint64_t Retried = 0;        ///< Needed more than one attempt.
  uint64_t TotalAttempts = 0;  ///< Variant builds across all seeds.
  /// Baseline differential runs served from the shared
  /// verify::BaselineCache (vs. computed). Across a healthy batch,
  /// Fills stays at most battery-size while Hits grows with
  /// seeds x inputs: the baseline executes once per input, not once per
  /// variant attempt.
  uint64_t BaselineCacheHits = 0;
  uint64_t BaselineCacheFills = 0;
  /// Worker exceptions the pool dropped because another task's exception
  /// was already pending rethrow: wait() surfaces only the first, so a
  /// nonzero count here is the only trace that *more than one* seed's
  /// pipeline blew up concurrently. Always 0 on the Jobs == 1 inline
  /// path (no pool, every exception propagates directly).
  uint64_t SuppressedExceptions = 0;
  double WallSeconds = 0.0;    ///< Wall-clock time of the batch.
  double CpuSeconds = 0.0;     ///< Process CPU time of the batch.

  /// True when every seed produced a verified diversified variant.
  bool allAccepted() const { return Rejected == 0; }

  /// Verified variants per wall-clock second.
  double variantsPerSecond() const {
    return WallSeconds > 0.0
               ? static_cast<double>(Variants.size()) / WallSeconds
               : 0.0;
  }
};

/// Produces one verified variant per seed in \p Seeds, fanning
/// makeVariantVerified across \p BOpts.Jobs workers. \p P is shared
/// read-only by all workers and must outlive the call; it is never
/// mutated (compile and profile it *before* batching).
BatchResult makeVariantsBatch(const Program &P,
                              const diversity::DiversityOptions &Opts,
                              const std::vector<uint64_t> &Seeds,
                              const BatchOptions &BOpts = BatchOptions());

/// makeVariantsBatch under transform pipeline \p Pipe. Each variant is
/// a pure function of (P, Pipe, Opts, its seed), so the Jobs-
/// independence determinism contract holds for every pipeline.
BatchResult makeVariantsBatch(const Program &P,
                              const diversity::Pipeline &Pipe,
                              const diversity::DiversityOptions &Opts,
                              const std::vector<uint64_t> &Seeds,
                              const BatchOptions &BOpts = BatchOptions());

} // namespace driver
} // namespace pgsd

#endif // PGSD_DRIVER_BATCH_H
