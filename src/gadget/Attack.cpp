//===-- gadget/Attack.cpp - ROP attack feasibility checking ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "gadget/Attack.h"

#include "x86/Decoder.h"
#include "x86/Nops.h"

#include <unordered_set>

using namespace pgsd;
using namespace pgsd::gadget;
using x86::Decoded;

namespace {

/// A NOP-normalized, fully decoded gadget body.
struct NormalizedGadget {
  std::vector<Decoded> Instrs; ///< Without NOPs; terminator last.
  uint32_t Bytes = 0;          ///< Normalized byte length.
  uint64_t Hash = 0;
};

bool normalizeAt(const uint8_t *Text, size_t Size, uint32_t Offset,
                 const ImageScan &Scan, const ScanOptions &Opts,
                 std::vector<std::pair<uint32_t, uint8_t>> &Raw,
                 NormalizedGadget &Out) {
  if (!Scan.instructionsAt(Offset, Raw))
    return false;
  Out.Instrs.clear();
  Out.Bytes = 0;
  uint64_t Hash = 1469598103934665603ull;
  for (const auto &[At, Len] : Raw) {
    x86::NopKind Kind;
    if (x86::matchNopAt(Text + At, Len, Opts.IncludeXchgNops, Kind) &&
        x86::nopInfo(Kind).Length == Len)
      continue;
    Decoded D;
    bool OK = x86::decodeInstr(Text + At, Size - At, D);
    if (!OK && D.Class != x86::InstrClass::IntN)
      return false;
    Out.Instrs.push_back(D);
    Out.Bytes += Len;
    for (uint8_t B = 0; B != Len; ++B) {
      Hash ^= Text[At + B];
      Hash *= 1099511628211ull;
    }
  }
  Out.Hash = Hash;
  return !Out.Instrs.empty();
}

/// Classifies a normalized gadget into a ROP-VM operation. Only simple,
/// directly chainable shapes count; anything else is Other.
ClassifiedGadget classify(const NormalizedGadget &G, uint32_t Offset) {
  ClassifiedGadget Result;
  Result.Offset = Offset;
  Result.ByteLength = G.Bytes;

  const Decoded &Term = G.Instrs.back();
  size_t BodyLen = G.Instrs.size() - 1;

  // Syscall gadget: INT 0x80 or SYSENTER as terminator with an empty
  // body (attacker sets registers with other gadgets first).
  if (Term.Class == x86::InstrClass::IntN) {
    bool IsInt80 = !Term.TwoByte && Term.Opcode == 0xCD &&
                   (Term.Imm & 0xFF) == 0x80;
    bool IsSysenter = Term.TwoByte && Term.Opcode == 0x34;
    if ((IsInt80 || IsSysenter) && BodyLen == 0) {
      Result.Class = GadgetClass::Syscall;
      return Result;
    }
    Result.Class = GadgetClass::Other;
    return Result;
  }

  // Payload gadgets must end in a plain near return to chain.
  bool PlainRet = Term.Class == x86::InstrClass::Ret ||
                  Term.Class == x86::InstrClass::RetImm;
  if (!PlainRet || BodyLen != 1) {
    Result.Class = GadgetClass::Other;
    return Result;
  }

  const Decoded &I = G.Instrs[0];
  if (I.TwoByte || I.NumPrefixes != 0) {
    Result.Class = GadgetClass::Other;
    return Result;
  }

  // pop r32; ret
  if (I.Opcode >= 0x58 && I.Opcode <= 0x5F) {
    Result.Class = GadgetClass::PopReg;
    Result.Dst = I.Opcode - 0x58;
    return Result;
  }
  // xchg eax, r32; ret
  if (I.Opcode >= 0x91 && I.Opcode <= 0x97) {
    Result.Class = GadgetClass::MoveReg;
    Result.Dst = 0;
    Result.Src = I.Opcode - 0x90;
    return Result;
  }
  if (I.HasModRM) {
    uint8_t Mod = I.modField();
    uint8_t RegF = I.regField();
    uint8_t RM = I.rmField();
    // mov [r], r'; ret  (89 /r, register-indirect with no SIB/disp)
    if (I.Opcode == 0x89 && Mod == 0 && RM != 4 && RM != 5) {
      Result.Class = GadgetClass::StoreMem;
      Result.Dst = RM;
      Result.Src = RegF;
      return Result;
    }
    // mov r, [r']; ret  (8B /r)
    if (I.Opcode == 0x8B && Mod == 0 && RM != 4 && RM != 5) {
      Result.Class = GadgetClass::LoadMem;
      Result.Dst = RegF;
      Result.Src = RM;
      return Result;
    }
    // mov r, r'; ret (89/8B mod=11) or xchg r, r' (87 mod=11)
    if ((I.Opcode == 0x89 || I.Opcode == 0x8B || I.Opcode == 0x87) &&
        Mod == 3) {
      Result.Class = GadgetClass::MoveReg;
      if (I.Opcode == 0x8B) {
        Result.Dst = RegF;
        Result.Src = RM;
      } else {
        Result.Dst = RM;
        Result.Src = RegF;
      }
      return Result;
    }
    // add/or/and/sub/xor r, r'; ret (register forms)
    if (Mod == 3) {
      switch (I.Opcode) {
      case 0x01: // add
      case 0x09: // or
      case 0x21: // and
      case 0x29: // sub
      case 0x31: // xor
        Result.Class = GadgetClass::ArithReg;
        Result.Dst = RM;
        Result.Src = RegF;
        return Result;
      case 0x03:
      case 0x0B:
      case 0x23:
      case 0x2B:
      case 0x33:
        Result.Class = GadgetClass::ArithReg;
        Result.Dst = RegF;
        Result.Src = RM;
        return Result;
      default:
        break;
      }
    }
  }
  Result.Class = GadgetClass::Other;
  return Result;
}

} // namespace

std::vector<ClassifiedGadget>
gadget::classifyGadgets(const uint8_t *Text, size_t Size,
                        const ScanOptions &Opts) {
  // Attack tooling wants syscall-terminated gadgets too.
  ScanOptions AttackOpts = Opts;
  AttackOpts.IncludeSyscallGadgets = true;

  // One decode-once scan answers "is there a gadget here" and yields
  // instruction boundaries for every offset; only the non-NOP
  // instructions of actual gadgets are re-decoded for classification.
  ImageScan Scan(Text, Size, AttackOpts);
  std::vector<ClassifiedGadget> Result;
  std::vector<std::pair<uint32_t, uint8_t>> Raw;
  NormalizedGadget G;
  for (size_t Offset = 0; Offset < Size; ++Offset) {
    if (!normalizeAt(Text, Size, static_cast<uint32_t>(Offset), Scan,
                     AttackOpts, Raw, G))
      continue;
    ClassifiedGadget C = classify(G, static_cast<uint32_t>(Offset));
    Result.push_back(C);
  }
  return Result;
}

AttackOutcome gadget::checkAttack(const std::vector<ClassifiedGadget> &Gadgets,
                                  AttackModel Model) {
  AttackOutcome Out;
  // The microgadget model only accepts gadgets of at most 3 bytes.
  uint32_t MaxBytes = Model == AttackModel::Microgadget ? 3 : ~0u;

  bool PopReg[8] = {false};
  bool MoveEdge[8][8] = {{false}};
  bool HaveStore = false;
  bool HaveSyscall = false;

  for (const ClassifiedGadget &G : Gadgets) {
    if (G.ByteLength > MaxBytes)
      continue;
    switch (G.Class) {
    case GadgetClass::PopReg:
      PopReg[G.Dst & 7] = true;
      ++Out.NumPop;
      break;
    case GadgetClass::StoreMem:
      HaveStore = true;
      ++Out.NumStore;
      break;
    case GadgetClass::Syscall:
      HaveSyscall = true;
      ++Out.NumSyscall;
      break;
    case GadgetClass::MoveReg:
      MoveEdge[G.Src & 7][G.Dst & 7] = true;
      // XCHG moves both ways.
      MoveEdge[G.Dst & 7][G.Src & 7] = true;
      ++Out.NumMove;
      break;
    case GadgetClass::ArithReg:
      ++Out.NumArith;
      break;
    case GadgetClass::LoadMem:
    case GadgetClass::Other:
      break;
    }
  }

  // A register is controllable if it can be popped directly or reached
  // from a poppable register through register-move gadgets (closure).
  bool Controllable[8];
  for (unsigned R = 0; R != 8; ++R)
    Controllable[R] = PopReg[R];
  for (unsigned Iter = 0; Iter != 8; ++Iter)
    for (unsigned S = 0; S != 8; ++S)
      if (Controllable[S])
        for (unsigned D = 0; D != 8; ++D)
          if (MoveEdge[S][D])
            Controllable[D] = true;

  // execve-style payload: EAX = syscall number, EBX/ECX/EDX = arguments,
  // a store to build the path string, and a syscall trigger.
  auto Need = [&](bool Have, const char *What) {
    if (Have)
      return;
    if (!Out.Missing.empty())
      Out.Missing += ", ";
    Out.Missing += What;
  };
  Need(Controllable[0], "control of EAX");
  Need(Controllable[3], "control of EBX");
  Need(Controllable[1], "control of ECX");
  Need(Controllable[2], "control of EDX");
  Need(HaveStore, "memory-store gadget");
  Need(HaveSyscall, "syscall gadget");
  Out.Feasible = Out.Missing.empty();
  return Out;
}

AttackOutcome gadget::checkAttackOnImage(const std::vector<uint8_t> &Text,
                                         AttackModel Model,
                                         const ScanOptions &Opts) {
  return checkAttack(classifyGadgets(Text.data(), Text.size(), Opts), Model);
}

std::vector<ClassifiedGadget>
gadget::filterToSurvivors(const std::vector<ClassifiedGadget> &Gadgets,
                          const std::vector<SurvivingGadget> &Survivors) {
  std::unordered_set<uint32_t> Offsets;
  Offsets.reserve(Survivors.size());
  for (const SurvivingGadget &S : Survivors)
    Offsets.insert(S.Offset);
  std::vector<ClassifiedGadget> Result;
  for (const ClassifiedGadget &G : Gadgets)
    if (Offsets.count(G.Offset))
      Result.push_back(G);
  return Result;
}
