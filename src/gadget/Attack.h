//===-- gadget/Attack.h - ROP attack feasibility checking --------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete-attack half of the paper's Section 5.2: the authors ran
/// two public gadget scanners (ROPgadget and their own microgadgets
/// tool) against PHP, verified the undiversified binary was exploitable,
/// and showed that on each of the 25 diversified versions "the remaining
/// gadgets did not provide the required operations for the attack".
///
/// This module reimplements that check: gadgets are classified into
/// ROP-VM operations (register loads via POP, memory stores, register
/// moves, arithmetic, syscall triggers), and two attack models test
/// whether a gadget set still provides every operation an execve-style
/// payload needs:
///
///  * RopGadgetModel -- ROPgadget-like: any-size gadgets; needs POP
///    gadgets for EAX/EBX/ECX/EDX, a memory store, and INT 0x80.
///  * MicrogadgetModel -- microgadgets-like: same operations but every
///    gadget must be at most 3 bytes long (the paper's microgadget size
///    bound), with register-move chaining allowed to reach operands.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_GADGET_ATTACK_H
#define PGSD_GADGET_ATTACK_H

#include "gadget/Scanner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace gadget {

/// ROP-VM operation classes.
enum class GadgetClass : uint8_t {
  PopReg,   ///< pop r32; ret          -- load a constant from the stack.
  StoreMem, ///< mov [r32], r32; ret   -- write attacker data to memory.
  LoadMem,  ///< mov r32, [r32]; ret   -- read memory.
  MoveReg,  ///< mov/xchg r32, r32; ret -- shuffle registers.
  ArithReg, ///< add/sub/xor/or/and r32, r32; ret.
  Syscall,  ///< int 0x80 / sysenter reachable as a gadget.
  Other,    ///< Valid gadget without a recognized payload use.
};

/// One classified gadget occurrence.
struct ClassifiedGadget {
  GadgetClass Class = GadgetClass::Other;
  uint32_t Offset = 0;
  uint32_t ByteLength = 0; ///< NOP-normalized payload length in bytes.
  uint8_t Dst = 0;         ///< Destination register number, if any.
  uint8_t Src = 0;         ///< Source register number, if any.
};

/// Classifies every gadget in \p Text (NOPs are normalized away first,
/// mirroring what an attacker would do with a diversified binary).
std::vector<ClassifiedGadget>
classifyGadgets(const uint8_t *Text, size_t Size,
                const ScanOptions &Opts = ScanOptions());

/// Attack models from the paper's case study.
enum class AttackModel : uint8_t {
  RopGadget,   ///< ROPgadget-style execve chain.
  Microgadget, ///< microgadgets-style chain (<= 3-byte gadgets).
};

/// Verdict of an attack-construction attempt.
struct AttackOutcome {
  bool Feasible = false;
  /// Human-readable list of the missing operations when infeasible.
  std::string Missing;
  /// Gadget counts per class that the model considered usable.
  uint64_t NumPop = 0;
  uint64_t NumStore = 0;
  uint64_t NumSyscall = 0;
  uint64_t NumMove = 0;
  uint64_t NumArith = 0;
};

/// Attempts to assemble the model's payload from \p Gadgets.
AttackOutcome checkAttack(const std::vector<ClassifiedGadget> &Gadgets,
                          AttackModel Model);

/// Convenience: classify + check in one call.
AttackOutcome checkAttackOnImage(const std::vector<uint8_t> &Text,
                                 AttackModel Model,
                                 const ScanOptions &Opts = ScanOptions());

/// Restricts \p Gadgets to those whose (offset, normalized content)
/// identity is in \p Survivors -- the paper re-ran its scanners "on the
/// surviving gadgets" of each diversified version.
std::vector<ClassifiedGadget>
filterToSurvivors(const std::vector<ClassifiedGadget> &Gadgets,
                  const std::vector<SurvivingGadget> &Survivors);

} // namespace gadget
} // namespace pgsd

#endif // PGSD_GADGET_ATTACK_H
