//===-- gadget/Scanner.h - ROP gadget scanning and Survivor ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Security measurement tools from the paper's Section 5.2.
///
/// * scanGadgets: finds all gadget start offsets in a .text image --
///   sequences that decode to valid x86 with no control flow except a
///   final free branch (return, indirect call, or indirect jump).
///   Privileged and undefined instructions disqualify a candidate, the
///   property the paper designed its NOP second bytes around.
///
/// * survivingGadgets: the paper's "Survivor" comparison. A candidate
///   match is a pair of gadgets at *identical offsets* in the original
///   and diversified .text. Both sequences are normalized by removing
///   every potentially-inserted Table 1 NOP; equal normalized sequences
///   count as a surviving gadget. As in the paper, normalization can
///   only make sequences more similar, so the count conservatively
///   overestimates survival.
///
/// * multi-version survival: how many gadget identities (offset +
///   normalized content) appear in at least K of N diversified versions
///   (the paper's Table 3: K in {2, 5, 12} of N = 25).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_GADGET_SCANNER_H
#define PGSD_GADGET_SCANNER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgsd {
namespace gadget {

/// Scanner configuration.
struct ScanOptions {
  /// Maximum instructions per gadget, free branch included. Typical ROP
  /// tooling uses small windows; 8 keeps counts comparable to the
  /// paper's scanners.
  unsigned MaxInstrs = 8;
  /// Recognize the XCHG NOPs during normalization too.
  bool IncludeXchgNops = true;
  /// Also treat software interrupts (INT 0x80, SYSENTER) as gadget
  /// terminators, the way attack tooling like ROPgadget lists syscall
  /// gadgets. Off for the paper's Survivor counting (which only counts
  /// free-branch-terminated sequences); on inside the attack checker.
  bool IncludeSyscallGadgets = false;
};

/// One gadget occurrence.
struct Gadget {
  uint32_t Offset = 0;    ///< Start offset within .text.
  uint32_t Length = 0;    ///< Bytes up to and including the free branch.
  uint8_t NumInstrs = 0;  ///< Instructions including the free branch.
};

/// Scans \p Text for all gadget start offsets.
std::vector<Gadget> scanGadgets(const uint8_t *Text, size_t Size,
                                const ScanOptions &Opts = ScanOptions());

/// Decodes the gadget starting at \p Offset into (offset, length)
/// instruction boundaries including the terminator; returns false when
/// no valid gadget starts there. Exposed for the attack classifier.
bool decodeGadgetAt(const uint8_t *Text, size_t Size, uint32_t Offset,
                    const ScanOptions &Opts,
                    std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut);

/// A gadget that survived diversification at its original offset.
struct SurvivingGadget {
  uint32_t Offset = 0;
  uint64_t NormHash = 0; ///< Hash of the NOP-normalized byte sequence.
};

/// Computes the NOP-normalized content hash of the gadget starting at
/// \p Offset, or returns false when no valid gadget starts there.
bool normalizedGadgetHash(const uint8_t *Text, size_t Size, uint32_t Offset,
                          const ScanOptions &Opts, uint64_t &HashOut,
                          unsigned &NonNopInstrsOut);

/// The paper's Survivor algorithm over one (original, diversified) pair.
std::vector<SurvivingGadget>
survivingGadgets(const std::vector<uint8_t> &Original,
                 const std::vector<uint8_t> &Diversified,
                 const ScanOptions &Opts = ScanOptions());

/// Multi-version analysis: returns, for each threshold in \p Thresholds,
/// how many gadget identities (offset, normalized content) occur in at
/// least that many of the \p Versions.
std::vector<uint64_t>
gadgetsInAtLeast(const std::vector<std::vector<uint8_t>> &Versions,
                 const std::vector<unsigned> &Thresholds,
                 const ScanOptions &Opts = ScanOptions());

} // namespace gadget
} // namespace pgsd

#endif // PGSD_GADGET_SCANNER_H
