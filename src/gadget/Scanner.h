//===-- gadget/Scanner.h - ROP gadget scanning and Survivor ------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Security measurement tools from the paper's Section 5.2.
///
/// * scanGadgets: finds all gadget start offsets in a .text image --
///   sequences that decode to valid x86 with no control flow except a
///   final free branch (return, indirect call, or indirect jump).
///   Privileged and undefined instructions disqualify a candidate, the
///   property the paper designed its NOP second bytes around.
///
/// * survivingGadgets: the paper's "Survivor" comparison. A candidate
///   match is a pair of gadgets at *identical offsets* in the original
///   and diversified .text. Both sequences are normalized by removing
///   every potentially-inserted Table 1 NOP; equal normalized sequences
///   count as a surviving gadget. As in the paper, normalization can
///   only make sequences more similar, so the count conservatively
///   overestimates survival.
///
/// * multi-version survival: how many gadget identities (offset +
///   normalized content) appear in at least K of N diversified versions
///   (the paper's Table 3: K in {2, 5, 12} of N = 25).
///
/// Two implementations back these queries (DESIGN.md section 15):
///
/// * The *reference oracle* decodes afresh from every byte offset with
///   an Opts.MaxInstrs window -- O(Size x MaxInstrs) decodes per image.
///   It is the executable specification, kept behind
///   ScanOptions::ForceReference and pinned by ScannerParityTest.
///
/// * The *decode-once scanner* (ImageScan) decodes each offset exactly
///   once into a flat side table of (length, class) facts, then a
///   backward dynamic-programming pass computes the gadget suffix
///   starting at every offset -- O(Size) decodes, byte-identical
///   results. ImageScan additionally supports incremental rescans
///   (re-decode only the regions perturbed by a byte diff) and is
///   immutable after construction, so one original-image scan can be
///   shared read-only across worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_GADGET_SCANNER_H
#define PGSD_GADGET_SCANNER_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pgsd {
namespace gadget {

/// Scanner configuration.
struct ScanOptions {
  /// Maximum instructions per gadget, free branch included. Typical ROP
  /// tooling uses small windows; 8 keeps counts comparable to the
  /// paper's scanners.
  unsigned MaxInstrs = 8;
  /// Recognize the XCHG NOPs during normalization too.
  bool IncludeXchgNops = true;
  /// Also treat software interrupts (INT 0x80, SYSENTER) as gadget
  /// terminators, the way attack tooling like ROPgadget lists syscall
  /// gadgets. Off for the paper's Survivor counting (which only counts
  /// free-branch-terminated sequences); on inside the attack checker.
  bool IncludeSyscallGadgets = false;
  /// Use the per-offset reference oracle instead of the decode-once
  /// scanner. Slow (O(Size x MaxInstrs) decodes); exists so the parity
  /// tests and benches can compare against the executable spec.
  bool ForceReference = false;
  /// Seed each diversified-image scan from the shared original-image
  /// scan and rescan only the byte ranges the variant perturbed
  /// (survivingGadgetsMulti). Results are identical by construction.
  bool Incremental = false;
  /// Worker threads for the multi-version sweeps (survivingGadgetsMulti
  /// and gadgetsInAtLeast): 1 runs serially on the calling thread, 0
  /// uses all cores. Results are independent of this value.
  unsigned Jobs = 1;
};

/// One gadget occurrence.
struct Gadget {
  uint32_t Offset = 0;    ///< Start offset within .text.
  uint32_t Length = 0;    ///< Bytes up to and including the free branch.
  uint8_t NumInstrs = 0;  ///< Instructions including the free branch.
};

/// A gadget that survived diversification at its original offset.
struct SurvivingGadget {
  uint32_t Offset = 0;
  uint64_t NormHash = 0; ///< Hash of the NOP-normalized byte sequence.
};

/// Decode-once gadget index over one .text image.
///
/// Construction runs one linear decode pass (each offset decoded exactly
/// once into a flat fact table) plus a backward DP pass, after which
/// every query -- gadget enumeration, per-offset instruction boundaries,
/// normalized content hashes -- is answered without touching the decoder
/// again. rescan() diffs the new image against the held bytes and
/// recomputes facts only for the dirty range (widened by the maximum
/// instruction length) and DP only for the dirty range widened by
/// MaxInstrs x max-instruction-length; results are identical to a fresh
/// full scan by construction (ScannerParityTest pins this).
///
/// Thread-safety: all const queries are safe to call concurrently; a
/// fully-constructed ImageScan may be shared read-only across threads.
class ImageScan {
public:
  ImageScan() = default;
  ImageScan(const uint8_t *Text, size_t Size,
            const ScanOptions &Opts = ScanOptions());
  explicit ImageScan(const std::vector<uint8_t> &Text,
                     const ScanOptions &Opts = ScanOptions());

  /// Replaces the image with \p NewText, re-decoding only the regions
  /// that differ from the currently held bytes (plus widening).
  void rescan(const uint8_t *NewText, size_t NewSize);
  void rescan(const std::vector<uint8_t> &NewText) {
    rescan(NewText.data(), NewText.size());
  }

  size_t size() const { return Bytes.size(); }
  const ScanOptions &options() const { return Opts; }
  const std::vector<uint8_t> &bytes() const { return Bytes; }

  /// True when a gadget (terminator within the window) starts at
  /// \p Offset.
  bool hasGadgetAt(uint32_t Offset) const {
    return Offset < SuffixInstrs.size() && SuffixInstrs[Offset] != 0;
  }

  /// Fills \p Out with the gadget starting at \p Offset; false when none
  /// starts there.
  bool gadgetAt(uint32_t Offset, Gadget &Out) const;

  /// All gadgets, in offset order (same contents as scanGadgets).
  std::vector<Gadget> gadgets() const;

  /// Number of gadget start offsets (without materializing the vector).
  size_t gadgetCount() const;

  /// (offset, length) instruction boundaries of the gadget at \p Offset,
  /// terminator included; false when no gadget starts there. Same
  /// contract as decodeGadgetAt, answered from the fact table.
  bool instructionsAt(uint32_t Offset,
                      std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut)
      const;

  /// NOP-normalized content hash of the gadget at \p Offset; false when
  /// no gadget starts there. Same contract as normalizedGadgetHash.
  bool normalizedHashAt(uint32_t Offset, uint64_t &HashOut,
                        unsigned &NonNopInstrsOut) const;

  /// Bytes the last (re)scan actually decoded: the whole image for a
  /// full scan, the widened dirty range for a rescan.
  uint64_t decodedBytes() const { return DecodedBytes; }
  /// True when the last (re)scan reused clean prefix/suffix state.
  bool lastScanIncremental() const { return LastIncremental; }

private:
  void fullScan();
  void decodeFacts(size_t Begin, size_t End);
  void computeDP(size_t Begin, size_t End);

  ScanOptions Opts;
  std::vector<uint8_t> Bytes;      ///< Held image (diff base + hashes).
  std::vector<uint8_t> FactLen;    ///< Decoded length; 0 = invalid.
  std::vector<uint8_t> FactFlags;  ///< Class/NOP bits (Scanner.cpp).
  /// DP: instructions in the gadget suffix starting here; 0 = none
  /// within the window.
  std::vector<uint16_t> SuffixInstrs;
  std::vector<uint32_t> SuffixLen; ///< DP: gadget suffix byte length.
  uint64_t DecodedBytes = 0;
  bool LastIncremental = false;
};

/// Scans \p Text for all gadget start offsets.
std::vector<Gadget> scanGadgets(const uint8_t *Text, size_t Size,
                                const ScanOptions &Opts = ScanOptions());

/// Decodes the gadget starting at \p Offset into (offset, length)
/// instruction boundaries including the terminator; returns false when
/// no valid gadget starts there. Exposed for the attack classifier and
/// as the per-offset reference oracle.
bool decodeGadgetAt(const uint8_t *Text, size_t Size, uint32_t Offset,
                    const ScanOptions &Opts,
                    std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut);

/// Computes the NOP-normalized content hash of the gadget starting at
/// \p Offset, or returns false when no valid gadget starts there.
bool normalizedGadgetHash(const uint8_t *Text, size_t Size, uint32_t Offset,
                          const ScanOptions &Opts, uint64_t &HashOut,
                          unsigned &NonNopInstrsOut);

/// As above, reusing \p Scratch for the instruction boundaries (the
/// reference survivor loops call this per gadget).
bool normalizedGadgetHash(const uint8_t *Text, size_t Size, uint32_t Offset,
                          const ScanOptions &Opts, uint64_t &HashOut,
                          unsigned &NonNopInstrsOut,
                          std::vector<std::pair<uint32_t, uint8_t>> &Scratch);

/// The paper's Survivor algorithm over one (original, diversified) pair.
std::vector<SurvivingGadget>
survivingGadgets(const std::vector<uint8_t> &Original,
                 const std::vector<uint8_t> &Diversified,
                 const ScanOptions &Opts = ScanOptions());

/// Survivor comparison over two prebuilt scans; lets callers amortize
/// one original-image scan across many diversified versions.
std::vector<SurvivingGadget> survivingGadgets(const ImageScan &Original,
                                              const ImageScan &Diversified);

/// Survivor comparison of every version against one original, sharing a
/// single original-image scan. Opts.Jobs shards versions across a
/// support::ThreadPool; Opts.Incremental seeds each version scan from
/// the original scan and rescans only the diffed ranges. Results are
/// index-aligned with \p Versions and independent of Jobs.
std::vector<std::vector<SurvivingGadget>>
survivingGadgetsMulti(const std::vector<uint8_t> &Original,
                      const std::vector<std::vector<uint8_t>> &Versions,
                      const ScanOptions &Opts = ScanOptions());

/// Multi-version analysis: returns, for each threshold in \p Thresholds,
/// how many gadget identities (offset, normalized content) occur in at
/// least that many of the \p Versions. Opts.Jobs shards the per-version
/// scans; per-worker occurrence maps are merged deterministically, so
/// the result is independent of Jobs.
std::vector<uint64_t>
gadgetsInAtLeast(const std::vector<std::vector<uint8_t>> &Versions,
                 const std::vector<unsigned> &Thresholds,
                 const ScanOptions &Opts = ScanOptions());

} // namespace gadget
} // namespace pgsd

#endif // PGSD_GADGET_SCANNER_H
