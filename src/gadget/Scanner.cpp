//===-- gadget/Scanner.cpp - ROP gadget scanning and Survivor --------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Two implementations live here (DESIGN.md section 15):
//
//  * The reference oracle (decodeGadgetAt and the ForceReference paths):
//    decode afresh from every byte offset with a MaxInstrs window. This
//    is the executable specification of what a gadget is.
//
//  * The decode-once scanner (ImageScan): one linear pass decodes each
//    offset exactly once into a flat fact table (length + class/NOP flag
//    bits), then a backward DP computes the gadget suffix at every
//    offset. Every stored DP value is a pure function of the MaxInstrs x
//    15-byte window after its offset, which is what makes the
//    incremental rescan's dirty-range widening sound.
//
// ScannerParityTest pins byte-identical results between the two across
// the workload battery, fuzzed programs, and random incremental edits.
//
//===----------------------------------------------------------------------===//

#include "gadget/Scanner.h"

#include "obs/Metrics.h"
#include "support/ThreadPool.h"
#include "x86/Decoder.h"
#include "x86/Nops.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

using namespace pgsd;
using namespace pgsd::gadget;
using x86::Decoded;

bool gadget::decodeGadgetAt(const uint8_t *Text, size_t Size,
                            uint32_t Offset, const ScanOptions &Opts,
                            std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut) {
  InstrsOut.clear();
  uint32_t Pos = Offset;
  for (unsigned N = 0; N != Opts.MaxInstrs; ++N) {
    if (Pos >= Size)
      return false;
    Decoded D;
    if (!x86::decodeInstr(Text + Pos, Size - Pos, D))
      return false;
    InstrsOut.push_back({Pos, D.Length});
    if (D.isFreeBranch())
      return true;
    if (Opts.IncludeSyscallGadgets && D.Class == x86::InstrClass::IntN)
      return true; // syscall-terminated gadget (attack checker mode)
    if (!D.isUsableBody())
      return false; // direct control flow, privileged, invalid
    Pos += D.Length;
  }
  return false; // no terminator within the window
}

namespace {

/// FNV-1a over a byte range.
uint64_t hashBytes(uint64_t Hash, const uint8_t *Bytes, size_t Size) {
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

/// Per-offset decode-fact flag bits (FactFlags). The class bits mirror
/// the reference oracle's check order: free branch, then IntN (a
/// terminator only when IncludeSyscallGadgets), then usable body; the
/// classes are mutually exclusive so at most one is set. The NOP bits
/// record whole-instruction Table 1 matches for both NOP sets so one
/// fact table serves either IncludeXchgNops setting.
enum : uint8_t {
  FFree = 1 << 0,       ///< Free-branch terminator.
  FIntN = 1 << 1,       ///< Software interrupt (INT n / SYSENTER).
  FBody = 1 << 2,       ///< Usable gadget body (InstrClass::Normal).
  FNopDefault = 1 << 3, ///< Whole instruction is a default-set NOP.
  FNopXchg = 1 << 4,    ///< Whole instruction is a bus-locking XCHG NOP.
};

/// Architectural x86 instruction length limit; the decoder never emits
/// a longer instruction, which bounds how far one decode fact can read.
constexpr size_t MaxInstrBytes = 15;

/// Process-lifetime scan tallies backing the incremental-vs-full gauge
/// (counters are write-only, so the fraction needs its own state).
std::atomic<uint64_t> TotalFullScans{0};
std::atomic<uint64_t> TotalIncrementalScans{0};

/// Records one ImageScan (re)build in the telemetry registry.
void noteScan(bool Incremental, size_t ImageSize, uint64_t Decoded) {
  if (!obs::enabled())
    return;
  obs::counterAdd(Incremental ? "gadget.scans_incremental"
                              : "gadget.scans_full");
  obs::counterAdd("gadget.bytes_scanned", ImageSize);
  obs::counterAdd("gadget.bytes_decoded", Decoded);
  if (Incremental)
    obs::counterAdd("gadget.dirty_bytes", Decoded);
  uint64_t Incr, Full;
  if (Incremental) {
    Incr = TotalIncrementalScans.fetch_add(1, std::memory_order_relaxed) + 1;
    Full = TotalFullScans.load(std::memory_order_relaxed);
  } else {
    Full = TotalFullScans.fetch_add(1, std::memory_order_relaxed) + 1;
    Incr = TotalIncrementalScans.load(std::memory_order_relaxed);
  }
  obs::gaugeSet("gadget.incremental_fraction",
                static_cast<double>(Incr) / static_cast<double>(Incr + Full));
}

/// Moves a table's clean-suffix entries [OldSize - SuffixBytes, OldSize)
/// to [FactHi, NewSize) and resizes to NewSize; entries below FactHi
/// other than the moved tail are left untouched for recomputation.
template <typename T>
void shiftTail(std::vector<T> &V, size_t OldSize, size_t NewSize,
               size_t FactHi) {
  if (NewSize > OldSize) {
    V.resize(NewSize);
    std::copy_backward(V.begin() +
                           static_cast<ptrdiff_t>(FactHi - (NewSize - OldSize)),
                       V.begin() + static_cast<ptrdiff_t>(OldSize),
                       V.begin() + static_cast<ptrdiff_t>(NewSize));
  } else if (NewSize < OldSize) {
    std::copy(V.begin() +
                  static_cast<ptrdiff_t>(FactHi + (OldSize - NewSize)),
              V.begin() + static_cast<ptrdiff_t>(OldSize),
              V.begin() + static_cast<ptrdiff_t>(FactHi));
    V.resize(NewSize);
  }
}

/// The (offset, normalized hash) identity used by the multi-version
/// analysis.
uint64_t identityOf(uint32_t Offset, uint64_t Hash) {
  return Hash ^ (static_cast<uint64_t>(Offset) * 0x9e3779b97f4a7c15ull);
}

/// Answers every threshold from one counting pass: bucket identities by
/// occurrence count, suffix-sum, then each query is a table lookup.
std::vector<uint64_t>
thresholdCounts(const std::unordered_map<uint64_t, unsigned> &Occurrences,
                const std::vector<unsigned> &Thresholds,
                size_t NumVersions) {
  // AtLeast[C] = number of identities occurring in >= C versions; the
  // extra slot keeps AtLeast[NumVersions + 1] = 0 for over-large
  // thresholds. No identity can occur more than once per version.
  std::vector<uint64_t> AtLeast(NumVersions + 2, 0);
  for (const auto &E : Occurrences)
    ++AtLeast[std::min<size_t>(E.second, NumVersions)];
  for (size_t C = NumVersions + 1; C-- > 0;)
    AtLeast[C] += AtLeast[C + 1];
  std::vector<uint64_t> Result(Thresholds.size(), 0);
  for (size_t T = 0; T != Thresholds.size(); ++T)
    Result[T] = Thresholds[T] > NumVersions ? 0 : AtLeast[Thresholds[T]];
  return Result;
}

/// Resolves ScanOptions::Jobs: 0 = all cores, clamped to the task count.
unsigned effectiveJobs(unsigned Jobs, size_t Tasks) {
  if (Jobs == 0)
    Jobs = support::ThreadPool::defaultConcurrency();
  return static_cast<unsigned>(std::min<size_t>(Jobs, Tasks));
}

} // namespace

//===----------------------------------------------------------------------===//
// ImageScan: decode-once fact table + backward DP
//===----------------------------------------------------------------------===//

ImageScan::ImageScan(const uint8_t *Text, size_t Size,
                     const ScanOptions &Options)
    : Opts(Options) {
  obs::Span Sp("gadget.scan");
  Bytes.assign(Text, Text + Size);
  fullScan();
}

ImageScan::ImageScan(const std::vector<uint8_t> &Text,
                     const ScanOptions &Options)
    : ImageScan(Text.data(), Text.size(), Options) {}

void ImageScan::fullScan() {
  const size_t Size = Bytes.size();
  FactLen.assign(Size, 0);
  FactFlags.assign(Size, 0);
  SuffixInstrs.assign(Size, 0);
  SuffixLen.assign(Size, 0);
  decodeFacts(0, Size);
  computeDP(0, Size);
  DecodedBytes = Size;
  LastIncremental = false;
  noteScan(/*Incremental=*/false, Size, Size);
}

void ImageScan::decodeFacts(size_t Begin, size_t End) {
  const uint8_t *Data = Bytes.data();
  const size_t Size = Bytes.size();
  for (size_t I = Begin; I < End; ++I) {
    uint8_t Len = 0;
    uint8_t Flags = 0;
    uint8_t DLen = 0;
    x86::InstrClass Class = x86::InstrClass::Invalid;
    if (x86::decodeLenClass(Data + I, Size - I, DLen, Class) && DLen != 0) {
      Len = DLen;
      switch (Class) {
      case x86::InstrClass::Ret:
      case x86::InstrClass::RetImm:
      case x86::InstrClass::RetFar:
      case x86::InstrClass::CallInd:
      case x86::InstrClass::JmpInd:
        Flags |= FFree;
        break;
      case x86::InstrClass::IntN:
        Flags |= FIntN;
        break;
      case x86::InstrClass::Normal:
        Flags |= FBody;
        break;
      default:
        break;
      }
      // Whole-instruction NOP match, inlined from the Table 1 rows
      // (matchNopAt + nopInfo(Kind).Length == Len): the table is seven
      // fixed 1-2 byte encodings with disjoint first bytes, and the
      // call overhead is a third of the per-offset budget here.
      if (Len == 1) {
        if (Data[I] == 0x90)
          Flags |= FNopDefault;
      } else if (Len == 2) {
        const uint8_t B0 = Data[I], B1 = Data[I + 1];
        if ((B0 == 0x89 && (B1 == 0xE4 || B1 == 0xED)) ||
            (B0 == 0x8D && (B1 == 0x36 || B1 == 0x3F)))
          Flags |= FNopDefault;
        else if (B0 == 0x87 && (B1 == 0xE4 || B1 == 0xED))
          Flags |= FNopXchg;
      }
    }
    FactLen[I] = Len;
    FactFlags[I] = Flags;
  }
}

void ImageScan::computeDP(size_t Begin, size_t End) {
  const size_t Size = Bytes.size();
  // SuffixInstrs is uint16_t; windows beyond 65535 instructions would
  // take hours under the reference oracle anyway.
  const unsigned EffMax = std::min(Opts.MaxInstrs, 65535u);
  for (size_t I = End; I-- > Begin;) {
    uint16_t N = 0;
    uint32_t B = 0;
    const uint8_t Len = FactLen[I];
    if (Len != 0 && EffMax != 0) {
      const uint8_t Flags = FactFlags[I];
      // Same precedence as the reference oracle: terminators first,
      // then the usable-body continuation.
      if ((Flags & FFree) ||
          (Opts.IncludeSyscallGadgets && (Flags & FIntN))) {
        N = 1;
        B = Len;
      } else if (Flags & FBody) {
        const size_t Next = I + Len;
        if (Next < Size) {
          const uint16_t NextN = SuffixInstrs[Next];
          // Extending a suffix of EffMax instructions would overflow
          // the window; extending one of 0 means no terminator (or a
          // disqualifier) lies within reach.
          if (NextN != 0 && NextN < EffMax) {
            N = static_cast<uint16_t>(NextN + 1);
            B = SuffixLen[Next] + Len;
          }
        }
      }
    }
    SuffixInstrs[I] = N;
    SuffixLen[I] = B;
  }
}

void ImageScan::rescan(const uint8_t *NewText, size_t NewSize) {
  obs::Span Sp("gadget.scan");
  const size_t OldSize = Bytes.size();
  const size_t MinSize = std::min(OldSize, NewSize);
  size_t Prefix = 0;
  while (Prefix < MinSize && Bytes[Prefix] == NewText[Prefix])
    ++Prefix;
  if (Prefix == OldSize && Prefix == NewSize) {
    DecodedBytes = 0;
    LastIncremental = true;
    noteScan(/*Incremental=*/true, NewSize, 0);
    return;
  }
  // Non-overlapping common suffix (capped so prefix + suffix never
  // double-count a byte when the edit inserts repeated content).
  size_t Suffix = 0;
  while (Suffix < MinSize - Prefix &&
         Bytes[OldSize - 1 - Suffix] == NewText[NewSize - 1 - Suffix])
    ++Suffix;

  // A decode fact at offset I reads at most MaxInstrBytes bytes, so
  // facts up to MaxInstrBytes - 1 before the first changed byte may
  // change. A DP value at I is a pure function of the facts reachable
  // within its MaxInstrs-step chain, i.e. of the bytes in
  // [I, I + (MaxInstrs + 1) * MaxInstrBytes); widening by that window
  // makes the rescan exact (DESIGN.md section 15).
  const size_t FactLo =
      Prefix > (MaxInstrBytes - 1) ? Prefix - (MaxInstrBytes - 1) : 0;
  const size_t FactHi = NewSize - Suffix;
  const size_t Window =
      (static_cast<size_t>(std::min(Opts.MaxInstrs, 65535u)) + 1) *
      MaxInstrBytes;
  const size_t DPLo = Prefix > Window ? Prefix - Window : 0;

  // Clean-suffix table entries keep their values at shifted positions:
  // every byte from FactHi to the end is unchanged relative to the old
  // image end, and facts/DP only ever read forward.
  shiftTail(FactLen, OldSize, NewSize, FactHi);
  shiftTail(FactFlags, OldSize, NewSize, FactHi);
  shiftTail(SuffixInstrs, OldSize, NewSize, FactHi);
  shiftTail(SuffixLen, OldSize, NewSize, FactHi);
  Bytes.assign(NewText, NewText + NewSize);

  decodeFacts(FactLo, FactHi);
  computeDP(DPLo, FactHi);
  DecodedBytes = FactHi - FactLo;
  LastIncremental = true;
  noteScan(/*Incremental=*/true, NewSize, DecodedBytes);
}

bool ImageScan::gadgetAt(uint32_t Offset, Gadget &Out) const {
  if (!hasGadgetAt(Offset))
    return false;
  Out.Offset = Offset;
  Out.Length = SuffixLen[Offset];
  Out.NumInstrs = static_cast<uint8_t>(SuffixInstrs[Offset]);
  return true;
}

size_t ImageScan::gadgetCount() const {
  size_t Count = 0;
  for (uint16_t N : SuffixInstrs)
    Count += N != 0;
  return Count;
}

std::vector<Gadget> ImageScan::gadgets() const {
  std::vector<Gadget> Out;
  Out.reserve(gadgetCount());
  for (size_t I = 0; I != SuffixInstrs.size(); ++I) {
    if (SuffixInstrs[I] == 0)
      continue;
    Gadget G;
    G.Offset = static_cast<uint32_t>(I);
    G.Length = SuffixLen[I];
    G.NumInstrs = static_cast<uint8_t>(SuffixInstrs[I]);
    Out.push_back(G);
  }
  return Out;
}

bool ImageScan::instructionsAt(
    uint32_t Offset,
    std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut) const {
  InstrsOut.clear();
  if (!hasGadgetAt(Offset))
    return false;
  uint32_t Pos = Offset;
  for (uint16_t K = SuffixInstrs[Offset]; K != 0; --K) {
    InstrsOut.push_back({Pos, FactLen[Pos]});
    Pos += FactLen[Pos];
  }
  return true;
}

bool ImageScan::normalizedHashAt(uint32_t Offset, uint64_t &HashOut,
                                 unsigned &NonNopInstrsOut) const {
  if (!hasGadgetAt(Offset))
    return false;
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis
  unsigned NonNop = 0;
  uint32_t Pos = Offset;
  for (uint16_t K = SuffixInstrs[Offset]; K != 0; --K) {
    const uint8_t Len = FactLen[Pos];
    const uint8_t Flags = FactFlags[Pos];
    const bool IsNop = (Flags & FNopDefault) != 0 ||
                       (Opts.IncludeXchgNops && (Flags & FNopXchg) != 0);
    if (!IsNop) {
      Hash = hashBytes(Hash, Bytes.data() + Pos, Len);
      ++NonNop;
    }
    Pos += Len;
  }
  HashOut = Hash;
  NonNopInstrsOut = NonNop;
  return true;
}

//===----------------------------------------------------------------------===//
// Free functions (fast by default, reference oracle on request)
//===----------------------------------------------------------------------===//

std::vector<Gadget> gadget::scanGadgets(const uint8_t *Text, size_t Size,
                                        const ScanOptions &Opts) {
  if (Opts.ForceReference) {
    obs::Span Sp("gadget.scan");
    obs::counterAdd("gadget.scans_reference");
    std::vector<Gadget> Gadgets;
    std::vector<std::pair<uint32_t, uint8_t>> Instrs;
    Instrs.reserve(Opts.MaxInstrs);
    for (size_t Offset = 0; Offset < Size; ++Offset) {
      if (!decodeGadgetAt(Text, Size, static_cast<uint32_t>(Offset), Opts,
                          Instrs))
        continue;
      Gadget G;
      G.Offset = static_cast<uint32_t>(Offset);
      const auto &Last = Instrs.back();
      G.Length = Last.first + Last.second - G.Offset;
      G.NumInstrs = static_cast<uint8_t>(Instrs.size());
      Gadgets.push_back(G);
    }
    return Gadgets;
  }
  ImageScan Scan(Text, Size, Opts);
  return Scan.gadgets();
}

bool gadget::normalizedGadgetHash(
    const uint8_t *Text, size_t Size, uint32_t Offset,
    const ScanOptions &Opts, uint64_t &HashOut, unsigned &NonNopInstrsOut,
    std::vector<std::pair<uint32_t, uint8_t>> &Scratch) {
  if (!decodeGadgetAt(Text, Size, Offset, Opts, Scratch))
    return false;
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis
  unsigned NonNop = 0;
  for (const auto &[At, Len] : Scratch) {
    x86::NopKind Kind;
    // Remove all potentially inserted NOPs (paper Section 5.2). The
    // match must cover the whole instruction: e.g. 89 E4 is a NOP, but
    // 89 E4 as a prefix of a longer instruction is not.
    if (x86::matchNopAt(Text + At, Len, Opts.IncludeXchgNops, Kind) &&
        x86::nopInfo(Kind).Length == Len)
      continue;
    Hash = hashBytes(Hash, Text + At, Len);
    ++NonNop;
  }
  HashOut = Hash;
  NonNopInstrsOut = NonNop;
  return true;
}

bool gadget::normalizedGadgetHash(const uint8_t *Text, size_t Size,
                                  uint32_t Offset, const ScanOptions &Opts,
                                  uint64_t &HashOut,
                                  unsigned &NonNopInstrsOut) {
  std::vector<std::pair<uint32_t, uint8_t>> Scratch;
  Scratch.reserve(Opts.MaxInstrs);
  return normalizedGadgetHash(Text, Size, Offset, Opts, HashOut,
                              NonNopInstrsOut, Scratch);
}

std::vector<SurvivingGadget>
gadget::survivingGadgets(const ImageScan &Original,
                         const ImageScan &Diversified) {
  std::vector<SurvivingGadget> Survivors;
  // Candidate matches are pairs at identical offsets; walk the original
  // scan's gadgets and probe the diversified scan at the same offsets.
  const size_t Size = Original.size();
  for (size_t Offset = 0; Offset != Size; ++Offset) {
    uint64_t HashA, HashB;
    unsigned NonNopA, NonNopB;
    if (!Original.normalizedHashAt(static_cast<uint32_t>(Offset), HashA,
                                   NonNopA))
      continue;
    if (Offset >= Diversified.size())
      continue;
    if (!Diversified.normalizedHashAt(static_cast<uint32_t>(Offset), HashB,
                                      NonNopB))
      continue;
    if (HashA == HashB)
      Survivors.push_back({static_cast<uint32_t>(Offset), HashA});
  }
  return Survivors;
}

namespace {

/// (offset, normalized hash) of every gadget in \p OrigScan, ascending.
/// Computed once and shared across all diversified versions.
std::vector<SurvivingGadget> collectOrigHashes(const ImageScan &OrigScan) {
  std::vector<SurvivingGadget> Hashes;
  const size_t Size = OrigScan.size();
  for (size_t Offset = 0; Offset != Size; ++Offset) {
    uint64_t Hash;
    unsigned NonNop;
    if (OrigScan.normalizedHashAt(static_cast<uint32_t>(Offset), Hash,
                                  NonNop))
      Hashes.push_back({static_cast<uint32_t>(Offset), Hash});
  }
  return Hashes;
}

/// Survivor pass probing \p Diversified lazily: candidate matches sit at
/// identical offsets, so only the original's gadget offsets (a small
/// minority of the image) need decoding on the diversified side --
/// cheaper than building a full variant scan, with byte-identical
/// results (the per-offset probe IS the reference oracle's query).
std::vector<SurvivingGadget>
probeSurvivors(const std::vector<SurvivingGadget> &OrigHashes,
               const std::vector<uint8_t> &Diversified,
               const ScanOptions &Opts) {
  std::vector<SurvivingGadget> Survivors;
  std::vector<std::pair<uint32_t, uint8_t>> Scratch;
  Scratch.reserve(Opts.MaxInstrs);
  for (const SurvivingGadget &G : OrigHashes) {
    if (G.Offset >= Diversified.size())
      break; // ascending offsets: nothing further can match
    uint64_t HashB;
    unsigned NonNopB;
    if (gadget::normalizedGadgetHash(Diversified.data(), Diversified.size(),
                                     G.Offset, Opts, HashB, NonNopB,
                                     Scratch) &&
        HashB == G.NormHash)
      Survivors.push_back(G);
  }
  return Survivors;
}

} // namespace

std::vector<SurvivingGadget>
gadget::survivingGadgets(const std::vector<uint8_t> &Original,
                         const std::vector<uint8_t> &Diversified,
                         const ScanOptions &Opts) {
  obs::Span Sp("gadget.survivor");
  if (Opts.ForceReference) {
    std::vector<SurvivingGadget> Survivors;
    std::vector<Gadget> OrigGadgets =
        scanGadgets(Original.data(), Original.size(), Opts);
    std::vector<std::pair<uint32_t, uint8_t>> Scratch;
    Scratch.reserve(Opts.MaxInstrs);
    for (const Gadget &G : OrigGadgets) {
      uint64_t HashA, HashB;
      unsigned NonNopA, NonNopB;
      if (!normalizedGadgetHash(Original.data(), Original.size(), G.Offset,
                                Opts, HashA, NonNopA, Scratch))
        continue;
      if (G.Offset >= Diversified.size())
        continue;
      if (!normalizedGadgetHash(Diversified.data(), Diversified.size(),
                                G.Offset, Opts, HashB, NonNopB, Scratch))
        continue;
      if (HashA == HashB)
        Survivors.push_back({G.Offset, HashA});
    }
    return Survivors;
  }
  ImageScan OrigScan(Original.data(), Original.size(), Opts);
  if (Opts.Incremental) {
    ImageScan DivScan = OrigScan;
    DivScan.rescan(Diversified);
    return survivingGadgets(OrigScan, DivScan);
  }
  return probeSurvivors(collectOrigHashes(OrigScan), Diversified, Opts);
}

std::vector<std::vector<SurvivingGadget>>
gadget::survivingGadgetsMulti(const std::vector<uint8_t> &Original,
                              const std::vector<std::vector<uint8_t>> &Versions,
                              const ScanOptions &Opts) {
  obs::Span Sp("gadget.survivor");
  std::vector<std::vector<SurvivingGadget>> Out(Versions.size());
  if (Opts.ForceReference) {
    for (size_t I = 0; I != Versions.size(); ++I)
      Out[I] = survivingGadgets(Original, Versions[I], Opts);
    return Out;
  }
  // One shared original-image scan and one shared (offset, hash) list of
  // its gadgets; both are immutable once built, so workers read them
  // concurrently without synchronization.
  const ImageScan OrigScan(Original.data(), Original.size(), Opts);
  const std::vector<SurvivingGadget> OrigHashes = collectOrigHashes(OrigScan);
  auto ScanOne = [&OrigScan, &OrigHashes, &Versions, &Opts, &Out](size_t I) {
    if (Opts.Incremental) {
      // Seed from the original scan: the variant diff is typically a
      // small fraction of the image, so the rescan re-decodes only the
      // widened dirty ranges.
      ImageScan DivScan = OrigScan;
      DivScan.rescan(Versions[I]);
      Out[I] = survivingGadgets(OrigScan, DivScan);
    } else {
      Out[I] = probeSurvivors(OrigHashes, Versions[I], Opts);
    }
  };
  const unsigned Jobs = effectiveJobs(Opts.Jobs, Versions.size());
  if (Jobs <= 1) {
    for (size_t I = 0; I != Versions.size(); ++I)
      ScanOne(I);
    return Out;
  }
  // Workers accumulate telemetry into per-version sinks (obs cost
  // contract: no registry lock inside the pool), merged in version
  // order after the barrier.
  std::vector<obs::LocalMetrics> Sinks(obs::enabled() ? Versions.size() : 0);
  support::ThreadPool Pool(Jobs);
  for (size_t I = 0; I != Versions.size(); ++I)
    Pool.enqueue([&ScanOne, &Sinks, I] {
      obs::ScopedSink Guard(Sinks.empty() ? nullptr : &Sinks[I]);
      ScanOne(I);
    });
  Pool.wait();
  for (const obs::LocalMetrics &Sink : Sinks)
    obs::Registry::global().merge(Sink);
  return Out;
}

std::vector<uint64_t>
gadget::gadgetsInAtLeast(const std::vector<std::vector<uint8_t>> &Versions,
                         const std::vector<unsigned> &Thresholds,
                         const ScanOptions &Opts) {
  obs::Span Sp("gadget.multiversion");
  // Identity = (offset, normalized content hash). Count occurrences
  // across versions; each version contributes at most one occurrence
  // per identity (one gadget per start offset).
  std::unordered_map<uint64_t, unsigned> Occurrences;
  if (Opts.ForceReference) {
    std::vector<std::pair<uint32_t, uint8_t>> Scratch;
    Scratch.reserve(Opts.MaxInstrs);
    for (const std::vector<uint8_t> &Text : Versions) {
      std::vector<Gadget> Gadgets =
          scanGadgets(Text.data(), Text.size(), Opts);
      for (const Gadget &G : Gadgets) {
        uint64_t Hash;
        unsigned NonNop;
        if (!normalizedGadgetHash(Text.data(), Text.size(), G.Offset, Opts,
                                  Hash, NonNop, Scratch))
          continue;
        ++Occurrences[identityOf(G.Offset, Hash)];
      }
    }
    return thresholdCounts(Occurrences, Thresholds, Versions.size());
  }

  auto Accumulate = [&Opts](const std::vector<uint8_t> &Text,
                            std::unordered_map<uint64_t, unsigned> &Map) {
    ImageScan Scan(Text.data(), Text.size(), Opts);
    const size_t Size = Scan.size();
    for (size_t Offset = 0; Offset != Size; ++Offset) {
      uint64_t Hash;
      unsigned NonNop;
      if (!Scan.normalizedHashAt(static_cast<uint32_t>(Offset), Hash,
                                 NonNop))
        continue;
      ++Map[identityOf(static_cast<uint32_t>(Offset), Hash)];
    }
  };

  const unsigned Jobs = effectiveJobs(Opts.Jobs, Versions.size());
  if (Jobs <= 1) {
    for (const std::vector<uint8_t> &Text : Versions)
      Accumulate(Text, Occurrences);
    return thresholdCounts(Occurrences, Thresholds, Versions.size());
  }
  // Contiguous version shards, one occurrence map per worker. Counts
  // are additive and an identity's total is independent of which shard
  // saw it, so merging in shard order makes the result bit-identical to
  // the serial accumulation regardless of scheduling.
  const size_t N = Versions.size();
  std::vector<std::unordered_map<uint64_t, unsigned>> Maps(Jobs);
  std::vector<obs::LocalMetrics> Sinks(obs::enabled() ? Jobs : 0);
  support::ThreadPool Pool(Jobs);
  for (unsigned W = 0; W != Jobs; ++W) {
    const size_t Begin = N * W / Jobs;
    const size_t End = N * (W + 1) / Jobs;
    Pool.enqueue([&Accumulate, &Versions, &Maps, &Sinks, W, Begin, End] {
      obs::ScopedSink Guard(Sinks.empty() ? nullptr : &Sinks[W]);
      for (size_t I = Begin; I != End; ++I)
        Accumulate(Versions[I], Maps[W]);
    });
  }
  Pool.wait();
  for (const obs::LocalMetrics &Sink : Sinks)
    obs::Registry::global().merge(Sink);
  Occurrences = std::move(Maps[0]);
  for (unsigned W = 1; W != Jobs; ++W)
    for (const auto &E : Maps[W])
      Occurrences[E.first] += E.second;
  return thresholdCounts(Occurrences, Thresholds, Versions.size());
}
