//===-- gadget/Scanner.cpp - ROP gadget scanning and Survivor --------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "gadget/Scanner.h"

#include "x86/Decoder.h"
#include "x86/Nops.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace pgsd;
using namespace pgsd::gadget;
using x86::Decoded;

bool gadget::decodeGadgetAt(const uint8_t *Text, size_t Size,
                            uint32_t Offset, const ScanOptions &Opts,
                            std::vector<std::pair<uint32_t, uint8_t>> &InstrsOut) {
  InstrsOut.clear();
  uint32_t Pos = Offset;
  for (unsigned N = 0; N != Opts.MaxInstrs; ++N) {
    if (Pos >= Size)
      return false;
    Decoded D;
    if (!x86::decodeInstr(Text + Pos, Size - Pos, D))
      return false;
    InstrsOut.push_back({Pos, D.Length});
    if (D.isFreeBranch())
      return true;
    if (Opts.IncludeSyscallGadgets && D.Class == x86::InstrClass::IntN)
      return true; // syscall-terminated gadget (attack checker mode)
    if (!D.isUsableBody())
      return false; // direct control flow, privileged, invalid
    Pos += D.Length;
  }
  return false; // no terminator within the window
}

namespace {

/// FNV-1a over a byte range.
uint64_t hashBytes(uint64_t Hash, const uint8_t *Bytes, size_t Size) {
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

std::vector<Gadget> gadget::scanGadgets(const uint8_t *Text, size_t Size,
                                        const ScanOptions &Opts) {
  std::vector<Gadget> Gadgets;
  std::vector<std::pair<uint32_t, uint8_t>> Instrs;
  for (size_t Offset = 0; Offset < Size; ++Offset) {
    if (!decodeGadgetAt(Text, Size, static_cast<uint32_t>(Offset), Opts,
                        Instrs))
      continue;
    Gadget G;
    G.Offset = static_cast<uint32_t>(Offset);
    const auto &Last = Instrs.back();
    G.Length = Last.first + Last.second - G.Offset;
    G.NumInstrs = static_cast<uint8_t>(Instrs.size());
    Gadgets.push_back(G);
  }
  return Gadgets;
}

bool gadget::normalizedGadgetHash(const uint8_t *Text, size_t Size,
                                  uint32_t Offset, const ScanOptions &Opts,
                                  uint64_t &HashOut,
                                  unsigned &NonNopInstrsOut) {
  std::vector<std::pair<uint32_t, uint8_t>> Instrs;
  if (!decodeGadgetAt(Text, Size, Offset, Opts, Instrs))
    return false;
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis
  unsigned NonNop = 0;
  for (const auto &[At, Len] : Instrs) {
    x86::NopKind Kind;
    // Remove all potentially inserted NOPs (paper Section 5.2). The
    // match must cover the whole instruction: e.g. 89 E4 is a NOP, but
    // 89 E4 as a prefix of a longer instruction is not.
    if (x86::matchNopAt(Text + At, Len, Opts.IncludeXchgNops, Kind) &&
        x86::nopInfo(Kind).Length == Len)
      continue;
    Hash = hashBytes(Hash, Text + At, Len);
    ++NonNop;
  }
  HashOut = Hash;
  NonNopInstrsOut = NonNop;
  return true;
}

std::vector<SurvivingGadget>
gadget::survivingGadgets(const std::vector<uint8_t> &Original,
                         const std::vector<uint8_t> &Diversified,
                         const ScanOptions &Opts) {
  std::vector<SurvivingGadget> Survivors;
  // Candidate matches are pairs at identical offsets; scan the original
  // and probe the diversified image at the same offsets.
  std::vector<Gadget> OrigGadgets =
      scanGadgets(Original.data(), Original.size(), Opts);
  for (const Gadget &G : OrigGadgets) {
    uint64_t HashA, HashB;
    unsigned NonNopA, NonNopB;
    if (!normalizedGadgetHash(Original.data(), Original.size(), G.Offset,
                              Opts, HashA, NonNopA))
      continue;
    if (G.Offset >= Diversified.size())
      continue;
    if (!normalizedGadgetHash(Diversified.data(), Diversified.size(),
                              G.Offset, Opts, HashB, NonNopB))
      continue;
    if (HashA == HashB)
      Survivors.push_back({G.Offset, HashA});
  }
  return Survivors;
}

std::vector<uint64_t>
gadget::gadgetsInAtLeast(const std::vector<std::vector<uint8_t>> &Versions,
                         const std::vector<unsigned> &Thresholds,
                         const ScanOptions &Opts) {
  // Identity = (offset, normalized content hash). Count occurrences
  // across versions; each version contributes one occurrence per
  // identity.
  std::unordered_map<uint64_t, unsigned> Occurrences;
  for (const std::vector<uint8_t> &Text : Versions) {
    std::vector<Gadget> Gadgets =
        scanGadgets(Text.data(), Text.size(), Opts);
    for (const Gadget &G : Gadgets) {
      uint64_t Hash;
      unsigned NonNop;
      if (!normalizedGadgetHash(Text.data(), Text.size(), G.Offset, Opts,
                                Hash, NonNop))
        continue;
      uint64_t Identity =
          Hash ^ (static_cast<uint64_t>(G.Offset) * 0x9e3779b97f4a7c15ull);
      ++Occurrences[Identity];
    }
  }
  std::vector<uint64_t> Result(Thresholds.size(), 0);
  for (const auto &[Identity, Count] : Occurrences) {
    (void)Identity;
    for (size_t T = 0; T != Thresholds.size(); ++T)
      if (Count >= Thresholds[T])
        ++Result[T];
  }
  return Result;
}
