//===-- ir/IR.h - Mid-level intermediate representation ----------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-level IR of the compiler pipeline (the "IR" box in the paper's
/// Figure 3). It is a CFG of basic blocks over three-address instructions
/// with an unbounded set of 32-bit virtual values -- deliberately close in
/// spirit to LLVM IR after lowering, but register-based rather than SSA to
/// keep the frontend simple.
///
/// All scalar values are signed 32-bit integers (the substrate targets
/// IA-32). Memory is a flat byte-addressed space shared by globals, frame
/// objects (local arrays), and the stack; Load/Store take an address value
/// plus a constant byte offset.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_IR_IR_H
#define PGSD_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace pgsd {
namespace ir {

/// Identifies a virtual value within a function (dense, 0-based).
using ValueId = uint32_t;
/// Identifies a basic block within a function (dense, 0-based).
using BlockId = uint32_t;
/// Identifies a function within a module (dense, 0-based).
using FuncId = uint32_t;

/// Sentinel for "no value" (e.g. the result of a void call).
inline constexpr ValueId NoValue = ~ValueId(0);
/// Sentinel for "no block".
inline constexpr BlockId NoBlock = ~BlockId(0);

/// IR opcodes.
enum class Opcode : uint8_t {
  // Dst = Imm.
  Const,
  // Dst = A.
  Copy,
  // Dst = A op B.
  Add,
  Sub,
  Mul,
  Div, // signed; traps on divide-by-zero like the hardware
  Rem, // signed remainder
  And,
  Or,
  Xor,
  Shl,  // shift left by (B & 31)
  AShr, // arithmetic shift right by (B & 31)
  // Dst = op A.
  Neg,
  Not,
  // Dst = (A cmp B) ? 1 : 0.
  CmpEq,
  CmpNe,
  CmpLt, // signed
  CmpLe, // signed
  CmpGt, // signed
  CmpGe, // signed
  // Dst = load32(A + Imm).
  Load,
  // store32(A + Imm) = B.
  Store,
  // Dst = address of module global #Imm.
  GlobalAddr,
  // Dst = address of frame object #Imm of this function.
  FrameAddr,
  // Dst = call Callee(Args...); Dst may be NoValue for void calls.
  Call,
  // Terminators.
  Br,     // unconditional branch to Succ0
  CondBr, // A != 0 ? Succ0 : Succ1
  Ret,    // return A (or nothing when A == NoValue)
};

/// Returns a stable mnemonic for \p Op ("add", "condbr", ...).
const char *opcodeName(Opcode Op);

/// Returns true for Br/CondBr/Ret.
bool isTerminator(Opcode Op);

/// Built-in runtime functions callable from IR.
///
/// These model the C-library entry points the paper's benchmarks use; at
/// machine level they become calls into the (undiversified) libc stub the
/// mini linker appends -- the source of the residual surviving gadgets
/// observed in the paper's Tables 2 and 3.
enum class Intrinsic : uint8_t {
  PrintI32,  ///< void print_int(i32): prints and folds into the checksum.
  PrintChar, ///< void print_char(i32): prints one character.
  ReadI32,   ///< i32 read_int(): next input word, 0 when exhausted.
  InputLen,  ///< i32 input_len(): number of input words remaining.
  Sink,      ///< void sink(i32): folds a value into the run checksum only.
};

/// Number of distinct intrinsics.
inline constexpr unsigned NumIntrinsics = 5;

/// Returns the source-level name of \p I ("print_int", ...).
const char *intrinsicName(Intrinsic I);

/// Call target: either a module function or a runtime intrinsic.
struct Callee {
  bool IsIntrinsic = false;
  FuncId Func = 0;          ///< Valid when !IsIntrinsic.
  Intrinsic Intr = Intrinsic::PrintI32; ///< Valid when IsIntrinsic.

  static Callee function(FuncId F) {
    Callee C;
    C.IsIntrinsic = false;
    C.Func = F;
    return C;
  }
  static Callee intrinsic(Intrinsic I) {
    Callee C;
    C.IsIntrinsic = true;
    C.Intr = I;
    return C;
  }
};

/// One three-address instruction.
///
/// Field use by opcode: Dst/A/B as documented on Opcode; Imm holds the
/// constant for Const, the byte offset for Load/Store, and the object
/// index for GlobalAddr/FrameAddr; Succ0/Succ1 are branch targets; Target
/// and Args describe calls.
struct Instr {
  Opcode Op = Opcode::Const;
  ValueId Dst = NoValue;
  ValueId A = NoValue;
  ValueId B = NoValue;
  int64_t Imm = 0;
  BlockId Succ0 = NoBlock;
  BlockId Succ1 = NoBlock;
  Callee Target;
  std::vector<ValueId> Args;
};

/// A basic block: straight-line instructions ending in one terminator.
struct BasicBlock {
  std::vector<Instr> Instrs;
  std::string Name; ///< Optional label for dumps.

  /// Returns the terminator; the block must be non-empty and well formed.
  const Instr &terminator() const { return Instrs.back(); }
};

/// A stack-allocated object (local array / scalar slot taken by address).
struct FrameObject {
  uint32_t SizeBytes = 4;
};

/// A function: parameters arrive as values 0 .. NumParams-1.
struct Function {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumValues = 0; ///< Total virtual values (params included).
  std::vector<BasicBlock> Blocks; ///< Block 0 is the entry.
  std::vector<FrameObject> FrameObjects;

  /// Allocates a fresh virtual value.
  ValueId newValue() { return NumValues++; }
};

/// A module global with optional initial words (zero-filled otherwise).
struct Global {
  std::string Name;
  uint32_t SizeBytes = 4;
  std::vector<int32_t> Init; ///< Initial 32-bit words, may be shorter.
};

/// A whole program.
struct Module {
  std::string Name;
  std::vector<Function> Functions;
  std::vector<Global> Globals;

  /// Returns the index of function \p Name, or -1 if absent.
  int findFunction(const std::string &Name) const;
  /// Returns the index of the "main" entry function, or -1 if absent.
  int entryFunction() const { return findFunction("main"); }
};

/// Computes the successor blocks of \p BB (0, 1, or 2 entries).
std::vector<BlockId> successors(const BasicBlock &BB);

/// Computes predecessor lists for every block of \p F.
std::vector<std::vector<BlockId>> predecessors(const Function &F);

/// Structural validity check; returns an empty string when OK, otherwise
/// a description of the first problem found. Checked invariants: every
/// block ends in exactly one terminator (and contains no interior ones),
/// branch targets and value/global/frame indices are in range, and call
/// arity matches the callee.
std::string verify(const Module &M);

/// Renders \p M as text (for tests and debugging).
std::string print(const Module &M);

} // namespace ir
} // namespace pgsd

#endif // PGSD_IR_IR_H
