//===-- ir/IR.cpp - Mid-level intermediate representation -----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace pgsd;
using namespace pgsd::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Copy:
    return "copy";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::AShr:
    return "ashr";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::GlobalAddr:
    return "globaladdr";
  case Opcode::FrameAddr:
    return "frameaddr";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "<bad>";
}

bool ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

const char *ir::intrinsicName(Intrinsic I) {
  switch (I) {
  case Intrinsic::PrintI32:
    return "print_int";
  case Intrinsic::PrintChar:
    return "print_char";
  case Intrinsic::ReadI32:
    return "read_int";
  case Intrinsic::InputLen:
    return "input_len";
  case Intrinsic::Sink:
    return "sink";
  }
  return "<bad>";
}

int Module::findFunction(const std::string &FnName) const {
  for (size_t I = 0, E = Functions.size(); I != E; ++I)
    if (Functions[I].Name == FnName)
      return static_cast<int>(I);
  return -1;
}

std::vector<BlockId> ir::successors(const BasicBlock &BB) {
  assert(!BB.Instrs.empty() && "block has no terminator");
  const Instr &T = BB.terminator();
  switch (T.Op) {
  case Opcode::Br:
    return {T.Succ0};
  case Opcode::CondBr:
    return {T.Succ0, T.Succ1};
  case Opcode::Ret:
    return {};
  default:
    assert(false && "block does not end in a terminator");
    return {};
  }
}

std::vector<std::vector<BlockId>> ir::predecessors(const Function &F) {
  std::vector<std::vector<BlockId>> Preds(F.Blocks.size());
  for (BlockId B = 0, E = static_cast<BlockId>(F.Blocks.size()); B != E; ++B)
    for (BlockId S : successors(F.Blocks[B]))
      Preds[S].push_back(B);
  return Preds;
}

namespace {

/// Appends printf-formatted text to a string.
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// Per-instruction structural checks shared by verify().
std::string checkInstr(const Module &M, const Function &F, BlockId B,
                       size_t Index, const Instr &I) {
  auto Err = [&](const char *Msg) {
    std::string S;
    appendf(S, "%s: block %u instr %zu (%s): %s", F.Name.c_str(), B, Index,
            opcodeName(I.Op), Msg);
    return S;
  };
  auto CheckVal = [&](ValueId V) { return V < F.NumValues; };

  switch (I.Op) {
  case Opcode::Const:
    if (!CheckVal(I.Dst))
      return Err("dst out of range");
    break;
  case Opcode::Copy:
  case Opcode::Neg:
  case Opcode::Not:
    if (!CheckVal(I.Dst) || !CheckVal(I.A))
      return Err("operand out of range");
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::AShr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    if (!CheckVal(I.Dst) || !CheckVal(I.A) || !CheckVal(I.B))
      return Err("operand out of range");
    break;
  case Opcode::Load:
    if (!CheckVal(I.Dst) || !CheckVal(I.A))
      return Err("operand out of range");
    break;
  case Opcode::Store:
    if (!CheckVal(I.A) || !CheckVal(I.B))
      return Err("operand out of range");
    break;
  case Opcode::GlobalAddr:
    if (!CheckVal(I.Dst))
      return Err("dst out of range");
    if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= M.Globals.size())
      return Err("global index out of range");
    break;
  case Opcode::FrameAddr:
    if (!CheckVal(I.Dst))
      return Err("dst out of range");
    if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= F.FrameObjects.size())
      return Err("frame object index out of range");
    break;
  case Opcode::Call: {
    if (I.Dst != NoValue && !CheckVal(I.Dst))
      return Err("dst out of range");
    for (ValueId Arg : I.Args)
      if (!CheckVal(Arg))
        return Err("argument out of range");
    if (!I.Target.IsIntrinsic) {
      if (I.Target.Func >= M.Functions.size())
        return Err("callee out of range");
      if (M.Functions[I.Target.Func].NumParams != I.Args.size())
        return Err("call arity mismatch");
    }
    break;
  }
  case Opcode::Br:
    if (I.Succ0 >= F.Blocks.size())
      return Err("branch target out of range");
    break;
  case Opcode::CondBr:
    if (!CheckVal(I.A))
      return Err("condition out of range");
    if (I.Succ0 >= F.Blocks.size() || I.Succ1 >= F.Blocks.size())
      return Err("branch target out of range");
    break;
  case Opcode::Ret:
    if (I.A != NoValue && !CheckVal(I.A))
      return Err("return value out of range");
    break;
  }
  return std::string();
}

} // namespace

std::string ir::verify(const Module &M) {
  for (const Function &F : M.Functions) {
    if (F.Blocks.empty())
      return F.Name + ": function has no blocks";
    if (F.NumParams > F.NumValues)
      return F.Name + ": more params than values";
    for (BlockId B = 0, E = static_cast<BlockId>(F.Blocks.size()); B != E;
         ++B) {
      const BasicBlock &BB = F.Blocks[B];
      if (BB.Instrs.empty())
        return F.Name + ": empty basic block";
      for (size_t I = 0, N = BB.Instrs.size(); I != N; ++I) {
        bool IsLast = I + 1 == N;
        if (isTerminator(BB.Instrs[I].Op) != IsLast) {
          std::string S;
          appendf(S, "%s: block %u: %s", F.Name.c_str(), B,
                  IsLast ? "missing terminator" : "interior terminator");
          return S;
        }
        std::string Problem = checkInstr(M, F, B, I, BB.Instrs[I]);
        if (!Problem.empty())
          return Problem;
      }
    }
  }
  return std::string();
}

std::string ir::print(const Module &M) {
  std::string Out;
  for (size_t G = 0, E = M.Globals.size(); G != E; ++G)
    appendf(Out, "global @%s (#%zu), %u bytes\n", M.Globals[G].Name.c_str(),
            G, M.Globals[G].SizeBytes);
  for (size_t FI = 0, FE = M.Functions.size(); FI != FE; ++FI) {
    const Function &F = M.Functions[FI];
    appendf(Out, "func @%s (#%zu), %u params, %u values\n", F.Name.c_str(),
            FI, F.NumParams, F.NumValues);
    for (BlockId B = 0, BE = static_cast<BlockId>(F.Blocks.size()); B != BE;
         ++B) {
      const BasicBlock &BB = F.Blocks[B];
      appendf(Out, "bb%u:%s%s\n", B, BB.Name.empty() ? "" : "  ; ",
              BB.Name.c_str());
      for (const Instr &I : BB.Instrs) {
        Out += "  ";
        switch (I.Op) {
        case Opcode::Const:
          appendf(Out, "v%u = const %lld", I.Dst,
                  static_cast<long long>(I.Imm));
          break;
        case Opcode::Copy:
        case Opcode::Neg:
        case Opcode::Not:
          appendf(Out, "v%u = %s v%u", I.Dst, opcodeName(I.Op), I.A);
          break;
        case Opcode::Load:
          appendf(Out, "v%u = load [v%u + %lld]", I.Dst, I.A,
                  static_cast<long long>(I.Imm));
          break;
        case Opcode::Store:
          appendf(Out, "store [v%u + %lld] = v%u", I.A,
                  static_cast<long long>(I.Imm), I.B);
          break;
        case Opcode::GlobalAddr:
          appendf(Out, "v%u = globaladdr #%lld", I.Dst,
                  static_cast<long long>(I.Imm));
          break;
        case Opcode::FrameAddr:
          appendf(Out, "v%u = frameaddr #%lld", I.Dst,
                  static_cast<long long>(I.Imm));
          break;
        case Opcode::Call: {
          if (I.Dst != NoValue)
            appendf(Out, "v%u = ", I.Dst);
          if (I.Target.IsIntrinsic)
            appendf(Out, "call %s(", intrinsicName(I.Target.Intr));
          else
            appendf(Out, "call @%s(",
                    M.Functions[I.Target.Func].Name.c_str());
          for (size_t A = 0, AE = I.Args.size(); A != AE; ++A)
            appendf(Out, "%sv%u", A ? ", " : "", I.Args[A]);
          Out += ")";
          break;
        }
        case Opcode::Br:
          appendf(Out, "br bb%u", I.Succ0);
          break;
        case Opcode::CondBr:
          appendf(Out, "condbr v%u, bb%u, bb%u", I.A, I.Succ0, I.Succ1);
          break;
        case Opcode::Ret:
          if (I.A == NoValue)
            Out += "ret";
          else
            appendf(Out, "ret v%u", I.A);
          break;
        default:
          appendf(Out, "v%u = %s v%u, v%u", I.Dst, opcodeName(I.Op), I.A,
                  I.B);
          break;
        }
        Out += '\n';
      }
    }
  }
  return Out;
}
