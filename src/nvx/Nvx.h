//===-- nvx/Nvx.h - N-variant lockstep execution -----------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N-variant execution: the dynamic form of the paper's multi-version
/// argument. Table 3 argues statically -- diversified variants share few
/// gadgets, so one payload cannot cover a population. This subsystem
/// makes the argument operational: compile once, diversify K verified
/// replicas, run them in lockstep over an input battery, and treat
/// *divergence* between replicas as an attack/fault sensor (in the
/// spirit of N-variant systems and Prime). Because every variant is
/// semantics-preserving by construction (verify/Verifier.h), any
/// behavioural disagreement between replicas on the same input is
/// evidence of corruption -- a fault that a single variant may well
/// execute silently.
///
/// Vote semantics: each replica's RunResult is reduced to a behaviour
/// Signature -- exit state, trap kind, output checksum, output text.
/// Instruction and cycle counts are deliberately excluded: NOP-inserted
/// variants legitimately execute different instruction counts. Replicas
/// vote by signature equality; the monitor classifies every round as
/// clean consensus, minority fault masked (majority policy only), or
/// no-quorum abort.
///
/// Robustness by construction: every replica run carries a step budget
/// and the monitor arms a shared wall-clock watchdog
/// (mexec::RunOptions::Cancel), so one hung replica cannot stall the
/// vote. A replica that keeps losing votes is ejected and a replacement
/// is respawned from fresh seeds (verify::RetrySchedule, bounded
/// attempts with seed-space backoff); when respawn fails the monitor
/// degrades to the surviving quorum rather than aborting.
///
/// Determinism contract: with no timeouts firing and no tamper seam
/// installed, an NvxResult is a pure function of (program, battery,
/// options) -- independent of Jobs and scheduling -- because replicas
/// are pure functions of their seeds and the vote is order-insensitive.
/// Wall-clock timeouts are the documented exception: *whether* a
/// watchdog fires depends on real time, so runs that time out are
/// reproducible in classification but not guaranteed bit-stable.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_NVX_NVX_H
#define PGSD_NVX_NVX_H

#include "driver/Driver.h"
#include "mexec/Interp.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pgsd {
namespace nvx {

/// How many replicas must agree for a round to pass.
enum class VotePolicy : uint8_t {
  Majority,  ///< Strict majority wins; minority faults are masked.
  Unanimous, ///< All replicas must agree; any divergence is no-quorum.
};

/// Returns a stable lowercase name ("majority", "unanimous").
const char *votePolicyName(VotePolicy P);

/// Parses a policy name as accepted by the pgsdc --policy flag.
/// Returns false (leaving \p Out untouched) on anything unknown.
bool parseVotePolicy(const std::string &Name, VotePolicy &Out);

/// Classification of one lockstep round.
enum class RoundOutcome : uint8_t {
  Consensus,   ///< Every voting replica agreed.
  MaskedFault, ///< A majority agreed; the minority was outvoted.
  NoQuorum,    ///< No winning coalition under the policy.
};

/// Returns a stable lowercase name ("consensus", "masked-fault",
/// "no-quorum").
const char *roundOutcomeName(RoundOutcome O);

/// The behavioural fields replicas vote on: everything diversity must
/// preserve, nothing it may legitimately change (Instructions and
/// Cycles10 differ across NOP-diversified variants by design, and
/// TrapReason wording is engine detail already covered by the kind).
struct Signature {
  bool Trapped = false;
  mexec::TrapKind Trap = mexec::TrapKind::None;
  int32_t ExitCode = 0;
  uint32_t Checksum = 1;
  std::string Output;

  bool operator==(const Signature &) const = default;
};

/// Projects a RunResult onto its vote signature.
Signature signatureOf(const mexec::RunResult &R);

/// Result of one vote over the signatures of the replicas that ran.
struct VoteResult {
  RoundOutcome Outcome = RoundOutcome::NoQuorum;
  /// Index (into the voted vector) of a replica holding the plurality
  /// signature; meaningful whenever any replica voted.
  size_t WinnerIndex = 0;
  /// Replicas sharing the plurality signature.
  unsigned WinnerCount = 0;
  /// Divergent[i] != 0 when replica i's signature differs from the
  /// plurality signature (timed-out replicas diverge naturally: their
  /// TrapKind::Cancelled signature cannot match a finished run).
  std::vector<uint8_t> Divergent;
};

/// Pure vote: groups \p Sigs by equality and classifies under \p Policy.
/// Replicas trapping with *different* trap kinds are divergent -- a
/// disagreement, never a collective crash; replicas trapping with the
/// *same* signature agree (consensus-on-trap is a legitimate verdict:
/// all variants rejected the input identically). An empty \p Sigs is
/// NoQuorum.
VoteResult vote(const std::vector<Signature> &Sigs, VotePolicy Policy);

/// Configuration of one lockstep session.
struct NvxOptions {
  /// Replica count K. 0 is clamped to 1.
  unsigned Replicas = 3;

  VotePolicy Policy = VotePolicy::Majority;

  /// Worker threads for replica runs; 0 sizes the pool to
  /// min(Replicas, defaultConcurrency()). 1 runs replicas inline on the
  /// monitor thread -- fully deterministic, but with no thread to run
  /// the watchdog the wall-clock timeout is disabled (step budgets
  /// still bound every run).
  unsigned Jobs = 0;

  /// Seed of replica 0; replica i spawns from BaseSeed + i.
  uint64_t BaseSeed = 1;

  /// Per-replica dynamic instruction budget per round.
  uint64_t StepBudget = 200'000'000;

  /// Wall-clock budget per round; when a round exceeds it the monitor
  /// cancels every outstanding replica (they trap TrapKind::Cancelled
  /// and lose the vote). <= 0 disables the watchdog.
  double TimeoutSeconds = 5.0;

  /// Consecutive lost votes after which a replica is ejected.
  unsigned EjectAfter = 2;

  /// Respawn retry budget per ejection (total attempts, incl. first).
  unsigned RespawnAttempts = 3;

  /// Seed-space backoff stride for respawn schedules
  /// (verify::RetrySchedule); nonzero by default so respawns mine fresh
  /// seed neighbourhoods instead of replaying the spawn seeds.
  uint64_t RespawnSeedStride = 0x9E3779B9ull;

  /// Diversity configuration for every replica (and respawn).
  diversity::DiversityOptions Diversity;

  /// Transform pipeline for every replica (and respawn); the default
  /// is NOP insertion only.
  diversity::Pipeline Pipeline;

  /// Verification configuration for spawn and respawn.
  verify::VerifyOptions Verify;

  /// Link options for every replica image.
  codegen::LinkOptions Link;

  /// Test seam: invoked once per freshly spawned replica (index, MIR)
  /// before the lockstep loop starts -- fault-injection tests corrupt
  /// or replace a replica's module here. Tampered modules are re-checked
  /// with mir::verify; a module that no longer verifies is rejected at
  /// load time (counted in NvxResult::LoadRejections) and its slot is
  /// respawned like an ejection. Respawned replicas are *not* tampered.
  std::function<void(unsigned, mir::MModule &)> TamperReplica;
};

/// One lockstep round's record, in battery order.
struct RoundRecord {
  size_t InputIndex = 0;
  RoundOutcome Outcome = RoundOutcome::Consensus;
  unsigned Voters = 0;     ///< Alive replicas that voted this round.
  unsigned Divergent = 0;  ///< Voters outside the plurality coalition.
  unsigned Timeouts = 0;   ///< Voters cancelled by the watchdog.
};

/// Aggregated result of one lockstep session. The three outcome
/// counters partition Rounds (metrics_check --nvx pins the exported
/// copies to that invariant).
struct NvxResult {
  uint64_t Rounds = 0;
  uint64_t ConsensusRounds = 0;
  uint64_t MaskedFaultRounds = 0;
  uint64_t NoQuorumRounds = 0;
  uint64_t Divergences = 0;      ///< Replica-round divergence events.
  uint64_t Timeouts = 0;         ///< Replica-round watchdog cancels.
  uint64_t Ejections = 0;        ///< Replicas removed (incl. load rejects).
  uint64_t Respawns = 0;         ///< Successful replacements.
  uint64_t RespawnFailures = 0;  ///< Ejections left unfilled.
  uint64_t LoadRejections = 0;   ///< Tampered modules failing mir::verify.
  uint64_t SpawnFallbacks = 0;   ///< Spawns that fell back to baseline.
  unsigned ReplicasRequested = 0;
  unsigned ActiveReplicas = 0;   ///< Alive at session end.
  std::vector<RoundRecord> Records; ///< One per battery input.
  /// Seeds of the replicas alive at session end (diagnostic).
  std::vector<uint64_t> FinalSeeds;
  double SpawnWallSeconds = 0.0;    ///< Diversify-and-verify phase.
  double LockstepWallSeconds = 0.0; ///< All rounds, votes included.
  double LockstepCpuSeconds = 0.0;  ///< Process CPU over the rounds.

  /// True when every round reached a verdict (no no-quorum aborts).
  bool ok() const { return NoQuorumRounds == 0; }
  /// True when any round saw divergence or a module was rejected at
  /// load time -- the sensor fired.
  bool divergenceDetected() const {
    return Divergences != 0 || LoadRejections != 0;
  }
};

/// Runs the full session: spawn K verified replicas of \p P, then one
/// lockstep round per battery input (an empty \p Battery uses
/// verify::defaultInputBattery()). \p P must be compiled and ok();
/// profile-stamp it first when Opts.Diversity needs counts. Exports
/// nvx.* metrics to the obs registry when telemetry is enabled.
NvxResult runLockstep(const driver::Program &P,
                      const std::vector<std::vector<int32_t>> &Battery,
                      const NvxOptions &Opts);

} // namespace nvx
} // namespace pgsd

#endif // PGSD_NVX_NVX_H
