//===-- nvx/Nvx.cpp - N-variant lockstep execution -------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "nvx/Nvx.h"

#include "driver/Batch.h"
#include "mexec/Precompiled.h"
#include "obs/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Time.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

using namespace pgsd;
using namespace pgsd::nvx;

const char *nvx::votePolicyName(VotePolicy P) {
  switch (P) {
  case VotePolicy::Majority:
    return "majority";
  case VotePolicy::Unanimous:
    return "unanimous";
  }
  return "unknown";
}

bool nvx::parseVotePolicy(const std::string &Name, VotePolicy &Out) {
  if (Name == "majority") {
    Out = VotePolicy::Majority;
    return true;
  }
  if (Name == "unanimous") {
    Out = VotePolicy::Unanimous;
    return true;
  }
  return false;
}

const char *nvx::roundOutcomeName(RoundOutcome O) {
  switch (O) {
  case RoundOutcome::Consensus:
    return "consensus";
  case RoundOutcome::MaskedFault:
    return "masked-fault";
  case RoundOutcome::NoQuorum:
    return "no-quorum";
  }
  return "unknown";
}

Signature nvx::signatureOf(const mexec::RunResult &R) {
  Signature S;
  S.Trapped = R.Trapped;
  S.Trap = R.Trap;
  S.ExitCode = R.ExitCode;
  S.Checksum = R.Checksum;
  S.Output = R.Output;
  return S;
}

VoteResult nvx::vote(const std::vector<Signature> &Sigs,
                     VotePolicy Policy) {
  VoteResult V;
  V.Divergent.assign(Sigs.size(), 0);
  if (Sigs.empty())
    return V; // NoQuorum: nobody voted.

  // Plurality by pairwise comparison; K is small (a handful of
  // replicas), so O(K^2) beats hashing whole output strings.
  for (size_t I = 0; I != Sigs.size(); ++I) {
    unsigned Count = 0;
    for (const Signature &S : Sigs)
      if (S == Sigs[I])
        ++Count;
    if (Count > V.WinnerCount) {
      V.WinnerCount = Count;
      V.WinnerIndex = I;
    }
  }
  for (size_t I = 0; I != Sigs.size(); ++I)
    V.Divergent[I] = Sigs[I] == Sigs[V.WinnerIndex] ? 0 : 1;

  if (V.WinnerCount == Sigs.size())
    V.Outcome = RoundOutcome::Consensus;
  else if (Policy == VotePolicy::Majority &&
           2 * V.WinnerCount > Sigs.size())
    V.Outcome = RoundOutcome::MaskedFault;
  else
    V.Outcome = RoundOutcome::NoQuorum; // Unanimous, or no majority.
  return V;
}

namespace {

/// One replica slot. Slots live in a fixed-size vector that is never
/// resized, so the Precompiled stream's back-pointer into MIR stays
/// valid for the slot's lifetime; (re)installing a module resets the
/// engine first.
struct Replica {
  mir::MModule MIR;
  std::unique_ptr<mexec::Precompiled> Engine;
  uint64_t Seed = 0;
  unsigned LostVotes = 0; ///< Consecutive divergences.
  bool Alive = false;
};

/// Drops a (possibly tampered or respawned) module into \p Slot and
/// precompiles it. Returns false -- leaving the slot dead, engine-less
/// -- when the module no longer passes mir::verify: the reference
/// engine asserts module validity and the fast engine assumes it, so a
/// corrupted module must be rejected at load time, never executed.
bool installModule(Replica &Slot, mir::MModule &&M, uint64_t Seed) {
  Slot.Engine.reset();
  Slot.MIR = std::move(M);
  Slot.Seed = Seed;
  Slot.LostVotes = 0;
  Slot.Alive = mir::verify(Slot.MIR).empty();
  if (Slot.Alive)
    Slot.Engine = std::make_unique<mexec::Precompiled>(Slot.MIR);
  return Slot.Alive;
}

/// Histogram bounds for nvx.vote_latency_seconds: sub-millisecond
/// rounds up to watchdog-scale stalls.
constexpr double VoteLatencyBounds[] = {0.0001, 0.001, 0.01,
                                        0.1,    1.0,   10.0};

} // namespace

NvxResult nvx::runLockstep(const driver::Program &P,
                           const std::vector<std::vector<int32_t>> &Battery,
                           const NvxOptions &Opts) {
  NvxResult R;
  const unsigned K = Opts.Replicas == 0 ? 1 : Opts.Replicas;
  R.ReplicasRequested = K;

  const std::vector<std::vector<int32_t>> &Inputs =
      Battery.empty() ? verify::defaultInputBattery() : Battery;

  const bool Obs = obs::enabled();

  // Respawn verification: the nvx-level RetrySchedule is the bounded
  // retry (fresh base seed per attempt, seed-space backoff), so the
  // inner factory gets exactly one attempt per drawn seed.
  verify::VerifyOptions RespawnVerify = Opts.Verify;
  RespawnVerify.MaxAttempts = 1;
  // Respawn base-seed cursor: starts past the spawn seeds and advances
  // by one budget per ejection, so successive respawns (and reruns with
  // the same options) draw a deterministic, non-overlapping sequence.
  uint64_t RespawnCursor = Opts.BaseSeed + K;
  const unsigned RespawnBudget =
      Opts.RespawnAttempts == 0 ? 1 : Opts.RespawnAttempts;

  std::vector<Replica> Slots(K);

  auto respawnSlot = [&](Replica &Slot) {
    ++R.Ejections;
    verify::RetrySchedule Schedule(RespawnCursor, RespawnBudget,
                                   Opts.RespawnSeedStride);
    RespawnCursor += RespawnBudget;
    while (!Schedule.exhausted()) {
      uint64_t S = Schedule.next();
      driver::VerifiedVariant VV = driver::makeVariantVerified(
          P, Opts.Pipeline, Opts.Diversity, S, RespawnVerify, Opts.Link);
      // Only a verified *diversified* replacement may join the quorum;
      // a baseline fallback would weaken the population it monitors.
      if (VV.ok() && installModule(Slot, std::move(VV.V.MIR), S)) {
        ++R.Respawns;
        return true;
      }
    }
    ++R.RespawnFailures;
    Slot.Alive = false;
    Slot.Engine.reset();
    return false;
  };

  // --- Spawn phase: K verified replicas via the parallel factory. ---
  {
    obs::Span S(Obs ? "nvx.spawn" : nullptr);
    double SpawnStart = support::monotonicSeconds();
    std::vector<uint64_t> Seeds(K);
    for (unsigned I = 0; I != K; ++I)
      Seeds[I] = Opts.BaseSeed + I;
    driver::BatchOptions BOpts;
    BOpts.Jobs = Opts.Jobs;
    BOpts.Verify = Opts.Verify;
    BOpts.Link = Opts.Link;
    driver::BatchResult Batch = driver::makeVariantsBatch(
        P, Opts.Pipeline, Opts.Diversity, Seeds, BOpts);
    for (unsigned I = 0; I != K; ++I) {
      driver::VerifiedVariant &VV = Batch.Variants[I];
      if (VV.UsedFallback)
        ++R.SpawnFallbacks;
      installModule(Slots[I], std::move(VV.V.MIR), VV.SeedUsed);
      if (Opts.TamperReplica && Slots[I].Alive) {
        // The seam mutates the module after verification -- exactly the
        // window an attacker or bitflip would hit. Reinstall to re-run
        // the load-time check and rebuild the engine over the mutation.
        mir::MModule Tampered = std::move(Slots[I].MIR);
        Opts.TamperReplica(I, Tampered);
        if (!installModule(Slots[I], std::move(Tampered), VV.SeedUsed)) {
          ++R.LoadRejections;
          respawnSlot(Slots[I]);
        }
      }
    }
    R.SpawnWallSeconds = support::elapsedSeconds(
        SpawnStart, support::monotonicSeconds());
  }

  // --- Lockstep phase. ---
  const unsigned PoolJobs =
      Opts.Jobs == 0
          ? std::min(K, support::ThreadPool::defaultConcurrency())
          : Opts.Jobs;
  std::unique_ptr<support::ThreadPool> Pool;
  if (PoolJobs > 1)
    Pool = std::make_unique<support::ThreadPool>(PoolJobs);
  // The watchdog needs the monitor thread free to watch the clock, so
  // inline (Jobs == 1) sessions run on step budgets alone.
  const bool UseWatchdog = Pool && Opts.TimeoutSeconds > 0.0;

  std::mutex RoundMutex;
  std::condition_variable RoundDone;

  obs::Span LockstepSpan(Obs ? "nvx.lockstep" : nullptr);
  double LockstepStart = support::monotonicSeconds();
  double LockstepCpuStart = support::processCpuSeconds();
  R.Records.reserve(Inputs.size());
  for (size_t InputIdx = 0; InputIdx != Inputs.size(); ++InputIdx) {
    double RoundStart = support::monotonicSeconds();
    std::atomic<bool> CancelFlag{false};
    std::vector<mexec::RunResult> Results(K);
    std::vector<unsigned> Voters; // Slot indices that ran this round.
    for (unsigned I = 0; I != K; ++I)
      if (Slots[I].Alive)
        Voters.push_back(I);

    mexec::RunOptions RO;
    RO.Input = Inputs[InputIdx];
    RO.MaxSteps = Opts.StepBudget;
    RO.CollectOutput = true;
    RO.Cancel = &CancelFlag;

    if (Pool) {
      unsigned Done = 0;
      for (unsigned I : Voters)
        Pool->enqueue([&, I] {
          mexec::RunResult RR;
          try {
            RR = Slots[I].Engine->run(RO);
          } catch (...) {
            // The vote must make progress even if a replica run throws
            // (bad_alloc under memory pressure): synthesize a trapped
            // result -- it loses the vote like any other fault.
            RR.Trapped = true;
            RR.Trap = mexec::TrapKind::BadInstruction;
            RR.TrapReason = "replica execution threw";
          }
          std::unique_lock<std::mutex> Lock(RoundMutex);
          Results[I] = std::move(RR);
          ++Done;
          RoundDone.notify_all();
        });
      std::unique_lock<std::mutex> Lock(RoundMutex);
      auto AllDone = [&] { return Done == Voters.size(); };
      if (UseWatchdog &&
          !RoundDone.wait_for(Lock,
                              std::chrono::duration<double>(
                                  Opts.TimeoutSeconds),
                              AllDone)) {
        // Timeout: cancel every straggler, then drain. The cancel flag
        // bounds the drain -- a looping replica reaches a poll point
        // within CancelPollStride instructions.
        CancelFlag.store(true, std::memory_order_relaxed);
        RoundDone.wait(Lock, AllDone);
      } else if (!UseWatchdog) {
        RoundDone.wait(Lock, AllDone);
      }
    } else {
      for (unsigned I : Voters)
        Results[I] = Slots[I].Engine->run(RO);
    }

    // --- Vote. ---
    std::vector<Signature> Sigs;
    Sigs.reserve(Voters.size());
    for (unsigned I : Voters)
      Sigs.push_back(signatureOf(Results[I]));
    VoteResult V = vote(Sigs, Opts.Policy);

    RoundRecord Rec;
    Rec.InputIndex = InputIdx;
    Rec.Outcome = V.Outcome;
    Rec.Voters = static_cast<unsigned>(Voters.size());
    for (size_t VI = 0; VI != Voters.size(); ++VI) {
      if (Results[Voters[VI]].Trap == mexec::TrapKind::Cancelled)
        ++Rec.Timeouts;
      if (V.Divergent[VI])
        ++Rec.Divergent;
    }

    ++R.Rounds;
    switch (V.Outcome) {
    case RoundOutcome::Consensus:
      ++R.ConsensusRounds;
      break;
    case RoundOutcome::MaskedFault:
      ++R.MaskedFaultRounds;
      break;
    case RoundOutcome::NoQuorum:
      ++R.NoQuorumRounds;
      break;
    }
    R.Divergences += Rec.Divergent;
    R.Timeouts += Rec.Timeouts;

    // --- Degrade: eject persistent losers, respawn replacements. ---
    for (size_t VI = 0; VI != Voters.size(); ++VI) {
      Replica &Slot = Slots[Voters[VI]];
      if (!V.Divergent[VI]) {
        Slot.LostVotes = 0;
        continue;
      }
      if (++Slot.LostVotes >= (Opts.EjectAfter == 0 ? 1u
                                                    : Opts.EjectAfter))
        respawnSlot(Slot);
    }

    double RoundWall = support::elapsedSeconds(
        RoundStart, support::monotonicSeconds());
    if (Obs)
      obs::histogramObserve("nvx.vote_latency_seconds", RoundWall,
                            VoteLatencyBounds);
    R.Records.push_back(Rec);
  }

  R.LockstepWallSeconds = support::elapsedSeconds(
      LockstepStart, support::monotonicSeconds());
  R.LockstepCpuSeconds = support::elapsedSeconds(
      LockstepCpuStart, support::processCpuSeconds());

  for (const Replica &Slot : Slots)
    if (Slot.Alive) {
      ++R.ActiveReplicas;
      R.FinalSeeds.push_back(Slot.Seed);
    }

  if (Obs) {
    obs::counterAdd("nvx.rounds", R.Rounds);
    obs::counterAdd("nvx.rounds_consensus", R.ConsensusRounds);
    obs::counterAdd("nvx.rounds_masked", R.MaskedFaultRounds);
    obs::counterAdd("nvx.rounds_no_quorum", R.NoQuorumRounds);
    obs::counterAdd("nvx.divergences", R.Divergences);
    obs::counterAdd("nvx.timeouts", R.Timeouts);
    obs::counterAdd("nvx.ejections", R.Ejections);
    obs::counterAdd("nvx.respawns", R.Respawns);
    obs::counterAdd("nvx.respawn_failures", R.RespawnFailures);
    obs::counterAdd("nvx.load_rejections", R.LoadRejections);
    obs::counterAdd("nvx.spawn_fallbacks", R.SpawnFallbacks);
    obs::gaugeSet("nvx.replicas", R.ReplicasRequested);
    obs::gaugeSet("nvx.active_replicas", R.ActiveReplicas);
  }
  return R;
}
