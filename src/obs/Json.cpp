//===-- obs/Json.cpp - Metrics JSON export and helpers --------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cfloat>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace pgsd;
using namespace pgsd::obs;

namespace {

/// Rewrites whatever decimal separator the C locale produced into the
/// '.' JSON requires. The separator can be multi-byte (localeconv()
/// reports it), so replace the reported string, not just ','.
std::string normalizeDecimalPoint(const char *Buf) {
  const char *Sep = ".";
  if (const struct lconv *LC = localeconv())
    if (LC->decimal_point && LC->decimal_point[0])
      Sep = LC->decimal_point;
  std::string Out;
  size_t SepLen = std::strlen(Sep);
  for (const char *P = Buf; *P;) {
    if (SepLen && std::strncmp(P, Sep, SepLen) == 0) {
      Out += '.';
      P += SepLen;
    } else {
      Out += *P++;
    }
  }
  return Out;
}

/// Clamps non-finite values to representable JSON numbers.
double clampFinite(double Value) {
  if (std::isnan(Value))
    return 0.0;
  if (std::isinf(Value))
    return Value > 0 ? DBL_MAX : -DBL_MAX;
  return Value;
}

} // namespace

std::string obs::jsonNumber(double Value) {
  Value = clampFinite(Value);
  char Buf[64];
  // %.17g round-trips every double; try shorter forms first so common
  // values print compactly ("0.25", not "0.25000000000000000").
  for (int Prec = 6; Prec <= 17; Prec += (Prec == 6 ? 9 : 2)) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, Value);
    double Back = 0.0;
    std::sscanf(Buf, "%lf", &Back);
    if (Back == Value)
      break;
  }
  return normalizeDecimalPoint(Buf);
}

std::string obs::jsonNumber(double Value, int Decimals) {
  Value = clampFinite(Value);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return normalizeDecimalPoint(Buf);
}

std::string obs::jsonUInt(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  return Buf;
}

std::string obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string obs::jsonString(std::string_view S) {
  return "\"" + jsonEscape(S) + "\"";
}

//===----------------------------------------------------------------------===//
// metrics.json emission
//===----------------------------------------------------------------------===//

namespace {

template <typename MapT, typename EmitValue>
void emitSection(std::string &Out, const char *Key, const MapT &Map,
                 bool Last, EmitValue Emit) {
  Out += "  \"";
  Out += Key;
  Out += "\": {";
  bool First = true;
  for (const auto &[Name, Value] : Map) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonString(Name) + ": ";
    Emit(Out, Value);
  }
  Out += First ? "}" : "\n  }";
  Out += Last ? "\n" : ",\n";
}

} // namespace

std::string obs::metricsToJson(const LocalMetrics &Snap) {
  std::string Out = "{\n  \"schema\": \"pgsd-metrics-v1\",\n";
  emitSection(Out, "counters", Snap.Counters, false,
              [](std::string &O, uint64_t V) { O += jsonUInt(V); });
  emitSection(Out, "gauges", Snap.Gauges, false,
              [](std::string &O, double V) { O += jsonNumber(V); });
  emitSection(Out, "phases", Snap.Phases, false,
              [](std::string &O, const PhaseStats &S) {
                O += "{\"count\": " + jsonUInt(S.Count) +
                     ", \"wall_s\": " + jsonNumber(S.WallSeconds) +
                     ", \"cpu_s\": " + jsonNumber(S.CpuSeconds) + "}";
              });
  emitSection(Out, "histograms", Snap.Histograms, true,
              [](std::string &O, const HistogramData &H) {
                O += "{\"upper_bounds\": [";
                for (size_t I = 0; I != H.UpperBounds.size(); ++I) {
                  if (I)
                    O += ", ";
                  O += jsonNumber(H.UpperBounds[I]);
                }
                O += "], \"counts\": [";
                for (size_t I = 0; I != H.Counts.size(); ++I) {
                  if (I)
                    O += ", ";
                  O += jsonUInt(H.Counts[I]);
                }
                O += "], \"total\": " + jsonUInt(H.Total) + "}";
              });
  Out += "}\n";
  return Out;
}

bool obs::writeMetricsJson(const std::string &Path,
                           const LocalMetrics &Snap) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::string Json = metricsToJson(Snap);
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), Out);
  bool OK = Written == Json.size();
  return std::fclose(Out) == 0 && OK;
}

bool obs::writeMetricsJson(const std::string &Path) {
  return writeMetricsJson(Path, Registry::global().snapshot());
}

//===----------------------------------------------------------------------===//
// Strict JSON syntax validation
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent JSON syntax walker (builds no tree).
class JsonScanner {
public:
  explicit JsonScanner(std::string_view T) : Text(T) {}

  bool run(std::string *Error) {
    skipWs();
    bool OK = value() && (skipWs(), Pos == Text.size());
    if (!OK && Error) {
      *Error = "JSON syntax error at byte " + std::to_string(Pos) +
               (Reason.empty() ? "" : ": " + Reason);
    }
    return OK;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Reason;

  bool fail(const char *Why) {
    if (Reason.empty())
      Reason = Why;
    return false;
  }

  int peek() const {
    return Pos < Text.size() ? static_cast<unsigned char>(Text[Pos]) : -1;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.substr(Pos, Len) != Word)
      return fail("bad literal");
    Pos += Len;
    return true;
  }

  bool value() {
    // Defensive depth limit (metrics files nest 3 deep).
    if (++Depth > 64)
      return fail("nesting too deep");
    bool OK = valueInner();
    --Depth;
    return OK;
  }
  unsigned Depth = 0;

  bool valueInner() {
    switch (peek()) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (peek() != '"')
        return fail("expected object key");
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string() {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C == '\\') {
        ++Pos;
        switch (peek()) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          ++Pos;
          break;
        case 'u': {
          ++Pos;
          for (int I = 0; I != 4; ++I, ++Pos)
            if (!std::isxdigit(peek()))
              return fail("bad \\u escape");
          break;
        }
        default:
          return fail("bad escape");
        }
      } else {
        ++Pos;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (peek() == '0') {
      ++Pos;
    } else if (std::isdigit(peek())) {
      while (std::isdigit(peek()))
        ++Pos;
    } else {
      return fail("expected value");
    }
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(peek()))
        return fail("digit required after '.'");
      while (std::isdigit(peek()))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(peek()))
        return fail("digit required in exponent");
      while (std::isdigit(peek()))
        ++Pos;
    }
    return Pos != Start;
  }
};

} // namespace

bool obs::validateJson(std::string_view Text, std::string *Error) {
  return JsonScanner(Text).run(Error);
}
