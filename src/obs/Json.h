//===-- obs/Json.h - Metrics JSON export and helpers -------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON export for the metrics registry, plus the low-level formatting
/// helpers every JSON writer in the repo (metrics.json, BENCH_*.json)
/// routes numbers and strings through. Two classes of latent bugs live
/// at this boundary and are fixed centrally here:
///
///  * Non-finite doubles: NaN and +/-inf are not valid JSON. A zero
///    denominator in a ratio (e.g. a sub-resolution timing) must not
///    poison a whole report file, so jsonNumber() clamps: NaN -> 0,
///    +/-inf -> +/-DBL_MAX (documented, pinned by ObsTest).
///  * Locale-dependent formatting: printf "%f" renders the decimal
///    separator from LC_NUMERIC ("3,14" under de_DE), which is invalid
///    JSON. jsonNumber() normalizes the separator to '.' regardless of
///    the process locale.
///
/// metrics.json schema ("pgsd-metrics-v1"; see DESIGN.md for field
/// semantics):
///
/// \code
///   {
///     "schema": "pgsd-metrics-v1",
///     "counters":   { "<name>": <uint>, ... },
///     "gauges":     { "<name>": <number>, ... },
///     "phases":     { "<name>": { "count": <uint>,
///                                 "wall_s": <number>,
///                                 "cpu_s": <number> }, ... },
///     "histograms": { "<name>": { "upper_bounds": [<number>, ...],
///                                 "counts": [<uint>, ...],
///                                 "total": <uint> }, ... }
///   }
/// \endcode
///
/// Keys are emitted in sorted order and numbers deterministically, so
/// the output is byte-stable for golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_OBS_JSON_H
#define PGSD_OBS_JSON_H

#include "obs/Metrics.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace pgsd {
namespace obs {

/// Formats \p Value as a valid JSON number: shortest round-trip form,
/// '.' decimal separator under any locale, non-finite values clamped
/// (NaN -> 0, +/-inf -> +/-DBL_MAX).
std::string jsonNumber(double Value);

/// Same, with fixed \p Decimals fraction digits (for stable bench rows).
std::string jsonNumber(double Value, int Decimals);

/// Formats an unsigned integer (always valid JSON).
std::string jsonUInt(uint64_t Value);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes).
std::string jsonEscape(std::string_view S);

/// Convenience: "\"<escaped>\"".
std::string jsonString(std::string_view S);

/// Renders \p Snap as the metrics.json document described above.
std::string metricsToJson(const LocalMetrics &Snap);

/// Writes metricsToJson(Snap) to \p Path. Returns false on I/O error.
bool writeMetricsJson(const std::string &Path, const LocalMetrics &Snap);

/// Snapshot-and-write of the global registry.
bool writeMetricsJson(const std::string &Path);

/// Strict syntax validation of a complete JSON document (RFC 8259
/// grammar: object/array/string/number/true/false/null, no trailing
/// garbage). On failure returns false and, when \p Error is non-null,
/// stores a byte offset + reason message. Used by ObsTest and the
/// metrics_check tool to prove every exported file parses.
bool validateJson(std::string_view Text, std::string *Error = nullptr);

} // namespace obs
} // namespace pgsd

#endif // PGSD_OBS_JSON_H
