//===-- obs/Metrics.h - Pipeline telemetry registry --------------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: named counters, gauges, fixed-bucket
/// histograms, and RAII phase spans capturing wall + CPU time per
/// pipeline stage. The paper's contribution is a measured trade-off
/// (overhead vs. gadget survival, Figure 4 / Table 2), so the pipeline
/// that reproduces it carries its own instrumentation: every stage from
/// the frontend to the batch verifier reports where time goes and what
/// it decided, and pgsdc --metrics exports the aggregate as JSON.
///
/// Cost contract (pinned by ObsTest and the interp_throughput parity
/// criterion):
///  * Telemetry is compiled in but *disabled by default*. Every
///    instrumentation site first consults obs::enabled(), a single
///    relaxed atomic load; when disabled, no allocation, no lock, and no
///    further atomic is touched.
///  * Instrumentation granularity is the pipeline *phase* (a compile, a
///    checker pass, a verification family, a batch seed) -- never the
///    interpreter's per-instruction hot loop.
///  * Parallel sections do not serialize on the registry: workers
///    accumulate into per-task LocalMetrics sinks (plain maps, no
///    atomics) installed via ScopedSink, and driver::makeVariantsBatch
///    merges them after ThreadPool::wait(), outside the timed region's
///    hot path.
///
/// Thread-safety: Registry methods lock an internal mutex and may be
/// called from any thread; LocalMetrics is single-thread by design;
/// Span/counterAdd/histogramObserve route to the calling thread's
/// installed sink (lock-free) or, when none is installed, to the global
/// registry (locked).
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_OBS_METRICS_H
#define PGSD_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pgsd {
namespace obs {

/// Aggregated timing of one named phase: how many spans closed and their
/// summed wall / thread-CPU seconds. Wall time is per measuring thread,
/// so across a parallel section the sum over workers exceeds elapsed
/// wall clock; it relates to CPU, not latency (metrics.json documents
/// this per phase via Count).
struct PhaseStats {
  uint64_t Count = 0;
  double WallSeconds = 0.0;
  double CpuSeconds = 0.0;

  void merge(const PhaseStats &O) {
    Count += O.Count;
    WallSeconds += O.WallSeconds;
    CpuSeconds += O.CpuSeconds;
  }
};

/// A fixed-bucket histogram: Counts[i] tallies observations with
/// value <= UpperBounds[i] (first matching bucket); Counts.back() is the
/// overflow bucket for values above every bound.
struct HistogramData {
  std::vector<double> UpperBounds;
  std::vector<uint64_t> Counts; ///< UpperBounds.size() + 1 entries.
  uint64_t Total = 0;

  void observe(double Value);
  /// Merges \p O; bounds must match (first writer fixes them).
  void merge(const HistogramData &O);
};

/// One coherent set of metrics: either a thread-local accumulation sink
/// or a snapshot of the global registry. Plain ordered maps -- no locks,
/// no atomics -- so merging is associative and export order is stable.
class LocalMetrics {
public:
  void addCounter(std::string_view Name, uint64_t Delta);
  void setGauge(std::string_view Name, double Value);
  void addPhase(std::string_view Name, const PhaseStats &S);
  void observe(std::string_view Name, double Value,
               std::span<const double> UpperBounds);

  /// Folds \p O into this. Counters and phases add, gauges last-write-
  /// wins, histograms add bucket-wise. Associative and commutative up to
  /// gauge ordering, so the batch factory may merge per-seed sinks in
  /// any grouping (ObsTest pins associativity).
  void merge(const LocalMetrics &O);

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Phases.empty() &&
           Histograms.empty();
  }

  // Ordered so JSON export and golden tests are deterministic.
  std::map<std::string, uint64_t, std::less<>> Counters;
  std::map<std::string, double, std::less<>> Gauges;
  std::map<std::string, PhaseStats, std::less<>> Phases;
  std::map<std::string, HistogramData, std::less<>> Histograms;
};

/// The process-wide metrics registry. Disabled (and empty) by default.
class Registry {
public:
  /// The one global instance every instrumentation site reports to.
  static Registry &global();

  /// Turns collection on or off process-wide. Flipping the flag does not
  /// clear accumulated data (call reset()).
  void setEnabled(bool On);

  /// Thread-safe mutating entry points (each takes the registry mutex).
  void addCounter(std::string_view Name, uint64_t Delta);
  void setGauge(std::string_view Name, double Value);
  void addPhase(std::string_view Name, const PhaseStats &S);
  void observe(std::string_view Name, double Value,
               std::span<const double> UpperBounds);

  /// Folds a worker-side sink into the registry under one lock.
  void merge(const LocalMetrics &Sink);

  /// Copies the current contents (consistent under the lock).
  LocalMetrics snapshot() const;

  /// Drops all accumulated data; the enabled flag is untouched.
  void reset();

private:
  mutable std::mutex Mutex;
  LocalMetrics Data;
};

/// True when telemetry collection is on: one relaxed atomic load, the
/// only cost any instrumentation site pays when telemetry is off.
bool enabled();

/// Shorthand for Registry::global().setEnabled().
void setEnabled(bool On);

/// Installs \p Sink as the calling thread's metrics destination for the
/// lifetime of the guard: spans, counters, and histogram observations on
/// this thread accumulate into it lock-free instead of locking the
/// global registry. Passing nullptr leaves routing unchanged (so callers
/// can make installation conditional without branching at every site).
/// Nests: the previous sink is restored on destruction.
class ScopedSink {
public:
  explicit ScopedSink(LocalMetrics *Sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink &) = delete;
  ScopedSink &operator=(const ScopedSink &) = delete;

private:
  LocalMetrics *Prev = nullptr;
  bool Installed = false;
};

/// Adds \p Delta to counter \p Name (thread sink or global registry).
/// No-op when telemetry is disabled.
void counterAdd(std::string_view Name, uint64_t Delta = 1);

/// Sets gauge \p Name (last write wins). No-op when disabled.
void gaugeSet(std::string_view Name, double Value);

/// Records \p Value into fixed-bucket histogram \p Name. The first
/// observation fixes the bucket bounds. No-op when disabled.
void histogramObserve(std::string_view Name, double Value,
                      std::span<const double> UpperBounds);

/// RAII phase span: measures wall (steady_clock) and thread-CPU time
/// from construction to destruction and records them under \p Name.
/// A null \p Name, or telemetry being disabled at construction, makes
/// the span inert (destructor does nothing; no clock is read). Spans
/// nest freely; each records its own inclusive time.
class Span {
public:
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr; ///< Null when inert.
  double Wall0 = 0.0;
  double Cpu0 = 0.0;
};

} // namespace obs
} // namespace pgsd

#endif // PGSD_OBS_METRICS_H
