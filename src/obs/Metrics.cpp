//===-- obs/Metrics.cpp - Pipeline telemetry registry ---------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Time.h"

#include <atomic>
#include <cassert>

using namespace pgsd;
using namespace pgsd::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void HistogramData::observe(double Value) {
  assert(Counts.size() == UpperBounds.size() + 1 &&
         "histogram not initialized");
  size_t B = 0;
  while (B != UpperBounds.size() && Value > UpperBounds[B])
    ++B;
  ++Counts[B];
  ++Total;
}

void HistogramData::merge(const HistogramData &O) {
  if (Counts.empty()) {
    *this = O;
    return;
  }
  assert(UpperBounds == O.UpperBounds &&
         "merging histograms with different bucket bounds");
  for (size_t I = 0; I != Counts.size() && I != O.Counts.size(); ++I)
    Counts[I] += O.Counts[I];
  Total += O.Total;
}

//===----------------------------------------------------------------------===//
// LocalMetrics
//===----------------------------------------------------------------------===//

void LocalMetrics::addCounter(std::string_view Name, uint64_t Delta) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void LocalMetrics::setGauge(std::string_view Name, double Value) {
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    Gauges.emplace(std::string(Name), Value);
  else
    It->second = Value;
}

void LocalMetrics::addPhase(std::string_view Name, const PhaseStats &S) {
  auto It = Phases.find(Name);
  if (It == Phases.end())
    Phases.emplace(std::string(Name), S);
  else
    It->second.merge(S);
}

void LocalMetrics::observe(std::string_view Name, double Value,
                           std::span<const double> UpperBounds) {
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    HistogramData H;
    H.UpperBounds.assign(UpperBounds.begin(), UpperBounds.end());
    H.Counts.assign(UpperBounds.size() + 1, 0);
    It = Histograms.emplace(std::string(Name), std::move(H)).first;
  }
  It->second.observe(Value);
}

void LocalMetrics::merge(const LocalMetrics &O) {
  for (const auto &[Name, Delta] : O.Counters)
    addCounter(Name, Delta);
  for (const auto &[Name, Value] : O.Gauges)
    setGauge(Name, Value);
  for (const auto &[Name, S] : O.Phases)
    addPhase(Name, S);
  for (const auto &[Name, H] : O.Histograms) {
    auto It = Histograms.find(Name);
    if (It == Histograms.end())
      Histograms.emplace(Name, H);
    else
      It->second.merge(H);
  }
}

//===----------------------------------------------------------------------===//
// Registry and routing
//===----------------------------------------------------------------------===//

namespace {

/// Process-wide on/off switch, read relaxed on every instrumentation
/// site; the registry mutex is only ever taken once this is true.
std::atomic<bool> Enabled{false};

/// The calling thread's installed sink (null: report to the registry).
thread_local LocalMetrics *ThreadSink = nullptr;

} // namespace

Registry &Registry::global() {
  static Registry R;
  return R;
}

void Registry::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

bool obs::enabled() { return Enabled.load(std::memory_order_relaxed); }

void obs::setEnabled(bool On) { Registry::global().setEnabled(On); }

void Registry::addCounter(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data.addCounter(Name, Delta);
}

void Registry::setGauge(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data.setGauge(Name, Value);
}

void Registry::addPhase(std::string_view Name, const PhaseStats &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data.addPhase(Name, S);
}

void Registry::observe(std::string_view Name, double Value,
                       std::span<const double> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data.observe(Name, Value, UpperBounds);
}

void Registry::merge(const LocalMetrics &Sink) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data.merge(Sink);
}

LocalMetrics Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Data;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Data = LocalMetrics();
}

ScopedSink::ScopedSink(LocalMetrics *Sink) {
  if (!Sink)
    return;
  Prev = ThreadSink;
  ThreadSink = Sink;
  Installed = true;
}

ScopedSink::~ScopedSink() {
  if (Installed)
    ThreadSink = Prev;
}

void obs::counterAdd(std::string_view Name, uint64_t Delta) {
  if (!enabled())
    return;
  if (LocalMetrics *Sink = ThreadSink)
    Sink->addCounter(Name, Delta);
  else
    Registry::global().addCounter(Name, Delta);
}

void obs::gaugeSet(std::string_view Name, double Value) {
  if (!enabled())
    return;
  if (LocalMetrics *Sink = ThreadSink)
    Sink->setGauge(Name, Value);
  else
    Registry::global().setGauge(Name, Value);
}

void obs::histogramObserve(std::string_view Name, double Value,
                           std::span<const double> UpperBounds) {
  if (!enabled())
    return;
  if (LocalMetrics *Sink = ThreadSink)
    Sink->observe(Name, Value, UpperBounds);
  else
    Registry::global().observe(Name, Value, UpperBounds);
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Span::Span(const char *SpanName) {
  if (!SpanName || !enabled())
    return; // Inert: Name stays null and the destructor is free.
  Name = SpanName;
  Wall0 = support::monotonicSeconds();
  Cpu0 = support::threadCpuSeconds();
}

Span::~Span() {
  if (!Name)
    return;
  PhaseStats S;
  S.Count = 1;
  S.WallSeconds =
      support::elapsedSeconds(Wall0, support::monotonicSeconds());
  S.CpuSeconds =
      support::elapsedSeconds(Cpu0, support::threadCpuSeconds());
  if (LocalMetrics *Sink = ThreadSink)
    Sink->addPhase(Name, S);
  else
    Registry::global().addPhase(Name, S);
}
