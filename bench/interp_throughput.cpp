//===-- bench/interp_throughput.cpp - Engine MIPS comparison ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Measures interpreter throughput (MIPS: million simulated MIR
// instructions per wall-clock second) of the tree-walking reference
// engine against the precompiled direct-threaded engine
// (mexec::Precompiled) over the SPEC-like workload suite, and records
// per-workload MIPS plus the geometric-mean speedup as JSON
// (BENCH_interp.json by default, or argv[1]). With argv[2], pipeline
// telemetry is enabled and exported there as pgsd-metrics-v1 JSON.
//
// Bit-identity is asserted while measuring: the two engines must return
// the same Checksum/Instructions/Cycles10 on every workload, or the
// bench refuses to publish numbers (tests/EngineParityTest.cpp pins the
// full field-for-field contract).
//
// Knobs:
//   PGSD_QUICK=1   -- one repetition over a 5-workload subset (CI smoke).
//   PGSD_REPS=N    -- repetitions per engine per workload (default 3;
//                     the fastest repetition is reported).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "mexec/Precompiled.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;

namespace {

struct Row {
  std::string Name;
  uint64_t Instructions = 0;
  double RefSeconds = 0.0;
  double FastSeconds = 0.0;

  double refMips() const {
    return RefSeconds > 0 ? Instructions / RefSeconds / 1e6 : 0.0;
  }
  double fastMips() const {
    return FastSeconds > 0 ? Instructions / FastSeconds / 1e6 : 0.0;
  }
  double speedup() const {
    return FastSeconds > 0 ? RefSeconds / FastSeconds : 0.0;
  }
};

/// Wall-clock seconds of the fastest of \p Reps calls to \p Fn.
template <typename F> double bestOf(unsigned Reps, F &&Fn) {
  double Best = 0.0;
  for (unsigned R = 0; R != Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    double S = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_interp.json";
  const char *MetricsPath = Argc > 2 ? Argv[2] : nullptr;
  if (MetricsPath)
    obs::setEnabled(true);
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned Reps = Quick ? 1 : 3;
  if (const char *V = std::getenv("PGSD_REPS"))
    if (std::atoi(V) > 0)
      Reps = static_cast<unsigned>(std::atoi(V));

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads = Quick ? std::min<size_t>(5, Suite.size())
                              : Suite.size();

  std::vector<Row> Rows;
  std::vector<double> Speedups;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "interp_throughput: %s failed to compile:\n%s",
                   W.Name.c_str(), P.errors().c_str());
      return 1;
    }
    mexec::RunOptions Opts;
    Opts.Input = W.TrainInput;

    mexec::RunResult Ref = mexec::run(P.MIR, Opts);
    mexec::Precompiled PC(P.MIR);
    mexec::RunResult Fast = PC.run(Opts);
    if (Ref.Trapped || Ref.Checksum != Fast.Checksum ||
        Ref.Instructions != Fast.Instructions ||
        Ref.Cycles10 != Fast.Cycles10) {
      std::fprintf(stderr,
                   "interp_throughput: %s: engines diverge "
                   "(ref %08x/%llu, fast %08x/%llu); not publishing\n",
                   W.Name.c_str(), Ref.Checksum,
                   static_cast<unsigned long long>(Ref.Instructions),
                   Fast.Checksum,
                   static_cast<unsigned long long>(Fast.Instructions));
      return 1;
    }

    Row R;
    R.Name = W.Name;
    R.Instructions = Ref.Instructions;
    R.RefSeconds = bestOf(Reps, [&] { mexec::run(P.MIR, Opts); });
    R.FastSeconds = bestOf(Reps, [&] { PC.run(Opts); });
    Speedups.push_back(R.speedup());

    std::printf("%-16s %9llu instrs: ref %7.2f MIPS, fast %8.2f MIPS, "
                "speedup %5.2fx\n",
                W.Name.c_str(),
                static_cast<unsigned long long>(R.Instructions),
                R.refMips(), R.fastMips(), R.speedup());
    Rows.push_back(std::move(R));
  }

  // geometricMean skips non-positive entries, so a sub-resolution timing
  // (speedup() == 0.0 when FastSeconds rounds to zero) degrades one
  // sample instead of turning the summary into exp(-inf) = 0.
  double Geomean = pgsd::geometricMean(Speedups);
  std::printf("geomean speedup: %.2fx over %zu workloads\n", Geomean,
              Rows.size());
  if (Geomean < 1.0)
    // Warn-only: a loaded CI box can produce noisy timings, and the
    // parity tests -- not this bench -- are the correctness gate.
    std::printf("note: fast engine slower than reference on this host "
                "(geomean %.2fx < 1.0)\n",
                Geomean);

  // All numeric fields route through obs::jsonNumber: it clamps NaN/inf
  // (a zero-denominator MIPS is exported as 0, not as invalid JSON) and
  // pins the '.' decimal separator regardless of the process locale.
  std::string Json = "{\n";
  Json += "  \"reps\": " + obs::jsonUInt(Reps) + ",\n";
  Json += "  \"geomean_speedup\": " + obs::jsonNumber(Geomean, 3) +
          ",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    Json += "    {\"name\": " + obs::jsonString(R.Name) +
            ", \"instructions\": " + obs::jsonUInt(R.Instructions) +
            ", \"ref_mips\": " + obs::jsonNumber(R.refMips(), 2) +
            ", \"fast_mips\": " + obs::jsonNumber(R.fastMips(), 2) +
            ", \"speedup\": " + obs::jsonNumber(R.speedup(), 3) + "}" +
            (I + 1 == Rows.size() ? "\n" : ",\n");
  }
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "interp_throughput: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);

  if (MetricsPath) {
    obs::gaugeSet("bench.interp.geomean_speedup", Geomean);
    obs::counterAdd("bench.interp.workloads", Rows.size());
    if (!obs::writeMetricsJson(MetricsPath)) {
      std::fprintf(stderr, "interp_throughput: cannot write %s\n",
                   MetricsPath);
      return 1;
    }
    std::printf("wrote %s\n", MetricsPath);
  }
  return 0;
}
