//===-- bench/table1_nop_candidates.cpp - Paper Table 1 ---------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Prints Table 1 ("NOP insertion candidate instructions") with each
// property verified live against the decoder: the full encoding decodes
// to one state-preserving instruction, and the second byte decodes to
// what the paper claims (IN / SS: / AAS), which is why an attacker
// cannot reuse it.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "x86/Decoder.h"
#include "x86/Nops.h"

#include <cstdio>

using namespace pgsd;
using namespace pgsd::x86;

int main() {
  std::printf("Table 1: NOP insertion candidate instructions\n\n");
  TablePrinter Table;
  Table.addRow({"Instruction", "Encoding", "Second-byte decoding",
                "Verified", "Notes"});

  size_t Count;
  const NopInfo *Rows = nopTable(Count);
  bool AllOK = true;
  for (size_t I = 0; I != Count; ++I) {
    const NopInfo &N = Rows[I];
    char Enc[16];
    if (N.Length == 1)
      std::snprintf(Enc, sizeof(Enc), "%02X", N.Bytes[0]);
    else
      std::snprintf(Enc, sizeof(Enc), "%02X %02X", N.Bytes[0], N.Bytes[1]);

    // Verify: full encoding is one valid, non-privileged instruction.
    Decoded D;
    bool OK = decodeInstr(N.Bytes, N.Length, D) && D.Length == N.Length &&
              D.Class == InstrClass::Normal;
    // Verify the second-byte story.
    if (N.Length == 2) {
      Decoded Second;
      bool SecondOK = decodeInstr(N.Bytes + 1, 1, Second);
      if (std::string(N.SecondByteDecoding) == "IN")
        // E4/EC forms take an imm8 (truncate alone); ED (IN eAX, DX) is
        // complete but privileged. Either way the byte is unusable.
        OK = OK &&
             (!SecondOK || Second.Class == InstrClass::Privileged);
      else if (std::string(N.SecondByteDecoding) == "SS:")
        OK = OK && !SecondOK && Second.NumPrefixes == 1;
      else if (std::string(N.SecondByteDecoding) == "AAS")
        OK = OK && SecondOK && Second.Class == InstrClass::Normal;
      // And with a following byte, IN must be privileged.
      if (std::string(N.SecondByteDecoding) == "IN") {
        uint8_t Buf[2] = {N.Bytes[1], 0x00};
        Decoded In;
        decodeInstr(Buf, 2, In);
        OK = OK && In.Class == InstrClass::Privileged;
      }
    }
    AllOK = AllOK && OK;
    Table.addRow({N.Mnemonic, Enc, N.SecondByteDecoding,
                  OK ? "yes" : "NO",
                  N.LocksBus ? "excluded by default (locks the bus)"
                             : "default candidate"});
  }
  Table.print(stdout);
  std::printf("\n%zu candidates, %u enabled by default (paper: \"our "
              "implementation only uses five of them\").\n",
              Count, NumDefaultNopKinds);
  return AllOK ? 0 : 1;
}
