//===-- bench/BenchCommon.h - Shared harness configuration -------*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared configuration for the table/figure harnesses.
///
/// Environment knobs:
///   PGSD_QUICK=1     -- reduced variant counts for smoke runs.
///   PGSD_VARIANTS=N  -- explicit variant count override.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_BENCH_BENCHCOMMON_H
#define PGSD_BENCH_BENCHCOMMON_H

#include "diversity/NopInsertion.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace pgsd {
namespace bench {

/// One named insertion configuration.
struct Config {
  std::string Label;
  diversity::DiversityOptions Opts;
};

/// The paper's five Figure 4 configurations, in column order.
inline std::vector<Config> paperConfigs() {
  using diversity::DiversityOptions;
  using diversity::ProbabilityModel;
  return {
      {"pNOP=50%", DiversityOptions::uniform(0.50)},
      {"pNOP=30%", DiversityOptions::uniform(0.30)},
      {"pNOP=25-50%",
       DiversityOptions::profiled(ProbabilityModel::Log, 0.25, 0.50)},
      {"pNOP=10-50%",
       DiversityOptions::profiled(ProbabilityModel::Log, 0.10, 0.50)},
      {"pNOP=0-30%",
       DiversityOptions::profiled(ProbabilityModel::Log, 0.00, 0.30)},
  };
}

/// Number of diversified variants per (benchmark, config) cell.
/// \p PaperDefault is what the paper used (5 for Figure 4, 25 for
/// Tables 2/3); PGSD_QUICK or PGSD_VARIANTS shrink it for smoke runs.
inline unsigned variantCount(unsigned PaperDefault) {
  if (const char *Explicit = std::getenv("PGSD_VARIANTS")) {
    int V = std::atoi(Explicit);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  if (const char *Quick = std::getenv("PGSD_QUICK");
      Quick && Quick[0] == '1')
    return PaperDefault >= 25 ? 5 : 2;
  return PaperDefault;
}

} // namespace bench
} // namespace pgsd

#endif // PGSD_BENCH_BENCHCOMMON_H
