//===-- bench/gadget_throughput.cpp - Scanner throughput comparison --------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Measures the gadget-scan pipeline that backs the paper's Tables 2/3 in
// four execution modes over the same (original, variants) corpus:
//
//   reference   -- the per-offset oracle (ScanOptions::ForceReference),
//                  one fresh O(Size x MaxInstrs) survivor pass per
//                  variant: the pre-optimization behaviour.
//   full        -- decode-once ImageScan, serial, fresh scan per variant
//                  but one shared original-image scan.
//   incremental -- decode-once + each variant scan seeded from the
//                  original scan, re-decoding only the diffed ranges.
//   parallel    -- incremental sharded across all cores.
//
// Every mode must produce identical survivor lists (the bench refuses to
// publish numbers for diverging runs -- ScannerParityTest pins the same
// property exhaustively). Results go to BENCH_gadget.json (or argv[1])
// with per-workload MB/s and aggregate speedups.
//
// Knobs:
//   PGSD_QUICK=1     -- 5-workload subset, 4 variants each (CI smoke).
//   PGSD_VARIANTS=N  -- variants per workload (default 16).
//   PGSD_JOBS=J      -- worker count for the parallel mode (default 0 =
//                       all cores).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "obs/Json.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;
using Clock = std::chrono::steady_clock;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return Default;
}

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

struct Row {
  std::string Name;
  unsigned Variants = 0;
  uint64_t Bytes = 0; ///< Original + all variant .text bytes.
  double ReferenceS = 0, FullS = 0, IncrementalS = 0, ParallelS = 0;

  double mbps(double Wall) const {
    return Wall > 0 ? static_cast<double>(Bytes) / (1e6 * Wall) : 0.0;
  }
};

bool sameSurvivors(const std::vector<std::vector<gadget::SurvivingGadget>> &A,
                   const std::vector<std::vector<gadget::SurvivingGadget>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    if (A[I].size() != B[I].size())
      return false;
    for (size_t J = 0; J != A[I].size(); ++J)
      if (A[I][J].Offset != B[I][J].Offset ||
          A[I][J].NormHash != B[I][J].NormHash)
        return false;
  }
  return true;
}

void appendJsonRow(std::string &Out, const Row &R, bool Last) {
  Out += "    {\"name\": " + obs::jsonString(R.Name) +
         ", \"variants\": " + obs::jsonUInt(R.Variants) +
         ", \"bytes\": " + obs::jsonUInt(R.Bytes) +
         ", \"reference_wall_s\": " + obs::jsonNumber(R.ReferenceS, 4) +
         ", \"full_wall_s\": " + obs::jsonNumber(R.FullS, 4) +
         ", \"incremental_wall_s\": " + obs::jsonNumber(R.IncrementalS, 4) +
         ", \"parallel_wall_s\": " + obs::jsonNumber(R.ParallelS, 4) +
         ", \"reference_mbps\": " + obs::jsonNumber(R.mbps(R.ReferenceS), 2) +
         ", \"full_mbps\": " + obs::jsonNumber(R.mbps(R.FullS), 2) +
         ", \"incremental_mbps\": " +
         obs::jsonNumber(R.mbps(R.IncrementalS), 2) +
         ", \"parallel_mbps\": " + obs::jsonNumber(R.mbps(R.ParallelS), 2) +
         "}" + (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_gadget.json";
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned VariantsPer = envUnsigned("PGSD_VARIANTS", Quick ? 4 : 16);
  unsigned Jobs = envUnsigned("PGSD_JOBS", 0);

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads =
      Quick ? std::min<size_t>(5, Suite.size()) : Suite.size();

  auto Opts = diversity::DiversityOptions::uniform(0.3);

  gadget::ScanOptions Reference;
  Reference.ForceReference = true;
  gadget::ScanOptions Full; // decode-once, serial, shared original scan
  gadget::ScanOptions Incremental = Full;
  Incremental.Incremental = true;
  gadget::ScanOptions Parallel = Full;
  Parallel.Jobs = Jobs;

  std::vector<Row> Rows;
  double TotalRef = 0, TotalFull = 0, TotalIncr = 0, TotalPar = 0;
  uint64_t TotalBytes = 0;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "gadget_throughput: %s failed to compile:\n%s",
                   W.Name.c_str(), P.errors().c_str());
      return 1;
    }
    const std::vector<uint8_t> Base = driver::linkBaseline(P).Text;
    std::vector<std::vector<uint8_t>> Versions;
    for (unsigned S = 0; S != VariantsPer; ++S)
      Versions.push_back(
          driver::makeVariant(P, Opts, 0x9ad9e700ull + WI * 1000 + S)
              .Image.Text);

    Row R;
    R.Name = W.Name;
    R.Variants = VariantsPer;
    R.Bytes = Base.size();
    for (const auto &V : Versions)
      R.Bytes += V.size();

    auto T0 = Clock::now();
    // Pre-optimization shape: one independent reference pass per pair.
    std::vector<std::vector<gadget::SurvivingGadget>> RefOut;
    for (const auto &V : Versions)
      RefOut.push_back(gadget::survivingGadgets(Base, V, Reference));
    R.ReferenceS = secondsSince(T0);

    T0 = Clock::now();
    auto FullOut = gadget::survivingGadgetsMulti(Base, Versions, Full);
    R.FullS = secondsSince(T0);

    T0 = Clock::now();
    auto IncrOut =
        gadget::survivingGadgetsMulti(Base, Versions, Incremental);
    R.IncrementalS = secondsSince(T0);

    T0 = Clock::now();
    auto ParOut = gadget::survivingGadgetsMulti(Base, Versions, Parallel);
    R.ParallelS = secondsSince(T0);

    if (!sameSurvivors(RefOut, FullOut) || !sameSurvivors(RefOut, IncrOut) ||
        !sameSurvivors(RefOut, ParOut)) {
      std::fprintf(stderr, "gadget_throughput: %s: modes disagree\n",
                   W.Name.c_str());
      return 1;
    }

    TotalRef += R.ReferenceS;
    TotalFull += R.FullS;
    TotalIncr += R.IncrementalS;
    TotalPar += R.ParallelS;
    TotalBytes += R.Bytes;
    std::printf("%-16s %2u variants, %7.1f KB: ref %6.1f MB/s, "
                "full %7.1f MB/s, incr %7.1f MB/s, par %7.1f MB/s\n",
                W.Name.c_str(), VariantsPer,
                static_cast<double>(R.Bytes) / 1e3, R.mbps(R.ReferenceS),
                R.mbps(R.FullS), R.mbps(R.IncrementalS),
                R.mbps(R.ParallelS));
    Rows.push_back(std::move(R));
  }

  const double FullSpeedup = TotalFull > 0 ? TotalRef / TotalFull : 0.0;
  const double IncrSpeedup = TotalIncr > 0 ? TotalRef / TotalIncr : 0.0;
  const double ParSpeedup = TotalPar > 0 ? TotalRef / TotalPar : 0.0;
  std::printf("total: reference %.3fs, full %.3fs (%.1fx), incremental "
              "%.3fs (%.1fx), parallel %.3fs (%.1fx, %u hw threads)\n",
              TotalRef, TotalFull, FullSpeedup, TotalIncr, IncrSpeedup,
              TotalPar, ParSpeedup,
              support::ThreadPool::defaultConcurrency());

  std::string Json;
  Json += "{\n";
  Json += "  \"jobs\": " + obs::jsonUInt(Jobs) + ",\n";
  Json += "  \"hardware_concurrency\": " +
          obs::jsonUInt(support::ThreadPool::defaultConcurrency()) + ",\n";
  Json += "  \"variants_per_workload\": " + obs::jsonUInt(VariantsPer) +
          ",\n";
  Json += "  \"total_bytes\": " + obs::jsonUInt(TotalBytes) + ",\n";
  Json += "  \"total_reference_wall_s\": " + obs::jsonNumber(TotalRef, 4) +
          ",\n";
  Json += "  \"total_full_wall_s\": " + obs::jsonNumber(TotalFull, 4) +
          ",\n";
  Json += "  \"total_incremental_wall_s\": " +
          obs::jsonNumber(TotalIncr, 4) + ",\n";
  Json += "  \"total_parallel_wall_s\": " + obs::jsonNumber(TotalPar, 4) +
          ",\n";
  Json += "  \"full_speedup\": " + obs::jsonNumber(FullSpeedup, 3) + ",\n";
  Json += "  \"incremental_speedup\": " + obs::jsonNumber(IncrSpeedup, 3) +
          ",\n";
  Json += "  \"parallel_speedup\": " + obs::jsonNumber(ParSpeedup, 3) +
          ",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I)
    appendJsonRow(Json, Rows[I], I + 1 == Rows.size());
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "gadget_throughput: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
