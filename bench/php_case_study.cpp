//===-- bench/php_case_study.cpp - Paper Section 5.2 case study -------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Regenerates the concrete-attack experiment: the paper took PHP 5.3.16,
// verified it was exploitable with two gadget scanners (ROPgadget and
// microgadgets), then built 25 diversified versions per profiling script
// (seven Computer Language Benchmarks Game programs) at the
// highest-performance setting pNOP=0-30% and showed that no diversified
// version remained attackable from its surviving gadgets.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "gadget/Attack.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pgsd;

int main() {
  const unsigned NumVersions = bench::variantCount(25);
  workloads::Workload Php = workloads::phpInterpreter();
  driver::Program Base = driver::compileProgram(Php.Source, Php.Name);
  if (!Base.ok()) {
    std::fprintf(stderr, "compile failed:\n%s", Base.errors().c_str());
    return 1;
  }
  codegen::Image BaseImage = driver::linkBaseline(Base);

  std::printf("Case study: ROP attacks against the %s interpreter\n",
              Php.Name.c_str());
  std::printf(".text: %zu bytes; %u diversified versions per profile; "
              "pNOP=0-30%% (log heuristic)\n\n",
              BaseImage.Text.size(), NumVersions);

  // Step 1 (paper: "we verified that the undiversified PHP binary is
  // indeed vulnerable to both these attacks").
  auto BaseRop = gadget::checkAttackOnImage(BaseImage.Text,
                                            gadget::AttackModel::RopGadget);
  auto BaseMicro = gadget::checkAttackOnImage(
      BaseImage.Text, gadget::AttackModel::Microgadget);
  std::printf("undiversified binary: ROPgadget-model %s, "
              "microgadgets-model %s\n",
              BaseRop.Feasible ? "FEASIBLE" : "infeasible",
              BaseMicro.Feasible ? "FEASIBLE" : "infeasible");
  if (!BaseRop.Feasible || !BaseMicro.Feasible) {
    std::fprintf(stderr, "expected the baseline to be attackable\n");
    return 1;
  }

  // Step 2: per profiling script, build versions and re-run both
  // scanners on the surviving gadgets of each version.
  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);

  TablePrinter Table;
  Table.addRow({"Profile script", "Versions", "Mean survivors",
                "ROPgadget feasible", "microgadgets feasible"});
  unsigned TotalFeasible = 0;
  for (const workloads::PhpScript &Script : workloads::clbgScripts()) {
    driver::Program P = driver::compileProgram(Php.Source, Php.Name);
    if (!driver::profileAndStamp(P, Script.Input)) {
      std::fprintf(stderr, "%s: training run failed\n",
                   Script.Name.c_str());
      return 1;
    }
    unsigned RopFeasible = 0, MicroFeasible = 0;
    double SurvivorSum = 0;
    for (uint64_t Seed = 1; Seed <= NumVersions; ++Seed) {
      driver::Variant V = driver::makeVariant(P, Opts, Seed);
      auto Survivors =
          gadget::survivingGadgets(BaseImage.Text, V.Image.Text);
      SurvivorSum += static_cast<double>(Survivors.size());
      auto Gadgets = gadget::classifyGadgets(V.Image.Text.data(),
                                             V.Image.Text.size());
      auto Usable = gadget::filterToSurvivors(Gadgets, Survivors);
      if (gadget::checkAttack(Usable, gadget::AttackModel::RopGadget)
              .Feasible)
        ++RopFeasible;
      if (gadget::checkAttack(Usable, gadget::AttackModel::Microgadget)
              .Feasible)
        ++MicroFeasible;
    }
    TotalFeasible += RopFeasible + MicroFeasible;
    Table.addRow({Script.Name, formatCount(NumVersions),
                  formatDouble(SurvivorSum / NumVersions, 1),
                  formatCount(RopFeasible) + "/" +
                      formatCount(NumVersions),
                  formatCount(MicroFeasible) + "/" +
                      formatCount(NumVersions)});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  Table.print(stdout);

  std::printf("\n%s\n",
              TotalFeasible == 0
                  ? "Result: no profile produced any attackable binary "
                    "(matches the paper)."
                  : "RESULT MISMATCH: some variants remained attackable!");
  return TotalFeasible == 0 ? 0 : 1;
}
