//===-- bench/fig4_performance.cpp - Paper Figure 4 -------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Regenerates Figure 4: "SPEC CPU 2006 performance overhead of NOP
// insertion" -- per-benchmark slowdown percentages for the five
// insertion configurations, plus the geometric-mean column.
//
// Method, mirroring Section 5.1: compile each benchmark at -O2, profile
// on the train input, build N diversified variants per configuration
// (paper: 5), execute each on the ref input in the cycle-cost simulator,
// and report mean slowdown versus the undiversified baseline. The
// simulator is deterministic, so the paper's 3-run averaging is not
// needed; variance across variants (random insertion) remains and is
// averaged exactly as in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pgsd;

int main() {
  const std::vector<bench::Config> Configs = bench::paperConfigs();
  const unsigned NumVariants = bench::variantCount(5);

  std::printf("Figure 4: SPEC CPU 2006 performance overhead of NOP "
              "insertion (slowdown %%)\n");
  std::printf("variants per cell: %u; profile input: train; measured "
              "input: ref\n\n",
              NumVariants);

  TablePrinter Table;
  std::vector<std::string> Header = {"Benchmark"};
  for (const bench::Config &C : Configs)
    Header.push_back(C.Label);
  Table.addRow(Header);

  // Per-config slowdown ratios for the geometric mean row.
  std::vector<std::vector<double>> Ratios(Configs.size());

  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "%s: compile failed\n%s", W.Name.c_str(),
                   P.errors().c_str());
      return 1;
    }
    if (!driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "%s: training run failed\n", W.Name.c_str());
      return 1;
    }
    mexec::RunResult Base = driver::execute(P.MIR, W.RefInput);
    if (Base.Trapped) {
      std::fprintf(stderr, "%s: baseline trapped: %s\n", W.Name.c_str(),
                   Base.TrapReason.c_str());
      return 1;
    }

    std::vector<std::string> Row = {W.Name};
    for (size_t CI = 0; CI != Configs.size(); ++CI) {
      std::vector<double> Overheads;
      for (uint64_t Seed = 1; Seed <= NumVariants; ++Seed) {
        mir::MModule V =
            diversity::makeVariant(P.MIR, Configs[CI].Opts, Seed);
        mexec::RunResult R = driver::execute(V, W.RefInput);
        if (R.Trapped || R.Checksum != Base.Checksum) {
          std::fprintf(stderr, "%s: variant diverged!\n", W.Name.c_str());
          return 1;
        }
        Overheads.push_back(R.cycles() / Base.cycles() - 1.0);
      }
      double MeanOverhead = mean(Overheads);
      Ratios[CI].push_back(1.0 + MeanOverhead);
      Row.push_back(formatDouble(100.0 * MeanOverhead, 2));
    }
    Table.addRow(Row);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  std::vector<std::string> GeoRow = {"Geometric Mean"};
  for (size_t CI = 0; CI != Configs.size(); ++CI)
    GeoRow.push_back(
        formatDouble(100.0 * (geometricMean(Ratios[CI]) - 1.0), 2));
  Table.addRow(GeoRow);

  Table.print(stdout);
  std::printf("\nPaper reference (geomean): ~8%% @ pNOP=50%%, <5%% @ 30%%, "
              "~2.5%% @ 10-50%%, ~1%% @ 0-30%%.\n");
  return 0;
}
