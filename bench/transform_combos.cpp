//===-- bench/transform_combos.cpp - Per-combo diversity cost/benefit ------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Sweeps every single transform and every pairwise combination of the
// diversity pipeline -- nop, shift, sched, regs and their 2-element
// compositions -- over the SPEC-like suite and reports, per combo:
//
//   * diversification throughput (wall time per variant, pipeline +
//     link),
//   * gadget survival against the undiversified baseline (the paper's
//     Table 2 metric, extended beyond NOP insertion), and
//   * text-size growth.
//
// The bench is self-checking: every variant it times is also proved
// observationally equivalent to the baseline by the translation
// validator; a refuted clean variant is a correctness bug and fails the
// run rather than publishing numbers.
//
// Output: BENCH_transforms.json (or argv[1]).
//
// Knobs:
//   PGSD_QUICK=1     -- 2 variants over a 5-workload subset (CI smoke).
//   PGSD_VARIANTS=N  -- variants per (workload, combo) cell (default 8).
//
//===----------------------------------------------------------------------===//

#include "analysis/Equiv.h"
#include "bench/BenchCommon.h"
#include "diversity/Transform.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "obs/Json.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return Default;
}

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Every single transform followed by every ordered pair, the same
/// matrix tests/TransformMatrixTest.cpp proves correct.
std::vector<diversity::Pipeline> comboPipelines() {
  using diversity::Pipeline;
  using diversity::TransformKind;
  std::vector<Pipeline> Out;
  for (unsigned A = 0; A != diversity::NumTransformKinds; ++A)
    Out.push_back(
        Pipeline({static_cast<TransformKind>(A)}));
  for (unsigned A = 0; A != diversity::NumTransformKinds; ++A)
    for (unsigned B = A + 1; B != diversity::NumTransformKinds; ++B)
      Out.push_back(Pipeline({static_cast<TransformKind>(A),
                              static_cast<TransformKind>(B)}));
  return Out;
}

struct ComboRow {
  std::string Label;
  uint64_t Variants = 0;
  // Baseline quantities are accumulated once per *variant* (not per
  // workload) so the ratios below weight every variant equally.
  uint64_t BaselineGadgets = 0;
  uint64_t SurvivingGadgets = 0;
  uint64_t BaselineBytes = 0;
  uint64_t VariantBytes = 0;
  double DiversifyWall = 0.0; ///< Pipeline + link, all variants.

  double survivalRate() const {
    return BaselineGadgets
               ? static_cast<double>(SurvivingGadgets) / BaselineGadgets
               : 0.0;
  }
  double sizeOverhead() const {
    return BaselineBytes
               ? static_cast<double>(VariantBytes) / BaselineBytes - 1.0
               : 0.0;
  }
  double msPerVariant() const {
    return Variants ? 1e3 * DiversifyWall / Variants : 0.0;
  }
};

void appendJsonRow(std::string &Out, const ComboRow &R, bool Last) {
  Out += "    {\"combo\": " + obs::jsonString(R.Label) +
         ", \"variants\": " + obs::jsonUInt(R.Variants) +
         ", \"ms_per_variant\": " + obs::jsonNumber(R.msPerVariant(), 4) +
         ", \"gadget_survival\": " +
         obs::jsonNumber(R.survivalRate(), 4) +
         ", \"size_overhead\": " + obs::jsonNumber(R.sizeOverhead(), 4) +
         "}" + (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_transforms.json";
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned VariantsPer = envUnsigned("PGSD_VARIANTS", Quick ? 2 : 8);

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads =
      Quick ? std::min<size_t>(5, Suite.size()) : Suite.size();

  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);

  // Compile and profile the suite once; every combo reuses the programs.
  struct Prepared {
    driver::Program P;
    codegen::Image Base;
    uint64_t BaselineGadgets = 0;
  };
  std::vector<Prepared> Programs;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    Prepared Prep;
    Prep.P = driver::compileProgram(W.Source, W.Name);
    if (!Prep.P.ok()) {
      std::fprintf(stderr, "transform_combos: %s failed to compile:\n%s",
                   W.Name.c_str(), Prep.P.errors().c_str());
      return 1;
    }
    if (!driver::profileAndStamp(Prep.P, W.TrainInput)) {
      std::fprintf(stderr, "transform_combos: %s training run trapped\n",
                   W.Name.c_str());
      return 1;
    }
    Prep.Base = driver::linkBaseline(Prep.P);
    Prep.BaselineGadgets =
        gadget::scanGadgets(Prep.Base.Text.data(), Prep.Base.Text.size())
            .size();
    Programs.push_back(std::move(Prep));
  }

  std::vector<ComboRow> Rows;
  for (const diversity::Pipeline &Pipe : comboPipelines()) {
    ComboRow Row;
    Row.Label = Pipe.label();
    for (const Prepared &Prep : Programs) {
      for (unsigned S = 0; S != VariantsPer; ++S) {
        uint64_t Seed = 0xc0b0ull + S;
        Row.BaselineGadgets += Prep.BaselineGadgets;
        Row.BaselineBytes += Prep.Base.Text.size();
        double T0 = now();
        driver::Variant V = driver::makeVariant(Prep.P, Pipe, Opts, Seed);
        Row.DiversifyWall += now() - T0;
        ++Row.Variants;
        Row.VariantBytes += V.Image.Text.size();
        Row.SurvivingGadgets +=
            gadget::survivingGadgets(Prep.Base.Text, V.Image.Text).size();
        verify::Report Rep = analysis::proveEquivalent(Prep.P.MIR, V.MIR);
        if (!Rep.ok()) {
          std::fprintf(stderr,
                       "transform_combos: %s: prover refuted a clean "
                       "'%s' variant (seed %llu):\n%s",
                       Prep.P.MIR.Name.c_str(), Row.Label.c_str(),
                       static_cast<unsigned long long>(Seed),
                       Rep.str().c_str());
          return 1;
        }
      }
    }
    std::printf("%-16s %3llu variants: %.2fms/variant, survival %.1f%%, "
                "size %+.1f%%\n",
                Row.Label.c_str(),
                static_cast<unsigned long long>(Row.Variants),
                Row.msPerVariant(), 100.0 * Row.survivalRate(),
                100.0 * Row.sizeOverhead());
    Rows.push_back(std::move(Row));
  }

  std::string Json;
  Json += "{\n";
  Json += "  \"variants_per_cell\": " + obs::jsonUInt(VariantsPer) + ",\n";
  Json += "  \"workloads\": " + obs::jsonUInt(NumWorkloads) + ",\n";
  Json += "  \"combos\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I)
    appendJsonRow(Json, Rows[I], I + 1 == Rows.size());
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "transform_combos: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
