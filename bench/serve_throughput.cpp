//===-- bench/serve_throughput.cpp - Cold vs. warm serving latency ----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Measures the `pgsdc serve` daemon core (serve::serveVariants) in its
// two steady states: a cold start that fills the content-addressed
// store (diversify + verify + link + publish per request) and a warm
// restart over the same store that must serve every request from disk.
// The per-request p50/p99 latencies and variants/second of both passes
// are recorded as JSON (BENCH_serve.json by default, or argv[1]).
//
// Knobs:
//   PGSD_QUICK=1     -- 16 requests over a 3-workload subset (CI smoke).
//   PGSD_REQUESTS=N  -- fleet size per workload (default 64).
//   PGSD_JOBS=J      -- fill worker count (default 4).
//
// The bench enforces the restart contract while measuring: the warm
// pass must be pure hits (zero fills), serve byte-identical digests,
// and land a p50 strictly below the cold pass -- a cache that is not
// faster than recompiling is a regression worth failing the bench over.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "obs/Json.h"
#include "serve/Server.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

namespace fs = std::filesystem;
using namespace pgsd;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return Default;
}

struct Row {
  std::string Name;
  serve::ServeResult Cold;
  serve::ServeResult Warm;

  double vps(const serve::ServeResult &R) const {
    return R.WallSeconds > 0.0
               ? static_cast<double>(R.Served) / R.WallSeconds
               : 0.0;
  }
};

void appendJsonRow(std::string &Out, const Row &R, bool Last) {
  Out += "    {\"name\": " + obs::jsonString(R.Name) +
         ", \"requests\": " + obs::jsonUInt(R.Cold.Served) +
         ", \"distinct\": " + obs::jsonUInt(R.Cold.DistinctVariants) +
         ", \"cold_wall_s\": " + obs::jsonNumber(R.Cold.WallSeconds, 4) +
         ", \"cold_p50_s\": " +
         obs::jsonNumber(R.Cold.P50LatencySeconds, 6) +
         ", \"cold_p99_s\": " +
         obs::jsonNumber(R.Cold.P99LatencySeconds, 6) +
         ", \"cold_vps\": " + obs::jsonNumber(R.vps(R.Cold), 2) +
         ", \"warm_wall_s\": " + obs::jsonNumber(R.Warm.WallSeconds, 4) +
         ", \"warm_p50_s\": " +
         obs::jsonNumber(R.Warm.P50LatencySeconds, 6) +
         ", \"warm_p99_s\": " +
         obs::jsonNumber(R.Warm.P99LatencySeconds, 6) +
         ", \"warm_vps\": " + obs::jsonNumber(R.vps(R.Warm), 2) +
         ", \"warm_hits\": " + obs::jsonUInt(R.Warm.Hits) + "}" +
         (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_serve.json";
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned Requests = envUnsigned("PGSD_REQUESTS", Quick ? 16 : 64);
  unsigned Jobs = envUnsigned("PGSD_JOBS", 4);

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads =
      Quick ? std::min<size_t>(3, Suite.size()) : Suite.size();

  fs::path Root = fs::temp_directory_path() /
                  ("pgsd-bench-serve-" + std::to_string(::getpid()));
  std::error_code EC;
  fs::remove_all(Root, EC);

  std::vector<Row> Rows;
  double ColdTotal = 0, WarmTotal = 0;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "serve_throughput: %s failed to compile:\n%s",
                   W.Name.c_str(), P.errors().c_str());
      return 1;
    }
    if (!driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "serve_throughput: %s training run trapped\n",
                   W.Name.c_str());
      return 1;
    }

    serve::ServeOptions O;
    O.StoreDir = (Root / W.Name).string();
    O.Requests = Requests;
    O.BaseSeed = 0xba7c0000ull + WI * 1000;
    O.Jobs = Jobs;
    // One bounded battery input per variant: the cold pass should be
    // dominated by the serving pipeline, not by interpreting the
    // hottest workloads eight times per request.
    O.Verify.InputBattery = {W.TrainInput};
    O.Diversity = diversity::DiversityOptions::profiled(
        diversity::ProbabilityModel::Log, 0.0, 0.3);

    Row R;
    R.Name = W.Name;
    R.Cold = serve::serveVariants(P, O);
    R.Warm = serve::serveVariants(P, O);
    for (const serve::ServeResult *S : {&R.Cold, &R.Warm})
      if (!S->ok() || S->Failed || S->Shed) {
        std::fprintf(stderr, "serve_throughput: %s: serve failed: %s\n",
                     W.Name.c_str(),
                     S->Error.empty() ? "requests failed or shed"
                                      : S->Error.c_str());
        return 1;
      }

    // Restart contract: all hits, identical artifacts, and a warm p50
    // strictly below cold (the whole point of the persistent store).
    if (R.Warm.Hits != Requests || R.Warm.Fills != 0) {
      std::fprintf(stderr,
                   "serve_throughput: %s: warm pass not pure hits "
                   "(%llu hits, %llu fills)\n",
                   W.Name.c_str(),
                   static_cast<unsigned long long>(R.Warm.Hits),
                   static_cast<unsigned long long>(R.Warm.Fills));
      return 1;
    }
    for (size_t I = 0; I != R.Cold.Requests.size(); ++I)
      if (R.Cold.Requests[I].TextDigest != R.Warm.Requests[I].TextDigest) {
        std::fprintf(stderr,
                     "serve_throughput: %s: warm digest diverges at "
                     "request %zu\n",
                     W.Name.c_str(), I);
        return 1;
      }
    if (R.Warm.P50LatencySeconds >= R.Cold.P50LatencySeconds) {
      std::fprintf(stderr,
                   "serve_throughput: %s: warm p50 %.6fs not below cold "
                   "p50 %.6fs\n",
                   W.Name.c_str(), R.Warm.P50LatencySeconds,
                   R.Cold.P50LatencySeconds);
      return 1;
    }

    ColdTotal += R.Cold.WallSeconds;
    WarmTotal += R.Warm.WallSeconds;
    std::printf("%-16s %3u requests: cold %.3fs (p50 %.6fs, p99 %.6fs), "
                "warm %.3fs (p50 %.6fs, p99 %.6fs), %llu distinct\n",
                W.Name.c_str(), Requests, R.Cold.WallSeconds,
                R.Cold.P50LatencySeconds, R.Cold.P99LatencySeconds,
                R.Warm.WallSeconds, R.Warm.P50LatencySeconds,
                R.Warm.P99LatencySeconds,
                static_cast<unsigned long long>(R.Cold.DistinctVariants));
    Rows.push_back(std::move(R));
  }
  fs::remove_all(Root, EC);

  double Ratio = WarmTotal > 0 ? ColdTotal / WarmTotal : 0.0;
  std::printf("total: cold %.3fs, warm %.3fs, restart speedup %.1fx "
              "(%u jobs, %u hardware threads)\n",
              ColdTotal, WarmTotal, Ratio, Jobs,
              support::ThreadPool::defaultConcurrency());

  std::string Json;
  Json += "{\n";
  Json += "  \"jobs\": " + obs::jsonUInt(Jobs) + ",\n";
  Json += "  \"hardware_concurrency\": " +
          obs::jsonUInt(support::ThreadPool::defaultConcurrency()) + ",\n";
  Json += "  \"requests_per_workload\": " + obs::jsonUInt(Requests) + ",\n";
  Json += "  \"total_cold_wall_s\": " + obs::jsonNumber(ColdTotal, 4) +
          ",\n";
  Json += "  \"total_warm_wall_s\": " + obs::jsonNumber(WarmTotal, 4) +
          ",\n";
  Json += "  \"restart_speedup\": " + obs::jsonNumber(Ratio, 3) +
          ",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I)
    appendJsonRow(Json, Rows[I], I + 1 == Rows.size());
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "serve_throughput: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
