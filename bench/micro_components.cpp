//===-- bench/micro_components.cpp - Component micro-benchmarks -------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// google-benchmark micro-benchmarks for the toolchain components: how
// fast the encoder emits, the decoder scans, the gadget scanner sweeps,
// the Survivor comparison runs, the NOP-insertion pass transforms, and
// the machine interpreter executes. These are engineering numbers (not
// from the paper) used to size experiments.
//
//===----------------------------------------------------------------------===//

#include "diversity/NopInsertion.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "workloads/Workloads.h"
#include "x86/Decoder.h"
#include "x86/Encoder.h"

#include <benchmark/benchmark.h>

using namespace pgsd;

namespace {

const driver::Program &milcProgram() {
  static driver::Program P = [] {
    const workloads::Workload &W = workloads::specWorkload("433.milc");
    driver::Program Prog = driver::compileProgram(W.Source, W.Name);
    driver::profileAndStamp(Prog, W.TrainInput);
    return Prog;
  }();
  return P;
}

const codegen::Image &milcImage() {
  static codegen::Image Img = driver::linkBaseline(milcProgram());
  return Img;
}

} // namespace

static void BM_EncoderEmit(benchmark::State &State) {
  std::vector<uint8_t> Out;
  Out.reserve(1 << 16);
  for (auto _ : State) {
    Out.clear();
    x86::Encoder E(Out);
    for (int I = 0; I != 1000; ++I) {
      E.movRI(x86::Reg::EAX, I);
      E.aluRR(x86::AluOp::Add, x86::Reg::EAX, x86::Reg::ECX);
      E.movStore(x86::Mem::base(x86::Reg::EBP, -8), x86::Reg::EAX);
      E.jccRel(x86::CondCode::NE);
    }
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * 4000);
}
BENCHMARK(BM_EncoderEmit);

static void BM_DecoderLinear(benchmark::State &State) {
  const codegen::Image &Img = milcImage();
  for (auto _ : State) {
    size_t Pos = 0;
    unsigned Count = 0;
    while (Pos < Img.Text.size()) {
      x86::Decoded D;
      if (!x86::decodeInstr(Img.Text.data() + Pos, Img.Text.size() - Pos,
                            D)) {
        ++Pos;
        continue;
      }
      Pos += D.Length;
      ++Count;
    }
    benchmark::DoNotOptimize(Count);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(milcImage().Text.size()));
}
BENCHMARK(BM_DecoderLinear);

static void BM_GadgetScan(benchmark::State &State) {
  const codegen::Image &Img = milcImage();
  for (auto _ : State) {
    auto Gadgets = gadget::scanGadgets(Img.Text.data(), Img.Text.size());
    benchmark::DoNotOptimize(Gadgets.size());
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(milcImage().Text.size()));
}
BENCHMARK(BM_GadgetScan);

static void BM_Survivor(benchmark::State &State) {
  const driver::Program &P = milcProgram();
  const codegen::Image &Base = milcImage();
  driver::Variant V = driver::makeVariant(
      P, diversity::DiversityOptions::uniform(0.5), 1);
  for (auto _ : State) {
    auto Survivors = gadget::survivingGadgets(Base.Text, V.Image.Text);
    benchmark::DoNotOptimize(Survivors.size());
  }
}
BENCHMARK(BM_Survivor);

static void BM_NopInsertionPass(benchmark::State &State) {
  const driver::Program &P = milcProgram();
  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);
  uint64_t Seed = 0;
  for (auto _ : State) {
    mir::MModule V = diversity::makeVariant(P.MIR, Opts, ++Seed);
    benchmark::DoNotOptimize(V.Functions.size());
  }
}
BENCHMARK(BM_NopInsertionPass);

static void BM_EmitAndLink(benchmark::State &State) {
  const driver::Program &P = milcProgram();
  for (auto _ : State) {
    codegen::Image Img = codegen::link(P.MIR);
    benchmark::DoNotOptimize(Img.Text.size());
  }
}
BENCHMARK(BM_EmitAndLink);

static void BM_InterpreterMips(benchmark::State &State) {
  driver::Program P = driver::compileProgram(
      "fn main() { var s = 0; var i = 0; while (i < 200000) { "
      "s = s + i * 3; i = i + 1; } return s; }",
      "mips");
  uint64_t Instructions = 0;
  for (auto _ : State) {
    mexec::RunResult R = driver::execute(P.MIR, {});
    Instructions += R.Instructions;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_InterpreterMips);

static void BM_FullPipelineCompile(benchmark::State &State) {
  const workloads::Workload &W = workloads::specWorkload("401.bzip2");
  for (auto _ : State) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    benchmark::DoNotOptimize(P.ok());
  }
}
BENCHMARK(BM_FullPipelineCompile);

BENCHMARK_MAIN();
