//===-- bench/batch_throughput.cpp - Serial vs. parallel batch speedup ------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Measures the parallel variant factory (driver::makeVariantsBatch)
// against its serial baseline: every workload of the SPEC-like suite is
// compiled and profiled once, then a seed population is diversified and
// verified at Jobs=1 and Jobs=J, and the wall-clock speedup is recorded
// as JSON (BENCH_batch.json by default, or argv[1]). With argv[2],
// pipeline telemetry is enabled and exported there as pgsd-metrics-v1
// JSON (per-phase timings of every batch the bench ran).
//
// Knobs:
//   PGSD_QUICK=1     -- 4 seeds over a 5-workload subset (CI smoke).
//   PGSD_VARIANTS=N  -- seeds per workload (default 16).
//   PGSD_JOBS=J      -- parallel worker count (default 8).
//
// The speedup this records is hardware-bound: on a single-core host the
// parallel pass degenerates to ~1x (the JSON carries
// hardware_concurrency so readers can tell). Determinism is asserted
// while measuring: both passes must produce byte-identical images.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Batch.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return Default;
}

struct Row {
  std::string Name;
  unsigned Seeds = 0;
  driver::BatchResult Serial;
  driver::BatchResult Parallel;

  double speedup() const {
    return Parallel.WallSeconds > 0.0
               ? Serial.WallSeconds / Parallel.WallSeconds
               : 0.0;
  }
};

// Numbers route through obs::jsonNumber so a zero-wall-clock ratio
// (NaN/inf) or a comma-decimal locale can never produce invalid JSON.
void appendJsonRow(std::string &Out, const Row &R, bool Last) {
  Out += "    {\"name\": " + obs::jsonString(R.Name) +
         ", \"seeds\": " + obs::jsonUInt(R.Seeds) +
         ", \"serial_wall_s\": " + obs::jsonNumber(R.Serial.WallSeconds, 4) +
         ", \"parallel_wall_s\": " +
         obs::jsonNumber(R.Parallel.WallSeconds, 4) +
         ", \"speedup\": " + obs::jsonNumber(R.speedup(), 3) +
         ", \"serial_vps\": " +
         obs::jsonNumber(R.Serial.variantsPerSecond(), 2) +
         ", \"parallel_vps\": " +
         obs::jsonNumber(R.Parallel.variantsPerSecond(), 2) +
         ", \"accepted\": " + obs::jsonUInt(R.Parallel.Accepted) +
         ", \"rejected\": " + obs::jsonUInt(R.Parallel.Rejected) +
         ", \"retried\": " + obs::jsonUInt(R.Parallel.Retried) + "}" +
         (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_batch.json";
  const char *MetricsPath = Argc > 2 ? Argv[2] : nullptr;
  if (MetricsPath)
    obs::setEnabled(true);
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned SeedsPer = envUnsigned("PGSD_VARIANTS", Quick ? 4 : 16);
  unsigned Jobs = envUnsigned("PGSD_JOBS", 8);

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads = Quick ? std::min<size_t>(5, Suite.size())
                              : Suite.size();

  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);

  std::vector<Row> Rows;
  double TotalSerial = 0, TotalParallel = 0;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "batch_throughput: %s failed to compile:\n%s",
                   W.Name.c_str(), P.errors().c_str());
      return 1;
    }
    if (!driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "batch_throughput: %s training run trapped\n",
                   W.Name.c_str());
      return 1;
    }

    std::vector<uint64_t> Seeds;
    for (unsigned S = 0; S != SeedsPer; ++S)
      Seeds.push_back(0xba7c0000ull + WI * 1000 + S);

    driver::BatchOptions Serial;
    Serial.Jobs = 1;
    // One bounded, known-terminating battery input per variant keeps the
    // measurement dominated by the pipeline under test rather than by
    // interpreting the hottest workloads eight times per seed.
    Serial.Verify.InputBattery = {W.TrainInput};
    driver::BatchOptions Parallel = Serial;
    Parallel.Jobs = Jobs;

    Row R;
    R.Name = W.Name;
    R.Seeds = SeedsPer;
    R.Serial = driver::makeVariantsBatch(P, Opts, Seeds, Serial);
    R.Parallel = driver::makeVariantsBatch(P, Opts, Seeds, Parallel);

    // Determinism parity while we are here: the two passes must agree
    // byte-for-byte (tests/BatchTest.cpp pins this; the bench refuses to
    // publish numbers for diverging runs).
    for (size_t I = 0; I != Seeds.size(); ++I)
      if (R.Serial.Variants[I].V.Image.Text !=
          R.Parallel.Variants[I].V.Image.Text) {
        std::fprintf(stderr,
                     "batch_throughput: %s: Jobs=1 and Jobs=%u images "
                     "differ at seed index %zu\n",
                     W.Name.c_str(), Jobs, I);
        return 1;
      }

    TotalSerial += R.Serial.WallSeconds;
    TotalParallel += R.Parallel.WallSeconds;
    std::printf("%-16s %2u seeds: serial %.3fs, %u jobs %.3fs, "
                "speedup %.2fx (%.1f variants/sec)\n",
                W.Name.c_str(), SeedsPer, R.Serial.WallSeconds, Jobs,
                R.Parallel.WallSeconds, R.speedup(),
                R.Parallel.variantsPerSecond());
    Rows.push_back(std::move(R));
  }

  double Speedup = TotalParallel > 0 ? TotalSerial / TotalParallel : 0.0;
  std::printf("total: serial %.3fs, parallel %.3fs, speedup %.2fx "
              "(%u jobs, %u hardware threads)\n",
              TotalSerial, TotalParallel, Speedup, Jobs,
              support::ThreadPool::defaultConcurrency());

  std::string Json;
  Json += "{\n";
  Json += "  \"jobs\": " + obs::jsonUInt(Jobs) + ",\n";
  Json += "  \"hardware_concurrency\": " +
          obs::jsonUInt(support::ThreadPool::defaultConcurrency()) + ",\n";
  Json += "  \"seeds_per_workload\": " + obs::jsonUInt(SeedsPer) + ",\n";
  Json += "  \"total_serial_wall_s\": " + obs::jsonNumber(TotalSerial, 4) +
          ",\n";
  Json += "  \"total_parallel_wall_s\": " +
          obs::jsonNumber(TotalParallel, 4) + ",\n";
  Json += "  \"speedup\": " + obs::jsonNumber(Speedup, 3) +
          ",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I)
    appendJsonRow(Json, Rows[I], I + 1 == Rows.size());
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "batch_throughput: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);

  if (MetricsPath) {
    obs::gaugeSet("bench.batch.speedup", Speedup);
    obs::counterAdd("bench.batch.workloads", Rows.size());
    if (!obs::writeMetricsJson(MetricsPath)) {
      std::fprintf(stderr, "batch_throughput: cannot write %s\n",
                   MetricsPath);
      return 1;
    }
    std::printf("wrote %s\n", MetricsPath);
  }
  return 0;
}
