//===-- bench/ablation_heuristic.cpp - Section 3.1 ablations ----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Regenerates the Section 3.1 analysis that motivates the logarithmic
// heuristic:
//   1. execution-count statistics per benchmark (the paper reports x_max
//      from 14M (gcc) to 4B (hmmer), and the astar median of 117,635
//      sitting far below its 2B maximum);
//   2. the linear-vs-log probability distribution on real profiles;
//   3. measured overhead and surviving gadgets under both heuristics,
//      plus the XCHG-NOP ablation (the bus-lock cost that made the paper
//      exclude those candidates).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pgsd;
using diversity::DiversityOptions;
using diversity::ProbabilityModel;

int main() {
  std::printf("Ablation: execution-count spread and the linear vs log "
              "heuristic (Section 3.1)\n\n");

  TablePrinter Stats;
  Stats.addRow({"Benchmark", "xmax", "median>0", "median/max",
                "p(median) linear", "p(median) log"});

  const char *Names[] = {"403.gcc",   "456.hmmer",    "473.astar",
                         "401.bzip2", "400.perlbench", "482.sphinx3"};
  struct Measured {
    std::string Name;
    driver::Program P;
  };
  std::vector<Measured> Programs;

  for (const char *Name : Names) {
    const workloads::Workload &W = workloads::specWorkload(Name);
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok() || !driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "%s: setup failed\n", Name);
      return 1;
    }
    uint64_t XMax = 0;
    std::vector<uint64_t> NonZero;
    for (const mir::MFunction &F : P.MIR.Functions)
      for (const mir::MBasicBlock &BB : F.Blocks) {
        XMax = std::max(XMax, BB.ProfileCount);
        if (BB.ProfileCount)
          NonZero.push_back(BB.ProfileCount);
      }
    uint64_t Median = medianCount(NonZero);

    DiversityOptions Lin =
        DiversityOptions::profiled(ProbabilityModel::Linear, 0.10, 0.50);
    DiversityOptions Log =
        DiversityOptions::profiled(ProbabilityModel::Log, 0.10, 0.50);
    Stats.addRow(
        {Name, formatCount(XMax), formatCount(Median),
         formatDouble(static_cast<double>(Median) /
                          static_cast<double>(XMax),
                      6),
         formatPercent(100.0 * diversity::nopProbability(Median, XMax, Lin),
                       1),
         formatPercent(100.0 * diversity::nopProbability(Median, XMax, Log),
                       1)});
    Programs.push_back({Name, std::move(P)});
  }
  Stats.print(stdout);
  std::printf("\nThe linear heuristic pins mid-frequency blocks at pmax "
              "(paper: \"would simply polarize the probabilities\"); the "
              "log heuristic places them mid-interval.\n\n");

  // Measured consequences on one representative benchmark.
  std::printf("Measured consequences (pNOP=10-50%%, mean of 3 variants)\n\n");
  TablePrinter Out;
  Out.addRow({"Benchmark", "Heuristic", "NOPs inserted", "Slowdown",
              "Survivors"});
  for (Measured &M : Programs) {
    const workloads::Workload &W = workloads::specWorkload(M.Name);
    codegen::Image Base = driver::linkBaseline(M.P);
    double BaseCycles = driver::execute(M.P.MIR, W.RefInput).cycles();
    for (ProbabilityModel Model :
         {ProbabilityModel::Linear, ProbabilityModel::Log}) {
      DiversityOptions Opts =
          DiversityOptions::profiled(Model, 0.10, 0.50);
      double Nops = 0, Overhead = 0, Survivors = 0;
      const unsigned Seeds = 3;
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        diversity::InsertionStats S;
        driver::Variant V = driver::makeVariant(M.P, Opts, Seed);
        S = V.Stats;
        Nops += static_cast<double>(S.NopsInserted);
        Overhead +=
            driver::execute(V.MIR, W.RefInput).cycles() / BaseCycles - 1.0;
        Survivors += static_cast<double>(
            gadget::survivingGadgets(Base.Text, V.Image.Text).size());
      }
      Out.addRow({M.Name,
                  Model == ProbabilityModel::Linear ? "linear" : "log",
                  formatDouble(Nops / Seeds, 0),
                  formatPercent(100.0 * Overhead / Seeds, 2),
                  formatDouble(Survivors / Seeds, 1)});
    }
  }
  Out.print(stdout);

  // XCHG ablation on the hottest-overhead benchmark.
  std::printf("\nXCHG-NOP ablation (482.sphinx3, pNOP=30%% uniform): the "
              "bus-locking pair was excluded by the paper.\n");
  {
    Measured &M = Programs.back(); // sphinx3
    const workloads::Workload &W = workloads::specWorkload(M.Name);
    double BaseCycles = driver::execute(M.P.MIR, W.RefInput).cycles();
    DiversityOptions Plain = DiversityOptions::uniform(0.30);
    DiversityOptions WithXchg = DiversityOptions::uniform(0.30);
    WithXchg.IncludeXchgNops = true;
    double PlainOv =
        driver::execute(diversity::makeVariant(M.P.MIR, Plain, 1), W.RefInput)
            .cycles() /
        BaseCycles * 100.0 - 100.0;
    double XchgOv =
        driver::execute(diversity::makeVariant(M.P.MIR, WithXchg, 1),
                        W.RefInput)
            .cycles() /
        BaseCycles * 100.0 - 100.0;
    std::printf("  5 candidates: %+.2f%%   7 candidates (with XCHG): "
                "%+.2f%%\n",
                PlainOv, XchgOv);
  }
  return 0;
}
