//===-- bench/equiv_throughput.cpp - Static proof vs. dynamic diff cost ----===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Measures what translation validation buys: for every workload of the
// SPEC-like suite, a population of diversified variants is checked two
// ways --
//
//   static:  analysis::proveEquivalent, the symbolic equivalence proof
//            (no execution at all), and
//   dynamic: verify::verifyVariant restricted to differential execution
//            over the default input battery (image/structure/profile
//            families off, baseline runs served from a shared
//            BaselineCache, i.e. the marginal cost a batch pays per
//            variant),
//
// and the per-variant wall costs are recorded as JSON (BENCH_equiv.json
// by default, or argv[1]). The bench is self-checking: a clean variant
// refuted by the prover, or a variant the two checkers disagree on, is
// a correctness bug and fails the run rather than publishing numbers.
//
// Knobs:
//   PGSD_QUICK=1     -- 4 variants over a 5-workload subset (CI smoke).
//   PGSD_VARIANTS=N  -- variants per workload (default 16).
//
//===----------------------------------------------------------------------===//

#include "analysis/Equiv.h"
#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "obs/Json.h"
#include "verify/BaselineCache.h"
#include "verify/Verifier.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;

namespace {

unsigned envUnsigned(const char *Name, unsigned Default) {
  if (const char *V = std::getenv(Name)) {
    int N = std::atoi(V);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return Default;
}

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string Name;
  unsigned Variants = 0;
  uint64_t FunctionsProved = 0;
  double StaticWall = 0.0;
  double DynamicWall = 0.0;

  double ratio() const {
    return StaticWall > 0.0 ? DynamicWall / StaticWall : 0.0;
  }
};

void appendJsonRow(std::string &Out, const Row &R, bool Last) {
  Out += "    {\"name\": " + obs::jsonString(R.Name) +
         ", \"variants\": " + obs::jsonUInt(R.Variants) +
         ", \"functions_proved\": " + obs::jsonUInt(R.FunctionsProved) +
         ", \"static_wall_s\": " + obs::jsonNumber(R.StaticWall, 5) +
         ", \"static_per_variant_ms\": " +
         obs::jsonNumber(R.Variants ? 1e3 * R.StaticWall / R.Variants : 0,
                         4) +
         ", \"dynamic_wall_s\": " + obs::jsonNumber(R.DynamicWall, 5) +
         ", \"dynamic_per_variant_ms\": " +
         obs::jsonNumber(R.Variants ? 1e3 * R.DynamicWall / R.Variants : 0,
                         4) +
         ", \"dynamic_over_static\": " + obs::jsonNumber(R.ratio(), 2) +
         "}" + (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_equiv.json";
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  unsigned VariantsPer = envUnsigned("PGSD_VARIANTS", Quick ? 4 : 16);

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  size_t NumWorkloads =
      Quick ? std::min<size_t>(5, Suite.size()) : Suite.size();

  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);

  std::vector<Row> Rows;
  double TotalStatic = 0, TotalDynamic = 0;
  uint64_t TotalVariants = 0;
  for (size_t WI = 0; WI != NumWorkloads; ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "equiv_throughput: %s failed to compile:\n%s",
                   W.Name.c_str(), P.errors().c_str());
      return 1;
    }
    if (!driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "equiv_throughput: %s training run trapped\n",
                   W.Name.c_str());
      return 1;
    }

    // Build the population up front so neither timed section pays for
    // diversification or linking.
    std::vector<driver::Variant> Variants;
    Variants.reserve(VariantsPer);
    for (unsigned S = 0; S != VariantsPer; ++S)
      Variants.push_back(
          driver::makeVariant(P, Opts, 0xe9010000ull + WI * 1000 + S));

    Row R;
    R.Name = W.Name;
    R.Variants = VariantsPer;

    // Static: the symbolic proof, every variant against the baseline.
    double T0 = now();
    for (const driver::Variant &V : Variants) {
      analysis::EquivStats S;
      verify::Report Rep = analysis::proveEquivalent(
          P.MIR, V.MIR, analysis::EquivOptions(), &S);
      if (!Rep.ok()) {
        std::fprintf(stderr,
                     "equiv_throughput: %s: prover refuted a clean "
                     "variant:\n%s",
                     W.Name.c_str(), Rep.str().c_str());
        return 1;
      }
      R.FunctionsProved += S.FunctionsProved;
    }
    R.StaticWall = now() - T0;

    // Dynamic: differential execution only, marginal cost (baseline
    // runs come from the shared cache, as in a production batch).
    verify::VerifyOptions VO;
    VO.CheckImage = false;
    VO.CheckStructure = false;
    VO.CheckProfile = false;
    verify::BaselineCache Cache(P.MIR, VO);
    VO.Cache = &Cache;
    T0 = now();
    for (const driver::Variant &V : Variants) {
      verify::Report Rep = verify::verifyVariant(P.MIR, V.MIR, V.Image, VO);
      if (!Rep.ok()) {
        std::fprintf(stderr,
                     "equiv_throughput: %s: differential execution "
                     "rejected a clean variant:\n%s",
                     W.Name.c_str(), Rep.str().c_str());
        return 1;
      }
    }
    R.DynamicWall = now() - T0;

    TotalStatic += R.StaticWall;
    TotalDynamic += R.DynamicWall;
    TotalVariants += VariantsPer;
    std::printf("%-16s %2u variants: static %.2fms/variant, dynamic "
                "%.2fms/variant (%.1fx)\n",
                W.Name.c_str(), VariantsPer,
                1e3 * R.StaticWall / VariantsPer,
                1e3 * R.DynamicWall / VariantsPer, R.ratio());
    Rows.push_back(std::move(R));
  }

  double Ratio = TotalStatic > 0 ? TotalDynamic / TotalStatic : 0.0;
  std::printf("total: %llu variants, static %.3fs, dynamic %.3fs, "
              "dynamic/static %.1fx\n",
              static_cast<unsigned long long>(TotalVariants), TotalStatic,
              TotalDynamic, Ratio);

  std::string Json;
  Json += "{\n";
  Json += "  \"variants_per_workload\": " + obs::jsonUInt(VariantsPer) +
          ",\n";
  Json += "  \"total_variants\": " + obs::jsonUInt(TotalVariants) + ",\n";
  Json += "  \"total_static_wall_s\": " + obs::jsonNumber(TotalStatic, 4) +
          ",\n";
  Json +=
      "  \"total_dynamic_wall_s\": " + obs::jsonNumber(TotalDynamic, 4) +
      ",\n";
  Json += "  \"dynamic_over_static\": " + obs::jsonNumber(Ratio, 2) +
          ",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I)
    appendJsonRow(Json, Rows[I], I + 1 == Rows.size());
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "equiv_throughput: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);
  return 0;
}
