//===-- bench/nvx_sensor.cpp - Divergence as a fault sensor -----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// The headline N-variant experiment: faults that a *single* variant
// executes silently are caught by cross-variant divergence. For every
// MIR-level fault class (analysis/MirFault.h), seeded corruptions are
// injected into one replica of a K=3 majority-vote lockstep session --
// through the post-verification tamper seam, i.e. exactly the window a
// memory-corruption attack or bitflip would hit -- and detection is
// compared against the only signal a lone variant has: trapping.
//
// Each injected run is pre-screened standalone:
//  * a corruption that no longer passes mir::verify is unrunnable -- the
//    nvx loader rejects it (counted as a load-time detection);
//  * a runnable corruption whose behaviour signature matches the
//    pristine replica on every battery input is dynamically inert here
//    (the image-level FaultInjector classes are in the same boat: mexec
//    executes MIR, not image bytes). Inert runs are excluded from the
//    detection denominator and reported separately -- catching them is
//    the static analyzer's job (analysis/Analysis.h), not the sensor's.
//
// For active runs the sensor is deterministic: a replica whose signature
// differs from its pristine self must lose the vote against replicas
// that preserve baseline behaviour. The bench asserts >= 90% detection
// over active + load-rejected runs and that at least one
// workload/class cell combines 0% single-variant (trap) detection with
// full divergence detection (per cell, because a class fully silent on
// one workload may trap occasionally on another).
//
// Also records overhead-vs-K: lockstep wall/CPU per round for K in
// {1,2,3,5} on one representative workload, against the K=1 floor.
//
// Output: BENCH_nvx.json (or argv[1]); PGSD_QUICK=1 shrinks the sweep.
//
//===----------------------------------------------------------------------===//

#include "analysis/MirFault.h"
#include "bench/BenchCommon.h"
#include "mexec/Precompiled.h"
#include "nvx/Nvx.h"
#include "obs/Json.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace pgsd;

namespace {

struct ClassStats {
  uint64_t Injections = 0;   ///< Eligible injection sites found.
  uint64_t LoadRejected = 0; ///< Failed mir::verify; rejected at load.
  uint64_t Active = 0;       ///< Runnable, behaviour differs on battery.
  uint64_t Inert = 0;        ///< Runnable, battery-indistinguishable.
  uint64_t SingleDetected = 0; ///< Active runs trapping standalone.
  uint64_t NvxDetected = 0;    ///< Active runs flagged by divergence.
  /// Some workload where every active corruption of this class ran
  /// silently in a single variant yet divergence caught all of them --
  /// the per-cell form of the headline claim (aggregating across
  /// workloads can hide it: a class fully silent on one workload may
  /// trap occasionally on another).
  bool HasSilentCell = false;
};

struct OverheadRow {
  unsigned K = 0;
  uint64_t Rounds = 0;
  double WallSeconds = 0.0;
  double CpuSeconds = 0.0;
};

mexec::RunOptions runOptions(const std::vector<int32_t> &Input) {
  mexec::RunOptions RO;
  RO.Input = Input;
  RO.MaxSteps = 200'000'000;
  RO.CollectOutput = true;
  return RO;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = Argc > 1 ? Argv[1] : "BENCH_nvx.json";
  bool Quick = [] {
    const char *Q = std::getenv("PGSD_QUICK");
    return Q && Q[0] == '1';
  }();
  const unsigned SeedsPerClass = Quick ? 3 : 8;
  const size_t NumWorkloads = Quick ? 2 : 4;
  const unsigned K = 3;

  const std::vector<workloads::Workload> &Suite = workloads::specSuite();
  std::vector<ClassStats> Stats(analysis::NumMirFaultClasses);

  auto Diversity = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);

  std::vector<OverheadRow> Overhead;

  for (size_t WI = 0; WI != std::min(NumWorkloads, Suite.size()); ++WI) {
    const workloads::Workload &W = Suite[WI];
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok() || !driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "nvx_sensor: %s failed to prepare\n",
                   W.Name.c_str());
      return 1;
    }
    std::vector<std::vector<int32_t>> Battery = {W.TrainInput,
                                                 W.RefInput};

    nvx::NvxOptions Base;
    Base.Replicas = K;
    Base.Policy = nvx::VotePolicy::Majority;
    Base.Diversity = Diversity;
    // One bounded battery input for spawn verification keeps the sweep
    // dominated by the sensor under test, not by re-verification.
    Base.Verify.InputBattery = {W.TrainInput};
    Base.EjectAfter = 1; // Eject on first lost vote: exercises respawn.

    for (unsigned CI = 0; CI != analysis::NumMirFaultClasses; ++CI) {
      auto Class = static_cast<analysis::MirFaultClass>(CI);
      uint64_t CellActive = 0, CellSingle = 0, CellNvx = 0;
      for (unsigned SI = 0; SI != SeedsPerClass; ++SI) {
        uint64_t FaultSeed = 0xfa017ull + WI * 1000 + CI * 100 + SI;

        // The seam fires once per spawned replica; corrupt replica 0
        // and stash pristine/corrupted copies for the pre-screen.
        mir::MModule Pristine, Corrupted;
        bool Injected = false;
        nvx::NvxOptions N = Base;
        N.BaseSeed = 1 + WI * 10000 + CI * 1000 + SI * 10;
        N.TamperReplica = [&](unsigned Replica, mir::MModule &M) {
          if (Replica != 0)
            return;
          Pristine = M;
          Injected = analysis::injectMirFault(M, Class, FaultSeed);
          if (Injected)
            Corrupted = M;
        };
        nvx::NvxResult Session = nvx::runLockstep(P, Battery, N);

        ClassStats &CS = Stats[CI];
        if (!Injected)
          continue; // No eligible site; nothing was tested.
        ++CS.Injections;

        if (!mir::verify(Corrupted).empty()) {
          // Unrunnable: both engines (and the nvx loader) refuse it.
          ++CS.LoadRejected;
          if (Session.LoadRejections == 0) {
            std::fprintf(stderr,
                         "nvx_sensor: %s/%s: unrunnable corruption not "
                         "rejected at load\n",
                         W.Name.c_str(),
                         analysis::mirFaultClassName(Class));
            return 1;
          }
          continue;
        }

        // Standalone pre-screen: does the corruption change behaviour
        // on this battery at all, and does it *trap* (the only signal
        // a single deployed variant gives)?
        mexec::Precompiled PristineEng(Pristine);
        mexec::Precompiled CorruptedEng(Corrupted);
        bool ActiveHere = false, TrapsAnew = false;
        for (const std::vector<int32_t> &Input : Battery) {
          mexec::RunOptions RO = runOptions(Input);
          mexec::RunResult A = PristineEng.run(RO);
          mexec::RunResult B = CorruptedEng.run(RO);
          if (!(nvx::signatureOf(A) == nvx::signatureOf(B)))
            ActiveHere = true;
          if (B.Trapped && !A.Trapped)
            TrapsAnew = true;
        }
        if (!ActiveHere) {
          ++CS.Inert;
          continue;
        }
        ++CS.Active;
        ++CellActive;
        if (TrapsAnew) {
          ++CS.SingleDetected;
          ++CellSingle;
        }
        if (Session.divergenceDetected()) {
          ++CS.NvxDetected;
          ++CellNvx;
        }
      }
      if (CellActive > 0 && CellSingle == 0 && CellNvx == CellActive)
        Stats[CI].HasSilentCell = true;
    }

    // Overhead-vs-K on the first workload only (rates above already
    // cover every workload).
    if (WI == 0) {
      for (unsigned KN : {1u, 2u, 3u, 5u}) {
        nvx::NvxOptions N = Base;
        N.Replicas = KN;
        N.BaseSeed = 0x0e0e;
        nvx::NvxResult S = nvx::runLockstep(P, Battery, N);
        OverheadRow Row;
        Row.K = KN;
        Row.Rounds = S.Rounds;
        Row.WallSeconds = S.LockstepWallSeconds;
        Row.CpuSeconds = S.LockstepCpuSeconds;
        Overhead.push_back(Row);
      }
    }
  }

  // --- Report. ---
  uint64_t Denominator = 0, Detected = 0;
  bool HaveSilentClass = false;
  std::printf("%-20s %10s %6s %6s %6s %12s %10s\n", "class", "injected",
              "load", "inert", "active", "single-rate", "nvx-rate");
  for (unsigned CI = 0; CI != analysis::NumMirFaultClasses; ++CI) {
    const ClassStats &CS = Stats[CI];
    Denominator += CS.Active + CS.LoadRejected;
    Detected += CS.NvxDetected + CS.LoadRejected;
    double SingleRate =
        CS.Active ? static_cast<double>(CS.SingleDetected) / CS.Active
                  : 0.0;
    double NvxRate =
        CS.Active ? static_cast<double>(CS.NvxDetected) / CS.Active : 0.0;
    if (CS.HasSilentCell)
      HaveSilentClass = true;
    std::printf("%-20s %10llu %6llu %6llu %6llu %11.0f%% %9.0f%%\n",
                analysis::mirFaultClassName(
                    static_cast<analysis::MirFaultClass>(CI)),
                static_cast<unsigned long long>(CS.Injections),
                static_cast<unsigned long long>(CS.LoadRejected),
                static_cast<unsigned long long>(CS.Inert),
                static_cast<unsigned long long>(CS.Active),
                100.0 * SingleRate, 100.0 * NvxRate);
  }
  double Rate = Denominator
                    ? static_cast<double>(Detected) / Denominator
                    : 0.0;
  std::printf("aggregate: %llu/%llu detected (%.1f%%) over active + "
              "load-rejected runs at K=%u majority\n",
              static_cast<unsigned long long>(Detected),
              static_cast<unsigned long long>(Denominator), 100.0 * Rate,
              K);
  for (const OverheadRow &Row : Overhead)
    std::printf("overhead: K=%u: %.4fs wall, %.4fs cpu over %llu "
                "rounds (%.2fx wall vs K=1)\n",
                Row.K, Row.WallSeconds, Row.CpuSeconds,
                static_cast<unsigned long long>(Row.Rounds),
                Overhead[0].WallSeconds > 0
                    ? Row.WallSeconds / Overhead[0].WallSeconds
                    : 0.0);

  std::string Json;
  Json += "{\n";
  Json += "  \"replicas\": " + obs::jsonUInt(K) + ",\n";
  Json += "  \"policy\": \"majority\",\n";
  Json += "  \"seeds_per_class\": " + obs::jsonUInt(SeedsPerClass) + ",\n";
  Json += "  \"workloads\": " +
          obs::jsonUInt(std::min(NumWorkloads, Suite.size())) + ",\n";
  Json += "  \"per_class\": [\n";
  for (unsigned CI = 0; CI != analysis::NumMirFaultClasses; ++CI) {
    const ClassStats &CS = Stats[CI];
    double SingleRate =
        CS.Active ? static_cast<double>(CS.SingleDetected) / CS.Active
                  : 0.0;
    double NvxRate =
        CS.Active ? static_cast<double>(CS.NvxDetected) / CS.Active : 0.0;
    Json += "    {\"class\": " +
            obs::jsonString(analysis::mirFaultClassName(
                static_cast<analysis::MirFaultClass>(CI))) +
            ", \"injections\": " + obs::jsonUInt(CS.Injections) +
            ", \"load_rejected\": " + obs::jsonUInt(CS.LoadRejected) +
            ", \"inert\": " + obs::jsonUInt(CS.Inert) +
            ", \"active\": " + obs::jsonUInt(CS.Active) +
            ", \"single_variant_rate\": " + obs::jsonNumber(SingleRate, 4) +
            ", \"nvx_divergence_rate\": " + obs::jsonNumber(NvxRate, 4) +
            ", \"silent_cell\": " + (CS.HasSilentCell ? "true" : "false") +
            "}" +
            (CI + 1 == analysis::NumMirFaultClasses ? "\n" : ",\n");
  }
  Json += "  ],\n";
  Json += "  \"aggregate\": {\"denominator\": " + obs::jsonUInt(Denominator) +
          ", \"detected\": " + obs::jsonUInt(Detected) +
          ", \"rate\": " + obs::jsonNumber(Rate, 4) + "},\n";
  Json += "  \"overhead_vs_k\": [\n";
  for (size_t I = 0; I != Overhead.size(); ++I) {
    const OverheadRow &Row = Overhead[I];
    Json += "    {\"k\": " + obs::jsonUInt(Row.K) +
            ", \"rounds\": " + obs::jsonUInt(Row.Rounds) +
            ", \"lockstep_wall_s\": " + obs::jsonNumber(Row.WallSeconds, 5) +
            ", \"lockstep_cpu_s\": " + obs::jsonNumber(Row.CpuSeconds, 5) +
            ", \"relative_wall\": " +
            obs::jsonNumber(Overhead[0].WallSeconds > 0
                                ? Row.WallSeconds / Overhead[0].WallSeconds
                                : 0.0,
                            3) +
            "}" + (I + 1 == Overhead.size() ? "\n" : ",\n");
  }
  Json += "  ]\n}\n";

  std::FILE *Out = std::fopen(OutPath, "w");
  if (!Out) {
    std::fprintf(stderr, "nvx_sensor: cannot write %s\n", OutPath);
    return 1;
  }
  std::fputs(Json.c_str(), Out);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath);

  if (Rate < 0.90) {
    std::fprintf(stderr,
                 "nvx_sensor: detection rate %.1f%% below the 90%% "
                 "acceptance floor\n",
                 100.0 * Rate);
    return 1;
  }
  if (!HaveSilentClass) {
    std::fprintf(stderr,
                 "nvx_sensor: no workload/class cell combined 0%% "
                 "single-variant detection with full divergence "
                 "detection\n");
    return 1;
  }
  return 0;
}
