//===-- bench/table2_surviving_gadgets.cpp - Paper Table 2 ------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Regenerates Table 2: "Surviving gadgets on SPEC CPU 2006 binaries".
// For each benchmark (sorted by baseline gadget count, like the paper)
// and each insertion configuration, builds N diversified variants
// (paper: 25), runs the Survivor comparison against the undiversified
// binary, and reports the mean surviving-gadget count. The last two
// columns reproduce the paper's summary: Extra% (pNOP=0-30% vs pNOP=50%,
// best-to-worst) and Surviving% (pNOP=0-30% survivors / baseline).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>

using namespace pgsd;

namespace {

struct RowResult {
  std::string Name;
  uint64_t Baseline = 0;
  std::vector<double> MeanSurvivors; // per config
};

} // namespace

int main() {
  const std::vector<bench::Config> Configs = bench::paperConfigs();
  const unsigned NumVariants = bench::variantCount(25);

  std::printf("Table 2: surviving gadgets on SPEC CPU 2006 binaries\n");
  std::printf("variants per cell: %u (paper: 25); Survivor algorithm per "
              "Section 5.2\n\n",
              NumVariants);

  std::vector<RowResult> Rows;
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok()) {
      std::fprintf(stderr, "%s: compile failed\n", W.Name.c_str());
      return 1;
    }
    if (!driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "%s: training failed\n", W.Name.c_str());
      return 1;
    }
    codegen::Image Base = driver::linkBaseline(P);

    RowResult Row;
    Row.Name = W.Name;
    Row.Baseline =
        gadget::scanGadgets(Base.Text.data(), Base.Text.size()).size();

    for (const bench::Config &C : Configs) {
      // One Survivor sweep per config: survivingGadgetsMulti scans the
      // baseline image once and probes every variant against it.
      std::vector<std::vector<uint8_t>> Versions;
      Versions.reserve(NumVariants);
      for (uint64_t Seed = 1; Seed <= NumVariants; ++Seed)
        Versions.push_back(
            driver::makeVariant(P, C.Opts, Seed).Image.Text);
      std::vector<double> Counts;
      for (const auto &Survivors :
           gadget::survivingGadgetsMulti(Base.Text, Versions))
        Counts.push_back(static_cast<double>(Survivors.size()));
      Row.MeanSurvivors.push_back(mean(Counts));
    }
    Rows.push_back(std::move(Row));
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  // The paper sorts by baseline gadget count.
  std::sort(Rows.begin(), Rows.end(),
            [](const RowResult &A, const RowResult &B) {
              return A.Baseline < B.Baseline;
            });

  TablePrinter Table;
  std::vector<std::string> Header = {"Benchmark", "Baseline"};
  for (const bench::Config &C : Configs)
    Header.push_back(C.Label);
  Header.push_back("Extra%");
  Header.push_back("Surviving%");
  Table.addRow(Header);

  for (const RowResult &Row : Rows) {
    std::vector<std::string> Cells = {Row.Name, formatCount(Row.Baseline)};
    for (double M : Row.MeanSurvivors)
      Cells.push_back(formatDouble(M, 2));
    // Extra% = (best config survivors / worst config survivors) - 1,
    // i.e. pNOP=0-30% (index 4) versus pNOP=50% (index 0).
    double Extra = Row.MeanSurvivors[0] > 0
                       ? 100.0 * (Row.MeanSurvivors[4] /
                                      Row.MeanSurvivors[0] -
                                  1.0)
                       : 0.0;
    Cells.push_back(formatPercent(Extra, 0));
    double Surviving =
        Row.Baseline
            ? 100.0 * Row.MeanSurvivors[4] /
                  static_cast<double>(Row.Baseline)
            : 0.0;
    Cells.push_back(formatPercent(Surviving, 2));
    Table.addRow(Cells);
  }
  Table.print(stdout);

  std::printf("\nExpected shape (paper): Surviving%% falls as binaries "
              "grow (18%% for lbm down to 0.05%% for xalancbmk); Extra%% "
              "stays modest except the astar-like outlier.\n");
  return 0;
}
