//===-- bench/table3_multiversion.cpp - Paper Table 3 -----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Regenerates Table 3: "Surviving gadgets ... on a sample of 25
// different binaries" -- for each benchmark and configuration, how many
// gadget identities (offset + normalized content) appear in at least
// 2, 5, and 12 of the 25 diversified versions. The paper's reading:
// the >=12 column is an essentially constant floor contributed by the
// undiversified C-library objects; we also print that stub's own gadget
// count for comparison, and (extension) one run with the stub
// diversified too, which removes the floor.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>

using namespace pgsd;

int main() {
  const std::vector<bench::Config> Configs = bench::paperConfigs();
  const unsigned NumVersions = bench::variantCount(25);
  auto Scale = [&](unsigned T) {
    return std::max(1u, (NumVersions * T + 12) / 25);
  };
  // The paper's 2/5/12-of-25 thresholds, scaled to the version count.
  const std::vector<unsigned> Thresholds = {Scale(2), Scale(5), Scale(12)};
  std::printf("Table 3: gadgets surviving in at least %u/%u/%u of %u "
              "versions\n\n",
              Thresholds[0], Thresholds[1], Thresholds[2], NumVersions);

  TablePrinter Table;
  std::vector<std::string> Header = {"Benchmark"};
  for (unsigned T : Thresholds)
    for (const bench::Config &C : Configs)
      Header.push_back(">=" + std::to_string(T) + " " + C.Label);
  Table.addRow(Header);

  uint64_t StubGadgets = 0;
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok() || !driver::profileAndStamp(P, W.TrainInput)) {
      std::fprintf(stderr, "%s: setup failed\n", W.Name.c_str());
      return 1;
    }

    std::vector<std::string> Row = {W.Name};
    // Collect per config first so the row is printed threshold-major,
    // matching the paper's column grouping.
    std::vector<std::vector<uint64_t>> PerConfig;
    for (const bench::Config &C : Configs) {
      std::vector<std::vector<uint8_t>> Versions;
      Versions.reserve(NumVersions);
      for (uint64_t Seed = 1; Seed <= NumVersions; ++Seed) {
        driver::Variant V = driver::makeVariant(P, C.Opts, Seed);
        if (StubGadgets == 0)
          StubGadgets = gadget::scanGadgets(V.Image.Text.data(),
                                            V.Image.StubSize)
                            .size();
        Versions.push_back(std::move(V.Image.Text));
      }
      // Shard the per-version scans across all cores; the merged counts
      // are independent of the worker count.
      gadget::ScanOptions ScanOpts;
      ScanOpts.Jobs = 0;
      PerConfig.push_back(
          gadget::gadgetsInAtLeast(Versions, Thresholds, ScanOpts));
    }
    for (size_t T = 0; T != Thresholds.size(); ++T)
      for (size_t CI = 0; CI != Configs.size(); ++CI)
        Row.push_back(formatCount(PerConfig[CI][T]));
    Table.addRow(Row);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  Table.print(stdout);

  std::printf("\nUndiversified C-runtime stub contributes %llu gadgets "
              "(the floor of the last column group).\n",
              static_cast<unsigned long long>(StubGadgets));

  // Extension run: diversify the stub too (paper Section 5.2: "could be
  // easily fixed in practice by also diversifying the C library code").
  {
    const workloads::Workload &W = workloads::specWorkload("433.milc");
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    if (!P.ok() || !driver::profileAndStamp(P, W.TrainInput))
      return 1;
    auto Opts = Configs.back().Opts; // pNOP=0-30%
    std::vector<std::vector<uint8_t>> Fixed, Diversified;
    for (uint64_t Seed = 1; Seed <= NumVersions; ++Seed) {
      Fixed.push_back(driver::makeVariant(P, Opts, Seed).Image.Text);
      codegen::LinkOptions Link;
      Link.DiversifyStub = true;
      Link.StubSeed = Seed;
      Diversified.push_back(
          driver::makeVariant(P, Opts, Seed, Link).Image.Text);
    }
    auto FixedFloor =
        gadget::gadgetsInAtLeast(Fixed, {Thresholds.back()})[0];
    auto DivFloor =
        gadget::gadgetsInAtLeast(Diversified, {Thresholds.back()})[0];
    std::printf("\nExtension (433.milc, pNOP=0-30%%): >=%u-of-%u floor "
                "with fixed libc stub: %llu; with diversified stub: "
                "%llu.\n",
                Thresholds.back(), NumVersions,
                static_cast<unsigned long long>(FixedFloor),
                static_cast<unsigned long long>(DivFloor));
  }
  return 0;
}
