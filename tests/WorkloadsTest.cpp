//===-- tests/WorkloadsTest.cpp - Evaluation workload tests -----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "gadget/Scanner.h"
#include "profile/Profile.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace pgsd;
using workloads::Workload;

TEST(Workloads, SuiteHasNineteenSpecBenchmarks) {
  const auto &Suite = workloads::specSuite();
  EXPECT_EQ(Suite.size(), 19u);
  std::set<std::string> Names;
  for (const Workload &W : Suite) {
    EXPECT_TRUE(Names.insert(W.Name).second) << "duplicate " << W.Name;
    EXPECT_FALSE(W.Source.empty());
    EXPECT_FALSE(W.TrainInput.empty());
    EXPECT_FALSE(W.RefInput.empty());
  }
  // The paper's SPEC names all appear.
  for (const char *Name :
       {"400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "433.milc",
        "444.namd", "445.gobmk", "447.dealII", "450.soplex", "453.povray",
        "456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref",
        "470.lbm", "471.omnetpp", "473.astar", "482.sphinx3",
        "483.xalancbmk"})
    EXPECT_EQ(Names.count(Name), 1u) << Name;
}

TEST(Workloads, GenerationIsDeterministic) {
  const Workload &A = workloads::specWorkload("403.gcc");
  // Re-generate through the builder path by value comparison of the
  // registry (the registry itself is a static, so compare two draws).
  const Workload &B = workloads::specWorkload("403.gcc");
  EXPECT_EQ(A.Source, B.Source);
  std::string Out1, Out2;
  workloads::appendColdLibrary(Out1, 10, 42);
  workloads::appendColdLibrary(Out2, 10, 42);
  EXPECT_EQ(Out1, Out2);
  std::string Out3;
  workloads::appendColdLibrary(Out3, 10, 43);
  EXPECT_NE(Out1, Out3);
}

TEST(Workloads, ColdLibraryCompilesAndDispatches) {
  std::string Source = "fn main() { return lib_dispatch(read_int(), 5); }\n";
  workloads::appendColdLibrary(Source, 12, 7);
  driver::Program P = driver::compileProgram(Source, "coldlib");
  ASSERT_TRUE(P.ok()) << P.errors();
  for (int Sel = 0; Sel != 12; ++Sel) {
    mexec::RunResult R = driver::execute(P.MIR, {Sel});
    EXPECT_FALSE(R.Trapped) << "selector " << Sel << ": " << R.TrapReason;
  }
  // Out-of-range selector returns 0.
  mexec::RunResult R = driver::execute(P.MIR, {999});
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Workloads, TextSizesSpanTwoOrdersOfMagnitude) {
  // Table 2's trend needs a wide size range with xalancbmk largest and
  // lbm/mcf/libquantum smallest.
  size_t LbmSize = 0, XalanSize = 0;
  for (const Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    ASSERT_TRUE(P.ok()) << W.Name << ": " << P.errors();
    size_t Size = driver::linkBaseline(P).Text.size();
    if (W.Name == "470.lbm")
      LbmSize = Size;
    if (W.Name == "483.xalancbmk")
      XalanSize = Size;
  }
  ASSERT_GT(LbmSize, 0u);
  EXPECT_GT(XalanSize, LbmSize * 50);
}

/// Every workload must compile, verify, profile, and agree between
/// baseline and diversified variants on the *train* input (ref inputs
/// are exercised by the benches; train keeps the test suite fast).
class SpecWorkloadTest : public ::testing::TestWithParam<const char *> {};

TEST_P(SpecWorkloadTest, CompilesProfilesAndPreservesSemantics) {
  const Workload &W = workloads::specWorkload(GetParam());
  driver::Program P = driver::compileProgram(W.Source, W.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  ASSERT_TRUE(driver::profileAndStamp(P, W.TrainInput));

  mexec::RunResult Base = driver::execute(P.MIR, W.TrainInput);
  ASSERT_FALSE(Base.Trapped) << Base.TrapReason;
  EXPECT_GT(Base.Instructions, 1000u);

  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);
  driver::Variant V = driver::makeVariant(P, Opts, /*Seed=*/17);
  mexec::RunResult R = driver::execute(V.MIR, W.TrainInput);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.Checksum, Base.Checksum);
  EXPECT_EQ(R.ExitCode, Base.ExitCode);
}

INSTANTIATE_TEST_SUITE_P(
    Spec, SpecWorkloadTest,
    ::testing::Values("470.lbm", "429.mcf", "462.libquantum", "401.bzip2",
                      "473.astar", "433.milc", "458.sjeng", "456.hmmer",
                      "444.namd", "482.sphinx3", "464.h264ref",
                      "450.soplex", "447.dealII", "453.povray",
                      "400.perlbench", "445.gobmk", "471.omnetpp",
                      "403.gcc", "483.xalancbmk"),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

TEST(PhpWorkload, InterpreterRunsAllScripts) {
  Workload Php = workloads::phpInterpreter();
  driver::Program P = driver::compileProgram(Php.Source, Php.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  const auto &Scripts = workloads::clbgScripts();
  ASSERT_EQ(Scripts.size(), 7u);
  std::set<std::string> Names;
  for (const workloads::PhpScript &S : Scripts) {
    Names.insert(S.Name);
    mexec::RunResult R = driver::execute(P.MIR, S.Input, true);
    ASSERT_FALSE(R.Trapped) << S.Name << ": " << R.TrapReason;
    EXPECT_EQ(R.ExitCode, 0) << S.Name;
    // Every script prints at least one value.
    EXPECT_NE(R.Output.find('\n'), std::string::npos) << S.Name;
  }
  // The paper's seven CLBG programs.
  for (const char *Name : {"binarytrees", "fannkuchredux", "mandelbrot",
                           "nbody", "pidigits", "spectralnorm", "fasta"})
    EXPECT_EQ(Names.count(Name), 1u) << Name;
}

TEST(PhpWorkload, ScriptsExerciseDifferentOpcodes) {
  // Each script must stress a distinguishable interpreter profile: the
  // hottest block sets differ between at least two scripts.
  Workload Php = workloads::phpInterpreter();
  driver::Program P = driver::compileProgram(Php.Source, Php.Name);
  ASSERT_TRUE(P.ok()) << P.errors();

  auto ProfileChecksum = [&](const workloads::PhpScript &S) {
    profile::ProfileData Data =
        profile::profileModule(P.MIR, mexec::RunOptions{.Input = S.Input, .MaxSteps = 4ull << 30, .MaxCallDepth = 8192, .CollectBlockCounts = false, .CollectOutput = false, .Costs = {}});
    EXPECT_FALSE(Data.empty()) << S.Name;
    // Hash the hot-block pattern (top decile of counts).
    uint64_t Hash = 1469598103934665603ull;
    for (const auto &Counts : Data.BlockCounts)
      for (size_t B = 0; B != Counts.size(); ++B)
        if (Counts[B] > Data.MaxCount / 10) {
          Hash ^= B * 1099511628211ull;
          Hash *= 1099511628211ull;
        }
    return Hash;
  };
  std::set<uint64_t> Profiles;
  for (const workloads::PhpScript &S : workloads::clbgScripts())
    Profiles.insert(ProfileChecksum(S));
  EXPECT_GE(Profiles.size(), 3u) << "scripts look too similar";
}

TEST(PhpWorkload, VariantsAgreeOnScripts) {
  Workload Php = workloads::phpInterpreter();
  driver::Program P = driver::compileProgram(Php.Source, Php.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  const auto &Script = workloads::clbgScripts()[1]; // fannkuchredux
  ASSERT_TRUE(driver::profileAndStamp(P, Script.Input));
  mexec::RunResult Base = driver::execute(P.MIR, Script.Input);
  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    driver::Variant V = driver::makeVariant(P, Opts, Seed);
    mexec::RunResult R = driver::execute(V.MIR, Script.Input);
    ASSERT_FALSE(R.Trapped);
    EXPECT_EQ(R.Checksum, Base.Checksum);
  }
}
