//===-- tests/PassesTest.cpp - IR optimization pass tests -------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "ir/IR.h"
#include "passes/Passes.h"

#include <gtest/gtest.h>

using namespace pgsd;
using namespace pgsd::ir;

namespace {

Module compile(const char *Source) {
  std::vector<frontend::Diag> Diags;
  Module M = frontend::compileToIR(Source, "test", Diags);
  EXPECT_TRUE(Diags.empty()) << frontend::formatDiags(Diags);
  EXPECT_EQ(verify(M), "");
  return M;
}

unsigned countInstrs(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const BasicBlock &BB : F.Blocks)
    for (const Instr &I : BB.Instrs)
      if (I.Op == Op)
        ++N;
  return N;
}

unsigned totalInstrs(const Function &F) {
  unsigned N = 0;
  for (const BasicBlock &BB : F.Blocks)
    N += static_cast<unsigned>(BB.Instrs.size());
  return N;
}

} // namespace

TEST(ConstFold, FoldsConstantExpressions) {
  Module M = compile("fn main() { return 2 + 3 * 4; }");
  Function &F = M.Functions[0];
  EXPECT_GT(countInstrs(F, Opcode::Mul), 0u);
  passes::foldConstants(F);
  passes::removeDeadCode(F);
  EXPECT_EQ(countInstrs(F, Opcode::Mul), 0u);
  EXPECT_EQ(countInstrs(F, Opcode::Add), 0u);
  // The returned value is the constant 14.
  bool Found = false;
  for (const BasicBlock &BB : F.Blocks)
    for (const Instr &I : BB.Instrs)
      if (I.Op == Opcode::Const && I.Imm == 14)
        Found = true;
  EXPECT_TRUE(Found);
  EXPECT_EQ(verify(M), "");
}

TEST(ConstFold, AlgebraicIdentities) {
  Module M = compile(
      "fn f(x) { return (x + 0) * 1 + (x * 0) + (x ^ 0) - (x & 0); } "
      "fn main() { return f(read_int()); }");
  Function &F = M.Functions[0];
  passes::optimize(M);
  // Everything reduces to x + x (one Add), no Mul/Xor/And left.
  EXPECT_EQ(countInstrs(F, Opcode::Mul), 0u);
  EXPECT_EQ(countInstrs(F, Opcode::Xor), 0u);
  EXPECT_EQ(countInstrs(F, Opcode::And), 0u);
}

TEST(ConstFold, DoesNotFoldTrappingDivision) {
  Module M = compile("fn main() { return 1 / (2 - 2); }");
  Function &F = M.Functions[0];
  passes::foldConstants(F);
  // The division by zero must remain (it traps at run time, like IDIV).
  EXPECT_EQ(countInstrs(F, Opcode::Div), 1u);
}

TEST(ConstFold, FoldsKnownConditionalBranches) {
  Module M = compile(
      "fn main() { if (1 < 2) { return 5; } else { return 6; } }");
  Function &F = M.Functions[0];
  passes::foldConstants(F);
  EXPECT_EQ(countInstrs(F, Opcode::CondBr), 0u);
}

TEST(ConstFold, MultiplyDefinedValueNotPropagated) {
  // x is reassigned, so its initial constant must not fold into the use
  // after the join.
  Module M = compile("fn main() { var x = 1; if (read_int()) { x = 2; } "
                     "return x + 10; }");
  passes::optimize(M);
  EXPECT_EQ(verify(M), "");
  Function &F = M.Functions[0];
  EXPECT_EQ(countInstrs(F, Opcode::Add), 1u); // still computed at run time
}

TEST(DeadCode, RemovesUnusedComputation) {
  Module M = compile(
      "fn main() { var unused = 3 * 4 + 5; var used = 2; return used; }");
  Function &F = M.Functions[0];
  unsigned Before = totalInstrs(F);
  passes::foldConstants(F);
  bool Changed = passes::removeDeadCode(F);
  EXPECT_TRUE(Changed);
  EXPECT_LT(totalInstrs(F), Before);
  EXPECT_EQ(countInstrs(F, Opcode::Mul), 0u);
}

TEST(DeadCode, KeepsSideEffects) {
  Module M = compile("global g; fn main() { g = 5; print_int(1); "
                     "var dead = 9; return 0; }");
  Function &F = M.Functions[0];
  passes::foldConstants(F);
  passes::removeDeadCode(F);
  EXPECT_EQ(countInstrs(F, Opcode::Store), 1u);
  EXPECT_EQ(countInstrs(F, Opcode::Call), 1u);
}

TEST(DeadCode, DeadLoadRemoved) {
  Module M = compile("global g[4]; fn main() { var dead = g[2]; "
                     "return 1; }");
  Function &F = M.Functions[0];
  passes::foldConstants(F);
  passes::removeDeadCode(F);
  EXPECT_EQ(countInstrs(F, Opcode::Load), 0u);
}

TEST(SimplifyCFG, RemovesUnreachableBlocks) {
  Module M = compile("fn main() { return 1; print_int(2); }");
  Function &F = M.Functions[0];
  passes::simplifyCFG(F);
  EXPECT_EQ(verify(M), "");
  EXPECT_EQ(countInstrs(F, Opcode::Call), 0u);
}

TEST(SimplifyCFG, MergesStraightLineChains) {
  Module M = compile(
      "fn main() { var a = read_int(); if (a) { a = a + 1; } "
      "return a; }");
  Function &F = M.Functions[0];
  size_t Before = F.Blocks.size();
  passes::optimize(M);
  EXPECT_LE(F.Blocks.size(), Before);
  EXPECT_EQ(verify(M), "");
}

TEST(SimplifyCFG, CollapsesWholeConstantChain) {
  Module M = compile("fn main() { if (1) { if (2 > 1) { return 42; } } "
                     "return 0; }");
  passes::optimize(M);
  Function &F = M.Functions[0];
  // Everything folds into a single block returning 42.
  EXPECT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(F.Blocks[0].terminator().Op, Opcode::Ret);
}

TEST(SimplifyCFG, PreservesInfiniteLoop) {
  Module M = compile("fn main() { while (1) { sink(1); } return 0; }");
  passes::optimize(M);
  EXPECT_EQ(verify(M), "");
  // A cycle must still exist.
  Function &F = M.Functions[0];
  bool HasBackEdge = false;
  for (BlockId B = 0; B != F.Blocks.size(); ++B)
    for (BlockId S : successors(F.Blocks[B]))
      if (S <= B)
        HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge);
}

TEST(Optimize, IdempotentSecondRun) {
  Module M = compile("fn f(x) { if (x > 0) { return x * 2 + 0; } "
                     "return 0 - x; } "
                     "fn main() { return f(read_int()); }");
  passes::optimize(M);
  std::string Once = print(M);
  passes::optimize(M);
  EXPECT_EQ(print(M), Once);
}

TEST(Optimize, ShrinksRealProgram) {
  Module M = compile(R"(
    fn main() {
      var total = 0;
      var limit = 10 * 10;       // foldable
      for (var i = 0; i < limit; i = i + 1) {
        total = total + i * 1;   // identity
        total = total + 0;       // identity
      }
      return total;
    }
  )");
  unsigned Before = totalInstrs(M.Functions[0]);
  passes::optimize(M);
  EXPECT_LT(totalInstrs(M.Functions[0]), Before);
  EXPECT_EQ(verify(M), "");
}

TEST(IRStructure, SuccessorsAndPredecessors) {
  Module M = compile(
      "fn main() { var a = read_int(); if (a) { a = 1; } else { a = 2; } "
      "return a; }");
  const Function &F = M.Functions[0];
  auto Preds = predecessors(F);
  // Entry has no predecessors; the join block has two.
  EXPECT_TRUE(Preds[0].empty());
  bool FoundJoin = false;
  for (const auto &P : Preds)
    if (P.size() == 2)
      FoundJoin = true;
  EXPECT_TRUE(FoundJoin);
}

TEST(IRVerify, CatchesBrokenModules) {
  Module M = compile("fn main() { return 1; }");
  // Branch target out of range.
  Module Broken = M;
  Instr BadBr;
  BadBr.Op = Opcode::Br;
  BadBr.Succ0 = 99;
  Broken.Functions[0].Blocks[0].Instrs.back() = BadBr;
  EXPECT_NE(verify(Broken), "");

  // Interior terminator.
  Broken = M;
  Instr Ret;
  Ret.Op = Opcode::Ret;
  Ret.A = NoValue;
  Broken.Functions[0].Blocks[0].Instrs.insert(
      Broken.Functions[0].Blocks[0].Instrs.begin(), Ret);
  EXPECT_NE(verify(Broken), "");

  // Operand out of range.
  Broken = M;
  Instr BadAdd;
  BadAdd.Op = Opcode::Add;
  BadAdd.Dst = 0;
  BadAdd.A = 12345;
  BadAdd.B = 0;
  auto &Instrs = Broken.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), BadAdd);
  Broken.Functions[0].NumValues = 1;
  EXPECT_NE(verify(Broken), "");

  // Missing terminator.
  Broken = M;
  Broken.Functions[0].Blocks[0].Instrs.pop_back();
  while (!Broken.Functions[0].Blocks[0].Instrs.empty() &&
         !isTerminator(Broken.Functions[0].Blocks[0].Instrs.back().Op))
    Broken.Functions[0].Blocks[0].Instrs.pop_back();
  if (Broken.Functions[0].Blocks[0].Instrs.empty()) {
    Instr C;
    C.Op = Opcode::Const;
    C.Dst = 0;
    Broken.Functions[0].Blocks[0].Instrs.push_back(C);
  }
  EXPECT_NE(verify(Broken), "");
}
