//===-- tests/EncoderTest.cpp - IA-32 encoder tests ------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Decoder.h"
#include "x86/Encoder.h"
#include "x86/Nops.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pgsd;
using namespace pgsd::x86;

namespace {

std::vector<uint8_t> bytesOf(void (*Emit)(Encoder &)) {
  std::vector<uint8_t> Out;
  Encoder E(Out);
  Emit(E);
  return Out;
}

} // namespace

TEST(Encoder, GoldenBytes) {
  // Spot-check known IA-32 encodings byte for byte.
  EXPECT_EQ(bytesOf([](Encoder &E) { E.movRR(Reg::EBX, Reg::EAX); }),
            (std::vector<uint8_t>{0x89, 0xC3}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.movRI(Reg::EAX, 0x12345678); }),
            (std::vector<uint8_t>{0xB8, 0x78, 0x56, 0x34, 0x12}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.ret(); }),
            (std::vector<uint8_t>{0xC3}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.leave(); }),
            (std::vector<uint8_t>{0xC9}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.pushR(Reg::EBP); }),
            (std::vector<uint8_t>{0x55}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.popR(Reg::EDI); }),
            (std::vector<uint8_t>{0x5F}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.cdq(); }),
            (std::vector<uint8_t>{0x99}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.intN(0x80); }),
            (std::vector<uint8_t>{0xCD, 0x80}));
  EXPECT_EQ(
      bytesOf([](Encoder &E) { E.aluRR(AluOp::Add, Reg::ECX, Reg::EDX); }),
      (std::vector<uint8_t>{0x01, 0xD1}));
  EXPECT_EQ(
      bytesOf([](Encoder &E) { E.aluRR(AluOp::Cmp, Reg::EAX, Reg::EBX); }),
      (std::vector<uint8_t>{0x39, 0xD8}));
  EXPECT_EQ(bytesOf([](Encoder &E) { E.imulRR(Reg::EAX, Reg::ECX); }),
            (std::vector<uint8_t>{0x0F, 0xAF, 0xC1}));
}

TEST(Encoder, AluImmediateSelectsShortForm) {
  // imm8 range uses 83 /n, otherwise 81 /n.
  auto Short = bytesOf([](Encoder &E) { E.aluRI(AluOp::Sub, Reg::ESP, 8); });
  EXPECT_EQ(Short, (std::vector<uint8_t>{0x83, 0xEC, 0x08}));
  auto Long =
      bytesOf([](Encoder &E) { E.aluRI(AluOp::Sub, Reg::ESP, 0x1000); });
  EXPECT_EQ(Long[0], 0x81);
  EXPECT_EQ(Long.size(), 6u);
  // Boundary values.
  EXPECT_EQ(bytesOf([](Encoder &E) {
              E.aluRI(AluOp::Add, Reg::EAX, 127);
            }).size(),
            3u);
  EXPECT_EQ(bytesOf([](Encoder &E) {
              E.aluRI(AluOp::Add, Reg::EAX, 128);
            }).size(),
            6u);
  EXPECT_EQ(bytesOf([](Encoder &E) {
              E.aluRI(AluOp::Add, Reg::EAX, -128);
            }).size(),
            3u);
}

TEST(Encoder, MemoryOperands) {
  // [EBP] forces a zero disp8 (mod=01).
  auto EbpNoDisp =
      bytesOf([](Encoder &E) { E.movLoad(Reg::EAX, Mem::base(Reg::EBP)); });
  EXPECT_EQ(EbpNoDisp, (std::vector<uint8_t>{0x8B, 0x45, 0x00}));
  // [ESP] requires a SIB byte.
  auto EspBase =
      bytesOf([](Encoder &E) { E.movLoad(Reg::EAX, Mem::base(Reg::ESP)); });
  EXPECT_EQ(EspBase, (std::vector<uint8_t>{0x8B, 0x04, 0x24}));
  // [ECX] with no displacement is the two-byte form.
  auto Plain =
      bytesOf([](Encoder &E) { E.movLoad(Reg::EAX, Mem::base(Reg::ECX)); });
  EXPECT_EQ(Plain, (std::vector<uint8_t>{0x8B, 0x01}));
  // Absolute [disp32].
  auto Abs =
      bytesOf([](Encoder &E) { E.movLoad(Reg::EAX, Mem::abs(0x1234)); });
  EXPECT_EQ(Abs, (std::vector<uint8_t>{0x8B, 0x05, 0x34, 0x12, 0, 0}));
}

TEST(Encoder, NopEncodings) {
  // The encoder's NOPs are exactly the paper's Table 1 bytes.
  size_t Count;
  const NopInfo *Table = nopTable(Count);
  for (size_t I = 0; I != Count; ++I) {
    std::vector<uint8_t> Out;
    Encoder E(Out);
    E.nop(Table[I].Kind);
    ASSERT_EQ(Out.size(), Table[I].Length);
    EXPECT_EQ(Out[0], Table[I].Bytes[0]);
    if (Table[I].Length == 2) {
      EXPECT_EQ(Out[1], Table[I].Bytes[1]);
    }
  }
}

TEST(Encoder, BranchPatching) {
  std::vector<uint8_t> Out;
  Encoder E(Out);
  size_t J = E.jmpRel();
  E.movRI(Reg::EAX, 1);
  size_t Target = E.offset();
  E.ret();
  E.patchRel32(J, Target);
  // rel32 = Target - (J + 4).
  int32_t Rel = static_cast<int32_t>(Out[J]) | (Out[J + 1] << 8) |
                (Out[J + 2] << 16) | (Out[J + 3] << 24);
  EXPECT_EQ(Rel, static_cast<int32_t>(Target - (J + 4)));
}

TEST(Encoder, BackwardBranch) {
  std::vector<uint8_t> Out;
  Encoder E(Out);
  size_t Loop = E.offset();
  E.aluRI(AluOp::Sub, Reg::ECX, 1);
  size_t J = E.jccRel(CondCode::NE);
  E.patchRel32(J, Loop);
  int32_t Rel = static_cast<int32_t>(Out[J]) | (Out[J + 1] << 8) |
                (Out[J + 2] << 16) | (Out[J + 3] << 24);
  EXPECT_LT(Rel, 0);
  EXPECT_EQ(Rel, static_cast<int32_t>(Loop) - static_cast<int32_t>(J + 4));
}

TEST(Encoder, IncMemReturnsDispOffset) {
  std::vector<uint8_t> Out;
  Encoder E(Out);
  size_t Disp = E.incMem(Mem::abs(0));
  EXPECT_EQ(Out.size(), 6u); // FF 05 disp32
  EXPECT_EQ(Out[0], 0xFF);
  EXPECT_EQ(Out[1], 0x05);
  EXPECT_EQ(Disp, 2u);
}

TEST(Encoder, SetccConstraint) {
  auto Set = bytesOf([](Encoder &E) { E.setccR8(CondCode::E, Reg::EAX); });
  EXPECT_EQ(Set, (std::vector<uint8_t>{0x0F, 0x94, 0xC0}));
  auto Zext = bytesOf([](Encoder &E) { E.movzxR8(Reg::EAX, Reg::EAX); });
  EXPECT_EQ(Zext, (std::vector<uint8_t>{0x0F, 0xB6, 0xC0}));
}

/// Round-trip property: everything the encoder can emit must decode to
/// exactly one instruction of the right length and a non-invalid class.
TEST(Encoder, EveryEmissionDecodes) {
  struct Case {
    const char *Name;
    void (*Emit)(Encoder &);
    InstrClass Class;
  };
  const Case Cases[] = {
      {"movRR", [](Encoder &E) { E.movRR(Reg::ESI, Reg::EDI); },
       InstrClass::Normal},
      {"movRI", [](Encoder &E) { E.movRI(Reg::EBX, -5); },
       InstrClass::Normal},
      {"load", [](Encoder &E) { E.movLoad(Reg::EDX, Mem::base(Reg::EBX, 124)); },
       InstrClass::Normal},
      {"store", [](Encoder &E) { E.movStore(Mem::base(Reg::ESI, -4), Reg::ECX); },
       InstrClass::Normal},
      {"storeImm", [](Encoder &E) { E.movStoreImm(Mem::base(Reg::EBP, -8), 7); },
       InstrClass::Normal},
      {"lea", [](Encoder &E) { E.leaRM(Reg::EAX, Mem::base(Reg::EBP, -12)); },
       InstrClass::Normal},
      {"aluRM", [](Encoder &E) { E.aluRM(AluOp::Add, Reg::EAX, Mem::base(Reg::ECX, 4)); },
       InstrClass::Normal},
      {"neg", [](Encoder &E) { E.negR(Reg::EDX); }, InstrClass::Normal},
      {"not", [](Encoder &E) { E.notR(Reg::EDX); }, InstrClass::Normal},
      {"shl", [](Encoder &E) { E.shiftRI(ShiftOp::Shl, Reg::EAX, 3); },
       InstrClass::Normal},
      {"sarCL", [](Encoder &E) { E.shiftRCL(ShiftOp::Sar, Reg::EAX); },
       InstrClass::Normal},
      {"test", [](Encoder &E) { E.testRR(Reg::EAX, Reg::EAX); },
       InstrClass::Normal},
      {"idiv", [](Encoder &E) { E.idivR(Reg::ECX); }, InstrClass::Normal},
      {"pushI", [](Encoder &E) { E.pushI(123456); }, InstrClass::Normal},
      {"callInd", [](Encoder &E) { E.callInd(Reg::EAX); },
       InstrClass::CallInd},
      {"jmpInd", [](Encoder &E) { E.jmpInd(Reg::EDX); },
       InstrClass::JmpInd},
      {"retImm", [](Encoder &E) { E.retImm(8); }, InstrClass::RetImm},
  };
  for (const Case &C : Cases) {
    std::vector<uint8_t> Out;
    Encoder E(Out);
    C.Emit(E);
    Decoded D;
    ASSERT_TRUE(decodeInstr(Out.data(), Out.size(), D)) << C.Name;
    EXPECT_EQ(D.Length, Out.size()) << C.Name;
    EXPECT_EQ(D.Class, C.Class) << C.Name;
  }
}

/// Property sweep: random instruction streams decode back with exactly
/// the emitted boundaries.
class EncodeDecodeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodeDecodeRoundTrip, BoundariesPreserved) {
  Rng R(GetParam() * 7919 + 3);
  std::vector<uint8_t> Out;
  Encoder E(Out);
  std::vector<size_t> Starts;

  auto RandomReg = [&] { return static_cast<Reg>(R.nextBelow(8)); };
  auto RandomMem = [&] {
    if (R.nextBernoulli(0.2))
      return Mem::abs(static_cast<int32_t>(R.next()));
    return Mem::base(RandomReg(),
                     static_cast<int32_t>(R.nextInRange(-4096, 4096)));
  };

  for (int I = 0; I != 300; ++I) {
    Starts.push_back(E.offset());
    switch (R.nextBelow(14)) {
    case 0:
      E.movRR(RandomReg(), RandomReg());
      break;
    case 1:
      E.movRI(RandomReg(), static_cast<int32_t>(R.next()));
      break;
    case 2:
      E.movLoad(RandomReg(), RandomMem());
      break;
    case 3:
      E.movStore(RandomMem(), RandomReg());
      break;
    case 4:
      E.aluRR(static_cast<AluOp>(R.nextBelow(8)), RandomReg(), RandomReg());
      break;
    case 5:
      E.aluRI(static_cast<AluOp>(R.nextBelow(8)), RandomReg(),
              static_cast<int32_t>(R.next()));
      break;
    case 6:
      E.imulRR(RandomReg(), RandomReg());
      break;
    case 7:
      E.shiftRI(ShiftOp::Shl, RandomReg(),
                static_cast<uint8_t>(R.nextBelow(32)));
      break;
    case 8:
      E.testRR(RandomReg(), RandomReg());
      break;
    case 9:
      E.pushR(RandomReg());
      break;
    case 10:
      E.popR(RandomReg());
      break;
    case 11:
      E.nop(static_cast<NopKind>(R.nextBelow(NumNopKinds)));
      break;
    case 12:
      E.leaRM(RandomReg(), Mem::base(RandomReg(),
                                     static_cast<int32_t>(R.nextBelow(64))));
      break;
    default:
      E.movStoreImm(RandomMem(), static_cast<int32_t>(R.next()));
      break;
    }
  }
  size_t End = E.offset();

  // Linear decode must land exactly on every recorded boundary.
  size_t Pos = 0;
  size_t Index = 0;
  while (Pos < End) {
    ASSERT_LT(Index, Starts.size());
    ASSERT_EQ(Pos, Starts[Index]);
    Decoded D;
    ASSERT_TRUE(decodeInstr(Out.data() + Pos, End - Pos, D));
    Pos += D.Length;
    ++Index;
  }
  EXPECT_EQ(Index, Starts.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeRoundTrip,
                         ::testing::Range<uint64_t>(0, 10));
