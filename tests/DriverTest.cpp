//===-- tests/DriverTest.cpp - Driver facade tests ---------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace pgsd;

TEST(Driver, ReportsFrontendErrors) {
  driver::Program P =
      driver::compileProgram("fn main() { return undeclared; }", "bad");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.errors().find("undeclared"), std::string::npos);
}

TEST(Driver, ReportsSyntaxErrorsWithLocations) {
  driver::Program P =
      driver::compileProgram("fn main() {\n  var x = ;\n}", "bad");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.errors().find("2:"), std::string::npos); // line number
}

TEST(Driver, ProfileAndStampFailsOnTrappingTrainingRun) {
  driver::Program P = driver::compileProgram(
      "fn main() { return 1 / read_int(); }", "trap");
  ASSERT_TRUE(P.ok());
  EXPECT_FALSE(driver::profileAndStamp(P, {0})); // division by zero
  EXPECT_FALSE(P.HasProfile);
  EXPECT_TRUE(driver::profileAndStamp(P, {4}));
  EXPECT_TRUE(P.HasProfile);
}

TEST(Driver, BaselineLinkIsDeterministic) {
  driver::Program P = driver::compileProgram(
      "global g[8]; fn main() { g[0] = 1; return g[0]; }", "det");
  ASSERT_TRUE(P.ok());
  codegen::Image A = driver::linkBaseline(P);
  codegen::Image B = driver::linkBaseline(P);
  EXPECT_EQ(A.Text, B.Text);
  EXPECT_EQ(A.FuncOffsets, B.FuncOffsets);
  EXPECT_EQ(A.GlobalAddrs, B.GlobalAddrs);
}

TEST(Driver, VariantIsDeterministicPerSeed) {
  driver::Program P = driver::compileProgram(
      "fn main() { var s = 0; var i = 0; while (i < 50) { s = s + i; "
      "i = i + 1; } return s; }",
      "var");
  ASSERT_TRUE(P.ok());
  auto Opts = diversity::DiversityOptions::uniform(0.5);
  driver::Variant A = driver::makeVariant(P, Opts, 3);
  driver::Variant B = driver::makeVariant(P, Opts, 3);
  EXPECT_EQ(A.Image.Text, B.Image.Text);
  EXPECT_EQ(A.Stats.NopsInserted, B.Stats.NopsInserted);
}

TEST(Driver, OutputCollectionIsOptIn) {
  driver::Program P = driver::compileProgram(
      "fn main() { print_int(42); return 0; }", "out");
  ASSERT_TRUE(P.ok());
  mexec::RunResult Quiet = driver::execute(P.MIR, {}, false);
  EXPECT_TRUE(Quiet.Output.empty());
  mexec::RunResult Loud = driver::execute(P.MIR, {}, true);
  EXPECT_EQ(Loud.Output, "42\n");
  // The checksum observes the print either way.
  EXPECT_EQ(Quiet.Checksum, Loud.Checksum);
}

TEST(Driver, UnoptimizedAndOptimizedShareInterface) {
  const char *Source =
      "fn main() { var x = 2 + 3; print_int(x * x); return 0; }";
  driver::Program O2 = driver::compileProgram(Source, "o2", true);
  driver::Program O0 = driver::compileProgram(Source, "o0", false);
  ASSERT_TRUE(O2.ok());
  ASSERT_TRUE(O0.ok());
  // -O2 emits strictly less machine code for this program.
  auto Count = [](const driver::Program &P) {
    size_t N = 0;
    for (const auto &F : P.MIR.Functions)
      for (const auto &BB : F.Blocks)
        N += BB.Instrs.size();
    return N;
  };
  EXPECT_LT(Count(O2), Count(O0));
  EXPECT_EQ(driver::execute(O2.MIR, {}, true).Output,
            driver::execute(O0.MIR, {}, true).Output);
}
