//===-- tests/EquivTest.cpp - Translation validation tests -----------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Three layers of evidence that the equivalence prover is trustworthy:
//  1. A clean sweep proves zero false positives: every workload in the
//     battery, across seeds, NOP-inserted and block-shifted, is proved
//     equivalent to its baseline.
//  2. A fault-injection sweep proves 100% *static* detection: every
//     seeded illegal mutation of every MirFault class -- including the
//     flag-clobber class that differential execution can never see --
//     is refuted with a structured counterexample.
//  3. Unit tests pin the prover's behaviour on hand-built corner cases
//     (prelude proof obligations, module-shape mismatches, value
//     perturbations invisible to the dataflow checkers) and its wiring
//     into the driver's retry loop.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/Equiv.h"
#include "analysis/MirFault.h"
#include "diversity/NopInsertion.h"
#include "driver/Driver.h"
#include "obs/Metrics.h"
#include "verify/Verifier.h"
#include "workloads/Workloads.h"

#include "gtest/gtest.h"

using namespace pgsd;
using analysis::EquivOptions;
using analysis::EquivStats;
using analysis::MirFaultClass;
using analysis::proveEquivalent;
using mir::MInstr;
using mir::MModule;
using mir::MOp;
using verify::ErrorCode;
using x86::Reg;

namespace {

/// A program exercising every MOp family the prover models: calls,
/// division (cdq/idiv), loops with flag-consuming branches, frame
/// traffic, and output.
constexpr const char *FixtureSource = R"(
fn avg(a, b) {
  return (a + b) / 2;
}
fn main() {
  var n = read_int();
  var total = 0;
  for (var i = 0; i < n; i = i + 1) {
    total = avg(total, i);
  }
  print_int(total);
  return total;
}
)";

driver::Program compileFixture() {
  driver::Program P =
      driver::compileProgram(FixtureSource, "equiv_fixture", true);
  EXPECT_TRUE(P.ok()) << P.errors();
  return P;
}

diversity::DiversityOptions heavyNops() {
  // Uniform max-rate insertion maximizes the NOP noise the prover must
  // normalize away.
  diversity::DiversityOptions D = diversity::DiversityOptions::uniform(0.5);
  D.IncludeXchgNops = true;
  return D;
}

//===----------------------------------------------------------------------===//
// 1. Clean sweep: zero false positives over the whole battery
//===----------------------------------------------------------------------===//

TEST(EquivCleanSweep, AllWorkloadsAllSeedsProved) {
  std::vector<workloads::Workload> Battery = workloads::specSuite();
  Battery.push_back(workloads::phpInterpreter());
  uint64_t Proved = 0;
  for (const workloads::Workload &W : Battery) {
    driver::Program P = driver::compileProgram(W.Source, W.Name, true);
    ASSERT_TRUE(P.ok()) << W.Name << ": " << P.errors();
    for (uint64_t Seed : {1ull, 7ull, 42ull}) {
      MModule V = diversity::makeVariant(P.MIR, heavyNops(), Seed);
      EquivStats S;
      verify::Report R = proveEquivalent(P.MIR, V, EquivOptions(), &S);
      EXPECT_TRUE(R.ok()) << W.Name << " seed " << Seed
                          << " (nop variant):\n"
                          << R.str();
      EXPECT_EQ(S.FunctionsRefuted + S.FunctionsAborted, 0u);
      Proved += S.FunctionsProved;

      // The block-shifted sibling exercises the layout-permutation
      // side of the correspondence proof.
      diversity::insertBlockShift(V, Seed ^ 0xb10c);
      R = proveEquivalent(P.MIR, V);
      EXPECT_TRUE(R.ok()) << W.Name << " seed " << Seed
                          << " (block-shifted):\n"
                          << R.str();
    }
  }
  // The battery is substantial; make sure the sweep proved real work.
  EXPECT_GT(Proved, 100u);
}

TEST(EquivCleanSweep, UnoptimizedModulesProved) {
  // -O0 modules have more frame traffic and redundant moves; the
  // prover must not depend on the optimizer's canonical forms.
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name, false);
    ASSERT_TRUE(P.ok()) << W.Name << ": " << P.errors();
    MModule V = diversity::makeVariant(P.MIR, heavyNops(), 3);
    verify::Report R = proveEquivalent(P.MIR, V);
    EXPECT_TRUE(R.ok()) << W.Name << ":\n" << R.str();
  }
}

TEST(EquivCleanSweep, ReflexiveOnBaseline) {
  driver::Program P = compileFixture();
  EquivStats S;
  verify::Report R = proveEquivalent(P.MIR, P.MIR, EquivOptions(), &S);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(S.FunctionsProved, P.MIR.Functions.size());
}

//===----------------------------------------------------------------------===//
// 2. Fault sweep: 100% static detection of every MirFault class
//===----------------------------------------------------------------------===//

TEST(EquivFaultSweep, AllClassesAllSeedsRefuted) {
  driver::Program P = compileFixture();
  for (unsigned C = 0; C != analysis::NumMirFaultClasses; ++C) {
    MirFaultClass Class = static_cast<MirFaultClass>(C);
    unsigned Injected = 0;
    for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
      MModule Mutant = P.MIR;
      std::string Desc;
      if (!analysis::injectMirFault(Mutant, Class, Seed, &Desc))
        continue;
      ++Injected;
      EquivStats S;
      verify::Report R =
          proveEquivalent(P.MIR, Mutant, EquivOptions(), &S);
      ASSERT_FALSE(R.ok())
          << analysis::mirFaultClassName(Class) << " seed " << Seed
          << " (" << Desc << "): prover accepted a faulty module";
      EXPECT_TRUE(R.has(ErrorCode::EquivRefuted))
          << analysis::mirFaultClassName(Class) << ": " << R.str();
      EXPECT_GE(S.FunctionsRefuted, 1u);
      // Every counterexample is structured: code + non-empty context.
      for (const verify::Diagnostic &D : R.Diags)
        EXPECT_FALSE(D.Context.empty());
    }
    EXPECT_GT(Injected, 0u)
        << analysis::mirFaultClassName(Class) << ": no eligible site";
  }
}

TEST(EquivFaultSweep, FlagClobberIsStaticallyVisible) {
  // The headline case: an inserted value-preserving ALU op between a
  // cmp and its jcc is invisible to the lazy-flags interpreter (the
  // dynamic battery can never catch it) yet must refute here, at the
  // consuming branch, as a branch-condition mismatch.
  driver::Program P = compileFixture();
  MModule Mutant = P.MIR;
  ASSERT_TRUE(analysis::injectMirFault(Mutant, MirFaultClass::FlagClobber,
                                       7, nullptr));
  verify::Report R = proveEquivalent(P.MIR, Mutant);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Diags.front().Context.find("branch condition differs"),
            std::string::npos)
      << R.str();
}

//===----------------------------------------------------------------------===//
// 3. Unit tests: corner cases and driver wiring
//===----------------------------------------------------------------------===//

TEST(EquivUnit, EffectfulPreludeRefuted) {
  // A two-block prelude is only accepted once *proven* effect-free;
  // smuggling a register write into the pad block must refute even
  // though the block count and jump shape look like a legal shift.
  driver::Program P = compileFixture();
  MModule V = P.MIR;
  diversity::insertBlockShift(V, 99);
  verify::Report Clean = proveEquivalent(P.MIR, V);
  ASSERT_TRUE(Clean.ok()) << Clean.str();

  MInstr Smuggled;
  Smuggled.Op = MOp::MovRI;
  Smuggled.Dst = Reg::EAX;
  Smuggled.Imm = 123;
  V.Functions[0].Blocks[1].Instrs.insert(
      V.Functions[0].Blocks[1].Instrs.begin(), Smuggled);
  verify::Report R = proveEquivalent(P.MIR, V);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.has(ErrorCode::EquivRefuted));
}

TEST(EquivUnit, ModuleShapeMismatchRefuted) {
  driver::Program P = compileFixture();
  MModule V = P.MIR;
  V.Functions.pop_back();
  verify::Report R = proveEquivalent(P.MIR, V);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.has(ErrorCode::EquivRefuted));
  EXPECT_NE(R.Diags.front().Context.find("functions"), std::string::npos);
}

TEST(EquivUnit, ConstantPerturbationRefuted) {
  // Flipping an immediate passes every dataflow checker (analyzeModule
  // is value-blind) but changes the computed value; only the
  // equivalence prover rejects it statically.
  driver::Program P = compileFixture();
  MModule V = P.MIR;
  bool Flipped = false;
  for (mir::MFunction &F : V.Functions) {
    for (mir::MBasicBlock &B : F.Blocks)
      for (MInstr &I : B.Instrs)
        if (!Flipped && I.Op == MOp::MovRI) {
          I.Imm += 1;
          Flipped = true;
        }
  }
  ASSERT_TRUE(Flipped);
  EXPECT_TRUE(analysis::analyzeModule(V).ok());
  verify::Report R = proveEquivalent(P.MIR, V);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.has(ErrorCode::EquivRefuted));
}

TEST(EquivUnit, DiagnosticCapRespected) {
  // Break every function; the report must stop at the cap.
  driver::Program P = compileFixture();
  MModule V = P.MIR;
  for (mir::MFunction &F : V.Functions)
    for (mir::MBasicBlock &B : F.Blocks)
      for (MInstr &I : B.Instrs)
        if (I.Op == MOp::MovRI)
          I.Imm ^= 1;
  EquivOptions Opts;
  Opts.MaxDiagnostics = 1;
  verify::Report R = proveEquivalent(P.MIR, V, Opts);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Diags.size(), 1u);
}

TEST(EquivUnit, StatsPartitionAttempts) {
  driver::Program P = compileFixture();
  MModule V = diversity::makeVariant(P.MIR, heavyNops(), 5);
  EquivStats S;
  verify::Report R = proveEquivalent(P.MIR, V, EquivOptions(), &S);
  ASSERT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(S.FunctionsProved + S.FunctionsRefuted + S.FunctionsAborted,
            P.MIR.Functions.size());
}

TEST(EquivDriver, NonEquivalentVariantRejectedBeforeExecution) {
  // The seam mutates an immediate on every attempt: analyzeModule
  // accepts each mutant, translation validation refutes it, and the
  // factory must fall back to the baseline with EquivRejected in the
  // attempt timeline -- without ever reaching differential execution.
  driver::Program P = compileFixture();
  verify::VerifyOptions VOpts;
  VOpts.MaxAttempts = 2;
  VOpts.InjectFault = [](MModule &M, codegen::Image &, uint64_t) {
    for (mir::MFunction &F : M.Functions)
      for (mir::MBasicBlock &B : F.Blocks)
        for (MInstr &I : B.Instrs)
          if (I.Op == MOp::MovRI) {
            I.Imm += 40;
            return;
          }
  };
  driver::VerifiedVariant VV = driver::makeVariantVerified(
      P, diversity::DiversityOptions(), 1, VOpts);
  EXPECT_TRUE(VV.UsedFallback);
  EXPECT_TRUE(VV.Report.has(ErrorCode::EquivRejected)) << VV.Report.str();
  EXPECT_TRUE(VV.Report.has(ErrorCode::EquivRefuted)) << VV.Report.str();
  EXPECT_TRUE(VV.Report.has(ErrorCode::RetriesExhausted));
}

TEST(EquivDriver, CheckEquivOffSkipsTranslationValidation) {
  // With the stage disabled, the same seam-injected value perturbation
  // must instead be caught dynamically (differential execution), so the
  // report carries no Equiv codes.
  driver::Program P = compileFixture();
  verify::VerifyOptions VOpts;
  VOpts.MaxAttempts = 1;
  VOpts.CheckEquiv = false;
  VOpts.InjectFault = [](MModule &M, codegen::Image &, uint64_t) {
    for (mir::MFunction &F : M.Functions)
      for (mir::MBasicBlock &B : F.Blocks)
        for (MInstr &I : B.Instrs)
          if (I.Op == MOp::MovRI) {
            I.Imm += 40;
            return;
          }
  };
  driver::VerifiedVariant VV = driver::makeVariantVerified(
      P, diversity::DiversityOptions(), 1, VOpts);
  EXPECT_TRUE(VV.UsedFallback);
  EXPECT_FALSE(VV.Report.has(ErrorCode::EquivRejected));
  EXPECT_FALSE(VV.Report.has(ErrorCode::EquivRefuted));
}

TEST(EquivDriver, CleanVariantStillAccepted) {
  driver::Program P = compileFixture();
  verify::VerifyOptions VOpts;
  driver::VerifiedVariant VV = driver::makeVariantVerified(
      P, diversity::DiversityOptions(), 1, VOpts);
  EXPECT_TRUE(VV.ok()) << VV.Report.str();
  EXPECT_EQ(VV.Attempts, 1u);
}

TEST(EquivMetrics, CountersPartitionModulesChecked) {
  obs::Registry::global().reset();
  obs::setEnabled(true);
  driver::Program P = compileFixture();
  MModule V = diversity::makeVariant(P.MIR, heavyNops(), 2);
  (void)proveEquivalent(P.MIR, V);
  MModule Mutant = P.MIR;
  ASSERT_TRUE(analysis::injectMirFault(Mutant, MirFaultClass::FlagClobber,
                                       7, nullptr));
  (void)proveEquivalent(P.MIR, Mutant);
  obs::LocalMetrics Snap = obs::Registry::global().snapshot();
  obs::setEnabled(false);
  obs::Registry::global().reset();
  EXPECT_EQ(Snap.Counters["equiv.modules_checked"], 2u);
  EXPECT_EQ(Snap.Counters["equiv.modules_proved"], 1u);
  EXPECT_EQ(Snap.Counters["equiv.modules_refuted"], 1u);
  EXPECT_EQ(Snap.Counters["equiv.modules_checked"],
            Snap.Counters["equiv.modules_proved"] +
                Snap.Counters["equiv.modules_refuted"] +
                Snap.Counters["equiv.modules_aborted"]);
  auto It = Snap.Histograms.find("equiv.function_seconds");
  ASSERT_NE(It, Snap.Histograms.end());
  EXPECT_GT(It->second.Total, 0u);
}

} // namespace
