//===-- tests/EngineParityTest.cpp - Fast-vs-reference engine parity -------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// The contract under test (mexec/Precompiled.h): the precompiled
// direct-threaded engine returns *bit-identical* RunResults to the
// tree-walking reference engine -- every field, on every program. The
// corpus stacks the deck:
//
//  - all 19 workloads, with output, block counts, and instrumented
//    profile counters collected,
//  - 200 generated MiniC programs (tests/MiniCFuzzer.h) plus
//    diversified variants (XCHG NOPs, block shift),
//  - programs that trap every way the machine can trap (step budget,
//    call depth, #DE both ways, bad memory, stack overflow, ADC/SBB),
//    where the engines must agree on kind, reason string, and the exact
//    instruction/cycle counts at the trap point,
//  - fault-injected variants (analysis/MirFault.h) that survive
//    mir::verify, exercising broken-but-executable control flow,
//  - custom cost models (the baked-stream fallback path).
//
//===----------------------------------------------------------------------===//

#include "analysis/MirFault.h"
#include "diversity/NopInsertion.h"
#include "driver/Driver.h"
#include "mexec/Precompiled.h"
#include "profile/Profile.h"
#include "workloads/Workloads.h"

#include "MiniCFuzzer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <functional>
#include <string>
#include <vector>

using namespace pgsd;
using namespace pgsd::mir;
using x86::CondCode;
using x86::Reg;

namespace {

/// Field-for-field RunResult equality with per-field diagnostics.
void expectSame(const mexec::RunResult &Ref, const mexec::RunResult &Fast,
                const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(Ref.Trapped, Fast.Trapped);
  EXPECT_EQ(Ref.Trap, Fast.Trap)
      << mexec::trapKindName(Ref.Trap) << " vs "
      << mexec::trapKindName(Fast.Trap);
  EXPECT_EQ(Ref.TrapReason, Fast.TrapReason);
  EXPECT_EQ(Ref.ExitCode, Fast.ExitCode);
  EXPECT_EQ(Ref.Cycles10, Fast.Cycles10);
  EXPECT_EQ(Ref.Instructions, Fast.Instructions);
  EXPECT_EQ(Ref.Checksum, Fast.Checksum);
  EXPECT_EQ(Ref.Output, Fast.Output);
  EXPECT_EQ(Ref.Counters, Fast.Counters);
  EXPECT_EQ(Ref.BlockCounts, Fast.BlockCounts);
}

/// Runs \p M on both engines and asserts bit-identity.
void runBoth(const MModule &M, const mexec::RunOptions &Opts,
             const std::string &What) {
  mexec::RunResult Ref = mexec::run(M, Opts);
  mexec::Precompiled P(M, Opts.Costs);
  expectSame(Ref, P.run(Opts), What);
  // One compiled stream must serve repeated runs (the BaselineCache and
  // diffExecute reuse patterns): a second run from the same stream must
  // reproduce the first.
  expectSame(Ref, P.run(Opts), What + " (stream reuse)");
}

mexec::RunOptions fullCollect(const std::vector<int32_t> &Input) {
  mexec::RunOptions Opts;
  Opts.Input = Input;
  Opts.CollectOutput = true;
  Opts.CollectBlockCounts = true;
  Opts.MaxSteps = 50'000'000;
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Workload suite
//===----------------------------------------------------------------------===//

TEST(EngineParity, WorkloadSuiteFieldForField) {
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    ASSERT_TRUE(P.ok()) << P.errors();
    runBoth(P.MIR, fullCollect(W.TrainInput), W.Name);
  }
}

TEST(EngineParity, InstrumentedCountersMatch) {
  // ProfInc counters feed minimal-counter profiling; both engines must
  // agree on every counter value (and on everything else while
  // instrumented).
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    ASSERT_TRUE(P.ok()) << P.errors();
    MModule Instrumented = P.MIR;
    profile::InstrumentationPlan Plan =
        profile::instrumentModule(Instrumented);
    Instrumented.NumProfCounters = Plan.NumCounters;
    runBoth(Instrumented, fullCollect(W.TrainInput),
            W.Name + " (instrumented)");
  }
}

TEST(EngineParity, DiversifiedVariantsMatch) {
  // NOP-inserted (including bus-locking XCHG forms) and block-shifted
  // variants: the transformed streams the verifier actually executes.
  for (const workloads::Workload &W : workloads::specSuite()) {
    driver::Program P = driver::compileProgram(W.Source, W.Name);
    ASSERT_TRUE(P.ok()) << P.errors();
    ASSERT_TRUE(driver::profileAndStamp(P, W.TrainInput));
    diversity::DiversityOptions D = diversity::DiversityOptions::profiled(
        diversity::ProbabilityModel::Log, 0.0, 0.5);
    D.IncludeXchgNops = true;
    MModule V = diversity::makeVariant(P.MIR, D, /*Seed=*/0xd1ce + 1);
    runBoth(V, fullCollect(W.TrainInput), W.Name + " (variant)");
    diversity::insertBlockShift(V, 0xb10c);
    runBoth(V, fullCollect(W.TrainInput), W.Name + " (block-shifted)");
  }
}

//===----------------------------------------------------------------------===//
// Fuzz corpus
//===----------------------------------------------------------------------===//

class EngineParityFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineParityFuzz, GeneratedProgramsMatch) {
  uint64_t Seed = GetParam();
  // Same derivation as FuzzMiniCTest: identical corpus, different
  // property (cross-engine bit-identity instead of variant equality).
  MiniCFuzzer Fuzzer(Seed * 0x9e3779b97f4a7c15ull + 1);
  std::string Source = Fuzzer.generate();
  SCOPED_TRACE("fuzz seed " + std::to_string(Seed) + "\n" + Source);
  driver::Program P = driver::compileProgram(Source, "fuzz");
  ASSERT_TRUE(P.ok()) << P.errors();
  runBoth(P.MIR, fullCollect({5, -3, 99, 0, 7, 123}),
          "seed " + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineParityFuzz,
                         ::testing::Range<uint64_t>(0, 200));

//===----------------------------------------------------------------------===//
// Trap corpus: the engines must agree at the exact trap point.
//===----------------------------------------------------------------------===//

namespace {

void runBothSource(const char *Source, const mexec::RunOptions &Opts,
                   mexec::TrapKind Expect, const std::string &What) {
  driver::Program P = driver::compileProgram(Source, "trap");
  ASSERT_TRUE(P.ok()) << P.errors();
  mexec::RunResult Ref = mexec::run(P.MIR, Opts);
  EXPECT_TRUE(Ref.Trapped);
  EXPECT_EQ(Ref.Trap, Expect);
  mexec::Precompiled PC(P.MIR, Opts.Costs);
  expectSame(Ref, PC.run(Opts), What);
}

/// Builds `main() { eax = A; <op>; ret }` by hand for instructions the
/// MiniC frontend cannot express.
MModule handBuilt(const std::function<void(MBasicBlock &)> &Fill) {
  MModule M;
  M.EntryFunction = 0;
  MFunction F;
  F.Name = "main";
  MBasicBlock BB;
  Fill(BB);
  MInstr Ret;
  Ret.Op = MOp::Ret;
  BB.Instrs.push_back(Ret);
  F.Blocks.push_back(std::move(BB));
  M.Functions.push_back(std::move(F));
  return M;
}

} // namespace

TEST(EngineParityTrap, StepBudget) {
  mexec::RunOptions Opts;
  Opts.CollectOutput = true;
  Opts.CollectBlockCounts = true;
  // Sweep budgets so the trap lands on different instruction kinds
  // (loop body, compare, branch): the budget check order is part of the
  // bit-identity contract.
  for (uint64_t Budget : {1ull, 2ull, 17ull, 100ull, 1000ull, 4096ull}) {
    Opts.MaxSteps = Budget;
    runBothSource(R"(
      fn main() {
        var i = 0;
        while (i >= 0) { i = i + 1; }
        return i;
      }
    )",
                  Opts, mexec::TrapKind::StepBudget,
                  "budget " + std::to_string(Budget));
  }
}

TEST(EngineParityTrap, PreSetCancelFlag) {
  // Cooperative cancellation (the nvx watchdog's kill switch): both
  // engines poll RunOptions::Cancel at the same counted-instruction
  // stride, so a flag raised before the run starts traps bit-identically
  // at the first poll point. (Mid-run cancellation is wall-clock timing
  // and thus exempt from the bit-identity contract.)
  std::atomic<bool> Flag{true};
  mexec::RunOptions Opts;
  Opts.CollectOutput = true;
  Opts.CollectBlockCounts = true;
  Opts.Cancel = &Flag;
  runBothSource(R"(
    fn main() {
      var i = 0;
      while (i >= 0) { i = i + 1; }
      return i;
    }
  )",
                Opts, mexec::TrapKind::Cancelled, "pre-set cancel");
  EXPECT_STREQ(mexec::trapKindName(mexec::TrapKind::Cancelled),
               "cancelled");
}

TEST(EngineParityTrap, CallDepth) {
  mexec::RunOptions Opts;
  Opts.MaxCallDepth = 16;
  runBothSource("fn down(n) { return down(n + 1); }\n"
                "fn main() { return down(0); }",
                Opts, mexec::TrapKind::CallDepth, "call depth");
}

TEST(EngineParityTrap, DivideByZeroAndOverflow) {
  mexec::RunOptions Opts;
  Opts.Input = {0};
  runBothSource("fn main() { return 10 / read_int(); }", Opts,
                mexec::TrapKind::DivideByZero, "zero divisor");
  Opts.Input = {INT32_MIN, -1};
  runBothSource("fn main() { return read_int() / read_int(); }", Opts,
                mexec::TrapKind::DivideByZero, "INT_MIN / -1");
}

TEST(EngineParityTrap, StackOverflow) {
  // 4 KiB frames recurse through the 11 MiB stack window long before
  // the default call-depth limit.
  mexec::RunOptions Opts;
  runBothSource(R"(
    fn down(n) {
      array t[1024];
      t[n & 1023] = n;
      return down(n + 1) + t[0];
    }
    fn main() { return down(0); }
  )",
                Opts, mexec::TrapKind::StackOverflow, "stack overflow");
}

TEST(EngineParityTrap, BadMemoryLoadAndStore) {
  for (int32_t Addr : {INT32_MAX, 0, 42, -4, INT32_MIN}) {
    for (bool IsStore : {false, true}) {
      MModule M = handBuilt([&](MBasicBlock &BB) {
        MInstr Mov;
        Mov.Op = MOp::MovRI;
        Mov.Dst = Reg::EAX;
        Mov.Imm = Addr;
        BB.Instrs.push_back(Mov);
        MInstr Bad;
        Bad.Op = IsStore ? MOp::Store : MOp::Load;
        Bad.Dst = IsStore ? Reg::EAX : Reg::ECX;
        Bad.Src = IsStore ? Reg::ECX : Reg::EAX;
        Bad.Imm = 0;
        BB.Instrs.push_back(Bad);
      });
      mexec::RunResult Ref = mexec::run(M, {});
      ASSERT_TRUE(Ref.Trapped);
      EXPECT_EQ(Ref.Trap, mexec::TrapKind::BadMemory);
      mexec::Precompiled P(M);
      expectSame(Ref, P.run({}),
                 std::string(IsStore ? "store @" : "load @") +
                     std::to_string(Addr));
    }
  }
}

TEST(EngineParityTrap, AdcSbbAreBadInstructions) {
  for (x86::AluOp Op : {x86::AluOp::Adc, x86::AluOp::Sbb}) {
    MModule M = handBuilt([&](MBasicBlock &BB) {
      MInstr I;
      I.Op = MOp::AluRR;
      I.Alu = Op;
      I.Dst = Reg::EAX;
      I.Src = Reg::ECX;
      BB.Instrs.push_back(I);
    });
    mexec::RunResult Ref = mexec::run(M, {});
    ASSERT_TRUE(Ref.Trapped);
    EXPECT_EQ(Ref.Trap, mexec::TrapKind::BadInstruction);
    mexec::Precompiled P(M);
    expectSame(Ref, P.run({}), "ADC/SBB");
  }
}

//===----------------------------------------------------------------------===//
// Fault-injected corpus: broken-but-executable modules.
//===----------------------------------------------------------------------===//

TEST(EngineParity, FaultInjectedVariantsMatch) {
  const workloads::Workload &W = workloads::specWorkload("401.bzip2");
  driver::Program P = driver::compileProgram(W.Source, W.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  mexec::RunOptions Opts = fullCollect(W.TrainInput);
  // Corrupted modules may loop or wander; keep runs bounded.
  Opts.MaxSteps = 2'000'000;
  unsigned Executed = 0;
  for (unsigned C = 0; C != analysis::NumMirFaultClasses; ++C) {
    for (uint64_t Seed = 1; Seed != 9; ++Seed) {
      MModule V = P.MIR;
      std::string Desc;
      if (!analysis::injectMirFault(
              V, static_cast<analysis::MirFaultClass>(C), Seed, &Desc))
        continue;
      // The production pipeline (verify::verifyVariant) refuses to
      // execute modules that fail mir::verify, so the contract only
      // covers verifiable ones.
      if (!mir::verify(V).empty())
        continue;
      ++Executed;
      runBoth(V, Opts, "fault class " + std::to_string(C) + " seed " +
                           std::to_string(Seed) + ": " + Desc);
    }
  }
  // The corpus must actually exercise faulted modules, not skip its way
  // to green.
  EXPECT_GE(Executed, 12u);
}

//===----------------------------------------------------------------------===//
// Custom cost models
//===----------------------------------------------------------------------===//

TEST(EngineParity, CustomCostsMatchViaBakedStream) {
  const workloads::Workload &W = workloads::specWorkload("429.mcf");
  driver::Program P = driver::compileProgram(W.Source, W.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  mexec::RunOptions Opts = fullCollect(W.TrainInput);
  Opts.Costs.Nop = 17;
  Opts.Costs.Idiv = 999;
  Opts.Costs.Call = 1;
  // A stream baked against the custom model executes it natively.
  runBoth(P.MIR, Opts, "custom costs, baked");
}

TEST(EngineParity, CostMismatchFallsBackToReference) {
  const workloads::Workload &W = workloads::specWorkload("429.mcf");
  driver::Program P = driver::compileProgram(W.Source, W.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  // Stream baked against the default model, run with a different one:
  // Precompiled::run must detect the mismatch and delegate to the
  // reference engine rather than charge stale costs.
  mexec::Precompiled PC(P.MIR);
  mexec::RunOptions Opts = fullCollect(W.TrainInput);
  Opts.Costs.Alu *= 3;
  expectSame(mexec::run(P.MIR, Opts), PC.run(Opts), "mismatched costs");
  // And runWith(Fast) bakes the custom model instead of falling back.
  expectSame(mexec::run(P.MIR, Opts),
             mexec::runWith(mexec::Engine::Fast, P.MIR, Opts),
             "runWith custom costs");
}

//===----------------------------------------------------------------------===//
// Engine name plumbing (the pgsdc --engine flag parses through these).
//===----------------------------------------------------------------------===//

TEST(EngineParity, EngineNamesRoundTrip) {
  EXPECT_STREQ(mexec::engineName(mexec::Engine::Fast), "fast");
  EXPECT_STREQ(mexec::engineName(mexec::Engine::Reference), "reference");
  mexec::Engine E = mexec::Engine::Reference;
  EXPECT_TRUE(mexec::parseEngine("fast", E));
  EXPECT_EQ(E, mexec::Engine::Fast);
  EXPECT_TRUE(mexec::parseEngine("reference", E));
  EXPECT_EQ(E, mexec::Engine::Reference);
  EXPECT_FALSE(mexec::parseEngine("turbo", E));
  EXPECT_EQ(E, mexec::Engine::Reference); // untouched on failure
}
