//===-- tests/SupportTest.cpp - support library tests ----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>

using namespace pgsd;

TEST(Rng, SplitIsPureAndDoesNotAdvanceParent) {
  Rng Parent(7);
  Rng C1 = Parent.split(3);
  Rng C2 = Parent.split(3);
  // Same stream index twice: bit-identical children.
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(C1.next(), C2.next());
  // split() is const: the parent's own stream is untouched.
  Rng Fresh(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Parent.next(), Fresh.next());
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng Parent(7);
  std::set<uint64_t> FirstOutputs;
  for (uint64_t Stream = 0; Stream != 256; ++Stream)
    FirstOutputs.insert(Parent.split(Stream).next());
  // Adjacent stream indices must not collide.
  EXPECT_EQ(FirstOutputs.size(), 256u);
  // Different parents give different streams for the same index.
  EXPECT_NE(Rng(7).split(0).next(), Rng(8).split(0).next());
}

TEST(ThreadPool, RunsEveryTask) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.enqueue([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, IsReusableAfterWait) {
  support::ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round != 3; ++Round) {
    for (int I = 0; I != 10; ++I)
      Pool.enqueue([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 10);
  }
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  support::ThreadPool Pool(2);
  std::atomic<int> Completed{0};
  Pool.enqueue([] { throw std::runtime_error("task failed"); });
  for (int I = 0; I != 8; ++I)
    Pool.enqueue([&Completed] { ++Completed; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The throwing task did not kill its worker: later tasks all ran, and
  // the pool keeps working after the rethrow.
  EXPECT_EQ(Completed.load(), 8);
  Pool.enqueue([&Completed] { ++Completed; });
  Pool.wait(); // does not rethrow twice
  EXPECT_EQ(Completed.load(), 9);
}

TEST(ThreadPool, CountsSuppressedExceptions) {
  support::ThreadPool Pool(3);
  EXPECT_EQ(Pool.suppressedExceptions(), 0u);
  for (int I = 0; I != 5; ++I)
    Pool.enqueue([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // One exception is rethrown; the other four would previously vanish
  // silently. The counter surfaces them.
  EXPECT_EQ(Pool.suppressedExceptions(), 4u);
  // The count is cumulative across wait() rounds (callers diff it).
  Pool.enqueue([] { throw std::runtime_error("boom"); });
  Pool.enqueue([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Pool.suppressedExceptions(), 5u);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  support::ThreadPool Pool(4);
  // Four tasks that each wait until all four have started can only
  // finish if they really run on distinct threads.
  std::atomic<int> Started{0};
  for (int I = 0; I != 4; ++I)
    Pool.enqueue([&Started] {
      ++Started;
      while (Started.load() < 4)
        std::this_thread::yield();
    });
  Pool.wait();
  EXPECT_EQ(Started.load(), 4);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  support::ThreadPool Pool(2);
  Pool.wait();
  EXPECT_GE(support::ThreadPool::defaultConcurrency(), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0u);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // SplitMix64 seeding must decorrelate seeds 0 and 1.
  Rng A(0), B(1);
  uint64_t XorAll = 0;
  for (int I = 0; I != 64; ++I)
    XorAll |= A.next() ^ B.next();
  EXPECT_NE(XorAll, 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng R(11);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.nextDouble();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng R(3);
  const int N = 200000;
  int Hits = 0;
  for (int I = 0; I != N; ++I)
    if (R.nextBernoulli(0.3))
      ++Hits;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.nextBernoulli(0.0));
    EXPECT_TRUE(R.nextBernoulli(1.0));
    EXPECT_FALSE(R.nextBernoulli(-0.5));
    EXPECT_TRUE(R.nextBernoulli(1.5));
  }
}

/// nextBelow must stay in range and hit every residue for small bounds.
class RngBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundTest, InRangeAndCoversAll) {
  uint64_t Bound = GetParam();
  Rng R(Bound * 977 + 1);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = R.nextBelow(Bound);
    ASSERT_LT(V, Bound);
    Seen.insert(V);
  }
  if (Bound <= 16) {
    EXPECT_EQ(Seen.size(), Bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 100,
                                           1000, 1u << 20));

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng A(123);
  Rng Child = A.fork();
  uint64_t C1 = Child.next();
  // Re-derive: the fork consumed exactly one parent draw.
  Rng B(123);
  Rng Child2 = B.fork();
  EXPECT_EQ(C1, Child2.next());
}

TEST(Statistics, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Statistics, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({4.0, 9.0}), 6.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  // Geomean of slowdown ratios is below the arithmetic mean.
  std::vector<double> Ratios = {1.01, 1.25, 1.08};
  EXPECT_LT(geometricMean(Ratios), mean(Ratios));
}

TEST(Statistics, GeometricMeanSkipsNonPositiveAndNonFinite) {
  // Regression: the old implementation guarded V > 0 only with assert(),
  // so a release build fed a zero ratio (a sub-resolution timing)
  // computed log(0) and returned exp(-inf) = 0 -- or NaN with a negative
  // entry -- silently corrupting the whole summary. Bad samples must be
  // skipped, degrading one entry, not the aggregate.
  EXPECT_NEAR(geometricMean({4.0, 0.0, 9.0}), 6.0, 1e-12);
  EXPECT_NEAR(geometricMean({4.0, -2.0, 9.0}), 6.0, 1e-12);
  double Inf = std::numeric_limits<double>::infinity();
  double NaN = std::nan("");
  EXPECT_NEAR(geometricMean({4.0, Inf, 9.0}), 6.0, 1e-12);
  EXPECT_NEAR(geometricMean({4.0, NaN, 9.0}), 6.0, 1e-12);
  // No entry qualifies: documented 0 return, never -inf/NaN.
  EXPECT_DOUBLE_EQ(geometricMean({0.0, -1.0}), 0.0);
  EXPECT_TRUE(std::isfinite(geometricMean({0.0, Inf, NaN})));
}

TEST(Statistics, Median) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  // Lower median for even sizes.
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.0);
}

TEST(Statistics, MedianCount) {
  EXPECT_EQ(medianCount({}), 0u);
  EXPECT_EQ(medianCount({7}), 7u);
  EXPECT_EQ(medianCount({1, 1000000, 3}), 3u);
}

TEST(Statistics, SampleStdDev) {
  EXPECT_DOUBLE_EQ(sampleStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(sampleStdDev({3.0}), 0.0);
  EXPECT_NEAR(sampleStdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(TablePrinter, AlignsColumnsAndRulesHeader) {
  TablePrinter T;
  T.addRow({"name", "value"});
  T.addRow({"x", "123456"});
  T.addRow({"longer-name", "1"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
  // The second column starts at the same offset within each data line.
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Out.size()) {
    size_t End = Out.find('\n', Start);
    Lines.push_back(Out.substr(Start, End - Start));
    Start = End + 1;
  }
  ASSERT_EQ(Lines.size(), 4u); // header, rule, two data rows
  EXPECT_EQ(Lines[0].find("value"), Lines[2].find("123456"));
  EXPECT_EQ(Lines[0].find("value"), Lines[3].find("1"));
}

TEST(TablePrinter, HandlesRaggedRows) {
  TablePrinter T;
  T.addRow({"a", "b", "c"});
  T.addRow({"only-one"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("only-one"), std::string::npos);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(12.345, 1), "12.3%");
  EXPECT_EQ(formatCount(123456789ull), "123456789");
}
