//===-- tests/DisasmTest.cpp - Disassembler tests ---------------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//

#include "x86/Disasm.h"
#include "x86/Encoder.h"
#include "x86/Nops.h"

#include "codegen/Linker.h"
#include "driver/Driver.h"

#include <gtest/gtest.h>

using namespace pgsd;
using namespace pgsd::x86;

namespace {

std::string disasm(std::initializer_list<uint8_t> Bytes) {
  std::vector<uint8_t> V(Bytes);
  return disassembleAt(V.data(), V.size());
}

} // namespace

TEST(Disasm, CoreInstructions) {
  EXPECT_EQ(disasm({0x90}), "nop");
  EXPECT_EQ(disasm({0xC3}), "ret");
  EXPECT_EQ(disasm({0xC9}), "leave");
  EXPECT_EQ(disasm({0xC2, 0x08, 0x00}), "ret 0x8");
  EXPECT_EQ(disasm({0x55}), "push ebp");
  EXPECT_EQ(disasm({0x5B}), "pop ebx");
  EXPECT_EQ(disasm({0x99}), "cdq");
  EXPECT_EQ(disasm({0xCD, 0x80}), "int 0x80");
  EXPECT_EQ(disasm({0xB8, 0x78, 0x56, 0x34, 0x12}), "mov eax, 0x12345678");
  EXPECT_EQ(disasm({0x89, 0xE5}), "mov ebp, esp");
  EXPECT_EQ(disasm({0x89, 0x03}), "mov [ebx], eax");
  EXPECT_EQ(disasm({0x8B, 0x45, 0x08}), "mov eax, [ebp+0x8]");
  EXPECT_EQ(disasm({0x8B, 0x45, 0xF8}), "mov eax, [ebp-0x8]");
  EXPECT_EQ(disasm({0x8B, 0x04, 0x24}), "mov eax, [esp]");
  EXPECT_EQ(disasm({0x8D, 0x44, 0x88, 0x04}), "lea eax, [eax+ecx*4+0x4]");
  EXPECT_EQ(disasm({0x01, 0xC8}), "add eax, ecx");
  EXPECT_EQ(disasm({0x83, 0xEC, 0x10}), "sub esp, 0x10");
  EXPECT_EQ(disasm({0x39, 0xD8}), "cmp eax, ebx");
  EXPECT_EQ(disasm({0x31, 0xC0}), "xor eax, eax");
  EXPECT_EQ(disasm({0xF7, 0xF9}), "idiv ecx");
  EXPECT_EQ(disasm({0xF7, 0xD8}), "neg eax");
  EXPECT_EQ(disasm({0x0F, 0xAF, 0xC1}), "imul eax, ecx");
  EXPECT_EQ(disasm({0x0F, 0xB6, 0xC0}), "movzx eax, al");
  EXPECT_EQ(disasm({0x0F, 0x94, 0xC0}), "sete al");
  EXPECT_EQ(disasm({0xC1, 0xE0, 0x02}), "shl eax, 0x2");
  EXPECT_EQ(disasm({0xD3, 0xF8}), "sar eax, cl");
  EXPECT_EQ(disasm({0x85, 0xC0}), "test eax, eax");
  EXPECT_EQ(disasm({0xFF, 0xE0}), "jmp eax");
  EXPECT_EQ(disasm({0xFF, 0xD2}), "call edx");
}

TEST(Disasm, Branches) {
  // Relative targets render against the instruction start.
  EXPECT_EQ(disasm({0xEB, 0x10}), "jmp $+0x12");
  EXPECT_EQ(disasm({0x74, 0x05}), "je $+0x7");
  EXPECT_EQ(disasm({0xE8, 0x00, 0x00, 0x00, 0x00}), "call $+0x5");
  EXPECT_EQ(disasm({0xE9, 0xFB, 0xFF, 0xFF, 0xFF}), "jmp $+0x0");
  EXPECT_EQ(disasm({0x0F, 0x85, 0x00, 0x01, 0x00, 0x00}), "jne $+0x106");
  // A backward loop.
  EXPECT_EQ(disasm({0xEB, 0xF0}), "jmp $-0xe");
}

TEST(Disasm, NopCandidatesRenderAsTheirMnemonics) {
  EXPECT_EQ(disasm({0x89, 0xE4}), "mov esp, esp");
  EXPECT_EQ(disasm({0x89, 0xED}), "mov ebp, ebp");
  EXPECT_EQ(disasm({0x8D, 0x36}), "lea esi, [esi]");
  EXPECT_EQ(disasm({0x8D, 0x3F}), "lea edi, [edi]");
  EXPECT_EQ(disasm({0x87, 0xE4}), "xchg esp, esp");
}

TEST(Disasm, BadBytes) {
  EXPECT_EQ(disasm({0xD6}), "(bad)");
  EXPECT_EQ(disasm({0x0F, 0x0B}), "(bad)");
  EXPECT_EQ(disasm({0xB8}), "(bad)"); // truncated
}

TEST(Disasm, RangeResynchronizes) {
  // valid, invalid, valid: the listing must keep going.
  std::vector<uint8_t> Bytes = {0x90, 0xD6, 0xC3};
  auto Lines = disassembleRange(Bytes.data(), Bytes.size(), 0, 3);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_TRUE(Lines[0].Valid);
  EXPECT_FALSE(Lines[1].Valid);
  EXPECT_TRUE(Lines[2].Valid);
  EXPECT_EQ(Lines[2].Text, "ret");
}

TEST(Disasm, WholeImageNeverCrashesAndMostlyDecodes) {
  // Disassemble a real linked image end to end; everything the emitter
  // produced must render as valid text.
  driver::Program P = driver::compileProgram(
      "global g[4]; fn f(a) { if (a > 2) { return a * 3; } "
      "return g[a & 3]; } fn main() { return f(read_int()); }",
      "img");
  ASSERT_TRUE(P.ok());
  codegen::Image Img = driver::linkBaseline(P);
  auto Lines =
      disassembleRange(Img.Text.data(), Img.Text.size(), 0,
                       static_cast<uint32_t>(Img.Text.size()));
  ASSERT_GT(Lines.size(), 50u);
  unsigned Bad = 0;
  for (const auto &L : Lines)
    if (!L.Valid)
      ++Bad;
  EXPECT_EQ(Bad, 0u) << "emitted code must disassemble cleanly";
  // Sanity: prologues and epilogues appear.
  bool SawPrologue = false;
  for (size_t I = 0; I + 1 < Lines.size(); ++I)
    if (Lines[I].Text == "push ebp" && Lines[I + 1].Text == "mov ebp, esp")
      SawPrologue = true;
  EXPECT_TRUE(SawPrologue);
}
