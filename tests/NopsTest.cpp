//===-- tests/NopsTest.cpp - Paper Table 1 validation ----------------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Validates Table 1 of the paper: the NOP candidate encodings, and the
// security property that the *second byte* of each two-byte candidate
// decodes to something an attacker cannot use (IN is privileged, SS: is
// a bare prefix, AAS is harmless).
//
//===----------------------------------------------------------------------===//

#include "x86/Decoder.h"
#include "x86/Nops.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace pgsd;
using namespace pgsd::x86;

TEST(Nops, TableMatchesPaper) {
  size_t Count;
  const NopInfo *Table = nopTable(Count);
  ASSERT_EQ(Count, 7u);

  struct Row {
    const char *Mnemonic;
    uint8_t B0, B1;
    uint8_t Len;
    const char *Second;
    bool Locks;
  };
  const Row Expected[] = {
      {"NOP", 0x90, 0x00, 1, "-", false},
      {"MOV ESP, ESP", 0x89, 0xE4, 2, "IN", false},
      {"MOV EBP, EBP", 0x89, 0xED, 2, "IN", false},
      {"LEA ESI, [ESI]", 0x8D, 0x36, 2, "SS:", false},
      {"LEA EDI, [EDI]", 0x8D, 0x3F, 2, "AAS", false},
      {"XCHG ESP, ESP", 0x87, 0xE4, 2, "IN", true},
      {"XCHG EBP, EBP", 0x87, 0xED, 2, "IN", true},
  };
  for (size_t I = 0; I != Count; ++I) {
    EXPECT_STREQ(Table[I].Mnemonic, Expected[I].Mnemonic);
    EXPECT_EQ(Table[I].Bytes[0], Expected[I].B0);
    if (Expected[I].Len == 2) {
      EXPECT_EQ(Table[I].Bytes[1], Expected[I].B1);
    }
    EXPECT_EQ(Table[I].Length, Expected[I].Len);
    EXPECT_STREQ(Table[I].SecondByteDecoding, Expected[I].Second);
    EXPECT_EQ(Table[I].LocksBus, Expected[I].Locks);
  }
}

TEST(Nops, DefaultSetExcludesXchg) {
  EXPECT_EQ(NumDefaultNopKinds, 5u);
  size_t Count;
  const NopInfo *Table = nopTable(Count);
  for (size_t I = 0; I != NumDefaultNopKinds; ++I)
    EXPECT_FALSE(Table[I].LocksBus)
        << "default candidate " << I << " must not lock the bus";
}

TEST(Nops, AllCandidatesDecodeAsSingleValidInstructions) {
  size_t Count;
  const NopInfo *Table = nopTable(Count);
  for (size_t I = 0; I != Count; ++I) {
    Decoded D;
    ASSERT_TRUE(decodeInstr(Table[I].Bytes, Table[I].Length, D))
        << Table[I].Mnemonic;
    EXPECT_EQ(D.Length, Table[I].Length) << Table[I].Mnemonic;
    EXPECT_EQ(D.Class, InstrClass::Normal) << Table[I].Mnemonic;
  }
}

TEST(Nops, SecondBytesAreUselessToAttackers) {
  // The design rationale from the paper, checked against our decoder.
  // 89 E4 / 89 ED / 87 E4 / 87 ED: second byte E4/ED = IN, privileged.
  for (uint8_t B : {0xE4, 0xED}) {
    uint8_t Buf[2] = {B, 0x10};
    Decoded D;
    decodeInstr(Buf, 2, D);
    EXPECT_EQ(D.Class, InstrClass::Privileged);
  }
  // 8D 3F: second byte 3F = AAS, a harmless one-byte instruction.
  {
    uint8_t Buf[1] = {0x3F};
    Decoded D;
    ASSERT_TRUE(decodeInstr(Buf, 1, D));
    EXPECT_EQ(D.Class, InstrClass::Normal);
    EXPECT_EQ(D.Length, 1u);
  }
  // 8D 36: second byte 36 = SS: prefix; alone it is not an instruction.
  {
    uint8_t Buf[1] = {0x36};
    Decoded D;
    EXPECT_FALSE(decodeInstr(Buf, 1, D));
    EXPECT_EQ(D.NumPrefixes, 1u);
  }
}

TEST(Nops, MatchNopAt) {
  NopKind Kind;
  const uint8_t MovEspEsp[] = {0x89, 0xE4};
  EXPECT_TRUE(matchNopAt(MovEspEsp, 2, /*IncludeXchg=*/false, Kind));
  EXPECT_EQ(Kind, NopKind::MovEspEsp);

  const uint8_t Nop90[] = {0x90};
  EXPECT_TRUE(matchNopAt(Nop90, 1, false, Kind));
  EXPECT_EQ(Kind, NopKind::Nop90);

  const uint8_t Xchg[] = {0x87, 0xE4};
  EXPECT_FALSE(matchNopAt(Xchg, 2, /*IncludeXchg=*/false, Kind));
  EXPECT_TRUE(matchNopAt(Xchg, 2, /*IncludeXchg=*/true, Kind));
  EXPECT_EQ(Kind, NopKind::XchgEspEsp);

  // A MOV that is not register-to-same-register is not a NOP.
  const uint8_t RealMov[] = {0x89, 0xC3};
  EXPECT_FALSE(matchNopAt(RealMov, 2, true, Kind));
  // Truncated two-byte candidates do not match.
  const uint8_t Partial[] = {0x89};
  EXPECT_FALSE(matchNopAt(Partial, 1, true, Kind));
  EXPECT_FALSE(matchNopAt(Partial, 0, true, Kind));
}

TEST(Nops, AppendNopBytes) {
  std::vector<uint8_t> Out;
  appendNopBytes(NopKind::Nop90, Out);
  appendNopBytes(NopKind::LeaEsiEsi, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x90, 0x8D, 0x36}));
}
