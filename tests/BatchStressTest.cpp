//===-- tests/BatchStressTest.cpp - Batch factory stress tests --------------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Tier-2 stress coverage of the parallel variant factory: every workload
// of the SPEC-like suite, many seeds each, 8 workers, through the *full*
// verified path (default input battery, image and structural checks),
// asserting zero rejected variants and bounded retry counts.
//
// Scale is environment-keyed so the binary serves two ctest tiers:
//   default        -- smoke scale (2 seeds, train-input battery), cheap
//                     enough for the tier-1 run and the TSan CI job.
//   PGSD_STRESS=1  -- full scale: 16 seeds per workload with the default
//                     battery (19 x 16 x 8 jobs). Run it via
//                     `PGSD_STRESS=1 ctest -L stress`.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace pgsd;

namespace {

bool fullScale() {
  const char *S = std::getenv("PGSD_STRESS");
  return S && S[0] == '1';
}

} // namespace

class BatchStressTest : public ::testing::TestWithParam<const char *> {};

TEST_P(BatchStressTest, AllSeedsVerifyWithBoundedRetries) {
  const workloads::Workload &W = workloads::specWorkload(GetParam());
  driver::Program P = driver::compileProgram(W.Source, W.Name);
  ASSERT_TRUE(P.ok()) << P.errors();
  ASSERT_TRUE(driver::profileAndStamp(P, W.TrainInput));

  unsigned SeedsPer = fullScale() ? 16 : 2;
  std::vector<uint64_t> Seeds;
  for (unsigned S = 0; S != SeedsPer; ++S)
    Seeds.push_back(0x57e55ull * (S + 1) + W.Name[0]);

  driver::BatchOptions B;
  B.Jobs = 8;
  B.Verify.MaxAttempts = 3;
  if (!fullScale())
    B.Verify.InputBattery = {W.TrainInput};

  auto Opts = diversity::DiversityOptions::profiled(
      diversity::ProbabilityModel::Log, 0.0, 0.3);
  driver::BatchResult R = driver::makeVariantsBatch(P, Opts, Seeds, B);

  // Zero rejected: every seed must yield a verified diversified image.
  EXPECT_TRUE(R.allAccepted()) << R.Rejected << " seed(s) rejected";
  EXPECT_EQ(R.Accepted, Seeds.size());
  // Bounded retries: the battery is known-good, so first-attempt
  // acceptance is the norm and the retry budget is never exhausted.
  EXPECT_LE(R.TotalAttempts, Seeds.size() * B.Verify.MaxAttempts);
  for (const driver::VerifiedVariant &V : R.Variants) {
    EXPECT_FALSE(V.UsedFallback);
    EXPECT_LE(V.Attempts, B.Verify.MaxAttempts);
    EXPECT_GT(V.V.Stats.NopsInserted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spec, BatchStressTest,
    ::testing::Values("470.lbm", "429.mcf", "462.libquantum", "401.bzip2",
                      "473.astar", "433.milc", "458.sjeng", "456.hmmer",
                      "444.namd", "482.sphinx3", "464.h264ref",
                      "450.soplex", "447.dealII", "453.povray",
                      "400.perlbench", "445.gobmk", "471.omnetpp",
                      "403.gcc", "483.xalancbmk"),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });
