//===-- tests/MiniCFuzzer.h - Seeded random MiniC generator -----*- C++ -*-===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random-program generator (arithmetic, if/while, helper calls
/// with arguments, local and global arrays within frame bounds) shared
/// by the MiniC fuzz/property suite (tests/FuzzMiniCTest.cpp) and the
/// engine-parity suite (tests/EngineParityTest.cpp). The RNG is
/// pgsd::Rng (bit-exact across toolchains), so a seed reproduces the
/// same program everywhere.
///
/// Generated programs are trap-free by construction: divisors are forced
/// nonzero, array indices are masked to the declared bounds, and loops
/// count to literal limits. Helpers only call helpers defined before
/// them, so the call graph is acyclic and every program terminates.
///
//===----------------------------------------------------------------------===//

#ifndef PGSD_TESTS_MINICFUZZER_H
#define PGSD_TESTS_MINICFUZZER_H

#include "support/Rng.h"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace pgsd {

/// Generates one random MiniC program per seed.
class MiniCFuzzer {
public:
  explicit MiniCFuzzer(uint64_t Seed) : Gen(Seed) {}

  std::string generate() {
    Out.clear();
    Out += "global gdata[32];\n";
    Out += "global gacc;\n";
    unsigned NumHelpers = 1 + static_cast<unsigned>(Gen.nextBelow(3));
    for (unsigned H = 0; H != NumHelpers; ++H)
      helper(H);
    mainFunction();
    return Out;
  }

private:
  struct Helper {
    std::string Name;
    unsigned Arity;
  };

  void appendf(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  /// One of the scalar variables in scope ('a'..'a'+NumVars-1).
  std::string var() {
    return std::string(1, static_cast<char>(
                              'a' + Gen.nextBelow(NumVars)));
  }

  /// A side-effect-free expression over the in-scope scalars, local
  /// array t[8], global array gdata[32], and previously defined helpers.
  std::string expr(unsigned Depth) {
    if (Depth == 0 || Gen.nextBernoulli(0.3)) {
      switch (Gen.nextBelow(4)) {
      case 0:
        return var();
      case 1:
        return std::to_string(Gen.nextInRange(-99, 99));
      case 2:
        return "t[(" + var() + ") & 7]";
      default:
        return "gdata[(" + var() + ") & 31]";
      }
    }
    std::string A = expr(Depth - 1);
    std::string B = expr(Depth - 1);
    switch (Gen.nextBelow(14)) {
    case 0:
      return "(" + A + " + " + B + ")";
    case 1:
      return "(" + A + " - " + B + ")";
    case 2:
      return "(" + A + " * " + B + ")";
    case 3: // guaranteed nonzero, non-minus-one divisor
      return "(" + A + " / ((" + B + " & 15) + 2))";
    case 4:
      return "(" + A + " % ((" + B + " & 15) + 2))";
    case 5:
      return "(" + A + " & " + B + ")";
    case 6:
      return "(" + A + " | " + B + ")";
    case 7:
      return "(" + A + " ^ " + B + ")";
    case 8:
      return "(" + A + " << (" + B + " & 7))";
    case 9:
      return "(" + A + " >> (" + B + " & 7))";
    case 10:
      return "(0 - " + A + ")";
    case 11: {
      const char *Cmp[] = {" < ", " <= ", " == ", " != ", " > ", " >= "};
      return "(" + A + Cmp[Gen.nextBelow(6)] + B + ")";
    }
    case 12:
      return call(Depth - 1);
    default:
      return "(" + A + " && " + B + ")";
    }
  }

  /// A call to a previously defined helper, or a literal when none
  /// exists yet.
  std::string call(unsigned Depth) {
    if (Helpers.empty())
      return std::to_string(Gen.nextInRange(-9, 9));
    const Helper &H = Helpers[Gen.nextBelow(Helpers.size())];
    std::string C = H.Name + "(";
    for (unsigned A = 0; A != H.Arity; ++A)
      C += (A ? ", " : "") + expr(Depth);
    return C + ")";
  }

  void statement(unsigned Indent, unsigned Depth, unsigned LoopBudget) {
    std::string Pad(Indent * 2, ' ');
    switch (Gen.nextBelow(Depth > 0 && LoopBudget > 0 ? 7u : 5u)) {
    case 0: // scalar assignment
      appendf("%s%s = %s;\n", Pad.c_str(), var().c_str(),
              expr(2).c_str());
      break;
    case 1: // local array store, masked to the declared 8 words
      appendf("%st[(%s) & 7] = %s;\n", Pad.c_str(), expr(1).c_str(),
              expr(2).c_str());
      break;
    case 2: // global array store
      appendf("%sgdata[(%s) & 31] = %s;\n", Pad.c_str(), expr(1).c_str(),
              expr(2).c_str());
      break;
    case 3: // accumulate through the global scalar
      appendf("%sgacc = gacc ^ %s;\n", Pad.c_str(), expr(2).c_str());
      break;
    case 4: // call for effect via a scalar
      appendf("%s%s = %s;\n", Pad.c_str(), var().c_str(),
              call(1).c_str());
      break;
    case 5: { // if/else
      appendf("%sif (%s) {\n", Pad.c_str(), expr(2).c_str());
      statement(Indent + 1, Depth - 1, LoopBudget);
      if (Gen.nextBernoulli(0.5)) {
        appendf("%s} else {\n", Pad.c_str());
        statement(Indent + 1, Depth - 1, LoopBudget);
      }
      appendf("%s}\n", Pad.c_str());
      break;
    }
    default: { // bounded while loop with a unique counter
      std::string Counter = "i" + std::to_string(NextLoopId++);
      appendf("%svar %s = 0;\n", Pad.c_str(), Counter.c_str());
      appendf("%swhile (%s < %d) {\n", Pad.c_str(), Counter.c_str(),
              static_cast<int>(Gen.nextBelow(12) + 1));
      statement(Indent + 1, Depth - 1, LoopBudget - 1);
      appendf("%s  %s = %s + 1;\n", Pad.c_str(), Counter.c_str(),
              Counter.c_str());
      appendf("%s}\n", Pad.c_str());
      break;
    }
    }
  }

  void helper(unsigned Index) {
    Helper H;
    H.Name = "h" + std::to_string(Index);
    H.Arity = 1 + static_cast<unsigned>(Gen.nextBelow(3));
    std::string Params;
    for (unsigned A = 0; A != H.Arity; ++A)
      Params += (A ? ", " : "") + std::string(1, static_cast<char>('a' + A));
    appendf("fn %s(%s) {\n", H.Name.c_str(), Params.c_str());
    Out += "  array t[8];\n";
    // Parameters double as the scalar pool inside the helper.
    NumVars = H.Arity;
    unsigned NumStmts = 2 + static_cast<unsigned>(Gen.nextBelow(4));
    for (unsigned S = 0; S != NumStmts; ++S)
      statement(1, 2, 1);
    appendf("  return %s;\n}\n", expr(2).c_str());
    Helpers.push_back(H); // visible to later helpers and main only
  }

  void mainFunction() {
    Out += "fn main() {\n";
    Out += "  array t[8];\n";
    NumVars = 6;
    for (unsigned V = 0; V != NumVars; ++V)
      appendf("  var %c = %s;\n", static_cast<char>('a' + V),
              Gen.nextBernoulli(0.3)
                  ? "read_int()"
                  : std::to_string(Gen.nextInRange(-50, 50)).c_str());
    unsigned NumStmts = 4 + static_cast<unsigned>(Gen.nextBelow(8));
    for (unsigned S = 0; S != NumStmts; ++S)
      statement(1, 2, 2);
    // Observe everything the program could have touched.
    for (unsigned V = 0; V != NumVars; ++V)
      appendf("  print_int(%c);\n", static_cast<char>('a' + V));
    Out += "  var k = 0;\n";
    Out += "  while (k < 32) { gacc = gacc ^ gdata[k] ^ t[k & 7]; "
           "k = k + 1; }\n";
    Out += "  print_int(gacc);\n";
    Out += "  return a & 127;\n";
    Out += "}\n";
  }

  Rng Gen;
  std::string Out;
  std::vector<Helper> Helpers;
  unsigned NumVars = 6;
  unsigned NextLoopId = 0;
};

inline void MiniCFuzzer::appendf(const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

} // namespace pgsd

#endif // PGSD_TESTS_MINICFUZZER_H
