//===-- tests/GoldenDiagnosticsTest.cpp - Pinned diagnostic text -----------===//
//
// Part of the PGSD project, a reproduction of "Profile-guided Automated
// Software Diversity" (Homescu et al., CGO 2013).
//
// Pins the exact rendered diagnostic for one seeded violation per
// checker class over a fixed fixture program. The full string is the
// contract: error-code name, function name, block index, instruction
// index, the printed instruction at that location, and the prose. Any
// drift in the pretty-printer, the location format, or checker wording
// shows up here as a diff a reviewer can eyeball.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/Equiv.h"
#include "analysis/MirFault.h"
#include "driver/Driver.h"

#include "gtest/gtest.h"

using namespace pgsd;
using analysis::MirFaultClass;

namespace {

// Small but checker-complete: division (cdq/idiv), a call (stack args +
// caller-saved regs), a comparison feeding a branch (EFLAGS), locals
// (frame slots), and a loop (join points for the dataflow meets).
const char *FixtureSource = R"(
fn avg(a, b) { return (a + b) / 2; }
fn main() {
  var n = read_int();
  var total = 0;
  for (var i = 0; i < n; i = i + 1) {
    total = avg(total, i);
  }
  print_int(total);
  return total;
}
)";

struct GoldenCase {
  MirFaultClass Class;
  uint64_t Seed;
  const char *Expected;
};

const GoldenCase Cases[] = {
    {MirFaultClass::CfgBreak, 7,
     "[analysis-cfg-malformed] main: mbb2 #8 'jmp mbb7': branch target "
     "mbb7 out of range (function has 4 blocks)"},
    {MirFaultClass::DroppedDef, 7,
     "[analysis-use-before-def] avg: mbb0 #1 'add eax, ecx': reads ecx, "
     "which no definition reaches on every path from entry"},
    {MirFaultClass::FlagClobber, 7,
     "[analysis-flags-unproven] main: mbb1 #4 'jl mbb2': consumes "
     "EFLAGS clobbered by 'add eax, 0' at mbb1 #3"},
    {MirFaultClass::UnbalancedPush, 7,
     "[analysis-stack-imbalance] main: mbb3 #5 'ret': returns with 4 "
     "bytes still pushed"},
    {MirFaultClass::FrameEscape, 7,
     "[analysis-frame-out-of-bounds] main: mbb0 #1 'mov [ebp-52], eax': "
     "frame access at [ebp-52] escapes the 44-byte frame"},
    {MirFaultClass::CallContractBreak, 7,
     "[analysis-callconv-violation] main: mbb2 #3 'mov eax, ecx': reads "
     "ecx, which a preceding call clobbered (cdecl caller-saved), "
     "before any redefinition"},
};

TEST(GoldenDiagnostics, PinnedTextPerCheckerClass) {
  driver::Program P =
      driver::compileProgram(FixtureSource, "golden.minic", true);
  ASSERT_TRUE(P.ok()) << P.errors();
  for (const GoldenCase &C : Cases) {
    mir::MModule Mutant = P.MIR;
    std::string Desc;
    ASSERT_TRUE(analysis::injectMirFault(Mutant, C.Class, C.Seed, &Desc))
        << analysis::mirFaultClassName(C.Class);
    verify::Report R = analysis::analyzeModule(Mutant);
    ASSERT_FALSE(R.ok()) << analysis::mirFaultClassName(C.Class);
    EXPECT_EQ(R.Diags.front().str(), C.Expected)
        << analysis::mirFaultClassName(C.Class) << " (" << Desc << ")";
  }
}

// The same seeded violations, refuted by the translation validator
// (analysis/Equiv.h) instead of the dataflow checkers. The pinned text
// is the counterexample contract: the variant-side location of the
// first mismatch plus the two symbolic states that disagree -- an
// effect-trace entry, a branch condition, a stack depth, or a
// call-clobbered register dependence, depending on the class.
const GoldenCase EquivCases[] = {
    {MirFaultClass::CfgBreak, 7,
     "[equiv-refuted] main: mbb2 #8 'jmp mbb7': branch target mbb7 out "
     "of range (function has 4 blocks)"},
    {MirFaultClass::DroppedDef, 7,
     "[equiv-refuted] avg: mbb0 #4 'idiv ecx': effect #1 differs from "
     "baseline: idiv 2 (edx:eax = sext_hi(add(.., ..)):add(frame[+8]@0, "
     "ecx@entry)) vs load [ebp+12]"},
    {MirFaultClass::FlagClobber, 7,
     "[equiv-refuted] main: mbb1 #4 'jl mbb2': branch condition differs "
     "from baseline: flags(clobbered#0) vs flags(cmp ebx@entry, "
     "frame[-8]@0)"},
    {MirFaultClass::UnbalancedPush, 7,
     "[equiv-refuted] main: mbb3: block exits with 1 words pushed; "
     "baseline has 0"},
    {MirFaultClass::FrameEscape, 7,
     "[equiv-refuted] main: mbb0 #1 'mov [ebp-52], eax': effect #1 "
     "differs from baseline: store [ebp-52] = call#0.eax vs store "
     "[ebp-8] = call#0.eax"},
    {MirFaultClass::CallContractBreak, 7,
     "[equiv-refuted] main: mbb2 #3 'mov eax, ecx': reads caller-saved "
     "ecx while it holds a call-clobbered value; no matching read in "
     "baseline"},
};

TEST(GoldenDiagnostics, PinnedEquivalenceCounterexamples) {
  driver::Program P =
      driver::compileProgram(FixtureSource, "golden.minic", true);
  ASSERT_TRUE(P.ok()) << P.errors();
  for (const GoldenCase &C : EquivCases) {
    mir::MModule Mutant = P.MIR;
    std::string Desc;
    ASSERT_TRUE(analysis::injectMirFault(Mutant, C.Class, C.Seed, &Desc))
        << analysis::mirFaultClassName(C.Class);
    verify::Report R = analysis::proveEquivalent(P.MIR, Mutant);
    ASSERT_FALSE(R.ok()) << analysis::mirFaultClassName(C.Class);
    EXPECT_EQ(R.Diags.front().str(), C.Expected)
        << analysis::mirFaultClassName(C.Class) << " (" << Desc << ")";
  }
}

// Spill-heavy fixture for the transform-bug classes: enough
// simultaneously live values that locals round-trip through frame slots
// inside one block, giving the illegal-reorder injector a store->load
// dependence to break.
const char *SpillFixtureSource = R"(
fn mix(a, b, c, d) { return a * b + c * d; }
fn main() {
  var a = read_int(); var b = read_int();
  var c = a * 3 + b; var d = b * 5 - a;
  var e = mix(a, b, c, d);
  var f = mix(d, c, b, a);
  print_int(e + f + a * b * c * d);
  return e - f;
}
)";

// The new rejection messages of the composable pipeline era: a
// scheduler reorder across a memory dependence refutes as a store
// missing at the aligned trace position (the prover's read-run
// commutation can absorb legal load reorderings, never a lost store),
// and a live-range-violating register swap refutes as a stored value
// naming the wrong symbolic source.
TEST(GoldenDiagnostics, PinnedSchedulerDependenceViolation) {
  driver::Program P =
      driver::compileProgram(SpillFixtureSource, "golden.minic", true);
  ASSERT_TRUE(P.ok()) << P.errors();
  mir::MModule Mutant = P.MIR;
  std::string Desc;
  ASSERT_TRUE(analysis::injectMirFault(
      Mutant, MirFaultClass::IllegalReorder, 7, &Desc));
  verify::Report R = analysis::proveEquivalent(P.MIR, Mutant);
  ASSERT_FALSE(R.ok()) << Desc;
  EXPECT_EQ(R.Diags.front().str(),
            "[equiv-refuted] main: mbb0 #28 'mov ecx, [ebp-64]': effect "
            "#7 differs from baseline: load [ebp-64] vs store [ebp-64] = "
            "call#6.eax")
      << Desc;
}

TEST(GoldenDiagnostics, PinnedRegallocContractViolation) {
  driver::Program P =
      driver::compileProgram(FixtureSource, "golden.minic", true);
  ASSERT_TRUE(P.ok()) << P.errors();
  mir::MModule Mutant = P.MIR;
  std::string Desc;
  ASSERT_TRUE(analysis::injectMirFault(
      Mutant, MirFaultClass::LiveRangeSwap, 7, &Desc));
  verify::Report R = analysis::proveEquivalent(P.MIR, Mutant);
  ASSERT_FALSE(R.ok()) << Desc;
  EXPECT_EQ(R.Diags.front().str(),
            "[equiv-refuted] main: mbb0 #1 'mov [ebp-8], ebx': effect #1 "
            "differs from baseline: store [ebp-8] = ebx@entry vs store "
            "[ebp-8] = call#0.eax")
      << Desc;
}

} // namespace
